open Vmbp_vm

type vm = Forth | Jvm

let vm_name = function Forth -> "forth" | Jvm -> "jvm"

type session = {
  exec : Vmbp_core.Engine.exec;
  output : unit -> string;
}

type loaded = {
  program : Program.t;
  fresh_session : unit -> session;
}

type t = {
  vm : vm;
  name : string;
  description : string;
  load : scale:int -> loaded;
}

(* Loading a workload is deterministic in (vm, name, scale); memoise so the
   sweeps do not recompile programs hundreds of times.  The parallel runner
   hits these tables from several domains at once, so every lookup-or-build
   holds a mutex; the computation runs under the lock so concurrent callers
   of the same key share one build.  [training_profile] below has its own
   lock because building a profile loads workloads (lock order: profile
   before load, never the reverse). *)
let locked m f =
  Mutex.lock m;
  match f () with
  | v ->
      Mutex.unlock m;
      v
  | exception e ->
      Mutex.unlock m;
      raise e

let memo : (string, loaded) Hashtbl.t = Hashtbl.create 32
let memo_lock = Mutex.create ()

let memoised key f =
  locked memo_lock (fun () ->
      match Hashtbl.find_opt memo key with
      | Some loaded -> loaded
      | None ->
          let loaded = f () in
          Hashtbl.replace memo key loaded;
          loaded)

let of_forth (w : Vmbp_forth.Forth_workloads.t) =
  {
    vm = Forth;
    name = w.Vmbp_forth.Forth_workloads.name;
    description = w.Vmbp_forth.Forth_workloads.description;
    load =
      (fun ~scale ->
        memoised
          (Printf.sprintf "forth/%s/%d" w.Vmbp_forth.Forth_workloads.name scale)
          (fun () ->
            let source = w.Vmbp_forth.Forth_workloads.source ~scale in
            let program =
              Vmbp_forth.Compiler.compile
                ~name:w.Vmbp_forth.Forth_workloads.name source
            in
            {
              program;
              fresh_session =
                (fun () ->
                  let state = Vmbp_forth.State.create () in
                  {
                    exec = Vmbp_forth.Instruction_set.exec state;
                    output = (fun () -> Vmbp_forth.State.output state);
                  });
            }))
  }

let of_jvm (w : Vmbp_jvm.Jvm_workloads.t) =
  {
    vm = Jvm;
    name = w.Vmbp_jvm.Jvm_workloads.name;
    description = w.Vmbp_jvm.Jvm_workloads.description;
    load =
      (fun ~scale ->
        memoised
          (Printf.sprintf "jvm/%s/%d" w.Vmbp_jvm.Jvm_workloads.name scale)
          (fun () ->
            let image = w.Vmbp_jvm.Jvm_workloads.build ~scale in
            {
              program = image.Vmbp_jvm.Runtime.program;
              fresh_session =
                (fun () ->
                  let state = Vmbp_jvm.Runtime.create image in
                  {
                    exec = Vmbp_jvm.Semantics.exec state;
                    output = (fun () -> Vmbp_jvm.Runtime.output state);
                  });
            }))
  }

let forth = List.map of_forth Vmbp_forth.Forth_workloads.all
let jvm = List.map of_jvm Vmbp_jvm.Jvm_workloads.all
let all = forth @ jvm

let find ~vm name = List.find_opt (fun w -> w.vm = vm && w.name = name) all

let run_reference ?(fuel = 500_000_000) loaded =
  let program = Program.copy loaded.program in
  let session = loaded.fresh_session () in
  let steps, trap =
    Vmbp_core.Engine.run_functional ~fuel ~program ~exec:session.exec ()
  in
  (steps, trap, session.output ())

let quickened_program ?(fuel = 500_000_000) loaded =
  let program = Program.copy loaded.program in
  let session = loaded.fresh_session () in
  let _steps, _trap =
    Vmbp_core.Engine.run_functional ~fuel ~program ~exec:session.exec ()
  in
  program

(* Dynamic per-slot execution counts from a functional training run. *)
let dynamic_counts ?(fuel = 500_000_000) loaded =
  let program = Program.copy loaded.program in
  let session = loaded.fresh_session () in
  let counts = Array.make (Program.length program) 0 in
  let _ =
    Vmbp_core.Engine.run_functional ~fuel ~exec_counts:counts ~program
      ~exec:session.exec ()
  in
  (program, counts)

let profile_memo : (string, Profile.t) Hashtbl.t = Hashtbl.create 16
let profile_lock = Mutex.create ()

let training_profile ?(max_seq_len = 4) ~vm ~target ~scale () =
  let key =
    Printf.sprintf "%s/%s/%d/%d" (vm_name vm) target scale max_seq_len
  in
  locked profile_lock (fun () ->
      match Hashtbl.find_opt profile_memo key with
      | Some p -> p
      | None ->
          let profile = Profile.empty ~max_seq_len in
          (match vm with
          | Forth ->
              (* Train on brainless, as the paper does; the profile is dynamic
                 (weighted by execution counts). *)
              let trainer =
                match find ~vm:Forth "brainless" with
                | Some w -> w
                | None -> assert false
              in
              let loaded = trainer.load ~scale:(max 1 (scale / 2)) in
              let program, counts = dynamic_counts loaded in
              Profile.add_program ~weights:counts profile program
          | Jvm ->
              (* Leave-one-out static profiling over quickened programs. *)
              List.iter
                (fun w ->
                  if w.name <> target then
                    let loaded = w.load ~scale:1 in
                    Profile.add_program profile (quickened_program loaded))
                jvm);
          Hashtbl.replace profile_memo key profile;
          profile)

(** Two-level indirect branch predictor (Driesen and Hoelzle 1998).

    Keeps a global history of recent indirect-branch targets and indexes the
    target table with a hash of the branch address and that history.  The
    paper's related-work section (Section 8) notes that such predictors --
    first shipped in the Pentium M -- correctly predict most interpreter
    dispatch branches even without replication; we implement one so the
    benches can reproduce that comparison. *)

type config = {
  entries : int;  (** target table size (power of two) *)
  history : int;  (** number of recent targets in the history register *)
}

val default : config
(** 1024 entries, 4 targets of path history. *)

val descriptor : config -> string
(** Canonical fingerprint ["twolevel(entries,history)"] of the
    configuration; distinct configurations produce distinct strings.
    Stable across runs -- the resume journal embeds it. *)

type t

val create : config -> t
(** Raises [Invalid_argument] unless [entries] is a positive power of
    two and [history] is in 1..15 (each entry occupies 4 bits of the
    history register, which must fit a word). *)

val access : t -> branch:int -> target:int -> bool
(** Predict-and-update; returns [true] on a correct prediction. *)

val set_observer :
  t -> (branch:int -> index:int -> empty:bool -> correct:bool -> unit) option
  -> unit
(** Introspection hook, called once per {!access} with the table [index]
    the branch hashed to, whether that slot was still [empty], and the
    prediction outcome.  Absent (the default), the hook costs one match
    per access and can never change a decision -- same contract as the
    engine's [?poll] hook. *)

val reset : t -> unit

(** Instruction-cache simulator.

    Code growth is the price of replication (Section 7.4): more executable
    copies mean more I-cache misses.  The engine reports every executed code
    range through [fetch]; the cache counts line misses, which the pipeline
    model converts into cycles.  A configuration with [size_bytes = 0]
    disables the cache (no misses), modelling an infinite I-cache. *)

type config = {
  size_bytes : int;  (** total capacity; [0] = infinite (never misses) *)
  line_bytes : int;  (** line size, a power of two *)
  associativity : int;  (** ways per set *)
}

val infinite : config

val make_config :
  size_bytes:int -> line_bytes:int -> associativity:int -> config
(** Validates that the geometry divides evenly. *)

val descriptor : config -> string
(** Canonical fingerprint ["icache(size,line,assoc)"] of the geometry.
    Distinct configurations produce distinct strings, so the string is a
    safe key for memo tables and journal fingerprints; stable across runs
    (the resume journal embeds it). *)

type t

(** Validates the geometry like {!make_config} (raising
    [Invalid_argument]), so configurations built as literal records are
    checked too. *)
val create : config -> t
val config : t -> config

val create_bank : config list -> (string * t) list
(** Fresh caches for the requested geometries, deduplicated by
    {!descriptor} in first-occurrence order -- the construction step of a
    banked replay, which drives all of them over one fetch stream.
    Geometries whose {!create} raises are dropped: the bank simulates the
    valid ones, and the per-cell path re-raises the error with cell context
    when the invalid geometry is actually used. *)

val fetch : t -> addr:int -> bytes:int -> hits:int ref -> misses:int ref -> unit
(** Touch every line overlapping [addr, addr+bytes); adds the line hit and
    miss counts into the given accumulators.  Every counted line access --
    including fast-path hits on the internally memoized last line -- advances
    the LRU clock and refreshes that line's recency stamp. *)

val clock : t -> int
(** Number of line accesses applied to the LRU recency clock so far.  For a
    finite cache this equals the total hits plus misses reported by [fetch];
    the invariant is what keeps hot lines from going stale in the eviction
    order, and what tests use to pin the memoized fast path to the memo-free
    reference behaviour.  Always [0] for the infinite cache. *)

val resident : t -> line:int -> bool
(** Whether the given line index currently occupies a way (always [true] for
    the infinite cache).  Exposed for tests and cache-content tooling. *)

val set_observer : t -> (line:int -> set:int -> evicted:int -> unit) option -> unit
(** Introspection hook, called once per line miss with the missing line,
    its set, and the line tag the allocation displaced ([-1] when the way
    was empty).  The infinite cache never misses, so it never calls the
    observer.  Absent (the default), the hook costs one match on the miss
    path and can never change a decision. *)

val reset : t -> unit

(* Deliberately naive reference models of every predictor and of the
   I-cache, used as differential-testing oracles by the self-check
   harness (lib/report/audit.ml).

   Nothing here is shared with the fast simulators: sets are association
   lists walked front to back, tables are persistent [Map]s, and every
   update rebuilds the containing structure.  The point is that each
   model is small enough to audit by eye against the paper's description
   (BTB with optional two-bit hysteresis, per-set LRU; hashed two-level
   predictor; per-opcode case-block table; set-associative I-cache), so
   that when the fast simulator and the reference disagree, the fast
   simulator is the suspect. *)

module Imap = Map.Make (Int)

(* ------------------------------------------------------------------ *)
(* Branch target buffer *)

(* One way of a finite set, in declaration order.  A set is a plain list
   of exactly [associativity] ways; replacement rebuilds the list. *)
type ref_way = { tag : int; target : int; counter : int; stamp : int }

type ref_btb = {
  b_cfg : Btb.config;
  mutable b_sets : ref_way list array;  (* finite configuration *)
  mutable b_table : (int * int) Imap.t;  (* unbounded: branch -> target, ctr *)
  mutable b_tick : int;
}

let empty_way = { tag = -1; target = 0; counter = 0; stamp = 0 }

let create_btb (cfg : Btb.config) =
  (* Same validation rules as [Btb.create], restated independently. *)
  if cfg.Btb.entries < 0 then
    invalid_arg "Reference.create_btb: entries must be non-negative";
  if cfg.Btb.entries > 0 && cfg.Btb.associativity <= 0 then
    invalid_arg "Reference.create_btb: associativity must be positive";
  if cfg.Btb.entries > 0 && cfg.Btb.entries mod cfg.Btb.associativity <> 0
  then
    invalid_arg "Reference.create_btb: entries must divide by associativity";
  let nsets =
    if cfg.Btb.entries = 0 then 0
    else cfg.Btb.entries / cfg.Btb.associativity
  in
  let sets =
    Array.init nsets (fun _ -> List.init cfg.Btb.associativity (fun _ -> empty_way))
  in
  { b_cfg = cfg; b_sets = sets; b_table = Imap.empty; b_tick = 0 }

(* The training rule, spelled out as four explicit cases:
   - correct prediction: keep the target, strengthen the counter (cap 3);
   - wrong, no hysteresis: replace immediately, counter back to 0;
   - wrong, strong counter (>= 2): keep the stored target, weaken;
   - wrong, weak counter: replace, counter to 2 (newly confident). *)
let trained ~two_bit ~stored ~actual ~counter =
  if stored = actual then (stored, if counter >= 3 then 3 else counter + 1)
  else if not two_bit then (actual, 0)
  else if counter >= 2 then (stored, counter - 1)
  else (actual, 2)

let btb_access_unbounded t ~branch ~target =
  match Imap.find_opt branch t.b_table with
  | None ->
      t.b_table <- Imap.add branch (target, 2) t.b_table;
      false
  | Some (stored, counter) ->
      let correct = stored = target in
      let stored', counter' =
        trained ~two_bit:t.b_cfg.Btb.two_bit_counters ~stored ~actual:target
          ~counter
      in
      t.b_table <- Imap.add branch (stored', counter') t.b_table;
      correct

(* The earliest way (front of the list) with the smallest stamp: a later
   way must be strictly older to displace an earlier candidate. *)
let oldest_position ways =
  let rec scan pos best best_stamp = function
    | [] -> best
    | w :: rest ->
        if w.stamp < best_stamp then scan (pos + 1) pos w.stamp rest
        else scan (pos + 1) best best_stamp rest
  in
  match ways with
  | [] -> invalid_arg "Reference: empty set"
  | w :: rest -> scan 1 0 w.stamp rest

let replace_at pos ways way' =
  List.mapi (fun i w -> if i = pos then way' else w) ways

let btb_access_finite t ~branch ~target =
  t.b_tick <- t.b_tick + 1;
  let nsets = Array.length t.b_sets in
  let set_idx = branch / 4 mod nsets in
  let ways = t.b_sets.(set_idx) in
  let rec position i = function
    | [] -> None
    | w :: rest -> if w.tag = branch then Some (i, w) else position (i + 1) rest
  in
  match position 0 ways with
  | Some (pos, w) ->
      let correct = w.target = target in
      let stored', counter' =
        trained ~two_bit:t.b_cfg.Btb.two_bit_counters ~stored:w.target
          ~actual:target ~counter:w.counter
      in
      t.b_sets.(set_idx) <-
        replace_at pos ways
          { tag = branch; target = stored'; counter = counter'; stamp = t.b_tick };
      correct
  | None ->
      let pos = oldest_position ways in
      t.b_sets.(set_idx) <-
        replace_at pos ways
          { tag = branch; target; counter = 2; stamp = t.b_tick };
      false

let btb_access t ~branch ~target =
  if t.b_cfg.Btb.entries = 0 then btb_access_unbounded t ~branch ~target
  else btb_access_finite t ~branch ~target

(* ------------------------------------------------------------------ *)
(* Two-level predictor *)

type ref_two_level = {
  t_cfg : Two_level.config;
  mutable t_table : int Imap.t;  (* index -> last stored target *)
  mutable t_ghr : int;
}

let create_two_level (cfg : Two_level.config) =
  if cfg.Two_level.entries <= 0
     || cfg.Two_level.entries land (cfg.Two_level.entries - 1) <> 0
  then
    invalid_arg "Reference.create_two_level: entries must be a power of two";
  if cfg.Two_level.history <= 0 || cfg.Two_level.history > 15 then
    invalid_arg "Reference.create_two_level: history must be in 1..15";
  { t_cfg = cfg; t_table = Imap.empty; t_ghr = 0 }

let two_level_access t ~branch ~target =
  (* The index hash and history update are architectural definitions,
     restated here with plain arithmetic. *)
  let h = (branch * 2654435761) lxor t.t_ghr in
  let index = (h lsr 4) land (t.t_cfg.Two_level.entries - 1) in
  let stored = match Imap.find_opt index t.t_table with
    | Some v -> v
    | None -> -1
  in
  let correct = stored = target in
  t.t_table <- Imap.add index target t.t_table;
  let bits = 4 * t.t_cfg.Two_level.history in
  let mask = (1 lsl bits) - 1 in
  t.t_ghr <- ((t.t_ghr * 16) lxor (target / 16) lxor target) land mask;
  correct

(* ------------------------------------------------------------------ *)
(* Case-block table *)

type ref_case_block = {
  c_entries : int;
  mutable c_table : int Imap.t;  (* masked opcode -> last target *)
}

let create_case_block ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Reference.create_case_block: entries must be a power of two";
  { c_entries = entries; c_table = Imap.empty }

let case_block_access t ~opcode ~target =
  let index = opcode mod t.c_entries in
  let stored = match Imap.find_opt index t.c_table with
    | Some v -> v
    | None -> -1
  in
  let correct = stored = target in
  t.c_table <- Imap.add index target t.c_table;
  correct

(* ------------------------------------------------------------------ *)
(* The common predictor interface *)

type predictor =
  | P_btb of ref_btb
  | P_two_level of ref_two_level
  | P_case_block of ref_case_block
  | P_perfect
  | P_never

let create_predictor (kind : Predictor.kind) =
  match kind with
  | Predictor.Btb cfg -> P_btb (create_btb cfg)
  | Predictor.Two_level cfg -> P_two_level (create_two_level cfg)
  | Predictor.Case_block entries -> P_case_block (create_case_block ~entries)
  | Predictor.Perfect -> P_perfect
  | Predictor.Never -> P_never

let access p ~branch ~target ~opcode =
  match p with
  | P_btb t -> btb_access t ~branch ~target
  | P_two_level t -> two_level_access t ~branch ~target
  | P_case_block t -> case_block_access t ~opcode ~target
  | P_perfect -> true
  | P_never -> false

(* ------------------------------------------------------------------ *)
(* I-cache *)

type cache_line = { line_tag : int; line_stamp : int }

type icache = {
  i_cfg : Icache.config;
  i_nsets : int;
  mutable i_sets : cache_line list array;  (* per set, newest state *)
  mutable i_tick : int;
}

let create_icache (cfg : Icache.config) =
  if cfg.Icache.size_bytes < 0 then
    invalid_arg "Reference.create_icache: size must be non-negative";
  if cfg.Icache.line_bytes <= 0
     || cfg.Icache.line_bytes land (cfg.Icache.line_bytes - 1) <> 0
  then invalid_arg "Reference.create_icache: line size must be a power of two";
  if cfg.Icache.associativity <= 0 then
    invalid_arg "Reference.create_icache: associativity must be positive";
  let nsets =
    if cfg.Icache.size_bytes = 0 then 0
    else cfg.Icache.size_bytes / cfg.Icache.line_bytes / cfg.Icache.associativity
  in
  let sets =
    Array.init nsets (fun _ ->
        List.init cfg.Icache.associativity (fun _ ->
            { line_tag = -1; line_stamp = 0 }))
  in
  { i_cfg = cfg; i_nsets = nsets; i_sets = sets; i_tick = 0 }

(* Touch one line: LRU within the set, oldest-first-position victim. *)
let touch t line =
  t.i_tick <- t.i_tick + 1;
  let set_idx = line mod t.i_nsets in
  let ways = t.i_sets.(set_idx) in
  let rec position i = function
    | [] -> None
    | w :: rest ->
        if w.line_tag = line then Some i else position (i + 1) rest
  in
  let oldest ways =
    let rec scan pos best best_stamp = function
      | [] -> best
      | w :: rest ->
          if w.line_stamp < best_stamp then scan (pos + 1) pos w.line_stamp rest
          else scan (pos + 1) best best_stamp rest
    in
    match ways with
    | [] -> invalid_arg "Reference: empty cache set"
    | w :: rest -> scan 1 0 w.line_stamp rest
  in
  let store pos =
    t.i_sets.(set_idx) <-
      List.mapi
        (fun i w ->
          if i = pos then { line_tag = line; line_stamp = t.i_tick } else w)
        ways
  in
  match position 0 ways with
  | Some pos -> store pos; true
  | None -> store (oldest ways); false

let fetch t ~addr ~bytes ~hits ~misses =
  let span = if bytes >= 1 then bytes else 1 in
  let first = addr / t.i_cfg.Icache.line_bytes in
  let last = (addr + span - 1) / t.i_cfg.Icache.line_bytes in
  if t.i_cfg.Icache.size_bytes = 0 then
    (* Infinite cache: every line of the span hits. *)
    hits := !hits + (last - first + 1)
  else
    for line = first to last do
      if touch t line then incr hits else incr misses
    done

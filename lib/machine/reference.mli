(** Naive, obviously-correct reference models of the predictors and of
    the I-cache, used as differential-testing oracles.

    These implementations share no code with {!Btb}, {!Two_level},
    {!Case_block_table}, {!Icache} or {!Predictor}: sets are association
    lists, tables are persistent maps, and every update rebuilds its
    structure.  They are meant to be slow and transparent.  The
    self-check harness (Audit, in the report library) drives a fast
    simulator and a reference model over the same event stream and flags
    the first event where their answers differ. *)

(** {1 Predictors} *)

type predictor

(** Build a reference model of the given predictor kind.  Validates the
    configuration with the same rules as the fast constructors and
    raises [Invalid_argument] on a malformed one. *)
val create_predictor : Predictor.kind -> predictor

(** Same contract as {!Predictor.access}: record the outcome of one
    indirect branch and return whether the model predicted it. *)
val access : predictor -> branch:int -> target:int -> opcode:int -> bool

(** {1 I-cache} *)

type icache

(** Build a reference model of the I-cache.  [size_bytes = 0] is the
    infinite cache, as for {!Icache.create}. *)
val create_icache : Icache.config -> icache

(** Same contract as {!Icache.fetch}: count one hit or miss per cache
    line the fetched span touches. *)
val fetch :
  icache -> addr:int -> bytes:int -> hits:int ref -> misses:int ref -> unit

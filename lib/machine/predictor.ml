type kind =
  | Btb of Btb.config
  | Two_level of Two_level.config
  | Case_block of int
  | Perfect
  | Never

let kind_name = function
  | Btb { two_bit_counters = false; entries = 0; _ } -> "btb-ideal"
  | Btb { two_bit_counters = false; _ } -> "btb"
  | Btb { two_bit_counters = true; _ } -> "btb-2bc"
  | Two_level _ -> "two-level"
  | Case_block _ -> "case-block-table"
  | Perfect -> "perfect"
  | Never -> "never"

let descriptor = function
  | Btb cfg -> Btb.descriptor cfg
  | Two_level cfg -> Two_level.descriptor cfg
  | Case_block entries -> Case_block_table.descriptor ~entries
  | Perfect -> "perfect"
  | Never -> "never"

type state =
  | S_btb of Btb.t
  | S_two_level of Two_level.t
  | S_case_block of Case_block_table.t
  | S_perfect
  | S_never

type t = { kind : kind; state : state }

let create kind =
  let state =
    match kind with
    | Btb cfg -> S_btb (Btb.create cfg)
    | Two_level cfg -> S_two_level (Two_level.create cfg)
    | Case_block entries -> S_case_block (Case_block_table.create ~entries)
    | Perfect -> S_perfect
    | Never -> S_never
  in
  { kind; state }

let create_bank kinds =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun k ->
      let d = descriptor k in
      if Hashtbl.mem seen d then None
      else begin
        Hashtbl.add seen d ();
        match create k with
        | sim -> Some (d, sim)
        | exception _ -> None
      end)
    kinds

let kind t = t.kind
let btb t = match t.state with S_btb b -> Some b | _ -> None
let two_level t = match t.state with S_two_level p -> Some p | _ -> None

let access t ~branch ~target ~opcode =
  match t.state with
  | S_btb b -> Btb.access b ~branch ~target
  | S_two_level p -> Two_level.access p ~branch ~target
  | S_case_block c -> Case_block_table.access c ~opcode ~target
  | S_perfect -> true
  | S_never -> false

let reset t =
  match t.state with
  | S_btb b -> Btb.reset b
  | S_two_level p -> Two_level.reset p
  | S_case_block c -> Case_block_table.reset c
  | S_perfect | S_never -> ()

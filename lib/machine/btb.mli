(** Branch target buffer simulator (Section 2.2 of the paper).

    A BTB is indexed by the address of an indirect branch and predicts that
    the branch jumps to the same target as on its previous execution.  Real
    BTBs have limited capacity and associativity, producing capacity and
    conflict misses; an unbounded configuration models the idealised BTB used
    in the paper's worked examples (Tables I-IV).

    The optional two-bit-counter variant ("BTB-2bc", from Ertl and Gregg
    2003b) only replaces a stored target after the entry has mispredicted on
    two consecutive executions, which filters out transient target changes. *)

type config = {
  entries : int;  (** total entries; [0] means unbounded (idealised BTB) *)
  associativity : int;  (** ways per set; ignored when unbounded *)
  two_bit_counters : bool;  (** hysteresis on target replacement *)
}

val ideal : config
(** Unbounded BTB, immediate target replacement. *)

val classic : entries:int -> associativity:int -> config
(** Finite BTB without counters, as in the Pentium III / Athlon. *)

val with_counters : entries:int -> associativity:int -> config
(** Finite BTB with two-bit counters. *)

val descriptor : config -> string
(** Canonical fingerprint ["btb(entries,assoc,two_bit)"] of the
    configuration; distinct configurations produce distinct strings.
    Stable across runs -- the resume journal embeds it. *)

type t

val create : config -> t

val config : t -> config

val set_index : t -> int -> int
(** The set the branch at the given byte address maps to.  Only meaningful
    for finite configurations.  Exposed so tests can check that neighbouring
    dispatch branches spread across sets instead of piling into one. *)

val predict : t -> branch:int -> int option
(** Predicted target for the branch at address [branch], if any entry is
    present.  Does not update any state. *)

val access : t -> branch:int -> target:int -> bool
(** Perform one predict-and-update cycle: returns [true] when the stored
    prediction matched [target], then trains the table on the outcome. *)

val reset : t -> unit
(** Forget all stored targets. *)

(** {2 Introspection}

    One outcome per {!access}, reported to an optional observer.  The
    observer sees exactly what the simulator decided -- it can never
    change a decision -- and costs one match per access when absent, so
    production runs pay nothing measurable (same contract as the engine's
    [?poll] hook). *)

type outcome =
  | Hit  (** entry present, predicted target correct *)
  | Wrong_target  (** entry present for this branch, stale target *)
  | Miss of { evicted : int }
      (** no entry; one was allocated, displacing the branch [evicted]
          ([-1] when the way was empty).  Unbounded tables never evict. *)

type observer = branch:int -> set:int -> outcome -> unit
(** [set] is {!set_index} of the branch, or [-1] for unbounded tables. *)

val set_observer : t -> observer option -> unit

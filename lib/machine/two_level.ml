type config = { entries : int; history : int }

let default = { entries = 1024; history = 4 }

(* The format is embedded in resume-journal fingerprints; keep it stable. *)
let descriptor { entries; history } =
  Printf.sprintf "twolevel(%d,%d)" entries history

type t = {
  cfg : config;
  table : int array;  (* predicted targets, -1 = empty *)
  mutable ghr : int;  (* hashed path history register *)
  (* Introspection hook, called once per access; [None] costs one match
     and never alters any decision. *)
  mutable observer :
    (branch:int -> index:int -> empty:bool -> correct:bool -> unit) option;
}

let create cfg =
  if cfg.entries <= 0 || cfg.entries land (cfg.entries - 1) <> 0 then
    invalid_arg "Two_level.create: entries must be a positive power of two";
  (* Each history entry contributes 4 bits to the register; above 15 the
     mask shift would exceed the OCaml word and the register silently
     degenerates, so reject it up front like the other geometry checks. *)
  if cfg.history <= 0 || cfg.history > 15 then
    invalid_arg "Two_level.create: history must be in 1..15";
  { cfg; table = Array.make cfg.entries (-1); ghr = 0; observer = None }

let set_observer t obs = t.observer <- obs

(* Fold the branch address and path history into a table index.  The
   multiplicative hash spreads byte addresses that share low bits. *)
let index t branch =
  let h = (branch * 2654435761) lxor t.ghr in
  (h lsr 4) land (t.cfg.entries - 1)

let push_history t target =
  let bits = 4 * t.cfg.history in
  let mask = (1 lsl bits) - 1 in
  t.ghr <- ((t.ghr lsl 4) lxor (target lsr 4) lxor target) land mask

let access t ~branch ~target =
  let i = index t branch in
  let prev = t.table.(i) in
  let correct = prev = target in
  t.table.(i) <- target;
  push_history t target;
  (match t.observer with
  | None -> ()
  | Some f -> f ~branch ~index:i ~empty:(prev = -1) ~correct);
  correct

let reset t =
  Array.fill t.table 0 (Array.length t.table) (-1);
  t.ghr <- 0

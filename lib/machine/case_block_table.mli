(** Case block table (Kaeli and Emma 1994, 1997).

    A history-based predictor designed for switch statements: the target
    table is indexed by the switch operand -- for a VM interpreter, the
    opcode of the next VM instruction -- rather than by the branch address.
    This gives near-perfect prediction for a switch-based interpreter
    because the opcode determines the target exactly (Section 8). *)

type t

val create : entries:int -> t
(** [entries] must be a positive power of two. *)

val descriptor : entries:int -> string
(** Canonical fingerprint ["caseblock(entries)"] of the configuration;
    distinct entry counts produce distinct strings.  Stable across runs --
    the resume journal embeds it. *)

val access : t -> opcode:int -> target:int -> bool
(** Predict the target for the dispatch on [opcode] and train the table;
    returns [true] on a correct prediction. *)

val reset : t -> unit

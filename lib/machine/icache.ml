type config = { size_bytes : int; line_bytes : int; associativity : int }

let infinite = { size_bytes = 0; line_bytes = 32; associativity = 1 }

(* The format is embedded in resume-journal fingerprints; keep it stable. *)
let descriptor { size_bytes; line_bytes; associativity } =
  Printf.sprintf "icache(%d,%d,%d)" size_bytes line_bytes associativity

let make_config ~size_bytes ~line_bytes ~associativity =
  if line_bytes <= 0 || line_bytes land (line_bytes - 1) <> 0 then
    invalid_arg "Icache.make_config: line_bytes must be a power of two";
  if size_bytes <> 0 then begin
    let lines = size_bytes / line_bytes in
    if lines * line_bytes <> size_bytes then
      invalid_arg "Icache.make_config: size must be a multiple of line size";
    if lines mod associativity <> 0 then
      invalid_arg "Icache.make_config: lines must divide by associativity"
  end;
  { size_bytes; line_bytes; associativity }

type t = {
  cfg : config;
  infinite : bool;  (* [cfg.size_bytes = 0], flat -- skips the config
                       pointer chase on every fetch *)
  assoc : int;  (* [cfg.associativity], flat, for the per-fetch set scan *)
  nsets : int;
  line_shift : int;
      (* log2 of [line_bytes] (enforced a power of two), so the per-fetch
         address-to-line map is a shift, not a division *)
  set_mask : int;  (* nsets - 1 when a power of two, else -1 = use [mod] *)
  tags : int array;  (* nsets * associativity, -1 = invalid *)
  stamps : int array;
  mutable tick : int;
  (* One-entry fetch memo: consecutive fetches of the same line (straight-
     line execution inside a block) hit without a full set scan.  [last_slot]
     is the way the memoized line occupies, so a memo hit can refresh the
     line's LRU stamp without rescanning the set: skipping the refresh would
     leave the hot line's stamp stale and let it be evicted as the "LRU"
     victim, inflating miss counts for exactly the replicated layouts whose
     I-cache pressure the paper measures (Section 7.4). *)
  mutable last_line : int;
  mutable last_slot : int;
  (* Introspection hook, called once per line miss; [None] costs one
     match on the miss path only and never alters any decision. *)
  mutable observer : (line:int -> set:int -> evicted:int -> unit) option;
}

let create cfg =
  (* Same rules as [make_config], re-checked here because configurations
     also arrive as literal records (CPU profiles, CLI flags).  Without
     this, a bad geometry surfaces later as [Division_by_zero] in the
     per-fetch set lookup and aborts a whole worker pool instead of
     failing one cell. *)
  if cfg.size_bytes < 0 then
    invalid_arg "Icache.create: size must be non-negative";
  if cfg.line_bytes <= 0 || cfg.line_bytes land (cfg.line_bytes - 1) <> 0 then
    invalid_arg "Icache.create: line_bytes must be a power of two";
  if cfg.associativity <= 0 then
    invalid_arg "Icache.create: associativity must be positive";
  if cfg.size_bytes <> 0 then begin
    let lines = cfg.size_bytes / cfg.line_bytes in
    if lines * cfg.line_bytes <> cfg.size_bytes then
      invalid_arg "Icache.create: size must be a multiple of line size";
    if lines mod cfg.associativity <> 0 then
      invalid_arg "Icache.create: lines must divide by associativity"
  end;
  let nsets =
    if cfg.size_bytes = 0 then 0
    else cfg.size_bytes / cfg.line_bytes / cfg.associativity
  in
  let line_shift =
    let rec log2 k n = if n <= 1 then k else log2 (k + 1) (n lsr 1) in
    log2 0 cfg.line_bytes
  in
  {
    cfg;
    infinite = cfg.size_bytes = 0;
    assoc = cfg.associativity;
    nsets;
    line_shift;
    set_mask =
      (if nsets > 0 && nsets land (nsets - 1) = 0 then nsets - 1 else -1);
    tags = Array.make (max 1 (nsets * cfg.associativity)) (-1);
    stamps = Array.make (max 1 (nsets * cfg.associativity)) 0;
    tick = 0;
    last_line = -1;
    last_slot = -1;
    observer = None;
  }

let create_bank configs =
  let seen = Hashtbl.create 8 in
  List.filter_map
    (fun cfg ->
      let d = descriptor cfg in
      if Hashtbl.mem seen d then None
      else begin
        Hashtbl.add seen d ();
        match create cfg with
        | sim -> Some (d, sim)
        | exception _ -> None
      end)
    configs

let config t = t.cfg
let set_observer t obs = t.observer <- obs

let touch_line t line =
  let assoc = t.assoc in
  let set = if t.set_mask >= 0 then line land t.set_mask else line mod t.nsets in
  let base = set * assoc in
  let tags = t.tags in
  t.tick <- t.tick + 1;
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < assoc do
    if Array.unsafe_get tags (base + !i) = line then hit := base + !i;
    incr i
  done;
  if !hit >= 0 then begin
    Array.unsafe_set t.stamps !hit t.tick;
    t.last_slot <- !hit;
    true
  end
  else begin
    let stamps = t.stamps in
    let victim = ref base in
    for i = 1 to assoc - 1 do
      if Array.unsafe_get stamps (base + i) < Array.unsafe_get stamps !victim
      then victim := base + i
    done;
    let j = !victim in
    let evicted = Array.unsafe_get tags j in
    Array.unsafe_set tags j line;
    Array.unsafe_set stamps j t.tick;
    t.last_slot <- j;
    (match t.observer with
    | None -> ()
    | Some f -> f ~line ~set ~evicted);
    false
  end

let fetch t ~addr ~bytes ~hits ~misses =
  let shift = t.line_shift in
  let first = addr lsr shift in
  let last = (addr + max 1 bytes - 1) lsr shift in
  if t.infinite then hits := !hits + (last - first + 1)
  else if last = first && first = t.last_line then begin
    (* Single-line memo hit, the overwhelmingly common fetch: straight-line
       code re-fetching the line it already ran from.  Same bookkeeping as
       the loop's memo arm, minus the loop. *)
    let tk = t.tick + 1 in
    t.tick <- tk;
    Array.unsafe_set t.stamps t.last_slot tk;
    incr hits
  end
  else
    for line = first to last do
      if line = t.last_line then begin
        (* Memo hit: the line is resident in [last_slot].  Advance the LRU
           clock and refresh the stamp exactly as the full-scan path would,
           so the memoized run stays in lock-step with a memo-free one. *)
        let tk = t.tick + 1 in
        t.tick <- tk;
        Array.unsafe_set t.stamps t.last_slot tk;
        incr hits
      end
      else begin
        t.last_line <- line;
        if touch_line t line then incr hits else incr misses
      end
    done

let clock t = t.tick

let resident t ~line =
  if t.cfg.size_bytes = 0 then true
  else begin
    let assoc = t.cfg.associativity in
    let base = line mod t.nsets * assoc in
    let rec find i = i < assoc && (t.tags.(base + i) = line || find (i + 1)) in
    find 0
  end

let reset t =
  Array.fill t.tags 0 (Array.length t.tags) (-1);
  Array.fill t.stamps 0 (Array.length t.stamps) 0;
  t.tick <- 0;
  t.last_line <- -1;
  t.last_slot <- -1

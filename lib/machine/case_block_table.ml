type t = { table : int array; mask : int }

(* The format is embedded in resume-journal fingerprints; keep it stable. *)
let descriptor ~entries = Printf.sprintf "caseblock(%d)" entries

let create ~entries =
  if entries <= 0 || entries land (entries - 1) <> 0 then
    invalid_arg "Case_block_table.create: entries must be a power of two";
  { table = Array.make entries (-1); mask = entries - 1 }

let access t ~opcode ~target =
  let i = opcode land t.mask in
  let correct = t.table.(i) = target in
  t.table.(i) <- target;
  correct

let reset t = Array.fill t.table 0 (Array.length t.table) (-1)

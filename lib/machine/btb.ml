type config = {
  entries : int;
  associativity : int;
  two_bit_counters : bool;
}

let ideal = { entries = 0; associativity = 1; two_bit_counters = false }

let classic ~entries ~associativity =
  { entries; associativity; two_bit_counters = false }

let with_counters ~entries ~associativity =
  { entries; associativity; two_bit_counters = true }

(* The format is embedded in resume-journal fingerprints; keep it stable. *)
let descriptor { entries; associativity; two_bit_counters } =
  Printf.sprintf "btb(%d,%d,%b)" entries associativity two_bit_counters

(* One way of one set is four parallel-array slots at [set * assoc + i]:
   [tag] is the full branch address (-1 = invalid); [counter] implements
   the two-bit hysteresis (3..2 = strong, replace only below 2); [stamp]
   is a per-set LRU timestamp.  Flat int arrays instead of an array of
   way records: the access path runs once per dispatch token -- the
   hottest simulator code in both direct runs and replay -- and scanning
   boxed records costs one pointer chase per way examined. *)

(* The unbounded ("ideal") table: open-addressing over flat int arrays,
   keyed by branch address with linear probing.  This table takes one
   lookup per dispatch token per bank configuration in replay -- a generic
   [Hashtbl] there costs a hash closure, a boxed bucket walk and an option
   allocation per access, which measured ~3x the whole rest of the replay
   loop -- so it gets the same flat-array treatment as the finite sets.
   [-1] marks an empty slot (branch addresses are non-negative). *)
type ub = {
  mutable ub_keys : int array;
  mutable ub_targets : int array;
  mutable ub_counters : int array;
  mutable ub_count : int;
  mutable ub_mask : int;
}

let ub_create () =
  let cap = 1024 in
  {
    ub_keys = Array.make cap (-1);
    ub_targets = Array.make cap 0;
    ub_counters = Array.make cap 0;
    ub_count = 0;
    ub_mask = cap - 1;
  }

let ub_slot u branch =
  (* Multiplicative hash; linear probe.  The table never exceeds half
     load, so probes terminate. *)
  let i = ref ((branch * 0x9E3779B1) lsr 7 land u.ub_mask) in
  let keys = u.ub_keys in
  while
    let k = Array.unsafe_get keys !i in
    k <> branch && k >= 0
  do
    i := (!i + 1) land u.ub_mask
  done;
  !i

let ub_grow u =
  let keys = u.ub_keys and targets = u.ub_targets and counters = u.ub_counters in
  let cap = 2 * Array.length keys in
  u.ub_keys <- Array.make cap (-1);
  u.ub_targets <- Array.make cap 0;
  u.ub_counters <- Array.make cap 0;
  u.ub_mask <- cap - 1;
  Array.iteri
    (fun i k ->
      if k >= 0 then begin
        let j = ub_slot u k in
        u.ub_keys.(j) <- k;
        u.ub_targets.(j) <- targets.(i);
        u.ub_counters.(j) <- counters.(i)
      end)
    keys

let ub_reset u =
  Array.fill u.ub_keys 0 (Array.length u.ub_keys) (-1);
  u.ub_count <- 0

type outcome = Hit | Wrong_target | Miss of { evicted : int }

type observer = branch:int -> set:int -> outcome -> unit

type t = {
  cfg : config;
  two_bit : bool;  (* [cfg.two_bit_counters], flat -- skips the config
                      pointer chase on every access *)
  assoc : int;  (* ways per set; 0 = unbounded configuration *)
  nsets : int;
  f_tags : int array;  (* finite table, way-major within each set *)
  f_targets : int array;
  f_counters : int array;
  f_stamps : int array;
  set_mask : int;
      (* nsets - 1 when the set count is a power of two (every paper
         geometry), so the per-access set index is a mask instead of a
         division; -1 = fall back to [mod] *)
  unbounded : ub;  (* branch -> target, counter *)
  mutable tick : int;
  (* Introspection hook for attribution tooling; [None] (the default)
     costs one match per access and must never change any decision the
     simulator makes. *)
  mutable observer : observer option;
}

let create cfg =
  (* [entries = 0] is the documented unbounded-table sentinel ({!ideal});
     anything below it can only come from a malformed configuration, and
     without this check it would surface as an obscure [Array.init] or
     modulo failure deep in the hot loop. *)
  if cfg.entries < 0 then
    invalid_arg "Btb.create: entries must be non-negative";
  if cfg.entries > 0 && cfg.associativity <= 0 then
    invalid_arg "Btb.create: associativity must be positive";
  if cfg.entries > 0 && cfg.entries mod cfg.associativity <> 0 then
    invalid_arg "Btb.create: entries must be a multiple of associativity";
  let assoc = if cfg.entries = 0 then 0 else cfg.associativity in
  let nsets = if assoc = 0 then 0 else cfg.entries / cfg.associativity in
  let set_mask =
    if nsets > 0 && nsets land (nsets - 1) = 0 then nsets - 1 else -1
  in
  {
    cfg;
    two_bit = cfg.two_bit_counters;
    assoc;
    nsets;
    f_tags = Array.make (max 1 cfg.entries) (-1);
    f_targets = Array.make (max 1 cfg.entries) 0;
    f_counters = Array.make (max 1 cfg.entries) 0;
    f_stamps = Array.make (max 1 cfg.entries) 0;
    set_mask;
    unbounded = ub_create ();
    tick = 0;
    observer = None;
  }

let config t = t.cfg
let set_observer t obs = t.observer <- obs

let set_index t branch =
  (* Branch addresses are byte addresses; drop low bits so neighbouring
     branches do not all collide in set 0. *)
  let h = branch lsr 2 in
  if t.set_mask >= 0 then h land t.set_mask else h mod t.nsets

(* Slot of [branch] in the finite table, -1 when absent. *)
let find_slot t branch =
  let base = set_index t branch * t.assoc in
  let rec loop i =
    if i >= t.assoc then -1
    else if t.f_tags.(base + i) = branch then base + i
    else loop (i + 1)
  in
  loop 0

let predict t ~branch =
  if t.assoc = 0 then begin
    if branch < 0 then None
    else
      let u = t.unbounded in
      let i = ub_slot u branch in
      if u.ub_keys.(i) = branch then Some u.ub_targets.(i) else None
  end
  else
    match find_slot t branch with
    | -1 -> None
    | j -> Some t.f_targets.(j)

(* Training discipline (inlined at both access sites to keep the per-token
   path allocation-free): with two-bit counters a correct prediction
   saturates the counter at 3; an incorrect one decrements it and only
   replaces the target once the counter drops below 2. *)

let observe t ~branch ~set outcome =
  match t.observer with None -> () | Some f -> f ~branch ~set outcome

(* [access_*] run once per dispatch token per bank configuration -- the
   hottest code in replay -- so they avoid the option-allocating lookups
   and only build observer payloads when an observer is installed. *)

let access_unbounded t ~branch ~target =
  if branch < 0 then invalid_arg "Btb.access: negative branch address";
  let u = t.unbounded in
  let i = ub_slot u branch in
  if Array.unsafe_get u.ub_keys i = branch then begin
    let stored = Array.unsafe_get u.ub_targets i in
    let correct = stored = target in
    let counter = Array.unsafe_get u.ub_counters i in
    (if correct then
       Array.unsafe_set u.ub_counters i (if counter >= 3 then 3 else counter + 1)
     else if not t.two_bit then begin
       Array.unsafe_set u.ub_targets i target;
       Array.unsafe_set u.ub_counters i 0
     end
     else if counter >= 2 then Array.unsafe_set u.ub_counters i (counter - 1)
     else begin
       Array.unsafe_set u.ub_targets i target;
       Array.unsafe_set u.ub_counters i 2
     end);
    (match t.observer with
    | None -> ()
    | Some _ ->
        observe t ~branch ~set:(-1) (if correct then Hit else Wrong_target));
    correct
  end
  else begin
    u.ub_keys.(i) <- branch;
    u.ub_targets.(i) <- target;
    u.ub_counters.(i) <- 2;
    u.ub_count <- u.ub_count + 1;
    if 2 * u.ub_count > Array.length u.ub_keys then ub_grow t.unbounded;
    observe t ~branch ~set:(-1) (Miss { evicted = -1 });
    false
  end

let access_finite t ~branch ~target =
  t.tick <- t.tick + 1;
  let assoc = t.assoc in
  let si = set_index t branch in
  let base = si * assoc in
  let tags = t.f_tags in
  let hit = ref (-1) in
  let i = ref 0 in
  while !hit < 0 && !i < assoc do
    if Array.unsafe_get tags (base + !i) = branch then hit := base + !i;
    incr i
  done;
  if !hit >= 0 then begin
    let j = !hit in
    let targets = t.f_targets and counters = t.f_counters in
    let correct = Array.unsafe_get targets j = target in
    let c = Array.unsafe_get counters j in
    (if correct then Array.unsafe_set counters j (if c >= 3 then 3 else c + 1)
     else if not t.two_bit then begin
       Array.unsafe_set targets j target;
       Array.unsafe_set counters j 0
     end
     else if c >= 2 then Array.unsafe_set counters j (c - 1)
     else begin
       Array.unsafe_set targets j target;
       Array.unsafe_set counters j 2
     end);
    Array.unsafe_set t.f_stamps j t.tick;
    (match t.observer with
    | None -> ()
    | Some _ ->
        observe t ~branch ~set:si (if correct then Hit else Wrong_target));
    correct
  end
  else begin
    (* Miss: allocate the LRU way of the set. *)
    let stamps = t.f_stamps in
    let victim = ref base in
    for i = 1 to assoc - 1 do
      if Array.unsafe_get stamps (base + i) < Array.unsafe_get stamps !victim
      then victim := base + i
    done;
    let j = !victim in
    let evicted = Array.unsafe_get tags j in
    Array.unsafe_set tags j branch;
    Array.unsafe_set t.f_targets j target;
    Array.unsafe_set t.f_counters j 2;
    Array.unsafe_set stamps j t.tick;
    observe t ~branch ~set:si (Miss { evicted });
    false
  end

let access t ~branch ~target =
  if t.assoc = 0 then access_unbounded t ~branch ~target
  else access_finite t ~branch ~target

let reset t =
  ub_reset t.unbounded;
  t.tick <- 0;
  Array.fill t.f_tags 0 (Array.length t.f_tags) (-1);
  Array.fill t.f_targets 0 (Array.length t.f_targets) 0;
  Array.fill t.f_counters 0 (Array.length t.f_counters) 0;
  Array.fill t.f_stamps 0 (Array.length t.f_stamps) 0

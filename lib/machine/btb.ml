type config = {
  entries : int;
  associativity : int;
  two_bit_counters : bool;
}

let ideal = { entries = 0; associativity = 1; two_bit_counters = false }

let classic ~entries ~associativity =
  { entries; associativity; two_bit_counters = false }

let with_counters ~entries ~associativity =
  { entries; associativity; two_bit_counters = true }

(* The format is embedded in resume-journal fingerprints; keep it stable. *)
let descriptor { entries; associativity; two_bit_counters } =
  Printf.sprintf "btb(%d,%d,%b)" entries associativity two_bit_counters

(* One way of one set.  [tag] is the full branch address (-1 = invalid);
   [counter] implements the two-bit hysteresis (3..2 = strong, replace only
   below 2); [stamp] is a per-set LRU timestamp. *)
type way = { mutable tag : int; mutable target : int; mutable counter : int;
             mutable stamp : int }

(* Unbounded-table entry: mutated in place on every training update, so the
   hot loop neither allocates nor re-hashes after a branch's first miss. *)
type ub_entry = { mutable ub_target : int; mutable ub_counter : int }

type outcome = Hit | Wrong_target | Miss of { evicted : int }

type observer = branch:int -> set:int -> outcome -> unit

type t = {
  cfg : config;
  sets : way array array;  (* finite configuration *)
  unbounded : (int, ub_entry) Hashtbl.t;  (* branch -> target, counter *)
  mutable tick : int;
  (* Introspection hook for attribution tooling; [None] (the default)
     costs one match per access and must never change any decision the
     simulator makes. *)
  mutable observer : observer option;
}

let create cfg =
  (* [entries = 0] is the documented unbounded-table sentinel ({!ideal});
     anything below it can only come from a malformed configuration, and
     without this check it would surface as an obscure [Array.init] or
     modulo failure deep in the hot loop. *)
  if cfg.entries < 0 then
    invalid_arg "Btb.create: entries must be non-negative";
  if cfg.entries > 0 && cfg.associativity <= 0 then
    invalid_arg "Btb.create: associativity must be positive";
  let sets =
    if cfg.entries = 0 then [||]
    else begin
      if cfg.entries mod cfg.associativity <> 0 then
        invalid_arg "Btb.create: entries must be a multiple of associativity";
      let nsets = cfg.entries / cfg.associativity in
      Array.init nsets (fun _ ->
          Array.init cfg.associativity (fun _ ->
              { tag = -1; target = 0; counter = 0; stamp = 0 }))
    end
  in
  { cfg; sets; unbounded = Hashtbl.create 1024; tick = 0; observer = None }

let config t = t.cfg
let set_observer t obs = t.observer <- obs

let set_index t branch =
  let nsets = Array.length t.sets in
  (* Branch addresses are byte addresses; drop low bits so neighbouring
     branches do not all collide in set 0. *)
  (branch lsr 2) mod nsets

let find_way t branch =
  let set = t.sets.(set_index t branch) in
  let rec loop i =
    if i >= Array.length set then None
    else if set.(i).tag = branch then Some set.(i)
    else loop (i + 1)
  in
  loop 0

let predict t ~branch =
  if t.cfg.entries = 0 then
    match Hashtbl.find_opt t.unbounded branch with
    | Some e -> Some e.ub_target
    | None -> None
  else
    match find_way t branch with Some w -> Some w.target | None -> None

(* Train one entry on the actual target.  With two-bit counters a correct
   prediction saturates the counter at 3; an incorrect one decrements it and
   only replaces the target once the counter drops below 2. *)
let train_counter ~two_bit ~stored ~target ~counter =
  if stored = target then (stored, min 3 (counter + 1))
  else if not two_bit then (target, 0)
  else if counter >= 2 then (stored, counter - 1)
  else (target, 2)

let observe t ~branch ~set outcome =
  match t.observer with None -> () | Some f -> f ~branch ~set outcome

let access_unbounded t ~branch ~target =
  match Hashtbl.find_opt t.unbounded branch with
  | None ->
      Hashtbl.replace t.unbounded branch { ub_target = target; ub_counter = 2 };
      observe t ~branch ~set:(-1) (Miss { evicted = -1 });
      false
  | Some e ->
      let correct = e.ub_target = target in
      let stored', counter' =
        train_counter ~two_bit:t.cfg.two_bit_counters ~stored:e.ub_target
          ~target ~counter:e.ub_counter
      in
      e.ub_target <- stored';
      e.ub_counter <- counter';
      observe t ~branch ~set:(-1) (if correct then Hit else Wrong_target);
      correct

let access_finite t ~branch ~target =
  t.tick <- t.tick + 1;
  let set = t.sets.(set_index t branch) in
  match find_way t branch with
  | Some w ->
      let correct = w.target = target in
      let stored', counter' =
        train_counter ~two_bit:t.cfg.two_bit_counters ~stored:w.target ~target
          ~counter:w.counter
      in
      w.target <- stored';
      w.counter <- counter';
      w.stamp <- t.tick;
      observe t ~branch ~set:(set_index t branch)
        (if correct then Hit else Wrong_target);
      correct
  | None ->
      (* Miss: allocate the LRU way of the set. *)
      let victim = ref set.(0) in
      Array.iter (fun w -> if w.stamp < !victim.stamp then victim := w) set;
      let w = !victim in
      let evicted = w.tag in
      w.tag <- branch;
      w.target <- target;
      w.counter <- 2;
      w.stamp <- t.tick;
      observe t ~branch ~set:(set_index t branch) (Miss { evicted });
      false

let access t ~branch ~target =
  if t.cfg.entries = 0 then access_unbounded t ~branch ~target
  else access_finite t ~branch ~target

let reset t =
  Hashtbl.reset t.unbounded;
  t.tick <- 0;
  Array.iter
    (fun set ->
      Array.iter
        (fun w ->
          w.tag <- -1;
          w.target <- 0;
          w.counter <- 0;
          w.stamp <- 0)
        set)
    t.sets

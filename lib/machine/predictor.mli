(** Uniform interface over the indirect-branch predictors.

    The interpreter engine feeds every executed dispatch through
    [access]; the predictor kind selects which hardware model is simulated.
    [Perfect] and [Never] bound the achievable accuracy from above and
    below. *)

type kind =
  | Btb of Btb.config  (** branch target buffer, the paper's main subject *)
  | Two_level of Two_level.config  (** Pentium-M-style two-level predictor *)
  | Case_block of int  (** case block table with the given entry count *)
  | Perfect  (** every branch predicted correctly *)
  | Never  (** every branch mispredicted *)

val kind_name : kind -> string

val descriptor : kind -> string
(** Canonical, parameter-complete fingerprint of the configuration, e.g.
    ["btb(512,4,false)"] or ["twolevel(1024,4)"].  Distinct configurations
    produce distinct strings (the constructors use disjoint prefixes and
    spell out every field), so the string is a safe key for memo tables and
    journal fingerprints.  Stable across runs -- the resume journal embeds
    it -- so changing a format is a schema change. *)

type t

val create : kind -> t
val kind : t -> kind

val create_bank : kind list -> (string * t) list
(** Fresh simulators for the requested configurations, deduplicated by
    {!descriptor} in first-occurrence order -- the construction step of a
    banked replay, which drives all of them over one event stream.
    Configurations whose {!create} raises (invalid geometry) are dropped:
    the bank simulates the valid ones, and the per-cell path re-raises the
    error with cell context when the invalid configuration is actually
    used. *)

val btb : t -> Btb.t option
(** The underlying BTB when the predictor is a [Btb], for attaching
    observers ({!Btb.set_observer}) and inspecting geometry. *)

val two_level : t -> Two_level.t option
(** The underlying two-level predictor when the kind is [Two_level]. *)

val access : t -> branch:int -> target:int -> opcode:int -> bool
(** One predict-and-update step for an executed indirect branch at address
    [branch] that actually went to [target]; [opcode] is the VM opcode being
    dispatched to (used only by the case block table).  Returns [true] when
    the prediction was correct. *)

val reset : t -> unit

open Vmbp_vm

exception Malformed of string

let bad fmt = Printf.ksprintf (fun msg -> raise (Malformed msg)) fmt

let magic = "VMBPIMG1"

(* Loose sanity caps.  Decoded images are untrusted bytes; without these a
   mutated length field turns into a multi-gigabyte allocation before any
   structural check can reject the image. *)
let max_string = 1 lsl 16
let max_count = 1 lsl 20
let max_nfields = 1 lsl 16
let max_nlocals = Runtime.max_frame_locals

(* ------------------------------------------------------------------ *)
(* Byte-level primitives: zig-zag varints and length-prefixed strings. *)

let put_int buf v =
  (* Zig-zag so small negative values (the ubiquitous -1 sentinels) stay
     one byte. *)
  let z = (v lsl 1) lxor (v asr 62) in
  let rec go z =
    if z land lnot 0x7f = 0 then Buffer.add_char buf (Char.chr z)
    else begin
      Buffer.add_char buf (Char.chr (0x80 lor (z land 0x7f)));
      go (z lsr 7)
    end
  in
  go z

let put_string buf s =
  put_int buf (String.length s);
  Buffer.add_string buf s

type reader = { data : string; mutable pos : int }

let get_byte r =
  if r.pos >= String.length r.data then bad "truncated image";
  let b = Char.code r.data.[r.pos] in
  r.pos <- r.pos + 1;
  b

let get_int r =
  let rec go shift acc =
    if shift > 63 then bad "varint out of range";
    let b = get_byte r in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  let z = go 0 0 in
  (z lsr 1) lxor (-(z land 1))

let get_count r ~what ~max =
  let n = get_int r in
  if n < 0 || n > max then bad "%s count out of range: %d" what n;
  n

let get_string r =
  let n = get_count r ~what:"string" ~max:max_string in
  if r.pos + n > String.length r.data then bad "truncated string";
  let s = String.sub r.data r.pos n in
  r.pos <- r.pos + n;
  s

let put_list buf put xs =
  put_int buf (List.length xs);
  List.iter (put buf) xs

let put_array buf put xs =
  put_int buf (Array.length xs);
  Array.iter (put buf) xs

let put_table buf put_v tbl =
  (* Deterministic byte stream: hash tables are emitted in sorted key
     order, so encode/decode/encode is a fixed point. *)
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let entries = List.sort compare entries in
  put_int buf (List.length entries);
  List.iter
    (fun (k, v) ->
      put_string buf k;
      put_v buf v)
    entries

let get_table r get_v ~what =
  let n = get_count r ~what ~max:max_count in
  let tbl = Hashtbl.create (max 16 n) in
  for _ = 1 to n do
    let k = get_string r in
    if Hashtbl.mem tbl k then bad "%s: duplicate key %s" what k;
    Hashtbl.replace tbl k (get_v r)
  done;
  tbl

(* ------------------------------------------------------------------ *)
(* Encode *)

let put_cp_entry buf (e : Classfile.cp_entry) =
  match e with
  | Classfile.CP_int v -> put_int buf 0; put_int buf v
  | Classfile.CP_field { cls; field } ->
      put_int buf 1; put_string buf cls; put_string buf field
  | Classfile.CP_static s -> put_int buf 2; put_string buf s
  | Classfile.CP_method s -> put_int buf 3; put_string buf s
  | Classfile.CP_virtual s -> put_int buf 4; put_string buf s
  | Classfile.CP_class s -> put_int buf 5; put_string buf s
  | Classfile.CP_switch { lo; targets } ->
      put_int buf 6;
      put_int buf lo;
      put_array buf put_int targets

let encode (image : Runtime.image) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf magic;
  let program = image.Runtime.program in
  put_string buf program.Program.name;
  (* classes *)
  put_array buf
    (fun buf (k : Runtime.klass) ->
      put_string buf k.Runtime.k_name;
      put_int buf k.Runtime.k_super;
      put_int buf k.Runtime.k_nfields;
      put_table buf put_int k.Runtime.k_offsets;
      put_array buf put_int k.Runtime.k_vtable)
    image.Runtime.classes;
  (* methods *)
  put_array buf
    (fun buf (m : Runtime.method_info) ->
      put_int buf m.Runtime.mi_entry;
      put_int buf m.Runtime.mi_nargs;
      put_int buf m.Runtime.mi_nlocals)
    image.Runtime.methods;
  put_table buf put_int image.Runtime.static_method_ids;
  put_table buf put_int image.Runtime.vindex_of_name;
  put_table buf put_int image.Runtime.static_ids;
  put_array buf put_cp_entry image.Runtime.cp;
  (* code *)
  put_array buf
    (fun buf (s : Program.slot) ->
      put_int buf s.Program.opcode;
      put_array buf put_int s.Program.operands)
    program.Program.code;
  put_int buf program.Program.entry;
  put_list buf put_int program.Program.entries;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Decode with structural validation *)

let get_cp_entry r ~code_len : Classfile.cp_entry =
  match get_int r with
  | 0 -> Classfile.CP_int (get_int r)
  | 1 ->
      let cls = get_string r in
      let field = get_string r in
      Classfile.CP_field { cls; field }
  | 2 -> Classfile.CP_static (get_string r)
  | 3 -> Classfile.CP_method (get_string r)
  | 4 -> Classfile.CP_virtual (get_string r)
  | 5 -> Classfile.CP_class (get_string r)
  | 6 ->
      let lo = get_int r in
      let n = get_count r ~what:"switch target" ~max:max_count in
      if n = 0 then bad "tableswitch with no targets";
      let targets =
        Array.init n (fun _ ->
            let t = get_int r in
            if t < 0 || t >= code_len then
              bad "switch target out of range: %d" t;
            t)
      in
      Classfile.CP_switch { lo; targets }
  | tag -> bad "unknown constant pool tag %d" tag

let decode bytes =
  let r = { data = bytes; pos = 0 } in
  try
    if String.length bytes < String.length magic
       || String.sub bytes 0 (String.length magic) <> magic
    then bad "bad magic";
    r.pos <- String.length magic;
    let name = get_string r in
    (* classes (validated below, once the method count is known) *)
    let nclasses = get_count r ~what:"class" ~max:max_count in
    let classes =
      Array.init nclasses (fun i ->
          let k_name = get_string r in
          let k_super = get_int r in
          if k_super < -1 || k_super >= nclasses then
            bad "class %s: bad super id %d" k_name k_super;
          let k_nfields = get_int r in
          if k_nfields < 0 || k_nfields > max_nfields then
            bad "class %s: bad field count %d" k_name k_nfields;
          let k_offsets = get_table r get_int ~what:"field offsets" in
          Hashtbl.iter
            (fun f off ->
              if off < 0 || off >= k_nfields then
                bad "class %s: field %s offset %d out of range" k_name f off)
            k_offsets;
          let nv = get_count r ~what:"vtable" ~max:max_count in
          let k_vtable = Array.init nv (fun _ -> get_int r) in
          { Runtime.k_id = i; k_name; k_super; k_nfields; k_offsets; k_vtable })
    in
    let class_ids = Hashtbl.create (max 16 nclasses) in
    Array.iteri
      (fun i (k : Runtime.klass) ->
        if Hashtbl.mem class_ids k.Runtime.k_name then
          bad "duplicate class %s" k.Runtime.k_name;
        Hashtbl.replace class_ids k.Runtime.k_name i)
      classes;
    (* methods *)
    let nmethods = get_count r ~what:"method" ~max:max_count in
    let methods =
      Array.init nmethods (fun i ->
          let mi_entry = get_int r in
          let mi_nargs = get_int r in
          let mi_nlocals = get_int r in
          if mi_nargs < 0 || mi_nargs > mi_nlocals || mi_nlocals > max_nlocals
          then bad "method %d: bad frame geometry" i;
          { Runtime.mi_entry; mi_nargs; mi_nlocals })
    in
    let check_method_id what name id =
      if id < 0 || id >= nmethods then bad "%s %s: bad method id %d" what name id
    in
    let static_method_ids = get_table r get_int ~what:"static methods" in
    Hashtbl.iter (check_method_id "static method") static_method_ids;
    let vindex_of_name = get_table r get_int ~what:"vtable names" in
    let n_vnames = Hashtbl.length vindex_of_name in
    Hashtbl.iter
      (fun name v ->
        if v < 0 || v >= n_vnames then
          bad "virtual method %s: bad vtable index %d" name v)
      vindex_of_name;
    Array.iter
      (fun (k : Runtime.klass) ->
        if Array.length k.Runtime.k_vtable <> n_vnames then
          bad "class %s: vtable length %d, expected %d" k.Runtime.k_name
            (Array.length k.Runtime.k_vtable)
            n_vnames;
        Array.iter
          (fun mid ->
            if mid < -1 || mid >= nmethods then
              bad "class %s: bad vtable entry %d" k.Runtime.k_name mid)
          k.Runtime.k_vtable)
      classes;
    let static_ids = get_table r get_int ~what:"statics" in
    let nstatics = Hashtbl.length static_ids in
    Hashtbl.iter
      (fun name cell ->
        if cell < 0 || cell >= nstatics then
          bad "static %s: bad cell %d" name cell)
      static_ids;
    (* The pool precedes the code section, so switch targets cannot be
       range-checked yet; they are re-validated against the code length
       below. *)
    let ncp = get_count r ~what:"constant pool" ~max:max_count in
    let cp = Array.init ncp (fun _ -> get_cp_entry r ~code_len:max_int) in
    (* code *)
    let ncode = get_count r ~what:"code" ~max:max_count in
    let code =
      Array.init ncode (fun _ ->
          let opcode = get_int r in
          let nops = get_count r ~what:"operand" ~max:16 in
          let operands = Array.init nops (fun _ -> get_int r) in
          { Program.opcode; operands })
    in
    let entry = get_int r in
    let nentries = get_count r ~what:"entry point" ~max:max_count in
    let entries = List.init nentries (fun _ -> get_int r) in
    if r.pos <> String.length bytes then bad "trailing bytes after image";
    Array.iter
      (function
        | Classfile.CP_switch { targets; _ } ->
            Array.iter
              (fun t ->
                if t < 0 || t >= ncode then
                  bad "switch target out of range: %d" t)
              targets
        | _ -> ())
      cp;
    Array.iter
      (fun (m : Runtime.method_info) ->
        if m.Runtime.mi_entry < 0 || m.Runtime.mi_entry >= ncode then
          bad "method entry out of range: %d" m.Runtime.mi_entry)
      methods;
    if not (Hashtbl.mem static_method_ids "main") then bad "no main method";
    (* [Program.make] validates opcodes, operand counts and branch
       targets; its [Invalid_argument] is this loader's rejection. *)
    let program =
      try Program.make ~name ~iset:Opcode.iset ~code ~entry ~entries ()
      with Invalid_argument msg -> bad "bad code: %s" msg
    in
    {
      Runtime.classes;
      class_ids;
      methods;
      static_method_ids;
      vindex_of_name;
      static_ids;
      cp;
      program;
    }
  with
  | Malformed _ as e -> raise e
  | Invalid_argument msg -> bad "invalid image: %s" msg
  | Failure msg -> bad "invalid image: %s" msg

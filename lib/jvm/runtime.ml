open Vmbp_vm

exception Trap of string

type klass = {
  k_id : int;
  k_name : string;
  k_super : int;
  k_nfields : int;
  k_offsets : (string, int) Hashtbl.t;
  k_vtable : int array;
}

type method_info = { mi_entry : int; mi_nargs : int; mi_nlocals : int }

type image = {
  classes : klass array;
  class_ids : (string, int) Hashtbl.t;
  methods : method_info array;
  static_method_ids : (string, int) Hashtbl.t;
  vindex_of_name : (string, int) Hashtbl.t;
  static_ids : (string, int) Hashtbl.t;
  cp : Classfile.cp_entry array;
  program : Program.t;
}

let link ~name ~classes ~methods ~cp ~code ~main =
  (* Global vtable-index assignment: one index per virtual method name. *)
  let vindex_of_name = Hashtbl.create 32 in
  List.iter
    (fun (m : Classfile.method_decl) ->
      if m.Classfile.m_is_virtual
         && not (Hashtbl.mem vindex_of_name m.Classfile.m_name)
      then Hashtbl.replace vindex_of_name m.Classfile.m_name
          (Hashtbl.length vindex_of_name))
    methods;
  let n_vnames = Hashtbl.length vindex_of_name in
  let method_arr =
    Array.of_list
      (List.map
         (fun (m : Classfile.method_decl) ->
           {
             mi_entry = m.Classfile.m_entry;
             mi_nargs = m.Classfile.m_nargs;
             mi_nlocals = m.Classfile.m_nlocals;
           })
         methods)
  in
  let static_method_ids = Hashtbl.create 32 in
  List.iteri
    (fun id (m : Classfile.method_decl) ->
      if not m.Classfile.m_is_virtual then
        Hashtbl.replace static_method_ids m.Classfile.m_name id)
    methods;
  (* Classes: parents must be linked before children.  Iterate to a fixed
     point so declaration order does not matter. *)
  let class_ids = Hashtbl.create 16 in
  let linked : klass option array = Array.make (List.length classes) None in
  let decls = Array.of_list classes in
  Array.iteri
    (fun i (c : Classfile.class_decl) ->
      if Hashtbl.mem class_ids c.Classfile.c_name then
        invalid_arg ("Runtime.link: duplicate class " ^ c.Classfile.c_name);
      Hashtbl.replace class_ids c.Classfile.c_name i)
    decls;
  let rec link_class i =
    match linked.(i) with
    | Some k -> k
    | None ->
        let c = decls.(i) in
        let super_id, super_nfields, super_vtable, super_offsets =
          match c.Classfile.c_super with
          | None -> (-1, 0, Array.make n_vnames (-1), [])
          | Some sname -> (
              match Hashtbl.find_opt class_ids sname with
              | None ->
                  invalid_arg ("Runtime.link: unknown superclass " ^ sname)
              | Some sid ->
                  let sk = link_class sid in
                  ( sid,
                    sk.k_nfields,
                    Array.copy sk.k_vtable,
                    Hashtbl.fold (fun f o acc -> (f, o) :: acc) sk.k_offsets []
                  ))
        in
        let offsets = Hashtbl.create 8 in
        List.iter (fun (f, o) -> Hashtbl.replace offsets f o) super_offsets;
        List.iteri
          (fun j f -> Hashtbl.replace offsets f (super_nfields + j))
          c.Classfile.c_fields;
        let vtable = super_vtable in
        List.iteri
          (fun id (m : Classfile.method_decl) ->
            if m.Classfile.m_is_virtual
               && m.Classfile.m_class = Some c.Classfile.c_name
            then
              vtable.(Hashtbl.find vindex_of_name m.Classfile.m_name) <- id)
          methods;
        let k =
          {
            k_id = i;
            k_name = c.Classfile.c_name;
            k_super = super_id;
            k_nfields = super_nfields + List.length c.Classfile.c_fields;
            k_offsets = offsets;
            k_vtable = vtable;
          }
        in
        linked.(i) <- Some k;
        k
  in
  let classes_arr = Array.init (Array.length decls) link_class in
  let static_ids = Hashtbl.create 16 in
  Array.iter
    (fun entry ->
      match entry with
      | Classfile.CP_static s ->
          if not (Hashtbl.mem static_ids s) then
            Hashtbl.replace static_ids s (Hashtbl.length static_ids)
      | _ -> ())
    cp;
  let main_id =
    match Hashtbl.find_opt static_method_ids main with
    | Some id -> id
    | None -> invalid_arg ("Runtime.link: no main method " ^ main)
  in
  let entries = Array.to_list (Array.map (fun m -> m.mi_entry) method_arr) in
  let program =
    Program.make ~name ~iset:Opcode.iset ~code
      ~entry:method_arr.(main_id).mi_entry ~entries ()
  in
  {
    classes = classes_arr;
    class_ids;
    methods = method_arr;
    static_method_ids;
    vindex_of_name;
    static_ids;
    cp;
    program;
  }

(* ------------------------------------------------------------------ *)

type state = {
  image : image;
  mutable obj_cls : int array;  (* class id per object; -1 = int array *)
  mutable obj_fields : int array array;
  mutable heap_count : int;
  stack : int array;
  mutable sp : int;
  mutable locals : int array;
  saved_locals : int array array;
  saved_ret : int array;
  mutable fsp : int;
  statics : int array;
  out : Buffer.t;
}

let create image =
  let main_id = Hashtbl.find image.static_method_ids "main" in
  let main = image.methods.(main_id) in
  {
    image;
    obj_cls = Array.make 1024 (-2);
    obj_fields = Array.make 1024 [||];
    heap_count = 0;
    stack = Array.make 8192 0;
    sp = 0;
    locals = Array.make (max 1 main.mi_nlocals) 0;
    saved_locals = Array.make 4096 [||];
    saved_ret = Array.make 4096 0;
    fsp = 0;
    statics = Array.make (max 1 (Hashtbl.length image.static_ids)) 0;
    out = Buffer.create 256;
  }

let image st = st.image
let output st = Buffer.contents st.out
let heap_objects st = st.heap_count

let push st v =
  if st.sp >= Array.length st.stack then raise (Trap "operand stack overflow");
  st.stack.(st.sp) <- v;
  st.sp <- st.sp + 1

let pop st =
  if st.sp = 0 then raise (Trap "operand stack underflow");
  st.sp <- st.sp - 1;
  st.stack.(st.sp)

let peek st n =
  if n < 0 || n >= st.sp then raise (Trap "operand stack peek out of range");
  st.stack.(st.sp - 1 - n)

let grow_heap st =
  let cap = Array.length st.obj_cls in
  if st.heap_count >= cap then begin
    let cls = Array.make (2 * cap) (-2) in
    let fields = Array.make (2 * cap) [||] in
    Array.blit st.obj_cls 0 cls 0 cap;
    Array.blit st.obj_fields 0 fields 0 cap;
    st.obj_cls <- cls;
    st.obj_fields <- fields
  end

(* Allocation and index guards below exist for loaded (possibly hostile)
   images: quickened opcodes carry raw class/method/cell indices in their
   operands, so a mutated image can present any integer here.  Out-of-range
   values must become clean traps, never [Invalid_argument] escaping the
   interpreter. *)

let max_array_len = 1 lsl 24

let alloc_object st ~cls =
  if cls < 0 || cls >= Array.length st.image.classes then
    raise (Trap "bad class id");
  grow_heap st;
  let id = st.heap_count in
  st.obj_cls.(id) <- cls;
  st.obj_fields.(id) <- Array.make (max 1 st.image.classes.(cls).k_nfields) 0;
  st.heap_count <- id + 1;
  id + 1

let alloc_array st ~len =
  if len < 0 then raise (Trap "negative array size");
  if len > max_array_len then raise (Trap "array size out of range");
  grow_heap st;
  let id = st.heap_count in
  st.obj_cls.(id) <- -1;
  st.obj_fields.(id) <- Array.make len 0;
  st.heap_count <- id + 1;
  id + 1

let deref st ref_ =
  if ref_ = 0 then raise (Trap "null pointer");
  let id = ref_ - 1 in
  if id < 0 || id >= st.heap_count then raise (Trap "dangling reference");
  id

let obj_class st ref_ = st.obj_cls.(deref st ref_)

let get_field st ~ref_ ~off =
  let fields = st.obj_fields.(deref st ref_) in
  if off < 0 || off >= Array.length fields then raise (Trap "bad field offset");
  fields.(off)

let set_field st ~ref_ ~off ~v =
  let fields = st.obj_fields.(deref st ref_) in
  if off < 0 || off >= Array.length fields then raise (Trap "bad field offset");
  fields.(off) <- v

let array_get st ~ref_ ~idx =
  let elems = st.obj_fields.(deref st ref_) in
  if idx < 0 || idx >= Array.length elems then
    raise (Trap "array index out of bounds");
  elems.(idx)

let array_set st ~ref_ ~idx ~v =
  let elems = st.obj_fields.(deref st ref_) in
  if idx < 0 || idx >= Array.length elems then
    raise (Trap "array index out of bounds");
  elems.(idx) <- v

let array_length st ref_ = Array.length st.obj_fields.(deref st ref_)

let get_static st i =
  if i < 0 || i >= Array.length st.statics then raise (Trap "bad static cell");
  st.statics.(i)

let set_static st i v =
  if i < 0 || i >= Array.length st.statics then raise (Trap "bad static cell");
  st.statics.(i) <- v

let local st i =
  if i < 0 || i >= Array.length st.locals then raise (Trap "bad local index");
  st.locals.(i)

let set_local st i v =
  if i < 0 || i >= Array.length st.locals then raise (Trap "bad local index");
  st.locals.(i) <- v

let max_frame_locals = 65536

let push_frame st ~nargs ~nlocals ~ret =
  if nargs < 0 || nlocals < 0 || nlocals > max_frame_locals then
    raise (Trap "bad frame geometry");
  if st.fsp >= Array.length st.saved_ret then raise (Trap "frame stack overflow");
  st.saved_locals.(st.fsp) <- st.locals;
  st.saved_ret.(st.fsp) <- ret;
  st.fsp <- st.fsp + 1;
  let locals = Array.make (max 1 nlocals) 0 in
  for i = nargs - 1 downto 0 do
    locals.(i) <- pop st
  done;
  st.locals <- locals

let pop_frame st =
  if st.fsp = 0 then None
  else begin
    st.fsp <- st.fsp - 1;
    st.locals <- st.saved_locals.(st.fsp);
    Some (st.saved_ret.(st.fsp))
  end

let print_int st v =
  Buffer.add_string st.out (string_of_int v);
  Buffer.add_char st.out ' '

(** Binary serialization of linked mini-JVM images.

    This is the repo's stand-in for classfile bytes: a compact, fully
    self-contained encoding of a {!Runtime.image} (classes, vtables,
    methods, constant pool, code).  [decode] treats its input as
    untrusted — every count, index and cross-reference is validated, and
    any violation raises {!Malformed} rather than letting an allocation
    blow up or an [Invalid_argument] escape.  The fuzz suite feeds
    mutated encodings through [decode] and runs whatever survives, so
    the decoder plus the runtime's trap guards form the safety boundary
    for hostile images. *)

exception Malformed of string

val encode : Runtime.image -> string
(** Deterministic: equal images produce equal bytes (hash tables are
    emitted in sorted key order). *)

val decode : string -> Runtime.image
(** Parse and validate an encoded image.
    @raise Malformed on any structural violation; no other exception
    escapes. *)

(** Linking and run-time state of the mini-JVM.

    [link] resolves class declarations into a class table with field
    offsets and virtual-method tables (a global name-to-index assignment
    keeps vtable indices consistent across the hierarchy, so an
    [invokevirtual_quick] operand is valid for any receiver).  [state]
    holds the heap, the shared operand stack, the frame stack, the statics
    and the captured output. *)

exception Trap of string

type klass = {
  k_id : int;
  k_name : string;
  k_super : int;  (** class id, or -1 *)
  k_nfields : int;  (** including inherited fields *)
  k_offsets : (string, int) Hashtbl.t;  (** field name -> offset *)
  k_vtable : int array;  (** vtable index -> method id, or -1 *)
}

type method_info = { mi_entry : int; mi_nargs : int; mi_nlocals : int }

type image = {
  classes : klass array;
  class_ids : (string, int) Hashtbl.t;
  methods : method_info array;
  static_method_ids : (string, int) Hashtbl.t;
  vindex_of_name : (string, int) Hashtbl.t;
  static_ids : (string, int) Hashtbl.t;
  cp : Classfile.cp_entry array;
  program : Vmbp_vm.Program.t;
}

val link :
  name:string ->
  classes:Classfile.class_decl list ->
  methods:Classfile.method_decl list ->
  cp:Classfile.cp_entry array ->
  code:Vmbp_vm.Program.slot array ->
  main:string ->
  image
(** Build an image.  All method entries become program entry points.
    @raise Invalid_argument on unknown classes or a missing [main]. *)

val max_frame_locals : int
(** Upper bound on a method frame's local count; [push_frame] traps above
    it, and loaders reject method declarations exceeding it. *)

type state

val create : image -> state
val image : state -> image
val output : state -> string
val heap_objects : state -> int
(** Number of allocated objects/arrays, for tests. *)

(* Operations used by the instruction semantics. *)

val push : state -> int -> unit
val pop : state -> int
val peek : state -> int -> int
(** [peek st n]: the [n]-th stack cell from the top. *)

val alloc_object : state -> cls:int -> int
(** Returns a non-zero reference. *)

val alloc_array : state -> len:int -> int
val obj_class : state -> int -> int
val get_field : state -> ref_:int -> off:int -> int
val set_field : state -> ref_:int -> off:int -> v:int -> unit
val array_get : state -> ref_:int -> idx:int -> int
val array_set : state -> ref_:int -> idx:int -> v:int -> unit
val array_length : state -> int -> int
val get_static : state -> int -> int
val set_static : state -> int -> int -> unit
val local : state -> int -> int
val set_local : state -> int -> int -> unit

val push_frame : state -> nargs:int -> nlocals:int -> ret:int -> unit
(** Pops [nargs] values off the operand stack into the new frame's first
    locals (in declaration order) and saves the current frame. *)

val pop_frame : state -> int option
(** Restore the caller frame; [None] when the outermost frame returns. *)

val print_int : state -> int -> unit

open Vmbp_vm
module R = Runtime

let o = Opcode.ops

type runner = R.state -> Program.t -> int -> int array -> Control.t

let next = Control.Next

let table : runner array =
  Array.make (Instr_set.size Opcode.iset) (fun _ _ _ _ ->
      Control.Trap "jvm: unimplemented opcode")

let def opcode f = table.(opcode) <- f

let binop opcode f =
  def opcode (fun st _ _ _ ->
      let b = R.pop st in
      let a = R.pop st in
      R.push st (f a b);
      next)

let cond1 opcode f =
  def opcode (fun st _ _ ops ->
      if f (R.pop st) then Control.Jump ops.(0) else next)

let cond2 opcode f =
  def opcode (fun st _ _ ops ->
      let b = R.pop st in
      let a = R.pop st in
      if f a b then Control.Jump ops.(0) else next)

(* Operand values in loaded images are untrusted (mutated classfile bytes
   can put any integer in a cp index, method id or vtable slot), so every
   table lookup below bounds-checks and traps instead of letting an
   [Invalid_argument] escape the interpreter. *)
let cp_entry st idx =
  let cp = (R.image st).R.cp in
  if idx < 0 || idx >= Array.length cp then
    raise (R.Trap "constant pool index out of range");
  cp.(idx)

let class_id st name =
  match Hashtbl.find_opt (R.image st).R.class_ids name with
  | Some id -> id
  | None -> raise (R.Trap ("unknown class " ^ name))

let field_offset st cls field =
  let k = (R.image st).R.classes.(class_id st cls) in
  match Hashtbl.find_opt k.R.k_offsets field with
  | Some off -> off
  | None -> raise (R.Trap (Printf.sprintf "no field %s.%s" cls field))

let static_cell st name =
  match Hashtbl.find_opt (R.image st).R.static_ids name with
  | Some i -> i
  | None -> raise (R.Trap ("unknown static " ^ name))

let quicken ~opcode ~operands ~after =
  Control.Quicken { Control.new_opcode = opcode; new_operands = operands; after }

(* Perform a call to method [mid] and return the transfer. *)
let call st mid ~ret =
  let methods = (R.image st).R.methods in
  if mid < 0 || mid >= Array.length methods then
    raise (R.Trap "bad method id");
  let m = methods.(mid) in
  R.push_frame st ~nargs:m.R.mi_nargs ~nlocals:m.R.mi_nlocals ~ret;
  Control.Jump m.R.mi_entry

let resolve_virtual st vidx ~argc =
  if argc < 0 then raise (R.Trap "bad argument count");
  let receiver = R.peek st argc in
  let cls = R.obj_class st receiver in
  if cls < 0 then raise (R.Trap "virtual call on array or bad object");
  let vtable = (R.image st).R.classes.(cls).R.k_vtable in
  if vidx < 0 || vidx >= Array.length vtable then
    raise (R.Trap "bad vtable index");
  let mid = vtable.(vidx) in
  if mid < 0 then raise (R.Trap "no such virtual method");
  mid

let () =
  (* constants and locals *)
  def o.Opcode.iconst (fun st _ _ ops -> R.push st ops.(0); next);
  def o.Opcode.ldc (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_int v ->
          R.push st v;
          quicken ~opcode:o.Opcode.ldc_quick ~operands:[| v |] ~after:next
      | _ -> Control.Trap "ldc: bad constant pool entry");
  def o.Opcode.ldc_quick (fun st _ _ ops -> R.push st ops.(0); next);
  def o.Opcode.iload (fun st _ _ ops -> R.push st (R.local st ops.(0)); next);
  def o.Opcode.istore (fun st _ _ ops ->
      R.set_local st ops.(0) (R.pop st);
      next);
  def o.Opcode.iinc (fun st _ _ ops ->
      R.set_local st ops.(0) (R.local st ops.(0) + ops.(1));
      next);
  (* stack *)
  def o.Opcode.pop (fun st _ _ _ -> ignore (R.pop st); next);
  def o.Opcode.dup (fun st _ _ _ -> R.push st (R.peek st 0); next);
  def o.Opcode.dup_x1 (fun st _ _ _ ->
      let b = R.pop st in
      let a = R.pop st in
      R.push st b;
      R.push st a;
      R.push st b;
      next);
  def o.Opcode.swap (fun st _ _ _ ->
      let b = R.pop st in
      let a = R.pop st in
      R.push st b;
      R.push st a;
      next);
  (* arithmetic *)
  binop o.Opcode.iadd ( + );
  binop o.Opcode.isub ( - );
  binop o.Opcode.imul ( * );
  binop o.Opcode.idiv (fun a b ->
      if b = 0 then raise (R.Trap "division by zero") else a / b);
  binop o.Opcode.irem (fun a b ->
      if b = 0 then raise (R.Trap "division by zero") else a mod b);
  def o.Opcode.ineg (fun st _ _ _ -> R.push st (-R.pop st); next);
  binop o.Opcode.ishl (fun a b -> a lsl (b land 63));
  binop o.Opcode.ishr (fun a b -> a asr (b land 63));
  binop o.Opcode.iand ( land );
  binop o.Opcode.ior ( lor );
  binop o.Opcode.ixor ( lxor );
  (* control *)
  def o.Opcode.goto (fun _ _ _ ops -> Control.Jump ops.(0));
  def o.Opcode.tableswitch (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_switch { lo; targets } ->
          if Array.length targets = 0 then
            Control.Trap "tableswitch: empty target table"
          else begin
            let v = R.pop st in
            let idx = v - lo in
            if idx >= 0 && idx < Array.length targets - 1 then
              Control.Jump targets.(idx + 1)
            else Control.Jump targets.(0)
          end
      | _ -> Control.Trap "tableswitch: bad constant pool entry");
  cond1 o.Opcode.ifeq (fun v -> v = 0);
  cond1 o.Opcode.ifne (fun v -> v <> 0);
  cond1 o.Opcode.iflt (fun v -> v < 0);
  cond1 o.Opcode.ifge (fun v -> v >= 0);
  cond2 o.Opcode.if_icmpeq ( = );
  cond2 o.Opcode.if_icmpne ( <> );
  cond2 o.Opcode.if_icmplt ( < );
  cond2 o.Opcode.if_icmpge ( >= );
  (* objects *)
  def o.Opcode.new_ (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_class name ->
          let cls = class_id st name in
          R.push st (R.alloc_object st ~cls);
          quicken ~opcode:o.Opcode.new_quick ~operands:[| cls |] ~after:next
      | _ -> Control.Trap "new: bad constant pool entry");
  def o.Opcode.new_quick (fun st _ _ ops ->
      R.push st (R.alloc_object st ~cls:ops.(0));
      next);
  def o.Opcode.getfield (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_field { cls; field } ->
          let off = field_offset st cls field in
          let ref_ = R.pop st in
          R.push st (R.get_field st ~ref_ ~off);
          quicken ~opcode:o.Opcode.getfield_quick ~operands:[| off |]
            ~after:next
      | _ -> Control.Trap "getfield: bad constant pool entry");
  def o.Opcode.getfield_quick (fun st _ _ ops ->
      let ref_ = R.pop st in
      R.push st (R.get_field st ~ref_ ~off:ops.(0));
      next);
  def o.Opcode.putfield (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_field { cls; field } ->
          let off = field_offset st cls field in
          let v = R.pop st in
          let ref_ = R.pop st in
          R.set_field st ~ref_ ~off ~v;
          quicken ~opcode:o.Opcode.putfield_quick ~operands:[| off |]
            ~after:next
      | _ -> Control.Trap "putfield: bad constant pool entry");
  def o.Opcode.putfield_quick (fun st _ _ ops ->
      let v = R.pop st in
      let ref_ = R.pop st in
      R.set_field st ~ref_ ~off:ops.(0) ~v;
      next);
  def o.Opcode.getstatic (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_static name ->
          let cell = static_cell st name in
          R.push st (R.get_static st cell);
          quicken ~opcode:o.Opcode.getstatic_quick ~operands:[| cell |]
            ~after:next
      | _ -> Control.Trap "getstatic: bad constant pool entry");
  def o.Opcode.getstatic_quick (fun st _ _ ops ->
      R.push st (R.get_static st ops.(0));
      next);
  def o.Opcode.putstatic (fun st _ _ ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_static name ->
          let cell = static_cell st name in
          R.set_static st cell (R.pop st);
          quicken ~opcode:o.Opcode.putstatic_quick ~operands:[| cell |]
            ~after:next
      | _ -> Control.Trap "putstatic: bad constant pool entry");
  def o.Opcode.putstatic_quick (fun st _ _ ops ->
      R.set_static st ops.(0) (R.pop st);
      next);
  (* arrays *)
  def o.Opcode.newarray (fun st _ _ _ ->
      let len = R.pop st in
      R.push st (R.alloc_array st ~len);
      next);
  def o.Opcode.iaload (fun st _ _ _ ->
      let idx = R.pop st in
      let ref_ = R.pop st in
      R.push st (R.array_get st ~ref_ ~idx);
      next);
  def o.Opcode.iastore (fun st _ _ _ ->
      let v = R.pop st in
      let idx = R.pop st in
      let ref_ = R.pop st in
      R.array_set st ~ref_ ~idx ~v;
      next);
  def o.Opcode.arraylength (fun st _ _ _ ->
      R.push st (R.array_length st (R.pop st));
      next);
  (* calls *)
  def o.Opcode.invokestatic (fun st _ pc ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_method name -> (
          match
            Hashtbl.find_opt (R.image st).R.static_method_ids name
          with
          | Some mid ->
              let transfer = call st mid ~ret:(pc + 1) in
              quicken ~opcode:o.Opcode.invokestatic_quick ~operands:[| mid |]
                ~after:transfer
          | None -> Control.Trap ("unknown static method " ^ name))
      | _ -> Control.Trap "invokestatic: bad constant pool entry");
  def o.Opcode.invokestatic_quick (fun st _ pc ops -> call st ops.(0) ~ret:(pc + 1));
  def o.Opcode.invokevirtual (fun st _ pc ops ->
      match cp_entry st ops.(0) with
      | Classfile.CP_virtual name -> (
          match Hashtbl.find_opt (R.image st).R.vindex_of_name name with
          | Some vidx ->
              let argc = ops.(1) in
              let mid = resolve_virtual st vidx ~argc in
              let transfer = call st mid ~ret:(pc + 1) in
              quicken ~opcode:o.Opcode.invokevirtual_quick
                ~operands:[| vidx; argc |] ~after:transfer
          | None -> Control.Trap ("unknown virtual method " ^ name))
      | _ -> Control.Trap "invokevirtual: bad constant pool entry");
  def o.Opcode.invokevirtual_quick (fun st _ pc ops ->
      let mid = resolve_virtual st ops.(0) ~argc:ops.(1) in
      call st mid ~ret:(pc + 1));
  def o.Opcode.return_ (fun st _ _ _ ->
      match R.pop_frame st with
      | Some ret -> Control.Jump ret
      | None -> Control.Halt);
  def o.Opcode.ireturn (fun st _ _ _ ->
      let v = R.pop st in
      match R.pop_frame st with
      | Some ret ->
          R.push st v;
          Control.Jump ret
      | None -> Control.Halt);
  def o.Opcode.print_int (fun st _ _ _ ->
      R.print_int st (R.pop st);
      next)

let exec state : Vmbp_core.Engine.exec =
 fun program pc ->
  let slot = program.Program.code.(pc) in
  try table.(slot.Program.opcode) state program pc slot.Program.operands
  with R.Trap msg -> Control.Trap msg

(** CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).

    Every record in the content-addressed store and the cell journal
    carries this checksum, so corruption anywhere in a shard -- not just a
    line cut short by a crash -- is detected on load.  CRC-32 detects all
    burst errors up to 32 bits, which covers the single-sector and
    byte-flip corruption modes the fuzz tests inject. *)

val digest : string -> int
(** The CRC of the whole string, in [0, 0xFFFFFFFF]. *)

val digest_sub : string -> pos:int -> len:int -> int
(** The CRC of a substring.  @raise Invalid_argument on a bad range. *)

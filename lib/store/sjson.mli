(** The repo's line-oriented JSON dialect: one flat object per line, every
    field a scalar (string / int / float / bool / null).

    Promoted from the journal so the store, the journal and the service
    protocol share one codec.  The writer side stays hand-rolled
    [Buffer]s at each call site (the objects differ); this module owns
    the two halves they all need: string escaping and the strict parser.
    The parser accepts exactly what the writers emit -- anything else
    raises {!Bad}, which callers turn into a counted skip or a protocol
    error, never a crash. *)

exception Bad

type v = S of string | I of int | F of float | B of bool | Null

val escape : string -> string
(** JSON string-body escaping: quote, backslash, and ASCII control
    characters (the latter as [\uXXXX]). *)

val parse_line : string -> (string * v) list
(** Parse one flat JSON object.  Integer-looking numbers come back as
    [I], anything with a fraction or exponent as [F].  Trailing
    whitespace is accepted; anything else trailing, or any nesting,
    raises {!Bad}. *)

val str : (string * v) list -> string -> string
(** Field accessors; all raise {!Bad} on a missing field or a kind
    mismatch ([num] accepts both [I] and [F]). *)

val int : (string * v) list -> string -> int
val num : (string * v) list -> string -> float
val bool : (string * v) list -> string -> bool
val str_opt : (string * v) list -> string -> string option
val int_opt : (string * v) list -> string -> int option

(** Sharded, checksummed, content-addressed result store.

    The crash-safe journal's promotion to a service-grade persistence
    layer: completed cells are addressed by their parameter-complete key
    plus configuration fingerprint, spread over [shards] append-only
    files by key CRC, and every record is framed with a CRC-32 and a
    length header ({!Frame}), so corruption {e anywhere} in a shard --
    not just a torn final line -- is detected, skipped and counted on
    load, and repaired by {!compact}.  Appends are written whole and
    fsync'd; a [kill -9] at any instant leaves at worst one torn tail
    record, which the framing skips, so the store is loadable after any
    crash.  Shard rewrites (compaction) go through
    write-temp/fsync/rename, so they too can die at any instant without
    losing the old shard.

    Unlike the journal -- whose resume semantics deliberately never serve
    a cell appended by the current run -- the store is a live table: an
    appended entry is immediately {!lookup}-able, which is what a
    long-running service needs.  All operations are thread-safe. *)

type stats = {
  entries : int;  (** distinct (key, fingerprint) records held *)
  shards : int;
  loaded : int;  (** well-formed records read at [open_] *)
  served : int;  (** successful lookups *)
  missed : int;  (** lookups that found nothing *)
  appended : int;  (** records durably written this session *)
  write_errors : int;  (** appends dropped (I/O failure or injected) *)
  corrupt : int;  (** corrupt records skipped on load, since [open_] *)
  compactions : int;
}

type t

val io_fault_hook : (unit -> bool) ref
(** When it returns [true], the next append is dropped (and counted as a
    write error) exactly as a disk error would drop it.  Wired to the
    [store-io] chaos point by {!Vmbp_report.Par_runner}; the default
    never fires.  Kept as a hook because the store sits below the fault
    harness in the library graph. *)

val mutation_skip_fsync : bool ref
(** Mutation tooth: when [true], {!append} skips the per-record fsync --
    reintroducing ack-before-durability.  Exists so the simulation
    harness can prove its invariants catch the bug; never set it outside
    tests. *)

val mutation_skip_dir_fsync : bool ref
(** Mutation tooth: when [true], {!compact} skips the final directory
    fsync after its renames.  See {!mutation_skip_fsync}. *)

val open_ : ?shards:int -> string -> t
(** Open (creating if needed) the store directory.  Every existing shard
    file is scanned -- even when the directory holds more shards than
    [?shards] (default 8) requests, so a store is readable under any
    shard setting -- and stale temp files from a crashed compaction are
    removed.  Newly created shard files are made durable with a
    directory fsync before the call returns.  All I/O goes through the
    environment captured from {!Vmbp_sim.Env.current} at this moment,
    which is how the simulation harness substitutes its faulty
    filesystem.  Raises [Unix.Unix_error] if the directory cannot be
    created or a shard cannot be opened for appending. *)

val lookup : t -> key:string -> fingerprint:string -> Cellrec.entry option
(** Served from the in-memory table: entries loaded at [open_] plus
    everything appended since, last write winning. *)

val mem : t -> key:string -> fingerprint:string -> bool
(** Presence test that does not count as a hit or a miss; used by writers
    deciding whether an append would be a duplicate. *)

val append : t -> Cellrec.entry -> unit
(** Frame, write and fsync one record to its key's shard, and make it
    immediately lookup-able.  A write failure (or an injected [store-io]
    fault) is counted and otherwise ignored: the entry still serves from
    memory, and is simply recomputed by whatever process loads the store
    next. *)

val compact : t -> unit
(** Rewrite every shard from the in-memory table: corrupt bytes and
    superseded duplicates are dropped, records land on their current
    shard mapping, and each shard is replaced by write-temp / fsync /
    rename (then the directory is fsync'd), so a crash mid-compaction
    loses nothing. *)

val iter : t -> (Cellrec.entry -> unit) -> unit
(** Apply a function to every live entry under the store lock.  The
    callback must not call back into the store. *)

val stats : t -> stats
val dir : t -> string

val close : t -> unit
(** Close every shard descriptor; further appends count as write
    errors. *)

(** {2 Offline scrub} *)

type shard_report = {
  sr_shard : string;  (** shard file name *)
  sr_records : int;  (** well-formed records *)
  sr_corrupt : int;  (** undecodable or unframed lines *)
  sr_stale : int;
      (** records whose key reappears later (shard order, then line
          order) under a {e different} fingerprint: computed under a
          configuration that has since changed, so unreachable by any
          current lookup *)
}

val scrub : string -> shard_report list
(** Read-only scan of a store directory, one report per shard file in
    name order, without opening the store for writing.  Safe on a
    directory another process has open.  [compact] (on an opened store)
    repairs everything scrub counts. *)

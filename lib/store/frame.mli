(** Self-verifying line framing for append-only record files.

    A framed line is ["vf1 CCCCCCCC LLL payload\n"]: a fixed magic, the
    CRC-32 of the payload in 8 lower-case hex digits, the payload length
    in decimal, then the payload itself (which must not contain raw
    newlines -- the cell codec escapes them).  The header makes every
    record independently checkable, so a loader can skip-and-count a
    corrupt record {e anywhere} in the file -- flipped bytes, a spliced
    write, a tail torn by [kill -9] -- and keep every healthy record
    around it.  A length mismatch, a CRC mismatch, or a malformed header
    all classify as {!Corrupt}; a line without the magic is {!Legacy}
    (journals written before framing existed), which the journal still
    parses and the store rejects. *)

type decoded =
  | Framed of string  (** header verified; the payload is intact *)
  | Legacy of string  (** no frame header; pre-framing journal line *)
  | Corrupt

val encode : string -> string
(** The framed line for [payload], including the trailing newline.
    @raise Invalid_argument if [payload] contains a newline. *)

val decode : string -> decoded
(** Classify one line (without its trailing newline). *)

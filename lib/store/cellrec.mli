(** The persisted cell record: one completed experiment cell, serialized
    as one flat JSON line.

    Promoted from {!Journal} so the append-only journal and the sharded
    content-addressed store persist the exact same payload.  Only integer
    event counters are stored for a success -- cycles and seconds are
    recomputed from them through {!Vmbp_machine.Cpu_model} -- so a cell
    served from disk is byte-identical to a freshly computed one by
    construction. *)

type success = {
  metrics : Vmbp_machine.Metrics.t;
      (** deterministic and simulated event counters; cycles and seconds
          are recomputed, so no float round-trips through the file *)
  steps : int;
  output : string;
}

type entry = {
  key : string;  (** parameter-complete cell key *)
  fingerprint : string;  (** configuration digest; both must match *)
  outcome : (success, string) result;
  attempts : int;
  timed_out : bool;
}

val to_line : entry -> string
(** The record as one flat JSON object, no trailing newline (framing and
    newline are the container's business). *)

val of_line : string -> entry option
(** Parse one payload line; [None] on anything malformed. *)

type stats = {
  entries : int;
  shards : int;
  loaded : int;
  served : int;
  missed : int;
  appended : int;
  write_errors : int;
  corrupt : int;
  compactions : int;
}

type t = {
  env : Vmbp_sim.Env.t;
  s_dir : string;
  nshards : int;
  fds : Vmbp_sim.Env.fd array;
  lock : Mutex.t;
  tbl : (string * string, Cellrec.entry) Hashtbl.t;
  latest : (string, string) Hashtbl.t;
      (* key -> fingerprint of its most recent record (shard order, then
         line order -- the order scrub calls "stale").  Compaction keeps
         only each key's latest fingerprint: older ones were computed by
         code that has since changed and no current lookup asks for
         them. *)
  mutable closed : bool;
  mutable loaded : int;
  mutable served : int;
  mutable missed : int;
  mutable appended : int;
  mutable write_errors : int;
  mutable corrupt : int;
  mutable compactions : int;
}

let io_fault_hook : (unit -> bool) ref = ref (fun () -> false)

(* Mutation teeth for the simulation harness: each one reintroduces a
   durability bug on purpose so `simulate --mutate` can prove the
   invariant checks would catch it.  Never set outside tests. *)
let mutation_skip_fsync = ref false
let mutation_skip_dir_fsync = ref false

(* Registry mirrors, so [--metrics] and the vmbp-cells/7 summary can
   report store traffic without a store handle. *)
let m_hits = Vmbp_obs.Registry.counter "store.hits"
let m_misses = Vmbp_obs.Registry.counter "store.misses"
let m_appended = Vmbp_obs.Registry.counter "store.appended"
let m_write_errors = Vmbp_obs.Registry.counter "store.write_errors"
let m_corrupt = Vmbp_obs.Registry.counter "store.corrupt_records"

let shard_name i = Printf.sprintf "shard-%02d.vcas" i

let shard_path t i = Filename.concat t.s_dir (shard_name i)

(* Key -> shard.  Purely a load-spreading choice: lookups go through the
   in-memory table, so re-opening with a different shard count only moves
   where *future* appends land (and where compaction rewrites records). *)
let shard_of_key t key = Crc32.digest key mod t.nshards

let write_all (env : Vmbp_sim.Env.t) fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + env.write fd s off (len - off))
  in
  go 0

(* One shard file: every line is independently framed, so a corrupt
   record -- flipped bytes, a spliced write, a torn tail -- is skipped
   and counted without giving up on the rest of the file. *)
let load_shard t path =
  match t.env.read_file path with
  | None -> ()
  | Some contents ->
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Frame.decode line with
            | Frame.Framed payload -> (
                match Cellrec.of_line payload with
                | Some e ->
                    Hashtbl.replace t.tbl (e.Cellrec.key, e.Cellrec.fingerprint) e;
                    Hashtbl.replace t.latest e.Cellrec.key
                      e.Cellrec.fingerprint;
                    t.loaded <- t.loaded + 1
                | None -> t.corrupt <- t.corrupt + 1)
            | Frame.Legacy _ | Frame.Corrupt -> t.corrupt <- t.corrupt + 1)
        (Vmbp_sim.Env.lines_of_contents contents)

let open_ ?(shards = 8) dir =
  if shards < 1 then invalid_arg "Store.open_: shards must be >= 1";
  let env = !Vmbp_sim.Env.current in
  Vmbp_sim.Env.mkdir_p env dir;
  (* Stale temp files are debris from a compaction that died before its
     rename; the original shard is intact, so they are just deleted. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try env.unlink (Filename.concat dir f)
        with Unix.Unix_error _ | Sys_error _ -> ())
    (env.readdir dir);
  (* Read every shard present, even past the requested count, so a store
     written under a larger shard setting loses nothing. *)
  let existing =
    Array.to_list (env.readdir dir)
    |> List.filter_map (fun f ->
           if
             String.length f = String.length (shard_name 0)
             && String.sub f 0 6 = "shard-"
             && Filename.check_suffix f ".vcas"
           then int_of_string_opt (String.sub f 6 2)
           else None)
  in
  let nshards = List.fold_left (fun a i -> max a (i + 1)) shards existing in
  let t =
    {
      env;
      s_dir = dir;
      nshards;
      fds = [||];
      lock = Mutex.create ();
      tbl = Hashtbl.create 1024;
      latest = Hashtbl.create 1024;
      closed = false;
      loaded = 0;
      served = 0;
      missed = 0;
      appended = 0;
      write_errors = 0;
      corrupt = 0;
      compactions = 0;
    }
  in
  for i = 0 to nshards - 1 do
    load_shard t (shard_path t i)
  done;
  if t.corrupt > 0 then Vmbp_obs.Registry.add m_corrupt t.corrupt;
  let fds =
    Array.init nshards (fun i ->
        env.openfile (shard_path t i)
          [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
          0o644)
  in
  (* Newly created shard files are directory entries: make them durable
     now, or the first crash after an acked write could lose the whole
     file rather than a record. *)
  env.fsync_dir dir;
  { t with fds }

let lookup t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.tbl (key, fingerprint) in
  (match r with
  | Some _ -> t.served <- t.served + 1
  | None -> t.missed <- t.missed + 1);
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Vmbp_obs.Registry.add m_hits 1
  | None -> Vmbp_obs.Registry.add m_misses 1);
  r

let mem t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl (key, fingerprint) in
  Mutex.unlock t.lock;
  r

let iter t f =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () -> Hashtbl.iter (fun _ e -> f e) t.tbl)

let append t (e : Cellrec.entry) =
  let line = Frame.encode (Cellrec.to_line e) in
  Mutex.lock t.lock;
  (* The entry serves from memory either way; only durability can fail. *)
  Hashtbl.replace t.tbl (e.Cellrec.key, e.Cellrec.fingerprint) e;
  Hashtbl.replace t.latest e.Cellrec.key e.Cellrec.fingerprint;
  let dropped = t.closed || !io_fault_hook () in
  if dropped then begin
    t.write_errors <- t.write_errors + 1;
    Vmbp_obs.Registry.add m_write_errors 1
  end
  else begin
    let fd = t.fds.(shard_of_key t e.Cellrec.key) in
    match
      write_all t.env fd line;
      if not !mutation_skip_fsync then t.env.fsync fd
    with
    | () ->
        t.appended <- t.appended + 1;
        Vmbp_obs.Registry.add m_appended 1
    | exception Unix.Unix_error _ ->
        t.write_errors <- t.write_errors + 1;
        Vmbp_obs.Registry.add m_write_errors 1
  end;
  Mutex.unlock t.lock

let compact t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        let env = t.env in
        (* Drop records superseded by a newer fingerprint for the same
           key, then bucket the survivors by current shard mapping. *)
        let stale =
          Hashtbl.fold
            (fun (key, fp) _ acc ->
              if Hashtbl.find_opt t.latest key <> Some fp then
                (key, fp) :: acc
              else acc)
            t.tbl []
        in
        List.iter (Hashtbl.remove t.tbl) stale;
        let buckets = Array.make t.nshards [] in
        Hashtbl.iter
          (fun (key, _) e ->
            let i = shard_of_key t key in
            buckets.(i) <- e :: buckets.(i))
          t.tbl;
        for i = 0 to t.nshards - 1 do
          let tmp = shard_path t i ^ ".tmp" in
          let fd =
            env.openfile tmp
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
              0o644
          in
          (try
             List.iter
               (fun e -> write_all env fd (Frame.encode (Cellrec.to_line e)))
               (List.rev buckets.(i));
             env.fsync fd
           with e ->
             env.close fd;
             raise e);
          env.close fd;
          (* The append descriptor must move to the new file: the rename
             unlinks the old inode, and writes to it would be lost. *)
          env.rename tmp (shard_path t i);
          let old = t.fds.(i) in
          t.fds.(i) <-
            env.openfile (shard_path t i) [ Unix.O_WRONLY; Unix.O_APPEND ] 0o644;
          try env.close old with Unix.Unix_error _ -> ()
        done;
        if not !mutation_skip_dir_fsync then env.fsync_dir t.s_dir;
        t.compactions <- t.compactions + 1
      end)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      entries = Hashtbl.length t.tbl;
      shards = t.nshards;
      loaded = t.loaded;
      served = t.served;
      missed = t.missed;
      appended = t.appended;
      write_errors = t.write_errors;
      corrupt = t.corrupt;
      compactions = t.compactions;
    }
  in
  Mutex.unlock t.lock;
  s

let dir t = t.s_dir

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun fd -> try t.env.close fd with Unix.Unix_error _ -> ())
      t.fds
  end;
  Mutex.unlock t.lock

(* ------------------------------------------------------------------ *)
(* Offline scrub: read-only shard scan, no store handle, no table.

   A record is "stale" when a later record (in shard order, then line
   order) carries the same key with a *different* fingerprint: its
   result was computed under a configuration that has since changed, so
   no current lookup can ever serve it.  Exact-duplicate supersessions
   (same key and fingerprint appended twice) stay plain records -- the
   in-memory table last-wins over them and compaction folds them away. *)

type shard_report = {
  sr_shard : string;
  sr_records : int;
  sr_corrupt : int;
  sr_stale : int;
}

let scrub dir =
  let env = !Vmbp_sim.Env.current in
  let shard_files =
    Array.to_list (try env.readdir dir with Unix.Unix_error _ | Sys_error _ -> [||])
    |> List.filter (fun f ->
           String.length f = String.length (shard_name 0)
           && String.sub f 0 6 = "shard-"
           && Filename.check_suffix f ".vcas")
    |> List.sort compare
  in
  (* Pass 1: per-shard record lists, counting corruption as we go. *)
  let scanned =
    List.map
      (fun f ->
        let records = ref [] and corrupt = ref 0 in
        (match env.read_file (Filename.concat dir f) with
        | None -> ()
        | Some contents ->
            List.iter
              (fun line ->
                if String.trim line <> "" then
                  match Frame.decode line with
                  | Frame.Framed payload -> (
                      match Cellrec.of_line payload with
                      | Some e ->
                          records :=
                            (e.Cellrec.key, e.Cellrec.fingerprint) :: !records
                      | None -> incr corrupt)
                  | Frame.Legacy _ | Frame.Corrupt -> incr corrupt)
              (Vmbp_sim.Env.lines_of_contents contents));
        (f, List.rev !records, !corrupt))
      shard_files
  in
  (* Pass 2: the last fingerprint seen for each key across the whole
     store is the current one. *)
  let current = Hashtbl.create 256 in
  List.iter
    (fun (_, records, _) ->
      List.iter (fun (key, fp) -> Hashtbl.replace current key fp) records)
    scanned;
  List.map
    (fun (f, records, corrupt) ->
      let stale =
        List.fold_left
          (fun acc (key, fp) ->
            match Hashtbl.find_opt current key with
            | Some cur when cur <> fp -> acc + 1
            | _ -> acc)
          0 records
      in
      {
        sr_shard = f;
        sr_records = List.length records;
        sr_corrupt = corrupt;
        sr_stale = stale;
      })
    scanned

type stats = {
  entries : int;
  shards : int;
  loaded : int;
  served : int;
  missed : int;
  appended : int;
  write_errors : int;
  corrupt : int;
  compactions : int;
}

type t = {
  s_dir : string;
  nshards : int;
  fds : Unix.file_descr array;
  lock : Mutex.t;
  tbl : (string * string, Cellrec.entry) Hashtbl.t;
  mutable closed : bool;
  mutable loaded : int;
  mutable served : int;
  mutable missed : int;
  mutable appended : int;
  mutable write_errors : int;
  mutable corrupt : int;
  mutable compactions : int;
}

let io_fault_hook : (unit -> bool) ref = ref (fun () -> false)

(* Registry mirrors, so [--metrics] and the vmbp-cells/7 summary can
   report store traffic without a store handle. *)
let m_hits = Vmbp_obs.Registry.counter "store.hits"
let m_misses = Vmbp_obs.Registry.counter "store.misses"
let m_appended = Vmbp_obs.Registry.counter "store.appended"
let m_write_errors = Vmbp_obs.Registry.counter "store.write_errors"
let m_corrupt = Vmbp_obs.Registry.counter "store.corrupt_records"

let shard_name i = Printf.sprintf "shard-%02d.vcas" i

let shard_path t i = Filename.concat t.s_dir (shard_name i)

(* Key -> shard.  Purely a load-spreading choice: lookups go through the
   in-memory table, so re-opening with a different shard count only moves
   where *future* appends land (and where compaction rewrites records). *)
let shard_of_key t key = Crc32.digest key mod t.nshards

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

(* fsync on a directory fd makes the renames themselves durable; some
   filesystems refuse fsync on a directory, which is not worth dying
   over. *)
let fsync_dir dir =
  match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
  | exception Unix.Unix_error _ -> ()
  | fd ->
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      (try Unix.close fd with Unix.Unix_error _ -> ())

let mkdir_p dir =
  let rec go d =
    if d <> "/" && d <> "." && not (Sys.file_exists d) then begin
      go (Filename.dirname d);
      try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* One shard file: every line is independently framed, so a corrupt
   record -- flipped bytes, a spliced write, a torn tail -- is skipped
   and counted without giving up on the rest of the file. *)
let load_shard t path =
  match open_in_bin path with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> ()
            | line ->
                (if String.trim line <> "" then
                   match Frame.decode line with
                   | Frame.Framed payload -> (
                       match Cellrec.of_line payload with
                       | Some e ->
                           Hashtbl.replace t.tbl (e.Cellrec.key, e.Cellrec.fingerprint) e;
                           t.loaded <- t.loaded + 1
                       | None -> t.corrupt <- t.corrupt + 1)
                   | Frame.Legacy _ | Frame.Corrupt ->
                       t.corrupt <- t.corrupt + 1);
                go ()
          in
          go ())

let open_ ?(shards = 8) dir =
  if shards < 1 then invalid_arg "Store.open_: shards must be >= 1";
  mkdir_p dir;
  (* Stale temp files are debris from a compaction that died before its
     rename; the original shard is intact, so they are just deleted. *)
  Array.iter
    (fun f ->
      if Filename.check_suffix f ".tmp" then
        try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
    (Sys.readdir dir);
  (* Read every shard present, even past the requested count, so a store
     written under a larger shard setting loses nothing. *)
  let existing =
    Array.to_list (Sys.readdir dir)
    |> List.filter_map (fun f ->
           if
             String.length f = String.length (shard_name 0)
             && String.sub f 0 6 = "shard-"
             && Filename.check_suffix f ".vcas"
           then int_of_string_opt (String.sub f 6 2)
           else None)
  in
  let nshards = List.fold_left (fun a i -> max a (i + 1)) shards existing in
  let t =
    {
      s_dir = dir;
      nshards;
      fds = [||];
      lock = Mutex.create ();
      tbl = Hashtbl.create 1024;
      closed = false;
      loaded = 0;
      served = 0;
      missed = 0;
      appended = 0;
      write_errors = 0;
      corrupt = 0;
      compactions = 0;
    }
  in
  for i = 0 to nshards - 1 do
    load_shard t (shard_path t i)
  done;
  if t.corrupt > 0 then Vmbp_obs.Registry.add m_corrupt t.corrupt;
  let fds =
    Array.init nshards (fun i ->
        Unix.openfile (shard_path t i)
          [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ]
          0o644)
  in
  { t with fds }

let lookup t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.tbl (key, fingerprint) in
  (match r with
  | Some _ -> t.served <- t.served + 1
  | None -> t.missed <- t.missed + 1);
  Mutex.unlock t.lock;
  (match r with
  | Some _ -> Vmbp_obs.Registry.add m_hits 1
  | None -> Vmbp_obs.Registry.add m_misses 1);
  r

let mem t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.mem t.tbl (key, fingerprint) in
  Mutex.unlock t.lock;
  r

let append t (e : Cellrec.entry) =
  let line = Frame.encode (Cellrec.to_line e) in
  Mutex.lock t.lock;
  (* The entry serves from memory either way; only durability can fail. *)
  Hashtbl.replace t.tbl (e.Cellrec.key, e.Cellrec.fingerprint) e;
  let dropped = t.closed || !io_fault_hook () in
  if dropped then begin
    t.write_errors <- t.write_errors + 1;
    Vmbp_obs.Registry.add m_write_errors 1
  end
  else begin
    let fd = t.fds.(shard_of_key t e.Cellrec.key) in
    match
      write_all fd line;
      Unix.fsync fd
    with
    | () ->
        t.appended <- t.appended + 1;
        Vmbp_obs.Registry.add m_appended 1
    | exception Unix.Unix_error _ ->
        t.write_errors <- t.write_errors + 1;
        Vmbp_obs.Registry.add m_write_errors 1
  end;
  Mutex.unlock t.lock

let compact t =
  Mutex.lock t.lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.lock)
    (fun () ->
      if not t.closed then begin
        (* Bucket the table by current shard mapping. *)
        let buckets = Array.make t.nshards [] in
        Hashtbl.iter
          (fun (key, _) e ->
            let i = shard_of_key t key in
            buckets.(i) <- e :: buckets.(i))
          t.tbl;
        for i = 0 to t.nshards - 1 do
          let tmp = shard_path t i ^ ".tmp" in
          let fd =
            Unix.openfile tmp
              [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
              0o644
          in
          (try
             List.iter
               (fun e -> write_all fd (Frame.encode (Cellrec.to_line e)))
               (List.rev buckets.(i));
             Unix.fsync fd
           with e ->
             Unix.close fd;
             raise e);
          Unix.close fd;
          (* The append descriptor must move to the new file: the rename
             unlinks the old inode, and writes to it would be lost. *)
          Unix.rename tmp (shard_path t i);
          let old = t.fds.(i) in
          t.fds.(i) <-
            Unix.openfile (shard_path t i)
              [ Unix.O_WRONLY; Unix.O_APPEND ]
              0o644;
          try Unix.close old with Unix.Unix_error _ -> ()
        done;
        fsync_dir t.s_dir;
        t.compactions <- t.compactions + 1
      end)

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      entries = Hashtbl.length t.tbl;
      shards = t.nshards;
      loaded = t.loaded;
      served = t.served;
      missed = t.missed;
      appended = t.appended;
      write_errors = t.write_errors;
      corrupt = t.corrupt;
      compactions = t.compactions;
    }
  in
  Mutex.unlock t.lock;
  s

let dir t = t.s_dir

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    Array.iter
      (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ())
      t.fds
  end;
  Mutex.unlock t.lock

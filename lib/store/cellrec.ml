open Vmbp_machine

type success = { metrics : Metrics.t; steps : int; output : string }

type entry = {
  key : string;
  fingerprint : string;
  outcome : (success, string) result;
  attempts : int;
  timed_out : bool;
}

let to_line e =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"key\":\"%s\"" (Sjson.escape e.key);
  add ",\"fp\":\"%s\"" (Sjson.escape e.fingerprint);
  add ",\"attempts\":%d" e.attempts;
  add ",\"timed_out\":%b" e.timed_out;
  (match e.outcome with
  | Ok s ->
      let m = s.metrics in
      add ",\"ok\":true";
      add ",\"steps\":%d" s.steps;
      add ",\"output\":\"%s\"" (Sjson.escape s.output);
      add ",\"vm_instrs\":%d" m.Metrics.vm_instrs;
      add ",\"native_instrs\":%d" m.Metrics.native_instrs;
      add ",\"dispatches\":%d" m.Metrics.dispatches;
      add ",\"indirect_branches\":%d" m.Metrics.indirect_branches;
      add ",\"mispredicts\":%d" m.Metrics.mispredicts;
      add ",\"vm_branch_mispredicts\":%d" m.Metrics.vm_branch_mispredicts;
      add ",\"icache_fetches\":%d" m.Metrics.icache_fetches;
      add ",\"icache_misses\":%d" m.Metrics.icache_misses;
      add ",\"code_bytes\":%d" m.Metrics.code_bytes;
      add ",\"quickenings\":%d" m.Metrics.quickenings
  | Error msg -> add ",\"ok\":false,\"error\":\"%s\"" (Sjson.escape msg));
  add "}";
  Buffer.contents b

let of_line line =
  match
    let fields = Sjson.parse_line line in
    let str = Sjson.str fields in
    let int = Sjson.int fields in
    let bool = Sjson.bool fields in
    let outcome =
      if bool "ok" then begin
        let m = Metrics.create () in
        m.Metrics.vm_instrs <- int "vm_instrs";
        m.Metrics.native_instrs <- int "native_instrs";
        m.Metrics.dispatches <- int "dispatches";
        m.Metrics.indirect_branches <- int "indirect_branches";
        m.Metrics.mispredicts <- int "mispredicts";
        m.Metrics.vm_branch_mispredicts <- int "vm_branch_mispredicts";
        m.Metrics.icache_fetches <- int "icache_fetches";
        m.Metrics.icache_misses <- int "icache_misses";
        m.Metrics.code_bytes <- int "code_bytes";
        m.Metrics.quickenings <- int "quickenings";
        Ok { metrics = m; steps = int "steps"; output = str "output" }
      end
      else Error (str "error")
    in
    {
      key = str "key";
      fingerprint = str "fp";
      outcome;
      attempts = int "attempts";
      timed_out = bool "timed_out";
    }
  with
  | e -> Some e
  | exception Sjson.Bad -> None

type decoded = Framed of string | Legacy of string | Corrupt

let magic = "vf1 "

let encode payload =
  if String.contains payload '\n' then invalid_arg "Frame.encode: newline";
  Printf.sprintf "%s%08x %d %s\n" magic (Crc32.digest payload)
    (String.length payload) payload

(* "vf1 CCCCCCCC LLL payload".  Parsed positionally: the CRC field is
   exactly 8 hex digits, then one space, then the decimal length, one
   space, and the payload must run exactly to the end of the line. *)
let decode line =
  let n = String.length line in
  if n < 4 || String.sub line 0 4 <> magic then Legacy line
  else if n < 14 || line.[12] <> ' ' then Corrupt
  else
    match int_of_string_opt ("0x" ^ String.sub line 4 8) with
    | None -> Corrupt
    | Some crc -> (
        match String.index_from_opt line 13 ' ' with
        | None -> Corrupt
        | Some sp -> (
            match int_of_string_opt (String.sub line 13 (sp - 13)) with
            | None -> Corrupt
            | Some len ->
                let start = sp + 1 in
                if len < 0 || start + len <> n then Corrupt
                else if Crc32.digest_sub line ~pos:start ~len <> crc then
                  Corrupt
                else Framed (String.sub line start len)))

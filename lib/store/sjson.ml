exception Bad

type v = S of string | I of int | F of float | B of bool | Null

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let parse_line s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else s.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Bad else advance () in
  let literal w = String.iter expect w in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        let e = peek () in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then raise Bad;
            (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            (* The writers only \u-escape ASCII control characters. *)
            | Some code when code < 0x80 ->
                pos := !pos + 4;
                Buffer.add_char b (Char.chr code)
            | _ -> raise Bad)
        | _ -> raise Bad);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let numchar c =
      (c >= '0' && c <= '9')
      || c = '-' || c = '+' || c = '.' || c = 'e' || c = 'E'
    in
    while !pos < n && numchar s.[!pos] do
      advance ()
    done;
    let lit = String.sub s start (!pos - start) in
    match int_of_string_opt lit with
    | Some i -> I i
    | None -> (
        match float_of_string_opt lit with
        | Some f -> F f
        | None -> raise Bad)
  in
  let parse_value () =
    match peek () with
    | '"' -> S (parse_string ())
    | 't' ->
        literal "true";
        B true
    | 'f' ->
        literal "false";
        B false
    | 'n' ->
        literal "null";
        Null
    | '-' | '0' .. '9' -> parse_number ()
    | _ -> raise Bad
  in
  expect '{';
  let fields = ref [] in
  (if peek () = '}' then advance ()
   else
     let rec members () =
       let k = parse_string () in
       expect ':';
       fields := (k, parse_value ()) :: !fields;
       match peek () with
       | ',' ->
           advance ();
           members ()
       | '}' -> advance ()
       | _ -> raise Bad
     in
     members ());
  while !pos < n do
    (match s.[!pos] with ' ' | '\t' | '\r' -> () | _ -> raise Bad);
    advance ()
  done;
  !fields

let str fields k =
  match List.assoc_opt k fields with Some (S s) -> s | _ -> raise Bad

let int fields k =
  match List.assoc_opt k fields with Some (I i) -> i | _ -> raise Bad

let num fields k =
  match List.assoc_opt k fields with
  | Some (I i) -> float_of_int i
  | Some (F f) -> f
  | _ -> raise Bad

let bool fields k =
  match List.assoc_opt k fields with Some (B b) -> b | _ -> raise Bad

let str_opt fields k =
  match List.assoc_opt k fields with Some (S s) -> Some s | _ -> None

let int_opt fields k =
  match List.assoc_opt k fields with Some (I i) -> Some i | _ -> None

(** The interpreter variants compared in the paper (Section 7.1).

    Static techniques fix the set of replicas and superinstructions at
    interpreter build time from a training profile; dynamic techniques copy
    executable code when the VM code is generated at run time
    (Section 5). *)

type parse_algo =
  | Greedy  (** maximum munch; the paper's default *)
  | Optimal  (** dynamic programming, minimum number of (super)instructions *)

type replica_strategy =
  | Round_robin  (** statically least-recently-used copy; paper's default *)
  | Random of int  (** uniformly random copy, with the given seed *)

type static_params = {
  replicas : int;  (** additional instruction copies to create *)
  superinstrs : int;  (** distinct superinstructions to create *)
  parse : parse_algo;
  strategy : replica_strategy;
  prefer_short : bool;
      (** weight sequence counts towards shorter sequences when selecting
          superinstructions (the paper's JVM heuristic) *)
}

val static_params :
  ?replicas:int ->
  ?superinstrs:int ->
  ?parse:parse_algo ->
  ?strategy:replica_strategy ->
  ?prefer_short:bool ->
  unit ->
  static_params
(** Defaults: no replicas, no superinstructions, greedy parse, round-robin
    selection, no short-sequence preference. *)

type t =
  | Switch  (** switch dispatch: one shared indirect branch (Figure 1) *)
  | Plain  (** threaded code; the baseline, speedup factor 1 (Figure 2) *)
  | Static of static_params
      (** static replication and/or superinstructions; covers the paper's
          [static repl], [static super] and [static both] by the counts in
          the parameters *)
  | Dynamic_repl  (** one code copy per VM instruction instance *)
  | Dynamic_super
      (** per-basic-block superinstructions, identical blocks shared
          (Piumarta and Riccardi 1998) *)
  | Dynamic_both  (** per-block superinstructions with replication *)
  | Across_bb
      (** dynamic superinstructions across basic blocks, with replication:
          dispatch only on taken VM branches, calls and returns *)
  | With_static_super of static_params
      (** static superinstructions folded into [Across_bb] code *)
  | With_static_across_bb of static_params
      (** JVM variant: static superinstructions may cross basic-block
          boundaries; side entries revert to non-replicated code
          (Figure 6) *)
  | Subroutine
      (** subroutine threading (Berndl et al. 2005, the paper's Section 8):
          a tiny JIT emits one native call per VM instruction, so dispatch
          executes no indirect branch at all; only taken VM-level control
          transfers remain BTB events, at the cost of call/return overhead
          on every instruction *)

(* Ready-made configurations matching the paper's variant list. *)

val switch : t
val plain : t
val static_repl : ?n:int -> unit -> t
(** [n] defaults to 400 replicas. *)

val static_super : ?n:int -> unit -> t
(** [n] defaults to 400 superinstructions. *)

val static_both : ?supers:int -> ?replicas:int -> unit -> t
(** Defaults to the paper's 35 superinstructions + 365 replicas. *)

val dynamic_repl : t
val dynamic_super : t
val dynamic_both : t
val across_bb : t
val with_static_super : ?n:int -> unit -> t
val with_static_across_bb : ?n:int -> unit -> t
val subroutine : t

val paper_gforth_variants : t list
(** The nine variants of Figures 7, 8 and 10-11, in figure order. *)

val paper_jvm_variants : t list
(** The nine variants of Figures 9 and 12-13, in figure order. *)

val name : t -> string
(** The paper's label for the variant, e.g. ["dynamic both"]. *)

val descriptor : t -> string
(** A parameter-complete identifier: two techniques are structurally equal
    exactly when their descriptors are equal (unlike {!name}, which
    collapses e.g. every replica count to ["static repl"]).  Stable across
    runs; used as part of the resume journal's cell keys. *)

val of_name : string -> t option
(** Inverse of [name] for the built-in configurations; also accepts
    hyphenated spellings. *)

val uses_static_selection : t -> bool
(** Whether building the technique needs a training profile. *)

val is_dynamic : t -> bool
(** Whether the technique generates code at run time. *)

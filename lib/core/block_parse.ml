type group = { start : int; len : int }

(* Both parsers need, per position, the end of the maximal eligible run the
   position sits in ("a superinstruction may not extend past the first
   ineligible slot").  Rescanning forward from every position is quadratic
   in the run length -- real programs have straight-line runs thousands of
   slots long -- so the limit is maintained incrementally: one forward scan
   per run, reused for every position inside it. *)

let singletons ~start ~stop =
  let rec loop pos acc =
    if pos > stop then List.rev acc
    else loop (pos + 1) ({ start = pos; len = 1 } :: acc)
  in
  loop start []

let greedy set ~opcodes ~eligible ~start ~stop =
  if Super_set.max_len set = 0 then
    (* No superinstructions: every slot is its own group, no eligibility
       scanning needed. *)
    singletons ~start ~stop
  else begin
    let limit = ref (start - 1) in
    let eligible_limit pos =
      if !limit < pos then begin
        let i = ref pos in
        while !i <= stop && eligible !i do incr i done;
        limit := !i - 1
      end;
      !limit
    in
    let rec loop pos acc =
      if pos > stop then List.rev acc
      else if not (eligible pos) then
        loop (pos + 1) ({ start = pos; len = 1 } :: acc)
      else
        let limit = eligible_limit pos in
        match Super_set.match_lengths set ~opcodes ~pos ~limit with
        | longest :: _ ->
            loop (pos + longest) ({ start = pos; len = longest } :: acc)
        | [] -> loop (pos + 1) ({ start = pos; len = 1 } :: acc)
    in
    loop start []
  end

let optimal set ~opcodes ~eligible ~start ~stop =
  let n = stop - start + 1 in
  if n <= 0 then []
  else if Super_set.max_len set = 0 then singletons ~start ~stop
  else begin
    (* best.(i) = minimal group count for slots [start+i .. stop];
       step.(i) = length of the first group in an optimal split. *)
    let best = Array.make (n + 1) 0 in
    let step = Array.make n 1 in
    (* Scanning backwards, so the incremental limit is per-run from the
       run's first position: recompute when entering a fresh run (the
       position above was ineligible). *)
    let limit = Array.make (n + 1) (-1) in
    for i = n - 1 downto 0 do
      let pos = start + i in
      best.(i) <- 1 + best.(i + 1);
      step.(i) <- 1;
      if eligible pos then begin
        limit.(i) <-
          (if i + 1 < n && limit.(i + 1) >= 0 then limit.(i + 1) else pos);
        List.iter
          (fun l ->
            (* Longest-first iteration plus strict improvement test breaks
               ties towards longer first groups. *)
            if 1 + best.(i + l) < best.(i) then begin
              best.(i) <- 1 + best.(i + l);
              step.(i) <- l
            end)
          (Super_set.match_lengths set ~opcodes ~pos ~limit:limit.(i))
      end
    done;
    let rec rebuild i acc =
      if i >= n then List.rev acc
      else rebuild (i + step.(i)) ({ start = start + i; len = step.(i) } :: acc)
    in
    rebuild 0 []
  end

let group_count groups = List.length groups

let pp ppf groups =
  List.iter
    (fun g ->
      if g.len = 1 then Format.fprintf ppf "[%d]" g.start
      else Format.fprintf ppf "[%d..%d]" g.start (g.start + g.len - 1))
    groups

(** The simulating interpreter engine.

    The engine executes a VM program for real -- the front end's semantics
    computes actual results -- while simultaneously driving the simulated
    hardware: every executed code range goes through the I-cache, every
    dispatch indirect branch through the branch predictor, and all event
    counts into {!Vmbp_machine.Metrics}.  Which dispatches exist, at which
    addresses, is entirely determined by the {!Code_layout}, so the same
    engine serves every technique.

    The interpreter loop itself is decode-once, run-many: a {e translation}
    pass walks the layout once and flattens every per-slot fact the loop
    needs into parallel int arrays; the loop then alternates between a
    block-entry guard (poll, fuel, pc bounds, shadow-window classification
    -- once per entered straight-line block) and a straight-line fast run
    over the pre-decoded stream.  The event stream, metrics, poll contract
    and trap reporting are observably identical to the plain per-step loop,
    which is kept as {!run_events_legacy} and differentially tested. *)

type exec = Vmbp_vm.Program.t -> int -> Vmbp_vm.Control.t
(** [exec program pc] runs the semantics of the instruction in slot [pc].
    The function reads the (possibly quickened) opcode and operands from the
    program itself. *)

type result = {
  metrics : Vmbp_machine.Metrics.t;
  cycles : float;  (** pipeline cost model applied to the metrics *)
  seconds : float;
  steps : int;  (** executed VM instructions *)
  trapped : string option;  (** [Some msg] when the program trapped *)
}

type sink = {
  on_dispatch : branch:int -> target:int -> opcode:int -> vm_transfer:bool -> unit;
      (** one dispatch indirect branch: the branch at [branch] jumped to
          [target] while executing [opcode]; [vm_transfer] marks dispatches
          that follow a VM-level control transfer (their mispredictions are
          attributed to VM branches, Section 7.3) *)
  on_fetch : addr:int -> bytes:int -> opcode:int -> unit;
      (** one I-cache code fetch of [bytes] bytes starting at [addr], issued
          while executing [opcode] (for attributing misses to VM opcodes) *)
}
(** Where the engine's simulated-hardware events go.  The engine itself
    accounts only the deterministic event counts (executed VM/native
    instructions, dispatches, quickenings); everything whose outcome depends
    on predictor or I-cache state flows through the sink, so one interpreter
    loop serves both direct simulation ({!run}) and trace recording
    ({!Vmbp_report.Trace}). *)

val out_of_fuel : string
(** The trap message reported when a run exhausts its fuel. *)

(** {1 Translations} *)

type translation
(** The decode-once form of one layout: per-slot code addresses, sizes,
    dispatch branch addresses, instruction counts, opcode and transfer
    classification, flattened out of the option-typed site records into
    parallel int arrays read with one unguarded load each on the hot path.
    Mutable: quickening re-translates the enclosing straight-line block so
    the translation always mirrors the layout it was built from.  A
    translation is therefore private to one run; to share decode work
    across runs, share a {!plan}. *)

val translate : Code_layout.t -> translation
(** Build the translation of [layout] as it currently stands (one pass over
    the sites). *)

type plan
(** An immutable pristine translation snapshot plus the technique it was
    built for.  Layouts build deterministically per (workload, technique,
    scale), so one plan -- captured from a freshly built layout -- serves
    every subsequent run of the group: {!translation} instantiates a
    private mutable copy by array blits instead of re-decoding the sites.
    Plans are what {!Vmbp_report.Par_runner} caches alongside traces. *)

val plan : Code_layout.t -> plan
(** Capture a plan from a freshly built (pristine, un-quickened) layout. *)

val plan_slots : plan -> int
(** Number of program slots the plan was built over (for cache sizing). *)

val translation : ?plan:plan -> Code_layout.t -> translation
(** The translation to run [layout] with: instantiated from [plan] when
    given (raising [Invalid_argument] if the plan's program length or
    technique does not match the layout), freshly built otherwise. *)

val translation_equal : translation -> translation -> bool
(** Structural equality of every decoded per-slot fact.  The test oracle
    for incremental re-translation: after a run that quickened, the
    mutated translation must equal a from-scratch {!translate} of the
    mutated layout. *)

val run_events :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?exec_counts:int array ->
  ?translation:translation ->
  metrics:Vmbp_machine.Metrics.t ->
  layout:Code_layout.t ->
  exec:exec ->
  sink:sink ->
  unit ->
  int * string option
(** Execute the layout's program, streaming every dispatch and fetch event
    into [sink] and accumulating the deterministic counters into [metrics]
    ([mispredicts], [vm_branch_mispredicts], [icache_fetches],
    [icache_misses] and [code_bytes] are left untouched -- they belong to
    whoever consumes the events).  Returns [(steps, trapped)].  The event
    stream is a function of the layout and the program semantics only; it
    does not depend on the CPU model or predictor configuration, which is
    what makes record-once/replay-many across a CPU grid sound.

    [translation] supplies the pre-decoded stream (it must have been built
    from this layout, in its current state); when absent the engine
    translates on entry.  The translation is mutated in lockstep with the
    layout by quickening and must not be reused for another run.

    [poll] is called every few thousand executed VM instructions (and once
    before the first); it is the cooperative watchdog hook: a hung-cell
    deadline raises out of it, aborting the run, so supervisors regain
    control without preemption.  The hook must not touch the run's state. *)

val run_events_legacy :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?exec_counts:int array ->
  metrics:Vmbp_machine.Metrics.t ->
  layout:Code_layout.t ->
  exec:exec ->
  sink:sink ->
  unit ->
  int * string option
(** The pre-translation per-step interpreter loop, kept as the differential
    reference for {!run_events}: same contract, same event stream, same
    returns, but every per-slot fact re-derived from the site records on
    every executed instruction.  Used by the equivalence test suites and the
    [bench/engine_bench] perf smoke; not used by the report pipeline. *)

val run :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?exec_counts:int array ->
  ?translation:translation ->
  config:Config.t ->
  layout:Code_layout.t ->
  exec:exec ->
  unit ->
  result
(** Execute the layout's program to completion.

    [fuel] bounds the number of executed VM instructions (default
    unlimited); exhausting it stops the run with [trapped = Some out_of_fuel]
    so the metrics accumulated up to that point remain observable.  When
    [exec_counts] is given, the engine increments one counter per executed
    slot, which is how training runs collect dynamic profiles. *)

val run_functional :
  ?fuel:int ->
  ?exec_counts:int array ->
  program:Vmbp_vm.Program.t ->
  exec:exec ->
  unit ->
  int * string option
(** Run the program without any hardware simulation (and without a layout):
    returns the executed VM instruction count and the trap message, if any
    (fuel exhaustion reports [Some out_of_fuel]).
    Used by tests to establish reference behaviour, and by training runs
    that only need quickening to reach a fixed point.  The program is
    mutated in place by quickening. *)

open Vmbp_vm
open Vmbp_machine

type exec = Program.t -> int -> Control.t

type result = {
  metrics : Metrics.t;
  cycles : float;
  seconds : float;
  steps : int;
  trapped : string option;
}

type sink = {
  on_dispatch : branch:int -> target:int -> opcode:int -> vm_transfer:bool -> unit;
  on_fetch : addr:int -> bytes:int -> opcode:int -> unit;
}

let out_of_fuel = "out of fuel"

type stop_reason = Finished | Trapped of string

(* Whether the instruction in [slot] is a VM-level control transfer, for
   attributing mispredictions to VM branches (Section 7.3). *)
let slot_is_transfer program slot =
  match (Program.instr_at program slot).Instr.branch with
  | Instr.Straight -> false
  | Instr.Cond_branch _ | Instr.Uncond_branch _ | Instr.Indirect_branch
  | Instr.Call _ | Instr.Indirect_call | Instr.Return | Instr.Stop ->
      true

(* How often the cooperative [poll] hook runs, in executed VM instructions.
   Power of two, so the check is one masked compare on the hot path; small
   enough that a watchdog deadline is noticed within microseconds. *)
let poll_mask = 4096 - 1

let run_events ?(fuel = max_int) ?(poll = fun () -> ()) ?exec_counts
    ~metrics:m ~layout ~exec ~sink () =
  let program = layout.Code_layout.program in
  let sites = layout.Code_layout.sites in
  let shadow = layout.Code_layout.shadow in
  let shadow_until = layout.Code_layout.shadow_until in
  let costs = layout.Code_layout.costs in
  let on_dispatch = sink.on_dispatch and on_fetch = sink.on_fetch in
  let pending = ref (-1) in
  let pending_from_transfer = ref false in
  (* The branch classification of a slot is a per-slot constant between
     quickenings, so it is precomputed once instead of re-matching
     [Program.instr_at] on every interpreted instruction; the [Quicken]
     handler refreshes the rewritten slot. *)
  let transfer =
    Array.init (Program.length program) (slot_is_transfer program)
  in
  (* side-entry emulation for static superinstructions crossing basic
     blocks: while [shadow_lo <= pc <= shadow_hi], non-replicated code
     runs (Figure 6) *)
  let shadow_lo = ref 0 and shadow_hi = ref (-1) in
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    (* The poll hook is how watchdogs regain control of a hung or slow
       cell: it may raise, which aborts the run like any engine exception.
       Polling at step 0 means a deadline that already passed (e.g. an
       injected pre-run stall) is noticed before any work happens. *)
    if !steps land poll_mask = 0 then poll ();
    (* Exhausting the fuel is a reported stop, not an exception: the
       accumulated metrics of the truncated run stay observable. *)
    if !steps >= fuel then stop := Some (Trapped out_of_fuel)
    else begin
    let i = !pc in
    (* Loaded (possibly hostile) code can fall off the end of the program
       or jump outside it; both must surface as a reported trap, never as
       an [Array] exception escaping the engine. *)
    if i < 0 || i >= Program.length program then
      stop := Some (Trapped "pc out of range")
    else begin
    if !shadow_hi >= 0 && (i < !shadow_lo || i > !shadow_hi) then
      shadow_hi := -1;
    let site = if !shadow_hi >= 0 then shadow.(i) else sites.(i) in
    (* Capture the site before executing: quickening rewrites it. *)
    let entry_addr = site.Code_layout.entry_addr in
    let fetch_addr = site.Code_layout.fetch_addr in
    let fetch_bytes = site.Code_layout.fetch_bytes in
    let work_instrs = site.Code_layout.work_instrs in
    let pre_dispatch = site.Code_layout.pre_dispatch in
    let post_fall = site.Code_layout.post_fall in
    let post_taken = site.Code_layout.post_taken in
    let fall_extra = site.Code_layout.fall_extra_instrs in
    let opcode = program.Program.code.(i).Program.opcode in
    let is_transfer = transfer.(i) in
    (* Resolve the dispatch that brought control here. *)
    if !pending >= 0 then begin
      m.Metrics.dispatches <- m.Metrics.dispatches + 1;
      m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
      on_dispatch ~branch:!pending ~target:entry_addr ~opcode
        ~vm_transfer:!pending_from_transfer
    end;
    (* Gap dispatch of a not-yet-quickened instruction inside a dynamic
       superinstruction: jumps from the gap to the original routine. *)
    (match pre_dispatch with
    | Some d ->
        on_fetch ~addr:entry_addr ~bytes:costs.Costs.threaded_dispatch_bytes
          ~opcode;
        m.Metrics.native_instrs <-
          m.Metrics.native_instrs + d.Code_layout.instrs;
        m.Metrics.dispatches <- m.Metrics.dispatches + 1;
        m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
        on_dispatch ~branch:d.Code_layout.branch_addr ~target:fetch_addr
          ~opcode ~vm_transfer:false
    | None -> ());
    if site.Code_layout.call_fetch_bytes > 0 then
      on_fetch ~addr:site.Code_layout.call_fetch_addr
        ~bytes:site.Code_layout.call_fetch_bytes ~opcode;
    on_fetch ~addr:fetch_addr ~bytes:fetch_bytes ~opcode;
    m.Metrics.native_instrs <- m.Metrics.native_instrs + work_instrs;
    m.Metrics.vm_instrs <- m.Metrics.vm_instrs + 1;
    incr steps;
    (match exec_counts with
    | Some counts -> counts.(i) <- counts.(i) + 1
    | None -> ());
    let control =
      match exec program i with
      | Control.Quicken q ->
          Code_layout.quicken layout ~slot:i ~new_opcode:q.Control.new_opcode
            ~new_operands:q.Control.new_operands;
          (* The quick form may classify differently; this step already
             captured the pre-quickening [is_transfer], as before. *)
          transfer.(i) <- slot_is_transfer program i;
          m.Metrics.quickenings <- m.Metrics.quickenings + 1;
          q.Control.after
      | control -> control
    in
    match control with
    | Control.Next ->
        (match post_fall with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None ->
            m.Metrics.native_instrs <- m.Metrics.native_instrs + fall_extra;
            pending := -1);
        pc := i + 1
    | Control.Jump target ->
        (match post_taken with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None ->
            (* A layout must provide a dispatch on every taken path. *)
            assert false);
        (* An out-of-range target is trapped by the bounds check at the
           top of the next iteration; only guard the shadow lookup. *)
        if target >= 0 && target < Program.length program
           && shadow_until.(target) >= 0
        then begin
          shadow_lo := target;
          shadow_hi := shadow_until.(target)
        end
        else shadow_hi := -1;
        pc := target
    | Control.Halt -> stop := Some Finished
    | Control.Trap msg -> stop := Some (Trapped msg)
    | Control.Quicken _ ->
        (* [exec] resolved the outer quickening above; nested quickening is
           not meaningful. *)
        stop := Some (Trapped "nested quickening")
    end
    end
  done;
  ( !steps,
    match !stop with
    | Some (Trapped msg) -> Some msg
    | Some Finished | None -> None )

let run ?fuel ?poll ?exec_counts ~config ~layout ~exec () =
  let cpu = config.Config.cpu in
  let m = Metrics.create () in
  let predictor = Predictor.create (Config.predictor_kind config) in
  let icache = Icache.create cpu.Cpu_model.icache in
  let hits = ref 0 and misses = ref 0 in
  let sink =
    {
      on_dispatch =
        (fun ~branch ~target ~opcode ~vm_transfer ->
          if not (Predictor.access predictor ~branch ~target ~opcode) then begin
            m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
            if vm_transfer then
              m.Metrics.vm_branch_mispredicts <-
                m.Metrics.vm_branch_mispredicts + 1
          end);
      on_fetch =
        (fun ~addr ~bytes ~opcode:_ ->
          Icache.fetch icache ~addr ~bytes ~hits ~misses);
    }
  in
  let steps, trapped =
    run_events ?fuel ?poll ?exec_counts ~metrics:m ~layout ~exec ~sink ()
  in
  m.Metrics.icache_fetches <- !hits + !misses;
  m.Metrics.icache_misses <- !misses;
  m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
  {
    metrics = m;
    cycles = Cpu_model.cycles cpu m;
    seconds = Cpu_model.seconds cpu m;
    steps;
    trapped;
  }

let run_functional ?(fuel = max_int) ?exec_counts ~program ~exec () =
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    if !steps >= fuel then stop := Some (Trapped out_of_fuel)
    else if !pc < 0 || !pc >= Program.length program then
      stop := Some (Trapped "pc out of range")
    else begin
      let i = !pc in
      incr steps;
      (match exec_counts with
      | Some counts -> counts.(i) <- counts.(i) + 1
      | None -> ());
      let control =
        match exec program i with
        | Control.Quicken q ->
            let slot = program.Program.code.(i) in
            slot.Program.opcode <- q.Control.new_opcode;
            slot.Program.operands <- q.Control.new_operands;
            q.Control.after
        | control -> control
      in
      match control with
      | Control.Next -> pc := i + 1
      | Control.Jump target -> pc := target
      | Control.Halt -> stop := Some Finished
      | Control.Trap msg -> stop := Some (Trapped msg)
      | Control.Quicken _ -> stop := Some (Trapped "nested quickening")
    end
  done;
  ( !steps,
    match !stop with
    | Some (Trapped msg) -> Some msg
    | Some Finished | None -> None )

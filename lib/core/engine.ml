open Vmbp_vm
open Vmbp_machine

type exec = Program.t -> int -> Control.t

type result = {
  metrics : Metrics.t;
  cycles : float;
  seconds : float;
  steps : int;
  trapped : string option;
}

type sink = {
  on_dispatch : branch:int -> target:int -> opcode:int -> vm_transfer:bool -> unit;
  on_fetch : addr:int -> bytes:int -> opcode:int -> unit;
}

let out_of_fuel = "out of fuel"
let pc_out_of_range = "pc out of range"

(* Whether the instruction in [slot] is a VM-level control transfer, for
   attributing mispredictions to VM branches (Section 7.3). *)
let slot_is_transfer program slot =
  match (Program.instr_at program slot).Instr.branch with
  | Instr.Straight -> false
  | Instr.Cond_branch _ | Instr.Uncond_branch _ | Instr.Indirect_branch
  | Instr.Call _ | Instr.Indirect_call | Instr.Return | Instr.Stop ->
      true

(* How often the cooperative [poll] hook runs, in executed VM instructions.
   Power of two, so the check is one masked compare on the hot path; small
   enough that a watchdog deadline is noticed within microseconds. *)
let poll_interval = 4096
let poll_mask = poll_interval - 1

(* ------------------------------------------------------------------ *)
(* Decode-once translation.

   A translation is the enriched, pre-decoded form of one layout: every
   per-slot fact the interpreter loop needs -- code addresses and sizes for
   the I-cache, dispatch branch addresses, retired-instruction counts, the
   (possibly quickened) opcode and its branch classification -- is pulled
   out of the option-typed {!Code_layout.site} records once and stored in
   parallel int arrays co-allocated with each other, so the run loop reads
   each fact with one [Array.unsafe_get] instead of a record load plus an
   option match.  Dispatches that do not exist encode as address [-1].

   Quickening rewrites sites while the program runs, so a translation is
   kept consistent by block-scoped invalidation: [t_inv_lo]/[t_inv_hi]
   record, per slot, the straight-line run (delimited by control-transfer
   instructions) the slot belonged to at translation time.  Every layout
   repair a quickening can trigger -- retargeting the quickened slot
   (dynamic and subroutine techniques) or re-assembling the enclosing
   basic block (static superinstruction re-parse) -- stays inside that
   run, because basic blocks never span a control transfer, so re-reading
   exactly that slot range after {!Code_layout.quicken} restores
   translation = layout without touching the rest of the stream. *)

type translation = {
  t_n : int;
  t_entry : int array;  (* site entry_addr *)
  t_fetch_addr : int array;
  t_fetch_bytes : int array;
  t_work : int array;  (* retired native instructions of the work *)
  t_opcode : int array;  (* current opcode; refreshed by quickening *)
  t_transfer : bool array;  (* branch classification, ditto *)
  t_pre_addr : int array;  (* pre_dispatch branch addr; -1 = none *)
  t_pre_instrs : int array;
  t_fall_addr : int array;  (* post_fall branch addr; -1 = none *)
  t_fall_instrs : int array;
  t_taken_addr : int array;  (* post_taken branch addr; -1 = none *)
  t_taken_instrs : int array;
  t_fall_extra : int array;  (* kept ip increment when post_fall elided *)
  t_call_addr : int array;  (* subroutine threading's native call *)
  t_call_bytes : int array;  (* 0 = none *)
  t_inv_lo : int array;  (* quicken invalidation range (fixed) *)
  t_inv_hi : int array;
}

(* Decode one slot of the layout into the parallel arrays. *)
let translate_slot tr (layout : Code_layout.t) k =
  let program = layout.Code_layout.program in
  let s = layout.Code_layout.sites.(k) in
  tr.t_entry.(k) <- s.Code_layout.entry_addr;
  tr.t_fetch_addr.(k) <- s.Code_layout.fetch_addr;
  tr.t_fetch_bytes.(k) <- s.Code_layout.fetch_bytes;
  tr.t_work.(k) <- s.Code_layout.work_instrs;
  tr.t_opcode.(k) <- program.Program.code.(k).Program.opcode;
  tr.t_transfer.(k) <- slot_is_transfer program k;
  (match s.Code_layout.pre_dispatch with
  | Some d ->
      tr.t_pre_addr.(k) <- d.Code_layout.branch_addr;
      tr.t_pre_instrs.(k) <- d.Code_layout.instrs
  | None ->
      tr.t_pre_addr.(k) <- -1;
      tr.t_pre_instrs.(k) <- 0);
  (match s.Code_layout.post_fall with
  | Some d ->
      tr.t_fall_addr.(k) <- d.Code_layout.branch_addr;
      tr.t_fall_instrs.(k) <- d.Code_layout.instrs
  | None ->
      tr.t_fall_addr.(k) <- -1;
      tr.t_fall_instrs.(k) <- 0);
  (match s.Code_layout.post_taken with
  | Some d ->
      tr.t_taken_addr.(k) <- d.Code_layout.branch_addr;
      tr.t_taken_instrs.(k) <- d.Code_layout.instrs
  | None ->
      tr.t_taken_addr.(k) <- -1;
      tr.t_taken_instrs.(k) <- 0);
  tr.t_fall_extra.(k) <- s.Code_layout.fall_extra_instrs;
  tr.t_call_addr.(k) <- s.Code_layout.call_fetch_addr;
  tr.t_call_bytes.(k) <- s.Code_layout.call_fetch_bytes

let translate (layout : Code_layout.t) =
  let n = Program.length layout.Code_layout.program in
  let mk () = Array.make n 0 in
  let tr =
    {
      t_n = n;
      t_entry = mk ();
      t_fetch_addr = mk ();
      t_fetch_bytes = mk ();
      t_work = mk ();
      t_opcode = mk ();
      t_transfer = Array.make n false;
      t_pre_addr = mk ();
      t_pre_instrs = mk ();
      t_fall_addr = mk ();
      t_fall_instrs = mk ();
      t_taken_addr = mk ();
      t_taken_instrs = mk ();
      t_fall_extra = mk ();
      t_call_addr = mk ();
      t_call_bytes = mk ();
      t_inv_lo = mk ();
      t_inv_hi = mk ();
    }
  in
  for k = 0 to n - 1 do
    translate_slot tr layout k
  done;
  (* Straight-line runs at translation time.  These bound every site a
     quickening can repair (see the type comment), and the bound stays
     valid even if later quickenings change a slot's branch classification:
     the technique's own basic-block structure was fixed when the layout
     was built, from this same pre-run classification. *)
  let lo = ref 0 in
  for k = 0 to n - 1 do
    if tr.t_transfer.(k) || k = n - 1 then begin
      for j = !lo to k do
        tr.t_inv_lo.(j) <- !lo;
        tr.t_inv_hi.(j) <- k
      done;
      lo := k + 1
    end
  done;
  tr

(* Re-read everything a quickening of [slot] may have repaired. *)
let retranslate tr layout slot =
  for j = tr.t_inv_lo.(slot) to tr.t_inv_hi.(slot) do
    translate_slot tr layout j
  done

(* ------------------------------------------------------------------ *)
(* Translation plans: immutable pristine snapshots.

   Layouts for the same (workload, technique, scale) build
   deterministically, so the translation of a freshly built layout is the
   same arrays every time.  A [plan] captures that pristine translation
   once; [translate ~plan] then instantiates a run's private mutable
   translation by copying the arrays instead of re-walking the site
   records.  The plan itself is never mutated -- quickening only touches
   the per-run copy -- so one plan serves every engine run of a group
   (see {!Vmbp_report.Par_runner}'s translation cache). *)

type plan = { p_technique : Technique.t; p_tr : translation }

let plan (layout : Code_layout.t) =
  { p_technique = layout.Code_layout.technique; p_tr = translate layout }

let plan_slots p = p.p_tr.t_n

let instantiate p =
  let tr = p.p_tr in
  {
    t_n = tr.t_n;
    t_entry = Array.copy tr.t_entry;
    t_fetch_addr = Array.copy tr.t_fetch_addr;
    t_fetch_bytes = Array.copy tr.t_fetch_bytes;
    t_work = Array.copy tr.t_work;
    t_opcode = Array.copy tr.t_opcode;
    t_transfer = Array.copy tr.t_transfer;
    t_pre_addr = Array.copy tr.t_pre_addr;
    t_pre_instrs = Array.copy tr.t_pre_instrs;
    t_fall_addr = Array.copy tr.t_fall_addr;
    t_fall_instrs = Array.copy tr.t_fall_instrs;
    t_taken_addr = Array.copy tr.t_taken_addr;
    t_taken_instrs = Array.copy tr.t_taken_instrs;
    t_fall_extra = Array.copy tr.t_fall_extra;
    t_call_addr = Array.copy tr.t_call_addr;
    t_call_bytes = Array.copy tr.t_call_bytes;
    t_inv_lo = Array.copy tr.t_inv_lo;
    t_inv_hi = Array.copy tr.t_inv_hi;
  }

let translation_equal (a : translation) (b : translation) =
  (* Every field is an int, int array or bool array, so structural
     equality compares the complete decoded stream. *)
  a = b

let translation ?plan (layout : Code_layout.t) =
  match plan with
  | None -> translate layout
  | Some p ->
      if
        p.p_tr.t_n <> Program.length layout.Code_layout.program
        || p.p_technique <> layout.Code_layout.technique
      then
        invalid_arg
          "Engine.translation: plan does not match the layout (wrong program \
           length or technique)";
      instantiate p

(* ------------------------------------------------------------------ *)
(* The translated run loop.

   Control alternates between a block-entry guard and a straight-line fast
   run.  The guard performs, once per entered block, exactly the per-step
   checks the plain interpreter performed on every instruction -- the
   cooperative poll, the fuel test, the pc bounds test, and the
   shadow-window classification -- and then computes how many instructions
   may run before any of those checks could fire again: until the next
   poll boundary (steps divisible by [poll_interval]), until the fuel
   runs out, or until the program's last slot.  The fast run then executes
   up to that many slots with nothing per step but unsafe array reads,
   event emission and the semantics call; any VM-level transfer, trap,
   halt or budget exhaustion falls back out to the guard.

   Stop state is an immediate int ([0] running, [1] finished, [2]
   trapped), never an option: the old loop's per-iteration polymorphic
   [!stop = None] compare was a structural-equality call on the hottest
   path in the system. *)

let stop_running = 0
let stop_finished = 1
let stop_trapped = 2

let run_events ?(fuel = max_int) ?(poll = fun () -> ()) ?exec_counts
    ?translation ~metrics:(m : Metrics.t) ~layout ~exec ~sink () =
  let program = layout.Code_layout.program in
  let n = Program.length program in
  let tr =
    match translation with
    | Some tr ->
        if tr.t_n <> n then
          invalid_arg "Engine.run_events: translation does not match layout";
        tr
    | None -> translate layout
  in
  let shadow = layout.Code_layout.shadow in
  let shadow_until = layout.Code_layout.shadow_until in
  let costs = layout.Code_layout.costs in
  let dispatch_bytes = costs.Costs.threaded_dispatch_bytes in
  let on_dispatch = sink.on_dispatch and on_fetch = sink.on_fetch in
  let has_counts = exec_counts <> None in
  let counts = match exec_counts with Some c -> c | None -> [||] in
  let pending = ref (-1) in
  let pending_vmt = ref false in
  (* side-entry emulation for static superinstructions crossing basic
     blocks: while [shadow_lo <= pc <= shadow_hi], non-replicated code
     runs (Figure 6) *)
  let shadow_lo = ref 0 and shadow_hi = ref (-1) in
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref stop_running in
  let trap_msg = ref out_of_fuel in
  (* One slot through the non-replicated fallback site, option-typed like
     the sites themselves: shadow windows are rare (a taken branch into the
     middle of a replicated static superinstruction) and short, so this
     path stays off the fast run entirely. *)
  let shadow_step i =
    let site = shadow.(i) in
    (* Capture the site before executing: quickening rewrites it. *)
    let entry_addr = site.Code_layout.entry_addr in
    let fetch_addr = site.Code_layout.fetch_addr in
    let fetch_bytes = site.Code_layout.fetch_bytes in
    let work_instrs = site.Code_layout.work_instrs in
    let pre_dispatch = site.Code_layout.pre_dispatch in
    let post_fall = site.Code_layout.post_fall in
    let post_taken = site.Code_layout.post_taken in
    let fall_extra = site.Code_layout.fall_extra_instrs in
    let opcode = program.Program.code.(i).Program.opcode in
    let is_transfer = tr.t_transfer.(i) in
    if !pending >= 0 then begin
      m.Metrics.dispatches <- m.Metrics.dispatches + 1;
      m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
      on_dispatch ~branch:!pending ~target:entry_addr ~opcode
        ~vm_transfer:!pending_vmt
    end;
    (match pre_dispatch with
    | Some d ->
        on_fetch ~addr:entry_addr ~bytes:dispatch_bytes ~opcode;
        m.Metrics.native_instrs <- m.Metrics.native_instrs + d.Code_layout.instrs;
        m.Metrics.dispatches <- m.Metrics.dispatches + 1;
        m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
        on_dispatch ~branch:d.Code_layout.branch_addr ~target:fetch_addr
          ~opcode ~vm_transfer:false
    | None -> ());
    if site.Code_layout.call_fetch_bytes > 0 then
      on_fetch ~addr:site.Code_layout.call_fetch_addr
        ~bytes:site.Code_layout.call_fetch_bytes ~opcode;
    on_fetch ~addr:fetch_addr ~bytes:fetch_bytes ~opcode;
    m.Metrics.native_instrs <- m.Metrics.native_instrs + work_instrs;
    m.Metrics.vm_instrs <- m.Metrics.vm_instrs + 1;
    incr steps;
    if has_counts then counts.(i) <- counts.(i) + 1;
    let control =
      match exec program i with
      | Control.Quicken q ->
          Code_layout.quicken layout ~slot:i ~new_opcode:q.Control.new_opcode
            ~new_operands:q.Control.new_operands;
          (* The quick form may classify differently; this step already
             captured the pre-quickening [is_transfer], as before. *)
          retranslate tr layout i;
          m.Metrics.quickenings <- m.Metrics.quickenings + 1;
          q.Control.after
      | control -> control
    in
    match control with
    | Control.Next ->
        (match post_fall with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_vmt := is_transfer
        | None ->
            m.Metrics.native_instrs <- m.Metrics.native_instrs + fall_extra;
            pending := -1);
        pc := i + 1
    | Control.Jump target ->
        (match post_taken with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_vmt := is_transfer
        | None ->
            (* A layout must provide a dispatch on every taken path. *)
            assert false);
        if target >= 0 && target < n && shadow_until.(target) >= 0 then begin
          shadow_lo := target;
          shadow_hi := shadow_until.(target)
        end
        else shadow_hi := -1;
        pc := target
    | Control.Halt -> stop := stop_finished
    | Control.Trap msg ->
        trap_msg := msg;
        stop := stop_trapped
    | Control.Quicken _ ->
        (* [exec] resolved the outer quickening above; nested quickening is
           not meaningful. *)
        trap_msg := "nested quickening";
        stop := stop_trapped
  in
  let t_opcode = tr.t_opcode
  and t_entry = tr.t_entry
  and t_fetch_addr = tr.t_fetch_addr
  and t_fetch_bytes = tr.t_fetch_bytes
  and t_work = tr.t_work
  and t_transfer = tr.t_transfer
  and t_pre_addr = tr.t_pre_addr
  and t_pre_instrs = tr.t_pre_instrs
  and t_fall_addr = tr.t_fall_addr
  and t_fall_instrs = tr.t_fall_instrs
  and t_taken_addr = tr.t_taken_addr
  and t_taken_instrs = tr.t_taken_instrs
  and t_fall_extra = tr.t_fall_extra
  and t_call_addr = tr.t_call_addr
  and t_call_bytes = tr.t_call_bytes in
  while !stop = stop_running do
    (* Block-entry guard: the per-step checks of the plain loop, performed
       once per entered block.  The poll hook is how watchdogs regain
       control of a hung or slow cell: it may raise, which aborts the run
       like any engine exception.  Polling at step 0 means a deadline that
       already passed is noticed before any work happens.  Exhausting the
       fuel is a reported stop, not an exception: the accumulated metrics
       of the truncated run stay observable. *)
    let s = !steps in
    if s land poll_mask = 0 then poll ();
    if s >= fuel then begin
      trap_msg := out_of_fuel;
      stop := stop_trapped
    end
    else begin
      let i = !pc in
      (* Loaded (possibly hostile) code can fall off the end of the program
         or jump outside it; both must surface as a reported trap, never as
         an [Array] exception escaping the engine. *)
      if i < 0 || i >= n then begin
        trap_msg := pc_out_of_range;
        stop := stop_trapped
      end
      else begin
        if !shadow_hi >= 0 && (i < !shadow_lo || i > !shadow_hi) then
          shadow_hi := -1;
        if !shadow_hi >= 0 then shadow_step i
        else begin
          (* Steps until a skipped check could fire: the next poll
             boundary or the fuel limit, whichever is nearer (both are
             >= 1 here), capped at the last slot of the program. *)
          let till_poll = poll_interval - (s land poll_mask) in
          let till_fuel = fuel - s in
          let budget = if till_fuel < till_poll then till_fuel else till_poll in
          let last =
            let lim = i + budget - 1 in
            if lim >= n - 1 then n - 1 else lim
          in
          let j = ref i in
          let running = ref true in
          while !running do
            let k = !j in
            let opcode = Array.unsafe_get t_opcode k in
            let entry_addr = Array.unsafe_get t_entry k in
            (* Resolve the dispatch that brought control here. *)
            let p = !pending in
            if p >= 0 then begin
              m.Metrics.dispatches <- m.Metrics.dispatches + 1;
              m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
              on_dispatch ~branch:p ~target:entry_addr ~opcode
                ~vm_transfer:!pending_vmt
            end;
            let fetch_addr = Array.unsafe_get t_fetch_addr k in
            (* Gap dispatch of a not-yet-quickened instruction inside a
               dynamic superinstruction: jumps from the gap to the original
               routine. *)
            let pre = Array.unsafe_get t_pre_addr k in
            if pre >= 0 then begin
              on_fetch ~addr:entry_addr ~bytes:dispatch_bytes ~opcode;
              m.Metrics.native_instrs <-
                m.Metrics.native_instrs + Array.unsafe_get t_pre_instrs k;
              m.Metrics.dispatches <- m.Metrics.dispatches + 1;
              m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
              on_dispatch ~branch:pre ~target:fetch_addr ~opcode
                ~vm_transfer:false
            end;
            let cb = Array.unsafe_get t_call_bytes k in
            if cb > 0 then
              on_fetch ~addr:(Array.unsafe_get t_call_addr k) ~bytes:cb ~opcode;
            on_fetch ~addr:fetch_addr
              ~bytes:(Array.unsafe_get t_fetch_bytes k)
              ~opcode;
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + Array.unsafe_get t_work k;
            m.Metrics.vm_instrs <- m.Metrics.vm_instrs + 1;
            steps := !steps + 1;
            if has_counts then counts.(k) <- counts.(k) + 1;
            (* Capture the slot's post-exec facts before executing:
               quickening rewrites them, and the step that quickens must
               still account the pre-quickening site, as before. *)
            let is_transfer = Array.unsafe_get t_transfer k in
            let fall_addr = Array.unsafe_get t_fall_addr k in
            let fall_instrs = Array.unsafe_get t_fall_instrs k in
            let taken_addr = Array.unsafe_get t_taken_addr k in
            let taken_instrs = Array.unsafe_get t_taken_instrs k in
            let fall_extra = Array.unsafe_get t_fall_extra k in
            let control =
              match exec program k with
              | Control.Quicken q ->
                  Code_layout.quicken layout ~slot:k
                    ~new_opcode:q.Control.new_opcode
                    ~new_operands:q.Control.new_operands;
                  retranslate tr layout k;
                  m.Metrics.quickenings <- m.Metrics.quickenings + 1;
                  q.Control.after
              | control -> control
            in
            match control with
            | Control.Next ->
                if fall_addr >= 0 then begin
                  m.Metrics.native_instrs <-
                    m.Metrics.native_instrs + fall_instrs;
                  pending := fall_addr;
                  pending_vmt := is_transfer
                end
                else begin
                  m.Metrics.native_instrs <-
                    m.Metrics.native_instrs + fall_extra;
                  pending := -1
                end;
                if k < last then j := k + 1
                else begin
                  pc := k + 1;
                  running := false
                end
            | Control.Jump target ->
                if taken_addr >= 0 then begin
                  m.Metrics.native_instrs <-
                    m.Metrics.native_instrs + taken_instrs;
                  pending := taken_addr;
                  pending_vmt := is_transfer
                end
                else
                  (* A layout must provide a dispatch on every taken path. *)
                  assert false;
                (* An out-of-range target is trapped by the bounds check in
                   the guard; only guard the shadow lookup. *)
                if
                  target >= 0 && target < n
                  && Array.unsafe_get shadow_until target >= 0
                then begin
                  shadow_lo := target;
                  shadow_hi := Array.unsafe_get shadow_until target
                end
                else shadow_hi := -1;
                pc := target;
                running := false
            | Control.Halt ->
                stop := stop_finished;
                running := false
            | Control.Trap msg ->
                trap_msg := msg;
                stop := stop_trapped;
                running := false
            | Control.Quicken _ ->
                trap_msg := "nested quickening";
                stop := stop_trapped;
                running := false
          done
        end
      end
    end
  done;
  (!steps, if !stop = stop_trapped then Some !trap_msg else None)

(* ------------------------------------------------------------------ *)
(* The pre-translation interpreter loop, kept verbatim as the reference
   the translated loop is differentially tested against (and as the
   paper's Section 3 plain-interpreter shape): every per-slot fact is
   re-derived from the option-typed site records on every executed
   instruction. *)

type stop_reason = Finished | Trapped of string

let run_events_legacy ?(fuel = max_int) ?(poll = fun () -> ()) ?exec_counts
    ~metrics:m ~layout ~exec ~sink () =
  let program = layout.Code_layout.program in
  let sites = layout.Code_layout.sites in
  let shadow = layout.Code_layout.shadow in
  let shadow_until = layout.Code_layout.shadow_until in
  let costs = layout.Code_layout.costs in
  let on_dispatch = sink.on_dispatch and on_fetch = sink.on_fetch in
  let pending = ref (-1) in
  let pending_from_transfer = ref false in
  let transfer =
    Array.init (Program.length program) (slot_is_transfer program)
  in
  let shadow_lo = ref 0 and shadow_hi = ref (-1) in
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    if !steps land poll_mask = 0 then poll ();
    if !steps >= fuel then stop := Some (Trapped out_of_fuel)
    else begin
    let i = !pc in
    if i < 0 || i >= Program.length program then
      stop := Some (Trapped pc_out_of_range)
    else begin
    if !shadow_hi >= 0 && (i < !shadow_lo || i > !shadow_hi) then
      shadow_hi := -1;
    let site = if !shadow_hi >= 0 then shadow.(i) else sites.(i) in
    let entry_addr = site.Code_layout.entry_addr in
    let fetch_addr = site.Code_layout.fetch_addr in
    let fetch_bytes = site.Code_layout.fetch_bytes in
    let work_instrs = site.Code_layout.work_instrs in
    let pre_dispatch = site.Code_layout.pre_dispatch in
    let post_fall = site.Code_layout.post_fall in
    let post_taken = site.Code_layout.post_taken in
    let fall_extra = site.Code_layout.fall_extra_instrs in
    let opcode = program.Program.code.(i).Program.opcode in
    let is_transfer = transfer.(i) in
    if !pending >= 0 then begin
      m.Metrics.dispatches <- m.Metrics.dispatches + 1;
      m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
      on_dispatch ~branch:!pending ~target:entry_addr ~opcode
        ~vm_transfer:!pending_from_transfer
    end;
    (match pre_dispatch with
    | Some d ->
        on_fetch ~addr:entry_addr ~bytes:costs.Costs.threaded_dispatch_bytes
          ~opcode;
        m.Metrics.native_instrs <-
          m.Metrics.native_instrs + d.Code_layout.instrs;
        m.Metrics.dispatches <- m.Metrics.dispatches + 1;
        m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
        on_dispatch ~branch:d.Code_layout.branch_addr ~target:fetch_addr
          ~opcode ~vm_transfer:false
    | None -> ());
    if site.Code_layout.call_fetch_bytes > 0 then
      on_fetch ~addr:site.Code_layout.call_fetch_addr
        ~bytes:site.Code_layout.call_fetch_bytes ~opcode;
    on_fetch ~addr:fetch_addr ~bytes:fetch_bytes ~opcode;
    m.Metrics.native_instrs <- m.Metrics.native_instrs + work_instrs;
    m.Metrics.vm_instrs <- m.Metrics.vm_instrs + 1;
    incr steps;
    (match exec_counts with
    | Some counts -> counts.(i) <- counts.(i) + 1
    | None -> ());
    let control =
      match exec program i with
      | Control.Quicken q ->
          Code_layout.quicken layout ~slot:i ~new_opcode:q.Control.new_opcode
            ~new_operands:q.Control.new_operands;
          transfer.(i) <- slot_is_transfer program i;
          m.Metrics.quickenings <- m.Metrics.quickenings + 1;
          q.Control.after
      | control -> control
    in
    match control with
    | Control.Next ->
        (match post_fall with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None ->
            m.Metrics.native_instrs <- m.Metrics.native_instrs + fall_extra;
            pending := -1);
        pc := i + 1
    | Control.Jump target ->
        (match post_taken with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None -> assert false);
        if target >= 0 && target < Program.length program
           && shadow_until.(target) >= 0
        then begin
          shadow_lo := target;
          shadow_hi := shadow_until.(target)
        end
        else shadow_hi := -1;
        pc := target
    | Control.Halt -> stop := Some Finished
    | Control.Trap msg -> stop := Some (Trapped msg)
    | Control.Quicken _ -> stop := Some (Trapped "nested quickening")
    end
    end
  done;
  ( !steps,
    match !stop with
    | Some (Trapped msg) -> Some msg
    | Some Finished | None -> None )

let run ?fuel ?poll ?exec_counts ?translation ~config ~layout ~exec () =
  let cpu = config.Config.cpu in
  let m = Metrics.create () in
  let predictor = Predictor.create (Config.predictor_kind config) in
  let icache = Icache.create cpu.Cpu_model.icache in
  let hits = ref 0 and misses = ref 0 in
  (* Specialize the dispatch callback on the predictor kind up front: the
     common table kinds are called straight through their module, skipping
     [Predictor.access]'s per-event dispatch -- without cross-module
     inlining every call layer on this path is a real indirect call, and
     it runs once per dispatch token. *)
  let on_dispatch =
    match Predictor.btb predictor with
    | Some b ->
        fun ~branch ~target ~opcode:_ ~vm_transfer ->
          if not (Btb.access b ~branch ~target) then begin
            m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
            if vm_transfer then
              m.Metrics.vm_branch_mispredicts <-
                m.Metrics.vm_branch_mispredicts + 1
          end
    | None -> (
        match Predictor.two_level predictor with
        | Some p ->
            fun ~branch ~target ~opcode:_ ~vm_transfer ->
              if not (Two_level.access p ~branch ~target) then begin
                m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
                if vm_transfer then
                  m.Metrics.vm_branch_mispredicts <-
                    m.Metrics.vm_branch_mispredicts + 1
              end
        | None ->
            fun ~branch ~target ~opcode ~vm_transfer ->
              if not (Predictor.access predictor ~branch ~target ~opcode)
              then begin
                m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
                if vm_transfer then
                  m.Metrics.vm_branch_mispredicts <-
                    m.Metrics.vm_branch_mispredicts + 1
              end)
  in
  let sink =
    {
      on_dispatch;
      on_fetch =
        (fun ~addr ~bytes ~opcode:_ ->
          Icache.fetch icache ~addr ~bytes ~hits ~misses);
    }
  in
  let steps, trapped =
    run_events ?fuel ?poll ?exec_counts ?translation ~metrics:m ~layout ~exec
      ~sink ()
  in
  m.Metrics.icache_fetches <- !hits + !misses;
  m.Metrics.icache_misses <- !misses;
  m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
  {
    metrics = m;
    cycles = Cpu_model.cycles cpu m;
    seconds = Cpu_model.seconds cpu m;
    steps;
    trapped;
  }

let run_functional ?(fuel = max_int) ?exec_counts ~program ~exec () =
  let n = Program.length program in
  let has_counts = exec_counts <> None in
  let counts = match exec_counts with Some c -> c | None -> [||] in
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref stop_running in
  let trap_msg = ref out_of_fuel in
  while !stop = stop_running do
    if !steps >= fuel then begin
      trap_msg := out_of_fuel;
      stop := stop_trapped
    end
    else if !pc < 0 || !pc >= n then begin
      trap_msg := pc_out_of_range;
      stop := stop_trapped
    end
    else begin
      let i = !pc in
      incr steps;
      if has_counts then counts.(i) <- counts.(i) + 1;
      let control =
        match exec program i with
        | Control.Quicken q ->
            let slot = program.Program.code.(i) in
            slot.Program.opcode <- q.Control.new_opcode;
            slot.Program.operands <- q.Control.new_operands;
            q.Control.after
        | control -> control
      in
      match control with
      | Control.Next -> pc := i + 1
      | Control.Jump target -> pc := target
      | Control.Halt -> stop := stop_finished
      | Control.Trap msg ->
          trap_msg := msg;
          stop := stop_trapped
      | Control.Quicken _ ->
          trap_msg := "nested quickening";
          stop := stop_trapped
    end
  done;
  (!steps, if !stop = stop_trapped then Some !trap_msg else None)

open Vmbp_vm
open Vmbp_machine

type exec = Program.t -> int -> Control.t

type result = {
  metrics : Metrics.t;
  cycles : float;
  seconds : float;
  steps : int;
  trapped : string option;
}

let out_of_fuel = "out of fuel"

type stop_reason = Finished | Trapped of string

let run ?(fuel = max_int) ?exec_counts ~config ~layout ~exec () =
  let program = layout.Code_layout.program in
  let sites = layout.Code_layout.sites in
  let shadow = layout.Code_layout.shadow in
  let shadow_until = layout.Code_layout.shadow_until in
  let costs = layout.Code_layout.costs in
  let cpu = config.Config.cpu in
  let m = Metrics.create () in
  let predictor = Predictor.create (Config.predictor_kind config) in
  let icache = Icache.create cpu.Cpu_model.icache in
  let hits = ref 0 and misses = ref 0 in
  let pending = ref (-1) in
  let pending_from_transfer = ref false in
  (* side-entry emulation for static superinstructions crossing basic
     blocks: while [shadow_lo <= pc <= shadow_hi], non-replicated code
     runs (Figure 6) *)
  let shadow_lo = ref 0 and shadow_hi = ref (-1) in
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    (* Exhausting the fuel is a reported stop, not an exception: the
       accumulated metrics of the truncated run stay observable. *)
    if !steps >= fuel then stop := Some (Trapped out_of_fuel)
    else begin
    let i = !pc in
    if !shadow_hi >= 0 && (i < !shadow_lo || i > !shadow_hi) then
      shadow_hi := -1;
    let site = if !shadow_hi >= 0 then shadow.(i) else sites.(i) in
    (* Capture the site before executing: quickening rewrites it. *)
    let entry_addr = site.Code_layout.entry_addr in
    let fetch_addr = site.Code_layout.fetch_addr in
    let fetch_bytes = site.Code_layout.fetch_bytes in
    let work_instrs = site.Code_layout.work_instrs in
    let pre_dispatch = site.Code_layout.pre_dispatch in
    let post_fall = site.Code_layout.post_fall in
    let post_taken = site.Code_layout.post_taken in
    let fall_extra = site.Code_layout.fall_extra_instrs in
    let opcode = program.Program.code.(i).Program.opcode in
    let is_transfer =
      match (Program.instr_at program i).Instr.branch with
      | Instr.Straight -> false
      | Instr.Cond_branch _ | Instr.Uncond_branch _ | Instr.Indirect_branch
      | Instr.Call _ | Instr.Indirect_call | Instr.Return | Instr.Stop ->
          true
    in
    (* Resolve the dispatch that brought control here. *)
    if !pending >= 0 then begin
      m.Metrics.dispatches <- m.Metrics.dispatches + 1;
      m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
      if
        not
          (Predictor.access predictor ~branch:!pending ~target:entry_addr
             ~opcode)
      then begin
        m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
        if !pending_from_transfer then
          m.Metrics.vm_branch_mispredicts <- m.Metrics.vm_branch_mispredicts + 1
      end
    end;
    (* Gap dispatch of a not-yet-quickened instruction inside a dynamic
       superinstruction: jumps from the gap to the original routine. *)
    (match pre_dispatch with
    | Some d ->
        Icache.fetch icache ~addr:entry_addr
          ~bytes:costs.Costs.threaded_dispatch_bytes ~hits ~misses;
        m.Metrics.native_instrs <-
          m.Metrics.native_instrs + d.Code_layout.instrs;
        m.Metrics.dispatches <- m.Metrics.dispatches + 1;
        m.Metrics.indirect_branches <- m.Metrics.indirect_branches + 1;
        if
          not
            (Predictor.access predictor ~branch:d.Code_layout.branch_addr
               ~target:fetch_addr ~opcode)
        then m.Metrics.mispredicts <- m.Metrics.mispredicts + 1
    | None -> ());
    if site.Code_layout.call_fetch_bytes > 0 then
      Icache.fetch icache ~addr:site.Code_layout.call_fetch_addr
        ~bytes:site.Code_layout.call_fetch_bytes ~hits ~misses;
    Icache.fetch icache ~addr:fetch_addr ~bytes:fetch_bytes ~hits ~misses;
    m.Metrics.native_instrs <- m.Metrics.native_instrs + work_instrs;
    m.Metrics.vm_instrs <- m.Metrics.vm_instrs + 1;
    incr steps;
    (match exec_counts with
    | Some counts -> counts.(i) <- counts.(i) + 1
    | None -> ());
    let control =
      match exec program i with
      | Control.Quicken q ->
          Code_layout.quicken layout ~slot:i ~new_opcode:q.Control.new_opcode
            ~new_operands:q.Control.new_operands;
          m.Metrics.quickenings <- m.Metrics.quickenings + 1;
          q.Control.after
      | control -> control
    in
    match control with
    | Control.Next ->
        (match post_fall with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None ->
            m.Metrics.native_instrs <- m.Metrics.native_instrs + fall_extra;
            pending := -1);
        pc := i + 1
    | Control.Jump target ->
        (match post_taken with
        | Some d ->
            m.Metrics.native_instrs <-
              m.Metrics.native_instrs + d.Code_layout.instrs;
            pending := d.Code_layout.branch_addr;
            pending_from_transfer := is_transfer
        | None ->
            (* A layout must provide a dispatch on every taken path. *)
            assert false);
        if shadow_until.(target) >= 0 then begin
          shadow_lo := target;
          shadow_hi := shadow_until.(target)
        end
        else shadow_hi := -1;
        pc := target
    | Control.Halt -> stop := Some Finished
    | Control.Trap msg -> stop := Some (Trapped msg)
    | Control.Quicken _ ->
        (* [exec] resolved the outer quickening above; nested quickening is
           not meaningful. *)
        stop := Some (Trapped "nested quickening")
    end
  done;
  m.Metrics.icache_fetches <- !hits + !misses;
  m.Metrics.icache_misses <- !misses;
  m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
  let cycles = Cpu_model.cycles cpu m in
  {
    metrics = m;
    cycles;
    seconds = Cpu_model.seconds cpu m;
    steps = !steps;
    trapped =
      (match !stop with
      | Some (Trapped msg) -> Some msg
      | Some Finished | None -> None);
  }

let run_functional ?(fuel = max_int) ?exec_counts ~program ~exec () =
  let pc = ref program.Program.entry in
  let steps = ref 0 in
  let stop = ref None in
  while !stop = None do
    if !steps >= fuel then stop := Some (Trapped out_of_fuel)
    else begin
      let i = !pc in
      incr steps;
      (match exec_counts with
      | Some counts -> counts.(i) <- counts.(i) + 1
      | None -> ());
      let control =
        match exec program i with
        | Control.Quicken q ->
            let slot = program.Program.code.(i) in
            slot.Program.opcode <- q.Control.new_opcode;
            slot.Program.operands <- q.Control.new_operands;
            q.Control.after
        | control -> control
      in
      match control with
      | Control.Next -> pc := i + 1
      | Control.Jump target -> pc := target
      | Control.Halt -> stop := Some Finished
      | Control.Trap msg -> stop := Some (Trapped msg)
      | Control.Quicken _ -> stop := Some (Trapped "nested quickening")
    end
  done;
  ( !steps,
    match !stop with
    | Some (Trapped msg) -> Some msg
    | Some Finished | None -> None )

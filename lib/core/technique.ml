type parse_algo = Greedy | Optimal
type replica_strategy = Round_robin | Random of int

type static_params = {
  replicas : int;
  superinstrs : int;
  parse : parse_algo;
  strategy : replica_strategy;
  prefer_short : bool;
}

let static_params ?(replicas = 0) ?(superinstrs = 0) ?(parse = Greedy)
    ?(strategy = Round_robin) ?(prefer_short = false) () =
  if replicas < 0 || superinstrs < 0 then
    invalid_arg "Technique.static_params: negative counts";
  { replicas; superinstrs; parse; strategy; prefer_short }

type t =
  | Switch
  | Plain
  | Static of static_params
  | Dynamic_repl
  | Dynamic_super
  | Dynamic_both
  | Across_bb
  | With_static_super of static_params
  | With_static_across_bb of static_params
  | Subroutine

let switch = Switch
let plain = Plain
let static_repl ?(n = 400) () = Static (static_params ~replicas:n ())
let static_super ?(n = 400) () = Static (static_params ~superinstrs:n ())

let static_both ?(supers = 35) ?(replicas = 365) () =
  Static (static_params ~replicas ~superinstrs:supers ())

let dynamic_repl = Dynamic_repl
let dynamic_super = Dynamic_super
let dynamic_both = Dynamic_both
let across_bb = Across_bb

let with_static_super ?(n = 400) () =
  With_static_super (static_params ~superinstrs:n ())

let with_static_across_bb ?(n = 400) () =
  With_static_across_bb (static_params ~superinstrs:n ~prefer_short:true ())

let subroutine = Subroutine

let paper_gforth_variants =
  [
    plain;
    static_repl ();
    static_super ();
    static_both ();
    dynamic_repl;
    dynamic_super;
    dynamic_both;
    across_bb;
    with_static_super ();
  ]

let paper_jvm_variants =
  [
    plain;
    static_repl ();
    static_super ();
    dynamic_repl;
    dynamic_super;
    dynamic_both;
    across_bb;
    with_static_super ();
    with_static_across_bb ();
  ]

let name = function
  | Switch -> "switch"
  | Plain -> "plain"
  | Static { replicas; superinstrs; _ } ->
      if superinstrs = 0 then "static repl"
      else if replicas = 0 then "static super"
      else "static both"
  | Dynamic_repl -> "dynamic repl"
  | Dynamic_super -> "dynamic super"
  | Dynamic_both -> "dynamic both"
  | Across_bb -> "across bb"
  | With_static_super _ -> "with static super"
  | With_static_across_bb _ -> "w/static super across"
  | Subroutine -> "subroutine threading"

(* Unlike [name], which deliberately collapses to the paper's labels
   ("static repl" regardless of the count), the descriptor spells out every
   parameter, so two techniques compare equal exactly when their
   descriptors do.  The resume journal keys cells by it: a report rerun
   with different replica counts must never be served stale journal
   entries under a collapsed label. *)
let descriptor t =
  let sp { replicas; superinstrs; parse; strategy; prefer_short } =
    Printf.sprintf "r%d.s%d.%s.%s%s" replicas superinstrs
      (match parse with Greedy -> "greedy" | Optimal -> "optimal")
      (match strategy with
      | Round_robin -> "rr"
      | Random seed -> Printf.sprintf "rand%d" seed)
      (if prefer_short then ".short" else "")
  in
  match t with
  | Switch -> "switch"
  | Plain -> "plain"
  | Static p -> "static[" ^ sp p ^ "]"
  | Dynamic_repl -> "dynamic-repl"
  | Dynamic_super -> "dynamic-super"
  | Dynamic_both -> "dynamic-both"
  | Across_bb -> "across-bb"
  | With_static_super p -> "with-static-super[" ^ sp p ^ "]"
  | With_static_across_bb p -> "with-static-across-bb[" ^ sp p ^ "]"
  | Subroutine -> "subroutine"

let of_name s =
  let normalized = String.map (function '-' | '_' -> ' ' | c -> c) s in
  match normalized with
  | "switch" -> Some Switch
  | "plain" -> Some Plain
  | "static repl" -> Some (static_repl ())
  | "static super" -> Some (static_super ())
  | "static both" -> Some (static_both ())
  | "dynamic repl" -> Some Dynamic_repl
  | "dynamic super" -> Some Dynamic_super
  | "dynamic both" -> Some Dynamic_both
  | "across bb" -> Some Across_bb
  | "with static super" -> Some (with_static_super ())
  | "w/static super across" | "with static super across" ->
      Some (with_static_across_bb ())
  | "subroutine threading" | "subroutine" -> Some Subroutine
  | _ -> None

let uses_static_selection = function
  | Static { replicas; superinstrs; _ } -> replicas > 0 || superinstrs > 0
  | With_static_super _ | With_static_across_bb _ -> true
  | Switch | Plain | Dynamic_repl | Dynamic_super | Dynamic_both | Across_bb
  | Subroutine ->
      false

let is_dynamic = function
  | Dynamic_repl | Dynamic_super | Dynamic_both | Across_bb
  | With_static_super _ | With_static_across_bb _ | Subroutine ->
      true
  | Switch | Plain | Static _ -> false

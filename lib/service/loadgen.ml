module P = Protocol

type config = {
  socket : string;
  clients : int;
  requests : int;
  seed : int;
  zipf : float;
  scale : int;
  json_out : string option;
}

let default_config ~socket =
  {
    socket;
    clients = 4;
    requests = 1000;
    seed = 1;
    zipf = 1.1;
    scale = 1;
    json_out = None;
  }

(* Deterministic request ids, one per planned request: they tie the
   server's spans to this run ([--trace-out] on the server side shows
   one tree per rid) and let the client verify every reply echoes the
   id of the request it answers. *)
let rid_for cfg ~index ~n = Printf.sprintf "l%d-c%d-r%d" cfg.seed index n

(* ------------------------------------------------------------------ *)
(* Per-client determinism: splitmix64, the same generator the chaos
   harness uses, seeded per client so runs are reproducible at any
   [clients] count. *)

let splitmix s =
  let open Int64 in
  s := add !s 0x9E3779B97F4A7C15L;
  let z = !s in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

(* Uniform in [0,1): top 53 bits of the stream. *)
let uniform s =
  Int64.to_float (Int64.shift_right_logical (splitmix s) 11)
  /. 9007199254740992.

(* ------------------------------------------------------------------ *)
(* The query universe and its zipf CDF *)

let techniques () =
  let all =
    (Vmbp_core.Technique.switch :: Vmbp_core.Technique.paper_gforth_variants)
    @ [
        Vmbp_core.Technique.with_static_across_bb ();
        Vmbp_core.Technique.subroutine;
      ]
  in
  (* Dedupe by name: the paper variant list may already carry some. *)
  let seen = Hashtbl.create 16 in
  List.filter
    (fun t ->
      let n = Vmbp_core.Technique.name t in
      if Hashtbl.mem seen n then false
      else begin
        Hashtbl.add seen n ();
        true
      end)
    all

let universe () =
  List.concat_map
    (fun (w : Vmbp_workloads.t) ->
      List.concat_map
        (fun t ->
          List.map
            (fun (cpu : Vmbp_machine.Cpu_model.t) ->
              ( Vmbp_workloads.vm_name w.Vmbp_workloads.vm,
                w.Vmbp_workloads.name,
                Vmbp_core.Technique.name t,
                cpu.Vmbp_machine.Cpu_model.name ))
            Vmbp_machine.Cpu_model.all)
        (techniques ()))
    Vmbp_workloads.all

(* Cumulative zipf weights, P(i) proportional to 1/(i+1)^s. *)
let zipf_cdf s n =
  let c = Array.make n 0. in
  let acc = ref 0. in
  for i = 0 to n - 1 do
    acc := !acc +. (1. /. Float.pow (float_of_int (i + 1)) s);
    c.(i) <- !acc
  done;
  let total = !acc in
  Array.map (fun x -> x /. total) c

let pick cdf u =
  let n = Array.length cdf in
  let rec go lo hi =
    if lo >= hi then lo
    else
      let mid = (lo + hi) / 2 in
      if cdf.(mid) < u then go (mid + 1) hi else go lo mid
  in
  go 0 (n - 1)

(* The pure, seeded pick sequence: exactly the (vm, workload, technique,
   cpu) tuples client [index] will request, in order.  [client_loop]
   consumes this list, so a test asserting two calls with the same seed
   are equal is asserting the wire behavior, not a parallel
   reimplementation. *)
let plan_picks cdf universe ~seed ~index ~count =
  let s = ref (Int64.of_int (seed + index)) in
  let acc = ref [] in
  for _ = 1 to count do
    acc := universe.(pick cdf (uniform s)) :: !acc
  done;
  List.rev !acc

let query_plan cfg ~index ~count =
  let universe = Array.of_list (universe ()) in
  let cdf = zipf_cdf (Float.max 0. cfg.zipf) (Array.length universe) in
  plan_picks cdf universe ~seed:cfg.seed ~index ~count

(* ------------------------------------------------------------------ *)
(* Clients *)

let bounds = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10. |]
let h_all = Vmbp_obs.Registry.histogram ~bounds "loadgen.latency_seconds"
let h_hit = Vmbp_obs.Registry.histogram ~bounds "loadgen.hit_latency_seconds"
let status_counter st = Vmbp_obs.Registry.counter ("loadgen.status." ^ st)

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_UNIX socket);
  fd

let client_loop cfg cdf universe index count =
  let picks = plan_picks cdf universe ~seed:cfg.seed ~index ~count in
  let fd = ref (connect cfg.socket) in
  let reconnect () =
    (try Unix.close !fd with Unix.Unix_error _ -> ());
    let rec go tries =
      match connect cfg.socket with
      | fd' -> fd := fd'
      | exception Unix.Unix_error _ when tries > 0 ->
          Unix.sleepf 0.05;
          go (tries - 1)
    in
    go 100
  in
  List.iteri (fun n (vm, workload, technique, cpu) ->
    let rid = rid_for cfg ~index ~n in
    let payload =
      P.query_payload ~vm ~workload ~technique ~cpu ~scale:cfg.scale ~rid ()
    in
    let t0 = Unix.gettimeofday () in
    match
      P.write_frame !fd payload;
      P.read_frame !fd
    with
    | Some reply ->
        let dt = Unix.gettimeofday () -. t0 in
        Vmbp_obs.Registry.observe h_all dt;
        let fields =
          try Vmbp_store.Sjson.parse_line reply
          with Vmbp_store.Sjson.Bad -> []
        in
        let status =
          Option.value ~default:"unparseable"
            (Vmbp_store.Sjson.str_opt fields "status")
        in
        Vmbp_obs.Registry.add (status_counter status) 1;
        (* A reply that echoes the wrong rid answered some other request
           (a framing or attribution bug worth counting loudly). *)
        (match Vmbp_store.Sjson.str_opt fields "rid" with
        | Some r when r <> rid ->
            Vmbp_obs.Registry.add (status_counter "rid-mismatch") 1
        | _ -> ());
        Vmbp_obs.Span.interval ~trace:rid
          ~args:[ ("status", status); ("verb", "query") ]
          ~name:"request" t0
          (Unix.gettimeofday ());
        if Vmbp_store.Sjson.str_opt fields "source" = Some "store" then
          Vmbp_obs.Registry.observe h_hit dt
    | None ->
        (* Clean EOF: the server hung up (conn-drop chaos or restart). *)
        Vmbp_obs.Registry.add (status_counter "conn-drop") 1;
        reconnect ()
    | exception
        ( End_of_file
        | Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.ECONNREFUSED | Unix.ENOENT), _, _)
          ) ->
        Vmbp_obs.Registry.add (status_counter "conn-drop") 1;
        reconnect ())
    picks;
  try Unix.close !fd with Unix.Unix_error _ -> ()

(* ------------------------------------------------------------------ *)
(* Report *)

let quantile_line h =
  let _, _, sum, n = Vmbp_obs.Registry.histogram_snapshot h in
  if n = 0 then "  (no samples)"
  else
    Printf.sprintf
      "  n %d  mean %.4fs  p50 %.4fs  p90 %.4fs  p99 %.4fs"
      n
      (sum /. float_of_int n)
      (Vmbp_obs.Registry.histogram_quantile h 0.5)
      (Vmbp_obs.Registry.histogram_quantile h 0.9)
      (Vmbp_obs.Registry.histogram_quantile h 0.99)

let statuses () =
  List.filter_map
    (fun name ->
      match String.length name > 15 && String.sub name 0 15 = "loadgen.status." with
      | true ->
          Option.map
            (fun v -> (String.sub name 15 (String.length name - 15), v))
            (Vmbp_obs.Registry.find_counter name)
      | false -> None)
    (Vmbp_obs.Registry.names ())
  |> List.sort compare

(* The machine-readable run summary (schema vmbp-loadgen/1): everything
   the human report prints, as one JSON document for CI gates. *)
let json_summary cfg ~elapsed ~universe_size =
  let b = Buffer.create 512 in
  let jf f =
    if Float.is_nan f then "null"
    else if Float.is_integer f && Float.abs f < 1e15 then
      Printf.sprintf "%.0f" f
    else Printf.sprintf "%.17g" f
  in
  let hist name h =
    let _, _, sum, n = Vmbp_obs.Registry.histogram_snapshot h in
    let q p = Vmbp_obs.Registry.histogram_quantile h p in
    Buffer.add_string b
      (Printf.sprintf
         "\"%s\":{\"n\":%d,\"mean\":%s,\"p50\":%s,\"p90\":%s,\"p99\":%s}"
         name n
         (jf (if n = 0 then Float.nan else sum /. float_of_int n))
         (jf (q 0.5)) (jf (q 0.9)) (jf (q 0.99)))
  in
  Buffer.add_string b
    (Printf.sprintf
       "{\"schema\":\"vmbp-loadgen/1\",\"requests\":%d,\"clients\":%d,\
        \"seed\":%d,\"zipf\":%s,\"scale\":%d,\"universe\":%d,\
        \"elapsed_seconds\":%s,\"rps\":%s,\"statuses\":{"
       cfg.requests (max 1 cfg.clients) cfg.seed (jf cfg.zipf) cfg.scale
       universe_size (jf elapsed)
       (jf (float_of_int cfg.requests /. Float.max 1e-9 elapsed)));
  List.iteri
    (fun i (st, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "\"%s\":%Ld" (Vmbp_store.Sjson.escape st) v))
    (statuses ());
  Buffer.add_string b "},\"latency\":{";
  hist "all" h_all;
  Buffer.add_char b ',';
  hist "hits" h_hit;
  Buffer.add_string b "}}";
  Buffer.contents b

let run cfg =
  let universe = Array.of_list (universe ()) in
  let cdf = zipf_cdf (Float.max 0. cfg.zipf) (Array.length universe) in
  let clients = max 1 cfg.clients in
  let per = cfg.requests / clients in
  let extra = cfg.requests mod clients in
  let t0 = Unix.gettimeofday () in
  let domains =
    List.init clients (fun i ->
        let count = per + if i < extra then 1 else 0 in
        Domain.spawn (fun () -> client_loop cfg cdf universe i count))
  in
  List.iter Domain.join domains;
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf "loadgen: %d requests, %d clients, %.2fs (%.1f req/s)\n"
    cfg.requests clients elapsed
    (float_of_int cfg.requests /. Float.max 1e-9 elapsed);
  Printf.printf "zipf s=%g over %d configurations, scale %d\n" cfg.zipf
    (Array.length universe) cfg.scale;
  Printf.printf "statuses:";
  List.iter (fun (st, v) -> Printf.printf " %s=%Ld" st v) (statuses ());
  print_newline ();
  Printf.printf "latency (all):\n%s\n" (quantile_line h_all);
  Printf.printf "latency (store hits):\n%s\n" (quantile_line h_hit);
  match cfg.json_out with
  | None -> ()
  | Some file ->
      let doc =
        json_summary cfg ~elapsed ~universe_size:(Array.length universe)
      in
      let oc = open_out file in
      output_string oc doc;
      output_char oc '\n';
      close_out oc;
      Printf.eprintf "wrote loadgen summary to %s\n" file

open Vmbp_report
module P = Protocol
module Env = Vmbp_sim.Env

type config = {
  socket : string;
  store_dir : string;
  shards : int option;
  jobs : int;
  admission : int;
  request_timeout : float;
  slow_reader_timeout : float;
  degraded_after : float;
  max_request_frame : int;
  verbose : bool;
  quiet : bool;
  trace_out : string option;
  metrics_out : string option;
  flight_dir : string;
}

let default_config ~socket ~store_dir =
  {
    socket;
    store_dir;
    shards = None;
    jobs = 1;
    admission = 64;
    request_timeout = 30.;
    slow_reader_timeout = 5.;
    degraded_after = 2.;
    max_request_frame = 64 * 1024;
    verbose = false;
    quiet = false;
    trace_out = None;
    metrics_out = None;
    flight_dir = ".";
  }

(* Registry instruments; the vmbp-cells/7 summary reads [coalesced],
   [shed] and [degraded_seconds] from here. *)
let m_requests = Vmbp_obs.Registry.counter "service.requests"
let m_coalesced = Vmbp_obs.Registry.counter "service.coalesced"
let m_shed = Vmbp_obs.Registry.counter "service.shed"
let m_degraded_refused = Vmbp_obs.Registry.counter "service.degraded_refused"
let m_request_timeouts = Vmbp_obs.Registry.counter "service.request_timeouts"
let m_conn_drops = Vmbp_obs.Registry.counter "service.conn_drops"
let m_slow_drops = Vmbp_obs.Registry.counter "service.slow_reader_drops"
let m_flight_dumps = Vmbp_obs.Registry.counter "service.flight_dumps"
let m_store_hits = Vmbp_obs.Registry.counter "service.store_hits"
let g_degraded = Vmbp_obs.Registry.gauge "service.degraded_seconds"
let g_connections = Vmbp_obs.Registry.gauge "service.connections"
let g_queue = Vmbp_obs.Registry.gauge "service.queue_depth"
let g_inflight = Vmbp_obs.Registry.gauge "service.inflight"

(* Per-verb and per-phase latency histograms, one labelled series per
   verb/phase ({!Vmbp_obs.Registry.to_prometheus} splits the label back
   out).  [histogram] re-fetches an existing instrument by name, so
   calling these per request is a hash lookup, not a re-registration. *)
let lat_bounds = [| 1e-5; 1e-4; 1e-3; 1e-2; 0.1; 1.; 10.; 60. |]

let verb_hist verb =
  Vmbp_obs.Registry.histogram ~bounds:lat_bounds
    (Printf.sprintf "service.verb_seconds{verb=%s}" verb)

let phase_hist phase =
  Vmbp_obs.Registry.histogram ~bounds:lat_bounds
    (Printf.sprintf "service.phase_seconds{phase=%s}" phase)

(* The per-request context threaded from frame receive to reply flush:
   the client's request id (["" ] when it sent none), the resolved verb,
   and the receive timestamp.  This is what links the parse, admit and
   flush spans of one RPC and feeds the per-verb latency histogram. *)
type rctx = { r_rid : string; r_verb : string; r_recv : float }

(* ------------------------------------------------------------------ *)
(* Replies *)

let reply_status ?error status =
  P.obj
    (( "status", P.S status )
    :: (match error with Some e -> [ ("error", P.S e) ] | None -> []))

let payload_of_timed ~source (t : Par_runner.timed) =
  match t.outcome with
  | Ok r ->
      let m = r.Runner.result.Vmbp_core.Engine.metrics in
      P.obj
        [
          ("status", P.S "ok");
          ("source", P.S source);
          ("cycles", P.F r.Runner.result.Vmbp_core.Engine.cycles);
          ("seconds", P.F r.Runner.result.Vmbp_core.Engine.seconds);
          ("steps", P.I r.Runner.result.Vmbp_core.Engine.steps);
          ("vm_instrs", P.I m.Vmbp_machine.Metrics.vm_instrs);
          ("dispatches", P.I m.Vmbp_machine.Metrics.dispatches);
          ("mispredicts", P.I m.Vmbp_machine.Metrics.mispredicts);
          ( "mispredict_rate",
            P.F (Vmbp_machine.Metrics.misprediction_rate m) );
          ("icache_misses", P.I m.Vmbp_machine.Metrics.icache_misses);
          ("code_bytes", P.I m.Vmbp_machine.Metrics.code_bytes);
          ("output", P.S r.Runner.output);
        ]
  | Error msg -> reply_status ~error:msg "error"

let status_of_timed (t : Par_runner.timed) =
  match t.outcome with Ok _ -> "ok" | Error _ -> "error"

(* ------------------------------------------------------------------ *)
(* Event-loop <-> compute-pool plumbing *)

type job =
  (* in-flight key, request id of the enqueuing waiter, cell *)
  | J_cells of (string * string * Par_runner.cell) list
  | J_grid of { g_id : int; g_rid : string; g_scale : int option }
  | J_stop

type done_msg =
  (* in-flight key, reply payload, reply status *)
  | D_cells of (string * string * string) list
  | D_grid of { d_id : int; d_payload : string; d_status : string }

type busy_kind = Busy_cells | Busy_grid

type shared = {
  s_env : Env.t;
  lock : Mutex.t;
  cond : Condition.t;
  jobs : job Queue.t;
  mutable results : done_msg list;  (* newest first *)
  mutable busy : (float * busy_kind) option;
  wake_w : Env.fd;
  mutable pool : Env.pool option;
}

let wake sh =
  (* A full pipe just means wake-ups are already pending. *)
  try ignore (sh.s_env.Env.write sh.wake_w "!" 0 1)
  with Unix.Unix_error _ -> ()

let post sh msg =
  Mutex.lock sh.lock;
  sh.results <- msg :: sh.results;
  Mutex.unlock sh.lock;
  wake sh

let enqueue sh job =
  Mutex.lock sh.lock;
  Queue.push job sh.jobs;
  Condition.signal sh.cond;
  Mutex.unlock sh.lock;
  match sh.pool with Some p -> p.Env.kick () | None -> ()

(* The whole reproduction grid as one vmbp-cells/7 document.  The session
   log is drained before and after so the document holds exactly the
   grid's cells, not whatever query batches ran since the last grid. *)
let grid_doc (cfg : config) scale =
  ignore (Par_runner.drain_log ());
  List.iter
    (fun (e : Experiments.t) ->
      let s = Option.value scale ~default:e.Experiments.default_scale in
      ignore (e.Experiments.run ~scale:s))
    Experiments.all;
  Par_runner.json_summary ~jobs:cfg.jobs (Par_runner.drain_log ())

(* One compute-pool step: drain every queued job, merge the cell jobs
   into one batch (one [run_cells] call, so cells sharing a workload
   share one recorded execution), then run grids.  Any exception --
   including an injected worker death with no pool above it -- becomes an
   [error] reply for the batch, never a dead compute pool.  Results are
   published through [defer_done]: the real env runs the closure
   immediately (the pre-seam ordering, byte for byte), the simulated env
   schedules it a virtual latency later.  [block] is how the real domain
   parks on the condition variable; the simulation polls. *)
let compute_step (cfg : config) (env : Env.t) sh ~block =
  Mutex.lock sh.lock;
  if block then
    while Queue.is_empty sh.jobs do
      Condition.wait sh.cond sh.lock
    done;
  if Queue.is_empty sh.jobs then begin
    Mutex.unlock sh.lock;
    `Idle
  end
  else begin
    let batch = ref [] in
    while not (Queue.is_empty sh.jobs) do
      batch := Queue.pop sh.jobs :: !batch
    done;
    let batch = List.rev !batch in
    let cells = List.concat_map (function J_cells l -> l | _ -> []) batch in
    let grids =
      List.filter_map
        (function
          | J_grid { g_id; g_rid; g_scale } -> Some (g_id, g_rid, g_scale)
          | _ -> None)
        batch
    in
    let stop = List.exists (function J_stop -> true | _ -> false) batch in
    sh.busy <-
      Some
        ( env.Env.now (),
          match cells with [] -> Busy_grid | _ -> Busy_cells );
    Mutex.unlock sh.lock;
    (* The pool-wedge chaos point: the compute pool stalls with work in
       hand, which is what the degradation detector keys on. *)
    (match Faults.pool_wedge () with
    | Some d -> env.Env.sleep d
    | None -> ());
    (match cells with
    | [] -> ()
    | _ ->
        let n = List.length cells in
        Vmbp_obs.Flight.note ~kind:"batch-start"
          (Printf.sprintf "cells=%d" n);
        (* The batch span fans in every request id it serves (waiters
           that coalesce onto the in-flight key after this point link
           through the key instead): one span on the compute domain's
           track, with the per-cell spans from the runner nesting
           beneath it. *)
        let results =
          Vmbp_obs.Span.with_ ~name:"compute-batch"
            ~args:
              [
                ("cells", string_of_int n);
                ("keys", String.concat ";" (List.map (fun (k, _, _) -> k) cells));
                ( "rids",
                  String.concat ";"
                    (List.filter_map
                       (fun (_, r, _) -> if r = "" then None else Some r)
                       cells) );
              ]
            (fun () ->
              match
                Par_runner.run_cells ~jobs:cfg.jobs
                  (List.map (fun (_, _, c) -> c) cells)
              with
              | timeds ->
                  List.map2
                    (fun (k, _, _) t ->
                      ( k,
                        payload_of_timed ~source:"computed" t,
                        status_of_timed t ))
                    cells timeds
              | exception exn ->
                  let e =
                    reply_status ~error:(Printexc.to_string exn) "error"
                  in
                  List.map (fun (k, _, _) -> (k, e, "error")) cells)
        in
        Vmbp_obs.Flight.note ~kind:"batch-end" (Printf.sprintf "cells=%d" n);
        env.Env.defer_done (fun () -> post sh (D_cells results)));
    List.iter
      (fun (g_id, g_rid, g_scale) ->
        Vmbp_obs.Flight.note ~kind:"grid-start"
          (Printf.sprintf "grid=%d" g_id);
        let payload, status =
          Vmbp_obs.Span.with_ ~name:"compute-grid" ~trace:g_rid
            ~args:[ ("grid", string_of_int g_id) ]
            (fun () ->
              match grid_doc cfg g_scale with
              | doc -> (P.obj [ ("status", P.S "ok"); ("cells", P.S doc) ], "ok")
              | exception exn ->
                  (reply_status ~error:(Printexc.to_string exn) "error", "error"))
        in
        Vmbp_obs.Flight.note ~kind:"grid-end" (Printf.sprintf "grid=%d" g_id);
        env.Env.defer_done (fun () ->
            post sh (D_grid { d_id = g_id; d_payload = payload; d_status = status })))
      grids;
    env.Env.defer_done (fun () ->
        Mutex.lock sh.lock;
        sh.busy <- None;
        Mutex.unlock sh.lock;
        (* Wake the event loop even with no results: busy-state changes
           feed the degradation detector and the drain condition. *)
        wake sh);
    if stop then `Stop else `Ran
  end

(* ------------------------------------------------------------------ *)
(* Connections *)

(* A reply waiting to clear the socket: once the connection's flushed
   byte count passes [f_target], the reply has fully left the process
   and its flush span + per-verb latency are recorded. *)
type flush_item = {
  f_rctx : rctx;
  f_status : string;
  f_enq : float;  (* when the reply was enqueued *)
  f_target : int;  (* conn.sent_bytes at which the reply is fully out *)
}

type conn = {
  fd : Env.fd;
  c_id : int;
  mutable inbuf : string;
  mutable outbuf : string;  (* unsent bytes only *)
  mutable stalled_until : float;  (* injected slow-client stall *)
  mutable last_progress : float;
  mutable closing : bool;  (* drop once outbuf drains *)
  mutable dropped : bool;
  mutable enq_bytes : int;  (* bytes ever enqueued *)
  mutable sent_bytes : int;  (* bytes ever flushed *)
  mutable flushq : flush_item list;  (* oldest first *)
}

type waiter = { w_conn : conn; w_rctx : rctx; w_deadline : float }

type state = {
  cfg : config;
  env : Env.t;
  sh : shared;
  mutable conns : conn list;
  (* (store key \x00 fingerprint) -> waiters, newest first *)
  inflight : (string, waiter list ref) Hashtbl.t;
  grid_waiters : (int, waiter) Hashtbl.t;
  mutable grid_next : int;
  mutable conn_next : int;
  mutable flight_next : int;
  mutable shutting : bool;
  mutable deg_since : float option;
  started : float;
}

let signal_shutdown = Atomic.make false
let signal_dump = Atomic.make false

let ikey c = Par_runner.store_key c ^ "\x00" ^ Par_runner.config_fingerprint c

let logf st fmt =
  if st.cfg.verbose then Printf.eprintf ("[serve] " ^^ fmt ^^ "\n%!")
  else Printf.ifprintf stderr fmt

let drop_conn st conn =
  if not conn.dropped then begin
    conn.dropped <- true;
    Vmbp_obs.Flight.note ~kind:"conn-drop"
      (Printf.sprintf "conn=%d pending=%d" conn.c_id (List.length conn.flushq));
    conn.flushq <- [];
    (try st.env.Env.close conn.fd with Unix.Unix_error _ -> ());
    st.conns <- List.filter (fun c -> c != conn) st.conns
  end

(* Replies whose last byte has cleared the socket: record the flush span
   (reply enqueue -> fully written) and the end-to-end per-verb latency
   (frame receive -> fully written). *)
let flush_matured st conn =
  let now = st.env.Env.now () in
  let rec go = function
    | fi :: rest when fi.f_target <= conn.sent_bytes ->
        let rx = fi.f_rctx in
        Vmbp_obs.Span.interval ~trace:rx.r_rid
          ~args:[ ("verb", rx.r_verb); ("status", fi.f_status) ]
          ~name:"flush" fi.f_enq now;
        Vmbp_obs.Registry.observe (phase_hist "flush") (now -. fi.f_enq);
        Vmbp_obs.Registry.observe (verb_hist rx.r_verb) (now -. rx.r_recv);
        go rest
    | rest -> conn.flushq <- rest
  in
  go conn.flushq

let send st conn ?rctx ~status payload =
  if not conn.dropped then begin
    if Faults.conn_drop () then begin
      Vmbp_obs.Registry.add m_conn_drops 1;
      logf st "chaos: dropping connection instead of replying";
      drop_conn st conn
    end
    else begin
      (match Faults.slow_client () with
      | Some d ->
          logf st "chaos: stalling client writes for %gs" d;
          conn.stalled_until <- st.env.Env.now () +. d
      | None -> ());
      let now = st.env.Env.now () in
      if conn.outbuf = "" then conn.last_progress <- now;
      let payload =
        match rctx with
        | Some rx when rx.r_rid <> "" -> P.with_rid payload rx.r_rid
        | _ -> payload
      in
      let frame = P.encode_frame payload in
      conn.outbuf <- conn.outbuf ^ frame;
      conn.enq_bytes <- conn.enq_bytes + String.length frame;
      match rctx with
      | Some rx ->
          conn.flushq <-
            conn.flushq
            @ [
                {
                  f_rctx = rx;
                  f_status = status;
                  f_enq = now;
                  f_target = conn.enq_bytes;
                };
              ]
      | None -> ()
    end
  end

(* Degraded = the compute pool has been stuck on a *cell* batch longer
   than the threshold.  A grid run is legitimately long and does not
   count; its queued queries are answered when it finishes (or by the
   per-request deadline). *)
let degraded_now st now =
  Mutex.lock st.sh.lock;
  let busy = st.sh.busy in
  Mutex.unlock st.sh.lock;
  match busy with
  | Some (t0, Busy_cells) -> now -. t0 > st.cfg.degraded_after
  | _ -> false

let service_stats st now =
  let s = Option.get (Par_runner.store_stats ()) in
  let c name =
    match Vmbp_obs.Registry.find_counter name with
    | Some v -> Int64.to_int v
    | None -> 0
  in
  let degraded_seconds =
    Vmbp_obs.Registry.gauge_value g_degraded
    +. (match st.deg_since with Some t0 -> now -. t0 | None -> 0.)
  in
  P.obj
    [
      ("status", P.S "ok");
      ("entries", P.I s.Vmbp_store.Store.entries);
      ("shards", P.I s.Vmbp_store.Store.shards);
      ("loaded", P.I s.Vmbp_store.Store.loaded);
      ("store_hits", P.I s.Vmbp_store.Store.served);
      ("store_misses", P.I s.Vmbp_store.Store.missed);
      ("appended", P.I s.Vmbp_store.Store.appended);
      ("write_errors", P.I s.Vmbp_store.Store.write_errors);
      ("corrupt", P.I s.Vmbp_store.Store.corrupt);
      ("compactions", P.I s.Vmbp_store.Store.compactions);
      ("requests", P.I (c "service.requests"));
      ("coalesced", P.I (c "service.coalesced"));
      ("shed", P.I (c "service.shed"));
      ("degraded_refused", P.I (c "service.degraded_refused"));
      ("request_timeouts", P.I (c "service.request_timeouts"));
      ("conn_drops", P.I (c "service.conn_drops"));
      ("slow_reader_drops", P.I (c "service.slow_reader_drops"));
      ("degraded_seconds", P.F degraded_seconds);
      ("inflight", P.I (Hashtbl.length st.inflight));
      ("connections", P.I (List.length st.conns));
      ("uptime_seconds", P.F (now -. st.started));
    ]

(* Write the flight recorder ring to [flight_dir/vmbp-flight-<reason>-<n>.json]
   through the environment's file ops, so simulated runs dump into the
   simulated filesystem deterministically.  Never raises: a dump is a
   diagnostic of last resort and must not take the server down (or mask
   the exception it is documenting). *)
let dump_flight st reason =
  let env = st.env in
  let n = st.flight_next in
  st.flight_next <- n + 1;
  try
    Env.mkdir_p env st.cfg.flight_dir;
    let path =
      Filename.concat st.cfg.flight_dir
        (Printf.sprintf "vmbp-flight-%s-%d.json" reason n)
    in
    let body = Vmbp_obs.Flight.to_json ~reason () in
    let fd =
      env.Env.openfile path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
    in
    Fun.protect
      ~finally:(fun () -> try env.Env.close fd with _ -> ())
      (fun () ->
        let len = String.length body in
        let rec go off =
          if off < len then go (off + env.Env.write fd body off (len - off))
        in
        go 0);
    Vmbp_obs.Registry.add m_flight_dumps 1;
    logf st "flight recorder dumped to %s (%s)" path reason;
    Some path
  with _ -> None

let refresh_gauges st =
  Mutex.lock st.sh.lock;
  let depth = Queue.length st.sh.jobs in
  Mutex.unlock st.sh.lock;
  Vmbp_obs.Registry.gauge_set g_queue (float_of_int depth);
  Vmbp_obs.Registry.gauge_set g_inflight
    (float_of_int (Hashtbl.length st.inflight));
  Vmbp_obs.Registry.gauge_set g_connections
    (float_of_int (List.length st.conns))

(* One admission decision, recorded as the request's "admit" span. *)
let admit st (rx : rctx) ?(args = []) decision t0 =
  let t1 = st.env.Env.now () in
  Vmbp_obs.Span.interval ~trace:rx.r_rid
    ~args:(("decision", decision) :: args)
    ~name:"admit" t0 t1;
  Vmbp_obs.Registry.observe (phase_hist "admit") (t1 -. t0)

let handle_request st conn rx req =
  let now = st.env.Env.now () in
  match req with
  | P.Health ->
      let state_name =
        if st.shutting then "draining"
        else if degraded_now st now then "degraded"
        else "serving"
      in
      admit st rx "inline" now;
      send st conn ~rctx:rx ~status:"ok"
        (P.obj
           [
             ("status", P.S "ok");
             ("state", P.S state_name);
             ("inflight", P.I (Hashtbl.length st.inflight));
           ])
  | P.Stats ->
      admit st rx "inline" now;
      send st conn ~rctx:rx ~status:"ok" (service_stats st now)
  | P.Metrics { format } ->
      refresh_gauges st;
      let fmt, body =
        match format with
        | `Json -> ("json", Vmbp_obs.Registry.to_json ())
        | `Prometheus -> ("prometheus", Vmbp_obs.Registry.to_prometheus ())
      in
      admit st rx "inline" now;
      send st conn ~rctx:rx ~status:"ok"
        (P.obj [ ("status", P.S "ok"); ("format", P.S fmt); ("body", P.S body) ])
  | P.Dump -> (
      admit st rx "inline" now;
      match dump_flight st "dump" with
      | Some path ->
          send st conn ~rctx:rx ~status:"ok"
            (P.obj
               [
                 ("status", P.S "ok");
                 ("path", P.S path);
                 ("entries", P.I (List.length (Vmbp_obs.Flight.entries ())));
                 ("recorded", P.I (Vmbp_obs.Flight.recorded ()));
               ])
      | None ->
          send st conn ~rctx:rx ~status:"error"
            (reply_status ~error:"flight dump failed" "error"))
  | P.Shutdown ->
      admit st rx "inline" now;
      send st conn ~rctx:rx ~status:"ok" (reply_status "ok");
      st.shutting <- true;
      Vmbp_obs.Flight.note ~kind:"shutdown"
        (Printf.sprintf "inflight=%d" (Hashtbl.length st.inflight));
      logf st "shutdown requested; draining %d in-flight key(s)"
        (Hashtbl.length st.inflight)
  | P.Grid { scale } ->
      if st.shutting || degraded_now st now then begin
        let status = if st.shutting then "overloaded" else "degraded" in
        admit st rx ~args:[ ("status", status) ] "refuse" now;
        send st conn ~rctx:rx ~status (reply_status status)
      end
      else begin
        let id = st.grid_next in
        st.grid_next <- id + 1;
        admit st rx ~args:[ ("grid", string_of_int id) ] "grid" now;
        (* Grid replies are exempt from the per-request deadline: the
           client asked for the whole reproduction and waits for it. *)
        Hashtbl.replace st.grid_waiters id
          { w_conn = conn; w_rctx = rx; w_deadline = infinity };
        enqueue st.sh (J_grid { g_id = id; g_rid = rx.r_rid; g_scale = scale })
      end
  | P.Query c -> (
      match Par_runner.store_lookup c with
      | Some t ->
          Vmbp_obs.Registry.add m_store_hits 1;
          admit st rx "store-hit" now;
          send st conn ~rctx:rx ~status:(status_of_timed t)
            (payload_of_timed ~source:"store" t)
      | None ->
          if st.shutting then begin
            admit st rx ~args:[ ("status", "overloaded") ] "refuse" now;
            send st conn ~rctx:rx ~status:"overloaded"
              (reply_status "overloaded")
          end
          else if degraded_now st now then begin
            Vmbp_obs.Registry.add m_degraded_refused 1;
            admit st rx ~args:[ ("status", "degraded") ] "refuse" now;
            send st conn ~rctx:rx ~status:"degraded" (reply_status "degraded")
          end
          else begin
            let key = ikey c in
            let w =
              {
                w_conn = conn;
                w_rctx = rx;
                w_deadline = now +. st.cfg.request_timeout;
              }
            in
            match Hashtbl.find_opt st.inflight key with
            | Some ws ->
                ws := w :: !ws;
                Vmbp_obs.Registry.add m_coalesced 1;
                Vmbp_obs.Flight.note ~kind:"coalesce"
                  (Printf.sprintf "rid=%s waiters=%d" rx.r_rid
                     (List.length !ws));
                admit st rx ~args:[ ("key", key) ] "coalesce" now
            | None ->
                if Hashtbl.length st.inflight >= st.cfg.admission then begin
                  Vmbp_obs.Registry.add m_shed 1;
                  Vmbp_obs.Flight.note ~kind:"shed"
                    (Printf.sprintf "rid=%s inflight=%d" rx.r_rid
                       (Hashtbl.length st.inflight));
                  admit st rx ~args:[ ("status", "overloaded") ] "shed" now;
                  send st conn ~rctx:rx ~status:"overloaded"
                    (reply_status "overloaded")
                end
                else begin
                  Hashtbl.replace st.inflight key (ref [ w ]);
                  Vmbp_obs.Flight.note ~kind:"enqueue"
                    (Printf.sprintf "rid=%s inflight=%d" rx.r_rid
                       (Hashtbl.length st.inflight));
                  admit st rx ~args:[ ("key", key) ] "enqueue" now;
                  enqueue st.sh (J_cells [ (key, rx.r_rid, c) ])
                end
          end)

let handle_payload st conn payload =
  Vmbp_obs.Registry.add m_requests 1;
  let t0 = st.env.Env.now () in
  let rid = Option.value ~default:"" (P.rid_of_payload payload) in
  match P.request_of_payload payload with
  | Ok req ->
      let verb =
        match req with
        | P.Query _ -> "query"
        | P.Grid _ -> "grid"
        | P.Stats -> "stats"
        | P.Health -> "health"
        | P.Metrics _ -> "metrics"
        | P.Dump -> "dump"
        | P.Shutdown -> "shutdown"
      in
      let t1 = st.env.Env.now () in
      Vmbp_obs.Span.interval ~trace:rid
        ~args:[ ("verb", verb); ("conn", string_of_int conn.c_id) ]
        ~name:"parse" t0 t1;
      Vmbp_obs.Registry.observe (phase_hist "parse") (t1 -. t0);
      handle_request st conn { r_rid = rid; r_verb = verb; r_recv = t0 } req
  | Error msg ->
      let t1 = st.env.Env.now () in
      Vmbp_obs.Span.interval ~trace:rid
        ~args:[ ("error", msg); ("conn", string_of_int conn.c_id) ]
        ~name:"parse" t0 t1;
      Vmbp_obs.Registry.observe (phase_hist "parse") (t1 -. t0);
      send st conn
        ~rctx:{ r_rid = rid; r_verb = "invalid"; r_recv = t0 }
        ~status:"bad-request"
        (reply_status ~error:msg "bad-request")

let rec peel_frames st conn =
  if (not conn.dropped) && not conn.closing then
    match P.peel ~max:st.cfg.max_request_frame conn.inbuf with
    | `Frame (payload, rest) ->
        conn.inbuf <- rest;
        handle_payload st conn payload;
        peel_frames st conn
    | `Await -> ()
    | exception P.Oversized n ->
        (* Reject and hang up: the rest of the stream is unframeable. *)
        conn.inbuf <- "";
        send st conn ~status:"bad-request"
          (reply_status
             ~error:(Printf.sprintf "oversized frame (%d bytes)" n)
             "bad-request");
        conn.closing <- true

let read_conn st conn =
  let buf = Bytes.create 65536 in
  let rec go () =
    (* A closing connection is write-drain only: anything the client
       still sends after an oversize rejection is unframeable noise. *)
    if (not conn.dropped) && not conn.closing then
      match st.env.Env.read conn.fd buf 0 (Bytes.length buf) with
      | 0 -> drop_conn st conn
      | n ->
          conn.inbuf <- conn.inbuf ^ Bytes.sub_string buf 0 n;
          peel_frames st conn;
          go ()
      | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          ()
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go ()
      | exception Unix.Unix_error _ -> drop_conn st conn
  in
  go ()

let write_conn st conn =
  match st.env.Env.write conn.fd conn.outbuf 0 (String.length conn.outbuf) with
  | n ->
      conn.outbuf <-
        String.sub conn.outbuf n (String.length conn.outbuf - n);
      conn.sent_bytes <- conn.sent_bytes + n;
      conn.last_progress <- st.env.Env.now ();
      flush_matured st conn;
      if conn.outbuf = "" && conn.closing then drop_conn st conn
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  | exception Unix.Unix_error _ -> drop_conn st conn

let accept_conns st listen_fd =
  let rec go () =
    match st.env.Env.accept listen_fd with
    | Some fd ->
        let now = st.env.Env.now () in
        let id = st.conn_next in
        st.conn_next <- id + 1;
        Vmbp_obs.Flight.note ~kind:"accept" (Printf.sprintf "conn=%d" id);
        Vmbp_obs.Span.interval
          ~args:[ ("conn", string_of_int id) ]
          ~name:"accept" now now;
        st.conns <-
          {
            fd;
            c_id = id;
            inbuf = "";
            outbuf = "";
            stalled_until = 0.;
            last_progress = now;
            closing = false;
            dropped = false;
            enq_bytes = 0;
            sent_bytes = 0;
            flushq = [];
          }
          :: st.conns;
        go ()
    | None -> ()
  in
  go ()

let distribute st = function
  | D_cells items ->
      List.iter
        (fun (key, payload, status) ->
          match Hashtbl.find_opt st.inflight key with
          | None -> ()
          | Some ws ->
              Hashtbl.remove st.inflight key;
              List.iter
                (fun w -> send st w.w_conn ~rctx:w.w_rctx ~status payload)
                (List.rev !ws))
        items
  | D_grid { d_id; d_payload; d_status } -> (
      match Hashtbl.find_opt st.grid_waiters d_id with
      | None -> ()
      | Some w ->
          Hashtbl.remove st.grid_waiters d_id;
          send st w.w_conn ~rctx:w.w_rctx ~status:d_status d_payload)

let reap st now =
  (* Per-request deadlines: expired waiters get a [timeout] reply; the
     compute keeps going and its result still lands in the store. *)
  Hashtbl.iter
    (fun _ ws ->
      let expired, live =
        List.partition (fun w -> now > w.w_deadline) !ws
      in
      if expired <> [] then begin
        ws := live;
        Vmbp_obs.Registry.add m_request_timeouts (List.length expired);
        Vmbp_obs.Flight.note ~kind:"timeout"
          (Printf.sprintf "waiters=%d" (List.length expired));
        List.iter
          (fun w ->
            send st w.w_conn ~rctx:w.w_rctx ~status:"timeout"
              (reply_status "timeout"))
          expired
      end)
    st.inflight;
  (* Slow readers: outbound bytes pending, no progress for too long. *)
  List.iter
    (fun conn ->
      if
        conn.outbuf <> ""
        && now -. conn.last_progress > st.cfg.slow_reader_timeout
      then begin
        Vmbp_obs.Registry.add m_slow_drops 1;
        logf st "dropping slow reader";
        drop_conn st conn
      end)
    st.conns

let update_degraded st now =
  let d = degraded_now st now in
  match (st.deg_since, d) with
  | None, true ->
      st.deg_since <- Some now;
      Vmbp_obs.Flight.note ~kind:"degraded-enter"
        (Printf.sprintf "inflight=%d" (Hashtbl.length st.inflight));
      (* Degradation entry is one of the flight recorder's dump
         triggers: the ring at this instant holds the transitions that
         led to the wedge. *)
      ignore (dump_flight st "degraded");
      logf st "compute pool wedged; degrading to store-only service"
  | Some t0, false ->
      Vmbp_obs.Registry.gauge_add g_degraded (now -. t0);
      st.deg_since <- None;
      Vmbp_obs.Flight.note ~kind:"degraded-exit"
        (Printf.sprintf "after=%.3fs" (now -. t0));
      logf st "compute pool recovered after %.2fs; serving misses again"
        (now -. t0)
  | _ -> ()

let drained st =
  st.shutting
  && Hashtbl.length st.inflight = 0
  && Hashtbl.length st.grid_waiters = 0
  && List.for_all (fun c -> c.outbuf = "") st.conns
  &&
  (Mutex.lock st.sh.lock;
   let idle = Queue.is_empty st.sh.jobs && st.sh.busy = None in
   Mutex.unlock st.sh.lock;
   idle)

let serve (cfg : config) =
  let env = !Env.current in
  Par_runner.progress := false;
  Par_runner.default_jobs := max 1 cfg.jobs;
  Par_runner.set_store ?shards:cfg.shards cfg.store_dir;
  (match Par_runner.store_stats () with
  | Some s when s.Vmbp_store.Store.corrupt > 0 ->
      if not cfg.quiet then
        Printf.eprintf
          "[serve] store load skipped %d corrupt record(s); compacting\n%!"
          s.Vmbp_store.Store.corrupt;
      Par_runner.store_compact ()
  | _ -> ());
  (try env.Env.unlink cfg.socket with Unix.Unix_error _ -> ());
  let listen_fd = env.Env.listen cfg.socket ~backlog:64 in
  let wake_r, wake_w = env.Env.pipe () in
  let sh =
    {
      s_env = env;
      lock = Mutex.create ();
      cond = Condition.create ();
      jobs = Queue.create ();
      results = [];
      busy = None;
      wake_w;
      pool = None;
    }
  in
  let st =
    {
      cfg;
      env;
      sh;
      conns = [];
      inflight = Hashtbl.create 64;
      grid_waiters = Hashtbl.create 4;
      grid_next = 0;
      conn_next = 0;
      flight_next = 0;
      shutting = false;
      deg_since = None;
      started = env.Env.now ();
    }
  in
  (* Fresh-process semantics for the flight recorder, with every
     timestamp drawn from this environment's clock: a simulated serve
     records virtual time and dumps deterministically. *)
  Vmbp_obs.Flight.set_clock env.Env.now;
  Vmbp_obs.Flight.reset ();
  Vmbp_obs.Flight.note ~kind:"listen" cfg.socket;
  (* Request tracing: spans must share one clock with the deadlines and
     the flush bookkeeping above, so when this serve owns the trace file
     it re-anchors the span clock to the env.  (Under the simulator the
     harness installs the virtual clock and enables spans itself;
     [trace_out] stays [None] there.) *)
  if cfg.trace_out <> None then begin
    Vmbp_obs.Span.set_clock env.Env.now;
    Vmbp_obs.Span.enable ()
  end;
  Atomic.set signal_shutdown false;
  Atomic.set signal_dump false;
  (* SIGINT and SIGTERM both mean drain-then-exit: finish in-flight
     work, flush replies, close the socket.  SIGTERM is what service
     managers send first, so treating it like a kill would turn every
     orderly stop into a crash recovery. *)
  let install signum =
    try
      Some
        ( signum,
          Sys.signal signum
            (Sys.Signal_handle (fun _ -> Atomic.set signal_shutdown true)) )
    with Invalid_argument _ | Sys_error _ -> None
  in
  let install_dump signum =
    try
      Some
        ( signum,
          Sys.signal signum
            (Sys.Signal_handle (fun _ -> Atomic.set signal_dump true)) )
    with Invalid_argument _ | Sys_error _ -> None
  in
  let prev_signals =
    (* A peer that vanished mid-reply (conn-drop chaos, a killed
       client) or a compute domain waking a just-closed pipe must
       surface as EPIPE for the error paths below, not kill the
       process.  SIGQUIT asks for a flight-recorder dump without
       stopping the service (SIGKILL is uncatchable; the [dump] verb
       covers on-demand dumps from a live client instead). *)
    (try [ (Sys.sigpipe, Sys.signal Sys.sigpipe Sys.Signal_ignore) ]
     with Invalid_argument _ | Sys_error _ -> [])
    @ List.filter_map install [ Sys.sigint; Sys.sigterm ]
    @ List.filter_map install_dump [ Sys.sigquit ]
  in
  let pool = env.Env.spawn_compute (compute_step cfg env sh) in
  sh.pool <- Some pool;
  if not cfg.quiet then
    Printf.eprintf "[serve] listening on %s (store %s, %d job(s))\n%!"
      cfg.socket cfg.store_dir cfg.jobs;
  let wake_buf = Bytes.create 256 in
  let rec loop () =
    if Atomic.get signal_shutdown && not st.shutting then begin
      st.shutting <- true;
      Vmbp_obs.Flight.note ~kind:"signal" "drain";
      logf st "signal; draining"
    end;
    if Atomic.get signal_dump then begin
      Atomic.set signal_dump false;
      Vmbp_obs.Flight.note ~kind:"signal" "dump";
      ignore (dump_flight st "signal")
    end;
    if drained st then ()
    else begin
      let now = env.Env.now () in
      let rfds =
        (if st.shutting then [] else [ listen_fd ])
        @ wake_r
          :: List.filter_map
               (fun c -> if c.closing then None else Some c.fd)
               st.conns
      in
      let wfds =
        List.filter_map
          (fun c ->
            if c.outbuf <> "" && now >= c.stalled_until then Some c.fd
            else None)
          st.conns
      in
      (match env.Env.select rfds wfds 0.05 with
      | readable, writable ->
          if (not st.shutting) && List.memq listen_fd readable then
            accept_conns st listen_fd;
          if List.memq wake_r readable then begin
            (try
               while
                 env.Env.read wake_r wake_buf 0 (Bytes.length wake_buf) > 0
               do
                 ()
               done
             with
            | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) -> ()
            | Unix.Unix_error (Unix.EINTR, _, _) -> ());
            Mutex.lock sh.lock;
            let results = List.rev sh.results in
            sh.results <- [];
            Mutex.unlock sh.lock;
            List.iter (distribute st) results
          end;
          List.iter
            (fun c ->
              if (not c.dropped) && List.memq c.fd readable then
                read_conn st c)
            st.conns;
          List.iter
            (fun c ->
              if (not c.dropped) && List.memq c.fd writable then
                write_conn st c)
            st.conns
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ());
      let now = env.Env.now () in
      reap st now;
      update_degraded st now;
      refresh_gauges st;
      loop ()
    end
  in
  Fun.protect
    ~finally:(fun () ->
      enqueue sh J_stop;
      pool.Env.join ();
      List.iter
        (fun c -> try env.Env.close c.fd with Unix.Unix_error _ -> ())
        st.conns;
      (try env.Env.close listen_fd with Unix.Unix_error _ -> ());
      (try env.Env.unlink cfg.socket with Unix.Unix_error _ -> ());
      (try env.Env.close wake_r with Unix.Unix_error _ -> ());
      (try env.Env.close wake_w with Unix.Unix_error _ -> ());
      (match st.deg_since with
      | Some t0 ->
          Vmbp_obs.Registry.gauge_add g_degraded (env.Env.now () -. t0)
      | None -> ());
      List.iter
        (fun (signum, h) ->
          try Sys.set_signal signum h with _ -> ())
        prev_signals;
      Par_runner.clear_store ();
      (match cfg.trace_out with
      | Some file ->
          Vmbp_obs.Span.disable ();
          (try Vmbp_obs.Span.write ~file with Sys_error _ -> ());
          Vmbp_obs.Span.set_clock Unix.gettimeofday
      | None -> ());
      (match cfg.metrics_out with
      | Some file -> ( try Vmbp_obs.Registry.write ~file with Sys_error _ -> ())
      | None -> ());
      Vmbp_obs.Flight.set_clock Unix.gettimeofday;
      if (cfg.trace_out <> None || cfg.metrics_out <> None) && not cfg.quiet
      then begin
        let c name =
          match Vmbp_obs.Registry.find_counter name with
          | Some v -> Int64.to_int v
          | None -> 0
        in
        Printf.eprintf
          "[obs] requests=%d coalesced=%d shed=%d degraded_refused=%d \
           timeouts=%d conn_drops=%d flight_dumps=%d spans=%d\n\
           %!"
          (c "service.requests") (c "service.coalesced") (c "service.shed")
          (c "service.degraded_refused")
          (c "service.request_timeouts")
          (c "service.conn_drops")
          (c "service.flight_dumps")
          (Vmbp_obs.Span.count ())
      end;
      if not cfg.quiet then
        Printf.eprintf "[serve] drained; socket closed\n%!")
    (fun () ->
      try loop ()
      with exn ->
        (* Unclean exit: whatever the loop was doing is in the ring --
           dump it before the exception propagates.  [dump_flight]
           cannot raise, so the original exception is preserved. *)
        Vmbp_obs.Flight.note ~kind:"crash" (Printexc.to_string exn);
        ignore (dump_flight st "crash");
        raise exn)

module P = Protocol
module Env = Vmbp_sim.Env
module Sim = Vmbp_sim.Sim_env
module PR = Vmbp_report.Par_runner
module Store = Vmbp_store.Store
module Sjson = Vmbp_store.Sjson

(* ------------------------------------------------------------------ *)
(* Mutation teeth *)

type mutation = Ack_before_fsync | Memo_race | No_dir_fsync

let mutation_name = function
  | Ack_before_fsync -> "ack-before-fsync"
  | Memo_race -> "memo-race"
  | No_dir_fsync -> "no-dir-fsync"

let mutation_names =
  List.map mutation_name [ Ack_before_fsync; Memo_race; No_dir_fsync ]

let mutation_of_string s =
  match s with
  | "ack-before-fsync" -> Ok Ack_before_fsync
  | "memo-race" -> Ok Memo_race
  | "no-dir-fsync" -> Ok No_dir_fsync
  | _ ->
      Error
        (Printf.sprintf "unknown mutation %S (one of: %s)" s
           (String.concat ", " mutation_names))

let set_mutation m =
  Store.mutation_skip_fsync := m = Some Ack_before_fsync;
  Store.mutation_skip_dir_fsync := m = Some No_dir_fsync;
  Vmbp_report.Trace.mutation_racy_memo := m = Some Memo_race

(* ------------------------------------------------------------------ *)
(* The query universe: cheap cells only (gray at scale 1 is the same
   fast configuration the service tests use), over two dynamic
   techniques and three CPU models so shard placement and coalescing
   still get variety. *)

let cell_universe =
  lazy
    (let cpus =
       match Vmbp_machine.Cpu_model.all with
       | a :: b :: c :: _ -> [ a; b; c ]
       | l -> l
     in
     List.concat_map
       (fun (cpu : Vmbp_machine.Cpu_model.t) ->
         List.map
           (fun tech ->
             P.query_payload ~vm:"forth" ~workload:"gray"
               ~technique:(Vmbp_core.Technique.name tech)
               ~cpu:cpu.Vmbp_machine.Cpu_model.name ~scale:1 ())
           [ Vmbp_core.Technique.switch; Vmbp_core.Technique.subroutine ])
       cpus)

let grid_payload = P.obj [ ("verb", P.S "grid"); ("scale", P.I 1) ]
let shutdown_payload = P.obj [ ("verb", P.S "shutdown") ]

let key_fp payload =
  match P.request_of_payload payload with
  | Ok (P.Query c) -> (PR.store_key c, PR.config_fingerprint c)
  | Ok _ | Error _ -> invalid_arg "simulate: universe payload did not resolve"

(* Deterministic request ids: seed, client, plan index.  Resends reuse
   the id (they are the same request), so the span path of an acked rid
   is well-defined and byte-stable across replays of a seed. *)
let rid_for ~seed ~client ~idx = Printf.sprintf "s%d-c%d-r%d" seed client idx

(* ------------------------------------------------------------------ *)
(* Reply normalization and grid signatures *)

let find_sub s sub from =
  let n = String.length s and m = String.length sub in
  let rec go i = if i + m > n then -1 else if String.sub s i m = sub then i else go (i + 1) in
  go from

let replace_all ~sub ~by s =
  let b = Buffer.create (String.length s) in
  let m = String.length sub in
  let rec go i =
    match find_sub s sub i with
    | -1 -> Buffer.add_substring b s i (String.length s - i)
    | j ->
        Buffer.add_substring b s i (j - i);
        Buffer.add_string b by;
        go (j + m)
  in
  go 0;
  Buffer.contents b

(* Replies echo the request id of whichever waiter they were flushed to;
   two schedules (and two waiters coalesced onto one compute) differ in
   rids while serving identical results, so normalization strips the
   echo.  The rid is always the last field ({!Protocol.with_rid} splices
   it before the closing brace at send time). *)
let strip_rid payload =
  let marker = ",\"rid\":\"" in
  let n = String.length payload in
  let rec last i best =
    match find_sub payload marker i with
    | -1 -> best
    | j -> last (j + 1) (Some j)
  in
  match last 0 None with
  | None -> payload
  | Some i ->
      let v0 = i + String.length marker in
      if
        n >= v0 + 2
        && payload.[n - 1] = '}'
        && payload.[n - 2] = '"'
        && not (String.contains (String.sub payload v0 (n - 2 - v0)) '"')
      then String.sub payload 0 i ^ "}"
      else payload

(* A served result must be numerically identical whether it was just
   computed or replayed from the store; only the provenance tag (and the
   rid echo) may differ between schedules. *)
let normalize_reply payload =
  replace_all ~sub:"\"source\":\"store\"" ~by:"\"source\":\"computed\""
    (strip_rid payload)

(* The per-cell prefix of a grid document row: tag through code_bytes,
   i.e. every deterministic field.  The fields after ["mode"] (attempt
   counts, wall/serve seconds) and the document header (registry
   counters, store stats) legitimately vary with the schedule, so
   invariant 2 compares the sorted multiset of these prefixes. *)
let grid_signature doc =
  let out = ref [] in
  let pos = ref 0 in
  let continue = ref true in
  while !continue do
    match find_sub doc "{\"tag\":" !pos with
    | -1 -> continue := false
    | s -> (
        match find_sub doc ",\"mode\":" s with
        | -1 -> continue := false
        | e ->
            out := String.sub doc s (e - s) :: !out;
            pos := e)
  done;
  List.sort compare !out

(* ------------------------------------------------------------------ *)
(* Cross-schedule reference tables (invariant 2 / 4).  Scoped to one
   [run]: the first schedule to serve a cell or load an entry records
   the reference, every later schedule must agree. *)

let ref_replies : (string, string) Hashtbl.t = Hashtbl.create 64
let ref_grid : string list option ref = ref None

let ref_entries : (string * string, Vmbp_store.Cellrec.entry) Hashtbl.t =
  Hashtbl.create 256

let reset_references () =
  Hashtbl.reset ref_replies;
  ref_grid := None;
  Hashtbl.reset ref_entries

(* ------------------------------------------------------------------ *)
(* The memo-consistency hammer: the PR 6 race, re-armed every few
   seeds.  Real domains replaying one toy trace concurrently; the memo
   tables must stay duplicate-free (add-if-absent under the lock). *)

let memo_hammer fail =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let config = Vmbp_core.Config.make Vmbp_core.Technique.plain in
  let layout = Vmbp_core.Config.build_layout config ~program in
  let state = Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 200) () in
  let tr =
    match
      Vmbp_report.Trace.record ~layout
        ~exec:(Vmbp_toyvm.Toy_vm.exec state)
        ~output:(fun () -> "")
        ()
    with
    | Some tr -> tr
    | None -> invalid_arg "simulate: toy trace exceeded its cap"
  in
  let kinds =
    [
      Vmbp_machine.Predictor.Perfect;
      Vmbp_machine.Predictor.Never;
      Vmbp_machine.Predictor.Btb Vmbp_machine.Btb.ideal;
      Vmbp_machine.Predictor.Two_level Vmbp_machine.Two_level.default;
    ]
  in
  let cpus =
    match Vmbp_machine.Cpu_model.all with a :: b :: _ -> [ a; b ] | l -> l
  in
  let started = Atomic.make 0 in
  let worker () =
    Atomic.incr started;
    while Atomic.get started < 4 do
      Domain.cpu_relax ()
    done;
    for _ = 1 to 3 do
      List.iter
        (fun (cpu : Vmbp_machine.Cpu_model.t) ->
          List.iter
            (fun predictor ->
              ignore
                (Vmbp_report.Trace.replay tr ~cpu ~predictor
                  : Vmbp_core.Engine.result))
            kinds)
        cpus
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let distinct l = List.length (List.sort_uniq compare l) in
  let dp = distinct (List.map Vmbp_machine.Predictor.descriptor kinds) in
  let di =
    distinct
      (List.map
         (fun (c : Vmbp_machine.Cpu_model.t) ->
           Vmbp_machine.Icache.descriptor c.Vmbp_machine.Cpu_model.icache)
         cpus)
  in
  let preds, icaches = Vmbp_report.Trace.memo_sizes tr in
  if preds <> dp || icaches <> di then
    fail
      (Printf.sprintf
         "memo tables accumulated duplicate bindings under concurrent replay \
          (%d/%d predictor, %d/%d icache): check-then-insert race"
         preds dp icaches di);
  Vmbp_report.Trace.release tr

(* ------------------------------------------------------------------ *)
(* One seeded schedule *)

type outcome = {
  o_seed : int;
  o_failures : string list;
  o_crashes : int;
  o_acks : int;
  o_grids : int;
  o_vtime : float;
  o_selects : int;
  o_trace : string;
  o_spans : string;
}

type client = {
  c_id : int;
  c_plan : string array;
  mutable c_idx : int;
  mutable c_conn : Sim.conn option;
  mutable c_buf : string;
  mutable c_tries : int;  (* retries of the current request *)
  mutable c_conn_tries : int;
  mutable c_epoch : int;
      (* bumped on every state transition; scheduled resends capture it
         and no-op when stale, so at most one send per request is ever
         in flight (an EOF resend racing a degraded-retry resend would
         otherwise double-send and shift reply attribution by one). *)
  mutable c_done : bool;
}

let sock_path = "/sim/report.sock"
let store_dir = "/sim/store"

let run_seed ?mutation ~check_memo seed =
  set_mutation mutation;
  let w = Sim.create ~seed () in
  let failures = ref [] in
  let fail fmt =
    Printf.ksprintf
      (fun m ->
        Sim.tracef w "FAIL %s" m;
        failures := m :: !failures)
      fmt
  in
  let acks = ref 0 and grids = ref 0 in
  (* store_key -> normalized reply, for every ack of this schedule *)
  let acked : (string, string * string) Hashtbl.t = Hashtbl.create 16 in
  (* rid -> store_key for every acked query; grid rids separately.  Fed
     to the invariant-5 span-path check after the schedule drains. *)
  let acked_rids : (string, string) Hashtbl.t = Hashtbl.create 32 in
  let grid_rids = ref [] in
  let span_json = ref "" in

  (* -------- seeded schedule parameters (drawn before any event) ---- *)
  let chaos =
    let parts = ref [ Printf.sprintf "seed=%d" seed ] in
    if Sim.rand_float w < 0.7 then parts := "conn-drop=0.08" :: !parts;
    if Sim.rand_float w < 0.4 then parts := "slow-client=0.05@6.0" :: !parts;
    if Sim.rand_float w < 0.3 then parts := "pool-wedge=1@3.0" :: !parts;
    String.concat "," !parts
  in
  let n_clients = 1 + Sim.rand_int w 3 in
  let include_grid = mutation = None && seed mod 7 = 3 in
  let universe = Array.of_list (Lazy.force cell_universe) in
  let plan_for i =
    let n = 2 + Sim.rand_int w 5 in
    let reqs = ref [] in
    for _ = 1 to n do
      reqs := universe.(Sim.rand_int w (Array.length universe)) :: !reqs
    done;
    let reqs = List.rev !reqs in
    let reqs = if include_grid && i = 0 then reqs @ [ grid_payload ] else reqs in
    Array.of_list
      (List.mapi
         (fun idx p -> P.with_rid p (rid_for ~seed ~client:i ~idx))
         reqs)
  in
  let clients =
    let a =
      Array.make n_clients
        { c_id = 0; c_plan = [||]; c_idx = 0; c_conn = None; c_buf = "";
          c_tries = 0; c_conn_tries = 0; c_epoch = 0; c_done = false }
    in
    for i = 0 to n_clients - 1 do
      a.(i) <-
        { c_id = i; c_plan = plan_for i; c_idx = 0; c_conn = None; c_buf = "";
          c_tries = 0; c_conn_tries = 0; c_epoch = 0; c_done = false }
    done;
    a
  in
  let crash_plan =
    let draw_crash biased_op =
      if biased_op || Sim.rand_float w < 0.5 then
        `After_writes (1 + Sim.rand_int w 6)
      else `At (0.8 +. (Sim.rand_float w *. 5.0))
    in
    match mutation with
    | Some No_dir_fsync ->
        (* The tooth needs: torn tail -> startup compaction -> fresh
           acks -> second crash rolling the un-fsynced renames back. *)
        ref [ draw_crash true; `At (1.5 +. (Sim.rand_float w *. 3.0)) ]
    | Some Ack_before_fsync ->
        ref [ `At (0.6 +. (Sim.rand_float w *. 3.0)) ]
    | _ ->
        let n = Sim.rand_int w 3 in
        let plan = ref [] in
        for _ = 1 to n do
          plan := draw_crash false :: !plan
        done;
        ref (List.rev !plan)
  in

  (* -------- per-schedule invariant checks ------------------------- *)
  let check_store tag =
    match Store.open_ ~shards:4 store_dir with
    | exception e ->
        fail "%s: store load raised %s (invariant 4)" tag
          (Printexc.to_string e)
    | st ->
        Hashtbl.iter
          (fun key (fp, _) ->
            if not (Store.mem st ~key ~fingerprint:fp) then
              fail "%s: acked result missing from the store (invariant 1): %s"
                tag key)
          acked;
        Store.iter st (fun e ->
            let hex c = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'f') in
            let printable c = Char.code c >= 32 && Char.code c < 127 in
            if
              String.length e.Vmbp_store.Cellrec.fingerprint <> 32
              || not (String.for_all hex e.Vmbp_store.Cellrec.fingerprint)
              || not (String.for_all printable e.Vmbp_store.Cellrec.key)
            then
              fail "%s: mis-framed record surfaced from the store (invariant 4)"
                tag
            else
              let id = (e.Vmbp_store.Cellrec.key, e.Vmbp_store.Cellrec.fingerprint) in
              match Hashtbl.find_opt ref_entries id with
              | Some e0 ->
                  if
                    compare e0.Vmbp_store.Cellrec.outcome
                      e.Vmbp_store.Cellrec.outcome
                    <> 0
                  then
                    fail
                      "%s: store entry for %s diverges across schedules \
                       (invariant 2)"
                      tag e.Vmbp_store.Cellrec.key
              | None -> Hashtbl.replace ref_entries id e);
        Store.close st
  in

  (* Invariant 5: every acked request left a complete, well-ordered span
     path behind -- parse, an admission decision, an [ok] flush, all
     linked by the request id -- and a request that went through the
     compute domain is covered by a [compute-batch] span naming its key
     (the cross-domain fan-in link a trace viewer follows). *)
  let check_spans () =
    let events = Vmbp_obs.Span.events () in
    let arg (e : Vmbp_obs.Span.event) k = List.assoc_opt k e.args in
    let spans rid name =
      List.filter
        (fun (e : Vmbp_obs.Span.event) -> e.name = name && e.trace = rid)
        events
    in
    List.iter
      (fun (e : Vmbp_obs.Span.event) ->
        if e.dur < 0.0 then
          fail "span %s has a negative duration (invariant 5)" e.name)
      events;
    Hashtbl.iter
      (fun rid key ->
        let parses = spans rid "parse" in
        let admits = spans rid "admit" in
        let oks =
          List.filter
            (fun e -> arg e "status" = Some "ok")
            (spans rid "flush")
        in
        if parses = [] || admits = [] || oks = [] then
          fail
            "acked %s lacks a complete parse/admit/flush span path \
             (%d parse, %d admit, %d ok-flush, invariant 5)"
            rid (List.length parses) (List.length admits) (List.length oks)
        else begin
          let first l =
            List.fold_left
              (fun a (e : Vmbp_obs.Span.event) -> Float.min a e.ts)
              infinity l
          in
          let last_end l =
            List.fold_left
              (fun a (e : Vmbp_obs.Span.event) -> Float.max a (e.ts +. e.dur))
              neg_infinity l
          in
          if not (first parses <= first admits && first admits <= last_end oks)
          then fail "span path for %s is out of order (invariant 5)" rid;
          let decided d =
            List.exists (fun e -> arg e "decision" = Some d) admits
          in
          if decided "store-hit" then ()
          else if not (decided "enqueue" || decided "coalesce") then
            fail "acked %s has no serving admission decision (invariant 5)" rid
          else if
            not
              (List.exists
                 (fun (e : Vmbp_obs.Span.event) ->
                   e.name = "compute-batch"
                   &&
                   match arg e "keys" with
                   | Some ks -> find_sub ks key 0 >= 0
                   | None -> false)
                 events)
          then
            fail
              "acked %s was enqueued but no compute-batch span covers its \
               key (invariant 5)"
              rid
        end)
      acked_rids;
    List.iter
      (fun rid ->
        if spans rid "compute-grid" = [] then
          fail "acked grid %s has no compute-grid span (invariant 5)" rid)
      (List.sort_uniq compare !grid_rids)
  in

  (* -------- the client / controller state machine ------------------ *)
  let shut_acked = ref false in
  let all_done () = Array.for_all (fun c -> c.c_done) clients in
  let req_rid cl =
    Option.value ~default:"" (P.rid_of_payload cl.c_plan.(cl.c_idx))
  in
  (* Every reply must echo the rid of the request it answers: a reply
     attributed to the wrong request (a double-send shifting the stream
     by one) now fails loudly instead of corrupting invariant 2. *)
  let check_echo cl fields =
    match Sjson.str_opt fields "rid" with
    | Some r when r <> req_rid cl ->
        fail "client %d: reply rid %S does not match request rid %S \
              (invariant 5)"
          cl.c_id r (req_rid cl)
    | Some _ -> ()
    | None ->
        fail "client %d: reply to %S lost its rid echo (invariant 5)" cl.c_id
          (req_rid cl)
  in
  let rec send_current cl =
    if not cl.c_done then
      match cl.c_conn with
      | Some conn ->
          Sim.tracef w "client %d: send req %d: %s" cl.c_id cl.c_idx
            cl.c_plan.(cl.c_idx);
          Sim.client_send w conn (P.encode_frame cl.c_plan.(cl.c_idx))
      | None -> try_connect cl
  and resched cl delay =
    (* Supersede any pending resend: only the latest scheduled
       send_current for this client may fire. *)
    cl.c_epoch <- cl.c_epoch + 1;
    let e = cl.c_epoch in
    Sim.after w delay (fun () ->
        if cl.c_epoch = e && not cl.c_done then send_current cl)
  and try_connect cl =
    if not cl.c_done then
      match Sim.client_connect w sock_path with
      | Error _ ->
          cl.c_conn_tries <- cl.c_conn_tries + 1;
          if cl.c_conn_tries > 300 then begin
            fail "client %d: gave up reconnecting" cl.c_id;
            finish_client cl
          end
          else
            let e = cl.c_epoch in
            Sim.after w
              (0.05 +. (Sim.rand_float w *. 0.3))
              (fun () -> if cl.c_epoch = e then try_connect cl)
      | Ok conn ->
          cl.c_conn <- Some conn;
          cl.c_conn_tries <- 0;
          cl.c_buf <- "";
          Sim.on_conn_event w conn (conn_event cl conn);
          send_current cl
  and conn_event cl conn = function
    | Some bytes -> (
        match cl.c_conn with
        | Some c when c == conn ->
            cl.c_buf <- cl.c_buf ^ bytes;
            drain cl
        | _ -> ())
    | None -> (
        (* EOF: conn-drop chaos, slow-reader drop, crash, or restart.
           Reconnect and resend the in-flight request. *)
        match cl.c_conn with
        | Some c when c == conn && not cl.c_done ->
            cl.c_conn <- None;
            resched cl (0.05 +. (Sim.rand_float w *. 0.35))
        | _ -> ())
  and drain cl =
    match P.peel ~max:(64 * 1024 * 1024) cl.c_buf with
    | `Frame (payload, rest) ->
        cl.c_buf <- rest;
        if not cl.c_done then handle_reply cl payload;
        drain cl
    | `Await -> ()
  and handle_reply cl payload =
    match Sjson.parse_line payload with
    | exception Sjson.Bad ->
        fail "client %d: unparseable reply" cl.c_id;
        advance cl
    | fields -> (
        check_echo cl fields;
        match Sjson.str_opt fields "status" with
        | Some "ok" when Sjson.str_opt fields "cells" <> None ->
            incr grids;
            grid_rids := req_rid cl :: !grid_rids;
            let signature =
              grid_signature (Option.get (Sjson.str_opt fields "cells"))
            in
            (match !ref_grid with
            | Some s0 ->
                if s0 <> signature then
                  fail "grid document diverges across schedules (invariant 2)"
            | None -> ref_grid := Some signature);
            advance cl
        | Some "ok" -> (
            match Sjson.str_opt fields "source" with
            | None ->
                fail "client %d: ok reply without source" cl.c_id;
                advance cl
            | Some _ ->
                incr acks;
                let key, fp = key_fp cl.c_plan.(cl.c_idx) in
                Hashtbl.replace acked_rids (req_rid cl) key;
                let norm = normalize_reply payload in
                (match Hashtbl.find_opt acked key with
                | Some (_, prev) when prev <> norm ->
                    fail "client %d: replies for one cell differ within a \
                          schedule (invariant 2): %s\n      was %s\n      got %s"
                      cl.c_id key prev norm
                | _ -> Hashtbl.replace acked key (fp, norm));
                (match Hashtbl.find_opt ref_replies key with
                | Some r when r <> norm ->
                    fail "reply diverges across schedules (invariant 2): %s\n\
                         \      was %s\n      got %s"
                      key r norm
                | Some _ -> ()
                | None -> Hashtbl.replace ref_replies key norm);
                advance cl)
        | Some ("degraded" | "overloaded" | "timeout") ->
            cl.c_tries <- cl.c_tries + 1;
            if cl.c_tries > 40 then begin
              fail "client %d: gave up after 40 retries" cl.c_id;
              advance cl
            end
            else resched cl (0.25 +. (Sim.rand_float w *. 0.75))
        | Some other ->
            fail "client %d: unexpected status %s" cl.c_id other;
            advance cl
        | None ->
            fail "client %d: reply without status" cl.c_id;
            advance cl)
  and advance cl =
    cl.c_idx <- cl.c_idx + 1;
    cl.c_tries <- 0;
    if cl.c_idx >= Array.length cl.c_plan then finish_client cl
    else resched cl (0.02 +. (Sim.rand_float w *. 0.38))
  and finish_client cl =
    cl.c_done <- true;
    (match cl.c_conn with Some c -> Sim.client_close w c | None -> ());
    cl.c_conn <- None;
    if all_done () then schedule_shutdown ()
  and schedule_shutdown () =
    Sim.after w (0.05 +. (Sim.rand_float w *. 0.2)) send_shutdown
  and send_shutdown () =
    if not !shut_acked then
      match Sim.client_connect w sock_path with
      | Error _ -> Sim.after w 0.3 send_shutdown
      | Ok conn ->
          let buf = ref "" in
          Sim.on_conn_event w conn (function
            | Some bytes -> (
                buf := !buf ^ bytes;
                match P.peel ~max:(1 lsl 20) !buf with
                | `Frame (payload, rest) ->
                    buf := rest;
                    let st =
                      match Sjson.parse_line payload with
                      | exception Sjson.Bad -> None
                      | fields -> Sjson.str_opt fields "status"
                    in
                    if st = Some "ok" then shut_acked := true
                    else fail "shutdown request was not acked: %s" payload
                | `Await -> ())
            | None -> if not !shut_acked then Sim.after w 0.25 send_shutdown);
          Sim.client_send w conn (P.encode_frame shutdown_payload)
  in

  (* -------- drive ------------------------------------------------- *)
  let prev_env = !Env.current in
  let finally () =
    Env.current := prev_env;
    (* Span collection must stop before the memo hammer spawns real
       domains, or their spans would make the captured trace racy. *)
    Vmbp_obs.Span.disable ();
    Vmbp_obs.Span.set_clock Unix.gettimeofday;
    Vmbp_obs.Flight.set_clock Unix.gettimeofday;
    Vmbp_report.Faults.reset ();
    PR.clear_store ()
  in
  Fun.protect ~finally (fun () ->
      Env.current := Sim.env w;
      Vmbp_obs.Registry.reset ();
      (* Spans run on the virtual clock with ids reset per seed, so the
         trace of a seed is a pure function of the seed (invariant 2 for
         the observability layer itself).  That requires cold runner
         caches: a trace or result memo retained from an earlier seed in
         this process would skip the record/replay spans the first run
         recorded. *)
      PR.clear_trace_cache ();
      PR.clear_result_cache ();
      Vmbp_obs.Span.set_clock (fun () -> Sim.now w);
      Vmbp_obs.Span.enable ();
      (match Vmbp_report.Faults.configure chaos with
      | Ok () -> ()
      | Error e -> fail "bad chaos spec %S: %s" chaos e);
      Array.iter
        (fun cl ->
          Sim.after w (0.01 +. (Sim.rand_float w *. 0.2)) (fun () ->
              send_current cl))
        clients;
      let arm_next () =
        match !crash_plan with
        | [] -> ()
        | c :: rest ->
            crash_plan := rest;
            (match c with
            | `At d -> Sim.crash_at w (Sim.now w +. d)
            | `After_writes n -> Sim.crash_after_writes w n)
      in
      arm_next ();
      let cfg =
        {
          Service.socket = sock_path;
          store_dir;
          shards = Some 4;
          jobs = 1;
          admission = 8;
          request_timeout = 12.0;
          slow_reader_timeout = 2.0;
          degraded_after = 1.5;
          max_request_frame = 64 * 1024;
          verbose = false;
          quiet = true;
          trace_out = None;
          metrics_out = None;
          flight_dir = "/sim/flight";
        }
      in
      let rec serve_loop budget =
        match Service.serve cfg with
        | () -> if Sim.in_crash w then handle_crash budget
        | exception Sim.Crashed -> handle_crash budget
        | exception Sim.Stalled ->
            fail
              "liveness: schedule did not drain within %d selects (deadlock \
               or livelock, invariant 3)"
              (Sim.selects w)
        | exception e ->
            fail "serve raised %s" (Printexc.to_string e)
      and handle_crash budget =
        Sim.restart w;
        check_store (Printf.sprintf "after crash %d" (Sim.crashes w));
        if budget <= 0 then fail "crash budget exceeded"
        else begin
          arm_next ();
          shut_acked := false;
          if all_done () then schedule_shutdown ();
          serve_loop (budget - 1)
        end
      in
      serve_loop 4;
      span_json := Vmbp_obs.Span.to_json ();
      if !failures = [] then begin
        if not (all_done ()) then
          fail "server exited with unfinished clients (invariant 3)";
        if Sim.now w > 300.0 then
          fail "schedule overran the virtual-time bound (%.1fs, invariant 3)"
            (Sim.now w);
        check_store "final";
        check_spans ()
      end);
  (if check_memo && !failures = [] then
     try memo_hammer (fun m -> fail "%s" m)
     with e ->
       fail "memo hammer raised %s (table corrupted by concurrent insert?)"
         (Printexc.to_string e));
  {
    o_seed = seed;
    o_failures = List.rev !failures;
    o_crashes = Sim.crashes w;
    o_acks = !acks;
    o_grids = !grids;
    o_vtime = Sim.now w;
    o_selects = Sim.selects w;
    o_trace = Sim.trace_contents w;
    o_spans = !span_json;
  }

(* ------------------------------------------------------------------ *)
(* The seed-sweep driver behind [simulate] *)

let dump_trace ~trace_file outcome =
  let path =
    match trace_file with
    | Some p -> p
    | None -> Printf.sprintf "sim-trace-seed-%d.txt" outcome.o_seed
  in
  (try
     let oc = open_out path in
     output_string oc outcome.o_trace;
     close_out oc;
     Printf.printf "schedule trace written to %s\n" path
   with Sys_error e -> Printf.printf "could not write trace: %s\n" e);
  path

let print_failure ~trace_file outcome =
  Printf.printf "FAILED seed=%d (%d crashes, %d acks, virtual time %.2fs)\n"
    outcome.o_seed outcome.o_crashes outcome.o_acks outcome.o_vtime;
  List.iter (fun m -> Printf.printf "  - %s\n" m) outcome.o_failures;
  let _ = dump_trace ~trace_file outcome in
  Printf.printf "replay with: vmbp simulate --seed %d\n" outcome.o_seed

let run ?(first_seed = 1) ?mutation ?trace_file ?span_out ?metrics_out ~seeds
    () =
  reset_references ();
  let finally () = set_mutation None in
  (* Observability exports cover the last seed that ran: its span trace
     (byte-identical across replays of the same seed) and the registry
     it left behind. *)
  let write_artifacts (last : outcome option) =
    (match (span_out, last) with
    | Some path, Some o -> (
        try
          let oc = open_out path in
          output_string oc o.o_spans;
          close_out oc;
          Printf.printf "[obs] spans of seed %d written to %s\n" o.o_seed path
        with Sys_error e -> Printf.printf "[obs] could not write spans: %s\n" e)
    | _ -> ());
    (match metrics_out with
    | Some path -> (
        match Vmbp_obs.Registry.write ~file:path with
        | () -> Printf.printf "[obs] metrics written to %s\n" path
        | exception Sys_error e ->
            Printf.printf "[obs] could not write metrics: %s\n" e)
    | None -> ());
    match (last, (span_out, metrics_out)) with
    | Some o, (Some _, _ | _, Some _) ->
        Printf.printf
          "[obs] seed=%d acks=%d grids=%d crashes=%d selects=%d vtime=%.2fs\n"
          o.o_seed o.o_acks o.o_grids o.o_crashes o.o_selects o.o_vtime
    | _ -> ()
  in
  Fun.protect ~finally (fun () ->
      match mutation with
      | None ->
          let failed = ref None in
          let last = ref None in
          let crashes = ref 0 and acks = ref 0 and grids = ref 0 in
          let i = ref 0 in
          while !failed = None && !i < seeds do
            let seed = first_seed + !i in
            let check_memo = seed mod 5 = 0 in
            let o = run_seed ~check_memo seed in
            last := Some o;
            crashes := !crashes + o.o_crashes;
            acks := !acks + o.o_acks;
            grids := !grids + o.o_grids;
            if o.o_failures <> [] then failed := Some o
            else if (!i + 1) mod 100 = 0 then begin
              Printf.printf
                "  %d/%d seeds ok (%d crashes, %d acks, %d grids so far)\n"
                (!i + 1) seeds !crashes !acks !grids;
              flush stdout
            end;
            incr i
          done;
          write_artifacts !last;
          (match !failed with
          | Some o ->
              print_failure ~trace_file o;
              3
          | None ->
              Printf.printf
                "simulate: %d seeds passed (%d crashes survived, %d acks \
                 checked, %d grid documents compared)\n"
                seeds !crashes !acks !grids;
              0)
      | Some m ->
          let caught = ref None in
          let last = ref None in
          let i = ref 0 in
          while !caught = None && !i < seeds do
            let seed = first_seed + !i in
            let o = run_seed ~mutation:m ~check_memo:(m = Memo_race) seed in
            last := Some o;
            if o.o_failures <> [] then caught := Some o;
            incr i
          done;
          write_artifacts !last;
          (match !caught with
          | Some o ->
              Printf.printf
                "mutation %s caught by seed %d (%d of %d seeds):\n"
                (mutation_name m) o.o_seed !i seeds;
              List.iter (fun msg -> Printf.printf "  - %s\n" msg) o.o_failures;
              Printf.printf
                "replay with: vmbp simulate --seed %d --mutate %s\n" o.o_seed
                (mutation_name m);
              0
          | None ->
              Printf.printf
                "mutation %s NOT caught within %d seeds: the harness lost its \
                 teeth\n"
                (mutation_name m) seeds;
              3))

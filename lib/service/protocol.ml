exception Oversized of int

let be32 n =
  let b = Bytes.create 4 in
  Bytes.set b 0 (Char.chr ((n lsr 24) land 0xFF));
  Bytes.set b 1 (Char.chr ((n lsr 16) land 0xFF));
  Bytes.set b 2 (Char.chr ((n lsr 8) land 0xFF));
  Bytes.set b 3 (Char.chr (n land 0xFF));
  Bytes.unsafe_to_string b

let len32 s off =
  (Char.code s.[off] lsl 24)
  lor (Char.code s.[off + 1] lsl 16)
  lor (Char.code s.[off + 2] lsl 8)
  lor Char.code s.[off + 3]

let encode_frame payload = be32 (String.length payload) ^ payload

let peel ~max buf =
  if String.length buf < 4 then `Await
  else begin
    let n = len32 buf 0 in
    if n > max then raise (Oversized n);
    if String.length buf < 4 + n then `Await
    else
      `Frame
        ( String.sub buf 4 n,
          String.sub buf (4 + n) (String.length buf - 4 - n) )
  end

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let write_frame fd payload = write_all fd (encode_frame payload)

let read_exactly fd n ~eof_ok =
  let b = Bytes.create n in
  let rec go off =
    if off >= n then Some (Bytes.unsafe_to_string b)
    else
      match Unix.read fd b off (n - off) with
      | 0 -> if off = 0 && eof_ok then None else raise End_of_file
      | k -> go (off + k)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
  in
  go 0

let read_frame ?(max = 64 * 1024 * 1024) fd =
  match read_exactly fd 4 ~eof_ok:true with
  | None -> None
  | Some hdr ->
      let n = len32 hdr 0 in
      if n > max then raise (Oversized n);
      read_exactly fd n ~eof_ok:false

(* ------------------------------------------------------------------ *)
(* Reply payloads *)

type jv = S of string | I of int | F of float | B of bool

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let obj fields =
  let b = Buffer.create 128 in
  Buffer.add_char b '{';
  List.iteri
    (fun i (k, v) ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b (Printf.sprintf "\"%s\":" (Vmbp_store.Sjson.escape k));
      Buffer.add_string b
        (match v with
        | S s -> Printf.sprintf "\"%s\"" (Vmbp_store.Sjson.escape s)
        | I n -> string_of_int n
        | F f -> json_float f
        | B v -> string_of_bool v))
    fields;
  Buffer.add_char b '}';
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Requests *)

type request =
  | Query of Vmbp_report.Par_runner.cell
  | Grid of { scale : int option }
  | Stats
  | Health
  | Metrics of { format : [ `Json | `Prometheus ] }
  | Dump
  | Shutdown

let resolve_query fields =
  let str = Vmbp_store.Sjson.str fields in
  let vm_name = str "vm" in
  match
    match String.lowercase_ascii vm_name with
    | "forth" -> Some Vmbp_workloads.Forth
    | "jvm" -> Some Vmbp_workloads.Jvm
    | _ -> None
  with
  | None -> Error (Printf.sprintf "unknown vm %S" vm_name)
  | Some vm -> (
      let workload_name = str "workload" in
      match Vmbp_workloads.find ~vm workload_name with
      | None ->
          Error
            (Printf.sprintf "unknown workload %s/%s" vm_name workload_name)
      | Some workload -> (
          let technique_name = str "technique" in
          match Vmbp_core.Technique.of_name technique_name with
          | None -> Error (Printf.sprintf "unknown technique %S" technique_name)
          | Some technique -> (
              let cpu_name = str "cpu" in
              match Vmbp_machine.Cpu_model.find cpu_name with
              | None -> Error (Printf.sprintf "unknown cpu %S" cpu_name)
              | Some cpu -> (
                  let scale =
                    Option.value ~default:1
                      (Vmbp_store.Sjson.int_opt fields "scale")
                  in
                  if scale < 1 then Error "scale must be >= 1"
                  else
                    match Vmbp_store.Sjson.str_opt fields "predictor" with
                    | Some "perfect" ->
                        Ok
                          (Vmbp_report.Par_runner.cell ~tag:"service" ~scale
                             ~predictor:Vmbp_machine.Predictor.Perfect ~cpu
                             ~technique workload)
                    | Some "never" ->
                        Ok
                          (Vmbp_report.Par_runner.cell ~tag:"service" ~scale
                             ~predictor:Vmbp_machine.Predictor.Never ~cpu
                             ~technique workload)
                    | Some p ->
                        Error
                          (Printf.sprintf
                             "unknown predictor override %S (perfect|never)" p)
                    | None ->
                        Ok
                          (Vmbp_report.Par_runner.cell ~tag:"service" ~scale
                             ~cpu ~technique workload)))))

let request_of_payload payload =
  match Vmbp_store.Sjson.parse_line payload with
  | exception Vmbp_store.Sjson.Bad -> Error "malformed request payload"
  | fields -> (
      match Vmbp_store.Sjson.str_opt fields "verb" with
      | None -> Error "missing verb"
      | Some "query" -> (
          match resolve_query fields with
          | Ok c -> Ok (Query c)
          | Error _ as e -> e
          | exception Vmbp_store.Sjson.Bad ->
              Error "query needs vm, workload, technique and cpu fields")
      | Some "grid" ->
          Ok (Grid { scale = Vmbp_store.Sjson.int_opt fields "scale" })
      | Some "stats" -> Ok Stats
      | Some "health" -> Ok Health
      | Some "metrics" -> (
          match Vmbp_store.Sjson.str_opt fields "format" with
          | None | Some "json" -> Ok (Metrics { format = `Json })
          | Some "prometheus" -> Ok (Metrics { format = `Prometheus })
          | Some f ->
              Error
                (Printf.sprintf "unknown metrics format %S (json|prometheus)"
                   f))
      | Some "dump" -> Ok Dump
      | Some "shutdown" -> Ok Shutdown
      | Some v -> Error (Printf.sprintf "unknown verb %S" v))

let rid_of_payload payload =
  match Vmbp_store.Sjson.parse_line payload with
  | exception Vmbp_store.Sjson.Bad -> None
  | fields -> Vmbp_store.Sjson.str_opt fields "rid"

(* Echo a request id into a reply payload without re-rendering it: every
   reply is one flat JSON object, so the rid splices in before the
   closing brace.  Batch results serving several coalesced requests share
   one (possibly multi-megabyte) payload string; the splice is what lets
   each waiter get its own rid without reparsing or copying fields. *)
let with_rid payload rid =
  let n = String.length payload in
  if n < 2 || payload.[n - 1] <> '}' then payload
  else
    String.sub payload 0 (n - 1)
    ^ (if payload.[n - 2] = '{' then "" else ",")
    ^ "\"rid\":\""
    ^ Vmbp_store.Sjson.escape rid
    ^ "\"}"

let query_payload ~vm ~workload ~technique ~cpu ?scale ?predictor ?rid () =
  obj
    (List.concat
       [
         [
           ("verb", S "query");
           ("vm", S vm);
           ("workload", S workload);
           ("technique", S technique);
           ("cpu", S cpu);
         ];
         (match scale with Some n -> [ ("scale", I n) ] | None -> []);
         (match predictor with Some p -> [ ("predictor", S p) ] | None -> []);
         (match rid with Some r -> [ ("rid", S r) ] | None -> []);
       ])

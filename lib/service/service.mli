(** The report service: a crash-tolerant daemon over the
    content-addressed result store.

    One event thread owns a Unix-domain listening socket and every
    connection; one compute domain runs misses through
    {!Vmbp_report.Par_runner} (store pre-pass, grouped record/replay,
    watchdog, retries) with the process-wide store installed, so every
    freshly computed success is fsync'd to the store before its reply
    goes out -- a [kill -9] at any instant loses at most the cells in
    flight, and a restart on the same store serves everything previously
    answered, byte-identically.

    The server defends itself:

    - {b Admission control}: at most [admission] distinct cell
      configurations may be in compute flight; further misses are shed
      with an [overloaded] reply (store hits are always served).
    - {b Coalescing}: a miss identical to one already in flight joins its
      waiter list -- one compute, N replies.
    - {b Batching}: misses queued while the compute domain is busy are
      merged into one {!Vmbp_report.Par_runner.run_cells} call, so cells
      sharing a workload share one recorded execution.
    - {b Per-request deadlines}: a waiter not answered within
      [request_timeout] gets a [timeout] reply (the compute keeps going
      and still lands in the store); each compute attempt is additionally
      bounded by the [--cell-timeout] watchdog inside the runner.
    - {b Slow readers}: a connection whose outbound bytes make no
      progress for [slow_reader_timeout] is dropped.
    - {b Degradation}: when a {e cell} batch has been busy longer than
      [degraded_after] (the wedged-pool signature, injectable with
      [--chaos pool-wedge]), the service goes store-only: hits are
      served, misses get a [degraded] reply, and the time spent degraded
      accumulates in the [service.degraded_seconds] gauge.

    Chaos points ({!Vmbp_report.Faults}): [conn-drop] severs a connection
    instead of replying, [store-io] drops store appends, [slow-client]
    stalls a connection's writes (exercising the slow-reader reaper),
    [pool-wedge] stalls the compute domain (exercising degradation).

    A store whose load skipped corrupt records is repaired by a
    compaction pass at startup. *)

type config = {
  socket : string;  (** Unix-domain socket path *)
  store_dir : string;
  shards : int option;  (** store shard count; [None] = store default *)
  jobs : int;  (** compute pool width for batched misses *)
  admission : int;  (** max distinct cell configurations in compute flight *)
  request_timeout : float;  (** seconds until a waiter gets [timeout] *)
  slow_reader_timeout : float;
      (** seconds of no outbound progress before a connection is dropped *)
  degraded_after : float;
      (** seconds a cell batch may run before the service goes store-only *)
  max_request_frame : int;  (** request frames above this are rejected *)
  verbose : bool;
  quiet : bool;  (** suppress the listening/drained banner lines *)
  trace_out : string option;
      (** write request-tracing spans (Chrome trace-event JSON) here at
          drain; also enables span collection on the env clock *)
  metrics_out : string option;
      (** write the [vmbp-metrics/1] registry dump here at drain *)
  flight_dir : string;
      (** directory for [vmbp-flight-*.json] crash-flight-recorder dumps
          (degradation entry, unclean exit, SIGQUIT, the [dump] verb) *)
}

val default_config : socket:string -> store_dir:string -> config
(** jobs 1, admission 64, request timeout 30s, slow-reader timeout 5s,
    degraded after 2s, 64 KiB request frames, no trace/metrics export,
    flight dumps into ["."]. *)

val serve : config -> unit
(** Run until a [shutdown] request (or SIGINT/SIGTERM) and the drain
    completes: in-flight computes finish, their replies flush, then
    connections close and the socket is unlinked.  All effects -- clock,
    sockets, store I/O, compute-pool hand-off -- go through the
    environment captured from {!Vmbp_sim.Env.current} at this call, so
    {!Simulate} can run the whole server single-threaded on virtual
    time; under the default real environment behavior is unchanged.
    Deadlines (request timeout, slow-reader, degraded-after, stall
    windows) use the monotonic clock and are immune to wall-clock
    steps.  Raises [Unix.Unix_error] if the socket cannot be bound or
    the store cannot be opened. *)

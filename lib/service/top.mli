(** Live terminal monitor for a running report service.

    Polls the service's [metrics] verb in Prometheus text-exposition
    format -- the exact bytes a scraper would see -- and renders a
    rolling view: request rate, store-hit ratio, queue/inflight/
    connection gauges, shed/coalesced/degraded counters, and per-verb
    p50/p95/p99 latency quantiles computed from the interval's own
    histogram-bucket deltas (falling back to the all-time distribution
    over idle intervals).

    The parser and renderer are pure and exposed for tests. *)

type sample = {
  s_name : string;  (** mangled family/sample name, e.g. [vmbp_service_requests_total] *)
  s_labels : (string * string) list;
  s_value : float;
}

val parse : string -> sample list
(** Parse a Prometheus text exposition: one {!sample} per sample line,
    [#] comment and malformed lines skipped, label values unescaped. *)

val value : ?labels:(string * string) list -> sample list -> string -> float
(** First sample matching the name whose labels include all of
    [labels]; [0.] when absent. *)

val buckets :
  sample list ->
  string ->
  label_key:string ->
  label_value:string ->
  (float * float) list
(** The cumulative histogram buckets of family [NAME_bucket] whose
    [label_key] label equals [label_value], as [(upper_bound,
    cumulative_count)] sorted by bound with [le="+Inf"] mapped to
    [infinity] last. *)

val bucket_quantile : (float * float) list -> float -> float
(** The q-quantile upper bound from cumulative [(le, count)] buckets
    (sorted, [+Inf] as [infinity] last), mirroring
    {!Vmbp_obs.Registry.histogram_quantile}: [nan] when empty, the last
    finite bound when the quantile lands in the overflow bucket. *)

val render : ?prev:sample list -> dt:float -> sample list -> string
(** One screenful for the current snapshot.  With [prev], rates and
    quantiles describe the interval between the two snapshots ([dt]
    seconds apart); without it they describe all time. *)

val run : socket:string -> interval:float -> ?iterations:int -> unit -> int
(** Poll and redraw every [interval] seconds until the server goes away
    (returns 1 with a message on stderr) or [iterations] screens have
    been drawn (returns 0).  Omitting [iterations] runs until failure
    or Ctrl-C. *)

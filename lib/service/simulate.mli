(** Deterministic simulation testing for the report service.

    Every seed drives one complete life of the system --- scripted
    clients, the real {!Service.serve} event loop and compute path, the
    real {!Vmbp_store.Store} --- inside a {!Vmbp_sim.Sim_env} world:
    virtual time, simulated sockets with seeded delay and loss,
    a simulated filesystem modeling torn writes and power cuts, and
    seeded whole-process crash/restart mid-schedule.  One OCaml thread
    runs everything, so a failing seed replays bit-for-bit.

    Invariants checked on every schedule:

    + {b Durability}: any result acked to a client before a crash is
      served from the store after restart.
    + {b Determinism}: replies, store entries and the grid document's
      per-cell values are identical across schedules, whatever the
      crash/fault interleaving.
    + {b Liveness}: the event loop never deadlocks (select-count cap,
      virtual-time bound) and shutdown always drains.
    + {b Store integrity}: after any crash point the store loads
      without error and never surfaces a mis-framed record.
    + {b Span completeness}: every acked request (all carry
      deterministic request ids) left a complete, well-ordered
      parse/admit/flush span path linked by its rid; requests that went
      through the compute domain are covered by a [compute-batch] span
      naming their key, and every reply echoes the rid of the request
      it answers.  Spans run on the virtual clock with per-seed id
      reset, so a seed's span trace is byte-identical across replays.

    The harness proves its own teeth by re-introducing three past bugs
    behind mutation flags --- acking before fsync, the unlocked memo
    insert race, compaction without the final directory fsync --- and
    demanding each is caught within a bounded seed budget. *)

type mutation = Ack_before_fsync | Memo_race | No_dir_fsync

val mutation_name : mutation -> string
val mutation_names : string list
val mutation_of_string : string -> (mutation, string) result

type outcome = {
  o_seed : int;
  o_failures : string list;  (** empty = every invariant held *)
  o_crashes : int;  (** power cuts injected and survived *)
  o_acks : int;  (** query replies checked *)
  o_grids : int;  (** grid documents compared *)
  o_vtime : float;  (** virtual seconds the schedule spanned *)
  o_selects : int;  (** event-loop iterations consumed *)
  o_trace : string;  (** the schedule trace, for failure forensics *)
  o_spans : string;
      (** the schedule's span trace (Chrome trace-event JSON); a pure
          function of the seed *)
}

val run_seed : ?mutation:mutation -> check_memo:bool -> int -> outcome
(** Run one seeded schedule (with one past bug re-introduced when
    [mutation] is given) and report what happened.  [check_memo] also
    runs the concurrent memo-replay hammer after the schedule.
    Restores {!Vmbp_sim.Env.current}, the chaos registry and the
    mutation flags on exit. *)

val run :
  ?first_seed:int ->
  ?mutation:mutation ->
  ?trace_file:string ->
  ?span_out:string ->
  ?metrics_out:string ->
  seeds:int ->
  unit ->
  int
(** The [simulate] command: sweep [seeds] consecutive seeds starting at
    [first_seed] (default 1) and return the process exit code.

    Without [mutation]: stop at the first failing seed, print its
    failures, write its schedule trace ([trace_file] or
    [sim-trace-seed-N.txt]) and return 3; return 0 when every seed
    passes.  With [mutation]: seeds run with the bug re-introduced and
    the meaning flips --- return 0 as soon as a seed {e catches} the
    bug (printing the seed so the catch is replayable), 3 if the
    budget runs dry.

    [span_out] writes the last seed's span trace (Chrome trace-event
    JSON; byte-identical across replays of that seed) and
    [metrics_out] the registry it left behind; either also prints an
    [\[obs\]] summary footer. *)

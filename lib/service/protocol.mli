(** Wire protocol of the report service.

    Frames are a 4-byte big-endian payload length followed by the payload
    -- one flat JSON object per frame, parsed with {!Vmbp_store.Sjson}
    (the same strict parser the store uses), so a frame is either
    well-formed or rejected; nothing is inferred from broken input.

    Requests carry a ["verb"] field:

    - [query]: one cell -- ["vm"] ([forth]/[jvm]), ["workload"],
      ["technique"] (a {!Vmbp_core.Technique} name), ["cpu"] (a
      {!Vmbp_machine.Cpu_model} name), optional ["scale"] (default 1) and
      ["predictor"] ([perfect]/[never] override).
    - [grid]: the full reproduction grid (every experiment), returned as
      a complete [vmbp-cells/7] document in the reply's ["cells"] field.
      Optional ["scale"] overrides every experiment's default.
    - [stats], [health], [shutdown]: no further fields.
    - [metrics]: the live telemetry registry; optional ["format"] of
      [json] (default, a [vmbp-metrics/1] document) or [prometheus]
      (text exposition), returned in the reply's ["body"] field.
    - [dump]: write the crash flight recorder to a [vmbp-flight-*.json]
      artifact on the server and return its path.

    Any request may additionally carry an optional ["rid"] -- an opaque
    client-chosen request id.  The server echoes it in the reply and
    threads it through its tracing spans, which is what links one RPC
    end-to-end across client, event thread and compute domain.

    Every reply carries ["status"]: [ok], [overloaded] (admission control
    shed the request), [degraded] (the compute pool is wedged; only store
    hits are served), [timeout] (the per-request deadline passed),
    [error] (the cell computed to a failure), or [bad-request]. *)

exception Oversized of int
(** A frame header announced more bytes than the reader's cap. *)

val encode_frame : string -> string
(** The payload with its 4-byte big-endian length prefixed. *)

val peel : max:int -> string -> [ `Frame of string * string | `Await ]
(** Split one frame off an input buffer: [`Frame (payload, rest)] when a
    whole frame is present, [`Await] when more bytes are needed.  Raises
    {!Oversized} as soon as a header exceeds [max], before the payload
    arrives. *)

val write_frame : Unix.file_descr -> string -> unit
(** Blocking send of one frame. *)

val read_frame : ?max:int -> Unix.file_descr -> string option
(** Blocking read of one frame; [None] on a clean EOF before the first
    header byte.  Raises {!Oversized} past [max] (default 64 MiB) and
    [End_of_file] on EOF mid-frame (a truncated frame). *)

(** Reply payloads: flat JSON objects. *)
type jv = S of string | I of int | F of float | B of bool

val obj : (string * jv) list -> string

type request =
  | Query of Vmbp_report.Par_runner.cell
  | Grid of { scale : int option }
  | Stats
  | Health
  | Metrics of { format : [ `Json | `Prometheus ] }
  | Dump
  | Shutdown

val request_of_payload : string -> (request, string) result
(** Parse and resolve one request payload; [Error] names the offending
    field (unknown verb, unknown workload/technique/cpu, bad scale). *)

val rid_of_payload : string -> string option
(** The optional ["rid"] field of a request payload ([None] when absent
    or the payload is malformed). *)

val with_rid : string -> string -> string
(** [with_rid payload rid] splices [,"rid":"..."] into a flat-JSON-object
    payload before its closing brace (no reparse, no copy of the fields),
    so one shared batch result can be echoed to each coalesced waiter
    under that waiter's own request id.  Payloads that are not a JSON
    object are returned unchanged. *)

val query_payload :
  vm:string ->
  workload:string ->
  technique:string ->
  cpu:string ->
  ?scale:int ->
  ?predictor:string ->
  ?rid:string ->
  unit ->
  string
(** The [query] request a client sends; names are passed through verbatim
    (the server resolves them).  [rid] is the optional client-side
    request id echoed by the server. *)

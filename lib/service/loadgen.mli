(** Multi-domain load generator for the report service.

    Each client domain drives queries drawn zipf-style (popular
    configurations dominate, the tail is long) over the full
    workload x technique x CPU universe, so a warm store answers most
    requests while a steady trickle of misses exercises the compute
    path, coalescing and admission control.  Every client owns a
    splitmix64 stream seeded from [seed + client index]: the same
    config reproduces the same per-client query sequences.

    Latencies land in two {!Vmbp_obs.Registry} histograms --
    [loadgen.latency_seconds] (all replies) and
    [loadgen.hit_latency_seconds] (replies served from the store) --
    and per-status counts in [loadgen.status.*] counters.  {!run}
    prints a throughput / latency-quantile report from them.

    A connection severed mid-request (the server's [conn-drop] chaos
    point, or a [kill -9]) is counted under [conn-drop] and the client
    reconnects and carries on, so the generator survives the chaos it
    is pointed at. *)

type config = {
  socket : string;  (** Unix-domain socket of a running server *)
  clients : int;  (** client domains *)
  requests : int;  (** total queries, split across clients *)
  seed : int;  (** base of the per-client splitmix64 streams *)
  zipf : float;  (** skew exponent; 0 = uniform *)
  scale : int;  (** workload scale of every query *)
  json_out : string option;
      (** write a machine-readable run summary (schema vmbp-loadgen/1:
          statuses, throughput, latency quantiles) here *)
}

val default_config : socket:string -> config
(** 4 clients, 1000 requests, seed 1, zipf 1.1, scale 1, no JSON. *)

val rid_for : config -> index:int -> n:int -> string
(** The deterministic request id client [index] attaches to its [n]th
    query ([l<seed>-c<index>-r<n>]); the server echoes it and threads
    it through its tracing spans, and a reply echoing any other rid is
    counted under the [rid-mismatch] status. *)

val json_summary : config -> elapsed:float -> universe_size:int -> string
(** The vmbp-loadgen/1 summary document from the current registry
    state; exposed for tests. *)

val query_plan :
  config -> index:int -> count:int -> (string * string * string * string) list
(** The exact [(vm, workload, technique, cpu)] sequence client [index]
    sends for this config -- the very list {!run}'s client loop
    consumes, exposed so determinism tests assert the wire behavior:
    same [seed] and [index], same plan, independent of [clients] or
    wall-clock timing. *)

val run : config -> unit
(** Drive the load, then print the report to stdout.  Raises
    [Unix.Unix_error] if the first connection attempt of a client
    fails (no server). *)

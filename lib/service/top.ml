module P = Protocol
module Sjson = Vmbp_store.Sjson

(* ------------------------------------------------------------------ *)
(* Prometheus text-exposition parsing.  The monitor consumes the same
   bytes a scraper would, so what [top] shows is exactly what the
   [metrics] verb exports -- no private side channel. *)

type sample = {
  s_name : string;
  s_labels : (string * string) list;
  s_value : float;
}

(* The label pairs of a [k=<quoted>,...] block; values use the
   Prometheus escapes (backslash, quote, newline). *)
let parse_labels s =
  let n = String.length s in
  let out = ref [] in
  let i = ref 0 in
  (try
     while !i < n do
       let eq = String.index_from s !i '=' in
       let key = String.trim (String.sub s !i (eq - !i)) in
       if eq + 1 >= n || s.[eq + 1] <> '"' then raise Exit;
       let b = Buffer.create 16 in
       let j = ref (eq + 2) in
       let closed = ref false in
       while not !closed do
         if !j >= n then raise Exit;
         (match s.[!j] with
         | '\\' when !j + 1 < n ->
             incr j;
             Buffer.add_char b
               (match s.[!j] with 'n' -> '\n' | c -> c)
         | '"' -> closed := true
         | c -> Buffer.add_char b c);
         incr j
       done;
       out := (key, Buffer.contents b) :: !out;
       i := !j;
       if !i < n && s.[!i] = ',' then incr i
     done
   with Exit | Not_found -> ());
  List.rev !out

let parse_line line =
  let line = String.trim line in
  let n = String.length line in
  if n = 0 || line.[0] = '#' then None
  else
    (* NAME{labels} VALUE | NAME VALUE *)
    let name_end =
      let rec go i =
        if i >= n then i
        else match line.[i] with '{' | ' ' | '\t' -> i | _ -> go (i + 1)
      in
      go 0
    in
    if name_end = 0 || name_end >= n then None
    else
      let name = String.sub line 0 name_end in
      let labels, rest =
        if line.[name_end] = '{' then
          match String.index_from_opt line name_end '}' with
          | None -> ([], "")
          | Some close ->
              ( parse_labels (String.sub line (name_end + 1) (close - name_end - 1)),
                String.sub line (close + 1) (n - close - 1) )
        else ([], String.sub line name_end (n - name_end))
      in
      match float_of_string_opt (String.trim rest) with
      | Some v -> Some { s_name = name; s_labels = labels; s_value = v }
      | None -> None

let parse text = List.filter_map parse_line (String.split_on_char '\n' text)

(* ------------------------------------------------------------------ *)
(* Snapshot arithmetic *)

let value ?(labels = []) samples name =
  List.find_map
    (fun s ->
      if
        s.s_name = name
        && List.for_all
             (fun (k, v) -> List.assoc_opt k s.s_labels = Some v)
             labels
      then Some s.s_value
      else None)
    samples
  |> Option.value ~default:0.

(* Cumulative histogram buckets of one labelled series, as
   (upper_bound, cumulative_count) sorted by bound; le="+Inf" last. *)
let buckets samples family ~label_key ~label_value =
  let le s = List.assoc_opt "le" s.s_labels in
  List.filter_map
    (fun s ->
      if
        s.s_name = family ^ "_bucket"
        && List.assoc_opt label_key s.s_labels = Some label_value
      then
        match le s with
        | Some "+Inf" -> Some (infinity, s.s_value)
        | Some b -> Option.map (fun f -> (f, s.s_value)) (float_of_string_opt b)
        | None -> None
      else None)
    samples
  |> List.sort compare

(* The q-quantile upper bound from cumulative buckets, mirroring
   {!Vmbp_obs.Registry.histogram_quantile}: nan when empty, the last
   finite bound when the quantile lands in the overflow bucket. *)
let bucket_quantile bs q =
  match List.rev bs with
  | [] -> Float.nan
  | (_, total) :: _ when total <= 0. -> Float.nan
  | (_, total) :: rest ->
      let target = q *. total in
      let finite = List.rev rest in
      let rec go last = function
        | [] -> last
        | (b, c) :: tl -> if c >= target then b else go b tl
      in
      let fallback =
        match List.rev finite with (b, _) :: _ -> b | [] -> Float.nan
      in
      let r = go fallback finite in
      if Float.is_nan r then fallback else r

(* Bucket-wise delta of two cumulative snapshots (the activity within
   one polling interval); mismatched shapes fall back to [cur]. *)
let bucket_delta ~prev cur =
  if List.length prev <> List.length cur then cur
  else
    try
      List.map2
        (fun (b0, c0) (b1, c1) ->
          if b0 <> b1 || c1 < c0 then raise Exit else (b1, c1 -. c0))
        prev cur
    with Exit -> cur

let verbs samples =
  List.filter_map
    (fun s ->
      if s.s_name = "vmbp_service_verb_seconds_count" then
        List.assoc_opt "verb" s.s_labels
      else None)
    samples
  |> List.sort_uniq compare

(* ------------------------------------------------------------------ *)
(* Rendering *)

let fmt_lat v =
  if Float.is_nan v then "    -"
  else if v < 1e-3 then Printf.sprintf "%4.0fus" (v *. 1e6)
  else if v < 1. then Printf.sprintf "%4.1fms" (v *. 1e3)
  else Printf.sprintf "%5.2fs" v

let fmt_rate v = if v < 10. then Printf.sprintf "%.1f" v else Printf.sprintf "%.0f" v

let render ?prev ~dt samples =
  let b = Buffer.create 1024 in
  let c name = value samples ("vmbp_service_" ^ name ^ "_total") in
  let g name = value samples ("vmbp_service_" ^ name) in
  let pc name = match prev with
    | Some p -> value p ("vmbp_service_" ^ name ^ "_total")
    | None -> 0.
  in
  let rate name = if dt > 0. then (c name -. pc name) /. dt else 0. in
  let requests = c "requests" in
  let hits = c "store_hits" in
  let hit_rate = if requests > 0. then 100. *. hits /. requests else 0. in
  Buffer.add_string b
    (Printf.sprintf
       "requests %-8.0f %s rps   store-hit %5.1f%%   conns %.0f  queue %.0f  \
        inflight %.0f\n"
       requests (fmt_rate (rate "requests")) hit_rate
       (g "connections") (g "queue_depth") (g "inflight"));
  Buffer.add_string b
    (Printf.sprintf
       "coalesced %.0f  shed %.0f  degraded-refused %.0f  timeouts %.0f  \
        conn-drops %.0f  degraded %.1fs  flight-dumps %.0f\n"
       (c "coalesced") (c "shed") (c "degraded_refused")
       (c "request_timeouts") (c "conn_drops") (g "degraded_seconds")
       (c "flight_dumps"));
  Buffer.add_string b
    (Printf.sprintf "%-10s %8s %8s %8s %8s %8s\n" "verb" "n" "rps" "p50"
       "p95" "p99");
  List.iter
    (fun verb ->
      let cur =
        buckets samples "vmbp_service_verb_seconds" ~label_key:"verb"
          ~label_value:verb
      in
      let n =
        value ~labels:[ ("verb", verb) ] samples
          "vmbp_service_verb_seconds_count"
      in
      let prev_n, window =
        match prev with
        | Some p ->
            ( value ~labels:[ ("verb", verb) ] p
                "vmbp_service_verb_seconds_count",
              bucket_delta
                ~prev:
                  (buckets p "vmbp_service_verb_seconds" ~label_key:"verb"
                     ~label_value:verb)
                cur )
        | None -> (0., cur)
      in
      (* Quantiles come from the interval's own bucket deltas when the
         interval saw traffic; an idle interval falls back to the
         all-time distribution rather than showing dashes. *)
      let window =
        if List.exists (fun (_, c) -> c > 0.) window then window else cur
      in
      let rps = if dt > 0. then (n -. prev_n) /. dt else 0. in
      Buffer.add_string b
        (Printf.sprintf "%-10s %8.0f %8s %8s %8s %8s\n" verb n
           (fmt_rate rps)
           (fmt_lat (bucket_quantile window 0.5))
           (fmt_lat (bucket_quantile window 0.95))
           (fmt_lat (bucket_quantile window 0.99))))
    (verbs samples);
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* The polling loop *)

let fetch socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.connect fd (Unix.ADDR_UNIX socket);
      P.write_frame fd
        (P.obj [ ("verb", P.S "metrics"); ("format", P.S "prometheus") ]);
      match P.read_frame fd with
      | None -> Error "server closed the connection without a reply"
      | Some reply -> (
          match Sjson.parse_line reply with
          | exception Sjson.Bad -> Error "unparseable metrics reply"
          | fields -> (
              match
                (Sjson.str_opt fields "status", Sjson.str_opt fields "body")
              with
              | Some "ok", Some body -> Ok body
              | st, _ ->
                  Error
                    (Printf.sprintf "metrics verb replied %s"
                       (Option.value ~default:"(no status)" st)))))

let run ~socket ~interval ?iterations () =
  let clear = "\027[H\027[2J" in
  let prev = ref None in
  let t_prev = ref (Unix.gettimeofday ()) in
  let i = ref 0 in
  let stop = ref None in
  while !stop = None do
    (match fetch socket with
    | exception Unix.Unix_error (e, _, _) ->
        Printf.eprintf "vmbp top: cannot reach %s: %s\n" socket
          (Unix.error_message e);
        stop := Some 1
    | Error msg ->
        Printf.eprintf "vmbp top: %s\n" msg;
        stop := Some 1
    | Ok body ->
        let now = Unix.gettimeofday () in
        let samples = parse body in
        let dt = now -. !t_prev in
        let header =
          Printf.sprintf "vmbp top -- %s -- every %gs\n" socket interval
        in
        print_string
          (clear ^ header
          ^ render ?prev:!prev ~dt:(if !prev = None then 0. else dt) samples);
        flush stdout;
        prev := Some samples;
        t_prev := now);
    incr i;
    (match iterations with
    | Some n when !i >= n && !stop = None -> stop := Some 0
    | _ -> ());
    if !stop = None then Unix.sleepf interval
  done;
  Option.value ~default:0 !stop

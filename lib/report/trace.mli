(** Record-once / replay-many dispatch traces.

    One {!Vmbp_core.Engine} execution of a (workload, technique, scale)
    configuration produces an event stream -- dispatch indirect branches and
    I-cache code fetches -- that does not depend on the CPU model or the
    predictor configuration: {!Vmbp_core.Config.build_layout} is a function
    of technique and cost model only, and predictor/I-cache outcomes never
    feed back into VM semantics.  This module captures that stream once into
    compact dictionary-coded byte chunks, after which {!replay} reproduces the full
    {!Vmbp_core.Engine.result} of a direct run for {e any} CPU or predictor
    override by driving only the hardware simulators -- no VM semantics, no
    layout rebuild.  This is the paper's own experimental shape (one
    interpreter run swept across many predictor/BTB configurations,
    Sections 2-3) applied to the reproduction's experiment grid.

    Storage is dictionary-coded: each stream keeps its distinct events in an
    append-only dictionary and stores the stream itself as 3-byte codes into
    recycled byte chunks, since an interpreter run repeats a small set of
    fetch addresses and dispatch edges millions of times.  Memory stays
    bounded: every chunk and dictionary growth is accounted against the
    caller's cap, and recording aborts (returns [None]) rather than exceed
    it -- callers then fall back to direct simulation. *)

type t

val record :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?translation:Vmbp_core.Engine.translation ->
  ?cap_bytes:int ->
  layout:Vmbp_core.Code_layout.t ->
  exec:Vmbp_core.Engine.exec ->
  output:(unit -> string) ->
  unit ->
  t option
(** Execute the layout's program once, recording its dispatch and fetch
    event streams plus the deterministic counters, the trap state and the
    session's output.  Returns [None] when the event storage would exceed
    [cap_bytes] bytes (default unlimited), when a stream has more than 2^24
    distinct events, or when an event exceeds the packed encoding's generous
    field widths; the caller must then run cells directly.  A trapped run
    (including fuel exhaustion) records normally: the trace reproduces its
    partial metrics.  [poll] is the engine's cooperative watchdog hook (see
    {!Vmbp_core.Engine.run_events}); an exception it raises aborts the
    recording like any other run failure.  [translation] supplies the
    pre-decoded instruction stream (see {!Vmbp_core.Engine.translation});
    it must have been built from [layout] and is consumed by the run. *)

val replay_bank :
  ?poll:(unit -> unit) ->
  t ->
  predictors:Vmbp_machine.Predictor.kind list ->
  icaches:Vmbp_machine.Icache.config list ->
  int
(** Banked replay: simulate every requested configuration in one traversal
    per stream.  The dispatch stream is walked once driving an array of
    predictor simulators (one per distinct, not-yet-memoized configuration,
    with per-configuration counters in struct-of-arrays layout), and the
    fetch stream likewise drives an array of I-cache simulators; the
    results land in the trace's memo tables, from which {!replay} and
    {!replay_memo} then answer at cost-model price.  Returns the number of
    configurations freshly simulated (0 when everything was already
    memoized).  Configurations are deduplicated by their canonical
    descriptor; invalid ones (whose simulator constructor raises) are
    skipped and left un-memoized, so the error surfaces on the per-cell
    path that actually uses them.

    Polling contract: [poll] is invoked once on entry -- regardless of
    memo state, so a long run of memo-served groups cannot blind-spot a
    watchdog deadline -- and then after every 65536 tokens of each stream
    walk.  Raises [Invalid_argument] on a [release]d trace. *)

val replay :
  ?poll:(unit -> unit) ->
  t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  predictor:Vmbp_machine.Predictor.kind ->
  Vmbp_core.Engine.result
(** Drive a fresh predictor and I-cache of the given configuration over the
    recorded streams (a singleton {!replay_bank}).  The result is
    field-for-field identical to what [Engine.run] would produce for the
    same configuration.  Per-configuration simulator outcomes are memoized
    on the trace, so replaying a repeated predictor kind or I-cache
    geometry (as the sweep experiments do) costs only the cost-model
    arithmetic.  [poll] follows {!replay_bank}'s contract (entry poll even
    when fully memoized, then every 65536 tokens).  Raises
    [Invalid_argument] on a [release]d trace. *)

val replay_memo :
  t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  predictor:Vmbp_machine.Predictor.kind ->
  Vmbp_core.Engine.result option
(** [replay], answered purely from the memo tables: [Some] exactly when both
    the predictor kind and the I-cache geometry have been replayed on this
    trace before.  Valid on a [release]d trace -- the memos, base counters
    and output are ordinary GC-managed values that survive chunk recycling
    -- so an evicted trace still resolves every configuration it ever
    served, at cost-model price. *)

val release : t -> unit
(** Return the trace's chunks to the recycling pool.  The trace must not be
    used afterwards ([replay] raises); releasing twice raises.  Callers that
    simply drop a trace may skip this -- the GC reclaims it -- but then its
    pages are handed back to the OS instead of being reused by the next
    recording. *)

val bytes : t -> int
(** Bytes allocated for the event storage (the quantity capped by
    [cap_bytes]), for cache accounting. *)

val steps : t -> int
val trapped : t -> string option

val output : t -> string
(** The recorded session's program output. *)

val dispatch_events : t -> int
val fetch_events : t -> int

val memo_sizes : t -> int * int
(** Number of bindings in the (predictor, I-cache) memo tables, including
    any duplicate bindings for the same key.  Inserts are add-if-absent
    under the memo lock, so for each table this must always equal the
    number of distinct configurations simulated -- exposed so tests can
    assert the memo tables stay duplicate-free under concurrent replay. *)

val mutation_racy_memo : bool ref
(** Mutation tooth: when [true], memo inserts revert to the pre-fix
    unlocked check-then-insert, so concurrent replays can land duplicate
    bindings.  Exists so the simulation harness can prove its memo check
    catches the regression; never set it outside tests. *)

open Vmbp_core
open Vmbp_machine

(* ------------------------------------------------------------------ *)
(* Cells *)

type cell = {
  tag : string;
  workload : Vmbp_workloads.t;
  technique : Technique.t;
  cpu : Cpu_model.t;
  scale : int;
  predictor : Predictor.kind option;
}

type mode = Direct | Record | Replay

let mode_name = function
  | Direct -> "direct"
  | Record -> "record"
  | Replay -> "replay"

type timed = {
  cell : cell;
  outcome : (Runner.run, string) result;
  wall_seconds : float;
  mode : mode;
}

let default_jobs = ref 1

(* Total budget for retained dispatch traces, in MB; [<= 0] disables
   record/replay entirely (every cell simulates directly). *)
let trace_cap_mb = ref 256

let cell ?(tag = "") ?(scale = 1) ?predictor ~cpu ~technique workload =
  { tag; workload; technique; cpu; scale; predictor }

let cell_name c =
  Printf.sprintf "%s/%s/%s/%s%s"
    (Vmbp_workloads.vm_name c.workload.Vmbp_workloads.vm)
    c.workload.Vmbp_workloads.name
    (Technique.name c.technique)
    c.cpu.Cpu_model.name
    (if c.scale = 1 then "" else Printf.sprintf "@%d" c.scale)

(* ------------------------------------------------------------------ *)
(* Shared work queue: one producer, [jobs] consumers.  All cells are
   enqueued before the workers start, but the queue is written for the
   general case: consumers block on the condition until an item arrives or
   the queue is closed. *)

type 'a work_queue = {
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let queue_create () =
  {
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let queue_push q x =
  Mutex.lock q.lock;
  Queue.push x q.items;
  Condition.signal q.nonempty;
  Mutex.unlock q.lock

let queue_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.lock

let queue_take q =
  Mutex.lock q.lock;
  let rec wait () =
    match Queue.take_opt q.items with
    | Some x ->
        Mutex.unlock q.lock;
        Some x
    | None ->
        if q.closed then begin
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* The session log: every cell run through this module is recorded so the
   harnesses can dump one machine-readable summary at exit. *)

let log : timed list ref = ref []
let log_lock = Mutex.create ()

(* Stored newest-first; drained in chronological order. *)
let record results =
  Mutex.lock log_lock;
  log := List.rev_append results !log;
  Mutex.unlock log_lock

let drain_log () =
  Mutex.lock log_lock;
  let l = !log in
  log := [];
  Mutex.unlock log_lock;
  List.rev l

(* ------------------------------------------------------------------ *)
(* Trace cache.

   Recorded (workload, technique, scale) executions are retained across
   [run_cells] calls, because the experiment registry revisits the same
   groups under different CPUs (e.g. the Celeron and Pentium 4 speedup
   figures share every Forth group).  Retained event-stream bytes are
   bounded by [trace_cap_mb] with least-recently-used eviction, but
   eviction only recycles the streams: the entry stays in the list as a
   kilobyte-sized summary whose per-configuration memo tables (see
   {!Trace.replay_memo}) still answer every predictor/I-cache combination
   the trace ever served.  Most cross-experiment revisits repeat a
   configuration (the counter figures and sweeps reuse the speedup
   figures' CPUs), so they stay free no matter how small the cap is; only
   a genuinely new configuration on an evicted group pays for re-recording.
   Workload identity is physical: the registry's workload values persist
   for the process lifetime, while freshly constructed (e.g. synthetic
   test) workloads can never alias a stale trace. *)

type cache_entry = {
  ce_workload : Vmbp_workloads.t;
  ce_technique : Technique.t;
  ce_scale : int;
  ce_trace : Runner.trace;
  ce_bytes : int;
  mutable ce_stamp : int;
  mutable ce_refs : int;  (* groups currently replaying from this trace *)
  mutable ce_dead : bool;
      (* evicted: recycle storage once ce_refs = 0; the entry itself stays
         listed as a memo-only summary *)
}

let cache : cache_entry list ref = ref []
let cache_bytes = ref 0
let cache_clock = ref 0
let cache_lock = Mutex.create ()

let cap_bytes () = !trace_cap_mb * 1024 * 1024

let same_group a b =
  a.workload == b.workload && a.scale = b.scale && a.technique = b.technique

let entry_matches c e =
  e.ce_workload == c.workload && e.ce_scale = c.scale
  && e.ce_technique = c.technique

(* Deferred storage recycling: an evicted trace may still be feeding another
   domain's replays, so eviction only marks the entry dead and the last
   group using it returns the chunks to the pool. *)
let entry_drop_locked e =
  if e.ce_dead && e.ce_refs = 0 then Runner.release_trace e.ce_trace

(* [`Live e] holds a reference on the entry's storage (the caller must
   [cache_release] it); [`Summary e] is an evicted entry usable only
   through {!Runner.replay_memo}, which needs no reference. *)
let cache_find c =
  Mutex.lock cache_lock;
  let found = List.find_opt (entry_matches c) !cache in
  let found =
    match found with
    | Some e when not e.ce_dead ->
        incr cache_clock;
        e.ce_stamp <- !cache_clock;
        e.ce_refs <- e.ce_refs + 1;
        `Live e
    | Some e -> `Summary e
    | None -> `Miss
  in
  Mutex.unlock cache_lock;
  found

let cache_release e =
  Mutex.lock cache_lock;
  e.ce_refs <- e.ce_refs - 1;
  entry_drop_locked e;
  Mutex.unlock cache_lock

(* Eviction demotes the least-recently-used live entry to a summary: its
   stream storage is recycled but its memo tables keep answering repeat
   configurations. *)
let evict_to_cap_locked () =
  let cap = cap_bytes () in
  let continue = ref true in
  while !cache_bytes > cap && !continue do
    match List.filter (fun e -> not e.ce_dead) !cache with
    | [] | [ _ ] -> continue := false
    | live ->
        let lru =
          List.fold_left
            (fun acc e -> if e.ce_stamp < acc.ce_stamp then e else acc)
            (List.hd live) (List.tl live)
        in
        cache_bytes := !cache_bytes - lru.ce_bytes;
        lru.ce_dead <- true;
        entry_drop_locked lru
  done

(* Returns the entry now holding the group's trace, with one reference held
   for the caller.  If another domain inserted the same group first, the
   caller's freshly recorded duplicate is recycled and the existing live
   entry is used instead.  A matching dead summary (the re-record path:
   storage was evicted and then a new configuration arrived) is superseded:
   the fresh entry is consed in front of it, and the stale summary is
   unlisted once no domain still reads its memos. *)
let cache_insert c trace =
  let bytes = Runner.trace_bytes trace in
  Mutex.lock cache_lock;
  let entry =
    match
      List.find_opt (fun e -> entry_matches c e && not e.ce_dead) !cache
    with
    | Some e ->
        Runner.release_trace trace;
        incr cache_clock;
        e.ce_stamp <- !cache_clock;
        e.ce_refs <- e.ce_refs + 1;
        e
    | None ->
        incr cache_clock;
        let e =
          {
            ce_workload = c.workload;
            ce_technique = c.technique;
            ce_scale = c.scale;
            ce_trace = trace;
            ce_bytes = bytes;
            ce_stamp = !cache_clock;
            ce_refs = 1;
            ce_dead = false;
          }
        in
        cache :=
          e :: List.filter (fun o -> not (entry_matches c o && o.ce_dead)) !cache;
        cache_bytes := !cache_bytes + bytes;
        evict_to_cap_locked ();
        e
  in
  Mutex.unlock cache_lock;
  entry

let clear_trace_cache () =
  Mutex.lock cache_lock;
  List.iter
    (fun e ->
      e.ce_dead <- true;
      entry_drop_locked e)
    !cache;
  cache := [];
  cache_bytes := 0;
  Mutex.unlock cache_lock

let trace_cache_bytes () =
  Mutex.lock cache_lock;
  let b = !cache_bytes in
  Mutex.unlock cache_lock;
  b

(* ------------------------------------------------------------------ *)
(* Running *)

let run_cell c =
  let t0 = Unix.gettimeofday () in
  let outcome =
    Runner.run_result ~scale:c.scale ?predictor:c.predictor ~cpu:c.cpu
      ~technique:c.technique c.workload
  in
  { cell = c; outcome; wall_seconds = Unix.gettimeofday () -. t0; mode = Direct }

let replay_cell mode tr c =
  let t0 = Unix.gettimeofday () in
  let outcome = Runner.replay ?predictor:c.predictor ~cpu:c.cpu tr in
  { cell = c; outcome; wall_seconds = Unix.gettimeofday () -. t0; mode }

(* Replay every cell purely from an evicted entry's memo tables.  All or
   nothing: a group whose cells mix known and new configurations re-records
   instead, so the one engine execution also refreshes the stream for its
   siblings. *)
let memo_cells entry arr idxs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | i :: rest -> (
        let c = arr.(i) in
        let t0 = Unix.gettimeofday () in
        match
          Runner.replay_memo ?predictor:c.predictor ~cpu:c.cpu entry.ce_trace
        with
        | None -> None
        | Some outcome ->
            go
              (( i,
                 {
                   cell = c;
                   outcome;
                   wall_seconds = Unix.gettimeofday () -. t0;
                   mode = Replay;
                 } )
              :: acc)
              rest)
  in
  go [] idxs

(* One (workload, technique, scale) group: find or record its trace, then
   replay every cell against its own CPU/predictor.  Any recording problem
   (cap exceeded, load/build/run exception) falls back to direct per-cell
   simulation, which reproduces exactly what the pre-trace runner did. *)
let run_group results arr idxs =
  let direct () =
    List.iter (fun i -> results.(i) <- Some (run_cell arr.(i))) idxs
  in
  let record_group () =
    let c0 = arr.(List.hd idxs) in
    let t0 = Unix.gettimeofday () in
    match
      Runner.record ~scale:c0.scale ~cap_bytes:(cap_bytes ())
        ~technique:c0.technique c0.workload
    with
    | Error (`Overflow | `Failed _) -> direct ()
    | Ok tr ->
        let record_seconds = Unix.gettimeofday () -. t0 in
        let entry = cache_insert c0 tr in
        List.iteri
          (fun k i ->
            let timed =
              replay_cell
                (if k = 0 then Record else Replay)
                entry.ce_trace arr.(i)
            in
            (* The group's one engine execution is billed to the first
               cell, so summing wall_seconds still accounts all work. *)
            let timed =
              if k = 0 then
                { timed with wall_seconds = timed.wall_seconds +. record_seconds }
              else timed
            in
            results.(i) <- Some timed)
          idxs;
        cache_release entry
  in
  if !trace_cap_mb <= 0 then direct ()
  else
    let c0 = arr.(List.hd idxs) in
    match cache_find c0 with
    | `Live entry ->
        List.iter
          (fun i ->
            results.(i) <- Some (replay_cell Replay entry.ce_trace arr.(i)))
          idxs;
        cache_release entry
    | `Summary entry -> (
        match memo_cells entry arr idxs with
        | Some timed -> List.iter (fun (i, t) -> results.(i) <- Some t) timed
        | None -> record_group ())
    | `Miss -> record_group ()

(* Group cell indices by (workload, technique, scale), preserving first-
   occurrence order and ascending indices within each group. *)
let group_cells arr =
  let groups : (cell * int list ref) list ref = ref [] in
  Array.iteri
    (fun i c ->
      match List.find_opt (fun (c0, _) -> same_group c0 c) !groups with
      | Some (_, l) -> l := i :: !l
      | None -> groups := (c, ref [ i ]) :: !groups)
    arr;
  List.rev_map (fun (_, l) -> List.rev !l) !groups

let run_cells ?jobs cells =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> !default_jobs)
  in
  let arr = Array.of_list cells in
  let results = Array.make (Array.length arr) None in
  let groups = group_cells arr in
  let ngroups = List.length groups in
  if jobs = 1 || ngroups <= 1 then
    (* Sequential path, bit-for-bit the reference for the pool. *)
    List.iter (run_group results arr) groups
  else begin
    let q = queue_create () in
    List.iter (fun g -> queue_push q g) groups;
    queue_close q;
    let worker () =
      let rec loop () =
        match queue_take q with
        | None -> ()
        | Some g ->
            (* Distinct groups: no two domains ever write the same index. *)
            run_group results arr g;
            loop ()
      in
      loop ()
    in
    let spawned = min (jobs - 1) (ngroups - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let out =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* every slot filled *))
         results)
  in
  record out;
  out

let matrix ?(scale = 1) ?jobs ?(tag = "matrix") ~cpu ~techniques workloads =
  let cells =
    List.concat_map
      (fun w ->
        List.map (fun t -> cell ~tag ~scale ~cpu ~technique:t w) techniques)
      workloads
  in
  let results = run_cells ?jobs cells in
  let nt = List.length techniques in
  let rec regroup ws rs =
    match ws with
    | [] -> []
    | w :: ws' ->
        let rec split k acc rs =
          if k = 0 then (List.rev acc, rs)
          else
            match rs with
            | r :: rs' -> split (k - 1) (r :: acc) rs'
            | [] -> assert false
        in
        let row, rest = split nt [] rs in
        (w, List.map (fun r -> (r.cell.technique, r.outcome)) row)
        :: regroup ws' rest
  in
  regroup workloads results

(* ------------------------------------------------------------------ *)
(* JSON summary *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_of_timed t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"tag\":\"%s\"" (json_escape t.cell.tag);
  add ",\"vm\":\"%s\""
    (json_escape (Vmbp_workloads.vm_name t.cell.workload.Vmbp_workloads.vm));
  add ",\"workload\":\"%s\""
    (json_escape t.cell.workload.Vmbp_workloads.name);
  add ",\"technique\":\"%s\"" (json_escape (Technique.name t.cell.technique));
  add ",\"cpu\":\"%s\"" (json_escape t.cell.cpu.Cpu_model.name);
  add ",\"scale\":%d" t.cell.scale;
  (match t.cell.predictor with
  | Some p -> add ",\"predictor\":\"%s\"" (json_escape (Predictor.kind_name p))
  | None -> ());
  (match t.outcome with
  | Ok r ->
      let m = r.Runner.result.Engine.metrics in
      add ",\"ok\":true";
      add ",\"cycles\":%s" (json_float r.Runner.result.Engine.cycles);
      add ",\"mispredict_rate\":%s"
        (json_float (Metrics.misprediction_rate m));
      add ",\"mispredicts\":%d" m.Metrics.mispredicts;
      add ",\"icache_misses\":%d" m.Metrics.icache_misses;
      add ",\"vm_instrs\":%d" m.Metrics.vm_instrs;
      add ",\"code_bytes\":%d" m.Metrics.code_bytes
  | Error msg -> add ",\"ok\":false,\"error\":\"%s\"" (json_escape msg));
  add ",\"mode\":\"%s\"" (mode_name t.mode);
  add ",\"wall_seconds\":%s" (json_float t.wall_seconds);
  add "}";
  Buffer.contents b

let json_summary ?jobs results =
  let jobs = match jobs with Some j -> max 1 j | None -> !default_jobs in
  let total = List.fold_left (fun a t -> a +. t.wall_seconds) 0. results in
  let count m = List.length (List.filter (fun t -> t.mode = m) results) in
  let wall m =
    List.fold_left
      (fun a t -> if t.mode = m then a +. t.wall_seconds else a)
      0. results
  in
  (* [engine_runs] counts actual VM executions: every direct cell plus one
     per recorded group.  Replayed cells re-ran no VM semantics. *)
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"vmbp-cells/1\"";
  Buffer.add_string b (Printf.sprintf ",\"jobs\":%d" jobs);
  Buffer.add_string b
    (Printf.sprintf ",\"cells\":%d" (List.length results));
  Buffer.add_string b
    (Printf.sprintf ",\"engine_runs\":%d" (count Direct + count Record));
  Buffer.add_string b (Printf.sprintf ",\"replays\":%d" (count Replay));
  Buffer.add_string b
    (Printf.sprintf ",\"trace_cap_mb\":%d" !trace_cap_mb);
  Buffer.add_string b
    (Printf.sprintf ",\"cell_wall_seconds\":%s" (json_float total));
  Buffer.add_string b
    (Printf.sprintf ",\"direct_wall_seconds\":%s" (json_float (wall Direct)));
  Buffer.add_string b
    (Printf.sprintf ",\"record_wall_seconds\":%s" (json_float (wall Record)));
  Buffer.add_string b
    (Printf.sprintf ",\"replay_wall_seconds\":%s" (json_float (wall Replay)));
  Buffer.add_string b ",\"results\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (json_of_timed t))
    results;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_json_summary ?jobs ~file results =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_summary ?jobs results))

open Vmbp_core
open Vmbp_machine

(* ------------------------------------------------------------------ *)
(* Cells *)

type cell = {
  tag : string;
  workload : Vmbp_workloads.t;
  technique : Technique.t;
  cpu : Cpu_model.t;
  scale : int;
  predictor : Predictor.kind option;
}

type mode = Direct | Record | Replay

let mode_name = function
  | Direct -> "direct"
  | Record -> "record"
  | Replay -> "replay"

type timed = {
  cell : cell;
  outcome : (Runner.run, string) result;
  wall_seconds : float;
  serve_seconds : float;
  mode : mode;
  attempts : int;
  timed_out : bool;
  from_journal : bool;
  audited : bool;
}

(* ------------------------------------------------------------------ *)
(* Observability instruments (see {!Vmbp_obs.Registry}).  Handles are
   module-level so [Registry.reset] between report runs zeroes them in
   place; every update happens at cell or group granularity, never inside
   the simulation hot loops. *)

let m_cache_live_hits = Vmbp_obs.Registry.counter "trace_cache.live_hits"
let m_cache_memo_hits = Vmbp_obs.Registry.counter "trace_cache.memo_hits"
let m_cache_misses = Vmbp_obs.Registry.counter "trace_cache.misses"
let m_cache_insertions = Vmbp_obs.Registry.counter "trace_cache.insertions"

(* An eviction demotes a live entry to a memo-only summary, so this also
   counts memo demotions. *)
let m_cache_evictions = Vmbp_obs.Registry.counter "trace_cache.evictions"

(* Cells served verbatim from the full-result cache: no simulation ran. *)
let m_result_hits = Vmbp_obs.Registry.counter "result_cache.hits"

(* Banked replays: single-pass group traversals that fed at least one
   fresh simulator configuration, and the configurations they fed. *)
let m_bank_replays = Vmbp_obs.Registry.counter "trace.bank_replays"
let m_banked_configs = Vmbp_obs.Registry.counter "trace.banked_configs"
let m_cell_retries = Vmbp_obs.Registry.counter "cells.retries"
let m_cell_timeouts = Vmbp_obs.Registry.counter "cells.timeouts"
let g_queue_depth = Vmbp_obs.Registry.gauge "pool.queue_depth"
let g_busy_workers = Vmbp_obs.Registry.gauge "pool.busy_workers"

let h_cell_wall =
  Vmbp_obs.Registry.histogram
    ~bounds:[| 1e-4; 1e-3; 1e-2; 0.1; 1.; 10.; 60. |]
    "cell.wall_seconds"

let h_cell_minor_words =
  Vmbp_obs.Registry.histogram
    ~bounds:[| 1e3; 1e4; 1e5; 1e6; 1e7; 1e8; 1e9 |]
    "cell.minor_words"

(* ------------------------------------------------------------------ *)
(* Progress heartbeat: one stderr line, redrawn in place at most twice a
   second, from whichever domain happens to tick first.  Never written
   unless [progress] is on, and never to stdout, so report tables stay
   byte-identical with the heartbeat enabled. *)

let progress = ref false
let prog_lock = Mutex.create ()
let prog_active = ref false
let prog_total = ref 0
let prog_done = ref 0
let prog_start = ref 0.
let prog_last = ref 0.
let prog_busy : (int, string) Hashtbl.t = Hashtbl.create 8

(* Called with [prog_lock] held. *)
let progress_draw now =
  prog_last := now;
  let elapsed = now -. !prog_start in
  let d = !prog_done and t = !prog_total in
  let eta =
    if d = 0 || d >= t then ""
    else
      Printf.sprintf "  eta %.0fs"
        (elapsed *. float_of_int (t - d) /. float_of_int d)
  in
  Printf.eprintf "\r[vmbp] %d/%d cells  %d busy  %.0fs elapsed%s   %!" d t
    (Hashtbl.length prog_busy) elapsed eta

let progress_tick () =
  if !progress && !prog_active then begin
    let now = Vmbp_sim.Env.now () in
    if now -. !prog_last >= 0.5 then begin
      Mutex.lock prog_lock;
      if !prog_active && now -. !prog_last >= 0.5 then progress_draw now;
      Mutex.unlock prog_lock
    end
  end

let progress_begin total =
  if !progress then begin
    Mutex.lock prog_lock;
    prog_active := true;
    prog_total := total;
    prog_done := 0;
    prog_start := Vmbp_sim.Env.now ();
    prog_last := 0.;
    Hashtbl.reset prog_busy;
    Mutex.unlock prog_lock
  end

let progress_cell_done () =
  if !progress && !prog_active then begin
    Mutex.lock prog_lock;
    prog_done := !prog_done + 1;
    Mutex.unlock prog_lock
  end

let progress_busy name =
  if !progress && !prog_active then begin
    Mutex.lock prog_lock;
    Hashtbl.replace prog_busy (Domain.self () :> int) name;
    Mutex.unlock prog_lock
  end

let progress_idle () =
  if !progress && !prog_active then begin
    Mutex.lock prog_lock;
    Hashtbl.remove prog_busy (Domain.self () :> int);
    Mutex.unlock prog_lock
  end

let progress_end () =
  if !progress then begin
    Mutex.lock prog_lock;
    if !prog_active then begin
      prog_active := false;
      Hashtbl.reset prog_busy;
      (* Erase the heartbeat so whatever stderr prints next starts on a
         clean line. *)
      Printf.eprintf "\r%s\r%!" (String.make 70 ' ')
    end;
    Mutex.unlock prog_lock
  end

let default_jobs = ref 1

(* Differential checking, set from the command line: [self_check] routes
   every cell through the reference-model lockstep run ([--self-check]);
   [audit_sample] is the deterministic fraction of trace-replay cells
   cross-checked against a fresh direct execution ([--audit-sample]). *)
let self_check = ref false
let audit_sample = ref 0.02

(* Total budget for retained dispatch traces, in MB; [<= 0] disables
   record/replay entirely (every cell simulates directly). *)
let trace_cap_mb = ref 256

(* Watchdog/retry policy, set from the command line. *)
let cell_timeout = ref 0.
let cell_retries = ref 1
let retry_backoff_s = ref 0.02

(* ------------------------------------------------------------------ *)
(* Graceful shutdown.

   The first Ctrl-C sets this flag; workers finish the group in hand,
   skip everything still queued, and [run_cells] reports the skipped
   cells as interrupted so the harness can emit a partial report.  The
   journal needs no extra flushing -- every append was already fsync'd. *)

let shutdown = Atomic.make false
let request_shutdown () = Atomic.set shutdown true
let shutting_down () = Atomic.get shutdown
let reset_shutdown () = Atomic.set shutdown false

(* Worker domains respawned after an injected (or real) worker death. *)
let respawn_lock = Mutex.create ()
let respawns = ref 0

let note_respawns n =
  Mutex.lock respawn_lock;
  respawns := !respawns + n;
  Mutex.unlock respawn_lock

let worker_respawns () =
  Mutex.lock respawn_lock;
  let n = !respawns in
  Mutex.unlock respawn_lock;
  n

(* Banked-replay accounting since process start, [worker_respawns]-style:
   one [bank_replays] tick per group whose banked pass simulated at least
   one fresh configuration, [banked_configs] summing those
   configurations. *)
let bank_lock = Mutex.create ()
let bank_replays_n = ref 0
let banked_configs_n = ref 0

let note_bank configs =
  Mutex.lock bank_lock;
  incr bank_replays_n;
  banked_configs_n := !banked_configs_n + configs;
  Mutex.unlock bank_lock;
  Vmbp_obs.Registry.add m_bank_replays 1;
  Vmbp_obs.Registry.add m_banked_configs configs

let bank_replays () =
  Mutex.lock bank_lock;
  let n = !bank_replays_n in
  Mutex.unlock bank_lock;
  n

let banked_configs () =
  Mutex.lock bank_lock;
  let n = !banked_configs_n in
  Mutex.unlock bank_lock;
  n

let cell ?(tag = "") ?(scale = 1) ?predictor ~cpu ~technique workload =
  { tag; workload; technique; cpu; scale; predictor }

let cell_name c =
  Printf.sprintf "%s/%s/%s/%s%s"
    (Vmbp_workloads.vm_name c.workload.Vmbp_workloads.vm)
    c.workload.Vmbp_workloads.name
    (Technique.name c.technique)
    c.cpu.Cpu_model.name
    (if c.scale = 1 then "" else Printf.sprintf "@%d" c.scale)

(* ------------------------------------------------------------------ *)
(* Shared work queue: one producer, [jobs] consumers.  All cells are
   enqueued before the workers start, but the queue is written for the
   general case: consumers block on the condition until an item arrives or
   the queue is closed. *)

type 'a work_queue = {
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let queue_create () =
  {
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let queue_push q x =
  Mutex.lock q.lock;
  Queue.push x q.items;
  Condition.signal q.nonempty;
  Mutex.unlock q.lock;
  Vmbp_obs.Registry.gauge_add g_queue_depth 1.

let queue_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.lock

let queue_take q =
  Mutex.lock q.lock;
  let rec wait () =
    match Queue.take_opt q.items with
    | Some x ->
        Mutex.unlock q.lock;
        Vmbp_obs.Registry.gauge_add g_queue_depth (-1.);
        Some x
    | None ->
        if q.closed then begin
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* The session log: every cell run through this module is recorded so the
   harnesses can dump one machine-readable summary at exit. *)

let log : timed list ref = ref []
let log_lock = Mutex.create ()

(* Stored newest-first; drained in chronological order. *)
let record results =
  Mutex.lock log_lock;
  log := List.rev_append results !log;
  Mutex.unlock log_lock

let drain_log () =
  Mutex.lock log_lock;
  let l = !log in
  log := [];
  Mutex.unlock log_lock;
  List.rev l

(* ------------------------------------------------------------------ *)
(* Trace cache.

   Recorded (workload, technique, scale) executions are retained across
   [run_cells] calls, because the experiment registry revisits the same
   groups under different CPUs (e.g. the Celeron and Pentium 4 speedup
   figures share every Forth group).  Retained event-stream bytes are
   bounded by [trace_cap_mb] with least-recently-used eviction, but
   eviction only recycles the streams: the entry stays in the list as a
   kilobyte-sized summary whose per-configuration memo tables (see
   {!Trace.replay_memo}) still answer every predictor/I-cache combination
   the trace ever served.  Most cross-experiment revisits repeat a
   configuration (the counter figures and sweeps reuse the speedup
   figures' CPUs), so they stay free no matter how small the cap is; only
   a genuinely new configuration on an evicted group pays for re-recording.
   Workload identity is physical: the registry's workload values persist
   for the process lifetime, while freshly constructed (e.g. synthetic
   test) workloads can never alias a stale trace. *)

type cache_entry = {
  ce_workload : Vmbp_workloads.t;
  ce_technique : Technique.t;
  ce_scale : int;
  ce_trace : Runner.trace;
  ce_bytes : int;
  mutable ce_stamp : int;
  mutable ce_refs : int;  (* groups currently replaying from this trace *)
  mutable ce_dead : bool;
      (* evicted: recycle storage once ce_refs = 0; the entry itself stays
         listed as a memo-only summary *)
}

let cache : cache_entry list ref = ref []
let cache_bytes = ref 0
let cache_clock = ref 0
let cache_lock = Mutex.create ()

let cap_bytes () = !trace_cap_mb * 1024 * 1024

let same_group a b =
  a.workload == b.workload && a.scale = b.scale && a.technique = b.technique

let entry_matches c e =
  e.ce_workload == c.workload && e.ce_scale = c.scale
  && e.ce_technique = c.technique

(* Deferred storage recycling: an evicted trace may still be feeding another
   domain's replays, so eviction only marks the entry dead and the last
   group using it returns the chunks to the pool. *)
let entry_drop_locked e =
  if e.ce_dead && e.ce_refs = 0 then Runner.release_trace e.ce_trace

(* [`Live e] holds a reference on the entry's storage (the caller must
   [cache_release] it); [`Summary e] is an evicted entry usable only
   through {!Runner.replay_memo}, which needs no reference. *)
let cache_find c =
  Mutex.lock cache_lock;
  let found = List.find_opt (entry_matches c) !cache in
  let found =
    match found with
    | Some e when not e.ce_dead ->
        incr cache_clock;
        e.ce_stamp <- !cache_clock;
        e.ce_refs <- e.ce_refs + 1;
        `Live e
    | Some e -> `Summary e
    | None -> `Miss
  in
  Mutex.unlock cache_lock;
  (match found with
  | `Live _ -> Vmbp_obs.Registry.add m_cache_live_hits 1
  | `Summary _ -> Vmbp_obs.Registry.add m_cache_memo_hits 1
  | `Miss -> Vmbp_obs.Registry.add m_cache_misses 1);
  found

let cache_release e =
  Mutex.lock cache_lock;
  e.ce_refs <- e.ce_refs - 1;
  entry_drop_locked e;
  Mutex.unlock cache_lock

(* Eviction demotes the least-recently-used live entry to a summary: its
   stream storage is recycled but its memo tables keep answering repeat
   configurations. *)
let evict_to_cap_locked () =
  let cap = cap_bytes () in
  let continue = ref true in
  while !cache_bytes > cap && !continue do
    match List.filter (fun e -> not e.ce_dead) !cache with
    | [] | [ _ ] -> continue := false
    | live ->
        let lru =
          List.fold_left
            (fun acc e -> if e.ce_stamp < acc.ce_stamp then e else acc)
            (List.hd live) (List.tl live)
        in
        cache_bytes := !cache_bytes - lru.ce_bytes;
        lru.ce_dead <- true;
        Vmbp_obs.Registry.add m_cache_evictions 1;
        entry_drop_locked lru
  done

(* Returns the entry now holding the group's trace, with one reference held
   for the caller.  If another domain inserted the same group first, the
   caller's freshly recorded duplicate is recycled and the existing live
   entry is used instead.  A matching dead summary (the re-record path:
   storage was evicted and then a new configuration arrived) is superseded:
   the fresh entry is consed in front of it, and the stale summary is
   unlisted once no domain still reads its memos. *)
let cache_insert c trace =
  let bytes = Runner.trace_bytes trace in
  Mutex.lock cache_lock;
  let entry =
    match
      List.find_opt (fun e -> entry_matches c e && not e.ce_dead) !cache
    with
    | Some e ->
        Runner.release_trace trace;
        incr cache_clock;
        e.ce_stamp <- !cache_clock;
        e.ce_refs <- e.ce_refs + 1;
        e
    | None ->
        incr cache_clock;
        let e =
          {
            ce_workload = c.workload;
            ce_technique = c.technique;
            ce_scale = c.scale;
            ce_trace = trace;
            ce_bytes = bytes;
            ce_stamp = !cache_clock;
            ce_refs = 1;
            ce_dead = false;
          }
        in
        cache :=
          e :: List.filter (fun o -> not (entry_matches c o && o.ce_dead)) !cache;
        cache_bytes := !cache_bytes + bytes;
        Vmbp_obs.Registry.add m_cache_insertions 1;
        evict_to_cap_locked ();
        e
  in
  Mutex.unlock cache_lock;
  entry

let clear_trace_cache () =
  Mutex.lock cache_lock;
  List.iter
    (fun e ->
      e.ce_dead <- true;
      entry_drop_locked e)
    !cache;
  cache := [];
  cache_bytes := 0;
  Mutex.unlock cache_lock

let trace_cache_bytes () =
  Mutex.lock cache_lock;
  let b = !cache_bytes in
  Mutex.unlock cache_lock;
  b

(* ------------------------------------------------------------------ *)
(* Cell identity for the resume journal.

   The key is human-readable and parameter-complete (a collapsed label
   like "static repl" must not alias two different replica counts); the
   fingerprint is a digest of everything else that could change a cell's
   numbers between runs -- scale, the full CPU profile, the predictor
   override, the trace setting -- so a journal written under one
   configuration is never wrongly served to another. *)

let predictor_override_descriptor = function
  | Some p -> Predictor.descriptor p
  | None -> "cpu"

let cpu_descriptor (cpu : Cpu_model.t) =
  Printf.sprintf "%s{%d,%g,%d,%d,%s,%s}" cpu.Cpu_model.name cpu.Cpu_model.mhz
    cpu.Cpu_model.ipc cpu.Cpu_model.mispredict_penalty
    cpu.Cpu_model.icache_miss_penalty
    (Predictor.descriptor cpu.Cpu_model.predictor)
    (Icache.descriptor cpu.Cpu_model.icache)

let cell_key c =
  Printf.sprintf "%s|%s/%s|%s|%s|s%d|%s" c.tag
    (Vmbp_workloads.vm_name c.workload.Vmbp_workloads.vm)
    c.workload.Vmbp_workloads.name
    (Technique.descriptor c.technique)
    c.cpu.Cpu_model.name c.scale
    (predictor_override_descriptor c.predictor)

let config_fingerprint c =
  Digest.to_hex
    (Digest.string
       (String.concat ";"
          [
            "vmbp-journal/1";
            string_of_int c.scale;
            cpu_descriptor c.cpu;
            Technique.descriptor c.technique;
            predictor_override_descriptor c.predictor;
            (if !trace_cap_mb > 0 then "traced" else "direct");
          ]))

(* ------------------------------------------------------------------ *)
(* Full-result cache.

   Experiment batches revisit cells verbatim: the counter figures re-run
   rows of the speedup figures' (workload, technique, CPU) grid, and the
   ablations share cells with the main tables.  A finished cell's payload
   is a few hundred bytes (metric counts, cycles, the session output), so
   every successful outcome is kept for the process lifetime keyed by the
   full configuration, and an exact revisit is served with no simulation
   at all.  Cached runs are treated as immutable by every consumer.
   Workload identity is physical, like the trace cache's: a freshly
   constructed workload can never alias a cached result.  Bypassed under
   [--self-check] (every cell must run a fresh lockstep execution) and
   when caching is disabled outright ([--trace-cap-mb 0]). *)

let result_cache : (string, Vmbp_workloads.t * Runner.run) Hashtbl.t =
  Hashtbl.create 1024

let result_lock = Mutex.create ()

let result_key c =
  Printf.sprintf "%s/%s|%s|%s|s%d|%s"
    (Vmbp_workloads.vm_name c.workload.Vmbp_workloads.vm)
    c.workload.Vmbp_workloads.name
    (Technique.descriptor c.technique)
    (cpu_descriptor c.cpu) c.scale
    (predictor_override_descriptor c.predictor)

let result_enabled () = (not !self_check) && !trace_cap_mb > 0

let result_find c =
  if not (result_enabled ()) then None
  else begin
    Mutex.lock result_lock;
    let found =
      match Hashtbl.find_opt result_cache (result_key c) with
      | Some (w, run) when w == c.workload -> Some run
      | _ -> None
    in
    Mutex.unlock result_lock;
    if found <> None then Vmbp_obs.Registry.add m_result_hits 1;
    found
  end

(* Only genuinely computed successes are stored: journal-served outcomes
   were computed under a possibly different configuration of a previous
   process, and failures may be transient (timeouts, injected faults). *)
let result_store c (t : timed) =
  if result_enabled () && not t.from_journal then
    match t.outcome with
    | Ok run ->
        Mutex.lock result_lock;
        let key = result_key c in
        if not (Hashtbl.mem result_cache key) then
          Hashtbl.add result_cache key (c.workload, run);
        Mutex.unlock result_lock
    | Error _ -> ()

let clear_result_cache () =
  Mutex.lock result_lock;
  Hashtbl.reset result_cache;
  Mutex.unlock result_lock

let journal : Journal.t option ref = ref None

let set_journal ~file ~resume =
  (match !journal with Some j -> Journal.close j | None -> ());
  journal := Some (Journal.open_ ~resume file)

let clear_journal () =
  (match !journal with Some j -> Journal.close j | None -> ());
  journal := None

let journal_stats () = Option.map Journal.stats !journal

(* Persist a freshly computed cell.  Successes are always worth keeping.
   Failures are kept only when they look deterministic: a timeout is
   wall-clock luck and a chaos-armed run's failures are injected, so both
   must be recomputed on resume rather than replayed from disk. *)
let journal_append c (t : timed) =
  match !journal with
  | None -> ()
  | Some j ->
      let worthy =
        (not t.from_journal)
        && t.attempts > 0
        &&
        match t.outcome with
        | Ok _ -> true
        | Error _ -> (not t.timed_out) && not (Faults.armed ())
      in
      if worthy then
        Vmbp_obs.Span.with_ ~name:"journal-append"
          ~args:[ ("cell", cell_name c) ]
        @@ fun () ->
        let outcome =
          match t.outcome with
          | Ok r ->
              Ok
                {
                  Journal.metrics =
                    Metrics.copy r.Runner.result.Engine.metrics;
                  steps = r.Runner.result.Engine.steps;
                  output = r.Runner.output;
                }
          | Error msg -> Error msg
        in
        Journal.append j
          {
            Journal.key = cell_key c;
            fingerprint = config_fingerprint c;
            outcome;
            attempts = t.attempts;
            timed_out = t.timed_out;
          }

(* Rebuild the exact [timed] a live run would have produced from a journal
   entry.  Only integer event counters ever touch the disk; cycles and
   seconds are recomputed through the same {!Cpu_model} arithmetic as a
   live run, so a resumed report is byte-identical by construction.  A
   journaled success is by definition untrapped ({!Runner.run} turns traps
   into [Error] cells before they reach the journal). *)
let timed_of_entry c (e : Journal.entry) =
  let outcome =
    match e.Journal.outcome with
    | Ok s ->
        let m = Metrics.copy s.Journal.metrics in
        Ok
          {
            Runner.workload = c.workload;
            technique = c.technique;
            cpu = c.cpu;
            result =
              {
                Engine.metrics = m;
                cycles = Cpu_model.cycles c.cpu m;
                seconds = Cpu_model.seconds c.cpu m;
                steps = s.Journal.steps;
                trapped = None;
              };
            output = s.Journal.output;
          }
    | Error msg -> Error msg
  in
  {
    cell = c;
    outcome;
    wall_seconds = 0.;
    serve_seconds = 0.;
    mode = Replay;
    attempts = e.Journal.attempts;
    timed_out = e.Journal.timed_out;
    from_journal = true;
    audited = false;
  }

(* ------------------------------------------------------------------ *)
(* Content-addressed result store.

   Where the journal is a per-run crash log (resume only trusts entries
   from a previous process), the store is a durable cross-run result
   service: cells are addressed by the tagless parameter-complete key --
   the same identity the full-result cache uses -- so a store warmed by a
   grid run serves any later query for the same configuration, whatever
   experiment tag asked for it.  Both layers share the record codec
   ({!Vmbp_store.Cellrec}) and the configuration fingerprint, so a
   store-served cell is byte-identical to a freshly computed one by the
   same argument as a journal-resumed cell. *)

(* The store sits below the fault harness in the library graph, so the
   [store-io] chaos point reaches it through this hook. *)
let () = Vmbp_store.Store.io_fault_hook := fun () -> Faults.fire Faults.Store_io

let store : Vmbp_store.Store.t option ref = ref None

let set_store ?shards dir =
  (match !store with Some s -> Vmbp_store.Store.close s | None -> ());
  store := Some (Vmbp_store.Store.open_ ?shards dir)

let clear_store () =
  (match !store with Some s -> Vmbp_store.Store.close s | None -> ());
  store := None

let store_stats () = Option.map Vmbp_store.Store.stats !store
let store_compact () = Option.iter Vmbp_store.Store.compact !store

(* The store key is the full-result cache's identity: tagless, with the
   complete CPU profile spelled out. *)
let store_key = result_key

(* Serve one cell from the store, if present.  Served cells carry
   [from_journal = true]: the flag means "reconstructed from disk, no
   simulator ran", and every downstream policy (no re-append, no result
   cache, no audit) wants exactly that treatment. *)
let store_lookup c =
  match !store with
  | None -> None
  | Some s -> (
      let t0 = Vmbp_sim.Env.now () in
      match
        Vmbp_store.Store.lookup s ~key:(store_key c)
          ~fingerprint:(config_fingerprint c)
      with
      | Some e ->
          let t = timed_of_entry c e in
          Some { t with serve_seconds = Vmbp_sim.Env.now () -. t0 }
      | None -> None)

(* Persist a freshly computed success.  Only [Ok] outcomes are stored --
   failures may be transient and a service must never serve one from
   cache -- and an entry already present (the usual case when the same
   cell appears twice in one batch) is not appended again. *)
let store_append c (t : timed) =
  match !store with
  | None -> ()
  | Some s -> (
      match t.outcome with
      | Ok r when (not t.from_journal) && t.attempts > 0 ->
          let key = store_key c and fingerprint = config_fingerprint c in
          if not (Vmbp_store.Store.mem s ~key ~fingerprint) then
            Vmbp_obs.Span.with_ ~name:"store-append"
              ~args:[ ("key", key) ]
              (fun () ->
                Vmbp_store.Store.append s
                  {
                    Vmbp_store.Cellrec.key;
                    fingerprint;
                    outcome =
                      Ok
                        {
                          Vmbp_store.Cellrec.metrics =
                            Metrics.copy r.Runner.result.Engine.metrics;
                          steps = r.Runner.result.Engine.steps;
                          output = r.Runner.output;
                        };
                    attempts = t.attempts;
                    timed_out = t.timed_out;
                  })
      | _ -> ())

(* ------------------------------------------------------------------ *)
(* Running *)

exception Cell_deadline

(* Run one cell attempt under the watchdog/retry policy.  The body gets a
   poll hook (threaded into the engine's step loop and the trace replay's
   token loop) that raises once the attempt's deadline passes, so direct
   and replayed cells both honour [--cell-timeout] without preemption.
   Deterministic failures ([Runner.Run_failed] traps, or any [Error]
   return) are never retried; a timeout is not retried either (the next
   attempt would hit the same deadline); everything else -- including the
   [cell-raise] chaos point -- counts as transient and is retried up to
   [cell_retries] times with jittered exponential backoff.  Returns
   [(outcome, attempts, timed_out)]. *)
let supervised body =
  let retries = max 0 !cell_retries in
  let rec attempt n =
    let poll =
      let t = !cell_timeout in
      if t > 0. then begin
        let deadline = Vmbp_sim.Env.now () +. t in
        Some
          (fun () ->
            progress_tick ();
            if Vmbp_sim.Env.now () > deadline then raise Cell_deadline)
      end
      else if !progress then Some progress_tick
      else None
    in
    let verdict =
      match
        (* The slow-cell chaos point stalls after the deadline is armed:
           the body's very first poll then converts the stall into a
           timeout, which is exactly the hang the watchdog exists for. *)
        Faults.slow_cell ();
        Faults.cell_raise ();
        (body ?poll () : (Runner.run, string) result)
      with
      | o -> `Done o
      | exception Faults.Worker_killed -> raise Faults.Worker_killed
      | exception Runner.Run_failed msg -> `Done (Error msg)
      | exception Cell_deadline -> `Timeout
      | exception exn -> `Transient (Printexc.to_string exn)
    in
    match verdict with
    | `Done o -> (o, n, false)
    | `Timeout ->
        ( Error (Printf.sprintf "timed out after %gs" !cell_timeout),
          n,
          true )
    | `Transient msg ->
        if n > retries then (Error msg, n, false)
        else begin
          let base = !retry_backoff_s *. float_of_int (1 lsl (n - 1)) in
          Vmbp_sim.Env.sleep (base *. (0.5 +. Faults.jitter ()));
          attempt (n + 1)
        end
  in
  attempt 1

(* Per-cell allocation pressure, from the domain-local GC counters; the
   delta is this domain's minor allocation while the cell ran, which is
   attributable because a cell never migrates between domains. *)
let minor_words () = (Gc.quick_stat ()).Gc.minor_words

let run_cell c =
  let t0 = Vmbp_sim.Env.now () in
  let w0 = minor_words () in
  let outcome, attempts, timed_out =
    Vmbp_obs.Span.with_ ~name:"cell" ~args:[ ("cell", cell_name c) ] (fun () ->
        if !self_check then
          supervised (fun ?poll () ->
              Runner.run_checked ~scale:c.scale ?poll ?predictor:c.predictor
                ~cell:(cell_key c) ~cpu:c.cpu ~technique:c.technique c.workload)
        else
          supervised (fun ?poll () ->
              Ok
                (Runner.run ~scale:c.scale ?poll ?predictor:c.predictor
                   ~cpu:c.cpu ~technique:c.technique c.workload)))
  in
  Vmbp_obs.Registry.observe h_cell_minor_words (minor_words () -. w0);
  {
    cell = c;
    outcome;
    wall_seconds = Vmbp_sim.Env.now () -. t0;
    serve_seconds = 0.;
    mode = Direct;
    attempts;
    timed_out;
    from_journal = false;
    audited = !self_check;
  }

let replay_cell mode tr c =
  let t0 = Vmbp_sim.Env.now () in
  let w0 = minor_words () in
  let outcome, attempts, timed_out =
    Vmbp_obs.Span.with_ ~name:"replay" ~args:[ ("cell", cell_name c) ]
      (fun () ->
        supervised (fun ?poll () ->
            Runner.replay ?poll ?predictor:c.predictor ~cpu:c.cpu tr))
  in
  Vmbp_obs.Registry.observe h_cell_minor_words (minor_words () -. w0);
  {
    cell = c;
    outcome;
    wall_seconds = Vmbp_sim.Env.now () -. t0;
    serve_seconds = 0.;
    mode;
    attempts;
    timed_out;
    from_journal = false;
    audited = false;
  }

(* Replay every cell purely from an evicted entry's memo tables.  All or
   nothing: a group whose cells mix known and new configurations re-records
   instead, so the one engine execution also refreshes the stream for its
   siblings. *)
let memo_cells entry arr idxs =
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | i :: rest -> (
        let c = arr.(i) in
        let t0 = Vmbp_sim.Env.now () in
        match
          Runner.replay_memo ?predictor:c.predictor ~cpu:c.cpu entry.ce_trace
        with
        | None -> None
        | Some outcome ->
            let wall = Vmbp_sim.Env.now () -. t0 in
            go
              (( i,
                 {
                   cell = c;
                   outcome;
                   wall_seconds = wall;
                   (* A memo-served cell ran no simulator: its whole wall
                      time is serving from the summary tables. *)
                   serve_seconds = wall;
                   mode = Replay;
                   attempts = 1;
                   timed_out = false;
                   from_journal = false;
                   audited = false;
                 } )
              :: acc)
              rest)
  in
  go [] idxs

(* ------------------------------------------------------------------ *)
(* Sampled auditing of the fast paths.

   Cells served without a fresh VM execution -- trace replays and
   memo-served summaries (both [mode = Replay]) -- are the ones a silent
   fast-path bug would corrupt, so a deterministic sample of them is
   re-run directly through [Runner.run_result] and compared field for
   field.  The sample is keyed on the cell key alone: the same cells are
   audited on every run of the same grid, with any job count. *)

let same_run (a : Runner.run) (b : Runner.run) =
  a.Runner.result.Engine.metrics = b.Runner.result.Engine.metrics
  && a.Runner.result.Engine.cycles = b.Runner.result.Engine.cycles
  && a.Runner.result.Engine.seconds = b.Runner.result.Engine.seconds
  && a.Runner.result.Engine.steps = b.Runner.result.Engine.steps
  && a.Runner.result.Engine.trapped = b.Runner.result.Engine.trapped
  && a.Runner.output = b.Runner.output

let counters_of_run (r : Runner.run) =
  let m = r.Runner.result.Engine.metrics in
  {
    Audit.predictions = m.Metrics.indirect_branches;
    pred_hits = m.Metrics.indirect_branches - m.Metrics.mispredicts;
    mispredicts = m.Metrics.mispredicts;
    vm_branch_mispredicts = m.Metrics.vm_branch_mispredicts;
    icache_fetches = m.Metrics.icache_fetches;
    icache_hits = m.Metrics.icache_fetches - m.Metrics.icache_misses;
    icache_misses = m.Metrics.icache_misses;
  }

let outcome_counters = function
  | Ok r -> counters_of_run r
  | Error _ -> Audit.zero_counters

let outcome_summary = function
  | Ok (r : Runner.run) ->
      let m = r.Runner.result.Engine.metrics in
      Printf.sprintf "ok (cycles %g, mispredicts %d, icache misses %d)"
        r.Runner.result.Engine.cycles m.Metrics.mispredicts
        m.Metrics.icache_misses
  | Error msg -> Printf.sprintf "error (%s)" msg

let audit_crosscheck c (t : timed) =
  if
    t.from_journal || t.mode <> Replay || !self_check
    || not (Audit.sampled ~key:(cell_key c) ~rate:!audit_sample)
  then t
  else begin
    let t0 = Vmbp_sim.Env.now () in
    let direct =
      Vmbp_obs.Span.with_ ~name:"audit-crosscheck"
        ~args:[ ("cell", cell_name c) ]
        (fun () ->
          Runner.run_result ~scale:c.scale ?predictor:c.predictor ~cpu:c.cpu
            ~technique:c.technique c.workload)
    in
    let agree =
      match (t.outcome, direct) with
      | Ok a, Ok b -> same_run a b
      | Error a, Error b -> a = b
      | _ -> false
    in
    let wall_seconds = t.wall_seconds +. (Vmbp_sim.Env.now () -. t0) in
    if agree then begin
      Audit.note_audited ();
      { t with audited = true; wall_seconds }
    end
    else begin
      let config = Config.make ~cpu:c.cpu ?predictor:c.predictor c.technique in
      let detail =
        Printf.sprintf
          "replayed cell disagrees with a fresh direct run: replay %s, direct \
           %s"
          (outcome_summary t.outcome)
          (outcome_summary direct)
      in
      let d =
        Audit.record_divergence
          {
            Audit.d_cell = cell_key c;
            d_predictor = Config.predictor_kind config;
            d_icache = c.cpu.Cpu_model.icache;
            d_index = -1;
            d_event = None;
            d_fast = outcome_counters t.outcome;
            d_reference = outcome_counters direct;
            d_detail = detail;
            d_artifact = None;
          }
      in
      {
        t with
        audited = true;
        wall_seconds;
        outcome = Error ("audit divergence: " ^ d.Audit.d_detail);
      }
    end
  end

(* One (workload, technique, scale) group: find or record its trace, then
   replay every cell against its own CPU/predictor.  Any recording problem
   (cap exceeded, load/build/run exception) falls back to direct per-cell
   simulation, which reproduces exactly what the pre-trace runner did.
   Every completed cell is journaled the moment its slot is filled, so a
   crash loses at most the group in flight.  Already-filled slots (served
   from the journal, or filled before a degradation rerun) are skipped,
   which makes the group idempotent under fallback. *)
let run_group results arr idxs =
  let finish i t =
    let t = audit_crosscheck arr.(i) t in
    results.(i) <- Some t;
    result_store arr.(i) t;
    Vmbp_obs.Registry.add m_cell_retries (max 0 (t.attempts - 1));
    if t.timed_out then Vmbp_obs.Registry.add m_cell_timeouts 1;
    Vmbp_obs.Registry.observe h_cell_wall t.wall_seconds;
    journal_append arr.(i) t;
    store_append arr.(i) t;
    progress_cell_done ();
    progress_tick ()
  in
  let direct () =
    List.iter
      (fun i -> if results.(i) = None then finish i (run_cell arr.(i)))
      idxs
  in
  (* One banked traversal per group: every distinct pending configuration
     is simulated in a single pass over each of the trace's token streams
     ({!Runner.replay_bank}), so the per-cell replays below are served from
     the memo tables instead of each re-walking the whole trace.  The bank
     runs under the group-level deadline, like recording; any failure (a
     deadline, an invalid configuration) just leaves configurations
     un-memoized, and the per-cell path re-simulates them under its own
     watchdog and reports its own error.  Returns the seconds spent, for
     billing to the group's first live cell. *)
  let bank_group entry idxs =
    match List.filter (fun i -> results.(i) = None) idxs with
    | [] -> 0.
    | pending ->
        let t0 = Vmbp_sim.Env.now () in
        let poll =
          let t = !cell_timeout in
          if t > 0. then begin
            let deadline = t0 +. t in
            Some
              (fun () ->
                progress_tick ();
                if Vmbp_sim.Env.now () > deadline then raise Cell_deadline)
          end
          else if !progress then Some progress_tick
          else None
        in
        (match
           Vmbp_obs.Span.with_ ~name:"bank"
             ~args:[ ("cell", cell_name arr.(List.hd pending)) ]
             (fun () ->
               Runner.replay_bank ?poll
                 ~configs:
                   (List.map
                      (fun i -> (arr.(i).cpu, arr.(i).predictor))
                      pending)
                 entry.ce_trace)
         with
        | fresh -> if fresh > 0 then note_bank fresh
        | exception Faults.Worker_killed -> raise Faults.Worker_killed
        | exception _ -> ());
        Vmbp_sim.Env.now () -. t0
  in
  (* Replay every pending cell of the group from the banked memo tables.
     [extra] -- the group's one engine execution plus the banked traversal
     -- is billed to the first live cell, so summing wall_seconds still
     accounts all work; [first_record] marks the group's first cell as the
     one whose engine run produced the trace. *)
  let replay_group entry ~first_record ~extra idxs =
    let extra = ref (extra +. bank_group entry idxs) in
    List.iteri
      (fun k i ->
        if results.(i) = None then begin
          let timed =
            replay_cell
              (if first_record && k = 0 then Record else Replay)
              entry.ce_trace arr.(i)
          in
          let timed =
            if !extra > 0. then begin
              let e = !extra in
              extra := 0.;
              { timed with wall_seconds = timed.wall_seconds +. e }
            end
            else timed
          in
          finish i timed
        end)
      idxs
  in
  let record_group () =
    let c0 = arr.(List.hd idxs) in
    let t0 = Vmbp_sim.Env.now () in
    (* The record execution serves the whole group but still honours the
       per-cell deadline; a record timeout is caught by [Runner.record]'s
       guard as [`Failed], degrading to direct runs where each cell gets
       its own deadline. *)
    let poll =
      let t = !cell_timeout in
      if t > 0. then begin
        let deadline = t0 +. t in
        Some
          (fun () ->
            progress_tick ();
            if Vmbp_sim.Env.now () > deadline then raise Cell_deadline)
      end
      else if !progress then Some progress_tick
      else None
    in
    match
      Vmbp_obs.Span.with_ ~name:"record"
        ~args:[ ("cell", cell_name c0) ]
        (fun () ->
          Runner.record ~scale:c0.scale ?poll ~cap_bytes:(cap_bytes ())
            ~technique:c0.technique c0.workload)
    with
    | Error (`Overflow | `Failed _) -> direct ()
    | Ok tr ->
        (* Chaos point for the group-level record path: a failure here --
           after recording, before any per-cell guard engages -- must
           degrade to direct runs via the group guard below, never escape
           into the pool. *)
        if Faults.fire Faults.Record_fail then begin
          Runner.release_trace tr;
          raise (Faults.Injected "chaos: injected record failure")
        end;
        let record_seconds = Vmbp_sim.Env.now () -. t0 in
        let entry = cache_insert c0 tr in
        replay_group entry ~first_record:true ~extra:record_seconds idxs;
        cache_release entry
  in
  (* Recording only pays off when the trace serves more than one
     configuration: the recording sink taxes every step, banking decodes
     the stream again, and inserting the trace can evict entries other
     groups would reuse.  A group with at most one unserved cell --
     parameter-sweep points and single-CPU table rows -- is cheaper to
     simulate directly; exact cross-batch revisits of such cells are
     caught by the result cache instead, which costs nothing to fill.
     The choice affects how a cell's numbers are produced, never what
     they are. *)
  let record_or_direct () =
    match List.filter (fun i -> results.(i) = None) idxs with
    | [] | [ _ ] -> direct ()
    | _ -> record_group ()
  in
  (* Serve exact revisits from the full-result cache before any engine or
     trace machinery engages.  Served cells are [Replay]-mode (no VM
     execution produced them here), so sampled auditing covers this fast
     path exactly like trace replays. *)
  let serve_cached () =
    List.iter
      (fun i ->
        if results.(i) = None then begin
          let t0 = Vmbp_sim.Env.now () in
          match result_find arr.(i) with
          | None -> ()
          | Some run ->
              let wall = Vmbp_sim.Env.now () -. t0 in
              finish i
                {
                  cell = arr.(i);
                  outcome = Ok run;
                  wall_seconds = wall;
                  serve_seconds = wall;
                  mode = Replay;
                  attempts = 1;
                  timed_out = false;
                  from_journal = false;
                  audited = false;
                }
        end)
      idxs
  in
  let traced () =
    (* Self-check compares simulators event by event, which only a fresh
       engine execution per cell provides: the trace fast path is
       exactly what is under audit, so it is bypassed. *)
    if !self_check || !trace_cap_mb <= 0 then direct ()
    else
      let c0 = arr.(List.hd idxs) in
      match cache_find c0 with
      | `Live entry ->
          replay_group entry ~first_record:false ~extra:0. idxs;
          cache_release entry
      | `Summary entry -> (
          match
            memo_cells entry arr
              (List.filter (fun i -> results.(i) = None) idxs)
          with
          | Some timed -> List.iter (fun (i, t) -> finish i t) timed
          | None -> record_or_direct ())
      | `Miss -> record_or_direct ()
  in
  (* Group-level guard: anything raised outside the per-cell guards
     (recording machinery, cache bookkeeping, the injected record fault)
     degrades this group to per-cell direct runs instead of escaping into
     the pool.  Worker death is the deliberate exception -- it must escape
     to exercise the supervision layer above. *)
  progress_busy (cell_name arr.(List.hd idxs));
  Vmbp_obs.Registry.gauge_add g_busy_workers 1.;
  Fun.protect
    ~finally:(fun () ->
      Vmbp_obs.Registry.gauge_add g_busy_workers (-1.);
      progress_idle ())
    (fun () ->
      match
        serve_cached ();
        traced ()
      with
      | () -> ()
      | exception Faults.Worker_killed -> raise Faults.Worker_killed
      | exception _ -> direct ())

(* Group cell indices by (workload, technique, scale), preserving first-
   occurrence order and ascending indices within each group. *)
let group_cells arr =
  let groups : (cell * int list ref) list ref = ref [] in
  Array.iteri
    (fun i c ->
      match List.find_opt (fun (c0, _) -> same_group c0 c) !groups with
      | Some (_, l) -> l := i :: !l
      | None -> groups := (c, ref [ i ]) :: !groups)
    arr;
  List.rev_map (fun (_, l) -> List.rev !l) !groups

(* A cell skipped because shutdown was requested before it ran.
   [attempts = 0] keeps it out of the journal: nothing was computed. *)
let interrupted_cell c =
  {
    cell = c;
    outcome = Error "interrupted before this cell ran (partial report)";
    wall_seconds = 0.;
    serve_seconds = 0.;
    mode = Direct;
    attempts = 0;
    timed_out = false;
    from_journal = false;
    audited = false;
  }

(* A group abandoned after the respawn budget ran out. *)
let abandoned_cell c =
  {
    cell = c;
    outcome = Error "worker died repeatedly on this cell's group";
    wall_seconds = 0.;
    serve_seconds = 0.;
    mode = Direct;
    attempts = 0;
    timed_out = false;
    from_journal = false;
    audited = false;
  }

(* How many rounds of worker respawning the pool tolerates before it gives
   the surviving groups up as poisoned.  Far above anything a real fault
   produces; purely a livelock backstop for probabilistic chaos specs. *)
let max_respawn_rounds = 64

(* Pool supervision.  A worker that hits [Worker_killed] stops consuming
   the queue -- from the pool's point of view the domain is dead -- but
   first parks its group on the orphan list.  After the round's domains
   are joined, the supervisor respawns a fresh pool over the orphans plus
   whatever the dead workers left in the queue, so queued cells survive
   any number of worker deaths (up to the livelock backstop). *)
let run_pool ~jobs results arr groups =
  let rec round n groups =
    let q = queue_create () in
    List.iter (fun g -> queue_push q g) groups;
    queue_close q;
    let orphan_lock = Mutex.create () in
    let orphans = ref [] in
    let worker () =
      let rec loop () =
        if shutting_down () then ()
        else
          match queue_take q with
          | None -> ()
          | Some g -> (
              (* Distinct groups: no two domains ever write the same
                 index. *)
              match
                Faults.worker_death ();
                run_group results arr g
              with
              | () -> loop ()
              | exception Faults.Worker_killed ->
                  Mutex.lock orphan_lock;
                  orphans := g :: !orphans;
                  Mutex.unlock orphan_lock)
      in
      loop ()
    in
    let spawned = min (jobs - 1) (List.length groups - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains;
    (* Anything still in the queue was stranded by dying workers. *)
    let rec drain acc =
      match queue_take q with Some g -> drain (g :: acc) | None -> List.rev acc
    in
    let pending = List.rev !orphans @ drain [] in
    if pending <> [] && not (shutting_down ()) then begin
      note_respawns (List.length !orphans);
      if n >= max_respawn_rounds then
        List.iter
          (fun g ->
            match
              Faults.worker_death ();
              run_group results arr g
            with
            | () -> ()
            | exception Faults.Worker_killed ->
                List.iter
                  (fun i ->
                    if results.(i) = None then
                      results.(i) <- Some (abandoned_cell arr.(i)))
                  g)
          pending
      else round (n + 1) pending
    end
  in
  round 0 groups

let run_cells ?jobs cells =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> !default_jobs)
  in
  let arr = Array.of_list cells in
  let results = Array.make (Array.length arr) None in
  (* Resume pre-pass: serve journaled cells before planning any work, so a
     fully journaled group neither records nor replays anything. *)
  progress_begin (Array.length arr);
  (match !journal with
  | None -> ()
  | Some j ->
      Vmbp_obs.Span.with_ ~name:"journal-serve" (fun () ->
          Array.iteri
            (fun i c ->
              let t0 = Vmbp_sim.Env.now () in
              match
                Journal.lookup j ~key:(cell_key c)
                  ~fingerprint:(config_fingerprint c)
              with
              | Some e ->
                  let t = timed_of_entry c e in
                  (* A journal-served cell re-ran no simulator; the lookup
                     and reconstruction time is all it cost. *)
                  let serve = Vmbp_sim.Env.now () -. t0 in
                  results.(i) <- Some { t with serve_seconds = serve };
                  progress_cell_done ()
              | None -> ())
            arr));
  (* Store pre-pass: same shape as the journal's, consulted second so an
     installed journal keeps its resume semantics (and its stats) for
     cells both layers hold. *)
  (match !store with
  | None -> ()
  | Some _ ->
      Vmbp_obs.Span.with_ ~name:"store-serve" (fun () ->
          Array.iteri
            (fun i c ->
              if results.(i) = None then
                match store_lookup c with
                | Some t ->
                    results.(i) <- Some t;
                    progress_cell_done ()
                | None -> ())
            arr));
  let groups =
    List.filter_map
      (fun g ->
        match List.filter (fun i -> results.(i) = None) g with
        | [] -> None
        | g -> Some g)
      (group_cells arr)
  in
  let ngroups = List.length groups in
  if ngroups = 0 then ()
  else if jobs = 1 || ngroups <= 1 then
    (* Sequential path, bit-for-bit the reference for the pool.  A worker
       death here has no pool above it to respawn into, so it escapes
       [run_cells] entirely -- deliberately: it is the fault harness's
       stand-in for a killed process (the journal keeps everything
       completed so far; the harness maps it to a resumable exit). *)
    List.iter
      (fun g ->
        if not (shutting_down ()) then begin
          Faults.worker_death ();
          run_group results arr g
        end)
      groups
  else run_pool ~jobs results arr groups;
  progress_end ();
  let out =
    Array.to_list
      (Array.mapi
         (fun i r ->
           match r with
           | Some r -> r
           | None ->
               (* Only a graceful shutdown leaves holes: the cell was
                  skipped, and the harness marks the report partial. *)
               interrupted_cell arr.(i))
         results)
  in
  record out;
  out

let matrix ?(scale = 1) ?jobs ?(tag = "matrix") ~cpu ~techniques workloads =
  let cells =
    List.concat_map
      (fun w ->
        List.map (fun t -> cell ~tag ~scale ~cpu ~technique:t w) techniques)
      workloads
  in
  let results = run_cells ?jobs cells in
  let nt = List.length techniques in
  let rec regroup ws rs =
    match ws with
    | [] -> []
    | w :: ws' ->
        let rec split k acc rs =
          if k = 0 then (List.rev acc, rs)
          else
            match rs with
            | r :: rs' -> split (k - 1) (r :: acc) rs'
            | [] -> assert false
        in
        let row, rest = split nt [] rs in
        (w, List.map (fun r -> (r.cell.technique, r.outcome)) row)
        :: regroup ws' rest
  in
  regroup workloads results

(* ------------------------------------------------------------------ *)
(* JSON summary *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_of_timed t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"tag\":\"%s\"" (json_escape t.cell.tag);
  add ",\"vm\":\"%s\""
    (json_escape (Vmbp_workloads.vm_name t.cell.workload.Vmbp_workloads.vm));
  add ",\"workload\":\"%s\""
    (json_escape t.cell.workload.Vmbp_workloads.name);
  add ",\"technique\":\"%s\"" (json_escape (Technique.name t.cell.technique));
  add ",\"cpu\":\"%s\"" (json_escape t.cell.cpu.Cpu_model.name);
  add ",\"scale\":%d" t.cell.scale;
  (match t.cell.predictor with
  | Some p -> add ",\"predictor\":\"%s\"" (json_escape (Predictor.kind_name p))
  | None -> ());
  (match t.outcome with
  | Ok r ->
      let m = r.Runner.result.Engine.metrics in
      add ",\"ok\":true";
      add ",\"cycles\":%s" (json_float r.Runner.result.Engine.cycles);
      add ",\"mispredict_rate\":%s"
        (json_float (Metrics.misprediction_rate m));
      add ",\"mispredicts\":%d" m.Metrics.mispredicts;
      add ",\"icache_misses\":%d" m.Metrics.icache_misses;
      add ",\"vm_instrs\":%d" m.Metrics.vm_instrs;
      add ",\"code_bytes\":%d" m.Metrics.code_bytes
  | Error msg -> add ",\"ok\":false,\"error\":\"%s\"" (json_escape msg));
  add ",\"mode\":\"%s\"" (mode_name t.mode);
  add ",\"attempts\":%d" t.attempts;
  add ",\"timed_out\":%b" t.timed_out;
  add ",\"from_journal\":%b" t.from_journal;
  if t.audited then add ",\"audited\":true";
  add ",\"wall_seconds\":%s" (json_float t.wall_seconds);
  add ",\"serve_seconds\":%s" (json_float t.serve_seconds);
  add "}";
  Buffer.contents b

let json_summary ?jobs results =
  let jobs = match jobs with Some j -> max 1 j | None -> !default_jobs in
  let total = List.fold_left (fun a t -> a +. t.wall_seconds) 0. results in
  let wall m =
    List.fold_left
      (fun a t -> if t.mode = m then a +. t.wall_seconds else a)
      0. results
  in
  (* [engine_runs] counts cells whose numbers came from a fresh VM
     execution: every live direct cell plus one per recorded group.
     Replayed and journal-served cells re-ran no VM semantics; cells
     skipped by a shutdown ([attempts = 0]) ran nothing at all. *)
  let live m =
    List.length
      (List.filter
         (fun t -> t.mode = m && (not t.from_journal) && t.attempts > 0)
         results)
  in
  let countp p = List.length (List.filter p results) in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"vmbp-cells/7\"";
  Buffer.add_string b (Printf.sprintf ",\"jobs\":%d" jobs);
  Buffer.add_string b
    (Printf.sprintf ",\"cells\":%d" (List.length results));
  Buffer.add_string b
    (Printf.sprintf ",\"engine_runs\":%d" (live Direct + live Record));
  Buffer.add_string b (Printf.sprintf ",\"replays\":%d" (live Replay));
  Buffer.add_string b
    (Printf.sprintf ",\"from_journal\":%d"
       (countp (fun t -> t.from_journal)));
  Buffer.add_string b
    (Printf.sprintf ",\"retries\":%d"
       (List.fold_left (fun a t -> a + max 0 (t.attempts - 1)) 0 results));
  Buffer.add_string b
    (Printf.sprintf ",\"timeouts\":%d" (countp (fun t -> t.timed_out)));
  Buffer.add_string b
    (Printf.sprintf ",\"interrupted\":%d"
       (countp (fun t -> t.attempts = 0 && not t.from_journal)));
  Buffer.add_string b
    (Printf.sprintf ",\"injected_faults\":%d" (Faults.total_injected ()));
  Buffer.add_string b
    (Printf.sprintf ",\"worker_respawns\":%d" (worker_respawns ()));
  (* vmbp-cells/5: banked-replay counters since process start --
     [bank_replays] counts single-pass group traversals that simulated at
     least one fresh configuration, [banked_configs] the configurations
     those passes simulated. *)
  Buffer.add_string b
    (Printf.sprintf ",\"bank_replays\":%d" (bank_replays ()));
  Buffer.add_string b
    (Printf.sprintf ",\"banked_configs\":%d" (banked_configs ()));
  (* vmbp-cells/6: decode-once translation counters since process start --
     [translations] counts full layout translations built by the engine
     (plan-cache misses and uncacheable profiled runs), [plan_reuses]
     counts translations instantiated from a cached plan by array blits,
     [result_hits] counts cells served verbatim from the full-result
     cache, and [translate_wall_seconds] is the wall clock spent building
     or instantiating translations. *)
  let registry_counter name =
    match Vmbp_obs.Registry.find_counter name with
    | Some n -> Int64.to_int n
    | None -> 0
  in
  Buffer.add_string b
    (Printf.sprintf ",\"translations\":%d"
       (registry_counter "engine.translations"));
  Buffer.add_string b
    (Printf.sprintf ",\"plan_reuses\":%d"
       (registry_counter "engine.plan_reuses"));
  Buffer.add_string b
    (Printf.sprintf ",\"result_hits\":%d"
       (registry_counter "result_cache.hits"));
  Buffer.add_string b
    (Printf.sprintf ",\"translate_wall_seconds\":%s"
       (json_float
          (Vmbp_obs.Registry.gauge_value
             (Vmbp_obs.Registry.gauge "engine.translate_wall_seconds"))));
  (* vmbp-cells/7: report-service counters since process start --
     [store_hits]/[store_misses] count content-addressed store lookups,
     [coalesced] counts queries merged onto an identical in-flight miss,
     [shed] counts requests refused by admission control, and
     [degraded_seconds] is the time the service spent in store-only
     degradation.  All read from the registry so the summary works in
     the service process and reads zero elsewhere. *)
  Buffer.add_string b
    (Printf.sprintf ",\"store_hits\":%d" (registry_counter "store.hits"));
  Buffer.add_string b
    (Printf.sprintf ",\"store_misses\":%d" (registry_counter "store.misses"));
  Buffer.add_string b
    (Printf.sprintf ",\"coalesced\":%d" (registry_counter "service.coalesced"));
  Buffer.add_string b
    (Printf.sprintf ",\"shed\":%d" (registry_counter "service.shed"));
  Buffer.add_string b
    (Printf.sprintf ",\"degraded_seconds\":%s"
       (json_float
          (Vmbp_obs.Registry.gauge_value
             (Vmbp_obs.Registry.gauge "service.degraded_seconds"))));
  (* Differential-checking counters (vmbp-cells/3): [audited] counts
     cells cross-checked against an oracle in this result set;
     [divergences] counts oracle disagreements recorded since the audit
     statistics were last reset (any divergence also fails its cell). *)
  Buffer.add_string b
    (Printf.sprintf ",\"self_check\":%b" !self_check);
  Buffer.add_string b
    (Printf.sprintf ",\"audit_sample\":%s" (json_float !audit_sample));
  Buffer.add_string b
    (Printf.sprintf ",\"audited\":%d" (countp (fun t -> t.audited)));
  Buffer.add_string b
    (Printf.sprintf ",\"divergences\":%d" (Audit.divergence_count ()));
  (match journal_stats () with
  | None -> ()
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"journal\":{\"loaded\":%d,\"served\":%d,\"appended\":%d,\"write_errors\":%d,\"truncated\":%d}"
           s.Journal.loaded s.Journal.served s.Journal.appended
           s.Journal.write_errors s.Journal.truncated));
  (match store_stats () with
  | None -> ()
  | Some s ->
      Buffer.add_string b
        (Printf.sprintf
           ",\"store\":{\"entries\":%d,\"shards\":%d,\"loaded\":%d,\"served\":%d,\"missed\":%d,\"appended\":%d,\"write_errors\":%d,\"corrupt\":%d,\"compactions\":%d}"
           s.Vmbp_store.Store.entries s.Vmbp_store.Store.shards
           s.Vmbp_store.Store.loaded s.Vmbp_store.Store.served
           s.Vmbp_store.Store.missed s.Vmbp_store.Store.appended
           s.Vmbp_store.Store.write_errors s.Vmbp_store.Store.corrupt
           s.Vmbp_store.Store.compactions));
  Buffer.add_string b
    (Printf.sprintf ",\"trace_cap_mb\":%d" !trace_cap_mb);
  Buffer.add_string b
    (Printf.sprintf ",\"cell_wall_seconds\":%s" (json_float total));
  Buffer.add_string b
    (Printf.sprintf ",\"direct_wall_seconds\":%s" (json_float (wall Direct)));
  Buffer.add_string b
    (Printf.sprintf ",\"record_wall_seconds\":%s" (json_float (wall Record)));
  Buffer.add_string b
    (Printf.sprintf ",\"replay_wall_seconds\":%s" (json_float (wall Replay)));
  (* vmbp-cells/4: time spent serving cells without any simulation at all
     (journal lookups and memo-table replays). *)
  Buffer.add_string b
    (Printf.sprintf ",\"serve_wall_seconds\":%s"
       (json_float
          (List.fold_left (fun a t -> a +. t.serve_seconds) 0. results)));
  Buffer.add_string b ",\"results\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (json_of_timed t))
    results;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_json_summary ?jobs ~file results =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_summary ?jobs results))

open Vmbp_core
open Vmbp_machine

(* ------------------------------------------------------------------ *)
(* Cells *)

type cell = {
  tag : string;
  workload : Vmbp_workloads.t;
  technique : Technique.t;
  cpu : Cpu_model.t;
  scale : int;
  predictor : Predictor.kind option;
}

type timed = {
  cell : cell;
  outcome : (Runner.run, string) result;
  wall_seconds : float;
}

let default_jobs = ref 1

let cell ?(tag = "") ?(scale = 1) ?predictor ~cpu ~technique workload =
  { tag; workload; technique; cpu; scale; predictor }

let cell_name c =
  Printf.sprintf "%s/%s/%s/%s%s"
    (Vmbp_workloads.vm_name c.workload.Vmbp_workloads.vm)
    c.workload.Vmbp_workloads.name
    (Technique.name c.technique)
    c.cpu.Cpu_model.name
    (if c.scale = 1 then "" else Printf.sprintf "@%d" c.scale)

(* ------------------------------------------------------------------ *)
(* Shared work queue: one producer, [jobs] consumers.  All cells are
   enqueued before the workers start, but the queue is written for the
   general case: consumers block on the condition until an item arrives or
   the queue is closed. *)

type 'a work_queue = {
  items : 'a Queue.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  mutable closed : bool;
}

let queue_create () =
  {
    items = Queue.create ();
    lock = Mutex.create ();
    nonempty = Condition.create ();
    closed = false;
  }

let queue_push q x =
  Mutex.lock q.lock;
  Queue.push x q.items;
  Condition.signal q.nonempty;
  Mutex.unlock q.lock

let queue_close q =
  Mutex.lock q.lock;
  q.closed <- true;
  Condition.broadcast q.nonempty;
  Mutex.unlock q.lock

let queue_take q =
  Mutex.lock q.lock;
  let rec wait () =
    match Queue.take_opt q.items with
    | Some x ->
        Mutex.unlock q.lock;
        Some x
    | None ->
        if q.closed then begin
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.nonempty q.lock;
          wait ()
        end
  in
  wait ()

(* ------------------------------------------------------------------ *)
(* The session log: every cell run through this module is recorded so the
   harnesses can dump one machine-readable summary at exit. *)

let log : timed list ref = ref []
let log_lock = Mutex.create ()

(* Stored newest-first; drained in chronological order. *)
let record results =
  Mutex.lock log_lock;
  log := List.rev_append results !log;
  Mutex.unlock log_lock

let drain_log () =
  Mutex.lock log_lock;
  let l = !log in
  log := [];
  Mutex.unlock log_lock;
  List.rev l

(* ------------------------------------------------------------------ *)
(* Running *)

let run_cell c =
  let t0 = Unix.gettimeofday () in
  let outcome =
    Runner.run_result ~scale:c.scale ?predictor:c.predictor ~cpu:c.cpu
      ~technique:c.technique c.workload
  in
  { cell = c; outcome; wall_seconds = Unix.gettimeofday () -. t0 }

let run_cells ?jobs cells =
  let jobs =
    max 1 (match jobs with Some j -> j | None -> !default_jobs)
  in
  let arr = Array.of_list cells in
  let n = Array.length arr in
  let results = Array.make n None in
  if jobs = 1 || n <= 1 then
    (* Sequential path, bit-for-bit the reference for the pool. *)
    Array.iteri (fun i c -> results.(i) <- Some (run_cell c)) arr
  else begin
    let q = queue_create () in
    Array.iteri (fun i c -> queue_push q (i, c)) arr;
    queue_close q;
    let worker () =
      let rec loop () =
        match queue_take q with
        | None -> ()
        | Some (i, c) ->
            (* Distinct slots: no two domains ever write the same index. *)
            results.(i) <- Some (run_cell c);
            loop ()
      in
      loop ()
    in
    let spawned = min (jobs - 1) (n - 1) in
    let domains = Array.init spawned (fun _ -> Domain.spawn worker) in
    worker ();
    Array.iter Domain.join domains
  end;
  let out =
    Array.to_list
      (Array.map
         (function Some r -> r | None -> assert false (* every slot filled *))
         results)
  in
  record out;
  out

let matrix ?(scale = 1) ?jobs ?(tag = "matrix") ~cpu ~techniques workloads =
  let cells =
    List.concat_map
      (fun w ->
        List.map (fun t -> cell ~tag ~scale ~cpu ~technique:t w) techniques)
      workloads
  in
  let results = run_cells ?jobs cells in
  let nt = List.length techniques in
  let rec regroup ws rs =
    match ws with
    | [] -> []
    | w :: ws' ->
        let rec split k acc rs =
          if k = 0 then (List.rev acc, rs)
          else
            match rs with
            | r :: rs' -> split (k - 1) (r :: acc) rs'
            | [] -> assert false
        in
        let row, rest = split nt [] rs in
        (w, List.map (fun r -> (r.cell.technique, r.outcome)) row)
        :: regroup ws' rest
  in
  regroup workloads results

(* ------------------------------------------------------------------ *)
(* JSON summary *)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let json_of_timed t =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"tag\":\"%s\"" (json_escape t.cell.tag);
  add ",\"vm\":\"%s\""
    (json_escape (Vmbp_workloads.vm_name t.cell.workload.Vmbp_workloads.vm));
  add ",\"workload\":\"%s\""
    (json_escape t.cell.workload.Vmbp_workloads.name);
  add ",\"technique\":\"%s\"" (json_escape (Technique.name t.cell.technique));
  add ",\"cpu\":\"%s\"" (json_escape t.cell.cpu.Cpu_model.name);
  add ",\"scale\":%d" t.cell.scale;
  (match t.cell.predictor with
  | Some p -> add ",\"predictor\":\"%s\"" (json_escape (Predictor.kind_name p))
  | None -> ());
  (match t.outcome with
  | Ok r ->
      let m = r.Runner.result.Engine.metrics in
      add ",\"ok\":true";
      add ",\"cycles\":%s" (json_float r.Runner.result.Engine.cycles);
      add ",\"mispredict_rate\":%s"
        (json_float (Metrics.misprediction_rate m));
      add ",\"mispredicts\":%d" m.Metrics.mispredicts;
      add ",\"icache_misses\":%d" m.Metrics.icache_misses;
      add ",\"vm_instrs\":%d" m.Metrics.vm_instrs;
      add ",\"code_bytes\":%d" m.Metrics.code_bytes
  | Error msg -> add ",\"ok\":false,\"error\":\"%s\"" (json_escape msg));
  add ",\"wall_seconds\":%s" (json_float t.wall_seconds);
  add "}";
  Buffer.contents b

let json_summary ?jobs results =
  let jobs = match jobs with Some j -> max 1 j | None -> !default_jobs in
  let total = List.fold_left (fun a t -> a +. t.wall_seconds) 0. results in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"vmbp-cells/1\"";
  Buffer.add_string b (Printf.sprintf ",\"jobs\":%d" jobs);
  Buffer.add_string b
    (Printf.sprintf ",\"cells\":%d" (List.length results));
  Buffer.add_string b
    (Printf.sprintf ",\"cell_wall_seconds\":%s" (json_float total));
  Buffer.add_string b ",\"results\":[";
  List.iteri
    (fun i t ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      Buffer.add_string b (json_of_timed t))
    results;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

let write_json_summary ?jobs ~file results =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (json_summary ?jobs results))

(* Deterministic fault injection: named points armed from a [--chaos SPEC]
   string, counted and fired under one lock so concurrent workers see a
   consistent opportunity ordering on count-based specs.  Probabilistic
   specs and retry jitter draw from one seeded splitmix64 stream, so a
   chaos run reproduces exactly given the same spec and arrival order. *)

type point =
  | Cell_raise
  | Record_fail
  | Slow_cell
  | Journal_io
  | Worker_death
  | Conn_drop
  | Store_io
  | Slow_client
  | Pool_wedge

let point_name = function
  | Cell_raise -> "cell-raise"
  | Record_fail -> "record-fail"
  | Slow_cell -> "slow-cell"
  | Journal_io -> "journal-io"
  | Worker_death -> "worker-death"
  | Conn_drop -> "conn-drop"
  | Store_io -> "store-io"
  | Slow_client -> "slow-client"
  | Pool_wedge -> "pool-wedge"

let all_points =
  [
    Cell_raise;
    Record_fail;
    Slow_cell;
    Journal_io;
    Worker_death;
    Conn_drop;
    Store_io;
    Slow_client;
    Pool_wedge;
  ]

let point_index = function
  | Cell_raise -> 0
  | Record_fail -> 1
  | Slow_cell -> 2
  | Journal_io -> 3
  | Worker_death -> 4
  | Conn_drop -> 5
  | Store_io -> 6
  | Slow_client -> 7
  | Pool_wedge -> 8

(* Points that stall rather than fail carry a per-fire duration,
   overridable with [POINT=...@DUR]. *)
let default_duration = function
  | Slow_cell -> 0.05
  | Slow_client -> 0.2
  | Pool_wedge -> 0.5
  | _ -> 0.

let timed_point p = default_duration p > 0.

exception Injected of string
exception Worker_killed

(* [Count] fires the opportunities numbered [skip .. skip+times-1] (both
   counters burn down as opportunities arrive); [Prob] fires each
   opportunity independently from the seeded stream. *)
type arming = Count of { mutable skip : int; mutable times : int } | Prob of float

type slot = {
  mutable arming : arming option;
  mutable fires : int;
  mutable duration : float;  (* timed points only: seconds stalled per fire *)
}

let slots =
  Array.of_list
    (List.map
       (fun p -> { arming = None; fires = 0; duration = default_duration p })
       all_points)

let lock = Mutex.create ()

(* splitmix64; OCaml's native int is 63-bit, so the stream runs on Int64. *)
let default_seed = 0x5DEECE66DL
let prng = ref default_seed

let next64_locked () =
  let open Int64 in
  prng := add !prng 0x9E3779B97F4A7C15L;
  let z = !prng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let unit_float_locked () =
  (* 53 uniform bits into [0, 1). *)
  Int64.to_float (Int64.shift_right_logical (next64_locked ()) 11)
  /. 9007199254740992.

let jitter () =
  Mutex.lock lock;
  let f = unit_float_locked () in
  Mutex.unlock lock;
  f

let reset_locked () =
  List.iter
    (fun p ->
      let s = slots.(point_index p) in
      s.arming <- None;
      s.fires <- 0;
      s.duration <- default_duration p)
    all_points;
  prng := default_seed

let reset () =
  Mutex.lock lock;
  reset_locked ();
  Mutex.unlock lock

let armed () =
  Mutex.lock lock;
  let a = Array.exists (fun s -> s.arming <> None) slots in
  Mutex.unlock lock;
  a

let fire p =
  let s = slots.(point_index p) in
  Mutex.lock lock;
  let hit =
    match s.arming with
    | None -> false
    | Some (Count c) ->
        if c.skip > 0 then begin
          c.skip <- c.skip - 1;
          false
        end
        else if c.times > 0 then begin
          c.times <- c.times - 1;
          true
        end
        else false
    | Some (Prob p) -> unit_float_locked () < p
  in
  if hit then s.fires <- s.fires + 1;
  Mutex.unlock lock;
  hit

let fired p =
  let s = slots.(point_index p) in
  Mutex.lock lock;
  let n = s.fires in
  Mutex.unlock lock;
  n

let total_injected () =
  Mutex.lock lock;
  let n = Array.fold_left (fun a s -> a + s.fires) 0 slots in
  Mutex.unlock lock;
  n

let cell_raise () =
  if fire Cell_raise then raise (Injected "chaos: injected cell failure")

let record_fail () =
  if fire Record_fail then raise (Injected "chaos: injected record failure")

let slow_cell () =
  if fire Slow_cell then Vmbp_sim.Env.sleep slots.(point_index Slow_cell).duration

let worker_death () = if fire Worker_death then raise Worker_killed

let duration p =
  let s = slots.(point_index p) in
  Mutex.lock lock;
  let d = s.duration in
  Mutex.unlock lock;
  d

let conn_drop () = fire Conn_drop
let store_io () = fire Store_io
let slow_client () = if fire Slow_client then Some (duration Slow_client) else None
let pool_wedge () = if fire Pool_wedge then Some (duration Pool_wedge) else None

(* ------------------------------------------------------------------ *)
(* Spec parsing *)

let point_of_name n = List.find_opt (fun p -> point_name p = n) all_points

let parse_arming v =
  (* N | S+N | P (float < 1) *)
  match String.index_opt v '+' with
  | Some i ->
      let skip = String.sub v 0 i
      and times = String.sub v (i + 1) (String.length v - i - 1) in
      (match (int_of_string_opt skip, int_of_string_opt times) with
      | Some s, Some n when s >= 0 && n > 0 -> Ok (Count { skip = s; times = n })
      | _ -> Error (Printf.sprintf "bad skip+count %S" v))
  | None -> (
      match int_of_string_opt v with
      | Some n when n > 0 -> Ok (Count { skip = 0; times = n })
      | Some _ -> Error (Printf.sprintf "count must be positive in %S" v)
      | None -> (
          match float_of_string_opt v with
          | Some p when p > 0. && p < 1. -> Ok (Prob p)
          | _ -> Error (Printf.sprintf "bad count or probability %S" v)))

let parse_pair pair =
  match String.index_opt pair '=' with
  | None -> Error (Printf.sprintf "expected name=value, got %S" pair)
  | Some i ->
      let name = String.sub pair 0 i
      and value = String.sub pair (i + 1) (String.length pair - i - 1) in
      if name = "seed" then
        match Int64.of_string_opt value with
        | Some s ->
            prng := s;
            Ok ()
        | None -> Error (Printf.sprintf "bad seed %S" value)
      else
        match point_of_name name with
        | None -> Error (Printf.sprintf "unknown injection point %S" name)
        | Some p -> (
            let value, duration =
              match String.index_opt value '@' with
              | Some j when timed_point p ->
                  ( String.sub value 0 j,
                    float_of_string_opt
                      (String.sub value (j + 1) (String.length value - j - 1))
                  )
              | _ -> (value, Some slots.(point_index p).duration)
            in
            match (parse_arming value, duration) with
            | Ok arming, Some d when d >= 0. ->
                let s = slots.(point_index p) in
                s.arming <- Some arming;
                s.duration <- d;
                Ok ()
            | Ok _, _ -> Error (Printf.sprintf "bad duration in %S" pair)
            | (Error _ as e), _ -> e)

let configure spec =
  Mutex.lock lock;
  reset_locked ();
  let rec go = function
    | [] -> Ok ()
    | pair :: rest -> ( match parse_pair pair with Ok () -> go rest | e -> e)
  in
  let r =
    go
      (String.split_on_char ',' spec
      |> List.map String.trim
      |> List.filter (fun s -> s <> ""))
  in
  (match r with Error _ -> reset_locked () | Ok () -> ());
  Mutex.unlock lock;
  r

open Vmbp_core
open Vmbp_machine

(* ------------------------------------------------------------------ *)
(* Events and counters *)

type event =
  | Dispatch of { branch : int; target : int; opcode : int; vm_transfer : bool }
  | Fetch of { addr : int; bytes : int }

type counters = {
  predictions : int;
  pred_hits : int;
  mispredicts : int;
  vm_branch_mispredicts : int;
  icache_fetches : int;
  icache_hits : int;
  icache_misses : int;
}

let zero_counters =
  {
    predictions = 0;
    pred_hits = 0;
    mispredicts = 0;
    vm_branch_mispredicts = 0;
    icache_fetches = 0;
    icache_hits = 0;
    icache_misses = 0;
  }

let pp_counters c =
  Printf.sprintf
    "predictions=%d hits=%d mispredicts=%d vm-mispredicts=%d fetches=%d \
     icache-hits=%d icache-misses=%d"
    c.predictions c.pred_hits c.mispredicts c.vm_branch_mispredicts
    c.icache_fetches c.icache_hits c.icache_misses

(* ------------------------------------------------------------------ *)
(* Simulators behind a uniform face.

   A [sim] answers one dispatch or one fetch at a time and keeps its own
   running counters, so the checker can compare a fast simulator and a
   reference model event by event without knowing either's insides.  The
   fast constructor wraps the production {!Predictor}/{!Icache}; the
   reference constructor wraps {!Reference}.  Tests inject deliberately
   broken sims through the same face (mutation testing). *)

type sim = {
  sim_predict : branch:int -> target:int -> opcode:int -> bool;
  sim_fetch : addr:int -> bytes:int -> int * int;
      (* (hits, misses) contributed by this fetch *)
  sim_counters : unit -> counters;
}

let counting ~predict ~fetch =
  let c = ref zero_counters in
  {
    sim_predict =
      (fun ~branch ~target ~opcode ->
        let correct = predict ~branch ~target ~opcode in
        let v = !c in
        c :=
          {
            v with
            predictions = v.predictions + 1;
            pred_hits = (v.pred_hits + if correct then 1 else 0);
            mispredicts = (v.mispredicts + if correct then 0 else 1);
          };
        correct);
    sim_fetch =
      (fun ~addr ~bytes ->
        let dh, dm = fetch ~addr ~bytes in
        let v = !c in
        c :=
          {
            v with
            icache_fetches = v.icache_fetches + dh + dm;
            icache_hits = v.icache_hits + dh;
            icache_misses = v.icache_misses + dm;
          };
        (dh, dm));
    sim_counters = (fun () -> !c);
  }

let fast_sim ~predictor ~icache =
  let p = Predictor.create predictor in
  let ic = Icache.create icache in
  let hits = ref 0 and misses = ref 0 in
  counting
    ~predict:(fun ~branch ~target ~opcode ->
      Predictor.access p ~branch ~target ~opcode)
    ~fetch:(fun ~addr ~bytes ->
      let h0 = !hits and m0 = !misses in
      Icache.fetch ic ~addr ~bytes ~hits ~misses;
      (!hits - h0, !misses - m0))

let reference_sim ~predictor ~icache =
  let p = Reference.create_predictor predictor in
  let ic = Reference.create_icache icache in
  let hits = ref 0 and misses = ref 0 in
  counting
    ~predict:(fun ~branch ~target ~opcode ->
      Reference.access p ~branch ~target ~opcode)
    ~fetch:(fun ~addr ~bytes ->
      let h0 = !hits and m0 = !misses in
      Reference.fetch ic ~addr ~bytes ~hits ~misses;
      (!hits - h0, !misses - m0))

(* ------------------------------------------------------------------ *)
(* Divergence records *)

type divergence = {
  d_cell : string;
  d_predictor : Predictor.kind;
  d_icache : Icache.config;
  d_index : int;  (** first divergent event; -1 for result-level mismatches *)
  d_event : event option;
  d_fast : counters;  (** fast-side counters after the divergent event *)
  d_reference : counters;
  d_detail : string;
  d_artifact : string option;  (** path of the written repro file, if any *)
}

let describe d =
  Printf.sprintf "%s: %s (event %d)\n  fast:      %s\n  reference: %s%s"
    d.d_cell d.d_detail d.d_index (pp_counters d.d_fast)
    (pp_counters d.d_reference)
    (match d.d_artifact with
    | Some p -> "\n  repro: " ^ p
    | None -> "")

(* ------------------------------------------------------------------ *)
(* Lockstep dual run *)

exception Diverged_at of divergence

let dispatch_event ~branch ~target ~opcode ~vm_transfer =
  Dispatch { branch; target; opcode; vm_transfer }

(* Run the engine once, feeding every dispatch and fetch to both
   simulators and stopping at the first event where their answers
   differ.  On agreement the returned result is exactly what
   [Engine.run] would have produced: the fast side here IS the
   production predictor and I-cache (unless a test injects [?fast]). *)
let dual_run ?fuel ?poll ?fast ~cell ~config ~layout ~exec () =
  let cpu = config.Config.cpu in
  let predictor = Config.predictor_kind config in
  let icache = cpu.Cpu_model.icache in
  let fast =
    match fast with Some s -> s | None -> fast_sim ~predictor ~icache
  in
  let refr = reference_sim ~predictor ~icache in
  let m = Metrics.create () in
  let index = ref 0 in
  let fast_vm = ref 0 and ref_vm = ref 0 in
  let diverged ~event ~detail =
    (* [counting] cannot see [vm_transfer]; patch the attribution in
       from the accumulators maintained below. *)
    let patch vm c = { c with vm_branch_mispredicts = vm } in
    raise
      (Diverged_at
         {
           d_cell = cell;
           d_predictor = predictor;
           d_icache = icache;
           d_index = !index;
           d_event = Some event;
           d_fast = patch !fast_vm (fast.sim_counters ());
           d_reference = patch !ref_vm (refr.sim_counters ());
           d_detail = detail;
           d_artifact = None;
         })
  in
  let sink =
    {
      Engine.on_dispatch =
        (fun ~branch ~target ~opcode ~vm_transfer ->
          let pf = fast.sim_predict ~branch ~target ~opcode in
          let pr = refr.sim_predict ~branch ~target ~opcode in
          if (not pf) && vm_transfer then incr fast_vm;
          if (not pr) && vm_transfer then incr ref_vm;
          (* Mirror Engine.run's metric updates for the fast side. *)
          if not pf then begin
            m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
            if vm_transfer then
              m.Metrics.vm_branch_mispredicts <-
                m.Metrics.vm_branch_mispredicts + 1
          end;
          if pf <> pr then
            diverged
              ~event:(dispatch_event ~branch ~target ~opcode ~vm_transfer)
              ~detail:
                (Printf.sprintf
                   "dispatch of branch %#x -> %#x (opcode %d): fast predicted \
                    %s, reference predicted %s"
                   branch target opcode
                   (if pf then "hit" else "miss")
                   (if pr then "hit" else "miss"));
          incr index)
      ;
      on_fetch =
        (fun ~addr ~bytes ~opcode:_ ->
          let fh, fm = fast.sim_fetch ~addr ~bytes in
          let rh, rm = refr.sim_fetch ~addr ~bytes in
          if fh <> rh || fm <> rm then
            diverged ~event:(Fetch { addr; bytes })
              ~detail:
                (Printf.sprintf
                   "fetch of %d bytes at %#x: fast %d hits / %d misses, \
                    reference %d hits / %d misses"
                   bytes addr fh fm rh rm);
          incr index);
    }
  in
  match Engine.run_events ?fuel ?poll ~metrics:m ~layout ~exec ~sink () with
  | steps, trapped ->
      let c = fast.sim_counters () in
      m.Metrics.icache_fetches <- c.icache_fetches;
      m.Metrics.icache_misses <- c.icache_misses;
      m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
      Ok
        {
          Engine.metrics = m;
          cycles = Cpu_model.cycles cpu m;
          seconds = Cpu_model.seconds cpu m;
          steps;
          trapped;
        }
  | exception Diverged_at d -> Error d

(* ------------------------------------------------------------------ *)
(* Event recording (for shrinking and repro artifacts) *)

exception Recorded_enough

(* Largest event stream a repro artifact may hold.  A divergence deeper
   than this still fails the cell with full counters; it just ships
   without a replayable file. *)
let max_artifact_events = 1 lsl 22

let record_events ?fuel ?(limit = max_int) ~layout ~exec () =
  let m = Metrics.create () in
  let events = ref [] in
  let count = ref 0 in
  let note ev =
    events := ev :: !events;
    incr count;
    if !count >= limit then raise Recorded_enough
  in
  let sink =
    {
      Engine.on_dispatch =
        (fun ~branch ~target ~opcode ~vm_transfer ->
          note (dispatch_event ~branch ~target ~opcode ~vm_transfer));
      on_fetch = (fun ~addr ~bytes ~opcode:_ -> note (Fetch { addr; bytes }));
    }
  in
  (try ignore (Engine.run_events ?fuel ~metrics:m ~layout ~exec ~sink ())
   with Recorded_enough -> ());
  let arr = Array.of_list (List.rev !events) in
  arr

(* Replay an event stream through two fresh simulators and return the
   first index where they disagree, with both sides' counters. *)
let check_events ?fast ?reference ~predictor ~icache events =
  let fast =
    match fast with Some s -> s | None -> fast_sim ~predictor ~icache
  in
  let refr =
    match reference with
    | Some s -> s
    | None -> reference_sim ~predictor ~icache
  in
  let fast_c = ref zero_counters and ref_c = ref zero_counters in
  (* VM-branch attribution lives outside [counting] (which cannot see
     [vm_transfer]), accumulated here and patched into the snapshots. *)
  let fast_vm = ref 0 and ref_vm = ref 0 in
  let update () =
    fast_c := { (fast.sim_counters ()) with vm_branch_mispredicts = !fast_vm };
    ref_c := { (refr.sim_counters ()) with vm_branch_mispredicts = !ref_vm }
  in
  let n = Array.length events in
  let rec scan i =
    if i >= n then None
    else
      let disagree, detail =
        match events.(i) with
        | Dispatch { branch; target; opcode; vm_transfer } ->
            let pf = fast.sim_predict ~branch ~target ~opcode in
            let pr = refr.sim_predict ~branch ~target ~opcode in
            if vm_transfer then begin
              if not pf then incr fast_vm;
              if not pr then incr ref_vm
            end;
            update ();
            ( pf <> pr,
              Printf.sprintf
                "dispatch of branch %#x -> %#x (opcode %d): fast predicted %s, \
                 reference predicted %s"
                branch target opcode
                (if pf then "hit" else "miss")
                (if pr then "hit" else "miss") )
        | Fetch { addr; bytes } ->
            let fh, fm = fast.sim_fetch ~addr ~bytes in
            let rh, rm = refr.sim_fetch ~addr ~bytes in
            update ();
            ( fh <> rh || fm <> rm,
              Printf.sprintf
                "fetch of %d bytes at %#x: fast %d hits / %d misses, reference \
                 %d hits / %d misses"
                bytes addr fh fm rh rm )
      in
      if disagree then Some (i, detail, !fast_c, !ref_c) else scan (i + 1)
  in
  scan 0

(* The smallest prefix of [events] that still diverges, by binary search:
   replaying a longer prefix can only add later events, so "prefix of
   length n diverges" is monotone in n. *)
let shrink ?fast_maker ~predictor ~icache events =
  let diverges n =
    let fast = Option.map (fun f -> f ()) fast_maker in
    check_events ?fast ~predictor ~icache (Array.sub events 0 n) <> None
  in
  if not (diverges (Array.length events)) then None
  else begin
    let lo = ref 1 and hi = ref (Array.length events) in
    (* Invariant: prefix of length !hi diverges; !lo - 1 does not. *)
    while !lo < !hi do
      let mid = (!lo + !hi) / 2 in
      if diverges mid then hi := mid else lo := mid + 1
    done;
    Some (Array.sub events 0 !hi)
  end

(* ------------------------------------------------------------------ *)
(* Repro artifacts: a small line-based text format, one event per line *)

let repro_schema = "vmbp-audit-repro/1"

let predictor_to_line (k : Predictor.kind) =
  match k with
  | Predictor.Btb { Btb.entries; associativity; two_bit_counters } ->
      Printf.sprintf "btb %d %d %s" entries associativity
        (if two_bit_counters then "2bc" else "1bc")
  | Predictor.Two_level { Two_level.entries; history } ->
      Printf.sprintf "two-level %d %d" entries history
  | Predictor.Case_block entries -> Printf.sprintf "case-block %d" entries
  | Predictor.Perfect -> "perfect"
  | Predictor.Never -> "never"

let predictor_of_line line : Predictor.kind option =
  match String.split_on_char ' ' line with
  | [ "btb"; e; a; c ] -> (
      match (int_of_string_opt e, int_of_string_opt a, c) with
      | Some entries, Some associativity, "2bc" ->
          Some (Predictor.Btb { Btb.entries; associativity; two_bit_counters = true })
      | Some entries, Some associativity, "1bc" ->
          Some (Predictor.Btb { Btb.entries; associativity; two_bit_counters = false })
      | _ -> None)
  | [ "two-level"; e; h ] -> (
      match (int_of_string_opt e, int_of_string_opt h) with
      | Some entries, Some history -> Some (Predictor.Two_level { Two_level.entries; history })
      | _ -> None)
  | [ "case-block"; e ] ->
      Option.map (fun entries -> Predictor.Case_block entries) (int_of_string_opt e)
  | [ "perfect" ] -> Some Predictor.Perfect
  | [ "never" ] -> Some Predictor.Never
  | _ -> None

let counters_to_line c =
  Printf.sprintf "%d %d %d %d %d %d %d" c.predictions c.pred_hits c.mispredicts
    c.vm_branch_mispredicts c.icache_fetches c.icache_hits c.icache_misses

let counters_of_line line =
  match List.filter_map int_of_string_opt (String.split_on_char ' ' line) with
  | [ predictions; pred_hits; mispredicts; vm; fetches; hits; misses ] ->
      Some
        {
          predictions;
          pred_hits;
          mispredicts;
          vm_branch_mispredicts = vm;
          icache_fetches = fetches;
          icache_hits = hits;
          icache_misses = misses;
        }
  | _ -> None

type repro = {
  r_cell : string;
  r_predictor : Predictor.kind;
  r_icache : Icache.config;
  r_index : int;
  r_detail : string;
  r_fast : counters;
  r_reference : counters;
  r_events : event array;
}

let write_repro ~path d events =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "%s\n" repro_schema;
      Printf.fprintf oc "cell %s\n" (String.escaped d.d_cell);
      Printf.fprintf oc "predictor %s\n" (predictor_to_line d.d_predictor);
      Printf.fprintf oc "icache %d %d %d\n" d.d_icache.Icache.size_bytes
        d.d_icache.Icache.line_bytes d.d_icache.Icache.associativity;
      Printf.fprintf oc "diverged %d\n" d.d_index;
      Printf.fprintf oc "detail %s\n" (String.escaped d.d_detail);
      Printf.fprintf oc "fast %s\n" (counters_to_line d.d_fast);
      Printf.fprintf oc "reference %s\n" (counters_to_line d.d_reference);
      Printf.fprintf oc "events %d\n" (Array.length events);
      Array.iter
        (fun ev ->
          match ev with
          | Dispatch { branch; target; opcode; vm_transfer } ->
              Printf.fprintf oc "D %d %d %d %d\n" branch target opcode
                (if vm_transfer then 1 else 0)
          | Fetch { addr; bytes } -> Printf.fprintf oc "F %d %d\n" addr bytes)
        events)

let load_repro path =
  let parse () =
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let line () = input_line ic in
        let field name =
          let l = line () in
          let prefix = name ^ " " in
          if String.length l < String.length prefix
             || String.sub l 0 (String.length prefix) <> prefix
          then failwith (Printf.sprintf "expected '%s' line" name)
          else String.sub l (String.length prefix)
                 (String.length l - String.length prefix)
        in
        if line () <> repro_schema then failwith "not a vmbp-audit-repro/1 file";
        let r_cell = Scanf.unescaped (field "cell") in
        let r_predictor =
          match predictor_of_line (field "predictor") with
          | Some p -> p
          | None -> failwith "bad predictor line"
        in
        let r_icache =
          match
            List.filter_map int_of_string_opt
              (String.split_on_char ' ' (field "icache"))
          with
          | [ size_bytes; line_bytes; associativity ] ->
              { Icache.size_bytes; line_bytes; associativity }
          | _ -> failwith "bad icache line"
        in
        let r_index =
          match int_of_string_opt (field "diverged") with
          | Some i -> i
          | None -> failwith "bad diverged line"
        in
        let r_detail = Scanf.unescaped (field "detail") in
        let r_fast =
          match counters_of_line (field "fast") with
          | Some c -> c
          | None -> failwith "bad fast counters"
        in
        let r_reference =
          match counters_of_line (field "reference") with
          | Some c -> c
          | None -> failwith "bad reference counters"
        in
        let n =
          match int_of_string_opt (field "events") with
          | Some n when n >= 0 && n <= max_artifact_events -> n
          | _ -> failwith "bad event count"
        in
        let r_events =
          Array.init n (fun _ ->
              match String.split_on_char ' ' (line ()) with
              | [ "D"; b; t; o; v ] -> (
                  match
                    ( int_of_string_opt b,
                      int_of_string_opt t,
                      int_of_string_opt o,
                      v )
                  with
                  | Some branch, Some target, Some opcode, ("0" | "1") ->
                      Dispatch { branch; target; opcode; vm_transfer = v = "1" }
                  | _ -> failwith "bad dispatch event")
              | [ "F"; a; b ] -> (
                  match (int_of_string_opt a, int_of_string_opt b) with
                  | Some addr, Some bytes -> Fetch { addr; bytes }
                  | _ -> failwith "bad fetch event")
              | _ -> failwith "bad event line")
        in
        {
          r_cell;
          r_predictor;
          r_icache;
          r_index;
          r_detail;
          r_fast;
          r_reference;
          r_events;
        })
  in
  match parse () with
  | r -> Ok r
  | exception Failure msg -> Error (Printf.sprintf "%s: %s" path msg)
  | exception End_of_file -> Error (Printf.sprintf "%s: truncated file" path)
  | exception Sys_error msg -> Error msg
  | exception Scanf.Scan_failure msg ->
      Error (Printf.sprintf "%s: %s" path msg)

let replay_repro ?fast ?reference r =
  check_events ?fast ?reference ~predictor:r.r_predictor ~icache:r.r_icache
    r.r_events

(* ------------------------------------------------------------------ *)
(* Global audit statistics (shared by all workers of a run) *)

let stats_mutex = Mutex.create ()
let audited = ref 0
let recorded = ref ([] : divergence list)
let repro_dir = ref "."
let artifact_seq = ref 0

let with_stats f =
  Mutex.lock stats_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock stats_mutex) f

let reset_stats () =
  with_stats (fun () ->
      audited := 0;
      recorded := [];
      artifact_seq := 0)

let note_audited () = with_stats (fun () -> incr audited)
let audited_count () = with_stats (fun () -> !audited)
let divergence_count () = with_stats (fun () -> List.length !recorded)
let divergences () = with_stats (fun () -> List.rev !recorded)

let sanitize s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '.' -> c
      | _ -> '_')
    s

(* Minimize the recorded stream, write the artifact next to the report,
   and remember the divergence for the JSON summary and the exit code.
   [events] is the stream that reproduces [d] ([None] when no replayable
   stream exists, e.g. a replay-vs-direct mismatch at the result level);
   [fast_maker] lets mutation tests shrink against their broken sim. *)
let record_divergence ?fast_maker ?events d =
  let artifact =
    match events with
    | None -> None
    | Some evs when Array.length evs = 0 -> None
    | Some evs -> (
        match
          shrink ?fast_maker ~predictor:d.d_predictor ~icache:d.d_icache evs
        with
        | None -> None
        | Some minimal ->
            let seq = with_stats (fun () -> incr artifact_seq; !artifact_seq) in
            let path =
              Filename.concat !repro_dir
                (Printf.sprintf "vmbp-divergence-%d-%s.repro" seq
                   (sanitize d.d_cell))
            in
            (try
               write_repro ~path d minimal;
               Some path
             with Sys_error _ -> None))
  in
  let d = { d with d_artifact = artifact } in
  with_stats (fun () -> recorded := d :: !recorded);
  d

(* ------------------------------------------------------------------ *)
(* Deterministic sampling for [--audit-sample] *)

(* Keyed on the cell key alone (not on job count or scheduling order), so
   the same cells are audited on every run of the same grid on any
   machine.  The MD5 prefix is mapped to [0, 1). *)
let sampled ~key ~rate =
  if rate <= 0.0 then false
  else if rate >= 1.0 then true
  else begin
    let digest = Digest.string ("vmbp-audit-sample/" ^ key) in
    let v = ref 0 in
    for i = 0 to 6 do
      v := (!v lsl 8) lor Char.code digest.[i]
    done;
    let unit = float_of_int !v /. float_of_int (1 lsl 56) in
    unit < rate
  end

(** Registry of reproduction experiments, one per table and figure of the
    paper's evaluation (plus ablations called out in DESIGN.md).

    Every experiment renders a plain-text report with the same rows/series
    the paper presents; structured accessors used by the test suite live in
    the individual compute functions. *)

type t = {
  id : string;  (** e.g. "fig7" *)
  title : string;
  paper_claim : string;  (** the shape that should hold, from the paper *)
  default_scale : int;
  run : scale:int -> string;
}

val all : t list
val find : string -> t option

(* Structured computations exposed for tests and the bench harness. *)

val speedups :
  scale:int ->
  vm:Vmbp_workloads.vm ->
  cpu:Vmbp_machine.Cpu_model.t ->
  (string * (string * float option) list) list
(** Per workload, the speedup of every paper variant over [plain]
    (Figures 7, 8 and 9).  A failed cell (or a failed baseline) yields
    [None] and the sibling cells still report. *)

val counter_profile :
  scale:int ->
  vm:Vmbp_workloads.vm ->
  workload:string ->
  cpu:Vmbp_machine.Cpu_model.t ->
  (string * float list) list * string list
(** Per variant, the seven metrics of Figures 10-13 normalised to [plain]
    (code bytes raw, in KB); and the metric labels. *)

val static_mix :
  scale:int ->
  vm:Vmbp_workloads.vm ->
  workload:string ->
  cpu:Vmbp_machine.Cpu_model.t ->
  totals:int list ->
  (int * (int * float * int) list) list
(** For each total additional-instruction budget, a series over superinstr
    percentage: [(total, [(percent, cycles, mispredicts)])]
    (Figures 14, 15 and 16). *)

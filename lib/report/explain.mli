(** Mispredict and I-cache-miss attribution: the [explain] subcommand.

    Re-runs one cell with observer hooks attached to the production
    simulators ({!Vmbp_machine.Btb.set_observer} and friends) and
    aggregates every mispredict and cache miss into
    {!Vmbp_obs.Attribution} tables: which VM opcode suffered it, in which
    predictor/cache set, and -- for conflict events -- which opcode's
    entry displaced the victim.  This is the tooling counterpart of the
    paper's Section 7.3 analysis, which attributes the residual
    mispredictions of replicated interpreters to VM branches by reading
    performance counters.

    The attribution is validated two ways: {!run} fails unless the
    attributed totals equal the run's own mispredict and miss counters,
    and {!verify} re-runs the cell under the differential self-check
    ({!Runner.run_checked}) and compares counters across the two runs. *)

type t = {
  run : Runner.run;  (** the attributed run, counters included *)
  pred_kind : Vmbp_machine.Predictor.kind;  (** predictor actually simulated *)
  pred_att : Vmbp_obs.Attribution.t;  (** one entry per mispredict *)
  icache_att : Vmbp_obs.Attribution.t;  (** one entry per I-cache line miss *)
  pred_sets : int;  (** predictor sets (BTB) or table entries (two-level); 0 = no set structure *)
  icache_sets : int;  (** I-cache sets; 0 = infinite cache *)
  iset : Vmbp_vm.Instr_set.t;  (** for rendering opcode names *)
}

val run :
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  (t, string) result
(** Same cell semantics as {!Runner.run} (same fuel, same training-profile
    policy); [Error] on a trapped run or an attribution total that does
    not equal the simulator's own counter. *)

val verify :
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  t ->
  (unit, string) result
(** Run the same cell through {!Runner.run_checked} (production simulators
    cross-checked against the reference models on every event) and require
    the attributed totals to equal the verified counters exactly. *)

val render : ?top:int -> t -> string
(** Human-readable report: header with the run's counters, top-[top]
    (default 10) opcode tables for mispredicts and I-cache misses split
    into cold / wrong-target / conflict, top conflict pairs
    (victim opcode, evicting opcode, set), and per-set event and occupancy
    heatmaps when the simulated structure has sets. *)

open Vmbp_machine

(* One JSON object per line, every field flat (string / int / bool / null),
   written with write(2) + fsync(2) under a lock.  The format is hand
   rolled -- the repo carries no JSON dependency -- and the reader accepts
   exactly what the writer emits; anything else (foreign edits, a line cut
   short by a crash) is skipped and counted, never fatal. *)

type success = { metrics : Metrics.t; steps : int; output : string }

type entry = {
  key : string;
  fingerprint : string;
  outcome : (success, string) result;
  attempts : int;
  timed_out : bool;
}

type stats = {
  loaded : int;
  served : int;
  appended : int;
  write_errors : int;
  truncated : int;
}

type t = {
  j_file : string;
  fd : Unix.file_descr;
  lock : Mutex.t;
  tbl : (string * string, entry) Hashtbl.t;
  mutable closed : bool;
  mutable loaded : int;
  mutable served : int;
  mutable appended : int;
  mutable write_errors : int;
  mutable truncated : int;
}

(* ------------------------------------------------------------------ *)
(* Serialization *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let line_of_entry e =
  let b = Buffer.create 256 in
  let add fmt = Printf.ksprintf (Buffer.add_string b) fmt in
  add "{\"key\":\"%s\"" (escape e.key);
  add ",\"fp\":\"%s\"" (escape e.fingerprint);
  add ",\"attempts\":%d" e.attempts;
  add ",\"timed_out\":%b" e.timed_out;
  (match e.outcome with
  | Ok s ->
      let m = s.metrics in
      add ",\"ok\":true";
      add ",\"steps\":%d" s.steps;
      add ",\"output\":\"%s\"" (escape s.output);
      add ",\"vm_instrs\":%d" m.Metrics.vm_instrs;
      add ",\"native_instrs\":%d" m.Metrics.native_instrs;
      add ",\"dispatches\":%d" m.Metrics.dispatches;
      add ",\"indirect_branches\":%d" m.Metrics.indirect_branches;
      add ",\"mispredicts\":%d" m.Metrics.mispredicts;
      add ",\"vm_branch_mispredicts\":%d" m.Metrics.vm_branch_mispredicts;
      add ",\"icache_fetches\":%d" m.Metrics.icache_fetches;
      add ",\"icache_misses\":%d" m.Metrics.icache_misses;
      add ",\"code_bytes\":%d" m.Metrics.code_bytes;
      add ",\"quickenings\":%d" m.Metrics.quickenings
  | Error msg -> add ",\"ok\":false,\"error\":\"%s\"" (escape msg));
  add "}\n";
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing *)

exception Bad

type v = S of string | I of int | B of bool | Null

let parse_line s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos >= n then raise Bad else s.[!pos] in
  let advance () = incr pos in
  let expect c = if peek () <> c then raise Bad else advance () in
  let literal w =
    String.iter expect w
  in
  let parse_string () =
    expect '"';
    let b = Buffer.create 16 in
    let rec go () =
      let c = peek () in
      advance ();
      if c = '"' then Buffer.contents b
      else if c = '\\' then begin
        let e = peek () in
        advance ();
        (match e with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 'r' -> Buffer.add_char b '\r'
        | 't' -> Buffer.add_char b '\t'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
            if !pos + 4 > n then raise Bad;
            (match int_of_string_opt ("0x" ^ String.sub s !pos 4) with
            (* The writer only \u-escapes ASCII control characters. *)
            | Some code when code < 0x80 ->
                pos := !pos + 4;
                Buffer.add_char b (Char.chr code)
            | _ -> raise Bad)
        | _ -> raise Bad);
        go ()
      end
      else begin
        Buffer.add_char b c;
        go ()
      end
    in
    go ()
  in
  let parse_int () =
    let start = !pos in
    if peek () = '-' then advance ();
    while !pos < n && s.[!pos] >= '0' && s.[!pos] <= '9' do
      advance ()
    done;
    match int_of_string_opt (String.sub s start (!pos - start)) with
    | Some i -> i
    | None -> raise Bad
  in
  let parse_value () =
    match peek () with
    | '"' -> S (parse_string ())
    | 't' ->
        literal "true";
        B true
    | 'f' ->
        literal "false";
        B false
    | 'n' ->
        literal "null";
        Null
    | '-' | '0' .. '9' -> I (parse_int ())
    | _ -> raise Bad
  in
  expect '{';
  let fields = ref [] in
  (if peek () = '}' then advance ()
   else
     let rec members () =
       let k = parse_string () in
       expect ':';
       fields := (k, parse_value ()) :: !fields;
       match peek () with
       | ',' ->
           advance ();
           members ()
       | '}' -> advance ()
       | _ -> raise Bad
     in
     members ());
  while !pos < n do
    (match s.[!pos] with ' ' | '\t' | '\r' -> () | _ -> raise Bad);
    advance ()
  done;
  !fields

let entry_of_line line =
  let fields = parse_line line in
  let str k = match List.assoc_opt k fields with Some (S s) -> s | _ -> raise Bad in
  let int k = match List.assoc_opt k fields with Some (I i) -> i | _ -> raise Bad in
  let bool k = match List.assoc_opt k fields with Some (B b) -> b | _ -> raise Bad in
  let outcome =
    if bool "ok" then begin
      let m = Metrics.create () in
      m.Metrics.vm_instrs <- int "vm_instrs";
      m.Metrics.native_instrs <- int "native_instrs";
      m.Metrics.dispatches <- int "dispatches";
      m.Metrics.indirect_branches <- int "indirect_branches";
      m.Metrics.mispredicts <- int "mispredicts";
      m.Metrics.vm_branch_mispredicts <- int "vm_branch_mispredicts";
      m.Metrics.icache_fetches <- int "icache_fetches";
      m.Metrics.icache_misses <- int "icache_misses";
      m.Metrics.code_bytes <- int "code_bytes";
      m.Metrics.quickenings <- int "quickenings";
      Ok { metrics = m; steps = int "steps"; output = str "output" }
    end
    else Error (str "error")
  in
  {
    key = str "key";
    fingerprint = str "fp";
    outcome;
    attempts = int "attempts";
    timed_out = bool "timed_out";
  }

(* ------------------------------------------------------------------ *)

let load t =
  match open_in t.j_file with
  | exception Sys_error _ -> ()
  | ic ->
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let rec go () =
            match input_line ic with
            | exception End_of_file -> ()
            | line ->
                (if String.trim line <> "" then
                   match entry_of_line line with
                   | e ->
                       (* Last entry wins: duplicates within one run are
                          deterministic duplicates of the same value. *)
                       Hashtbl.replace t.tbl (e.key, e.fingerprint) e;
                       t.loaded <- t.loaded + 1
                   | exception Bad -> t.truncated <- t.truncated + 1);
                go ()
          in
          go ())

let open_ ?(resume = false) file =
  let t =
    {
      j_file = file;
      (* The fd is opened after the resume load so the O_CREAT of a fresh
         journal cannot turn a half-written file into a parse surprise. *)
      fd = Unix.stdout;
      lock = Mutex.create ();
      tbl = Hashtbl.create 256;
      closed = false;
      loaded = 0;
      served = 0;
      appended = 0;
      write_errors = 0;
      truncated = 0;
    }
  in
  if resume then load t;
  let fd =
    Unix.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { t with fd }

(* Mirrors of the per-journal [stats] in the process-global metrics
   registry, so [--metrics] exports them without a journal handle. *)
let m_served = Vmbp_obs.Registry.counter "journal.served"
let m_appended = Vmbp_obs.Registry.counter "journal.appended"
let m_write_errors = Vmbp_obs.Registry.counter "journal.write_errors"

let lookup t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.tbl (key, fingerprint) in
  (match r with Some _ -> t.served <- t.served + 1 | None -> ());
  Mutex.unlock t.lock;
  (match r with Some _ -> Vmbp_obs.Registry.add m_served 1 | None -> ());
  r

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec go off =
    if off < len then go (off + Unix.write fd b off (len - off))
  in
  go 0

let append t e =
  let line = line_of_entry e in
  Mutex.lock t.lock;
  (* The [journal-io] chaos point models a failed append: the write is
     dropped exactly as a disk error would drop it, and the run must keep
     going with the cell merely unjournaled. *)
  if t.closed || Faults.fire Faults.Journal_io then begin
    t.write_errors <- t.write_errors + 1;
    Vmbp_obs.Registry.add m_write_errors 1
  end
  else begin
    match
      write_all t.fd line;
      Unix.fsync t.fd
    with
    | () ->
        t.appended <- t.appended + 1;
        Vmbp_obs.Registry.add m_appended 1
    | exception Unix.Unix_error _ ->
        t.write_errors <- t.write_errors + 1;
        Vmbp_obs.Registry.add m_write_errors 1
  end;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      loaded = t.loaded;
      served = t.served;
      appended = t.appended;
      write_errors = t.write_errors;
      truncated = t.truncated;
    }
  in
  Mutex.unlock t.lock;
  s

let file t = t.j_file

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (try Unix.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.lock

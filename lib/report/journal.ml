(* One framed JSON object per line, written with write(2) + fsync(2)
   under a lock.  Serialization lives in {!Vmbp_store.Cellrec} (shared
   with the content-addressed store) and every appended line carries a
   CRC-32 + length header ({!Vmbp_store.Frame}), so the reader detects
   corruption anywhere in the file -- foreign edits, flipped bytes, a
   line cut short by a crash -- and skips and counts it, never fatal.
   Pre-framing journals (bare JSON lines) still load. *)

type success = Vmbp_store.Cellrec.success = {
  metrics : Vmbp_machine.Metrics.t;
  steps : int;
  output : string;
}

type entry = Vmbp_store.Cellrec.entry = {
  key : string;
  fingerprint : string;
  outcome : (success, string) result;
  attempts : int;
  timed_out : bool;
}

type stats = {
  loaded : int;
  served : int;
  appended : int;
  write_errors : int;
  truncated : int;
}

type t = {
  j_file : string;
  env : Vmbp_sim.Env.t;
  fd : Vmbp_sim.Env.fd;
  lock : Mutex.t;
  tbl : (string * string, entry) Hashtbl.t;
  mutable closed : bool;
  mutable loaded : int;
  mutable served : int;
  mutable appended : int;
  mutable write_errors : int;
  mutable truncated : int;
}

(* ------------------------------------------------------------------ *)

let load t =
  match t.env.read_file t.j_file with
  | None -> ()
  | Some contents ->
      let accept e =
        (* Last entry wins: duplicates within one run are
           deterministic duplicates of the same value. *)
        Hashtbl.replace t.tbl (e.key, e.fingerprint) e;
        t.loaded <- t.loaded + 1
      in
      List.iter
        (fun line ->
          if String.trim line <> "" then
            match Vmbp_store.Frame.decode line with
            | Vmbp_store.Frame.Framed payload | Vmbp_store.Frame.Legacy payload
              -> (
                match Vmbp_store.Cellrec.of_line payload with
                | Some e -> accept e
                | None -> t.truncated <- t.truncated + 1)
            | Vmbp_store.Frame.Corrupt -> t.truncated <- t.truncated + 1)
        (Vmbp_sim.Env.lines_of_contents contents)

let open_ ?(resume = false) file =
  let env = !Vmbp_sim.Env.current in
  let t =
    {
      j_file = file;
      env;
      (* The fd is opened after the resume load so the O_CREAT of a fresh
         journal cannot turn a half-written file into a parse surprise. *)
      fd = Vmbp_sim.Env.Real Unix.stdout;
      lock = Mutex.create ();
      tbl = Hashtbl.create 256;
      closed = false;
      loaded = 0;
      served = 0;
      appended = 0;
      write_errors = 0;
      truncated = 0;
    }
  in
  if resume then load t;
  let fd =
    env.openfile file [ Unix.O_WRONLY; Unix.O_APPEND; Unix.O_CREAT ] 0o644
  in
  { t with fd }

(* Mirrors of the per-journal [stats] in the process-global metrics
   registry, so [--metrics] exports them without a journal handle. *)
let m_served = Vmbp_obs.Registry.counter "journal.served"
let m_appended = Vmbp_obs.Registry.counter "journal.appended"
let m_write_errors = Vmbp_obs.Registry.counter "journal.write_errors"

let lookup t ~key ~fingerprint =
  Mutex.lock t.lock;
  let r = Hashtbl.find_opt t.tbl (key, fingerprint) in
  (match r with Some _ -> t.served <- t.served + 1 | None -> ());
  Mutex.unlock t.lock;
  (match r with Some _ -> Vmbp_obs.Registry.add m_served 1 | None -> ());
  r

let write_all (env : Vmbp_sim.Env.t) fd s =
  let len = String.length s in
  let rec go off =
    if off < len then go (off + env.write fd s off (len - off))
  in
  go 0

let append t e =
  let line = Vmbp_store.Frame.encode (Vmbp_store.Cellrec.to_line e) in
  Mutex.lock t.lock;
  (* The [journal-io] chaos point models a failed append: the write is
     dropped exactly as a disk error would drop it, and the run must keep
     going with the cell merely unjournaled. *)
  if t.closed || Faults.fire Faults.Journal_io then begin
    t.write_errors <- t.write_errors + 1;
    Vmbp_obs.Registry.add m_write_errors 1
  end
  else begin
    match
      write_all t.env t.fd line;
      t.env.fsync t.fd
    with
    | () ->
        t.appended <- t.appended + 1;
        Vmbp_obs.Registry.add m_appended 1
    | exception Unix.Unix_error _ ->
        t.write_errors <- t.write_errors + 1;
        Vmbp_obs.Registry.add m_write_errors 1
  end;
  Mutex.unlock t.lock

let stats t =
  Mutex.lock t.lock;
  let s =
    {
      loaded = t.loaded;
      served = t.served;
      appended = t.appended;
      write_errors = t.write_errors;
      truncated = t.truncated;
    }
  in
  Mutex.unlock t.lock;
  s

let file t = t.j_file

let close t =
  Mutex.lock t.lock;
  if not t.closed then begin
    t.closed <- true;
    (try t.env.close t.fd with Unix.Unix_error _ -> ())
  end;
  Mutex.unlock t.lock

open Vmbp_core
open Vmbp_machine

(* ------------------------------------------------------------------ *)
(* Chunked byte storage.

   Event tokens are appended to Bytes chunks, so a long run never
   reallocates or copies what it has already recorded, and the memory bound
   is enforced at chunk granularity: the recorder accounts every chunk it
   allocates against the caller's cap and aborts recording the moment the
   next allocation would exceed it.  Chunk sizes grow geometrically from
   8KB to 1MB: small traces stay small, while a long run settles into a
   handful of large chunks. *)

exception Overflow

let min_chunk_bits = 13 (* 8KB chunks *)
let max_chunk_bits = 20 (* 1MB chunks *)
let min_chunk_bytes = 1 lsl min_chunk_bits
let max_chunk_bytes = 1 lsl max_chunk_bits

(* Released chunks are recycled through per-size free lists instead of being
   handed back to the allocator: a full report cycles gigabytes of trace
   storage through the planner's cache, and returning that memory to the OS
   on every eviction costs far more kernel time (page-table teardown plus
   fault-in and re-zeroing at the next recording -- dramatically so under
   the paravirtualised kernels this repo is benchmarked on) than the whole
   simulation.  With the pool, each page is faulted in once per process and
   the resident high-water mark stays bounded by the cache cap plus the
   in-flight recordings. *)
let pool : Bytes.t list array = Array.make (max_chunk_bits + 1) []
let pool_lock = Mutex.create ()

let size_class bytes =
  let rec go k = if 1 lsl k >= bytes then k else go (k + 1) in
  go min_chunk_bits

type buf = {
  mutable filled : Bytes.t list;  (* completed chunks, newest first *)
  mutable cur : Bytes.t;
  mutable pos : int;  (* next free byte in [cur] *)
}

type budget = { mutable allocated : int; cap : int }

let charge budget bytes =
  budget.allocated <- budget.allocated + bytes;
  if budget.allocated > budget.cap then raise Overflow

let alloc_chunk budget bytes =
  charge budget bytes;
  let k = size_class bytes in
  Mutex.lock pool_lock;
  match pool.(k) with
  | c :: rest ->
      pool.(k) <- rest;
      Mutex.unlock pool_lock;
      (* Stale contents are fine: readers only see bytes below [pos]. *)
      c
  | [] ->
      Mutex.unlock pool_lock;
      Bytes.create bytes

let release_buf b =
  Mutex.lock pool_lock;
  List.iter
    (fun c ->
      if Bytes.length c > 0 then begin
        let k = size_class (Bytes.length c) in
        pool.(k) <- c :: pool.(k)
      end)
    (b.cur :: b.filled);
  Mutex.unlock pool_lock;
  b.filled <- [];
  b.cur <- Bytes.empty;
  b.pos <- 0

let buf_create budget =
  { filled = []; cur = alloc_chunk budget min_chunk_bytes; pos = 0 }

let buf_grow budget b =
  let next = min (Bytes.length b.cur * 4) max_chunk_bytes in
  let fresh = alloc_chunk budget next in
  b.filled <- b.cur :: b.filled;
  b.cur <- fresh;
  b.pos <- 0

(* Append one 3-byte little-endian token.  Chunks hold a whole number of
   tokens (chunk sizes have a spare tail below a multiple of 3), so no
   token ever straddles a chunk boundary. *)
let push_token budget b code =
  if b.pos + 3 > Bytes.length b.cur then buf_grow budget b;
  Bytes.unsafe_set b.cur b.pos (Char.unsafe_chr (code land 0xff));
  Bytes.unsafe_set b.cur (b.pos + 1) (Char.unsafe_chr ((code lsr 8) land 0xff));
  Bytes.unsafe_set b.cur (b.pos + 2) (Char.unsafe_chr ((code lsr 16) land 0xff));
  b.pos <- b.pos + 3

(* Iterate tokens oldest-first. *)
let buf_iter_tokens b f =
  let scan c limit =
    let i = ref 0 in
    while !i + 3 <= limit do
      let code =
        Char.code (Bytes.unsafe_get c !i)
        lor (Char.code (Bytes.unsafe_get c (!i + 1)) lsl 8)
        lor (Char.code (Bytes.unsafe_get c (!i + 2)) lsl 16)
      in
      f code;
      i := !i + 3
    done
  in
  List.iter (fun c -> scan c (Bytes.length c - ((Bytes.length c) mod 3)))
    (List.rev b.filled);
  if b.pos > 0 then scan b.cur b.pos

(* ------------------------------------------------------------------ *)
(* Dictionary coding.

   An interpreter run touches few distinct code addresses relative to how
   often it touches them: every executed instruction body, call stub and
   dispatch-table entry is fetched millions of times at the same (addr,
   bytes), and every dispatch site jumps to a bounded set of targets.  So
   each stream stores distinct events once in an append-only dictionary and
   the stream itself is 3-byte dictionary codes -- roughly a 3-5x size
   reduction over raw packed words, which is what keeps the planner's
   retained working set small enough to recycle (see the pool note above).
   A run that somehow exceeds 2^24 distinct events per stream aborts
   recording and the caller falls back to direct simulation, so coding can
   never silently corrupt a trace. *)

let max_codes = 1 lsl 24

(* Encoding runs once per event on the hot path, so a small direct-mapped
   cache sits in front of the hash table: interpreter loops repeat the same
   few events millions of times, so almost every lookup is a non-allocating
   array probe, and the tuple-keyed table only sees first occurrences and
   the occasional cache collision. *)

let memo_bits = 13
let memo_slots = 1 lsl memo_bits

type dict = {
  tbl : (int * int, int) Hashtbl.t;  (* (a, b) -> code, record-time only *)
  memo_a : int array;  (* direct-mapped front cache; -1 = empty (a >= 0) *)
  memo_b : int array;
  memo_codes : int array;
  mutable rev_a : int array;  (* code -> a *)
  mutable rev_b : int array;  (* code -> b *)
  mutable next : int;
}

let dict_create budget =
  charge budget ((2 * 1024 + 3 * memo_slots) * 8);
  {
    tbl = Hashtbl.create 1024;
    memo_a = Array.make memo_slots (-1);
    memo_b = Array.make memo_slots 0;
    memo_codes = Array.make memo_slots 0;
    rev_a = Array.make 1024 0;
    rev_b = Array.make 1024 0;
    next = 0;
  }

let dict_code_slow budget d a b slot =
  let code =
    match Hashtbl.find_opt d.tbl (a, b) with
    | Some code -> code
    | None ->
        let code = d.next in
        if code >= max_codes then raise Overflow;
        if code = Array.length d.rev_a then begin
          (* Double the reverse maps; the budget pays for the growth. *)
          charge budget (2 * code * 8);
          let grow arr =
            let fresh = Array.make (2 * code) 0 in
            Array.blit arr 0 fresh 0 code;
            fresh
          in
          d.rev_a <- grow d.rev_a;
          d.rev_b <- grow d.rev_b
        end;
        d.rev_a.(code) <- a;
        d.rev_b.(code) <- b;
        d.next <- code + 1;
        Hashtbl.replace d.tbl (a, b) code;
        code
  in
  Array.unsafe_set d.memo_a slot a;
  Array.unsafe_set d.memo_b slot b;
  Array.unsafe_set d.memo_codes slot code;
  code

let[@inline] dict_code budget d a b =
  let h = (a * 0x9E3779B1) + b in
  let slot = (h lxor (h lsr 17)) land (memo_slots - 1) in
  if
    Array.unsafe_get d.memo_a slot = a
    && Array.unsafe_get d.memo_b slot = b
  then Array.unsafe_get d.memo_codes slot
  else dict_code_slow budget d a b slot

(* ------------------------------------------------------------------ *)
(* Event packing (inside dictionary entries).

   A fetch entry is [a = addr, b = bytes].  A dispatch entry is [a =
   branch address, b = target lsl 17 lor opcode lsl 1 lor vm_transfer].
   The accepted widths are far beyond anything the memory layout produces;
   a run that somehow exceeds them aborts recording (the caller falls back
   to direct simulation). *)

let dispatch_opcode_bits = 16
let dispatch_target_limit = 1 lsl 45
let fetch_addr_limit = 1 lsl 42
let fetch_bytes_limit = 1 lsl 20

type t = {
  dispatch : buf;  (* 3-byte codes into [dispatch_dict] *)
  dispatch_dict : dict;
  fetch : buf;  (* 3-byte codes into [fetch_dict] *)
  fetch_dict : dict;
  n_dispatch : int;
  n_fetch : int;
  base : Metrics.t;
      (* deterministic counters of the recorded run; predictor- and
         I-cache-dependent fields are zero *)
  steps : int;
  trapped : string option;
  output : string;
  code_bytes : int;
  bytes : int;  (* bytes charged against the recording budget *)
  mutable live : bool;  (* false once [release]d; chunks may be recycled *)
  memo_lock : Mutex.t;
      (* Replay results are deterministic per simulator configuration, so
         sweeps that repeat a configuration (penalty sweeps vary only the
         cost model; BTB sweeps keep the I-cache fixed) pay for each
         distinct configuration once.  Keys are the canonical descriptor
         strings ({!Predictor.descriptor} / {!Icache.descriptor}), which
         are injective over configurations, so lookup is one hash probe
         instead of an O(configs) structural scan.  Inserts are
         add-if-absent under [memo_lock]: two domains that both simulated
         the same configuration keep one binding (the results are equal
         anyway -- simulation is deterministic). *)
  pred_memo : (string, int * int) Hashtbl.t;
      (* descriptor -> (mispredicts, vm_branch_mispredicts) *)
  icache_memo : (string, int * int) Hashtbl.t;
      (* descriptor -> (fetches, misses) *)
}

let record ?fuel ?poll ?translation ?(cap_bytes = max_int) ~layout ~exec ~output
    () =
  let budget = { allocated = 0; cap = cap_bytes } in
  let bufs = ref [] in
  try
    let mk () =
      let b = buf_create budget in
      bufs := b :: !bufs;
      b
    in
    let dispatch = mk () in
    let fetch = mk () in
    let dispatch_dict = dict_create budget in
    let fetch_dict = dict_create budget in
    let n_dispatch = ref 0 and n_fetch = ref 0 in
    let m = Metrics.create () in
    let sink =
      {
        Engine.on_dispatch =
          (fun ~branch ~target ~opcode ~vm_transfer ->
            if
              branch < 0 || target < 0
              || target >= dispatch_target_limit
              || opcode < 0
              || opcode >= 1 lsl dispatch_opcode_bits
            then raise Overflow;
            let meta =
              (target lsl (dispatch_opcode_bits + 1))
              lor (opcode lsl 1)
              lor (if vm_transfer then 1 else 0)
            in
            push_token budget dispatch
              (dict_code budget dispatch_dict branch meta);
            incr n_dispatch);
        Engine.on_fetch =
          (fun ~addr ~bytes ~opcode:_ ->
            if
              addr < 0
              || addr >= fetch_addr_limit
              || bytes < 0
              || bytes >= fetch_bytes_limit
            then raise Overflow;
            push_token budget fetch (dict_code budget fetch_dict addr bytes);
            incr n_fetch);
      }
    in
    let steps, trapped =
      Engine.run_events ?fuel ?poll ?translation ~metrics:m ~layout ~exec
        ~sink ()
    in
    (* The hash tables only serve encoding; drop them before retention. *)
    Hashtbl.reset dispatch_dict.tbl;
    Hashtbl.reset fetch_dict.tbl;
    Some
      {
        dispatch;
        dispatch_dict;
        fetch;
        fetch_dict;
        n_dispatch = !n_dispatch;
        n_fetch = !n_fetch;
        base = m;
        steps;
        trapped;
        output = output ();
        code_bytes = layout.Code_layout.runtime_code_bytes;
        bytes = budget.allocated;
        live = true;
        memo_lock = Mutex.create ();
        pred_memo = Hashtbl.create 8;
        icache_memo = Hashtbl.create 8;
      }
  with Overflow ->
    (* Recycle whatever the aborted recording had already filled. *)
    List.iter release_buf !bufs;
    None

let release t =
  if not t.live then invalid_arg "Trace.release: already released";
  t.live <- false;
  release_buf t.dispatch;
  release_buf t.fetch

let memo_find t tbl key =
  Mutex.lock t.memo_lock;
  let r = Hashtbl.find_opt tbl key in
  Mutex.unlock t.memo_lock;
  r

(* Mutation tooth: when set, [memo_add] reverts to the pre-fix unlocked
   check-then-insert, with a yield in the window to make the race land
   reliably.  Exists so the simulation harness can prove its memo check
   catches the regression; never set outside tests. *)
let mutation_racy_memo = ref false

(* Add-if-absent: the re-check under the lock is what closes the
   check-then-insert race -- two domains can both miss [memo_find] and
   both simulate, but only the first insert lands, so the table never
   accumulates duplicate bindings for a configuration. *)
let memo_add t tbl key v =
  if !mutation_racy_memo then begin
    if not (Hashtbl.mem tbl key) then begin
      (* Hold the check-then-insert window open long enough to overlap
         the other domains' arrival jitter after bank simulation. *)
      for _ = 1 to 200_000 do
        Domain.cpu_relax ()
      done;
      Hashtbl.add tbl key v
    end
  end
  else begin
    Mutex.lock t.memo_lock;
    if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key v;
    Mutex.unlock t.memo_lock
  end

let memo_sizes t =
  Mutex.lock t.memo_lock;
  let r = (Hashtbl.length t.pred_memo, Hashtbl.length t.icache_memo) in
  Mutex.unlock t.memo_lock;
  r

(* Replays poll far less often than the engine: one token is a handful of
   array reads, so ~65k tokens still bounds the watchdog's blind spot to
   well under a millisecond. *)
let replay_poll_mask = 65536 - 1

(* One traversal of the dispatch stream drives every simulator in the
   bank; the counters live in plain int arrays (struct-of-arrays) so the
   inner per-token loop touches two dense arrays, not a list of boxed
   accumulators. *)
let bank_predictors poll t fresh =
  let n = Array.length fresh in
  let sims = Array.map snd fresh in
  let mis = Array.make n 0 and vmis = Array.make n 0 in
  let opcode_mask = (1 lsl dispatch_opcode_bits) - 1 in
  let rev_a = t.dispatch_dict.rev_a and rev_b = t.dispatch_dict.rev_b in
  let seen = ref 0 in
  buf_iter_tokens t.dispatch (fun code ->
      incr seen;
      if !seen land replay_poll_mask = 0 then poll ();
      let branch = Array.unsafe_get rev_a code in
      let w = Array.unsafe_get rev_b code in
      let target = w lsr (dispatch_opcode_bits + 1) in
      let opcode = (w lsr 1) land opcode_mask in
      let vm_transfer = w land 1 = 1 in
      for j = 0 to n - 1 do
        if
          not
            (Predictor.access (Array.unsafe_get sims j) ~branch ~target
               ~opcode)
        then begin
          Array.unsafe_set mis j (Array.unsafe_get mis j + 1);
          if vm_transfer then
            Array.unsafe_set vmis j (Array.unsafe_get vmis j + 1)
        end
      done);
  Array.iteri
    (fun j (d, _) -> memo_add t t.pred_memo d (mis.(j), vmis.(j)))
    fresh

(* Same single-pass shape over the fetch stream.  The accumulator refs are
   allocated once per bank, before the walk, so the per-token loop does not
   allocate. *)
let bank_icaches poll t fresh =
  let n = Array.length fresh in
  let sims = Array.map snd fresh in
  let hits = Array.init n (fun _ -> ref 0) in
  let misses = Array.init n (fun _ -> ref 0) in
  let rev_a = t.fetch_dict.rev_a and rev_b = t.fetch_dict.rev_b in
  let seen = ref 0 in
  buf_iter_tokens t.fetch (fun code ->
      incr seen;
      if !seen land replay_poll_mask = 0 then poll ();
      let addr = Array.unsafe_get rev_a code in
      let bytes = Array.unsafe_get rev_b code in
      for j = 0 to n - 1 do
        Icache.fetch (Array.unsafe_get sims j) ~addr ~bytes
          ~hits:(Array.unsafe_get hits j)
          ~misses:(Array.unsafe_get misses j)
      done);
  Array.iteri
    (fun j (d, _) ->
      memo_add t t.icache_memo d (!(hits.(j)) + !(misses.(j)), !(misses.(j))))
    fresh

let replay_bank ?(poll = fun () -> ()) t ~predictors ~icaches =
  if not t.live then invalid_arg "Trace.replay_bank: trace was released";
  (* Poll before consulting the memos: a fully memo-served bank does no
     token iteration, and without this entry poll a long run of such
     groups would be invisible to the watchdog deadline. *)
  poll ();
  let fresh_of bank memo =
    Array.of_list (List.filter (fun (d, _) -> memo_find t memo d = None) bank)
  in
  let fp = fresh_of (Predictor.create_bank predictors) t.pred_memo in
  if Array.length fp > 0 then bank_predictors poll t fp;
  let fi = fresh_of (Icache.create_bank icaches) t.icache_memo in
  if Array.length fi > 0 then bank_icaches poll t fi;
  Array.length fp + Array.length fi

let build_result t ~cpu (mispredicts, vm_mispredicts) (fetches, misses) =
  let m = Metrics.copy t.base in
  m.Metrics.mispredicts <- mispredicts;
  m.Metrics.vm_branch_mispredicts <- vm_mispredicts;
  m.Metrics.icache_fetches <- fetches;
  m.Metrics.icache_misses <- misses;
  m.Metrics.code_bytes <- t.code_bytes;
  {
    Engine.metrics = m;
    cycles = Cpu_model.cycles cpu m;
    seconds = Cpu_model.seconds cpu m;
    steps = t.steps;
    trapped = t.trapped;
  }

let replay ?poll t ~cpu ~predictor =
  if not t.live then invalid_arg "Trace.replay: trace was released";
  ignore
    (replay_bank ?poll t ~predictors:[ predictor ]
       ~icaches:[ cpu.Cpu_model.icache ]);
  let pred_counts =
    match memo_find t t.pred_memo (Predictor.descriptor predictor) with
    | Some r -> r
    | None ->
        (* Only an invalid configuration can still miss after a bank pass
           (the bank skips configurations whose constructor raises);
           re-raise that constructor's error for this cell. *)
        ignore (Predictor.create predictor : Predictor.t);
        assert false
  in
  let icache_counts =
    match
      memo_find t t.icache_memo (Icache.descriptor cpu.Cpu_model.icache)
    with
    | Some r -> r
    | None ->
        ignore (Icache.create cpu.Cpu_model.icache : Icache.t);
        assert false
  in
  build_result t ~cpu pred_counts icache_counts

(* Unlike [replay], valid on a released trace: the memo tables, base
   metrics and output are ordinary GC-managed values that survive chunk
   recycling, so a trace whose storage was evicted can still answer for
   every simulator configuration it ever replayed -- including every
   configuration a banked replay simulated while the trace was live. *)
let replay_memo t ~cpu ~predictor =
  match
    ( memo_find t t.pred_memo (Predictor.descriptor predictor),
      memo_find t t.icache_memo (Icache.descriptor cpu.Cpu_model.icache) )
  with
  | Some p, Some i -> Some (build_result t ~cpu p i)
  | _ -> None

let bytes t = t.bytes
let steps t = t.steps
let trapped t = t.trapped
let output t = t.output
let dispatch_events t = t.n_dispatch
let fetch_events t = t.n_fetch

(** Parallel, fault-isolated experiment runner.

    The report matrix is a grid of (workload, technique, cpu) cells, each of
    which owns its private predictor, I-cache and interpreter session state,
    so cells are embarrassingly parallel.  This module runs a cell list on a
    fixed-size pool of domains fed from a shared work queue, returns results
    in deterministic input order, and wraps every cell in a [result] so one
    trapped workload degrades to a reported failure instead of killing the
    whole report.

    With [jobs = 1] (the default) no domain is spawned and cells run
    sequentially in submission order, which is bit-for-bit the reference
    behaviour for the pool: the simulated numbers do not depend on the job
    count, only wall-clock time does.

    Every cell run through this module is also appended to a session log
    ({!drain_log}) carrying per-cell wall-clock timings, which the bench and
    CLI harnesses dump as a machine-readable JSON summary ([--json FILE]) so
    the performance trajectory can be tracked across changes.

    {b Record once, replay many.}  Cells that share (workload, technique,
    scale) run the exact same VM execution -- only the modelled hardware
    differs -- so the planner groups them, records the engine's event stream
    once per group ({!Runner.record}), and replays every cell of the group
    from that trace.  The replay itself is banked ({!Runner.replay_bank}):
    the group's distinct (predictor, I-cache) configurations are collected
    up front and simulated together in one traversal per event stream, so
    per-group replay cost is O(events), not O(cells x events); the
    per-cell results are then fanned back out of the trace's memo tables.
    Recorded traces are kept in a
    process-wide LRU cache bounded by {!trace_cap_mb}, so later experiments
    over the same grid (the common shape: one figure per CPU) skip the VM
    execution entirely.  Eviction recycles a trace's stream storage but
    keeps a memo-only summary that still answers every simulator
    configuration the trace ever served ({!Runner.replay_memo}); only a new
    configuration on an evicted group re-records.  Simulated numbers are
    identical to direct runs by construction; any recording problem (budget
    exceeded, trap during load) falls back to per-cell direct simulation. *)

type cell = {
  tag : string;  (** experiment-level label carried into the JSON log *)
  workload : Vmbp_workloads.t;
  technique : Vmbp_core.Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  scale : int;
  predictor : Vmbp_machine.Predictor.kind option;
}

(** How a cell's numbers were produced: [Direct] = full engine execution for
    this cell alone; [Record] = full engine execution whose trace also
    served its group; [Replay] = no VM execution, simulators driven from a
    recorded trace. *)
type mode = Direct | Record | Replay

val mode_name : mode -> string

type timed = {
  cell : cell;
  outcome : (Runner.run, string) result;
  wall_seconds : float;
      (** wall-clock spent producing this cell; a [Record] cell carries its
          group's one engine execution, so summing over cells accounts all
          work *)
  serve_seconds : float;
      (** the part of this cell's cost that was pure serving -- journal
          lookup and reconstruction, or memo-table replay -- with no
          simulation at all; [0] for cells that ran a simulator *)
  mode : mode;
  attempts : int;
      (** cell attempts consumed, [> 1] after transient-failure retries;
          [0] for a cell skipped by a graceful shutdown or abandoned after
          repeated worker deaths *)
  timed_out : bool;  (** the final attempt hit the [--cell-timeout] deadline *)
  from_journal : bool;
      (** served from the resume journal; no simulator ran for this cell *)
  audited : bool;
      (** the cell was cross-checked against an oracle: reference-model
          lockstep under [--self-check], or a sampled fresh direct run
          for replayed cells ([--audit-sample]) *)
}

val default_jobs : int ref
(** Pool size used when [?jobs] is omitted; set once from the [--jobs N]
    command-line flag.  Defaults to 1 (sequential). *)

val progress : bool ref
(** Emit a one-line heartbeat to stderr while {!run_cells} works: cells
    done / total, busy workers, elapsed time and a naive ETA, redrawn in
    place at most twice a second from the engine poll hook.  Never touches
    stdout, so report tables are byte-identical either way.  Default
    [false]; the CLI turns it on when stderr is a TTY ([--progress] /
    [--no-progress] override). *)

(** {2 Differential self-check and sampled auditing}

    With [self_check] set ([--self-check]), every cell runs directly
    (the trace fast path is bypassed) through {!Runner.run_checked}: the
    production predictor/I-cache and the naive reference models
    ({!Vmbp_machine.Reference}) observe the same event stream, and the
    first disagreement fails the cell with a structured divergence
    record plus a minimized repro artifact (see {!Audit}).

    Independently, [audit_sample] cross-checks a deterministic fraction
    of the cells served by the record/replay and memo fast paths against
    a fresh direct {!Runner.run_result}; any field-level difference is
    recorded as a divergence and fails the cell.  Sampling is keyed on
    the cell key, so the audited subset is stable across runs, machines
    and job counts.

    Drivers should {!Audit.reset_stats} before a run and inspect
    {!Audit.divergence_count} after it (non-zero should map to a
    non-zero exit code). *)

val self_check : bool ref
(** Route every cell through the reference-model lockstep run.
    Default [false]; set from [--self-check]. *)

val audit_sample : float ref
(** Fraction (in [0, 1]) of replay/memo-served cells to cross-check
    against a fresh direct run.  Default [0.02]; set from
    [--audit-sample P]. *)

val cell_timeout : float ref
(** Per-cell-attempt watchdog deadline in seconds, enforced cooperatively
    through the engine/replay poll hook; [<= 0] (the default) disables it.
    A timed-out cell reports [Error] with [timed_out = true] and is not
    retried.  Set from [--cell-timeout SEC]. *)

val cell_retries : int ref
(** Extra attempts granted to a cell whose attempt failed transiently (an
    unexpected exception -- not a deterministic [Runner.Run_failed] trap,
    not a timeout).  Defaults to 1; set from [--cell-retries N]. *)

val retry_backoff_s : float ref
(** Base delay between retry attempts; the actual delay grows
    exponentially per attempt and is jittered from the seeded chaos
    stream.  Exposed mainly so tests can keep retries fast. *)

(** {2 Crash-safe journal and resume}

    With a journal installed ({!set_journal}), every completed cell is
    appended -- fsync'd -- to a JSONL file as it finishes, keyed by a
    stable cell key plus a configuration fingerprint (scale, CPU profile,
    predictor override, trace setting; see {!Journal}).  Opening the
    journal with [resume:true] additionally serves matching cells straight
    from the file ([from_journal = true], no simulation), which makes an
    interrupted-then-resumed report byte-identical to an uninterrupted
    one. *)

val set_journal : file:string -> resume:bool -> unit
(** Install (or replace) the process-wide journal. *)

val clear_journal : unit -> unit
(** Close and remove the journal; subsequent runs neither read nor write
    one. *)

val journal_stats : unit -> Journal.stats option

(** {2 Content-addressed result store}

    Where the journal is a per-run crash log, the store
    ({!Vmbp_store.Store}) is a durable cross-run result service: sharded,
    CRC-framed, addressed by the tagless parameter-complete cell identity
    (the full-result cache's key) plus the same configuration
    fingerprint.  With a store installed, {!run_cells} serves matching
    cells from it before planning any work ([from_journal = true] -- no
    simulator ran) and appends every freshly computed success as it
    finishes, so a grid run warms the store the report service answers
    queries from.  The [store-io] chaos point is wired into the store's
    append path. *)

val set_store : ?shards:int -> string -> unit
(** Install (or replace) the process-wide store, opening [dir]. *)

val clear_store : unit -> unit
(** Close and remove the store. *)

val store_stats : unit -> Vmbp_store.Store.stats option

val store_compact : unit -> unit
(** Run a compaction pass on the installed store, if any. *)

val store_lookup : cell -> timed option
(** Serve one cell straight from the installed store: [None] on a miss or
    with no store installed.  Used by the report service's hit path. *)

val store_key : cell -> string
(** The store key: tagless and parameter-complete, so every consumer that
    asks for the same configuration shares one record. *)

val cell_key : cell -> string
(** The journal key: tag, workload, parameter-complete technique
    descriptor, CPU name, scale and predictor override. *)

val config_fingerprint : cell -> string
(** Digest of everything else that could change the cell's numbers between
    runs; a journal entry is served only when key and fingerprint both
    match. *)

(** {2 Graceful shutdown and worker supervision} *)

val request_shutdown : unit -> unit
(** Stop dequeuing work: in-flight groups finish (and are journaled),
    queued cells are reported as interrupted [Error] cells with
    [attempts = 0].  Called from the harnesses' first-Ctrl-C handler. *)

val shutting_down : unit -> bool
val reset_shutdown : unit -> unit

val worker_respawns : unit -> int
(** Worker domains respawned after a death ({!Faults.Worker_killed})
    since process start.  In the sequential ([jobs = 1]) path there is no
    pool to respawn into and the death escapes [run_cells] instead -- the
    fault harness's stand-in for a killed process. *)

val bank_replays : unit -> int
(** Banked group traversals ({!Runner.replay_bank}) that simulated at
    least one fresh configuration since process start.  A group whose
    configurations were all already memoized issues no traversal and is
    not counted. *)

val banked_configs : unit -> int
(** Distinct simulator configurations freshly simulated by those banked
    traversals since process start. *)

val trace_cap_mb : int ref
(** Budget, in megabytes, for recorded traces retained in the process-wide
    LRU cache; also caps any single recording (an over-budget group falls
    back to direct runs).  [<= 0] disables record/replay entirely.  Set from
    the [--trace-cap-mb N] command-line flag; defaults to 256. *)

val clear_trace_cache : unit -> unit
(** Drop every retained trace, including memo-only summaries (used by tests
    and memory-sensitive harnesses). *)

val trace_cache_bytes : unit -> int
(** Current retained stream footprint in bytes (summaries are not
    counted -- their streams are already recycled). *)

val clear_result_cache : unit -> unit
(** Drop every cached cell result.  Finished cells are retained for the
    process lifetime keyed by their full configuration (workload identity
    is physical), so an experiment batch that revisits a cell verbatim is
    served without any simulation; cells served this way are
    [Replay]-mode and subject to sampled auditing like trace replays.
    Disabled under [--self-check] and with [--trace-cap-mb 0]. *)

val cell :
  ?tag:string ->
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  cell

val cell_name : cell -> string
(** ["vm/workload/technique/cpu[@scale]"], for logs and error reports. *)

val run_cells : ?jobs:int -> cell list -> timed list
(** Run every cell and return the outcomes in the input order regardless of
    completion order.  Cells are grouped by (workload, technique, scale);
    groups are the unit of parallelism, [?jobs] at a time (default
    {!default_jobs}), and within a group one recorded execution feeds every
    cell's replay. *)

val matrix :
  ?scale:int ->
  ?jobs:int ->
  ?tag:string ->
  cpu:Vmbp_machine.Cpu_model.t ->
  techniques:Vmbp_core.Technique.t list ->
  Vmbp_workloads.t list ->
  (Vmbp_workloads.t
  * (Vmbp_core.Technique.t * (Runner.run, string) result) list)
  list
(** The benchmark-times-variant grid of {!Runner.matrix}, run through the
    pool.  Cell order inside the grid (workload-major, then technique) and
    the returned structure are deterministic. *)

val drain_log : unit -> timed list
(** All cells recorded since the previous drain, in chronological batch
    order (each batch in its input order); clears the log. *)

val json_summary : ?jobs:int -> timed list -> string
(** A machine-readable summary: schema [vmbp-cells/7], one record per cell
    with simulated cycles, mispredict rate, I-cache misses, production
    mode, [attempts]/[timed_out]/[from_journal] (plus [audited] when the
    cell was cross-checked), wall-clock seconds and [serve_seconds] (or
    the error for failed cells), plus top-level [engine_runs]/[replays]/
    [from_journal]/[retries]/[timeouts]/[interrupted]/[injected_faults]/
    [worker_respawns]/[bank_replays]/[banked_configs] counters, the
    report-service counters
    ([store_hits]/[store_misses]/[coalesced]/[shed]/[degraded_seconds]),
    the differential-checking block
    ([self_check]/[audit_sample]/[audited]/[divergences]), journal and
    store statistics when installed, the direct/record/replay wall-clock
    split and the aggregate [serve_wall_seconds]. *)

val write_json_summary : ?jobs:int -> file:string -> timed list -> unit
(** Write {!json_summary} to [file]. *)

(** Deterministic fault injection for the report supervisor.

    Robustness code that is never executed is robustness on inspection only,
    so every supervision path in {!Par_runner} -- retry, timeout, record
    fallback, journal degradation, worker respawn -- has a named injection
    point here, driven by the [--chaos SPEC] command-line flag.  Injection
    is deterministic: count-based specs fire on exact opportunity ordinals
    and probabilistic specs draw from a seeded splitmix64 stream, so a chaos
    run is reproducible bit-for-bit given the same spec (and, for
    probabilistic specs, the same cell arrival order).

    Spec grammar (comma-separated [name=value] pairs):

    - [POINT=N] -- fire on the first [N] opportunities of [POINT].
    - [POINT=S+N] -- skip the first [S] opportunities, then fire [N] times
      (how tests kill a run mid-way: [worker-death=2+1]).
    - [POINT=P] with [0 < P < 1] (a float) -- fire each opportunity with
      probability [P], drawn from the seeded stream.
    - [POINT=...@DUR] -- timed points ([slow-cell], [slow-client],
      [pool-wedge]) additionally stall [DUR] seconds per fire (defaults
      0.05 / 0.2 / 0.5).
    - [seed=N] -- seed for the probabilistic stream and retry jitter.

    Points: [cell-raise] (transient exception inside a cell attempt),
    [record-fail] (failure in the group-level trace-record path),
    [slow-cell] (cell attempt stalls; exercises [--cell-timeout]),
    [journal-io] (journal append fails; the run must degrade, not die),
    [worker-death] (a worker domain dies; sequentially this simulates a
    killed process, in a pool it exercises respawn).

    Service-side points, fired by {!Service} and (through
    {!Vmbp_store.Store.io_fault_hook}) the store: [conn-drop] (the server
    drops a client connection mid-exchange; clients must reconnect and
    retry), [store-io] (a store append is dropped like a disk error; the
    reply still serves from memory), [slow-client] (the server treats the
    connection as a stalled reader; exercises the slow-reader timeout),
    [pool-wedge] (the compute pool stalls; exercises degradation to
    store-only service). *)

type point =
  | Cell_raise
  | Record_fail
  | Slow_cell
  | Journal_io
  | Worker_death
  | Conn_drop
  | Store_io
  | Slow_client
  | Pool_wedge

val point_name : point -> string
val all_points : point list

exception Injected of string
(** A deliberately injected transient failure; the supervisor treats it as
    retryable, like any unexpected exception from a cell. *)

exception Worker_killed
(** Injected worker death.  Deliberately {e not} caught by the per-cell and
    per-group guards: it must escape to the pool (or, sequentially, out of
    [run_cells]) to exercise the supervision layer above. *)

val configure : string -> (unit, string) result
(** Parse a [--chaos] spec and arm the listed points, replacing any previous
    configuration.  [Error msg] on a malformed spec. *)

val reset : unit -> unit
(** Disarm every point and zero all counters; restores the default
    (injection-free) state.  Used by tests between cases. *)

val armed : unit -> bool
(** Whether any point is currently armed.  The journal refuses to persist
    [Error] cells while chaos is armed, so injected failures are retried on
    resume instead of being replayed from the journal. *)

val fire : point -> bool
(** Count one opportunity for [point] and decide whether it fires.  The
    helpers below wrap this with each point's failure behaviour; [fire] is
    exposed for points whose effect lives in the caller ([journal-io]). *)

val fired : point -> int
(** How many times [point] has fired since the last [reset]/[configure]. *)

val total_injected : unit -> int
(** Total fires across all points, for the JSON summary. *)

val cell_raise : unit -> unit
(** Raise {!Injected} if the [cell-raise] point fires. *)

val record_fail : unit -> unit
(** Raise {!Injected} if the [record-fail] point fires. *)

val slow_cell : unit -> unit
(** Sleep the configured duration if the [slow-cell] point fires. *)

val worker_death : unit -> unit
(** Raise {!Worker_killed} if the [worker-death] point fires. *)

val conn_drop : unit -> bool
(** Whether the [conn-drop] point fires; the caller closes the
    connection. *)

val store_io : unit -> bool
(** Whether the [store-io] point fires; wired into
    {!Vmbp_store.Store.io_fault_hook} so the store itself drops the
    append. *)

val slow_client : unit -> float option
(** [Some stall_seconds] if the [slow-client] point fires. *)

val pool_wedge : unit -> float option
(** [Some wedge_seconds] if the [pool-wedge] point fires. *)

val duration : point -> float
(** The configured per-fire stall for a timed point ([slow-cell],
    [slow-client], [pool-wedge]); 0 for the rest. *)

val jitter : unit -> float
(** A float in [0, 1) from the seeded stream, for retry backoff jitter.
    Deterministic under a fixed seed and draw order. *)

open Vmbp_core
open Vmbp_machine

type t = {
  id : string;
  title : string;
  paper_claim : string;
  default_scale : int;
  run : scale:int -> string;
}

let buf_add = Buffer.add_string

(* ------------------------------------------------------------------ *)
(* Shared computations.

   Every multi-run experiment builds its cell list up front and runs it
   through {!Par_runner.run_cells}: with --jobs N the grid spreads over N
   domains, and a trapped cell degrades to a "fail" table entry instead of
   aborting its siblings.  Cell lists are consumed strictly in input order,
   so the rendered tables are identical for every job count. *)

let variants_for = function
  | Vmbp_workloads.Forth -> Technique.paper_gforth_variants
  | Vmbp_workloads.Jvm -> Technique.paper_jvm_variants

let workloads_for = function
  | Vmbp_workloads.Forth -> Vmbp_workloads.forth
  | Vmbp_workloads.Jvm -> Vmbp_workloads.jvm

let ok_run (t : Par_runner.timed) =
  match t.Par_runner.outcome with Ok r -> Some r | Error _ -> None

(* Render one cell's value, or "fail" for an isolated failed run. *)
let cell_str f (t : Par_runner.timed) =
  match t.Par_runner.outcome with Ok r -> f r | Error _ -> "fail"

(* Split the flat, input-ordered result list back into the grid rows it was
   built from. *)
let rec chunks n = function
  | [] -> []
  | l ->
      let rec take k acc rest =
        if k = 0 then (List.rev acc, rest)
        else
          match rest with
          | x :: rest' -> take (k - 1) (x :: acc) rest'
          | [] -> invalid_arg "chunks: ragged result list"
      in
      let row, rest = take n [] l in
      row :: chunks n rest

let speedups ~scale ~vm ~cpu =
  let techniques = variants_for vm in
  let tag = Printf.sprintf "speedups/%s/%s" (Vmbp_workloads.vm_name vm)
      cpu.Cpu_model.name in
  let grid =
    Par_runner.matrix ~scale ~tag ~cpu ~techniques (workloads_for vm)
  in
  List.map
    (fun ((w : Vmbp_workloads.t), runs) ->
      let baseline =
        match List.find_opt (fun (t, _) -> t = Technique.Plain) runs with
        | Some (_, Ok r) -> Some r
        | Some (_, Error _) -> None
        | None -> (
            match runs with (_, Ok r) :: _ -> Some r | _ -> None)
      in
      ( w.Vmbp_workloads.name,
        List.map
          (fun (t, r) ->
            ( Technique.name t,
              match (baseline, r) with
              | Some baseline, Ok r -> Some (Runner.speedup ~baseline r)
              | _ -> None ))
          runs ))
    grid

let metric_labels =
  [ "cycles"; "instrs"; "indirect branches"; "indirect mispredicted";
    "icache misses"; "miss cycles"; "code KB" ]

let counter_profile ~scale ~vm ~workload ~cpu =
  let w =
    match Vmbp_workloads.find ~vm workload with
    | Some w -> w
    | None -> invalid_arg ("unknown workload " ^ workload)
  in
  let techniques = variants_for vm in
  let results =
    Par_runner.run_cells
      (List.map
         (fun t ->
           Par_runner.cell ~tag:("counters/" ^ workload) ~scale ~cpu
             ~technique:t w)
         techniques)
  in
  (* A failed variant drops its row; the others still render. *)
  let runs =
    List.filter_map
      (fun (t : Par_runner.timed) ->
        Option.map (fun r -> (t.Par_runner.cell.Par_runner.technique, r))
          (ok_run t))
      results
  in
  let metrics (r : Runner.run) =
    let m = r.Runner.result.Engine.metrics in
    let miss_cycles =
      float_of_int
        (m.Metrics.icache_misses * cpu.Cpu_model.icache_miss_penalty)
    in
    [
      r.Runner.result.Engine.cycles;
      float_of_int m.Metrics.native_instrs;
      float_of_int m.Metrics.indirect_branches;
      float_of_int m.Metrics.mispredicts;
      float_of_int m.Metrics.icache_misses;
      miss_cycles;
      float_of_int m.Metrics.code_bytes /. 1024.;
    ]
  in
  if runs = [] then ([], metric_labels)
  else
    let plain =
      match List.find_opt (fun (t, _) -> t = Technique.Plain) runs with
      | Some (_, r) -> metrics r
      | None -> metrics (snd (List.hd runs))
    in
    let rows =
      List.map
        (fun (t, r) ->
          let vals = metrics r in
          let normalised =
            List.mapi
              (fun k v ->
                if k = 6 then v (* code KB stays raw *)
                else
                  let base = List.nth plain k in
                  if base = 0. then 0. else v /. base)
              vals
          in
          (Technique.name t, normalised))
        runs
    in
    (rows, metric_labels)

let static_mix ~scale ~vm ~workload ~cpu ~totals =
  let w =
    match Vmbp_workloads.find ~vm workload with
    | Some w -> w
    | None -> invalid_arg ("unknown workload " ^ workload)
  in
  let percents = [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ] in
  let specs =
    List.concat_map
      (fun total -> List.map (fun pct -> (total, pct)) percents)
      totals
  in
  let cells =
    List.map
      (fun (total, pct) ->
        let supers = total * pct / 100 in
        let replicas = total - supers in
        let technique =
          if total = 0 then Technique.Plain
          else
            Technique.Static
              (Technique.static_params ~replicas ~superinstrs:supers ())
        in
        Par_runner.cell ~tag:("static-mix/" ^ workload) ~scale ~cpu ~technique
          w)
      specs
  in
  let results = List.combine specs (Par_runner.run_cells cells) in
  List.map
    (fun row ->
      match row with
      | [] -> assert false
      | ((total, _), _) :: _ ->
          ( total,
            List.map
              (fun ((_, pct), t) ->
                match ok_run t with
                | Some r ->
                    ( pct,
                      r.Runner.result.Engine.cycles,
                      r.Runner.result.Engine.metrics.Metrics.mispredicts )
                | None -> (pct, Float.nan, 0))
              row ))
    (chunks (List.length percents) results)

(* ------------------------------------------------------------------ *)
(* Rendering helpers *)

let render_speedups ~scale ~vm ~cpu =
  let data = speedups ~scale ~vm ~cpu in
  let headers =
    "benchmark" :: List.map Technique.name (variants_for vm)
  in
  let rows =
    List.map
      (fun (wname, cells) ->
        wname
        :: List.map
             (fun (_, s) ->
               match s with Some s -> Table.f2 s | None -> "fail")
             cells)
      data
  in
  Table.render ~headers ~rows

let render_counters ~scale ~vm ~workload ~cpu =
  let rows, labels = counter_profile ~scale ~vm ~workload ~cpu in
  Table.render
    ~headers:("variant" :: labels)
    ~rows:
      (List.map
         (fun (name, vals) -> name :: List.map Table.f2 vals)
         rows)

let render_static_mix ~which ~scale ~vm ~workload ~cpu ~totals =
  let data = static_mix ~scale ~vm ~workload ~cpu ~totals in
  let headers =
    "total \\ %super"
    :: List.map string_of_int [ 0; 10; 20; 30; 40; 50; 60; 70; 80; 90; 100 ]
  in
  let rows =
    List.map
      (fun (total, series) ->
        string_of_int total
        :: List.map
             (fun (_, cycles, mispredicts) ->
               match which with
               | `Cycles -> Printf.sprintf "%.2fM" (cycles /. 1e6)
               | `Mispredicts -> Table.human_int mispredicts)
             series)
      data
  in
  Table.render ~headers ~rows

(* ------------------------------------------------------------------ *)
(* Worked-example tables (I-IV) *)

let toy_trace ~technique ?profile ~program ~skip ~take () =
  let state = Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 50) () in
  Dispatch_trace.trace ~technique ?profile ~program
    ~exec:(Vmbp_toyvm.Toy_vm.exec state) ~skip ~take ()

let table1 ~scale:_ =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let b = Buffer.create 512 in
  buf_add b "VM program: label: A ; B ; A ; loop label  (steady state)\n\n";
  buf_add b "Switch dispatch (one shared indirect branch):\n";
  buf_add b
    (Dispatch_trace.render
       (toy_trace ~technique:Technique.switch ~program ~skip:8 ~take:8 ()));
  buf_add b "\nThreaded dispatch (one branch per VM instruction):\n";
  buf_add b
    (Dispatch_trace.render
       (toy_trace ~technique:Technique.plain ~program ~skip:8 ~take:8 ()));
  Buffer.contents b

let table2 ~scale:_ =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
  Vmbp_vm.Profile.add_program profile program;
  let b = Buffer.create 512 in
  buf_add b
    "Same loop with static replication (round-robin copies of A):\n";
  buf_add b
    (Dispatch_trace.render
       (toy_trace
          ~technique:(Technique.static_repl ~n:8 ())
          ~profile ~program ~skip:8 ~take:8 ()));
  Buffer.contents b

let table3 ~scale:_ =
  let program = Vmbp_toyvm.Toy_vm.table3_loop () in
  let b = Buffer.create 512 in
  buf_add b "VM program: label: A B A B A ; loop label (threaded code)\n";
  buf_add b
    (Dispatch_trace.render
       (toy_trace ~technique:Technique.plain ~program ~skip:12 ~take:12 ()));
  buf_add b
    "\nBad replication can increase mispredictions: with exactly two\n\
     round-robin copies of B, both instances of A are followed by\n\
     different replicas, so A's branch never predicts correctly.\n";
  Buffer.contents b

let table4 ~scale:_ =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
  Vmbp_vm.Profile.add_program profile program;
  let b = Buffer.create 512 in
  buf_add b "Same loop with a static superinstruction covering A-B:\n";
  buf_add b
    (Dispatch_trace.render
       (toy_trace
          ~technique:(Technique.static_super ~n:2 ())
          ~profile ~program ~skip:6 ~take:6 ()));
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Comparator tables (V, VIII, IX, X) *)

let cpu_p4 = Cpu_model.pentium4_northwood
let cpu_celeron = Cpu_model.celeron_800

let seconds_of_cycles cycles cpu =
  cycles /. (float_of_int cpu.Cpu_model.mhz *. 1e6)

let table5 ~scale =
  let results =
    Par_runner.run_cells
      (List.map
         (fun w ->
           Par_runner.cell ~tag:"table5" ~scale ~cpu:cpu_p4
             ~technique:Technique.plain w)
         Vmbp_workloads.jvm)
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) timed ->
        match ok_run timed with
        | None -> [ w.Vmbp_workloads.name; "fail"; "-"; "-"; "-"; "-" ]
        | Some plain ->
            let slots =
              Vmbp_vm.Program.length
                (w.Vmbp_workloads.load ~scale).Vmbp_workloads.program
            in
            let model m =
              Printf.sprintf "%.1f"
                (1e3
                *. seconds_of_cycles
                     (Native_model.cycles m ~cpu:cpu_p4 ~costs:Costs.default
                        ~plain:plain.Runner.result ~slots)
                     cpu_p4)
            in
            [
              w.Vmbp_workloads.name;
              Printf.sprintf "%.1f" (1e3 *. plain.Runner.result.Engine.seconds);
              model Native_model.hotspot_interp;
              model Native_model.kaffe_interp;
              model Native_model.hotspot_mixed;
              model Native_model.kaffe_jit;
            ])
      Vmbp_workloads.jvm results
  in
  Table.render
    ~headers:
      [ "benchmark"; "our base (ms)"; "Hotspot int"; "Kaffe int";
        "Hotspot mixed"; "Kaffe JIT" ]
    ~rows
  ^ "\n(all comparator columns are documented analytic models; see DESIGN.md)\n"

let inventory vm =
  Table.render ~headers:[ "program"; "description" ]
    ~rows:
      (List.map
         (fun (w : Vmbp_workloads.t) -> [ w.Vmbp_workloads.name; w.Vmbp_workloads.description ])
         (workloads_for vm))

let table8 ~scale =
  let schemes =
    [
      ("dynamic super", Technique.dynamic_super);
      ("across bb", Technique.across_bb);
      ("w/static across bb", Technique.with_static_across_bb ());
    ]
  in
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun (_, t) ->
            Par_runner.cell ~tag:"table8" ~scale ~cpu:cpu_p4 ~technique:t w)
          schemes)
      Vmbp_workloads.jvm
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        w.Vmbp_workloads.name
        :: List.map
             (cell_str (fun r ->
                  Printf.sprintf "%.2f"
                    (float_of_int
                       r.Runner.result.Engine.metrics.Metrics.code_bytes
                    /. 1024. /. 1024.)))
             row)
      Vmbp_workloads.jvm
      (chunks (List.length schemes) (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:
      ("benchmark" :: List.map (fun (n, _) -> n ^ " (MB)") schemes)
    ~rows

let table9 ~scale =
  let names = [ "tscp"; "brainless"; "brew" ] in
  let workloads =
    List.map
      (fun name ->
        Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth name))
      names
  in
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"table9" ~scale ~cpu:cpu_p4 ~technique:t w)
          [ Technique.plain; Technique.across_bb ])
      workloads
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        match List.filter_map ok_run row with
        | [ plain; across ] ->
            let slots =
              Vmbp_vm.Program.length
                (w.Vmbp_workloads.load ~scale).Vmbp_workloads.program
            in
            let model m =
              plain.Runner.result.Engine.cycles
              /. Native_model.cycles m ~cpu:cpu_p4 ~costs:Costs.default
                   ~plain:plain.Runner.result ~slots
            in
            [
              w.Vmbp_workloads.name;
              Table.f2 (Runner.speedup ~baseline:plain across);
              Table.f2 (model Native_model.bigforth);
              Table.f2 (model Native_model.iforth);
            ]
        | _ -> [ w.Vmbp_workloads.name; "fail"; "-"; "-" ])
      workloads
      (chunks 2 (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:[ "benchmark"; "across bb"; "bigForth (model)"; "iForth (model)" ]
    ~rows
  ^ "\n(speedups over plain; native compilers are documented models)\n"

let table10 ~scale =
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"table10" ~scale ~cpu:cpu_p4 ~technique:t w)
          [ Technique.plain; Technique.with_static_across_bb () ])
      Vmbp_workloads.jvm
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        match List.filter_map ok_run row with
        | [ plain; ours ] ->
            let slots =
              Vmbp_vm.Program.length
                (w.Vmbp_workloads.load ~scale).Vmbp_workloads.program
            in
            let model m =
              plain.Runner.result.Engine.cycles
              /. Native_model.cycles m ~cpu:cpu_p4 ~costs:Costs.default
                   ~plain:plain.Runner.result ~slots
            in
            [
              w.Vmbp_workloads.name;
              Table.f2 (Runner.speedup ~baseline:plain ours);
              Table.f2 (model Native_model.kaffe_jit);
              Table.f2 (model Native_model.hotspot_interp);
              Table.f2 (model Native_model.hotspot_mixed);
            ]
        | _ -> [ w.Vmbp_workloads.name; "fail"; "-"; "-"; "-" ])
      Vmbp_workloads.jvm
      (chunks 2 (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:
      [ "benchmark"; "w/static across bb"; "Kaffe JIT"; "Hotspot int";
        "Hotspot mixed" ]
    ~rows
  ^ "\n(speedups over plain; JVM comparators are documented models)\n"

(* ------------------------------------------------------------------ *)
(* Ablations *)

let btb_sweep ~scale =
  let w = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc") in
  let sizes = [ 64; 128; 256; 512; 1024; 2048; 4096; 0 ] in
  let techniques =
    [ Technique.plain; Technique.static_repl (); Technique.dynamic_repl ]
  in
  let cells =
    List.concat_map
      (fun entries ->
        List.map
          (fun t ->
            let predictor =
              if entries = 0 then Predictor.Btb Vmbp_machine.Btb.ideal
              else
                Predictor.Btb
                  (Vmbp_machine.Btb.classic ~entries ~associativity:4)
            in
            Par_runner.cell ~tag:"btb-sweep" ~scale ~predictor
              ~cpu:cpu_celeron ~technique:t w)
          techniques)
      sizes
  in
  let rows =
    List.map2
      (fun entries row ->
        let label = if entries = 0 then "unbounded" else string_of_int entries in
        label
        :: List.map
             (cell_str (fun r ->
                  Printf.sprintf "%.1f%%"
                    (100.
                    *. Metrics.misprediction_rate
                         r.Runner.result.Engine.metrics)))
             row)
      sizes
      (chunks (List.length techniques) (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:("BTB entries" :: List.map Technique.name techniques)
    ~rows

let predictor_compare ~scale =
  let w = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc") in
  let predictors =
    [
      Predictor.Btb (Vmbp_machine.Btb.classic ~entries:512 ~associativity:4);
      Predictor.Btb (Vmbp_machine.Btb.with_counters ~entries:512 ~associativity:4);
      Predictor.Two_level Vmbp_machine.Two_level.default;
      Predictor.Case_block 256;
      Predictor.Perfect;
    ]
  in
  let techniques = [ Technique.switch; Technique.plain; Technique.dynamic_super ] in
  let cells =
    List.concat_map
      (fun p ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"predictors" ~scale ~predictor:p
              ~cpu:cpu_celeron ~technique:t w)
          techniques)
      predictors
  in
  let rows =
    List.map2
      (fun p row ->
        Predictor.kind_name p
        :: List.map
             (cell_str (fun r ->
                  Printf.sprintf "%.1f%%"
                    (100.
                    *. Metrics.misprediction_rate
                         r.Runner.result.Engine.metrics)))
             row)
      predictors
      (chunks (List.length techniques) (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:("predictor" :: List.map Technique.name techniques)
    ~rows

let replica_strategy ~scale =
  let technique_of strategy =
    Technique.Static (Technique.static_params ~replicas:400 ~strategy ())
  in
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun s ->
            Par_runner.cell ~tag:"replica-strategy" ~scale ~cpu:cpu_celeron
              ~technique:(technique_of s) w)
          [ Technique.Round_robin; Technique.Random 42 ])
      Vmbp_workloads.forth
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        match List.filter_map ok_run row with
        | [ rr; rand ] ->
            let rr = rr.Runner.result.Engine.cycles in
            let rand = rand.Runner.result.Engine.cycles in
            [ w.Vmbp_workloads.name; Printf.sprintf "%.2fM" (rr /. 1e6);
              Printf.sprintf "%.2fM" (rand /. 1e6); Table.f2 (rand /. rr) ]
        | _ -> [ w.Vmbp_workloads.name; "fail"; "-"; "-" ])
      Vmbp_workloads.forth
      (chunks 2 (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:[ "benchmark"; "round-robin"; "random"; "random/rr" ]
    ~rows

let parse_algo ~scale =
  let workloads = Vmbp_workloads.forth @ Vmbp_workloads.jvm in
  let technique_of parse =
    Technique.Static (Technique.static_params ~superinstrs:400 ~parse ())
  in
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun p ->
            Par_runner.cell ~tag:"parse-algo" ~scale ~cpu:cpu_p4
              ~technique:(technique_of p) w)
          [ Technique.Greedy; Technique.Optimal ])
      workloads
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        match List.filter_map ok_run row with
        | [ greedy; optimal ] ->
            let stats (r : Runner.run) =
              ( r.Runner.result.Engine.cycles,
                r.Runner.result.Engine.metrics.Metrics.dispatches )
            in
            let gc, gd = stats greedy in
            let oc, od = stats optimal in
            [
              w.Vmbp_workloads.name;
              Table.human_int gd;
              Table.human_int od;
              Table.f2 (gc /. oc);
            ]
        | _ -> [ w.Vmbp_workloads.name; "fail"; "-"; "-" ])
      workloads
      (chunks 2 (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:
      [ "benchmark"; "greedy dispatches"; "optimal dispatches";
        "greedy/optimal cycles" ]
    ~rows

let subroutine_threading ~scale =
  let techniques =
    [ Technique.plain; Technique.dynamic_super; Technique.across_bb;
      Technique.subroutine ]
  in
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"subroutine-threading" ~scale ~cpu:cpu_p4
              ~technique:t w)
          techniques)
      Vmbp_workloads.forth
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) row ->
        (* Plain is the first column; its run doubles as the baseline. *)
        let baseline =
          match row with
          | b :: _ -> ok_run b
          | [] -> None
        in
        w.Vmbp_workloads.name
        :: List.map
             (fun timed ->
               match (baseline, ok_run timed) with
               | Some baseline, Some r ->
                   Printf.sprintf "%s (%s mp)"
                     (Table.f2 (Runner.speedup ~baseline r))
                     (Table.human_int
                        r.Runner.result.Engine.metrics.Metrics.mispredicts)
               | _ -> "fail")
             row)
      Vmbp_workloads.forth
      (chunks (List.length techniques) (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:("benchmark" :: List.map Technique.name techniques)
    ~rows

(* Residual mispredictions under dynamic replication: the paper's
   simulations attribute them to indirect VM branches, mostly returns. *)
let residual_mispredicts ~scale =
  let results =
    Par_runner.run_cells
      (List.map
         (fun w ->
           Par_runner.cell ~tag:"residual-mispredicts" ~scale
             ~cpu:Cpu_model.ideal ~technique:Technique.dynamic_repl w)
         Vmbp_workloads.forth)
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) timed ->
        match ok_run timed with
        | None -> [ w.Vmbp_workloads.name; "fail"; "-"; "-" ]
        | Some r ->
            let m = r.Runner.result.Engine.metrics in
            [
              w.Vmbp_workloads.name;
              Table.human_int m.Metrics.mispredicts;
              Table.human_int m.Metrics.vm_branch_mispredicts;
              Printf.sprintf "%.1f%%"
                (100.
                *. float_of_int m.Metrics.vm_branch_mispredicts
                /. float_of_int (max 1 m.Metrics.mispredicts));
            ])
      Vmbp_workloads.forth results
  in
  Table.render
    ~headers:
      [ "benchmark"; "mispredicts"; "at VM control transfers"; "share" ]
    ~rows
  ^ "\n(unbounded BTB, so no capacity/conflict noise: what remains after\n\
     dynamic replication follows VM branches, calls and returns; the rest\n\
     are compulsory first-execution misses of the fresh copies)\n"

(* I-cache geometry sweep: the simulator experiments of the TR version
   (Section 6): how cache capacity limits the code-growth techniques. *)
let icache_sweep ~scale =
  let w =
    match Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "brew" with
    | Some w -> w
    | None -> assert false
  in
  let techniques =
    [ Technique.plain; Technique.dynamic_super; Technique.dynamic_repl ]
  in
  let sizes = [ 4; 8; 16; 32; 64; 0 ] in
  let cpu_for kb =
    let icache =
      if kb = 0 then Icache.infinite
      else
        Icache.make_config ~size_bytes:(kb * 1024) ~line_bytes:32
          ~associativity:4
    in
    { cpu_celeron with Cpu_model.icache;
      Cpu_model.name = Printf.sprintf "celeron-%dk" kb }
  in
  let cells =
    List.concat_map
      (fun kb ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"icache-sweep" ~scale ~cpu:(cpu_for kb)
              ~technique:t w)
          techniques)
      sizes
  in
  let rows =
    List.map2
      (fun kb row ->
        (if kb = 0 then "infinite" else Printf.sprintf "%d KB" kb)
        :: List.map
             (cell_str (fun r ->
                  Printf.sprintf "%.2fM (%s miss)"
                    (r.Runner.result.Engine.cycles /. 1e6)
                    (Table.human_int
                       r.Runner.result.Engine.metrics.Metrics.icache_misses)))
             row)
      sizes
      (chunks (List.length techniques) (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:("I-cache" :: List.map Technique.name techniques)
    ~rows

(* Misprediction-penalty sensitivity: the paper's motivation scales with
   pipeline depth (10 cycles on the P3 era, 20 on Northwood, ~30 on
   Prescott). *)
let penalty_sweep ~scale =
  let w =
    match Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc" with
    | Some w -> w
    | None -> assert false
  in
  let penalties = [ 5; 10; 20; 30; 40 ] in
  let cpu_for penalty =
    { cpu_p4 with Cpu_model.mispredict_penalty = penalty;
      Cpu_model.name = Printf.sprintf "p4-%dcy" penalty }
  in
  let cells =
    List.concat_map
      (fun penalty ->
        List.map
          (fun t ->
            Par_runner.cell ~tag:"penalty-sweep" ~scale ~cpu:(cpu_for penalty)
              ~technique:t w)
          [ Technique.plain; Technique.with_static_super () ])
      penalties
  in
  let rows =
    List.map2
      (fun penalty row ->
        match List.filter_map ok_run row with
        | [ plain; best ] ->
            [
              string_of_int penalty;
              Printf.sprintf "%.2fM"
                (plain.Runner.result.Engine.cycles /. 1e6);
              Printf.sprintf "%.2fM" (best.Runner.result.Engine.cycles /. 1e6);
              Table.f2 (Runner.speedup ~baseline:plain best);
            ]
        | _ -> [ string_of_int penalty; "fail"; "-"; "-" ])
      penalties
      (chunks 2 (Par_runner.run_cells cells))
  in
  Table.render
    ~headers:
      [ "penalty (cycles)"; "plain"; "with static super"; "speedup" ]
    ~rows
  ^ "\n(deeper pipelines make the techniques more valuable: the paper's\n\
     Prescott remark, Section 2.2)\n"

(* Static program characterisation: the structural differences Section 7.3
   uses to explain Forth-vs-JVM behaviour (block lengths, call density). *)
let program_stats ~scale =
  let dsuper_runs =
    Par_runner.run_cells
      (List.map
         (fun w ->
           Par_runner.cell ~tag:"program-stats" ~scale ~cpu:Cpu_model.ideal
             ~technique:Technique.dynamic_super w)
         Vmbp_workloads.all)
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) dsuper_timed ->
        let loaded = w.Vmbp_workloads.load ~scale in
        (* quickened form, so quick instructions are characterised *)
        let p = Vmbp_workloads.quickened_program loaded in
        let bb = Vmbp_vm.Basic_block.analyze p in
        let n = Vmbp_vm.Program.length p in
        let nblocks = Array.length bb.Vmbp_vm.Basic_block.blocks in
        let calls = ref 0 and branches = ref 0 and returns = ref 0 in
        for i = 0 to n - 1 do
          match (Vmbp_vm.Program.instr_at p i).Vmbp_vm.Instr.branch with
          | Vmbp_vm.Instr.Call _ | Vmbp_vm.Instr.Indirect_call -> incr calls
          | Vmbp_vm.Instr.Cond_branch _ | Vmbp_vm.Instr.Uncond_branch _
          | Vmbp_vm.Instr.Indirect_branch ->
              incr branches
          | Vmbp_vm.Instr.Return -> incr returns
          | Vmbp_vm.Instr.Straight | Vmbp_vm.Instr.Stop -> ()
        done;
        (* executed superinstruction length: VM instructions per dispatch
           under within-block dynamic superinstructions (paper: ~3 for
           Forth, longer for the JVM) *)
        let super_len =
          match ok_run dsuper_timed with
          | None -> "fail"
          | Some dsuper ->
              let dm = dsuper.Runner.result.Engine.metrics in
              Printf.sprintf "%.2f"
                (float_of_int dm.Metrics.vm_instrs
                /. float_of_int (max 1 dm.Metrics.dispatches))
        in
        [
          Printf.sprintf "%s/%s"
            (Vmbp_workloads.vm_name w.Vmbp_workloads.vm)
            w.Vmbp_workloads.name;
          string_of_int n;
          string_of_int nblocks;
          Printf.sprintf "%.2f" (float_of_int n /. float_of_int nblocks);
          super_len;
          Printf.sprintf "%.1f%%" (100. *. float_of_int !calls /. float_of_int n);
          Printf.sprintf "%.1f%%"
            (100. *. float_of_int (!branches + !returns) /. float_of_int n);
        ])
      Vmbp_workloads.all dsuper_runs
  in
  Table.render
    ~headers:
      [ "benchmark"; "slots"; "blocks"; "avg block len"; "exec super len";
        "calls"; "branches" ]
    ~rows
  ^ "
(paper Section 7.3: Forth blocks are shorter -- many calls/returns --
     which is why static superinstructions pay off more on the JVM)
"

let dispatch_ratio ~scale =
  let workloads = Vmbp_workloads.forth @ Vmbp_workloads.jvm in
  let results =
    Par_runner.run_cells
      (List.map
         (fun w ->
           Par_runner.cell ~tag:"dispatch-ratio" ~scale ~cpu:cpu_p4
             ~technique:Technique.plain w)
         workloads)
  in
  let rows =
    List.map2
      (fun (w : Vmbp_workloads.t) timed ->
        let name =
          Printf.sprintf "%s/%s"
            (Vmbp_workloads.vm_name w.Vmbp_workloads.vm)
            w.Vmbp_workloads.name
        in
        match ok_run timed with
        | None -> [ name; "fail"; "-"; "-" ]
        | Some r ->
            let m = r.Runner.result.Engine.metrics in
            [
              name;
              Table.human_int m.Metrics.native_instrs;
              Table.human_int m.Metrics.indirect_branches;
              Printf.sprintf "%.1f%%"
                (100. *. float_of_int m.Metrics.indirect_branches
                /. float_of_int m.Metrics.native_instrs);
            ])
      workloads results
  in
  Table.render
    ~headers:[ "benchmark"; "native instrs"; "indirect branches"; "ratio" ]
    ~rows

(* ------------------------------------------------------------------ *)

let all =
  [
    {
      id = "table1";
      title = "Table I: BTB predictions on a small VM program";
      paper_claim =
        "switch dispatch mispredicts every dispatch of the loop; threaded \
         code mispredicts only A's branch (twice per iteration)";
      default_scale = 1;
      run = table1;
    };
    {
      id = "table2";
      title = "Table II: replication fixes BTB predictions";
      paper_claim = "with two round-robin replicas of A, no steady-state misses";
      default_scale = 1;
      run = table2;
    };
    {
      id = "table3";
      title = "Table III: bad static replication";
      paper_claim =
        "replicating B in A B A B A can increase mispredictions from 2 to 3 \
         per iteration";
      default_scale = 1;
      run = table3;
    };
    {
      id = "table4";
      title = "Table IV: superinstructions fix BTB predictions";
      paper_claim = "combining A-B leaves every dispatch monomorphic";
      default_scale = 1;
      run = table4;
    };
    {
      id = "table5";
      title = "Table V: base JVM vs other JVMs (comparators modelled)";
      paper_claim =
        "our base interpreter is close to Hotspot's interpreter and far \
         ahead of Kaffe's; JITs are several times faster";
      default_scale = 1;
      run = table5;
    };
    {
      id = "table6";
      title = "Table VI: Forth benchmark programs";
      paper_claim = "seven programs matching the Gforth suite's character";
      default_scale = 1;
      run = (fun ~scale:_ -> inventory Vmbp_workloads.Forth);
    };
    {
      id = "table7";
      title = "Table VII: JVM benchmark programs";
      paper_claim = "seven programs matching SPECjvm98's character";
      default_scale = 1;
      run = (fun ~scale:_ -> inventory Vmbp_workloads.Jvm);
    };
    {
      id = "fig7";
      title = "Figure 7: Gforth speedups on the Celeron-800";
      paper_claim =
        "dynamic beats static; combinations beat single techniques; code \
         growth hurts some benchmarks on the small I-cache";
      default_scale = 2;
      run = (fun ~scale -> render_speedups ~scale ~vm:Vmbp_workloads.Forth ~cpu:cpu_celeron);
    };
    {
      id = "fig8";
      title = "Figure 8: Gforth speedups on the Pentium 4";
      paper_claim =
        "larger speedups than the Celeron (20-cycle penalty): up to ~4.5x \
         for with-static-super";
      default_scale = 2;
      run = (fun ~scale -> render_speedups ~scale ~vm:Vmbp_workloads.Forth ~cpu:cpu_p4);
    };
    {
      id = "fig9";
      title = "Figure 9: JVM speedups on the Pentium 4";
      paper_claim =
        "same ordering as Gforth but smaller magnitudes (lower \
         dispatch-to-work ratio)";
      default_scale = 2;
      run = (fun ~scale -> render_speedups ~scale ~vm:Vmbp_workloads.Jvm ~cpu:cpu_p4);
    };
    {
      id = "fig10";
      title = "Figure 10: performance counters, bench-gc (Forth, P4)";
      paper_claim =
        "plain/static-repl/dynamic-repl execute identical instructions; \
         mispredictions dominate plain's cycles";
      default_scale = 2;
      run =
        (fun ~scale ->
          render_counters ~scale ~vm:Vmbp_workloads.Forth ~workload:"bench-gc"
            ~cpu:cpu_p4);
    };
    {
      id = "fig11";
      title = "Figure 11: performance counters, brew (Forth, P4)";
      paper_claim = "same shape on the largest Forth benchmark";
      default_scale = 2;
      run =
        (fun ~scale ->
          render_counters ~scale ~vm:Vmbp_workloads.Forth ~workload:"brew"
            ~cpu:cpu_p4);
    };
    {
      id = "fig12";
      title = "Figure 12: performance counters, mpeg (JVM, P4)";
      paper_claim =
        "static super does comparatively better on the JVM (longer blocks)";
      default_scale = 2;
      run =
        (fun ~scale ->
          render_counters ~scale ~vm:Vmbp_workloads.Jvm ~workload:"mpeg" ~cpu:cpu_p4);
    };
    {
      id = "fig13";
      title = "Figure 13: performance counters, compress (JVM, P4)";
      paper_claim =
        "dynamic repl's speedup comes entirely from mispredictions";
      default_scale = 2;
      run =
        (fun ~scale ->
          render_counters ~scale ~vm:Vmbp_workloads.Jvm ~workload:"compress"
            ~cpu:cpu_p4);
    };
    {
      id = "fig14";
      title = "Figure 14: static replication/superinstruction mix, bench-gc (Celeron)";
      paper_claim =
        "cycles fall with the total budget and flatten; mixes beat the \
         extreme points";
      default_scale = 1;
      run =
        (fun ~scale ->
          render_static_mix ~which:`Cycles ~scale ~vm:Vmbp_workloads.Forth
            ~workload:"bench-gc" ~cpu:cpu_celeron
            ~totals:[ 0; 25; 50; 100; 200; 400; 800; 1600 ]);
    };
    {
      id = "fig15";
      title = "Figure 15: static mix cycles, mpeg (JVM, P4)";
      paper_claim =
        "for the JVM, superinstructions dominate: replicas at the expense \
         of superinstructions do not help";
      default_scale = 1;
      run =
        (fun ~scale ->
          render_static_mix ~which:`Cycles ~scale ~vm:Vmbp_workloads.Jvm
            ~workload:"mpeg" ~cpu:cpu_p4
            ~totals:[ 0; 50; 100; 200; 300; 400 ]);
    };
    {
      id = "fig16";
      title = "Figure 16: static mix mispredictions, mpeg (JVM, P4)";
      paper_claim =
        "small replica counts can increase mispredictions (polymorphic \
         hot instructions)";
      default_scale = 1;
      run =
        (fun ~scale ->
          render_static_mix ~which:`Mispredicts ~scale ~vm:Vmbp_workloads.Jvm
            ~workload:"mpeg" ~cpu:cpu_p4
            ~totals:[ 0; 50; 100; 200; 300; 400 ]);
    };
    {
      id = "table8";
      title = "Table VIII: run-time code of the dynamic schemes (JVM)";
      paper_claim =
        "dynamic super is compact; across-bb variants generate several \
         times more code";
      default_scale = 2;
      run = table8;
    };
    {
      id = "table9";
      title = "Table IX: across-bb vs native Forth compilers (modelled)";
      paper_claim =
        "the optimized interpreter lands within a small factor of simple \
         native compilers";
      default_scale = 2;
      run = table9;
    };
    {
      id = "table10";
      title = "Table X: JVM vs Kaffe/Hotspot (comparators modelled)";
      paper_claim =
        "w/static-across-bb beats Hotspot's interpreter; JITs remain \
         several times faster";
      default_scale = 2;
      run = table10;
    };
    {
      id = "btb-sweep";
      title = "Ablation: BTB size sweep (bench-gc, Celeron)";
      paper_claim =
        "capacity misses erode replication's benefit on small BTBs";
      default_scale = 1;
      run = btb_sweep;
    };
    {
      id = "predictors";
      title = "Ablation: predictor comparison (Section 8 related work)";
      paper_claim =
        "two-level predictors and the case block table fix switch dispatch \
         in hardware";
      default_scale = 1;
      run = predictor_compare;
    };
    {
      id = "replica-strategy";
      title = "Ablation: round-robin vs random replica selection";
      paper_claim = "round-robin selection beats random (Section 5.1)";
      default_scale = 1;
      run = replica_strategy;
    };
    {
      id = "parse-algo";
      title = "Ablation: greedy vs optimal superinstruction selection";
      paper_claim =
        "optimal parsing saves almost nothing over greedy (Section 5.1)";
      default_scale = 1;
      run = parse_algo;
    };
    {
      id = "residual-mispredicts";
      title = "Ablation: residual mispredictions under dynamic replication";
      paper_claim =
        "with replication, the remaining mispredicted dispatches follow \
         indirect VM-level transfers, mostly returns (Section 7.3)";
      default_scale = 1;
      run = residual_mispredicts;
    };
    {
      id = "icache-sweep";
      title = "Ablation: I-cache capacity sweep (brew, Celeron base)";
      paper_claim =
        "code growth from replication only hurts when the working set \
         outgrows the cache; dynamic super is insensitive (Section 7.4)";
      default_scale = 1;
      run = icache_sweep;
    };
    {
      id = "penalty-sweep";
      title = "Ablation: misprediction-penalty sensitivity (bench-gc, P4 base)";
      paper_claim =
        "speedups grow with pipeline depth: ~10 cycles on the P3, 20 on \
         Northwood, ~30 on Prescott (Section 2.2)";
      default_scale = 1;
      run = penalty_sweep;
    };
    {
      id = "program-stats";
      title = "Ablation: static program characterisation";
      paper_claim =
        "JVM basic blocks are longer than Forth's (fewer calls/returns), \
         explaining where static superinstructions pay off (Section 7.3)";
      default_scale = 1;
      run = program_stats;
    };
    {
      id = "subroutine-threading";
      title = "Ablation: subroutine threading (Berndl et al. 2005, Section 8)";
      paper_claim =
        "compiling VM code to native call sequences removes dispatch \
         indirect branches entirely, at call/return overhead on every \
         instruction; competitive with dynamic superinstructions";
      default_scale = 1;
      run = subroutine_threading;
    };
    {
      id = "dispatch-ratio";
      title = "Ablation: indirect-branch share of executed instructions";
      paper_claim =
        "Forth ~16.5% of retired instructions are indirect branches; JVM ~6%";
      default_scale = 1;
      run = dispatch_ratio;
    };
  ]

let find id = List.find_opt (fun e -> e.id = id) all

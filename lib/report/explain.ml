open Vmbp_core
open Vmbp_machine
open Vmbp_obs

type t = {
  run : Runner.run;
  pred_kind : Predictor.kind;
  pred_att : Attribution.t;
  icache_att : Attribution.t;
  pred_sets : int;
  icache_sets : int;
  iset : Vmbp_vm.Instr_set.t;
}

(* Re-run one cell with attribution observers attached to the production
   simulators.  The engine, fuel, training-profile policy and metric
   bookkeeping are exactly {!Runner.run}'s; the only additions are the
   observer hooks, which by contract cannot change any decision, so the
   attributed run must reproduce the unobserved counters bit for bit
   (checked below, and cross-checked against {!Runner.run_checked} by
   {!verify}). *)
let run ?(scale = 1) ?predictor ?profile ~cpu ~technique
    (workload : Vmbp_workloads.t) =
  match
    let loaded = workload.Vmbp_workloads.load ~scale in
    let profile = Runner.effective_profile ?profile ~scale ~technique workload in
    let config = Config.make ~cpu ?predictor technique in
    let layout =
      Config.build_layout ?profile config ~program:loaded.Vmbp_workloads.program
    in
    let session = loaded.Vmbp_workloads.fresh_session () in
    let m = Metrics.create () in
    let pred = Predictor.create (Config.predictor_kind config) in
    let icache = Icache.create cpu.Cpu_model.icache in
    let hits = ref 0 and misses = ref 0 in
    let pred_att = Attribution.create () in
    let icache_att = Attribution.create () in
    (* The opcode being dispatched to / fetched for, stashed by the sink so
       the observers (which only see simulator-level state) can attribute
       events to VM opcodes. *)
    let cur_op = ref (-1) in
    let cur_fetch_op = ref (-1) in
    (* Last displacer of each branch address (resp. cache line): recorded at
       eviction time, consulted when the victim later misses again.  A miss
       on a never-displaced branch is a cold miss; one on a displaced branch
       is a conflict, attributed to the displacing opcode. *)
    let branch_evictor : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let line_evictor : (int, int) Hashtbl.t = Hashtbl.create 256 in
    let observed_pred = ref false in
    (match Predictor.btb pred with
    | Some b ->
        observed_pred := true;
        Btb.set_observer b
          (Some
             (fun ~branch ~set outcome ->
               match outcome with
               | Btb.Hit -> ()
               | Btb.Wrong_target ->
                   Attribution.note pred_att ~opcode:!cur_op ~branch ~set
                     Attribution.Wrong_target
               | Btb.Miss { evicted } ->
                   let category =
                     match Hashtbl.find_opt branch_evictor branch with
                     | Some op -> Attribution.Conflict op
                     | None -> Attribution.Cold
                   in
                   Attribution.note pred_att ~opcode:!cur_op ~branch ~set
                     category;
                   if evicted >= 0 then
                     Hashtbl.replace branch_evictor evicted !cur_op))
    | None -> ());
    (match Predictor.two_level pred with
    | Some p ->
        observed_pred := true;
        (* The two-level table has no tags: every access overwrites slot
           [index], so the displacement record is simply the last writer of
           each slot. *)
        let writer : (int, int * int) Hashtbl.t = Hashtbl.create 256 in
        Two_level.set_observer p
          (Some
             (fun ~branch ~index ~empty ~correct ->
               if not correct then begin
                 let category =
                   if empty then Attribution.Cold
                   else
                     match Hashtbl.find_opt writer index with
                     | Some (b, _) when b = branch -> Attribution.Wrong_target
                     | Some (_, op) -> Attribution.Conflict op
                     | None -> Attribution.Cold
                 in
                 Attribution.note pred_att ~opcode:!cur_op ~branch ~set:index
                   category
               end;
               Hashtbl.replace writer index (branch, !cur_op)))
    | None -> ());
    Icache.set_observer icache
      (Some
         (fun ~line ~set ~evicted ->
           let category =
             match Hashtbl.find_opt line_evictor line with
             | Some op -> Attribution.Conflict op
             | None -> Attribution.Cold
           in
           Attribution.note icache_att ~opcode:!cur_fetch_op ~branch:line ~set
             category;
           if evicted >= 0 then Hashtbl.replace line_evictor evicted !cur_fetch_op));
    let sink =
      {
        Engine.on_dispatch =
          (fun ~branch ~target ~opcode ~vm_transfer ->
            cur_op := opcode;
            if not (Predictor.access pred ~branch ~target ~opcode) then begin
              m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
              if vm_transfer then
                m.Metrics.vm_branch_mispredicts <-
                  m.Metrics.vm_branch_mispredicts + 1;
              (* Predictors without an observer hook (case block table,
                 perfect, never) have no cold/conflict structure to expose;
                 every miss is a stale-target miss on the opcode's entry. *)
              if not !observed_pred then
                Attribution.note pred_att ~opcode ~branch ~set:(-1)
                  Attribution.Wrong_target
            end);
        on_fetch =
          (fun ~addr ~bytes ~opcode ->
            cur_fetch_op := opcode;
            Icache.fetch icache ~addr ~bytes ~hits ~misses);
      }
    in
    let steps, trapped =
      Engine.run_events ~fuel:Runner.engine_fuel ~metrics:m ~layout
        ~exec:session.Vmbp_workloads.exec ~sink ()
    in
    m.Metrics.icache_fetches <- !hits + !misses;
    m.Metrics.icache_misses <- !misses;
    m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
    let result =
      {
        Engine.metrics = m;
        cycles = Cpu_model.cycles cpu m;
        seconds = Cpu_model.seconds cpu m;
        steps;
        trapped;
      }
    in
    let pred_sets =
      match Config.predictor_kind config with
      | Predictor.Btb { entries; associativity; _ } when entries > 0 ->
          entries / associativity
      | Predictor.Two_level { entries; _ } -> entries
      | _ -> 0
    in
    let icache_sets =
      let c = cpu.Cpu_model.icache in
      if c.Icache.size_bytes = 0 then 0
      else c.Icache.size_bytes / c.Icache.line_bytes / c.Icache.associativity
    in
    ( result,
      session,
      Config.predictor_kind config,
      pred_att,
      icache_att,
      pred_sets,
      icache_sets,
      loaded.Vmbp_workloads.program.Vmbp_vm.Program.iset )
  with
  | result, session, pred_kind, pred_att, icache_att, pred_sets, icache_sets,
    iset -> (
      match result.Engine.trapped with
      | Some msg ->
          Error
            (Printf.sprintf "%s/%s under %s trapped: %s"
               (Vmbp_workloads.vm_name workload.Vmbp_workloads.vm)
               workload.Vmbp_workloads.name (Technique.name technique) msg)
      | None ->
          let m = result.Engine.metrics in
          (* The attribution totals are definitionally the simulator's own
             counters; a mismatch means an observer missed or double-counted
             an event and the whole explanation is untrustworthy. *)
          if Attribution.total pred_att <> m.Metrics.mispredicts then
            Error
              (Printf.sprintf
                 "attribution mismatch: %d attributed mispredicts vs %d counted"
                 (Attribution.total pred_att) m.Metrics.mispredicts)
          else if Attribution.total icache_att <> m.Metrics.icache_misses then
            Error
              (Printf.sprintf
                 "attribution mismatch: %d attributed I-cache misses vs %d \
                  counted"
                 (Attribution.total icache_att) m.Metrics.icache_misses)
          else
            Ok
              {
                run =
                  {
                    Runner.workload;
                    technique;
                    cpu;
                    result;
                    output = session.Vmbp_workloads.output ();
                  };
                pred_kind;
                pred_att;
                icache_att;
                pred_sets;
                icache_sets;
                iset;
              })
  | exception Runner.Run_failed msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

let verify ?scale ?predictor ?profile ~cpu ~technique workload t =
  match
    Runner.run_checked ?scale ?predictor ?profile ~cell:"explain" ~cpu
      ~technique workload
  with
  | Error msg -> Error ("self-check failed: " ^ msg)
  | Ok checked ->
      let c = checked.Runner.result.Engine.metrics in
      let a = t.run.Runner.result.Engine.metrics in
      if
        Attribution.total t.pred_att = c.Metrics.mispredicts
        && Attribution.total t.icache_att = c.Metrics.icache_misses
        && a.Metrics.mispredicts = c.Metrics.mispredicts
        && a.Metrics.icache_misses = c.Metrics.icache_misses
        && a.Metrics.vm_instrs = c.Metrics.vm_instrs
      then Ok ()
      else
        Error
          (Printf.sprintf
             "attribution disagrees with the self-checked run: attributed \
              %d/%d mispredicts, %d/%d I-cache misses"
             (Attribution.total t.pred_att)
             c.Metrics.mispredicts
             (Attribution.total t.icache_att)
             c.Metrics.icache_misses)

(* ------------------------------------------------------------------ *)
(* Rendering *)

let opcode_name iset op =
  if op < 0 then "(startup)"
  else
    match Vmbp_vm.Instr_set.get iset op with
    | i -> i.Vmbp_vm.Instr.name
    | exception _ -> Printf.sprintf "op%d" op

let pct part whole =
  if whole = 0 then "0.0%"
  else Printf.sprintf "%.1f%%" (100. *. float_of_int part /. float_of_int whole)

let attribution_table ~top ~iset ~what att =
  let total = Attribution.total att in
  let buf = Buffer.create 512 in
  Buffer.add_string buf
    (Printf.sprintf "%s by opcode (%d total):\n" what total);
  let rows =
    Attribution.by_opcode att
    |> List.filteri (fun i _ -> i < top)
    |> List.map (fun (op, b) ->
           let t =
             b.Attribution.cold + b.Attribution.wrong + b.Attribution.conflict
           in
           [
             opcode_name iset op;
             Table.human_int t;
             Table.human_int b.Attribution.cold;
             Table.human_int b.Attribution.wrong;
             Table.human_int b.Attribution.conflict;
             pct t total;
           ])
  in
  Buffer.add_string buf
    (Table.render
       ~headers:[ "opcode"; "misses"; "cold"; "wrong-target"; "conflict"; "share" ]
       ~rows);
  buf

let conflict_table ~top ~iset ~what att buf =
  match Attribution.conflicts att with
  | [] -> ()
  | pairs ->
      Buffer.add_string buf (Printf.sprintf "\nTop %s conflicts:\n" what);
      let rows =
        pairs
        |> List.filteri (fun i _ -> i < top)
        |> List.map (fun ((victim, evictor, set), n) ->
               [
                 opcode_name iset victim;
                 opcode_name iset evictor;
                 (if set < 0 then "-" else string_of_int set);
                 Table.human_int n;
               ])
      in
      Buffer.add_string buf
        (Table.render ~headers:[ "victim"; "evicted by"; "set"; "count" ] ~rows)

(* Shade one cell of a per-set histogram: space for zero, then nine
   steps of increasing density up to the hottest set. *)
let shade_chars = " .:-=+*#%@"

let heatmap counts buf =
  let max_c = Array.fold_left max 0 counts in
  if max_c = 0 then Buffer.add_string buf "  (no events)\n"
  else
    Array.iteri
      (fun i c ->
        if i mod 64 = 0 then
          Buffer.add_string buf (if i = 0 then "  " else "\n  ");
        let idx = if c = 0 then 0 else min 9 (1 + (c * 8 / max_c)) in
        Buffer.add_char buf shade_chars.[idx])
      counts;
  if max_c > 0 then
    Buffer.add_string buf
      (Printf.sprintf "\n  (%d sets, 64 per row; '@' = %d events)\n"
         (Array.length counts) max_c)

let occupancy_heatmap att ~nsets buf =
  let occ = Attribution.set_occupancy att ~nsets in
  let max_c = Array.fold_left max 0 occ in
  if max_c > 0 then begin
    Buffer.add_string buf "\nPer-set occupancy (distinct missing addresses):\n";
    heatmap occ buf
  end

let section ~top ~iset ~what ~nsets att =
  let buf = attribution_table ~top ~iset ~what att in
  conflict_table ~top ~iset ~what:(String.lowercase_ascii what) att buf;
  if nsets > 0 && Attribution.total att > 0 then begin
    Buffer.add_string buf
      (Printf.sprintf "\nPer-set %s heatmap:\n" (String.lowercase_ascii what));
    heatmap (Attribution.set_counts att ~nsets) buf;
    occupancy_heatmap att ~nsets buf
  end;
  Buffer.contents buf

let render ?(top = 10) t =
  let r = t.run in
  let m = r.Runner.result.Engine.metrics in
  let header =
    Printf.sprintf
      "%s/%s  technique=%s  cpu=%s  predictor=%s\n\
       %s VM instrs, %s dispatches, %s mispredicts (%.1f%% of indirect \
       branches), %s I-cache misses\n\n"
      (Vmbp_workloads.vm_name r.Runner.workload.Vmbp_workloads.vm)
      r.Runner.workload.Vmbp_workloads.name
      (Technique.name r.Runner.technique)
      r.Runner.cpu.Cpu_model.name
      (Predictor.kind_name t.pred_kind)
      (Table.human_int m.Metrics.vm_instrs)
      (Table.human_int m.Metrics.dispatches)
      (Table.human_int m.Metrics.mispredicts)
      (100. *. Metrics.misprediction_rate m)
      (Table.human_int m.Metrics.icache_misses)
  in
  let pred =
    section ~top ~iset:t.iset ~what:"Mispredicts" ~nsets:t.pred_sets t.pred_att
  in
  let icache =
    if Attribution.total t.icache_att = 0 then
      "I-cache misses: none (infinite cache or fully resident).\n"
    else
      section ~top ~iset:t.iset ~what:"I-cache misses" ~nsets:t.icache_sets
        t.icache_att
  in
  header ^ pred ^ "\n" ^ icache

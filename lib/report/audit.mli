(** Differential self-checking of the fast simulators against the naive
    reference models ({!Vmbp_machine.Reference}).

    The harness has three layers:

    - {b Lockstep checking}: [dual_run] executes a cell once, feeding
      every dispatch and fetch event to both the production
      predictor/I-cache and the reference model, and stops at the first
      event where their answers differ.  [--self-check] routes every
      cell through it.
    - {b Divergence minimization}: on a mismatch, the engine run is
      repeated with event recording, and [shrink] binary-searches the
      stream for the smallest prefix that still diverges.  The result is
      written as a standalone repro artifact replayable by
      [bin/main.exe audit-repro] (and by [replay_repro] in tests).
    - {b Sampled cross-checks}: [sampled] makes the deterministic
      per-cell decision behind [--audit-sample], which re-runs a
      fraction of trace-replay/memo-served cells directly and compares
      results.

    Divergences accumulate in process-global, mutex-protected statistics
    so a parallel run's workers all report into one place; drivers read
    them for the [vmbp-cells/7] JSON counters and the exit code. *)

open Vmbp_core
open Vmbp_machine

(** {1 Events and counters} *)

type event =
  | Dispatch of { branch : int; target : int; opcode : int; vm_transfer : bool }
  | Fetch of { addr : int; bytes : int }

(** Running totals of one simulator side.  Conservation invariants:
    [predictions = pred_hits + mispredicts] and
    [icache_fetches = icache_hits + icache_misses]. *)
type counters = {
  predictions : int;
  pred_hits : int;
  mispredicts : int;
  vm_branch_mispredicts : int;
  icache_fetches : int;
  icache_hits : int;
  icache_misses : int;
}

val zero_counters : counters
val pp_counters : counters -> string

(** {1 Simulators} *)

(** One simulator behind a uniform face: answer dispatch/fetch events
    one at a time, keeping running counters.  [sim_fetch] returns the
    (hits, misses) contribution of that fetch. *)
type sim = {
  sim_predict : branch:int -> target:int -> opcode:int -> bool;
  sim_fetch : addr:int -> bytes:int -> int * int;
  sim_counters : unit -> counters;
}

val fast_sim : predictor:Predictor.kind -> icache:Icache.config -> sim
(** The production simulators ({!Predictor}, {!Icache}). *)

val reference_sim : predictor:Predictor.kind -> icache:Icache.config -> sim
(** The naive oracles ({!Reference}). *)

(** {1 Divergences} *)

type divergence = {
  d_cell : string;
  d_predictor : Predictor.kind;
  d_icache : Icache.config;
  d_index : int;  (** first divergent event; [-1] for result-level mismatches *)
  d_event : event option;
  d_fast : counters;  (** fast-side counters after the divergent event *)
  d_reference : counters;
  d_detail : string;
  d_artifact : string option;
}

val describe : divergence -> string

(** {1 Lockstep dual run} *)

val dual_run :
  ?fuel:int ->
  ?poll:(unit -> unit) ->
  ?fast:sim ->
  cell:string ->
  config:Config.t ->
  layout:Code_layout.t ->
  exec:Engine.exec ->
  unit ->
  (Engine.result, divergence) result
(** Execute one cell, checking every event.  On agreement the result is
    exactly what {!Engine.run} would produce.  [?fast] substitutes the
    fast side (mutation tests inject deliberately broken simulators). *)

(** {1 Recording, shrinking, artifacts} *)

val max_artifact_events : int

val record_events :
  ?fuel:int -> ?limit:int -> layout:Code_layout.t -> exec:Engine.exec ->
  unit -> event array
(** Re-run the engine, capturing the first [limit] events. *)

val check_events :
  ?fast:sim ->
  ?reference:sim ->
  predictor:Predictor.kind ->
  icache:Icache.config ->
  event array ->
  (int * string * counters * counters) option
(** Replay a stream through two fresh simulators; the first divergent
    index with a description and both sides' counters, or [None]. *)

val shrink :
  ?fast_maker:(unit -> sim) ->
  predictor:Predictor.kind ->
  icache:Icache.config ->
  event array ->
  event array option
(** Smallest prefix that still diverges (binary search), or [None] if
    the full stream does not diverge. *)

type repro = {
  r_cell : string;
  r_predictor : Predictor.kind;
  r_icache : Icache.config;
  r_index : int;
  r_detail : string;
  r_fast : counters;
  r_reference : counters;
  r_events : event array;
}

val write_repro : path:string -> divergence -> event array -> unit
val load_repro : string -> (repro, string) result

val replay_repro :
  ?fast:sim -> ?reference:sim -> repro ->
  (int * string * counters * counters) option
(** Replay a loaded artifact; [None] means fast and reference now agree
    on the recorded stream (the recorded bug no longer reproduces). *)

(** {1 Global audit statistics} *)

val repro_dir : string ref
(** Directory receiving divergence artifacts (default ["."]). *)

val reset_stats : unit -> unit
val note_audited : unit -> unit
(** Count one passed cross-check (self-checked cell or sampled audit). *)

val record_divergence :
  ?fast_maker:(unit -> sim) -> ?events:event array -> divergence -> divergence
(** Minimize [events], write the repro artifact, and add the divergence
    (returned with [d_artifact] filled in) to the global statistics. *)

val audited_count : unit -> int
val divergence_count : unit -> int
val divergences : unit -> divergence list

(** {1 Sampling} *)

val sampled : key:string -> rate:float -> bool
(** Deterministic, machine-independent per-cell sampling decision for
    [--audit-sample]: hashes [key] to a point in [0, 1) and compares it
    to [rate]. *)

open Vmbp_core

type run = {
  workload : Vmbp_workloads.t;
  technique : Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  result : Engine.result;
  output : string;
}

exception Run_failed of string

let run ?(scale = 1) ?predictor ?profile ~cpu ~technique
    (workload : Vmbp_workloads.t) =
  let loaded = workload.Vmbp_workloads.load ~scale in
  let profile =
    match profile with
    | Some p -> Some p
    | None ->
        if Technique.uses_static_selection technique then
          Some
            (Vmbp_workloads.training_profile ~vm:workload.Vmbp_workloads.vm
               ~target:workload.Vmbp_workloads.name ~scale ())
        else None
  in
  let config = Config.make ~cpu ?predictor technique in
  let layout = Config.build_layout ?profile config ~program:loaded.Vmbp_workloads.program in
  let session = loaded.Vmbp_workloads.fresh_session () in
  let result =
    Engine.run ~fuel:2_000_000_000 ~config ~layout ~exec:session.Vmbp_workloads.exec
      ()
  in
  (match result.Engine.trapped with
  | Some msg ->
      raise
        (Run_failed
           (Printf.sprintf "%s/%s under %s trapped: %s"
              (Vmbp_workloads.vm_name workload.Vmbp_workloads.vm)
              workload.Vmbp_workloads.name (Technique.name technique) msg))
  | None -> ());
  {
    workload;
    technique;
    cpu;
    result;
    output = session.Vmbp_workloads.output ();
  }

let run_result ?scale ?predictor ?profile ~cpu ~technique workload =
  match run ?scale ?predictor ?profile ~cpu ~technique workload with
  | r -> Ok r
  | exception Run_failed msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

let matrix ?scale ~cpu ~techniques workloads =
  (* One trapped cell degrades to an [Error] entry; sibling experiments
     still run and report. *)
  List.map
    (fun w ->
      ( w,
        List.map
          (fun t -> (t, run_result ?scale ~cpu ~technique:t w))
          techniques ))
    workloads

let speedup ~baseline r = baseline.result.Engine.cycles /. r.result.Engine.cycles

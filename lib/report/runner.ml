open Vmbp_core

type run = {
  workload : Vmbp_workloads.t;
  technique : Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  result : Engine.result;
  output : string;
}

exception Run_failed of string

let engine_fuel = 2_000_000_000

(* ------------------------------------------------------------------ *)
(* Decode-once plan cache.  A layout builds deterministically from
   (vm, workload, technique, scale) -- the CPU and predictor configuration
   never shape code addresses -- so the engine's translation of it does
   too.  The first run of a group captures an immutable {!Engine.plan};
   every later run of the same key instantiates a private copy by array
   blits instead of re-decoding the sites.  Entries are evicted FIFO: the
   parallel runner works group-by-group, so only the groups currently in
   flight need their plans resident. *)

let m_translations = Vmbp_obs.Registry.counter "engine.translations"
let m_plan_reuses = Vmbp_obs.Registry.counter "engine.plan_reuses"
let g_translate_wall = Vmbp_obs.Registry.gauge "engine.translate_wall_seconds"

let plan_cache : (string, Engine.plan) Hashtbl.t = Hashtbl.create 32
let plan_order : string Queue.t = Queue.create ()
let plan_lock = Mutex.create ()
let plan_cache_cap = 32

let plan_cache_key ~technique ~scale (workload : Vmbp_workloads.t) =
  Printf.sprintf "%s/%s/%s/%d"
    (Vmbp_workloads.vm_name workload.Vmbp_workloads.vm)
    workload.Vmbp_workloads.name
    (Technique.descriptor technique)
    scale

(* [cacheable] is false when the caller supplied an explicit training
   profile: the layout then depends on data outside the cache key. *)
let translation_for ~cacheable ~technique ~scale workload layout =
  let t0 = Vmbp_sim.Env.now () in
  let tr =
    if not cacheable then begin
      Vmbp_obs.Registry.add m_translations 1;
      Engine.translation layout
    end
    else begin
      let key = plan_cache_key ~technique ~scale workload in
      Mutex.lock plan_lock;
      let plan =
        match Hashtbl.find_opt plan_cache key with
        | Some p ->
            Mutex.unlock plan_lock;
            Vmbp_obs.Registry.add m_plan_reuses 1;
            p
        | None -> (
            (* Capture outside the lock?  No: capturing under the lock lets
               concurrent cells of one group share a single decode, and a
               capture is a few milliseconds at most. *)
            match Engine.plan layout with
            | p ->
                Vmbp_obs.Registry.add m_translations 1;
                Hashtbl.replace plan_cache key p;
                Queue.push key plan_order;
                if Queue.length plan_order > plan_cache_cap then
                  Hashtbl.remove plan_cache (Queue.pop plan_order);
                Mutex.unlock plan_lock;
                p
            | exception e ->
                Mutex.unlock plan_lock;
                raise e)
      in
      Engine.translation ~plan layout
    end
  in
  Vmbp_obs.Registry.gauge_add g_translate_wall (Vmbp_sim.Env.now () -. t0);
  tr

let trap_message (workload : Vmbp_workloads.t) technique msg =
  Printf.sprintf "%s/%s under %s trapped: %s"
    (Vmbp_workloads.vm_name workload.Vmbp_workloads.vm)
    workload.Vmbp_workloads.name (Technique.name technique) msg

(* The paper's training policy: static selection techniques get the
   workload's training profile unless the caller supplies one. *)
let effective_profile ?profile ~scale ~technique (workload : Vmbp_workloads.t)
    =
  match profile with
  | Some p -> Some p
  | None ->
      if Technique.uses_static_selection technique then
        Some
          (Vmbp_workloads.training_profile ~vm:workload.Vmbp_workloads.vm
             ~target:workload.Vmbp_workloads.name ~scale ())
      else None

let run ?(scale = 1) ?poll ?predictor ?profile ~cpu ~technique
    (workload : Vmbp_workloads.t) =
  let cacheable = profile = None in
  let loaded, config, layout, translation =
    Vmbp_obs.Span.with_ ~name:"layout"
      ~args:[ ("workload", workload.Vmbp_workloads.name) ]
      (fun () ->
        let loaded = workload.Vmbp_workloads.load ~scale in
        let profile = effective_profile ?profile ~scale ~technique workload in
        let config = Config.make ~cpu ?predictor technique in
        let layout =
          Config.build_layout ?profile config
            ~program:loaded.Vmbp_workloads.program
        in
        let translation =
          translation_for ~cacheable ~technique ~scale workload layout
        in
        (loaded, config, layout, translation))
  in
  let session = loaded.Vmbp_workloads.fresh_session () in
  let result =
    Vmbp_obs.Span.with_ ~name:"engine"
      ~args:[ ("workload", workload.Vmbp_workloads.name) ]
      (fun () ->
        Engine.run ~fuel:engine_fuel ?poll ~translation ~config ~layout
          ~exec:session.Vmbp_workloads.exec ())
  in
  (match result.Engine.trapped with
  | Some msg -> raise (Run_failed (trap_message workload technique msg))
  | None -> ());
  {
    workload;
    technique;
    cpu;
    result;
    output = session.Vmbp_workloads.output ();
  }

let run_result ?scale ?poll ?predictor ?profile ~cpu ~technique workload =
  match run ?scale ?poll ?predictor ?profile ~cpu ~technique workload with
  | r -> Ok r
  | exception Run_failed msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Self-check: the same run policy, but through [Audit.dual_run], which
   drives the production simulators and the naive reference models over
   the same event stream and stops at the first disagreement. *)

let run_checked ?(scale = 1) ?poll ?predictor ?profile ?fast_maker ~cell ~cpu
    ~technique (workload : Vmbp_workloads.t) =
  let build () =
    let loaded = workload.Vmbp_workloads.load ~scale in
    let profile = effective_profile ?profile ~scale ~technique workload in
    let config = Config.make ~cpu ?predictor technique in
    let layout =
      Config.build_layout ?profile config
        ~program:loaded.Vmbp_workloads.program
    in
    let session = loaded.Vmbp_workloads.fresh_session () in
    (config, layout, session)
  in
  match
    let config, layout, session = build () in
    let fast = Option.map (fun f -> f ()) fast_maker in
    let checked =
      Vmbp_obs.Span.with_ ~name:"audit" ~args:[ ("cell", cell) ] (fun () ->
          Audit.dual_run ~fuel:engine_fuel ?poll ?fast ~cell ~config ~layout
            ~exec:session.Vmbp_workloads.exec ())
    in
    (checked, session)
  with
  | Ok result, session -> (
      (* Every event agreed, so the cell counts as audited even when the
         workload itself trapped. *)
      Audit.note_audited ();
      match result.Engine.trapped with
      | Some msg -> Error (trap_message workload technique msg)
      | None ->
          Ok
            {
              workload;
              technique;
              cpu;
              result;
              output = session.Vmbp_workloads.output ();
            })
  | Error d, _ ->
      (* Localize: replay the deterministic run, recording only the
         prefix up to the divergent event, then shrink and dump a repro
         artifact.  Divergences too deep to record replayably still fail
         the cell, just without a file. *)
      let events =
        if d.Audit.d_index < Audit.max_artifact_events then begin
          let _, layout, session = build () in
          Some
            (Audit.record_events ~fuel:engine_fuel
               ~limit:(d.Audit.d_index + 1) ~layout
               ~exec:session.Vmbp_workloads.exec ())
        end
        else None
      in
      let d = Audit.record_divergence ?fast_maker ?events d in
      Error
        (Printf.sprintf "self-check divergence at event %d: %s"
           d.Audit.d_index d.Audit.d_detail)
  | exception Run_failed msg -> Error msg
  | exception exn -> Error (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* Record/replay: one full engine execution per (workload, technique,
   scale), replayed for any number of CPU or predictor configurations. *)

type trace = {
  t_workload : Vmbp_workloads.t;
  t_technique : Technique.t;
  t_scale : int;
  t_data : Trace.t;
}

let record ?(scale = 1) ?poll ?profile ?cap_bytes ~technique
    (workload : Vmbp_workloads.t) =
  match
    let cacheable = profile = None in
    let loaded = workload.Vmbp_workloads.load ~scale in
    let profile = effective_profile ?profile ~scale ~technique workload in
    (* The CPU of this config is irrelevant: layout building depends on
       technique and costs only, and recording consumes neither the
       predictor nor the I-cache. *)
    let config = Config.make technique in
    let layout =
      Config.build_layout ?profile config ~program:loaded.Vmbp_workloads.program
    in
    let translation =
      translation_for ~cacheable ~technique ~scale workload layout
    in
    let session = loaded.Vmbp_workloads.fresh_session () in
    Trace.record ~fuel:engine_fuel ?poll ~translation ?cap_bytes ~layout
      ~exec:session.Vmbp_workloads.exec ~output:session.Vmbp_workloads.output
      ()
  with
  | Some data ->
      Ok { t_workload = workload; t_technique = technique; t_scale = scale; t_data = data }
  | None -> Error `Overflow
  | exception exn -> Error (`Failed (Printexc.to_string exn))

let run_of_replay tr cpu result =
  match result.Engine.trapped with
  | Some msg -> Error (trap_message tr.t_workload tr.t_technique msg)
  | None ->
      Ok
        {
          workload = tr.t_workload;
          technique = tr.t_technique;
          cpu;
          result;
          output = Trace.output tr.t_data;
        }

let replay ?poll ?predictor ~cpu tr =
  let config = Config.make ~cpu ?predictor tr.t_technique in
  run_of_replay tr cpu
    (Trace.replay ?poll tr.t_data ~cpu
       ~predictor:(Config.predictor_kind config))

let replay_bank ?poll ~configs tr =
  let resolved =
    List.map
      (fun (cpu, predictor) ->
        let config = Config.make ~cpu ?predictor tr.t_technique in
        (Config.predictor_kind config, cpu.Vmbp_machine.Cpu_model.icache))
      configs
  in
  Trace.replay_bank ?poll tr.t_data ~predictors:(List.map fst resolved)
    ~icaches:(List.map snd resolved)

let replay_memo ?predictor ~cpu tr =
  let config = Config.make ~cpu ?predictor tr.t_technique in
  Option.map (run_of_replay tr cpu)
    (Trace.replay_memo tr.t_data ~cpu
       ~predictor:(Config.predictor_kind config))

let trace_bytes tr = Trace.bytes tr.t_data
let release_trace tr = Trace.release tr.t_data

let matrix ?scale ~cpu ~techniques workloads =
  (* One trapped cell degrades to an [Error] entry; sibling experiments
     still run and report. *)
  List.map
    (fun w ->
      ( w,
        List.map
          (fun t -> (t, run_result ?scale ~cpu ~technique:t w))
          techniques ))
    workloads

let speedup ~baseline r = baseline.result.Engine.cycles /. r.result.Engine.cycles

(** Crash-safe cell journal: append-only, fsync'd JSONL.

    A long report run must not lose completed work to a hung cell, a killed
    worker or a Ctrl-C.  The journal appends one self-contained JSON line
    per completed cell -- flushed and fsync'd before the append returns --
    so the on-disk file is a prefix-correct record of everything finished
    at the moment of any crash.  A [--resume] run loads the file and serves
    matching cells from it without re-execution; because a success entry
    stores the run's integer event counters (cycles and seconds are
    recomputed from them through {!Vmbp_machine.Cpu_model}), a resumed
    report is byte-identical to an uninterrupted one.

    Entries are keyed by a stable cell key plus a configuration fingerprint
    (see {!Par_runner}); a lookup must match both, so journals written
    under a different scale, predictor override or trace setting are
    silently ignored rather than wrongly reused.

    The journal degrades, never aborts: an append that fails (disk error,
    or the [journal-io] chaos point) is counted and dropped -- the run
    continues and that cell is simply recomputed on resume.  Every
    appended line is framed with a CRC-32 and a length header
    ({!Vmbp_store.Frame}), so on load {e any} corrupt record -- a torn
    final line, flipped bytes mid-file, a foreign edit -- is detected,
    skipped and counted rather than served or fatal.  Journals written
    before framing (bare JSON lines) still load. *)

type success = Vmbp_store.Cellrec.success = {
  metrics : Vmbp_machine.Metrics.t;
      (** the run's deterministic and simulated event counters; cycles and
          seconds are recomputed from these, so no float round-trips
          through the file *)
  steps : int;
  output : string;
}

type entry = Vmbp_store.Cellrec.entry = {
  key : string;
  fingerprint : string;
  outcome : (success, string) result;
  attempts : int;
  timed_out : bool;
}

type stats = {
  loaded : int;  (** well-formed entries read at [open_] (resume only) *)
  served : int;  (** successful [lookup]s *)
  appended : int;  (** entries durably written this session *)
  write_errors : int;  (** appends dropped (I/O failure or injected) *)
  truncated : int;  (** corrupt/malformed/partial lines skipped on load *)
}

type t

val open_ : ?resume:bool -> string -> t
(** Open [file] for appending, creating it if needed.  With [resume:true]
    (default false) existing entries are loaded first and become
    [lookup]-able; without it the file is only appended to, so a fresh run
    extends the historical record without trusting it.  A missing file
    under [resume] is an empty journal, not an error.  Raises
    [Unix.Unix_error] if the file cannot be opened for writing. *)

val lookup : t -> key:string -> fingerprint:string -> entry option
(** The loaded entry for this cell, if both key and fingerprint match.
    Only entries read at [open_] time are consulted -- a cell appended by
    the current run is never served back to it (duplicate keys in one run
    are deterministic duplicates, so last-wins on the next load). *)

val append : t -> entry -> unit
(** Serialize, write and fsync one entry; thread-safe.  Failures are
    counted in [write_errors] and otherwise ignored (see above). *)

val stats : t -> stats
val file : t -> string

val close : t -> unit
(** Close the underlying descriptor; further [append]s count as write
    errors. *)

(** Running one workload under one interpreter configuration, with the
    paper's training-profile policy applied automatically. *)

type run = {
  workload : Vmbp_workloads.t;
  technique : Vmbp_core.Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  result : Vmbp_core.Engine.result;
  output : string;
}

exception Run_failed of string
(** Raised when a run traps: reproduction results from a trapped run would
    be meaningless. *)

val engine_fuel : int
(** The executed-VM-instruction bound every run in this module uses.
    Exposed so tooling that re-runs a cell outside the runner (the
    [explain] attribution command) is cut off at exactly the same point. *)

val effective_profile :
  ?profile:Vmbp_vm.Profile.t ->
  scale:int ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  Vmbp_vm.Profile.t option
(** The paper's training policy: static-selection techniques get the
    workload's training profile unless the caller supplies one.  Exposed
    for the same reason as {!engine_fuel}. *)

val run :
  ?scale:int ->
  ?poll:(unit -> unit) ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  run
(** Default scale 1.  When the technique needs static selection and no
    [profile] is given, the paper's training policy for the workload's VM
    is used (see {!Vmbp_workloads.training_profile}).  [poll] is the
    engine's cooperative watchdog hook (see
    {!Vmbp_core.Engine.run_events}); a deadline exception raised from it
    escapes this function unchanged. *)

val run_result :
  ?scale:int ->
  ?poll:(unit -> unit) ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  (run, string) result
(** [run], with a trapped or otherwise failed run reported as [Error]
    instead of an exception. *)

val run_checked :
  ?scale:int ->
  ?poll:(unit -> unit) ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  ?fast_maker:(unit -> Audit.sim) ->
  cell:string ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  (run, string) result
(** [run_result] under differential self-check: the cell executes once
    through {!Audit.dual_run}, comparing the production simulators with
    the reference models on every dispatch and fetch.  Agreement yields
    the exact [run_result] answer.  A divergence fails the cell, records
    a minimized repro artifact (via {!Audit.record_divergence}) and
    registers in the global audit statistics.  [cell] names the cell in
    divergence records; [fast_maker] substitutes the fast simulator
    (mutation tests). *)

val matrix :
  ?scale:int ->
  cpu:Vmbp_machine.Cpu_model.t ->
  techniques:Vmbp_core.Technique.t list ->
  Vmbp_workloads.t list ->
  (Vmbp_workloads.t * (Vmbp_core.Technique.t * (run, string) result) list) list
(** The full benchmark-times-variant grid used by the speedup figures.
    Failures are isolated per cell: one trapped workload/technique pair
    yields an [Error] cell and every sibling still runs.  See
    {!Par_runner.matrix} for the multicore version. *)

val speedup : baseline:run -> run -> float
(** Ratio of modelled cycles: how much faster than [baseline]. *)

(** {2 Record once, replay many}

    Cells that share (workload, technique, scale) differ only in CPU model
    and predictor override, neither of which can change the engine's event
    stream.  [record] executes the VM once and captures that stream (see
    {!Trace}); [replay] then reproduces the exact [run] any direct
    {!run_result} call would return for a given CPU/predictor, without
    re-executing VM semantics. *)

type trace
(** A recorded (workload, technique, scale) execution. *)

val record :
  ?scale:int ->
  ?poll:(unit -> unit) ->
  ?profile:Vmbp_vm.Profile.t ->
  ?cap_bytes:int ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  (trace, [ `Overflow | `Failed of string ]) result
(** One full engine execution with the same fuel and training-profile
    policy as {!run}.  [`Overflow] reports that the event storage would
    exceed [cap_bytes]; [`Failed] carries the exception of a run that did
    not even record.  In both cases callers must fall back to direct
    {!run_result} calls.  A run that merely traps records fine: its trace
    replays to the same [Error] cell a direct run would produce. *)

val replay :
  ?poll:(unit -> unit) ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  cpu:Vmbp_machine.Cpu_model.t ->
  trace ->
  (run, string) result
(** Field-for-field equal to
    [run_result ?predictor ~cpu ~technique workload] for the trace's
    workload, technique and scale. *)

val replay_bank :
  ?poll:(unit -> unit) ->
  configs:
    (Vmbp_machine.Cpu_model.t * Vmbp_machine.Predictor.kind option) list ->
  trace ->
  int
(** Banked replay ({!Trace.replay_bank}): resolve each (cpu, predictor
    override) pair to its effective predictor kind and I-cache geometry --
    the same resolution {!replay} performs -- and simulate every distinct
    not-yet-memoized configuration in one traversal per event stream.
    Subsequent {!replay} / {!replay_memo} calls for these configurations
    are then served from the memo tables at cost-model price.  Returns the
    number of configurations freshly simulated.  [poll] follows
    {!Trace.replay_bank}'s contract: once on entry even when everything is
    memoized, then every 65536 tokens. *)

val replay_memo :
  ?predictor:Vmbp_machine.Predictor.kind ->
  cpu:Vmbp_machine.Cpu_model.t ->
  trace ->
  (run, string) result option
(** [replay], answered purely from the trace's per-configuration memo
    tables: [Some] exactly when this predictor kind and I-cache geometry
    have both been replayed on the trace before.  Works on a
    [release_trace]d trace, so an evicted trace still serves repeat
    configurations (see {!Trace.replay_memo}). *)

val trace_bytes : trace -> int
(** Storage footprint in bytes, for cache accounting. *)

val release_trace : trace -> unit
(** Recycle the trace's storage (see {!Trace.release}); the trace must not
    be replayed afterwards. *)

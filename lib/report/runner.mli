(** Running one workload under one interpreter configuration, with the
    paper's training-profile policy applied automatically. *)

type run = {
  workload : Vmbp_workloads.t;
  technique : Vmbp_core.Technique.t;
  cpu : Vmbp_machine.Cpu_model.t;
  result : Vmbp_core.Engine.result;
  output : string;
}

exception Run_failed of string
(** Raised when a run traps: reproduction results from a trapped run would
    be meaningless. *)

val run :
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  run
(** Default scale 1.  When the technique needs static selection and no
    [profile] is given, the paper's training policy for the workload's VM
    is used (see {!Vmbp_workloads.training_profile}). *)

val run_result :
  ?scale:int ->
  ?predictor:Vmbp_machine.Predictor.kind ->
  ?profile:Vmbp_vm.Profile.t ->
  cpu:Vmbp_machine.Cpu_model.t ->
  technique:Vmbp_core.Technique.t ->
  Vmbp_workloads.t ->
  (run, string) result
(** [run], with a trapped or otherwise failed run reported as [Error]
    instead of an exception. *)

val matrix :
  ?scale:int ->
  cpu:Vmbp_machine.Cpu_model.t ->
  techniques:Vmbp_core.Technique.t list ->
  Vmbp_workloads.t list ->
  (Vmbp_workloads.t * (Vmbp_core.Technique.t * (run, string) result) list) list
(** The full benchmark-times-variant grid used by the speedup figures.
    Failures are isolated per cell: one trapped workload/technique pair
    yields an [Error] cell and every sibling still runs.  See
    {!Par_runner.matrix} for the multicore version. *)

val speedup : baseline:run -> run -> float
(** Ratio of modelled cycles: how much faster than [baseline]. *)

type event = {
  name : string;
  ts : float;
  dur : float;
  tid : int;
  id : int;
  parent : int;
  trace : string;
  args : (string * string) list;
}

(* The enabled flag is the only state touched on the disabled fast path;
   everything else sits behind the mutex.  [collected] is newest-first so
   recording is a cons, not an append. *)
let enabled = Atomic.make false
let lock = Mutex.create ()
let origin = ref 0.
let collected : event list ref = ref []

(* All timestamps flow through this clock so hosts can substitute a
   virtual one (the simulator installs its deterministic clock here;
   daemons install the Env clock).  Swap it before [enable] so the origin
   and the spans come from the same clock. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f
let now () = !clock ()

(* Span ids are allocated at span start from a counter that resets on
   [enable]: single-threaded (simulated) runs therefore produce the same
   ids for the same schedule, which is what makes trace files
   byte-comparable across replays of a seed. *)
let next_id = Atomic.make 0
let alloc_id () = Atomic.fetch_and_add next_id 1

(* Per-domain stack of open span ids: [with_] pushes on entry so nested
   spans record their lexical parent without the caller threading ids. *)
let open_spans : int list ref Domain.DLS.key =
  Domain.DLS.new_key (fun () -> ref [])

let current () =
  match !(Domain.DLS.get open_spans) with p :: _ -> p | [] -> -1

let enable () =
  Mutex.lock lock;
  origin := !clock ();
  collected := [];
  Mutex.unlock lock;
  Atomic.set next_id 0;
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let record ~name ~args ~id ~parent ~trace t0 t1 =
  let e =
    {
      name;
      ts = t0 -. !origin;
      dur = t1 -. t0;
      tid = (Domain.self () :> int);
      id;
      parent;
      trace;
      args;
    }
  in
  Mutex.lock lock;
  collected := e :: !collected;
  Mutex.unlock lock

let with_ ?(args = []) ?(trace = "") ~name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = !clock () in
    let id = alloc_id () in
    let stack = Domain.DLS.get open_spans in
    let parent = match !stack with p :: _ -> p | [] -> -1 in
    stack := id :: !stack;
    Fun.protect
      ~finally:(fun () ->
        (match !stack with _ :: tl -> stack := tl | [] -> ());
        record ~name ~args ~id ~parent ~trace t0 (!clock ()))
      f
  end

let interval ?(args = []) ?(trace = "") ?parent ~name t0 t1 =
  if Atomic.get enabled then begin
    let id = alloc_id () in
    let parent = match parent with Some p -> p | None -> current () in
    record ~name ~args ~id ~parent ~trace t0 t1
  end

let events () =
  Mutex.lock lock;
  let l = !collected in
  Mutex.unlock lock;
  List.rev l

let count () =
  Mutex.lock lock;
  let n = List.length !collected in
  Mutex.unlock lock;
  n

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      (* Complete ("X") events; ts and dur are microseconds in this
         format, which is what keeps Perfetto's zoom sensible.  The span
         id, parent id, and trace (request) id travel as string-valued
         args, so any trace-event viewer shows the linkage without a
         custom schema. *)
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"vmbp\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.name) (e.ts *. 1e6) (e.dur *. 1e6) e.tid);
      Buffer.add_string b ",\"args\":{";
      Buffer.add_string b (Printf.sprintf "\"span\":\"%d\"" e.id);
      if e.parent >= 0 then
        Buffer.add_string b (Printf.sprintf ",\"parent\":\"%d\"" e.parent);
      if e.trace <> "" then
        Buffer.add_string b
          (Printf.sprintf ",\"trace\":\"%s\"" (json_escape e.trace));
      List.iter
        (fun (k, v) ->
          Buffer.add_string b
            (Printf.sprintf ",\"%s\":\"%s\"" (json_escape k) (json_escape v)))
        e.args;
      Buffer.add_string b "}}")
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))

type event = {
  name : string;
  ts : float;
  dur : float;
  tid : int;
  args : (string * string) list;
}

(* The enabled flag is the only state touched on the disabled fast path;
   everything else sits behind the mutex.  [collected] is newest-first so
   recording is a cons, not an append. *)
let enabled = Atomic.make false
let lock = Mutex.create ()
let origin = ref 0.
let collected : event list ref = ref []

let enable () =
  Mutex.lock lock;
  origin := Unix.gettimeofday ();
  collected := [];
  Mutex.unlock lock;
  Atomic.set enabled true

let disable () = Atomic.set enabled false
let is_enabled () = Atomic.get enabled

let record ~name ~args t0 t1 =
  let e =
    {
      name;
      ts = t0 -. !origin;
      dur = t1 -. t0;
      tid = (Domain.self () :> int);
      args;
    }
  in
  Mutex.lock lock;
  collected := e :: !collected;
  Mutex.unlock lock

let with_ ?(args = []) ~name f =
  if not (Atomic.get enabled) then f ()
  else begin
    let t0 = Unix.gettimeofday () in
    Fun.protect
      ~finally:(fun () -> record ~name ~args t0 (Unix.gettimeofday ()))
      f
  end

let events () =
  Mutex.lock lock;
  let l = !collected in
  Mutex.unlock lock;
  List.rev l

let count () =
  Mutex.lock lock;
  let n = List.length !collected in
  Mutex.unlock lock;
  n

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json () =
  let evs = events () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"traceEvents\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b "\n  ";
      (* Complete ("X") events; ts and dur are microseconds in this
         format, which is what keeps Perfetto's zoom sensible. *)
      Buffer.add_string b
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"vmbp\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d"
           (json_escape e.name) (e.ts *. 1e6) (e.dur *. 1e6) e.tid);
      (match e.args with
      | [] -> ()
      | args ->
          Buffer.add_string b ",\"args\":{";
          List.iteri
            (fun j (k, v) ->
              if j > 0 then Buffer.add_char b ',';
              Buffer.add_string b
                (Printf.sprintf "\"%s\":\"%s\"" (json_escape k)
                   (json_escape v)))
            args;
          Buffer.add_char b '}');
      Buffer.add_char b '}')
    evs;
  Buffer.add_string b "\n],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents b

let write ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))

type entry = { seq : int; ts : float; dom : int; kind : string; detail : string }

let capacity = 512

(* One atomic slot per ring position.  [note] claims a globally unique
   sequence number with fetch-and-add, then publishes the entry into
   [seq mod capacity] with a plain atomic store: no locks, no blocking,
   safe from any domain and from signal-adjacent paths.  A torn view is
   impossible (the slot swaps whole immutable records); at worst a reader
   racing a writer sees the slot's previous occupant, which is exactly
   the "last N transitions, best effort" contract a flight recorder
   wants. *)
let slots : entry option Atomic.t array =
  Array.init capacity (fun _ -> Atomic.make None)

let seq = Atomic.make 0

(* Same substitutable clock convention as {!Span}: the simulator installs
   virtual time so flight dumps are deterministic per seed. *)
let clock : (unit -> float) ref = ref Unix.gettimeofday
let set_clock f = clock := f

let reset () =
  Atomic.set seq 0;
  Array.iter (fun s -> Atomic.set s None) slots

let note ~kind detail =
  let s = Atomic.fetch_and_add seq 1 in
  let e =
    { seq = s; ts = !clock (); dom = (Domain.self () :> int); kind; detail }
  in
  Atomic.set slots.(s mod capacity) (Some e)

let recorded () = Atomic.get seq

let entries () =
  Array.to_list slots
  |> List.filter_map Atomic.get
  |> List.sort (fun a b -> compare a.seq b.seq)

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let to_json ?(reason = "") () =
  let es = entries () in
  let total = recorded () in
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"schema\":\"vmbp-flight/1\"";
  if reason <> "" then
    Buffer.add_string b (Printf.sprintf ",\"reason\":\"%s\"" (json_escape reason));
  Buffer.add_string b
    (Printf.sprintf ",\"capacity\":%d,\"recorded\":%d,\"dropped\":%d" capacity
       total
       (max 0 (total - capacity)));
  Buffer.add_string b ",\"entries\":[";
  List.iteri
    (fun i e ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "\n  {\"seq\":%d,\"ts\":%.6f,\"dom\":%d,\"kind\":\"%s\",\"detail\":\"%s\"}"
           e.seq e.ts e.dom (json_escape e.kind) (json_escape e.detail)))
    es;
  Buffer.add_string b "\n]}\n";
  Buffer.contents b

(** Phase-timing spans, dumped as Chrome trace-event JSON.

    A span measures one wall-clock phase (layout building, an engine run, a
    trace replay, a journal append, a request admission, ...) on whichever
    domain executed it.  Collection is off by default: a disabled {!with_}
    is one atomic load plus the call of [f], so instrumented code paths
    cost nothing measurable in production runs.  When enabled, completed
    spans accumulate in a process-global buffer (mutex-protected; worker
    domains record concurrently) and {!write} renders them in the Chrome
    trace-event format, which Perfetto and chrome://tracing load directly:
    one track per worker domain, nesting inferred from time containment.

    Spans additionally carry explicit linkage for end-to-end request
    tracing: every span has an [id] (allocated at span start), a lexical
    [parent] (the enclosing {!with_} span on the same domain, or -1), and
    an optional [trace] string naming the request id the span serves.
    Cross-domain fan-in (one compute batch serving many request ids) is
    expressed through args rather than parentage. *)

type event = {
  name : string;
  ts : float;  (** start, seconds since {!enable} *)
  dur : float;  (** duration, seconds *)
  tid : int;  (** domain id of the recording domain *)
  id : int;  (** span id, unique within one enable window *)
  parent : int;  (** enclosing span id on the same domain, or -1 *)
  trace : string;  (** request/trace id, [""] when unlinked *)
  args : (string * string) list;
}

val set_clock : (unit -> float) -> unit
(** Substitute the timestamp source (default [Unix.gettimeofday]).  The
    simulator installs its virtual clock here; daemons install the [Env]
    clock.  Install before {!enable} so the origin and all spans come
    from the same clock. *)

val now : unit -> float
(** Read the current clock (whatever {!set_clock} installed). *)

val enable : unit -> unit
(** Start collecting: clears previously collected spans, re-anchors the
    time origin, and resets the span-id counter (so a deterministic
    schedule yields deterministic ids). *)

val disable : unit -> unit
(** Stop collecting; already collected spans remain readable. *)

val is_enabled : unit -> bool

val with_ :
  ?args:(string * string) list ->
  ?trace:string ->
  name:string ->
  (unit -> 'a) ->
  'a
(** Run [f], recording one span around it when collection is enabled.  The
    span is recorded even when [f] raises (the exception is re-raised), so
    a failing phase still shows its duration.  Nested [with_] calls on the
    same domain record their enclosing span as [parent]. *)

val interval :
  ?args:(string * string) list ->
  ?trace:string ->
  ?parent:int ->
  name:string ->
  float ->
  float ->
  unit
(** [interval ~name t0 t1] records a completed span from [t0] to [t1]
    (clock timestamps) without scoping: for phases whose start and finish
    are observed in different event-loop iterations (request receive to
    reply flush).  [parent] defaults to the innermost open {!with_} span
    on the calling domain. *)

val current : unit -> int
(** Id of the innermost open {!with_} span on this domain, or -1. *)

val events : unit -> event list
(** Completed spans in completion order (inner spans precede the spans
    that enclose them). *)

val count : unit -> int

val to_json : unit -> string
(** The collected spans as a Chrome trace-event JSON document:
    [{"traceEvents":[{"ph":"X","name":...,"ts":...,"dur":...,"pid":1,
    "tid":<domain>,"args":{"span":...,"parent":...,"trace":...,...}},
    ...]}] with [ts]/[dur] in microseconds.  [span]/[parent]/[trace]
    render as string-valued args so stock trace viewers display them. *)

val write : file:string -> unit
(** [to_json] into [file]. *)

(** Phase-timing spans, dumped as Chrome trace-event JSON.

    A span measures one wall-clock phase (layout building, an engine run, a
    trace replay, a journal append, ...) on whichever domain executed it.
    Collection is off by default: a disabled {!with_} is one atomic load
    plus the call of [f], so instrumented code paths cost nothing
    measurable in production runs.  When enabled, completed spans
    accumulate in a process-global buffer (mutex-protected; worker domains
    record concurrently) and {!write} renders them in the Chrome
    trace-event format, which Perfetto and chrome://tracing load directly:
    one track per worker domain, nesting inferred from time containment. *)

type event = {
  name : string;
  ts : float;  (** start, seconds since {!enable} *)
  dur : float;  (** duration, seconds *)
  tid : int;  (** domain id of the recording domain *)
  args : (string * string) list;
}

val enable : unit -> unit
(** Start collecting: clears previously collected spans and re-anchors the
    time origin. *)

val disable : unit -> unit
(** Stop collecting; already collected spans remain readable. *)

val is_enabled : unit -> bool

val with_ : ?args:(string * string) list -> name:string -> (unit -> 'a) -> 'a
(** Run [f], recording one span around it when collection is enabled.  The
    span is recorded even when [f] raises (the exception is re-raised), so
    a failing phase still shows its duration. *)

val events : unit -> event list
(** Completed spans in completion order (inner spans precede the spans
    that enclose them). *)

val count : unit -> int

val to_json : unit -> string
(** The collected spans as a Chrome trace-event JSON document:
    [{"traceEvents":[{"ph":"X","name":...,"ts":...,"dur":...,"pid":1,
    "tid":<domain>,"args":{...}}, ...]}] with [ts]/[dur] in microseconds. *)

val write : file:string -> unit
(** [to_json] into [file]. *)

type counter = { mutable c : int64 }
type gauge = { mutable g : float; mutable g_max : float }

type histogram = {
  bounds : float array;
  counts : int array;  (* length = Array.length bounds + 1; overflow last *)
  mutable sum : float;
  mutable n : int;
}

type instrument = Counter of counter | Gauge of gauge | Histogram of histogram

let lock = Mutex.create ()
let table : (string, instrument) Hashtbl.t = Hashtbl.create 64

let locked f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let counter name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Counter c) -> c
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Registry.counter: '%s' is already a different instrument kind"
               name)
      | None ->
          let c = { c = 0L } in
          Hashtbl.replace table name (Counter c);
          c)

let add c n = locked (fun () -> c.c <- Int64.add c.c (Int64.of_int n))
let add_int64 c n = locked (fun () -> c.c <- Int64.add c.c n)
let counter_value c = locked (fun () -> c.c)

let find_counter name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Counter c) -> Some c.c
      | _ -> None)

let gauge name =
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Gauge g) -> g
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Registry.gauge: '%s' is already a different instrument kind"
               name)
      | None ->
          let g = { g = 0.; g_max = 0. } in
          Hashtbl.replace table name (Gauge g);
          g)

let gauge_set g v =
  locked (fun () ->
      g.g <- v;
      if v > g.g_max then g.g_max <- v)

let gauge_add g dv =
  locked (fun () ->
      g.g <- g.g +. dv;
      if g.g > g.g_max then g.g_max <- g.g)

let gauge_value g = locked (fun () -> g.g)
let gauge_max g = locked (fun () -> g.g_max)

let histogram ~bounds name =
  if Array.length bounds = 0 then
    invalid_arg "Registry.histogram: bounds must be non-empty";
  Array.iteri
    (fun i b ->
      if i > 0 && not (b > bounds.(i - 1)) then
        invalid_arg "Registry.histogram: bounds must be strictly increasing")
    bounds;
  locked (fun () ->
      match Hashtbl.find_opt table name with
      | Some (Histogram h) ->
          if h.bounds <> bounds then
            invalid_arg
              (Printf.sprintf
                 "Registry.histogram: '%s' is already registered with \
                  different bounds"
                 name)
          else h
      | Some _ ->
          invalid_arg
            (Printf.sprintf
               "Registry.histogram: '%s' is already a different instrument \
                kind"
               name)
      | None ->
          let h =
            {
              bounds = Array.copy bounds;
              counts = Array.make (Array.length bounds + 1) 0;
              sum = 0.;
              n = 0;
            }
          in
          Hashtbl.replace table name (Histogram h);
          h)

(* An observation [v] lands in the first bucket with [v <= bound]; past
   the last bound it lands in the overflow bucket. *)
let bucket_index bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n then n else if v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  locked (fun () ->
      let i = bucket_index h.bounds v in
      h.counts.(i) <- h.counts.(i) + 1;
      h.sum <- h.sum +. v;
      h.n <- h.n + 1)

let histogram_snapshot h =
  locked (fun () -> (Array.copy h.bounds, Array.copy h.counts, h.sum, h.n))

(* Linear interpolation within the winning bucket, Prometheus-style: the
   first bucket spans [0, bound0].  Two documented edge conventions:
   an empty histogram has no quantiles, so the answer is [nan] (never a
   misleading 0); and a quantile landing in the overflow bucket clamps to
   the top bound (there is no upper edge to interpolate towards), so a
   reported p99 can never exceed the instrument's largest bound. *)
let histogram_quantile h q =
  let bounds, counts, _, n = histogram_snapshot h in
  if n = 0 then Float.nan
  else begin
    let q = Float.max 0. (Float.min 1. q) in
    let rank = q *. float_of_int n in
    let nb = Array.length bounds in
    let rec go i seen =
      if i >= nb then bounds.(nb - 1)
      else
        let seen' = seen +. float_of_int counts.(i) in
        if seen' >= rank && counts.(i) > 0 then begin
          let lo = if i = 0 then 0. else bounds.(i - 1) in
          let hi = bounds.(i) in
          lo +. ((hi -. lo) *. ((rank -. seen) /. float_of_int counts.(i)))
        end
        else go (i + 1) seen'
    in
    go 0 0.
  end

let reset () =
  locked (fun () ->
      Hashtbl.iter
        (fun _ i ->
          match i with
          | Counter c -> c.c <- 0L
          | Gauge g ->
              g.g <- 0.;
              g.g_max <- 0.
          | Histogram h ->
              Array.fill h.counts 0 (Array.length h.counts) 0;
              h.sum <- 0.;
              h.n <- 0)
        table)

let sorted_entries () =
  locked (fun () ->
      List.sort
        (fun (a, _) (b, _) -> compare a b)
        (Hashtbl.fold (fun k v acc -> (k, v) :: acc) table []))

let names () = List.map fst (sorted_entries ())

let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let json_float f =
  if Float.is_nan f then "null"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_json () =
  let entries = sorted_entries () in
  let pick f = List.filter_map f entries in
  let counters = pick (function n, Counter c -> Some (n, c) | _ -> None) in
  let gauges = pick (function n, Gauge g -> Some (n, g) | _ -> None) in
  let histos = pick (function n, Histogram h -> Some (n, h) | _ -> None) in
  let b = Buffer.create 1024 in
  let obj name render items =
    Buffer.add_string b (Printf.sprintf ",\"%s\":{" name);
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b (Printf.sprintf "\n  \"%s\":" (json_escape k));
        render v)
      items;
    Buffer.add_string b (if items = [] then "}" else "\n }")
  in
  Buffer.add_string b "{\"schema\":\"vmbp-metrics/1\"";
  locked (fun () ->
      obj "counters"
        (fun c -> Buffer.add_string b (Int64.to_string c.c))
        counters;
      obj "gauges"
        (fun g ->
          Buffer.add_string b
            (Printf.sprintf "{\"value\":%s,\"max\":%s}" (json_float g.g)
               (json_float g.g_max)))
        gauges;
      obj "histograms"
        (fun h ->
          Buffer.add_string b "{\"le\":[";
          Array.iteri
            (fun i bound ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (json_float bound))
            h.bounds;
          Buffer.add_string b "],\"counts\":[";
          Array.iteri
            (fun i n ->
              if i > 0 then Buffer.add_char b ',';
              Buffer.add_string b (string_of_int n))
            h.counts;
          Buffer.add_string b
            (Printf.sprintf "],\"sum\":%s,\"count\":%d}" (json_float h.sum)
               h.n))
        histos);
  Buffer.add_string b "}\n";
  Buffer.contents b

let write ~file =
  let oc = open_out file in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_json ()))

(* ------------------------------------------------------------------ *)
(* Prometheus text exposition *)

(* Registry names may carry labels in a ["base{k=v,k2=v2}"] suffix (the
   service registers e.g. "service.verb_seconds{verb=query}"); the
   exposition splits that back into a metric family plus labels so all
   verbs share one family.  Because [sorted_entries] sorts raw names,
   every series of a family is consecutive, which is what the exposition
   format requires. *)
let prom_split name =
  match String.index_opt name '{' with
  | Some i when String.length name > 1 && name.[String.length name - 1] = '}'
    ->
      let base = String.sub name 0 i in
      let body = String.sub name (i + 1) (String.length name - i - 2) in
      let labels =
        String.split_on_char ',' body
        |> List.filter (fun s -> s <> "")
        |> List.map (fun kv ->
               match String.index_opt kv '=' with
               | Some j ->
                   ( String.sub kv 0 j,
                     String.sub kv (j + 1) (String.length kv - j - 1) )
               | None -> (kv, ""))
      in
      (base, labels)
  | _ -> (name, [])

let prom_mangle base =
  let b = Buffer.create (String.length base + 8) in
  Buffer.add_string b "vmbp_";
  String.iter
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> Buffer.add_char b c
      | _ -> Buffer.add_char b '_')
    base;
  Buffer.contents b

let prom_escape v =
  let b = Buffer.create (String.length v + 4) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

let prom_float f =
  if Float.is_nan f then "NaN"
  else if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let to_prometheus () =
  let entries = sorted_entries () in
  let b = Buffer.create 4096 in
  let typed : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  let header family kind =
    if not (Hashtbl.mem typed family) then begin
      Hashtbl.add typed family ();
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" family kind)
    end
  in
  locked (fun () ->
      List.iter
        (fun (name, inst) ->
          let base, labels = prom_split name in
          match inst with
          | Counter c ->
              let family = prom_mangle base ^ "_total" in
              header family "counter";
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" family (prom_labels labels)
                   (Int64.to_string c.c))
          | Gauge g ->
              let family = prom_mangle base in
              header family "gauge";
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" family (prom_labels labels)
                   (prom_float g.g))
          | Histogram h ->
              let family = prom_mangle base in
              header family "histogram";
              let cum = ref 0 in
              Array.iteri
                (fun i bound ->
                  cum := !cum + h.counts.(i);
                  Buffer.add_string b
                    (Printf.sprintf "%s_bucket%s %d\n" family
                       (prom_labels (labels @ [ ("le", prom_float bound) ]))
                       !cum))
                h.bounds;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" family
                   (prom_labels (labels @ [ ("le", "+Inf") ]))
                   h.n);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" family (prom_labels labels)
                   (prom_float h.sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" family (prom_labels labels)
                   h.n))
        entries;
      (* Gauge high-water marks as their own families, after the primary
         series so each family's samples stay consecutive. *)
      List.iter
        (fun (name, inst) ->
          match inst with
          | Gauge g ->
              let base, labels = prom_split name in
              let family = prom_mangle base ^ "_max" in
              header family "gauge";
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" family (prom_labels labels)
                   (prom_float g.g_max))
          | _ -> ())
        entries);
  Buffer.contents b

type category = Cold | Wrong_target | Conflict of int

type bucket = { mutable cold : int; mutable wrong : int; mutable conflict : int }

let bucket_total b = b.cold + b.wrong + b.conflict

type t = {
  opcodes : (int, bucket) Hashtbl.t;
  pairs : (int * int * int, int ref) Hashtbl.t;
      (* (victim opcode, evictor opcode, set) -> count *)
  sets : (int, int ref) Hashtbl.t;  (* set -> event count *)
  seen : (int * int, unit) Hashtbl.t;  (* (set, branch) distinct *)
  mutable total : int;
}

let create () =
  {
    opcodes = Hashtbl.create 64;
    pairs = Hashtbl.create 64;
    sets = Hashtbl.create 64;
    seen = Hashtbl.create 256;
    total = 0;
  }

let bump tbl key =
  match Hashtbl.find_opt tbl key with
  | Some r -> incr r
  | None -> Hashtbl.replace tbl key (ref 1)

let note t ~opcode ~branch ~set category =
  t.total <- t.total + 1;
  let b =
    match Hashtbl.find_opt t.opcodes opcode with
    | Some b -> b
    | None ->
        let b = { cold = 0; wrong = 0; conflict = 0 } in
        Hashtbl.replace t.opcodes opcode b;
        b
  in
  (match category with
  | Cold -> b.cold <- b.cold + 1
  | Wrong_target -> b.wrong <- b.wrong + 1
  | Conflict evictor ->
      b.conflict <- b.conflict + 1;
      bump t.pairs (opcode, evictor, set));
  if set >= 0 then begin
    bump t.sets set;
    Hashtbl.replace t.seen (set, branch) ()
  end

let total t = t.total

let by_opcode t =
  List.sort
    (fun (oa, a) (ob, b) ->
      match compare (bucket_total b) (bucket_total a) with
      | 0 -> compare oa ob
      | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.opcodes [])

let conflicts t =
  List.sort
    (fun (ka, a) (kb, b) ->
      match compare b a with 0 -> compare ka kb | c -> c)
    (Hashtbl.fold (fun k v acc -> (k, !v) :: acc) t.pairs [])

let set_counts t ~nsets =
  let a = Array.make (max 0 nsets) 0 in
  Hashtbl.iter
    (fun set r -> if set >= 0 && set < nsets then a.(set) <- a.(set) + !r)
    t.sets;
  a

let set_occupancy t ~nsets =
  let a = Array.make (max 0 nsets) 0 in
  Hashtbl.iter
    (fun (set, _) () -> if set >= 0 && set < nsets then a.(set) <- a.(set) + 1)
    t.seen;
  a

(** Crash flight recorder: a fixed-size, lock-free ring of the last
    {!capacity} event-loop and pool transitions.

    Recording is always on and always cheap (one record allocation and
    two atomic operations per {!note}); the ring overwrites its oldest
    entries, so whatever the process was doing just before a degradation,
    a wedge, or a crash is what survives.  Hosts dump {!to_json} to a
    [vmbp-flight-*.json] artifact on degradation entry, unclean exit,
    fatal signal, and on demand.

    All timestamps flow through a substitutable clock ({!set_clock}),
    matching {!Span}: simulated runs produce deterministic dumps. *)

type entry = {
  seq : int;  (** global sequence number, 0-based *)
  ts : float;  (** clock timestamp, seconds *)
  dom : int;  (** recording domain id *)
  kind : string;  (** transition class, e.g. ["accept"], ["batch-start"] *)
  detail : string;  (** free-form context *)
}

val capacity : int
(** Ring size (number of retained entries). *)

val set_clock : (unit -> float) -> unit
(** Substitute the timestamp source (default [Unix.gettimeofday]). *)

val note : kind:string -> string -> unit
(** Record one transition.  Lock-free; callable from any domain. *)

val reset : unit -> unit
(** Clear the ring and the sequence counter (fresh-process semantics). *)

val recorded : unit -> int
(** Total transitions ever noted (≥ number of retained entries). *)

val entries : unit -> entry list
(** Retained entries in sequence order, oldest first. *)

val to_json : ?reason:string -> unit -> string
(** Render the ring as a [vmbp-flight/1] JSON document: schema, optional
    dump reason, capacity, total recorded, dropped count, and the
    retained entries oldest-first. *)

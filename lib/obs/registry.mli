(** A process-global registry of named counters, gauges and fixed-bucket
    histograms.

    Instruments are created (or re-fetched) by name; updates go through
    the returned handle.  All state lives behind one mutex, so worker
    domains can update concurrently without losing increments; updates
    happen at cell granularity (never inside simulation hot loops), so the
    lock is not a throughput concern.  Counters accumulate in [int64]: two
    runs' worth of 62-bit native-instruction counts cannot silently wrap.

    {!reset} zeroes every instrument in place -- existing handles stay
    valid -- so each report run starts from a clean slate without
    invalidating the module-level handles instrumented code holds. *)

type counter
type gauge
type histogram

val counter : string -> counter
(** Find or create.  @raise Invalid_argument if the name is already
    registered as a different instrument kind. *)

val add : counter -> int -> unit
val add_int64 : counter -> int64 -> unit
val counter_value : counter -> int64
val find_counter : string -> int64 option

val gauge : string -> gauge
(** A float-valued level with a high-water mark. *)

val gauge_set : gauge -> float -> unit
val gauge_add : gauge -> float -> unit
val gauge_value : gauge -> float
val gauge_max : gauge -> float

val histogram : bounds:float array -> string -> histogram
(** Fixed cumulative-style buckets: an observation [v] lands in the first
    bucket whose upper bound satisfies [v <= bound], or in the implicit
    overflow bucket past the last bound.  [bounds] must be strictly
    increasing and non-empty.  @raise Invalid_argument otherwise, or on an
    instrument-kind clash. *)

val observe : histogram -> float -> unit

val histogram_snapshot : histogram -> float array * int array * float * int
(** [(bounds, counts, sum, count)]; [counts] has one more entry than
    [bounds] (the overflow bucket last). *)

val histogram_quantile : histogram -> float -> float
(** Approximate [q]-quantile ([0..1]) from the bucket counts, with linear
    interpolation inside the winning bucket.  Two documented conventions:
    an empty histogram returns [nan] (it has no quantiles -- never a
    misleading 0), and a quantile landing in the overflow bucket clamps
    to the top bound (no upper edge to interpolate towards), so reported
    quantiles never exceed the instrument's largest bound. *)

val reset : unit -> unit
(** Zero every registered instrument in place. *)

val names : unit -> string list
(** Registered instrument names, sorted. *)

val to_json : unit -> string
(** The whole registry as one JSON document (schema ["vmbp-metrics/1"]):
    [{"schema":"vmbp-metrics/1","counters":{name:int,...},
    "gauges":{name:{"value":..,"max":..},...},
    "histograms":{name:{"le":[...],"counts":[...],"sum":..,"count":..},...}}]
    with names in sorted order, so equal registry states render
    byte-identically. *)

val write : file:string -> unit

val to_prometheus : unit -> string
(** The whole registry in the Prometheus text exposition format.  Names
    are mangled to [vmbp_<name>] with non-alphanumerics as underscores; a
    registry name of the form ["base{k=v,...}"] splits into a metric
    family plus labels, so e.g. ["service.verb_seconds{verb=query}"] and
    ["...{verb=grid}"] render as two series of one
    [vmbp_service_verb_seconds] histogram family.  Counters render as
    [<family>_total]; gauges render their value plus a [<family>_max]
    high-water family; histograms render cumulative [_bucket] series
    (ending with [le="+Inf"]) plus [_sum] and [_count]. *)

(** Attribution tables for mispredicts and cache misses.

    One table aggregates one event family (BTB/two-level mispredicts, or
    I-cache line misses) by the VM opcode that suffered the event, the
    predictor/cache set it happened in, and -- for conflict events -- the
    VM opcode whose entry displaced the victim.  The tables are plain
    aggregation: the caller (an observer hook installed on the simulators,
    see {!Vmbp_core} explain tooling) decides the category of every event
    and feeds it in; [total] is therefore directly comparable with the
    simulator's own miss counters, which is the validation the explain
    subcommand enforces. *)

type category =
  | Cold  (** first occurrence: nothing to predict from yet *)
  | Wrong_target
      (** the entry belonged to this branch but held a different target *)
  | Conflict of int
      (** the entry was displaced; the argument is the evicting VM opcode *)

type bucket = { mutable cold : int; mutable wrong : int; mutable conflict : int }

val bucket_total : bucket -> int

type t

val create : unit -> t

val note : t -> opcode:int -> branch:int -> set:int -> category -> unit
(** Record one event suffered by [opcode] at [branch] (a branch address or
    a cache line index) mapping to [set]; pass [set = -1] for simulators
    without set structure (unbounded BTB, case-block table). *)

val total : t -> int
(** Events recorded so far; equals the sum over all opcode buckets. *)

val by_opcode : t -> (int * bucket) list
(** Per-opcode buckets, sorted by descending total (ties by opcode). *)

val conflicts : t -> ((int * int * int) * int) list
(** [((victim_opcode, evictor_opcode, set), count)] for every conflict
    event, sorted by descending count (ties by key). *)

val set_counts : t -> nsets:int -> int array
(** Events per set, for sets [0 .. nsets-1]; events with [set = -1] or out
    of range are not included. *)

val set_occupancy : t -> nsets:int -> int array
(** Distinct branches (or lines) seen per set. *)

(* A deterministic simulated world behind {!Env.t}.

   One OCaml thread runs everything: the service's event loop pumps the
   simulation through [select], which advances a virtual clock to the
   next scheduled event instead of sleeping.  Everything nondeterministic
   in the real world -- message latency, write atomicity, crash timing --
   is drawn from one seeded splitmix64 stream, so a schedule replays
   bit-for-bit from its seed.

   Fault model:

   - Filesystem: writes land in an in-memory unsynced suffix until
     [fsync] merges them into the synced prefix.  A power cut keeps the
     synced prefix plus a seeded prefix of the unsynced bytes (torn
     tail); writes may be short; directory operations (create, rename,
     remove) are pending until [fsync_dir] and roll back at a crash,
     which is exactly the failure the store's rename-then-dir-fsync
     discipline exists to prevent.
   - Sockets: in-memory duplex pairs with seeded per-chunk delays
     (FIFO per direction), seeded short writes, and severed connections
     on crash.
   - Process crash: either at a scheduled virtual time or on the Nth
     file-write opportunity (a power cut mid-append).  The snapshot is
     taken at the crash instant; the doomed process keeps running until
     the next [select], but its writes are discarded and [Crashed] then
     unwinds the server so the driver can restart it on the surviving
     filesystem image. *)

exception Crashed
exception Stalled

(* ------------------------------------------------------------------ *)

type inode = { mutable synced : string; unsynced : Buffer.t }

type dirop =
  | Op_create of string
  | Op_rename of {
      r_src : string;
      r_dst : string;
      moved : inode;
      displaced : inode option;
    }
  | Op_remove of { rm_path : string; removed : inode }

type conn = {
  conn_id : int;
  mutable to_server : string;  (* delivered, not yet read by the server *)
  mutable server_eof : bool;  (* client closed, all bytes delivered *)
  mutable server_alive : bool;
  mutable client_alive : bool;
  mutable client_cb : (string option -> unit) option;
  mutable client_pending : string;
  mutable client_eof_pending : bool;
  mutable client_eof_sent : bool;
  mutable in_pump : bool;
  mutable arr_to_server : float;  (* per-direction FIFO floors *)
  mutable arr_to_client : float;
}

type pipe = { mutable p_pending : int; mutable p_closed : bool }

type obj =
  | O_file of { f_path : string; f_inode : inode; mutable f_closed : bool }
  | O_listener of { l_path : string; l_queue : conn Queue.t }
  | O_sock of conn
  | O_pipe_r of pipe
  | O_pipe_w of pipe

type t = {
  seed : int;
  mutable rng : Int64.t;
  mutable vnow : float;
  mutable events : (float * int * (unit -> unit)) list;  (* time-sorted *)
  mutable eseq : int;
  objs : (int, obj) Hashtbl.t;
  mutable next_fd : int;
  mutable entries : (string, inode) Hashtbl.t;
  dirs : (string, unit) Hashtbl.t;
  mutable pending_dirops : dirop list;  (* newest first *)
  listeners : (string, conn Queue.t) Hashtbl.t;
  mutable conn_next : int;
  (* crash machinery *)
  mutable crashed : bool;
  mutable crash_pending : bool;
  mutable post_crash : (string, inode) Hashtbl.t option;
  mutable op_crash : int option;
  mutable crash_count : int;
  (* knobs *)
  mutable short_write_p : float;
  mutable net_delay_base : float;
  mutable net_delay_spread : float;
  (* progress accounting *)
  mutable selects : int;
  mutable select_cap : int;
  trace : Buffer.t;
  (* simulated compute pool *)
  mutable pool_step : (block:bool -> [ `Idle | `Ran | `Stop ]) option;
  mutable pool_gen : int;
  mutable pool_running : bool;
  mutable pool_stopped : bool;
  mutable pool_kick_pending : bool;
  mutable in_pool : bool;
  mutable pool_delay : float;
  mutable pool_outstanding : int;
  mutable pool_last_arrival : float;
  mutable env : Env.t;  (* backpatched by [create] *)
}

(* ------------------------------------------------------------------ *)
(* Seeded stream *)

let splitmix st =
  let open Int64 in
  st.rng <- add st.rng 0x9E3779B97F4A7C15L;
  let z = st.rng in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let rand_float t =
  Int64.to_float (Int64.shift_right_logical (splitmix t) 11)
  /. 9007199254740992.

let rand_int t n = if n <= 0 then 0 else int_of_float (rand_float t *. float_of_int n)

let net_delay t = t.net_delay_base +. (rand_float t *. t.net_delay_spread)

(* ------------------------------------------------------------------ *)
(* Trace + scheduler *)

let tracef t fmt =
  Printf.ksprintf
    (fun s ->
      if Buffer.length t.trace < 2_000_000 then begin
        Buffer.add_string t.trace (Printf.sprintf "[%10.4f] %s\n" t.vnow s)
      end)
    fmt

let trace_contents t = Buffer.contents t.trace

let now t = t.vnow

let at t time f =
  let time = if time <= t.vnow then t.vnow +. 1e-6 else time in
  t.eseq <- t.eseq + 1;
  let ev = (time, t.eseq, f) in
  let rec ins = function
    | [] -> [ ev ]
    | ((t', s', _) as hd) :: tl ->
        if time < t' || (time = t' && t.eseq < s') then ev :: hd :: tl
        else hd :: ins tl
  in
  t.events <- ins t.events

let after t d f = at t (t.vnow +. d) f

let rec fire_due t =
  match t.events with
  | (time, _, f) :: rest when time <= t.vnow ->
      t.events <- rest;
      f ();
      fire_due t
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Filesystem *)

let inode_make () = { synced = ""; unsynced = Buffer.create 64 }

let inode_contents ino = ino.synced ^ Buffer.contents ino.unsynced

let file_exists t p = Hashtbl.mem t.entries p || Hashtbl.mem t.dirs p

let register t o =
  let id = t.next_fd in
  t.next_fd <- id + 1;
  Hashtbl.replace t.objs id o;
  Env.Sim id

let obj t = function
  | Env.Sim id -> Hashtbl.find_opt t.objs id
  | Env.Real _ -> None

let err e name = raise (Unix.Unix_error (e, name, ""))

(* ------------------------------------------------------------------ *)
(* Crash *)

(* Power-cut image: roll back directory operations that were never made
   durable by [fsync_dir], then keep each surviving inode's synced
   prefix plus a seeded prefix of its unsynced bytes. *)
let power_cut_image t =
  let snap = Hashtbl.copy t.entries in
  List.iter
    (fun op ->
      match op with
      | Op_create p -> Hashtbl.remove snap p
      | Op_rename { r_src; r_dst; moved; displaced } ->
          (match displaced with
          | Some old -> Hashtbl.replace snap r_dst old
          | None -> Hashtbl.remove snap r_dst);
          Hashtbl.replace snap r_src moved
      | Op_remove { rm_path; removed } -> Hashtbl.replace snap rm_path removed)
    t.pending_dirops;
  let post = Hashtbl.create (Hashtbl.length snap) in
  Hashtbl.iter
    (fun path ino ->
      let u = Buffer.contents ino.unsynced in
      let keep = rand_int t (String.length u + 1) in
      let i' = inode_make () in
      i'.synced <- ino.synced ^ String.sub u 0 keep;
      Hashtbl.replace post path i')
    snap;
  post

let deliver_client _t c msg =
  (match msg with
  | Some s -> c.client_pending <- c.client_pending ^ s
  | None -> c.client_eof_pending <- true);
  if c.client_alive && not c.in_pump then
    match c.client_cb with
    | None -> ()
    | Some cb ->
        c.in_pump <- true;
        Fun.protect
          ~finally:(fun () -> c.in_pump <- false)
          (fun () ->
            let rec pump () =
              if c.client_pending <> "" then begin
                let s = c.client_pending in
                c.client_pending <- "";
                cb (Some s);
                pump ()
              end
              else if c.client_eof_pending && not c.client_eof_sent then begin
                c.client_eof_sent <- true;
                cb None
              end
            in
            pump ())

let crash_now t =
  if not t.crashed then begin
    t.crashed <- true;
    t.crash_pending <- true;
    t.crash_count <- t.crash_count + 1;
    tracef t "CRASH #%d (power cut)" t.crash_count;
    t.post_crash <- Some (power_cut_image t);
    (* The host vanished: every server-side endpoint dies and clients
       see EOF once the wire drains. *)
    Hashtbl.iter
      (fun _ o ->
        match o with
        | O_sock c when c.server_alive ->
            c.server_alive <- false;
            let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_client in
            c.arr_to_client <- arrival;
            at t arrival (fun () -> deliver_client t c None)
        | _ -> ())
      t.objs;
    Hashtbl.iter
      (fun _ q ->
        Queue.iter
          (fun c ->
            c.server_alive <- false;
            at t (t.vnow +. net_delay t) (fun () -> deliver_client t c None))
          q)
      t.listeners;
    Hashtbl.reset t.listeners
  end

let crash_at t time = at t time (fun () -> crash_now t)

let crash_after_writes t n = t.op_crash <- Some (max 1 n)

let crashes t = t.crash_count
let in_crash t = t.crashed

let restart t =
  if not t.crashed then invalid_arg "Sim_env.restart: not crashed";
  (match t.post_crash with
  | Some post -> t.entries <- post
  | None -> ());
  t.post_crash <- None;
  t.pending_dirops <- [];
  t.crashed <- false;
  t.crash_pending <- false;
  t.op_crash <- None;
  (* Server-side objects are gone; client endpoints survive. *)
  let dead =
    Hashtbl.fold
      (fun id o acc ->
        match o with
        | O_file _ | O_listener _ | O_pipe_r _ | O_pipe_w _ -> id :: acc
        | O_sock c -> if c.server_alive then id :: acc else acc)
      t.objs []
  in
  List.iter (Hashtbl.remove t.objs) dead;
  (* A listener bound by the doomed process after the crash dies with it. *)
  Hashtbl.reset t.listeners;
  t.pool_gen <- t.pool_gen + 1;
  t.pool_step <- None;
  t.pool_running <- false;
  t.pool_stopped <- false;
  t.pool_kick_pending <- false;
  t.in_pool <- false;
  t.pool_delay <- 0.;
  t.pool_outstanding <- 0;
  t.pool_last_arrival <- 0.;
  tracef t "RESTART"

(* ------------------------------------------------------------------ *)
(* Client-side socket API (used by simulated client actors) *)

let client_connect t path =
  match Hashtbl.find_opt t.listeners path with
  | None -> Error Unix.ECONNREFUSED
  | Some q ->
      let c =
        {
          conn_id =
            (t.conn_next <- t.conn_next + 1;
             t.conn_next);
          to_server = "";
          server_eof = false;
          server_alive = true;
          client_alive = true;
          client_cb = None;
          client_pending = "";
          client_eof_pending = false;
          client_eof_sent = false;
          in_pump = false;
          arr_to_server = t.vnow;
          arr_to_client = t.vnow;
        }
      in
      Queue.push c q;
      Ok c

let on_conn_event _t c cb =
  c.client_cb <- Some cb;
  (* Deliver anything that arrived before the callback was installed. *)
  deliver_client _t c (Some "")

let client_send t c s =
  if s <> "" && c.client_alive then begin
    let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_server in
    c.arr_to_server <- arrival;
    at t arrival (fun () ->
        if c.server_alive then c.to_server <- c.to_server ^ s)
  end

let client_close t c =
  if c.client_alive then begin
    c.client_alive <- false;
    c.client_cb <- None;
    let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_server in
    c.arr_to_server <- arrival;
    at t arrival (fun () -> c.server_eof <- true)
  end

let sever t c =
  (* A mid-connection network fault: both directions die now. *)
  if c.client_alive || c.server_alive then begin
    tracef t "SEVER conn %d" c.conn_id;
    c.server_alive <- false;
    at t (t.vnow +. net_delay t) (fun () -> deliver_client t c None);
    let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_server in
    at t arrival (fun () -> c.server_eof <- true)
  end

(* ------------------------------------------------------------------ *)
(* The Env implementation *)

let eps = 1e-4

let sim_openfile t path flags perm =
  ignore perm;
  let creat = List.mem Unix.O_CREAT flags in
  let ino =
    match Hashtbl.find_opt t.entries path with
    | Some i -> i
    | None ->
        if not creat then err Unix.ENOENT "open";
        let i = inode_make () in
        Hashtbl.replace t.entries path i;
        if not t.crashed then
          t.pending_dirops <- Op_create path :: t.pending_dirops;
        i
  in
  if List.mem Unix.O_TRUNC flags then begin
    ino.synced <- "";
    Buffer.clear ino.unsynced
  end;
  register t (O_file { f_path = path; f_inode = ino; f_closed = false })

let sim_write t fd s off len =
  match obj t fd with
  | Some (O_file f) ->
      if f.f_closed then err Unix.EBADF "write";
      if t.crashed then len
      else begin
        let n =
          if len > 1 && rand_float t < t.short_write_p then
            1 + rand_int t (len - 1)
          else len
        in
        (match t.op_crash with
        | Some k when k <= 1 ->
            (* Power cut in the middle of this very write: a seeded
               prefix of the chunk reaches the page cache, then the
               machine dies. *)
            t.op_crash <- None;
            let keep = rand_int t (n + 1) in
            Buffer.add_substring f.f_inode.unsynced s off keep;
            tracef t "op-crash during write to %s (%d/%d bytes in flight)"
              f.f_path keep n;
            crash_now t
        | Some k ->
            t.op_crash <- Some (k - 1);
            Buffer.add_substring f.f_inode.unsynced s off n
        | None -> Buffer.add_substring f.f_inode.unsynced s off n);
        n
      end
  | Some (O_sock c) ->
      if t.crashed then len
      else if not c.client_alive then err Unix.EPIPE "write"
      else begin
        let n =
          if len > 1 && rand_float t < t.short_write_p then
            1 + rand_int t (len - 1)
          else len
        in
        let chunk = String.sub s off n in
        let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_client in
        c.arr_to_client <- arrival;
        at t arrival (fun () -> deliver_client t c (Some chunk));
        n
      end
  | Some (O_pipe_w p) ->
      if p.p_closed then err Unix.EBADF "write";
      p.p_pending <- p.p_pending + len;
      len
  | _ -> err Unix.EBADF "write"

let sim_read t fd buf off len =
  match obj t fd with
  | Some (O_sock c) ->
      if c.to_server <> "" then begin
        let n = min len (String.length c.to_server) in
        Bytes.blit_string c.to_server 0 buf off n;
        c.to_server <-
          String.sub c.to_server n (String.length c.to_server - n);
        n
      end
      else if c.server_eof then 0
      else err Unix.EAGAIN "read"
  | Some (O_pipe_r p) ->
      if p.p_pending > 0 then begin
        let n = min len p.p_pending in
        Bytes.fill buf off n '!';
        p.p_pending <- p.p_pending - n;
        n
      end
      else err Unix.EAGAIN "read"
  | _ -> err Unix.EBADF "read"

let sim_fsync t fd =
  match obj t fd with
  | Some (O_file f) ->
      if not t.crashed then begin
        f.f_inode.synced <-
          f.f_inode.synced ^ Buffer.contents f.f_inode.unsynced;
        Buffer.clear f.f_inode.unsynced
      end
  | _ -> ()

let sim_close t fd =
  match fd with
  | Env.Sim id -> (
      match Hashtbl.find_opt t.objs id with
      | Some (O_file f) ->
          f.f_closed <- true;
          Hashtbl.remove t.objs id
      | Some (O_listener l) ->
          (match Hashtbl.find_opt t.listeners l.l_path with
          | Some q when q == l.l_queue -> Hashtbl.remove t.listeners l.l_path
          | _ -> ());
          Hashtbl.remove t.objs id
      | Some (O_sock c) ->
          c.server_alive <- false;
          let arrival = Float.max (t.vnow +. net_delay t) c.arr_to_client in
          c.arr_to_client <- arrival;
          at t arrival (fun () -> deliver_client t c None);
          Hashtbl.remove t.objs id
      | Some (O_pipe_r p) | Some (O_pipe_w p) ->
          p.p_closed <- true;
          Hashtbl.remove t.objs id
      | None -> err Unix.EBADF "close")
  | Env.Real _ -> err Unix.EBADF "close"

let sim_rename t src dst =
  if not t.crashed then begin
    match Hashtbl.find_opt t.entries src with
    | None -> err Unix.ENOENT "rename"
    | Some ino ->
        let displaced = Hashtbl.find_opt t.entries dst in
        Hashtbl.remove t.entries src;
        Hashtbl.replace t.entries dst ino;
        t.pending_dirops <-
          Op_rename { r_src = src; r_dst = dst; moved = ino; displaced }
          :: t.pending_dirops
  end

let sim_unlink t path =
  if Hashtbl.mem t.listeners path then Hashtbl.remove t.listeners path
  else
    match Hashtbl.find_opt t.entries path with
    | Some ino ->
        if not t.crashed then begin
          Hashtbl.remove t.entries path;
          t.pending_dirops <-
            Op_remove { rm_path = path; removed = ino } :: t.pending_dirops
        end
    | None -> err Unix.ENOENT "unlink"

let sim_readdir t dir =
  let names =
    Hashtbl.fold
      (fun p _ acc ->
        if Filename.dirname p = dir then Filename.basename p :: acc else acc)
      t.entries []
  in
  Array.of_list (List.sort compare names)

let sim_listen t path ~backlog =
  ignore backlog;
  if Hashtbl.mem t.listeners path then err Unix.EADDRINUSE "bind";
  let q = Queue.create () in
  Hashtbl.replace t.listeners path q;
  register t (O_listener { l_path = path; l_queue = q })

let sim_accept t fd =
  match obj t fd with
  | Some (O_listener l) ->
      (* Skip clients that hung up while queued. *)
      let rec pop () =
        if Queue.is_empty l.l_queue then None
        else
          let c = Queue.pop l.l_queue in
          if c.client_alive then Some (register t (O_sock c)) else pop ()
      in
      pop ()
  | _ -> None

let readable t fd =
  match obj t fd with
  | Some (O_listener l) -> not (Queue.is_empty l.l_queue)
  | Some (O_sock c) -> c.to_server <> "" || c.server_eof
  | Some (O_pipe_r p) -> p.p_pending > 0
  | _ -> false

let writable t fd =
  match obj t fd with
  | Some (O_sock _) -> true  (* a dead peer surfaces as EPIPE on write *)
  | Some (O_pipe_w _) -> true
  | _ -> false

let sim_select t rfds wfds timeout =
  if t.crash_pending then begin
    t.crash_pending <- false;
    raise Crashed
  end;
  t.selects <- t.selects + 1;
  if t.selects > t.select_cap then raise Stalled;
  fire_due t;
  let ready () =
    ( List.filter (readable t) rfds,
      List.filter (writable t) wfds )
  in
  let r, w = ready () in
  if r <> [] || w <> [] then begin
    (* The loop did work: charge a small fixed cost so virtual time
       always advances and a spinning loop hits the select cap. *)
    t.vnow <- t.vnow +. eps;
    fire_due t;
    ready ()
  end
  else begin
    let target = t.vnow +. Float.max timeout 0. in
    match t.events with
    | (te, _, _) :: _ when te <= target ->
        t.vnow <- Float.max t.vnow te;
        fire_due t;
        ready ()
    | _ ->
        t.vnow <- target;
        ([], [])
  end

let sim_pipe t =
  let p = { p_pending = 0; p_closed = false } in
  (register t (O_pipe_r p), register t (O_pipe_w p))

(* ------------------------------------------------------------------ *)
(* Simulated compute pool: single compute context, batches serialized,
   results published a seeded virtual latency after the batch is taken
   so the event loop observes the busy window a real compute domain
   would produce. *)

let pool_latency t = 0.002 +. (rand_float t *. 0.02)

let rec try_step t =
  if (not t.crashed) && not t.pool_stopped then begin
    if t.pool_running then t.pool_kick_pending <- true
    else
      match t.pool_step with
      | None -> ()
      | Some step ->
          t.pool_running <- true;
          t.in_pool <- true;
          t.pool_delay <- 0.;
          t.pool_last_arrival <- t.vnow;
          let r =
            Fun.protect
              ~finally:(fun () -> t.in_pool <- false)
              (fun () -> step ~block:false)
          in
          (match r with `Stop -> t.pool_stopped <- true | `Ran | `Idle -> ());
          if t.pool_outstanding = 0 then begin
            t.pool_running <- false;
            if t.pool_kick_pending then begin
              t.pool_kick_pending <- false;
              kick t
            end
          end
  end

and kick t =
  let gen = t.pool_gen in
  after t (0.0005 +. (rand_float t *. 0.002)) (fun () ->
      if gen = t.pool_gen then try_step t)

let sim_spawn_compute t step =
  t.pool_gen <- t.pool_gen + 1;
  t.pool_step <- Some step;
  t.pool_running <- false;
  t.pool_stopped <- false;
  t.pool_kick_pending <- false;
  t.pool_outstanding <- 0;
  let join () =
    (* Join runs after the event loop exited (drain or crash), so the
       remaining steps run inline; a stop job is already enqueued. *)
    let rec go n =
      if (not t.pool_stopped) && n < 10_000 then begin
        (match t.pool_step with
        | None -> t.pool_stopped <- true
        | Some step ->
            t.in_pool <- true;
            t.pool_delay <- 0.;
            let r =
              Fun.protect
                ~finally:(fun () -> t.in_pool <- false)
                (fun () -> step ~block:false)
            in
            (match r with
            | `Stop -> t.pool_stopped <- true
            | `Ran | `Idle -> ()));
        go (n + 1)
      end
    in
    go 0
  in
  { Env.kick = (fun () -> if not t.crashed then kick t); join }

let sim_defer_done t f =
  if not t.in_pool then f ()
  else begin
    let arrival =
      Float.max
        (t.vnow +. pool_latency t +. t.pool_delay)
        (t.pool_last_arrival +. 1e-6)
    in
    t.pool_last_arrival <- arrival;
    t.pool_outstanding <- t.pool_outstanding + 1;
    let gen = t.pool_gen in
    at t arrival (fun () ->
        if gen = t.pool_gen then begin
          t.pool_outstanding <- t.pool_outstanding - 1;
          f ();
          if t.pool_outstanding = 0 && not t.in_pool then begin
            t.pool_running <- false;
            if t.pool_kick_pending then begin
              t.pool_kick_pending <- false;
              kick t
            end
          end
        end)
  end

(* ------------------------------------------------------------------ *)

let env t = t.env

let create ?(select_cap = 500_000) ~seed () =
  let t =
    {
      seed;
      rng = Int64.of_int ((seed * 2) + 1);
      vnow = 0.;
      events = [];
      eseq = 0;
      objs = Hashtbl.create 64;
      next_fd = 3;
      entries = Hashtbl.create 64;
      dirs = Hashtbl.create 8;
      pending_dirops = [];
      listeners = Hashtbl.create 4;
      conn_next = 0;
      crashed = false;
      crash_pending = false;
      post_crash = None;
      op_crash = None;
      crash_count = 0;
      short_write_p = 0.05;
      net_delay_base = 0.0005;
      net_delay_spread = 0.004;
      selects = 0;
      select_cap;
      trace = Buffer.create 4096;
      pool_step = None;
      pool_gen = 0;
      pool_running = false;
      pool_stopped = false;
      pool_kick_pending = false;
      in_pool = false;
      pool_delay = 0.;
      pool_outstanding = 0;
      pool_last_arrival = 0.;
      env = Env.real;
    }
  in
  let sleep d =
    if d > 0. then
      if t.in_pool then
        (* The compute context sleeping does not block the event loop;
           it stretches the batch's busy window instead. *)
        t.pool_delay <- t.pool_delay +. d
      else t.vnow <- t.vnow +. d
  in
  t.env <-
    {
      Env.name = "sim";
      now = (fun () -> t.vnow);
      wall = (fun () -> 1.7e9 +. t.vnow);
      sleep;
      openfile = (fun p f m -> sim_openfile t p f m);
      read = (fun fd b o l -> sim_read t fd b o l);
      write = (fun fd s o l -> sim_write t fd s o l);
      fsync = (fun fd -> sim_fsync t fd);
      close = (fun fd -> sim_close t fd);
      rename = (fun a b -> sim_rename t a b);
      unlink = (fun p -> sim_unlink t p);
      mkdir = (fun d _ -> Hashtbl.replace t.dirs d ());
      readdir = (fun d -> sim_readdir t d);
      file_exists = (fun p -> file_exists t p);
      read_file =
        (fun p ->
          Option.map inode_contents (Hashtbl.find_opt t.entries p));
      fsync_dir = (fun _ -> if not t.crashed then t.pending_dirops <- []);
      listen = (fun p ~backlog -> sim_listen t p ~backlog);
      accept = (fun fd -> sim_accept t fd);
      select = (fun r w tmo -> sim_select t r w tmo);
      pipe = (fun () -> sim_pipe t);
      spawn_compute = (fun step -> sim_spawn_compute t step);
      defer_done = (fun f -> sim_defer_done t f);
    };
  t

let selects t = t.selects
let set_short_write_p t p = t.short_write_p <- p

(** The environment seam for deterministic simulation testing.

    Every effect the report service performs -- clock reads, sleeps,
    socket ops, store/journal file I/O, compute-pool hand-off -- goes
    through one {!t} record of closures.  {!real} binds them to the
    operating system exactly as the pre-seam code did, so production
    behavior is byte-for-byte unchanged; {!Sim_env} binds them to a
    single-threaded simulated world with a virtual clock, seeded message
    delays, a filesystem that models torn writes / short writes /
    power-cut-at-any-point, and whole-process crash/restart -- so
    thousands of distinct interleavings run per second and any failure
    replays exactly from its seed. *)

external monotonic_now : unit -> float = "vmbp_monotonic_now"
(** CLOCK_MONOTONIC seconds.  The base is arbitrary (boot time on
    Linux); only differences are meaningful. *)

type fd = Real of Unix.file_descr | Sim of int
(** File descriptors are opaque handles: real ones wrap the kernel's,
    simulated ones index the simulation's object table.  Both preserve
    physical identity through {!t.select}, so [List.memq] works on the
    returned lists. *)

type pool = {
  kick : unit -> unit;
      (** Notify the pool that work was enqueued.  No-op in the real
          env (the condition variable already woke the domain); the sim
          schedules a compute step a seeded latency later. *)
  join : unit -> unit;
      (** Wait for the pool to consume a stop job and finish.  A stop
          job must already be enqueued. *)
}

type t = {
  name : string;
  now : unit -> float;  (** monotonic; durations and deadlines only *)
  wall : unit -> float;  (** wall clock; log/stats timestamps only *)
  sleep : float -> unit;
  openfile : string -> Unix.open_flag list -> int -> fd;
  read : fd -> bytes -> int -> int -> int;
      (** Single-attempt, syscall-shaped: may be short, raises
          [Unix.Unix_error] (EAGAIN on a drained non-blocking fd). *)
  write : fd -> string -> int -> int -> int;
      (** Single-attempt substring write; may be short. *)
  fsync : fd -> unit;
  close : fd -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
  mkdir : string -> int -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  read_file : string -> string option;
      (** Whole contents, [None] if the file does not exist. *)
  fsync_dir : string -> unit;
      (** Make renames/creates in the directory durable; never raises
          (some filesystems refuse directory fsync). *)
  listen : string -> backlog:int -> fd;
      (** Bind a Unix-domain path; the returned listener and every fd
          {!t.accept} yields are non-blocking. *)
  accept : fd -> fd option;  (** [None] on EAGAIN. *)
  select : fd list -> fd list -> float -> fd list * fd list;
  pipe : unit -> fd * fd;  (** read end non-blocking *)
  spawn_compute : (block:bool -> [ `Idle | `Ran | `Stop ]) -> pool;
      (** Start the compute pool around a step function: [step
          ~block:true] blocks for work (real domain), [~block:false]
          polls (simulated).  [`Stop] means a stop job was consumed. *)
  defer_done : (unit -> unit) -> unit;
      (** How a compute step publishes results.  Real: run immediately
          (the pre-seam ordering).  Sim: schedule a seeded virtual
          latency later, so the event loop observes the busy window a
          separate compute domain would produce. *)
}

val real : t

val current : t ref
(** The process-wide environment, [real] by default.  {!Vmbp_store},
    the journal and the service capture it at open/start time; a
    simulation installs its env around a schedule and restores [real]
    after. *)

val now : unit -> float
(** [(!current).now ()] *)

val wall : unit -> float
val sleep : float -> unit

val mkdir_p : t -> string -> unit

val lines_of_contents : string -> string list
(** Split file contents the way [input_line] would: on ['\n'], with no
    final empty line for a trailing newline. *)

(* The environment seam for deterministic simulation testing.

   Every effect the report service performs -- clock reads, sleeps,
   socket ops, store/journal file I/O, compute-pool hand-off -- goes
   through one record of closures.  [real] binds them to the operating
   system exactly as the pre-seam code did; {!Sim_env} binds them to a
   single-threaded simulated world with a virtual clock, a faulty
   filesystem and seeded crash schedules, so whole-system interleavings
   replay bit-for-bit from a seed. *)

external monotonic_now : unit -> float = "vmbp_monotonic_now"

type fd = Real of Unix.file_descr | Sim of int

type pool = {
  kick : unit -> unit;
      (* New work was enqueued.  The real pool wakes via its condition
         variable, so this is a no-op there; the simulated pool schedules
         a compute step. *)
  join : unit -> unit;
      (* Wait for the pool to observe a stop job and finish. *)
}

type t = {
  name : string;
  now : unit -> float;  (* monotonic: durations and deadlines only *)
  wall : unit -> float;  (* wall clock: log/stats timestamps only *)
  sleep : float -> unit;
  (* Files.  [read]/[write] are single-attempt syscall-shaped calls:
     they may be short and raise [Unix.Unix_error]. *)
  openfile : string -> Unix.open_flag list -> int -> fd;
  read : fd -> bytes -> int -> int -> int;
  write : fd -> string -> int -> int -> int;
  fsync : fd -> unit;
  close : fd -> unit;
  rename : string -> string -> unit;
  unlink : string -> unit;
  mkdir : string -> int -> unit;
  readdir : string -> string array;
  file_exists : string -> bool;
  read_file : string -> string option;  (* whole contents; None if absent *)
  fsync_dir : string -> unit;
  (* Sockets.  [listen] binds a Unix-domain path and returns a
     non-blocking listener; [accept] returns [None] instead of raising
     on EAGAIN; accepted fds are non-blocking. *)
  listen : string -> backlog:int -> fd;
  accept : fd -> fd option;
  select : fd list -> fd list -> float -> fd list * fd list;
  pipe : unit -> fd * fd;  (* read end non-blocking *)
  (* Compute pool.  [spawn_compute step] starts a worker that repeatedly
     calls [step]; the step function reports [`Stop] once it has consumed
     a stop job.  [defer_done] is how a compute step publishes its
     results: the real pool runs the closure immediately (preserving the
     pre-seam ordering byte-for-byte), the simulated pool schedules it a
     seeded virtual latency later so the event loop observes a busy
     window. *)
  spawn_compute : (block:bool -> [ `Idle | `Ran | `Stop ]) -> pool;
  defer_done : (unit -> unit) -> unit;
}

(* ------------------------------------------------------------------ *)
(* The real environment: today's behavior, verbatim. *)

let unwrap = function
  | Real fd -> fd
  | Sim _ -> invalid_arg "Env.real: simulated fd passed to the real env"

let real =
  let openfile path flags perm = Real (Unix.openfile path flags perm) in
  let read fd buf off len = Unix.read (unwrap fd) buf off len in
  let write fd s off len = Unix.write_substring (unwrap fd) s off len in
  let read_file path =
    match open_in_bin path with
    | exception Sys_error _ -> None
    | ic ->
        Fun.protect
          ~finally:(fun () -> close_in_noerr ic)
          (fun () -> Some (really_input_string ic (in_channel_length ic)))
  in
  let listen path ~backlog =
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    Unix.bind fd (Unix.ADDR_UNIX path);
    Unix.listen fd backlog;
    Unix.set_nonblock fd;
    Real fd
  in
  let rec accept fd =
    match Unix.accept (unwrap fd) with
    | c, _ ->
        Unix.set_nonblock c;
        Some (Real c)
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
        None
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> accept fd
    | exception Unix.Unix_error _ -> None
  in
  let select rfds wfds timeout =
    let r, w, _ =
      Unix.select (List.map unwrap rfds) (List.map unwrap wfds) [] timeout
    in
    (* Filter the caller's lists so the returned elements are physically
       the fds the caller passed in ([List.memq] downstream). *)
    ( List.filter (fun fd -> List.mem (unwrap fd) r) rfds,
      List.filter (fun fd -> List.mem (unwrap fd) w) wfds )
  in
  let pipe () =
    let r, w = Unix.pipe () in
    Unix.set_nonblock r;
    (Real r, Real w)
  in
  let spawn_compute step =
    let d =
      Domain.spawn (fun () ->
          let rec go () =
            match step ~block:true with `Stop -> () | `Ran | `Idle -> go ()
          in
          go ())
    in
    { kick = (fun () -> ()); join = (fun () -> Domain.join d) }
  in
  {
    name = "real";
    now = monotonic_now;
    wall = Unix.gettimeofday;
    sleep = Unix.sleepf;
    openfile;
    read;
    write;
    fsync = (fun fd -> Unix.fsync (unwrap fd));
    close = (fun fd -> Unix.close (unwrap fd));
    rename = Unix.rename;
    unlink = Unix.unlink;
    mkdir = Unix.mkdir;
    readdir = Sys.readdir;
    file_exists = Sys.file_exists;
    read_file;
    fsync_dir =
      (fun dir ->
        (* Some filesystems refuse fsync on a directory; not fatal. *)
        match Unix.openfile dir [ Unix.O_RDONLY ] 0 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
            (try Unix.fsync fd with Unix.Unix_error _ -> ());
            (try Unix.close fd with Unix.Unix_error _ -> ()));
    listen;
    accept;
    select;
    pipe;
    spawn_compute;
    defer_done = (fun f -> f ());
  }

(* The process-wide environment.  {!Store}, {!Journal} and the service
   capture it when they open/start, so a simulation installs its env,
   runs, and restores [real]. *)
let current = ref real

let now () = !current.now ()
let wall () = !current.wall ()
let sleep d = !current.sleep d

let mkdir_p (env : t) dir =
  let rec go d =
    if d <> "/" && d <> "." && not (env.file_exists d) then begin
      go (Filename.dirname d);
      try env.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    end
  in
  go dir

(* [input_line] semantics over a whole file: split on '\n'; a trailing
   newline does not produce a final empty line. *)
let lines_of_contents s =
  match String.split_on_char '\n' s with
  | [] -> []
  | parts -> (
      match List.rev parts with
      | "" :: rest -> List.rev rest
      | _ -> parts)

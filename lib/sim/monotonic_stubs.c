/* CLOCK_MONOTONIC for deadline arithmetic: Unix.gettimeofday is wall
   time and steps under NTP, which can fire or suppress timeouts.  The
   OCaml Unix library shipped with this toolchain has no clock_gettime
   binding, so this is the one C stub in the tree. */

#include <caml/alloc.h>
#include <caml/mlvalues.h>
#include <time.h>

CAMLprim value vmbp_monotonic_now(value unit)
{
  struct timespec ts;
#ifdef CLOCK_MONOTONIC
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
#endif
  /* Fallback for platforms without a monotonic clock: wall time is
     still a clock, just not a step-free one. */
  clock_gettime(CLOCK_REALTIME, &ts);
  return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec / 1e9);
}

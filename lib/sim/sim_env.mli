(** A deterministic simulated world behind {!Env.t}.

    One OCaml thread runs everything: the service's event loop pumps the
    simulation through its [select], which advances a virtual clock to
    the next scheduled event instead of sleeping.  All nondeterminism --
    message latency, write atomicity, crash timing -- comes from one
    seeded stream, so a schedule replays bit-for-bit from its seed. *)

type t

exception Crashed
(** Raised from the simulated [select] once a process crash has been
    triggered: the snapshot of surviving bytes was taken at the crash
    instant, and this unwinds the server loop so the driver can
    {!restart} the world and start a fresh [serve]. *)

exception Stalled
(** The select cap was exceeded: the event loop is spinning or the
    schedule never drains -- a liveness (deadlock/livelock) failure. *)

val create : ?select_cap:int -> seed:int -> unit -> t
(** A fresh world.  [select_cap] (default 500k) bounds event-loop
    iterations per schedule as the virtual-time liveness check. *)

val env : t -> Env.t
(** The {!Env.t} to install in {!Env.current} while the schedule runs. *)

val now : t -> float
(** Current virtual time (starts at 0). *)

val at : t -> float -> (unit -> unit) -> unit
(** Schedule a callback at an absolute virtual time (clamped to strictly
    after [now] so a callback scheduling itself cannot wedge the
    event pump). *)

val after : t -> float -> (unit -> unit) -> unit

(** {2 Seeded stream} *)

val rand_float : t -> float
(** Uniform in [\[0,1)], from the schedule's seeded stream. *)

val rand_int : t -> int -> int
(** Uniform in [\[0,n)]. *)

(** {2 Crash and restart} *)

val crash_at : t -> float -> unit
(** Power-cut the whole process at a virtual time. *)

val crash_after_writes : t -> int -> unit
(** Power-cut during the [n]th subsequent file write: a seeded prefix of
    that write's bytes reaches the disk image, then the machine dies --
    the torn-tail case timed crashes cannot reach under an
    append-then-fsync discipline. *)

val crashes : t -> int
(** Crashes triggered so far in this world. *)

val in_crash : t -> bool
(** [true] between a crash trigger and the matching {!restart}.  The
    server loop usually unwinds via {!Crashed}, but if the crash lands
    after its final drain it can return normally with the world still
    down -- drivers must check this and restart anyway. *)

val restart : t -> unit
(** Replace the live filesystem with the power-cut image (synced
    prefixes plus seeded surviving suffixes, un-fsynced directory
    operations rolled back), drop all dead server-side objects, and
    reset the pool so a fresh [serve] can start. *)

(** {2 Simulated clients} *)

type conn
(** The client endpoint of a simulated connection. *)

val client_connect : t -> string -> (conn, Unix.error) result
(** Connect to a listening path; [Error ECONNREFUSED] if nothing
    listens (e.g. the server is between crash and restart). *)

val on_conn_event : t -> conn -> (string option -> unit) -> unit
(** Install the delivery callback: [Some bytes] per arriving chunk,
    [None] once on EOF.  Anything that arrived earlier is delivered
    immediately. *)

val client_send : t -> conn -> string -> unit
val client_close : t -> conn -> unit

val sever : t -> conn -> unit
(** Kill the connection from the network's side: the server sees EOF,
    the client sees EOF, buffered bytes in flight still arrive first. *)

(** {2 Introspection and knobs} *)

val selects : t -> int
val set_short_write_p : t -> float -> unit

val tracef : t -> ('a, unit, string, unit) format4 -> 'a
(** Append a line to the schedule trace (capped; prefixed with virtual
    time).  The driver dumps this on a failing seed. *)

val trace_contents : t -> string

#!/usr/bin/env python3
"""Compare two --json cell summaries on simulated numbers only.

Usage: cells_diff.py BASELINE.json CANDIDATE.json [--expect-cells N]

Cells are keyed by (tag, vm, workload, technique, cpu, scale, predictor)
and compared field by field on everything the simulator determines --
ok, cycles, mispredict_rate, mispredicts, icache_misses, vm_instrs,
code_bytes, error.  Wall-clock, serve time, production mode, attempts
and journal provenance are environment, not simulation, and are ignored,
so a vmbp-cells/6 run is comparable against an older-schema baseline.

Exits non-zero listing every differing cell, any cell present on only
one side, or a cell-count mismatch against --expect-cells.
"""

import json
import sys

SIM_FIELDS = (
    "ok",
    "cycles",
    "mispredict_rate",
    "mispredicts",
    "icache_misses",
    "vm_instrs",
    "code_bytes",
    "error",
)


def key(cell):
    return (
        cell.get("tag", ""),
        cell.get("vm", ""),
        cell.get("workload", ""),
        cell.get("technique", ""),
        cell.get("cpu", ""),
        cell.get("scale", 1),
        cell.get("predictor", ""),
    )


def load(path):
    with open(path) as f:
        doc = json.load(f)
    schema = doc.get("schema", "")
    if not schema.startswith("vmbp-cells/"):
        raise SystemExit(f"cells_diff: {path}: unexpected schema {schema!r}")
    cells = {}
    for cell in doc["results"]:
        k = key(cell)
        # A cell repeated within one run (same key) is disambiguated by
        # its occurrence index; order within a key is deterministic.
        n = 0
        while (k, n) in cells:
            n += 1
        cells[(k, n)] = cell
    return schema, cells


def main():
    args = sys.argv[1:]
    expect = None
    if "--expect-cells" in args:
        i = args.index("--expect-cells")
        expect = int(args[i + 1])
        del args[i : i + 2]
    if len(args) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])
    a_schema, a = load(args[0])
    b_schema, b = load(args[1])

    problems = []
    for k in sorted(set(a) | set(b)):
        if k not in a:
            problems.append(f"only in {args[1]}: {k}")
        elif k not in b:
            problems.append(f"only in {args[0]}: {k}")
        else:
            for field in SIM_FIELDS:
                va, vb = a[k].get(field), b[k].get(field)
                if va != vb:
                    problems.append(f"{k}: {field}: {va!r} != {vb!r}")
    if expect is not None and len(b) != expect:
        problems.append(f"expected {expect} cells, {args[1]} has {len(b)}")

    if problems:
        for p in problems:
            print(f"cells_diff: {p}", file=sys.stderr)
        raise SystemExit(
            f"cells_diff: {len(problems)} difference(s) between "
            f"{args[0]} ({a_schema}) and {args[1]} ({b_schema})"
        )
    print(
        f"cells_diff: {len(a)} cells numerically identical "
        f"({a_schema} vs {b_schema})"
    )


if __name__ == "__main__":
    main()

(* Scratch profiler: where does traced-mode sys time go? *)
let () =
  let phase = Sys.argv.(1) in
  let techniques = Vmbp_core.Technique.paper_gforth_variants in
  let workloads =
    List.filter (fun (w : Vmbp_workloads.t) -> w.Vmbp_workloads.vm = Vmbp_workloads.Forth)
      Vmbp_workloads.all
  in
  let cpu = Vmbp_machine.Cpu_model.pentium4_northwood in
  let tick name t0 =
    let t = Unix.gettimeofday () in
    Printf.printf "%-10s %6.2fs\n%!" name (t -. t0)
  in
  let t0 = Unix.gettimeofday () in
  match phase with
  | "direct" ->
      List.iter
        (fun w ->
          List.iter
            (fun t ->
              ignore (Vmbp_report.Runner.run_result ~scale:2 ~cpu ~technique:t w))
            techniques)
        workloads;
      tick "direct" t0
  | "record" | "record+replay" | "record+retain" ->
      let keep = ref [] in
      List.iter
        (fun w ->
          List.iter
            (fun t ->
              match Vmbp_report.Runner.record ~scale:2 ~technique:t w with
              | Error _ -> print_endline "record failed"
              | Ok tr ->
                  if phase = "record+replay" then
                    ignore (Vmbp_report.Runner.replay ~cpu tr);
                  if phase = "record+retain" then keep := tr :: !keep)
            techniques)
        workloads;
      ignore !keep;
      tick phase t0
  | "sizes" ->
      List.iter
        (fun w ->
          List.iter
            (fun t ->
              match Vmbp_report.Runner.record ~scale:2 ~technique:t w with
              | Error _ -> ()
              | Ok tr ->
                  Printf.printf "%-24s %-28s %6.1f MB\n"
                    w.Vmbp_workloads.name (Vmbp_core.Technique.name t)
                    (float_of_int (Vmbp_report.Runner.trace_bytes tr)
                    /. 1048576.);
                  Vmbp_report.Runner.release_trace tr)
            techniques)
        workloads;
      tick "sizes" t0
  | _ -> failwith "phase?"

#!/usr/bin/env python3
"""Validate a --trace-out, --metrics, --json or loadgen dump per schema.

Usage: validate_obs.py SCHEMA.json DUMP.json

Stdlib only: implements the small JSON-Schema subset the schemas under
dev/schema/ actually use (type -- including a list of alternatives, enum,
required, properties, additionalProperties, items, minimum), plus the
cross-field histogram invariants a declarative schema cannot express.
"""

import json
import sys


def fail(path, msg):
    raise SystemExit(f"validate_obs: {'.'.join(path) or '<root>'}: {msg}")


TYPES = {
    "object": dict,
    "array": list,
    "string": str,
    "boolean": bool,
    "number": (int, float),
    "integer": int,
    "null": type(None),
}


def matches_type(want, value):
    # bool is an int subclass in Python; keep the kinds distinct.
    if isinstance(value, bool) and want in ("number", "integer"):
        return False
    return isinstance(value, TYPES[want])


def check_type(schema, value, path):
    want = schema["type"]
    alternatives = want if isinstance(want, list) else [want]
    if not any(matches_type(w, value) for w in alternatives):
        fail(
            path,
            f"expected {' or '.join(alternatives)}, "
            f"got {type(value).__name__}",
        )


def validate(schema, value, path=()):
    if "enum" in schema:
        if value not in schema["enum"]:
            fail(path, f"{value!r} not in {schema['enum']}")
        return
    if "type" in schema:
        check_type(schema, value, path)
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        if "minimum" in schema and value < schema["minimum"]:
            fail(path, f"{value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        props = schema.get("properties", {})
        for key in schema.get("required", []):
            if key not in value:
                fail(path, f"missing required key {key!r}")
        extra = schema.get("additionalProperties")
        for key, sub in value.items():
            if key in props:
                validate(props[key], sub, path + (key,))
            elif isinstance(extra, dict):
                validate(extra, sub, path + (key,))
            elif extra is False:
                fail(path, f"unexpected key {key!r}")
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            validate(schema["items"], item, path + (str(i),))


def check_histograms(dump):
    for name, h in dump.get("histograms", {}).items():
        if len(h["counts"]) != len(h["le"]) + 1:
            fail(
                ("histograms", name),
                f"counts has {len(h['counts'])} entries for "
                f"{len(h['le'])} bounds (want bounds + overflow)",
            )
        if sum(h["counts"]) != h["count"]:
            fail(
                ("histograms", name),
                f"counts sum to {sum(h['counts'])} but count={h['count']}",
            )
        if any(a >= b for a, b in zip(h["le"], h["le"][1:])):
            fail(("histograms", name), "le bounds not strictly increasing")


def main():
    if len(sys.argv) != 3:
        raise SystemExit(__doc__.strip().splitlines()[2])
    schema_file, dump_file = sys.argv[1], sys.argv[2]
    with open(schema_file) as f:
        schema = json.load(f)
    with open(dump_file) as f:
        dump = json.load(f)
    validate(schema, dump)
    if "metrics" in schema.get("title", ""):
        check_histograms(dump)
    if "histograms" in dump:
        kind, n = "metrics", len(dump.get("counters", {}))
    elif "results" in dump:
        kind, n = "cells", len(dump.get("results", []))
    elif "statuses" in dump:
        kind, n = "loadgen", len(dump.get("statuses", {}))
    else:
        kind, n = "trace", len(dump.get("traceEvents", []))
    print(f"validate_obs: {dump_file}: valid {kind} dump ({n} entries)")


if __name__ == "__main__":
    main()

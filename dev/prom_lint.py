#!/usr/bin/env python3
"""Lint a Prometheus text exposition (what the metrics verb exports).

Usage: prom_lint.py EXPOSITION.txt

Stdlib only.  Checks the subset of the exposition-format contract the
registry promises:

- every sample line parses as NAME{labels} VALUE with legal metric and
  label names, quoted and escaped label values, and a float value;
- at most one # TYPE per family, appearing before the family's samples,
  with a known type;
- no duplicate (name, labels) sample;
- counter families end in _total;
- histogram families expose _bucket/_sum/_count, bucket le bounds are
  strictly increasing with cumulative counts non-decreasing, the +Inf
  bucket is present and equals _count, for every label combination.
"""

import re
import sys

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")
LABEL_RE = re.compile(r"[a-zA-Z_][a-zA-Z0-9_]*\Z")
KNOWN_TYPES = {"counter", "gauge", "histogram", "summary", "untyped"}

problems = []


def problem(lineno, msg):
    problems.append(f"line {lineno}: {msg}")


def parse_labels(lineno, text):
    """The k="v" pairs inside one {...} block, or None on a parse error."""
    labels = []
    i, n = 0, len(text)
    while i < n:
        eq = text.find("=", i)
        if eq < 0:
            problem(lineno, f"label block {text!r}: missing '='")
            return None
        key = text[i:eq].strip()
        if not LABEL_RE.match(key):
            problem(lineno, f"illegal label name {key!r}")
            return None
        if eq + 1 >= n or text[eq + 1] != '"':
            problem(lineno, f"label {key}: value not quoted")
            return None
        value = []
        j = eq + 2
        while j < n and text[j] != '"':
            if text[j] == "\\":
                if j + 1 >= n or text[j + 1] not in ('\\', '"', "n"):
                    problem(lineno, f"label {key}: bad escape")
                    return None
                value.append({"n": "\n"}.get(text[j + 1], text[j + 1]))
                j += 2
            else:
                value.append(text[j])
                j += 1
        if j >= n:
            problem(lineno, f"label {key}: unterminated value")
            return None
        labels.append((key, "".join(value)))
        i = j + 1
        if i < n and text[i] == ",":
            i += 1
        elif i < n:
            problem(lineno, f"label block {text!r}: junk after value")
            return None
    return tuple(labels)


def family_of(name):
    for suffix in ("_bucket", "_sum", "_count", "_total"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def main():
    if len(sys.argv) != 2:
        raise SystemExit(__doc__.strip().splitlines()[2])
    with open(sys.argv[1]) as f:
        lines = f.read().splitlines()

    types = {}          # family -> declared type
    seen_samples = {}   # (name, labels) -> lineno
    family_sampled = set()
    buckets = {}        # (family, labels-without-le) -> [(le, count)]
    counts = {}         # (family, labels) -> value of _count
    sums = set()        # (family, labels) with a _sum sample
    n_samples = 0

    for lineno, raw in enumerate(lines, 1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 2 and parts[1] == "TYPE":
                if len(parts) < 4:
                    problem(lineno, "malformed # TYPE line")
                    continue
                fam, typ = parts[2], parts[3].strip()
                if typ not in KNOWN_TYPES:
                    problem(lineno, f"unknown type {typ!r} for {fam}")
                if fam in types:
                    problem(lineno, f"duplicate # TYPE for {fam}")
                if fam in family_sampled:
                    problem(lineno, f"# TYPE for {fam} after its samples")
                types[fam] = typ
            continue

        m = re.match(r"([^{\s]+)(\{(.*)\})?\s+(\S+)(\s+\S+)?$", line)
        if not m:
            problem(lineno, f"unparseable sample line {line!r}")
            continue
        name, _, labeltext, valuetext, _ = m.groups()
        if not NAME_RE.match(name):
            problem(lineno, f"illegal metric name {name!r}")
            continue
        labels = parse_labels(lineno, labeltext) if labeltext else ()
        if labels is None:
            continue
        try:
            value = float(valuetext)
        except ValueError:
            problem(lineno, f"{name}: unparseable value {valuetext!r}")
            continue

        key = (name, labels)
        if key in seen_samples:
            problem(
                lineno,
                f"duplicate sample {name}{dict(labels)} "
                f"(first at line {seen_samples[key]})",
            )
        seen_samples[key] = lineno
        n_samples += 1

        fam = family_of(name)
        family_sampled.add(fam)
        typ = types.get(fam)
        if typ == "counter" and not name.endswith("_total"):
            problem(lineno, f"counter sample {name} does not end in _total")
        if typ == "histogram":
            if name.endswith("_bucket"):
                le = dict(labels).get("le")
                if le is None:
                    problem(lineno, f"{name}: bucket without le label")
                else:
                    bound = float("inf") if le == "+Inf" else float(le)
                    rest = tuple(kv for kv in labels if kv[0] != "le")
                    buckets.setdefault((fam, rest), []).append(
                        (bound, value, lineno)
                    )
            elif name.endswith("_count"):
                counts[(fam, labels)] = (value, lineno)
            elif name.endswith("_sum"):
                sums.add((fam, labels))

    for (fam, rest), bs in buckets.items():
        where = f"{fam}{dict(rest)}"
        bounds = [b for b, _, _ in bs]
        if bounds != sorted(bounds) or len(set(bounds)) != len(bounds):
            problem(bs[0][2], f"{where}: le bounds not strictly increasing")
        cum = [c for _, c, _ in bs]
        if any(a > b for a, b in zip(cum, cum[1:])):
            problem(bs[0][2], f"{where}: cumulative counts decrease")
        if bounds and bounds[-1] != float("inf"):
            problem(bs[0][2], f"{where}: no +Inf bucket")
        if (fam, rest) not in counts:
            problem(bs[0][2], f"{where}: buckets without a _count sample")
        elif bounds and bounds[-1] == float("inf"):
            cval, cline = counts[(fam, rest)]
            if cval != cum[-1]:
                problem(
                    cline,
                    f"{where}: _count {cval:g} != +Inf bucket {cum[-1]:g}",
                )
        if (fam, rest) not in sums:
            problem(bs[0][2], f"{where}: buckets without a _sum sample")

    if problems:
        for p in problems:
            print(f"prom_lint: {p}", file=sys.stderr)
        raise SystemExit(f"prom_lint: {len(problems)} problem(s)")
    print(
        f"prom_lint: {sys.argv[1]}: clean "
        f"({n_samples} samples, {len(types)} typed families)"
    )


if __name__ == "__main__":
    main()

#!/usr/bin/env python3
"""Check end-to-end request coverage in a server --trace-out dump.

Usage: trace_check.py TRACE.json [--min-complete FRAC]

Stdlib only.  Every span the service records carries its request id in
args.trace; a request acknowledged to a client shows up as a flush span
with status ok.  For each acked request id this checks the full path:

  accept (on the parse span's connection) <= parse <= admit <= flush end

all on one rid, well ordered, with no negative durations anywhere.  The
run passes when at least --min-complete (default 0.99) of acked rids
have a complete path.  When the trace contains compute-batch spans it
additionally demands at least one of them ran on a different thread
than the event loop's parse spans -- the cross-thread hop the per-rid
trees hang off.
"""

import json
import sys


def main():
    args = sys.argv[1:]
    min_complete = 0.99
    if "--min-complete" in args:
        i = args.index("--min-complete")
        min_complete = float(args[i + 1])
        del args[i : i + 2]
    if len(args) != 1:
        raise SystemExit(__doc__.strip().splitlines()[2])

    with open(args[0]) as f:
        events = json.load(f)["traceEvents"]

    for e in events:
        if e.get("dur", 0) < 0:
            raise SystemExit(
                f"trace_check: negative duration on {e.get('name')!r}"
            )

    accepts = {}  # conn id -> earliest accept ts
    by_rid = {}   # rid -> {name -> [event]}
    for e in events:
        a = e.get("args", {})
        if e.get("name") == "accept" and "conn" in a:
            c = a["conn"]
            accepts[c] = min(accepts.get(c, e["ts"]), e["ts"])
        rid = a.get("trace", "")
        if rid:
            by_rid.setdefault(rid, {}).setdefault(e["name"], []).append(e)

    acked = [
        rid
        for rid, spans in by_rid.items()
        if any(
            e.get("args", {}).get("status") == "ok"
            for e in spans.get("flush", [])
        )
    ]
    if not acked:
        raise SystemExit("trace_check: no acked request in the trace")

    incomplete = []
    for rid in acked:
        spans = by_rid[rid]
        parses = spans.get("parse", [])
        admits = spans.get("admit", [])
        flushes = spans.get("flush", [])
        ok = bool(parses) and bool(admits) and bool(flushes)
        if ok:
            p0 = min(e["ts"] for e in parses)
            a0 = min(e["ts"] for e in admits)
            f1 = max(e["ts"] + e.get("dur", 0) for e in flushes)
            ok = p0 <= a0 <= f1
            conn = parses[0].get("args", {}).get("conn")
            ok = ok and conn in accepts and accepts[conn] <= p0
        if not ok:
            incomplete.append(rid)

    frac = 1 - len(incomplete) / len(acked)
    if frac < min_complete:
        for rid in incomplete[:20]:
            print(f"trace_check: incomplete path for rid {rid}",
                  file=sys.stderr)
        raise SystemExit(
            f"trace_check: only {frac:.1%} of {len(acked)} acked rids "
            f"have a complete accept->reply path (need {min_complete:.1%})"
        )

    batches = [e for e in events if e.get("name") == "compute-batch"]
    if batches:
        parse_tids = {
            e["tid"] for e in events if e.get("name") == "parse"
        }
        if not any(e["tid"] not in parse_tids for e in batches):
            raise SystemExit(
                "trace_check: no compute-batch span crosses off the "
                "event-loop thread"
            )

    print(
        f"trace_check: {args[0]}: {frac:.1%} of {len(acked)} acked rids "
        f"complete, {len(batches)} compute batches"
    )


if __name__ == "__main__":
    main()

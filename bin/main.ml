(* vmbp: command-line driver for the reproduction.

   Subcommands:
     list                      workloads, techniques, CPUs, experiments
     run <vm> <workload>       one benchmark under one technique
     trace <vm> <workload>     BTB dispatch trace (Tables I-IV style)
     experiment <id>           regenerate one paper table/figure
     report                    regenerate everything (EXPERIMENTS.md body)
     serve                     report service over a Unix-domain socket
     loadgen                   zipf load generator against a running service
     client                    one-shot service client (query/grid/stats/...) *)

open Cmdliner
open Vmbp_core

let print_table s = print_string s

(* ---------------- list ---------------- *)

let list_cmd =
  let doc = "List workloads, techniques, CPU profiles and experiments." in
  let run () =
    print_endline "Workloads:";
    List.iter
      (fun (w : Vmbp_workloads.t) ->
        Printf.printf "  %-6s %-10s %s\n"
          (Vmbp_workloads.vm_name w.Vmbp_workloads.vm)
          w.Vmbp_workloads.name w.Vmbp_workloads.description)
      Vmbp_workloads.all;
    print_endline "\nTechniques:";
    List.iter
      (fun t -> Printf.printf "  %s\n" (Technique.name t))
      (Technique.switch :: Technique.paper_gforth_variants
      @ [ Technique.with_static_across_bb (); Technique.subroutine ]);
    print_endline "\nCPU profiles:";
    List.iter
      (fun (c : Vmbp_machine.Cpu_model.t) ->
        Printf.printf "  %-20s %d MHz, mispredict %d cycles\n"
          c.Vmbp_machine.Cpu_model.name c.Vmbp_machine.Cpu_model.mhz
          c.Vmbp_machine.Cpu_model.mispredict_penalty)
      Vmbp_machine.Cpu_model.all;
    print_endline "\nExperiments:";
    List.iter
      (fun (e : Vmbp_report.Experiments.t) ->
        Printf.printf "  %-16s %s\n" e.Vmbp_report.Experiments.id
          e.Vmbp_report.Experiments.title)
      Vmbp_report.Experiments.all
  in
  Cmd.v (Cmd.info "list" ~doc) Term.(const run $ const ())

(* ---------------- run ---------------- *)

let vm_arg =
  let parse s =
    match String.lowercase_ascii s with
    | "forth" -> Ok Vmbp_workloads.Forth
    | "jvm" -> Ok Vmbp_workloads.Jvm
    | _ -> Error (`Msg "vm must be 'forth' or 'jvm'")
  in
  Arg.conv (parse, fun ppf vm -> Fmt.string ppf (Vmbp_workloads.vm_name vm))

let technique_arg =
  let parse s =
    match Technique.of_name s with
    | Some t -> Ok t
    | None -> Error (`Msg ("unknown technique: " ^ s))
  in
  Arg.conv (parse, fun ppf t -> Fmt.string ppf (Technique.name t))

let cpu_arg =
  let parse s =
    match Vmbp_machine.Cpu_model.find s with
    | Some c -> Ok c
    | None -> Error (`Msg ("unknown cpu: " ^ s))
  in
  Arg.conv
    (parse, fun ppf c -> Fmt.string ppf c.Vmbp_machine.Cpu_model.name)

let run_cmd =
  let doc = "Run one workload under one interpreter technique." in
  let vm =
    Arg.(required & pos 0 (some vm_arg) None & info [] ~docv:"VM")
  in
  let workload =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let technique =
    Arg.(
      value
      & opt technique_arg Technique.plain
      & info [ "t"; "technique" ] ~docv:"TECHNIQUE")
  in
  let cpu =
    Arg.(
      value
      & opt cpu_arg Vmbp_machine.Cpu_model.pentium4_northwood
      & info [ "cpu" ] ~docv:"CPU")
  in
  let scale =
    Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N")
  in
  let show_output =
    Arg.(value & flag & info [ "output" ] ~doc:"print the program's output")
  in
  let run vm workload technique cpu scale show_output =
    match Vmbp_workloads.find ~vm workload with
    | None ->
        Printf.eprintf "unknown workload %s/%s\n"
          (Vmbp_workloads.vm_name vm) workload;
        exit 1
    | Some w ->
        let r = Vmbp_report.Runner.run ~scale ~cpu ~technique w in
        let result = r.Vmbp_report.Runner.result in
        let m = result.Engine.metrics in
        Printf.printf "%s/%s under '%s' on %s (scale %d)\n"
          (Vmbp_workloads.vm_name vm) workload (Technique.name technique)
          cpu.Vmbp_machine.Cpu_model.name scale;
        Printf.printf "  cycles      %.0f (%.1f ms modelled)\n" result.Engine.cycles
          (result.Engine.seconds *. 1e3);
        Printf.printf "  VM instrs   %d\n" m.Vmbp_machine.Metrics.vm_instrs;
        Printf.printf "  native      %d\n" m.Vmbp_machine.Metrics.native_instrs;
        Printf.printf "  dispatches  %d\n" m.Vmbp_machine.Metrics.dispatches;
        Printf.printf "  mispredicts %d (%.1f%% of indirect)\n"
          m.Vmbp_machine.Metrics.mispredicts
          (100. *. Vmbp_machine.Metrics.misprediction_rate m);
        Printf.printf "  icache miss %d\n" m.Vmbp_machine.Metrics.icache_misses;
        Printf.printf "  code bytes  %d\n" m.Vmbp_machine.Metrics.code_bytes;
        Printf.printf "  quickenings %d\n" m.Vmbp_machine.Metrics.quickenings;
        if show_output then
          Printf.printf "  output: %s\n" r.Vmbp_report.Runner.output
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(const run $ vm $ workload $ technique $ cpu $ scale $ show_output)

(* ---------------- trace ---------------- *)

let trace_cmd =
  let doc =
    "Trace the first dispatches of a workload through an idealised BTB."
  in
  let vm = Arg.(required & pos 0 (some vm_arg) None & info [] ~docv:"VM") in
  let workload =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let technique =
    Arg.(
      value
      & opt technique_arg Technique.plain
      & info [ "t"; "technique" ] ~docv:"TECHNIQUE")
  in
  let skip = Arg.(value & opt int 0 & info [ "skip" ] ~docv:"N") in
  let take = Arg.(value & opt int 24 & info [ "take" ] ~docv:"N") in
  let run vm workload technique skip take =
    match Vmbp_workloads.find ~vm workload with
    | None ->
        Printf.eprintf "unknown workload %s/%s\n"
          (Vmbp_workloads.vm_name vm) workload;
        exit 1
    | Some w ->
        let loaded = w.Vmbp_workloads.load ~scale:1 in
        let session = loaded.Vmbp_workloads.fresh_session () in
        let profile =
          if Technique.uses_static_selection technique then
            Some
              (Vmbp_workloads.training_profile ~vm ~target:workload ~scale:1 ())
          else None
        in
        let rows =
          Vmbp_report.Dispatch_trace.trace ~technique ?profile
            ~program:loaded.Vmbp_workloads.program
            ~exec:session.Vmbp_workloads.exec ~skip ~take ()
        in
        print_string (Vmbp_report.Dispatch_trace.render rows)
  in
  Cmd.v (Cmd.info "trace" ~doc)
    Term.(const run $ vm $ workload $ technique $ skip $ take)

(* ---------------- experiment ---------------- *)

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:"Run experiment cells on $(docv) domains (default sequential).")

let json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "json" ] ~docv:"FILE"
        ~doc:
          "Write a machine-readable per-cell summary (simulated counters \
           plus wall-clock timings) to $(docv).")

let trace_cap_arg =
  Arg.(
    value
    & opt int !Vmbp_report.Par_runner.trace_cap_mb
    & info [ "trace-cap-mb" ] ~docv:"MB"
        ~doc:
          "Memory budget for recorded dispatch traces (record-once / \
           replay-many across CPUs).  0 or negative disables record/replay \
           and simulates every cell directly.")

let journal_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "journal" ] ~docv:"FILE"
        ~doc:
          "Append every completed cell's outcome to $(docv) as fsync'd \
           JSONL, so an interrupted run loses nothing already finished; \
           combine with $(b,--resume) to serve completed cells from the \
           file instead of re-running them.")

let resume_arg =
  Arg.(
    value
    & flag
    & info [ "resume" ]
        ~doc:
          "Load the $(b,--journal) file first and serve matching cells \
           from it (key + configuration fingerprint must both match); the \
           resumed report is byte-identical to an uninterrupted run.")

let cell_timeout_arg =
  Arg.(
    value
    & opt float 0.
    & info [ "cell-timeout" ] ~docv:"SEC"
        ~doc:
          "Watchdog deadline per cell attempt, enforced cooperatively in \
           the simulation loop; a cell that exceeds it becomes a reported \
           timeout error instead of hanging the run.  0 disables (default).")

let cell_retries_arg =
  Arg.(
    value
    & opt int 1
    & info [ "cell-retries" ] ~docv:"N"
        ~doc:
          "Extra attempts for a cell that failed transiently (unexpected \
           exception; deterministic traps and timeouts are not retried), \
           with jittered exponential backoff between attempts.")

(* Validate the chaos spec at parse time so a typo yields cmdliner's
   one-line usage error naming the flag, never a stack trace. *)
let chaos_conv =
  let parse s =
    match Vmbp_report.Faults.configure s with
    | Ok () -> Ok s
    | Error msg -> Error (`Msg msg)
  in
  Arg.conv ~docv:"SPEC" (parse, Fmt.string)

let chaos_arg =
  Arg.(
    value
    & opt (some chaos_conv) None
    & info [ "chaos" ] ~docv:"SPEC"
        ~doc:
          "Deterministic fault injection, e.g. \
           'cell-raise=2,seed=7' or 'worker-death=2+1' (skip 2 \
           opportunities, then fire once) or 'slow-cell=1@0.2'.  Points: \
           cell-raise, record-fail, slow-cell, journal-io, worker-death, \
           conn-drop, store-io, slow-client, pool-wedge.  For exercising \
           the supervision and service paths; see EXPERIMENTS.md.")

let self_check_arg =
  Arg.(
    value
    & flag
    & info [ "self-check" ]
        ~doc:
          "Run every cell in lockstep against the naive reference models \
           and fail on the first divergence, writing a minimized repro \
           artifact (replay it with $(b,vmbp audit-repro)).  Bypasses the \
           trace fast path; expect a slower run.")

(* A malformed probability must produce a one-line usage error naming the
   flag, not a float_of_string failure. *)
let sample_conv =
  let parse s =
    match float_of_string_opt s with
    | Some p when p >= 0. && p <= 1. -> Ok p
    | Some _ | None ->
        Error (`Msg "expected a probability between 0 and 1")
  in
  Arg.conv ~docv:"P" (parse, fun ppf p -> Fmt.pf ppf "%g" p)

let audit_sample_arg =
  Arg.(
    value
    & opt sample_conv !Vmbp_report.Par_runner.audit_sample
    & info [ "audit-sample" ] ~docv:"P"
        ~doc:
          "Cross-check this fraction of trace-replay and memo-served \
           cells against a fresh direct simulation (deterministic, \
           seeded per-cell sampling).  0 disables; default 0.02.")

let repro_dir_arg =
  Arg.(
    value
    & opt string "."
    & info [ "repro-dir" ] ~docv:"DIR"
        ~doc:"Directory receiving divergence repro artifacts.")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Collect phase-timing spans (layout, engine runs, record/replay, \
           journal I/O, audits) and write them to $(docv) as Chrome \
           trace-event JSON, loadable in Perfetto or chrome://tracing.")

let metrics_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write the process metrics registry (trace-cache and journal \
           counters, pool gauges, per-cell histograms) to $(docv) as JSON \
           (schema vmbp-metrics/1) and summarise the key counters on \
           stderr.")

let store_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "store" ] ~docv:"DIR"
        ~doc:
          "Serve completed cells from (and append fresh successes to) the \
           sharded, checksummed content-addressed store in $(docv) -- the \
           same store $(b,vmbp serve) answers from, so a report run warms \
           the service and vice versa.  Corrupt records are skipped and \
           counted on load.")

let store_shards_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "store-shards" ] ~docv:"N"
        ~doc:
          "Shard count when creating a new store (default 8; an existing \
           store keeps its own layout).")

let set_store store shards =
  match store with
  | None -> ()
  | Some dir -> Vmbp_report.Par_runner.set_store ?shards dir

let progress_arg =
  Arg.(
    value
    & vflag None
        [
          ( Some true,
            info [ "progress" ]
              ~doc:
                "Show a one-line progress heartbeat on stderr (cells \
                 done/total, busy workers, ETA).  Default when stderr is a \
                 terminal." );
          ( Some false,
            info [ "no-progress" ] ~doc:"Never show the progress heartbeat."
          );
        ])

(* Observability setup: reset the metrics registry per invocation so
   counters describe this run only, and arm span collection only when the
   caller asked for a trace file (disabled spans cost one atomic load). *)
let setup_obs trace_out metrics progress =
  ignore metrics;
  (Vmbp_report.Par_runner.progress :=
     match progress with
     | Some b -> b
     | None -> Unix.isatty Unix.stderr);
  Vmbp_obs.Registry.reset ();
  if trace_out <> None then Vmbp_obs.Span.enable ()

(* All observability output goes to stderr (or to the requested files):
   report tables on stdout must stay byte-identical with and without
   instrumentation. *)
let finish_obs trace_out metrics =
  (match trace_out with
  | None -> ()
  | Some file ->
      Vmbp_obs.Span.write ~file;
      Printf.eprintf "wrote %d spans to %s\n" (Vmbp_obs.Span.count ()) file);
  match metrics with
  | None -> ()
  | Some file ->
      Vmbp_obs.Registry.write ~file;
      let c name =
        match Vmbp_obs.Registry.find_counter name with
        | Some v -> Int64.to_string v
        | None -> "0"
      in
      Printf.eprintf
        "[obs] trace cache %s live / %s memo / %s miss (%s evictions); \
         journal %s served / %s appended; cells %s retries / %s timeouts\n"
        (c "trace_cache.live_hits")
        (c "trace_cache.memo_hits")
        (c "trace_cache.misses")
        (c "trace_cache.evictions")
        (c "journal.served") (c "journal.appended") (c "cells.retries")
        (c "cells.timeouts");
      Printf.eprintf "wrote metrics to %s\n" file

let set_jobs jobs = Vmbp_report.Par_runner.default_jobs := max 1 jobs
let set_trace_cap mb = Vmbp_report.Par_runner.trace_cap_mb := mb

(* First Ctrl-C: drain in-flight cells, flush the journal (already fsync'd
   per append), emit the report marked partial.  Second Ctrl-C: force. *)
let install_sigint () =
  let seen = ref false in
  Sys.set_signal Sys.sigint
    (Sys.Signal_handle
       (fun _ ->
         if !seen then exit 130
         else begin
           seen := true;
           Vmbp_report.Par_runner.request_shutdown ();
           prerr_endline
             "\nvmbp: interrupted -- finishing in-flight cells (Ctrl-C \
              again to force quit)"
         end))

let setup_supervision journal resume cell_timeout cell_retries chaos
    self_check audit_sample repro_dir =
  Vmbp_report.Par_runner.cell_timeout := cell_timeout;
  Vmbp_report.Par_runner.cell_retries := max 0 cell_retries;
  Vmbp_report.Par_runner.self_check := self_check;
  Vmbp_report.Par_runner.audit_sample := audit_sample;
  Vmbp_report.Audit.repro_dir := repro_dir;
  Vmbp_report.Audit.reset_stats ();
  (* The spec was validated (and armed) by the argument converter; re-arm
     defensively so the converter stays side-effect-agnostic. *)
  (match chaos with
  | None -> ()
  | Some spec -> (
      match Vmbp_report.Faults.configure spec with
      | Ok () -> ()
      | Error msg ->
          Printf.eprintf "vmbp: bad --chaos spec: %s\n" msg;
          exit 2));
  (match (journal, resume) with
  | Some file, resume -> Vmbp_report.Par_runner.set_journal ~file ~resume
  | None, true ->
      Printf.eprintf "vmbp: --resume requires --journal FILE\n";
      exit 2
  | None, false -> ());
  install_sigint ()

let partial_marker () =
  if Vmbp_report.Par_runner.shutting_down () then begin
    print_newline ();
    print_endline
      "== PARTIAL REPORT: the run was interrupted; unfinished cells are \
       reported as errors.  Re-run with --journal FILE --resume to \
       complete it. =="
  end

(* A worker death with no pool above it (sequential runs) stands in for a
   killed process: completed cells are safe in the journal, so report a
   resumable failure instead of an uncaught exception. *)
let run_killable f =
  try f ()
  with Vmbp_report.Faults.Worker_killed ->
    flush stdout;
    prerr_endline
      "vmbp: worker killed; completed cells are in the journal -- re-run \
       with --journal FILE --resume to continue";
    exit 70

let write_json = function
  | None -> ()
  | Some file ->
      let cells = Vmbp_report.Par_runner.drain_log () in
      Vmbp_report.Par_runner.write_json_summary ~file cells;
      Printf.eprintf "wrote %d cell timings to %s\n" (List.length cells) file

(* Divergences are simulator bugs: summarize each one on stderr (with its
   repro artifact path, if one was written) and fail the run. *)
let finish_audit () =
  match Vmbp_report.Audit.divergences () with
  | [] -> ()
  | ds ->
      flush stdout;
      List.iter
        (fun d -> Printf.eprintf "%s\n" (Vmbp_report.Audit.describe d))
        ds;
      Printf.eprintf
        "vmbp: self-check found %d divergence(s); replay artifacts with \
         'vmbp audit-repro FILE'\n"
        (List.length ds);
      exit 3

let experiment_cmd =
  let doc = "Regenerate one of the paper's tables or figures." in
  let id = Arg.(required & pos 0 (some string) None & info [] ~docv:"ID") in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N")
  in
  let run id scale jobs trace_cap json journal resume store store_shards
      cell_timeout cell_retries chaos self_check audit_sample repro_dir
      trace_out metrics progress =
    set_jobs jobs;
    set_trace_cap trace_cap;
    setup_supervision journal resume cell_timeout cell_retries chaos
      self_check audit_sample repro_dir;
    set_store store store_shards;
    setup_obs trace_out metrics progress;
    match Vmbp_report.Experiments.find id with
    | None ->
        Printf.eprintf "unknown experiment %s (try 'vmbp list')\n" id;
        exit 1
    | Some e ->
        let scale =
          Option.value scale ~default:e.Vmbp_report.Experiments.default_scale
        in
        Printf.printf "== %s ==\n%s\n\n" e.Vmbp_report.Experiments.title
          e.Vmbp_report.Experiments.paper_claim;
        run_killable (fun () ->
            print_table (e.Vmbp_report.Experiments.run ~scale));
        partial_marker ();
        write_json json;
        finish_obs trace_out metrics;
        Vmbp_report.Par_runner.clear_store ();
        finish_audit ()
  in
  Cmd.v (Cmd.info "experiment" ~doc)
    Term.(
      const run $ id $ scale $ jobs_arg $ trace_cap_arg $ json_arg
      $ journal_arg $ resume_arg $ store_arg $ store_shards_arg
      $ cell_timeout_arg $ cell_retries_arg $ chaos_arg $ self_check_arg
      $ audit_sample_arg $ repro_dir_arg $ trace_out_arg $ metrics_arg
      $ progress_arg)

(* ---------------- audit-repro ---------------- *)

let audit_repro_cmd =
  let doc =
    "Replay a divergence repro artifact written by --self-check."
  in
  let file =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"FILE")
  in
  let run file =
    match Vmbp_report.Audit.load_repro file with
    | Error msg ->
        Printf.eprintf "vmbp: cannot load %s: %s\n" file msg;
        exit 2
    | Ok repro ->
        let open Vmbp_report.Audit in
        Printf.printf "cell      %s\n" repro.r_cell;
        Printf.printf "events    %d\n" (Array.length repro.r_events);
        Printf.printf "recorded  divergence at event %d: %s\n" repro.r_index
          repro.r_detail;
        (match replay_repro repro with
        | Some (idx, detail, fast, reference) ->
            Printf.printf "replayed  divergence at event %d: %s\n" idx detail;
            Printf.printf "  fast      %s\n" (pp_counters fast);
            Printf.printf "  reference %s\n" (pp_counters reference);
            exit 1
        | None ->
            Printf.printf
              "replayed  fast and reference simulators now agree on this \
               stream (bug no longer reproduces)\n";
            exit 0)
  in
  Cmd.v (Cmd.info "audit-repro" ~doc) Term.(const run $ file)

(* ---------------- report ---------------- *)

let report_cmd =
  let doc = "Run every experiment and print the full reproduction report." in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N")
  in
  let run scale jobs trace_cap json journal resume store store_shards
      cell_timeout cell_retries chaos self_check audit_sample repro_dir
      trace_out metrics progress =
    set_jobs jobs;
    set_trace_cap trace_cap;
    setup_supervision journal resume cell_timeout cell_retries chaos
      self_check audit_sample repro_dir;
    set_store store store_shards;
    setup_obs trace_out metrics progress;
    run_killable (fun () ->
        List.iter
          (fun (e : Vmbp_report.Experiments.t) ->
            let s =
              Option.value scale
                ~default:e.Vmbp_report.Experiments.default_scale
            in
            Printf.printf "== %s ==\n" e.Vmbp_report.Experiments.title;
            Printf.printf "Paper: %s\n\n" e.Vmbp_report.Experiments.paper_claim;
            print_table (e.Vmbp_report.Experiments.run ~scale:s);
            print_newline ())
          Vmbp_report.Experiments.all);
    partial_marker ();
    write_json json;
    finish_obs trace_out metrics;
    Vmbp_report.Par_runner.clear_store ();
    finish_audit ()
  in
  Cmd.v (Cmd.info "report" ~doc)
    Term.(
      const run $ scale $ jobs_arg $ trace_cap_arg $ json_arg $ journal_arg
      $ resume_arg $ store_arg $ store_shards_arg $ cell_timeout_arg
      $ cell_retries_arg $ chaos_arg $ self_check_arg $ audit_sample_arg
      $ repro_dir_arg $ trace_out_arg $ metrics_arg $ progress_arg)

(* ---------------- serve / loadgen / client ---------------- *)

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket of the report service.")

let serve_cmd =
  let doc =
    "Serve report cells from a crash-tolerant content-addressed store over \
     a Unix-domain socket."
  in
  let store =
    Arg.(
      required
      & opt (some string) None
      & info [ "store" ] ~docv:"DIR"
          ~doc:
            "Store directory (created if missing; corrupt records found on \
             load are repaired by a compaction pass).")
  in
  let admission =
    Arg.(
      value & opt int 64
      & info [ "admission" ] ~docv:"N"
          ~doc:
            "Max distinct cell configurations in compute flight; further \
             misses are shed with an 'overloaded' reply.")
  in
  let request_timeout =
    Arg.(
      value & opt float 30.
      & info [ "request-timeout" ] ~docv:"SEC"
          ~doc:"Per-request deadline; an unanswered waiter gets 'timeout'.")
  in
  let slow_reader =
    Arg.(
      value & opt float 5.
      & info [ "slow-reader-timeout" ] ~docv:"SEC"
          ~doc:
            "Drop a connection whose outbound bytes make no progress for \
             $(docv) seconds.")
  in
  let degraded_after =
    Arg.(
      value & opt float 2.
      & info [ "degraded-after" ] ~docv:"SEC"
          ~doc:
            "Go store-only (serve hits, refuse misses with 'degraded') \
             when a cell batch has been busy this long.")
  in
  let max_frame =
    Arg.(
      value
      & opt int (64 * 1024)
      & info [ "max-frame" ] ~docv:"BYTES"
          ~doc:"Reject request frames larger than $(docv).")
  in
  let verbose =
    Arg.(value & flag & info [ "verbose" ] ~doc:"Log per-event detail.")
  in
  let flight_dir =
    Arg.(
      value & opt string "."
      & info [ "flight-dir" ] ~docv:"DIR"
          ~doc:
            "Directory receiving vmbp-flight-*.json crash-flight-recorder \
             dumps (degradation entry, unclean exit, SIGQUIT, the 'dump' \
             verb).")
  in
  let serve_trace_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Collect end-to-end request-tracing spans (accept, parse, \
             admission, compute batches, store appends, reply flushes, \
             linked by request id) and write them to $(docv) as Chrome \
             trace-event JSON at drain.")
  in
  let serve_metrics =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:
            "Write the live telemetry registry (per-verb and per-phase \
             latency histograms, queue/inflight/connection gauges, shed/\
             coalesce counters) to $(docv) as vmbp-metrics/1 JSON at \
             drain.  The same registry is queryable live via the \
             'metrics' verb and $(b,vmbp top).")
  in
  let run socket store store_shards jobs admission request_timeout
      slow_reader degraded_after max_frame chaos verbose flight_dir
      trace_out metrics =
    (match chaos with
    | None -> ()
    | Some spec -> (
        match Vmbp_report.Faults.configure spec with
        | Ok () -> ()
        | Error msg ->
            Printf.eprintf "vmbp: bad --chaos spec: %s\n" msg;
            exit 2));
    Vmbp_obs.Registry.reset ();
    Vmbp_service.Service.serve
      {
        Vmbp_service.Service.socket;
        store_dir = store;
        shards = store_shards;
        jobs = max 1 jobs;
        admission = max 1 admission;
        request_timeout;
        slow_reader_timeout = slow_reader;
        degraded_after;
        max_request_frame = max_frame;
        verbose;
        quiet = false;
        trace_out;
        metrics_out = metrics;
        flight_dir;
      }
  in
  Cmd.v (Cmd.info "serve" ~doc)
    Term.(
      const run $ socket_arg $ store $ store_shards_arg $ jobs_arg
      $ admission $ request_timeout $ slow_reader $ degraded_after
      $ max_frame $ chaos_arg $ verbose $ flight_dir $ serve_trace_out
      $ serve_metrics)

let loadgen_cmd =
  let doc =
    "Drive zipf-distributed queries at a running report service and print \
     a throughput/latency report."
  in
  let clients =
    Arg.(value & opt int 4 & info [ "clients" ] ~docv:"N")
  in
  let requests =
    Arg.(
      value & opt int 1000
      & info [ "n"; "requests" ] ~docv:"N"
          ~doc:"Total queries across all clients.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N") in
  let zipf =
    Arg.(
      value & opt float 1.1
      & info [ "zipf" ] ~docv:"S" ~doc:"Skew exponent; 0 = uniform.")
  in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N") in
  let json =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE"
          ~doc:
            "Write a machine-readable run summary (schema vmbp-loadgen/1: \
             statuses, throughput, latency quantiles) to $(docv).")
  in
  let run socket clients requests seed zipf scale json trace_out metrics =
    Vmbp_obs.Registry.reset ();
    if trace_out <> None then Vmbp_obs.Span.enable ();
    Vmbp_service.Loadgen.run
      {
        Vmbp_service.Loadgen.socket;
        clients = max 1 clients;
        requests = max 0 requests;
        seed;
        zipf;
        scale = max 1 scale;
        json_out = json;
      };
    (match trace_out with
    | None -> ()
    | Some file ->
        Vmbp_obs.Span.write ~file;
        Printf.eprintf "wrote %d spans to %s\n" (Vmbp_obs.Span.count ()) file);
    (match metrics with
    | None -> ()
    | Some file ->
        Vmbp_obs.Registry.write ~file;
        Printf.eprintf "wrote metrics to %s\n" file);
    if trace_out <> None || metrics <> None then begin
      let c name =
        match Vmbp_obs.Registry.find_counter name with
        | Some v -> Int64.to_string v
        | None -> "0"
      in
      Printf.eprintf
        "[obs] statuses ok=%s overloaded=%s degraded=%s timeout=%s \
         conn-drop=%s rid-mismatch=%s; spans=%d\n"
        (c "loadgen.status.ok")
        (c "loadgen.status.overloaded")
        (c "loadgen.status.degraded")
        (c "loadgen.status.timeout")
        (c "loadgen.status.conn-drop")
        (c "loadgen.status.rid-mismatch")
        (Vmbp_obs.Span.count ())
    end
  in
  Cmd.v (Cmd.info "loadgen" ~doc)
    Term.(
      const run $ socket_arg $ clients $ requests $ seed $ zipf $ scale
      $ json $ trace_out_arg $ metrics_arg)

let client_cmd =
  let doc =
    "Send one request to a running report service and print the reply."
  in
  let verb =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"VERB"
          ~doc:"One of query, grid, stats, health, metrics, dump, shutdown.")
  in
  let vm = Arg.(value & opt (some string) None & info [ "vm" ] ~docv:"VM") in
  let workload =
    Arg.(value & opt (some string) None & info [ "workload" ] ~docv:"NAME")
  in
  let technique =
    Arg.(value & opt (some string) None & info [ "technique" ] ~docv:"NAME")
  in
  let cpu =
    Arg.(value & opt (some string) None & info [ "cpu" ] ~docv:"NAME")
  in
  let scale =
    Arg.(value & opt (some int) None & info [ "scale" ] ~docv:"N")
  in
  let predictor =
    Arg.(
      value
      & opt (some string) None
      & info [ "predictor" ] ~docv:"P" ~doc:"perfect or never")
  in
  let out =
    Arg.(
      value
      & opt (some string) None
      & info [ "out" ] ~docv:"FILE"
          ~doc:
            "Write the reply's embedded document (a grid reply's \
             vmbp-cells document, a metrics reply's body) to $(docv) \
             instead of printing the raw reply.")
  in
  let format =
    Arg.(
      value
      & opt (some string) None
      & info [ "format" ] ~docv:"FMT"
          ~doc:"For the metrics verb: json (default) or prometheus.")
  in
  let run socket verb vm workload technique cpu scale predictor out format =
    let payload =
      match verb with
      | "query" -> (
          match (vm, workload, technique, cpu) with
          | Some vm, Some workload, Some technique, Some cpu ->
              Vmbp_service.Protocol.query_payload ~vm ~workload ~technique
                ~cpu ?scale ?predictor ()
          | _ ->
              Printf.eprintf
                "vmbp: client query needs --vm --workload --technique --cpu\n";
              exit 2)
      | "grid" ->
          Vmbp_service.Protocol.obj
            (("verb", Vmbp_service.Protocol.S "grid")
            ::
            (match scale with
            | Some n -> [ ("scale", Vmbp_service.Protocol.I n) ]
            | None -> []))
      | "metrics" ->
          Vmbp_service.Protocol.obj
            (("verb", Vmbp_service.Protocol.S "metrics")
            ::
            (match format with
            | Some f -> [ ("format", Vmbp_service.Protocol.S f) ]
            | None -> []))
      | ("stats" | "health" | "dump" | "shutdown") as v ->
          Vmbp_service.Protocol.obj [ ("verb", Vmbp_service.Protocol.S v) ]
      | v ->
          Printf.eprintf "vmbp: unknown verb %S\n" v;
          exit 2
    in
    let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
    (try Unix.connect fd (Unix.ADDR_UNIX socket)
     with Unix.Unix_error (e, _, _) ->
       Printf.eprintf "vmbp: cannot connect to %s: %s\n" socket
         (Unix.error_message e);
       exit 1);
    Vmbp_service.Protocol.write_frame fd payload;
    (match Vmbp_service.Protocol.read_frame fd with
    | None ->
        Printf.eprintf "vmbp: server closed the connection without a reply\n";
        exit 1
    | Some reply ->
        let fields =
          try Vmbp_store.Sjson.parse_line reply
          with Vmbp_store.Sjson.Bad -> []
        in
        let doc =
          match Vmbp_store.Sjson.str_opt fields "cells" with
          | Some _ as d -> d
          | None -> Vmbp_store.Sjson.str_opt fields "body"
        in
        (match (out, doc) with
        | Some file, Some doc ->
            let oc = open_out file in
            output_string oc doc;
            close_out oc;
            Printf.eprintf "wrote reply document to %s\n" file
        | Some _, None ->
            print_endline reply;
            Printf.eprintf "vmbp: reply carries no embedded document\n";
            exit 1
        | None, _ -> print_endline reply);
        if Vmbp_store.Sjson.str_opt fields "status" <> Some "ok" then exit 1);
    Unix.close fd
  in
  Cmd.v (Cmd.info "client" ~doc)
    Term.(
      const run $ socket_arg $ verb $ vm $ workload $ technique $ cpu $ scale
      $ predictor $ out $ format)

let top_cmd =
  let doc =
    "Live terminal monitor for a running report service: request rate, \
     store-hit ratio, queue/inflight gauges and per-verb latency quantiles, \
     polled from the service's 'metrics' verb."
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SEC" ~doc:"Seconds between polls.")
  in
  let count =
    Arg.(
      value
      & opt (some int) None
      & info [ "count" ] ~docv:"N"
          ~doc:"Draw $(docv) screens, then exit 0 (default: run forever).")
  in
  let run socket interval count =
    exit
      (Vmbp_service.Top.run ~socket
         ~interval:(Float.max 0.1 interval)
         ?iterations:count ())
  in
  Cmd.v (Cmd.info "top" ~doc) Term.(const run $ socket_arg $ interval $ count)

(* ---------------- explain ---------------- *)

let explain_cmd =
  let doc =
    "Attribute every mispredict and I-cache miss of one cell to VM opcodes."
  in
  let vm = Arg.(required & pos 0 (some vm_arg) None & info [] ~docv:"VM") in
  let workload =
    Arg.(required & pos 1 (some string) None & info [] ~docv:"WORKLOAD")
  in
  let technique =
    Arg.(
      value
      & opt technique_arg Technique.plain
      & info [ "t"; "technique" ] ~docv:"TECHNIQUE")
  in
  let cpu =
    Arg.(
      value
      & opt cpu_arg Vmbp_machine.Cpu_model.pentium4_northwood
      & info [ "cpu" ] ~docv:"CPU")
  in
  let scale = Arg.(value & opt int 1 & info [ "scale" ] ~docv:"N") in
  let top =
    Arg.(
      value & opt int 10
      & info [ "top" ] ~docv:"N" ~doc:"rows per attribution table")
  in
  let no_verify =
    Arg.(
      value & flag
      & info [ "no-verify" ]
          ~doc:
            "skip the second, reference-model-checked run that validates \
             the attribution totals")
  in
  let run vm workload technique cpu scale top no_verify =
    match Vmbp_workloads.find ~vm workload with
    | None ->
        Printf.eprintf "unknown workload %s/%s\n"
          (Vmbp_workloads.vm_name vm) workload;
        exit 1
    | Some w -> (
        match Vmbp_report.Explain.run ~scale ~cpu ~technique w with
        | Error msg ->
            Printf.eprintf "explain failed: %s\n" msg;
            exit 1
        | Ok t -> (
            print_string (Vmbp_report.Explain.render ~top t);
            if no_verify then ()
            else
              match
                Vmbp_report.Explain.verify ~scale ~cpu ~technique w t
              with
              | Ok () ->
                  Printf.eprintf
                    "[explain] attribution verified against a \
                     self-checked run\n"
              | Error msg ->
                  Printf.eprintf "[explain] verification failed: %s\n" msg;
                  exit 1))
  in
  Cmd.v (Cmd.info "explain" ~doc)
    Term.(
      const run $ vm $ workload $ technique $ cpu $ scale $ top $ no_verify)

let simulate_cmd =
  let doc =
    "Deterministic simulation testing: sweep seeded whole-system schedules \
     of the report service under virtual time, simulated sockets and disks, \
     and power-cut crash/restart, checking durability, determinism, \
     liveness and store integrity on every one."
  in
  let seeds =
    Arg.(
      value & opt int 1000
      & info [ "seeds" ] ~docv:"N"
          ~doc:
            "Seeds to sweep (with $(b,--mutate): the budget within which \
             the re-introduced bug must be caught).")
  in
  let seed =
    Arg.(
      value
      & opt (some int) None
      & info [ "seed" ] ~docv:"N"
          ~doc:"Run exactly this one seed (replay a reported failure).")
  in
  let first =
    Arg.(
      value & opt int 1
      & info [ "first-seed" ] ~docv:"N" ~doc:"First seed of the sweep.")
  in
  let mutate =
    Arg.(
      value
      & opt (some string) None
      & info [ "mutate" ] ~docv:"BUG"
          ~doc:
            (Printf.sprintf
               "Re-introduce a past bug and demand the harness catches it \
                within the seed budget (exit 0 on catch).  One of: %s."
               (String.concat ", " Vmbp_service.Simulate.mutation_names)))
  in
  let trace_file =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-file" ] ~docv:"PATH"
          ~doc:"Where to write a failing schedule's trace.")
  in
  let span_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace-out" ] ~docv:"FILE"
          ~doc:
            "Write the last seed's span trace (Chrome trace-event JSON on \
             the virtual clock; byte-identical across replays of the same \
             seed) to $(docv).")
  in
  let metrics_out =
    Arg.(
      value
      & opt (some string) None
      & info [ "metrics" ] ~docv:"FILE"
          ~doc:"Write the last seed's metrics registry to $(docv).")
  in
  let run seeds seed first mutate trace_file span_out metrics_out =
    let mutation =
      match mutate with
      | None -> None
      | Some s -> (
          match Vmbp_service.Simulate.mutation_of_string s with
          | Ok m -> Some m
          | Error e ->
              Printf.eprintf "vmbp: %s\n" e;
              exit 2)
    in
    let first_seed, seeds =
      match seed with Some s -> (s, 1) | None -> (first, seeds)
    in
    exit
      (Vmbp_service.Simulate.run ~first_seed ?mutation ?trace_file ?span_out
         ?metrics_out ~seeds ())
  in
  Cmd.v (Cmd.info "simulate" ~doc)
    Term.(
      const run $ seeds $ seed $ first $ mutate $ trace_file $ span_out
      $ metrics_out)

let store_cmd =
  let scrub_cmd =
    let doc =
      "Offline integrity scan of a store directory: per-shard counts of \
       well-formed, corrupt and stale-fingerprint records.  Exits 4 if any \
       corruption is found (after the repair when $(b,--compact) is given)."
    in
    let dir =
      Arg.(
        required
        & pos 0 (some string) None
        & info [] ~docv:"DIR" ~doc:"Store directory to scan.")
    in
    let compact =
      Arg.(
        value & flag
        & info [ "compact" ]
            ~doc:
              "Repair in place: open the store (which skips corrupt \
               records) and compact it, then re-scan.")
    in
    let print_reports reports =
      let tr, tc, ts =
        List.fold_left
          (fun (r, c, s) (sr : Vmbp_store.Store.shard_report) ->
            Printf.printf "%-14s records %-6d corrupt %-4d stale %d\n"
              sr.sr_shard sr.sr_records sr.sr_corrupt sr.sr_stale;
            (r + sr.sr_records, c + sr.sr_corrupt, s + sr.sr_stale))
          (0, 0, 0) reports
      in
      Printf.printf "total          records %-6d corrupt %-4d stale %d\n" tr
        tc ts;
      tc
    in
    let run dir compact =
      let corrupt = print_reports (Vmbp_store.Store.scrub dir) in
      let corrupt =
        if compact && corrupt > 0 then begin
          Printf.printf "compacting %s in place...\n" dir;
          let st = Vmbp_store.Store.open_ dir in
          Vmbp_store.Store.compact st;
          Vmbp_store.Store.close st;
          print_reports (Vmbp_store.Store.scrub dir)
        end
        else corrupt
      in
      if corrupt > 0 then exit 4
    in
    Cmd.v (Cmd.info "scrub" ~doc) Term.(const run $ dir $ compact)
  in
  let doc = "Store maintenance commands." in
  Cmd.group (Cmd.info "store" ~doc) [ scrub_cmd ]

let () =
  let doc =
    "Reproduction of 'Optimizing Indirect Branch Prediction Accuracy in \
     Virtual Machine Interpreters'"
  in
  let info = Cmd.info "vmbp" ~version:"1.0.0" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            trace_cmd;
            experiment_cmd;
            report_cmd;
            serve_cmd;
            loadgen_cmd;
            client_cmd;
            top_cmd;
            simulate_cmd;
            store_cmd;
            explain_cmd;
            audit_repro_cmd;
          ]))

(* End-to-end tests of the report service: the daemon runs in a domain
   inside the test process, clients speak the real wire protocol over a
   real Unix-domain socket.  Covered: miss-compute-then-hit, duplicate
   coalescing (one compute, N identical replies), protocol edges
   (oversized frame, truncated frame, unknown verb), degradation under a
   wedged pool, and shutdown draining in-flight requests. *)

module P = Vmbp_service.Protocol
module Service = Vmbp_service.Service
module PR = Vmbp_report.Par_runner
module Faults = Vmbp_report.Faults

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let uniq =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.02;
        go (tries - 1)
  in
  go 200;
  fd

let rpc fd payload =
  P.write_frame fd payload;
  match P.read_frame fd with
  | Some reply -> reply
  | None -> Alcotest.fail "server closed the connection without a reply"

let fields_of reply =
  try Vmbp_store.Sjson.parse_line reply
  with Vmbp_store.Sjson.Bad ->
    Alcotest.failf "unparseable reply: %s" reply

let status reply =
  match Vmbp_store.Sjson.str_opt (fields_of reply) "status" with
  | Some s -> s
  | None -> Alcotest.failf "reply without status: %s" reply

let source reply = Vmbp_store.Sjson.str_opt (fields_of reply) "source"

(* Start a server in its own domain with a fresh socket and store; stop it
   (via the shutdown verb unless the test already did) and clean up. *)
let with_server ?(chaos = "") ?(admission = 64) ?(degraded_after = 2.)
    ?(request_timeout = 30.) f =
  let id = uniq () in
  let socket = Filename.concat "/tmp" ("vmbp-svc-" ^ id ^ ".sock") in
  let store = Filename.concat "/tmp" ("vmbp-svc-store-" ^ id) in
  (match Faults.configure chaos with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chaos spec: %s" msg);
  let cfg =
    {
      (Service.default_config ~socket ~store_dir:store) with
      Service.jobs = 2;
      admission;
      degraded_after;
      request_timeout;
      slow_reader_timeout = 2.;
    }
  in
  let srv = Domain.spawn (fun () -> Service.serve cfg) in
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent stop: if the test already shut the server down, the
         connect fails and the domain is already finishing. *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try
            Unix.connect fd (Unix.ADDR_UNIX socket);
            ignore (rpc fd (P.obj [ ("verb", P.S "shutdown") ]))
          with _ -> ());
         Unix.close fd
       with _ -> ());
      Domain.join srv;
      Faults.reset ();
      rm_rf store)
    (fun () -> f socket)

let counter name =
  match Vmbp_obs.Registry.find_counter name with
  | Some v -> Int64.to_int v
  | None -> 0

let gray_query =
  P.query_payload ~vm:"forth" ~workload:"gray" ~technique:"switch"
    ~cpu:"celeron-800" ~scale:1 ()

(* ------------------------------------------------------------------ *)

let test_health_and_stats () =
  with_server (fun socket ->
      let fd = connect socket in
      let h = rpc fd (P.obj [ ("verb", P.S "health") ]) in
      check_string "healthy" "ok" (status h);
      check_bool "serving" true
        (Vmbp_store.Sjson.str_opt (fields_of h) "state" = Some "serving");
      let s = fields_of (rpc fd (P.obj [ ("verb", P.S "stats") ])) in
      check_bool "stats has entries" true
        (Vmbp_store.Sjson.int_opt s "entries" = Some 0);
      check_bool "stats counts itself" true
        (match Vmbp_store.Sjson.int_opt s "requests" with
        | Some n -> n >= 2
        | None -> false);
      Unix.close fd)

let test_query_miss_then_hit () =
  with_server (fun socket ->
      let fd = connect socket in
      let first = rpc fd gray_query in
      check_string "computed" "ok" (status first);
      check_bool "first is a miss" true (source first = Some "computed");
      let second = rpc fd gray_query in
      check_bool "second is a hit" true (source second = Some "store");
      (* The stored reply matches the computed one field for field. *)
      List.iter
        (fun f ->
          Alcotest.(check (option string))
            (f ^ " identical")
            (Vmbp_store.Sjson.str_opt (fields_of first) f)
            (Vmbp_store.Sjson.str_opt (fields_of second) f))
        [ "output" ];
      List.iter
        (fun f ->
          Alcotest.(check (option int))
            (f ^ " identical")
            (Vmbp_store.Sjson.int_opt (fields_of first) f)
            (Vmbp_store.Sjson.int_opt (fields_of second) f))
        [ "steps"; "vm_instrs"; "dispatches"; "mispredicts"; "icache_misses" ];
      Unix.close fd)

let test_duplicate_queries_coalesce () =
  (* Wedge the compute domain briefly so all four duplicates are in the
     house before the batch runs: exactly one compute, four identical
     replies, three coalesced. *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let coalesced0 = counter "service.coalesced" in
      let fds = List.init 4 (fun _ -> connect socket) in
      List.iter (fun fd -> P.write_frame fd gray_query) fds;
      let replies =
        List.map
          (fun fd ->
            match P.read_frame fd with
            | Some r -> r
            | None -> Alcotest.fail "dropped while coalescing")
          fds
      in
      (match replies with
      | first :: rest ->
          check_string "computed once" "ok" (status first);
          List.iter
            (fun r -> check_string "identical replies" first r)
            rest
      | [] -> Alcotest.fail "no replies");
      check_int "three coalesced" 3 (counter "service.coalesced" - coalesced0);
      List.iter Unix.close fds)

let test_protocol_edges () =
  with_server (fun socket ->
      (* Unknown verb. *)
      let fd = connect socket in
      check_string "unknown verb" "bad-request"
        (status (rpc fd (P.obj [ ("verb", P.S "frobnicate") ])));
      (* Oversized frame: rejected with a reply, then the connection is
         closed (the stream past a bad header is unframeable). *)
      let big = P.encode_frame (String.make 100_000 'x') in
      (* The server rejects on the frame header and hangs up without
         reading the body, so the tail of this write can race the close
         and die with EPIPE/ECONNRESET -- that still proves the point. *)
      let sent =
        match Unix.write_substring fd big 0 (String.length big) with
        | n -> n > 0
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            true
      in
      check_bool "frame sent" true sent;
      (match P.read_frame fd with
      | Some r -> check_string "oversized rejected" "bad-request" (status r)
      | None -> ()
      | exception (End_of_file | Unix.Unix_error _) -> ());
      (* Closed for good: clean EOF, or RST if the kernel still held the
         unread remainder of the oversized frame. *)
      check_bool "connection closed after oversize" true
        (match P.read_frame fd with
        | None -> true
        | Some _ -> false
        | exception (End_of_file | Unix.Unix_error _) -> true);
      Unix.close fd;
      (* Truncated frame: a client dying mid-frame must not wedge the
         server. *)
      let fd2 = connect socket in
      ignore (Unix.write_substring fd2 "\x00\x00" 0 2);
      Unix.close fd2;
      let fd3 = connect socket in
      check_string "server survives a truncated frame" "ok"
        (status (rpc fd3 (P.obj [ ("verb", P.S "health") ])));
      Unix.close fd3)

let test_degraded_store_only () =
  (* Wedge the pool past [degraded_after]: a store hit still serves, a
     fresh miss is refused with [degraded], and the degradation window is
     accounted. *)
  with_server ~degraded_after:0.15 (fun socket ->
      let fd = connect socket in
      (* Warm the store with one computed cell. *)
      check_string "warmup" "ok" (status (rpc fd gray_query));
      (match Faults.configure "pool-wedge=1@0.9" with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "chaos: %s" msg);
      (* A miss that wedges the compute domain. *)
      let slow = connect socket in
      P.write_frame slow
        (P.query_payload ~vm:"forth" ~workload:"gray" ~technique:"switch"
           ~cpu:"pentium-m" ~scale:1 ());
      Unix.sleepf 0.4;
      (* Store hits keep serving while degraded. *)
      let hit = rpc fd gray_query in
      check_bool "hit served while degraded" true (source hit = Some "store");
      (* A different miss is refused. *)
      check_string "miss refused while degraded" "degraded"
        (status
           (rpc fd
              (P.query_payload ~vm:"forth" ~workload:"gray"
                 ~technique:"switch" ~cpu:"pentium4-prescott" ~scale:1 ())));
      check_bool "health reports degraded" true
        (Vmbp_store.Sjson.str_opt
           (fields_of (rpc fd (P.obj [ ("verb", P.S "health") ])))
           "state"
        = Some "degraded");
      (* The wedged request itself completes once the pool recovers. *)
      (match P.read_frame slow with
      | Some r -> check_string "wedged miss completes" "ok" (status r)
      | None -> Alcotest.fail "wedged request lost");
      let s = fields_of (rpc fd (P.obj [ ("verb", P.S "stats") ])) in
      check_bool "degraded window accounted" true
        (match Vmbp_store.Sjson.num s "degraded_seconds" with
        | v -> v > 0.
        | exception Vmbp_store.Sjson.Bad -> false);
      Unix.close slow;
      Unix.close fd)

let test_admission_shed () =
  (* admission=1 with a wedged pool: the second distinct miss sheds with
     an explicit [overloaded] reply. *)
  with_server ~admission:1 ~chaos:"pool-wedge=1@0.5" ~degraded_after:10.
    (fun socket ->
      let a = connect socket in
      P.write_frame a gray_query;
      Unix.sleepf 0.1;
      let b = connect socket in
      check_string "second miss shed" "overloaded"
        (status
           (rpc b
              (P.query_payload ~vm:"forth" ~workload:"gray"
                 ~technique:"switch" ~cpu:"pentium-m" ~scale:1 ())));
      (match P.read_frame a with
      | Some r -> check_string "admitted miss completes" "ok" (status r)
      | None -> Alcotest.fail "admitted request lost");
      Unix.close a;
      Unix.close b)

let test_shutdown_drains_inflight () =
  (* A shutdown with a compute in flight: the in-flight reply still
     arrives, new misses are refused, and the server exits cleanly
     (with_server joins the domain). *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let q = connect socket in
      P.write_frame q gray_query;
      Unix.sleepf 0.1;
      let c = connect socket in
      check_string "shutdown acknowledged" "ok"
        (status (rpc c (P.obj [ ("verb", P.S "shutdown") ])));
      (match P.read_frame q with
      | Some r -> check_string "in-flight reply delivered" "ok" (status r)
      | None -> Alcotest.fail "in-flight request dropped by shutdown");
      Unix.close q;
      Unix.close c)

let test_sigterm_drains_like_sigint () =
  (* SIGTERM while a compute is wedged in flight: drain, deliver the
     in-flight reply, exit cleanly (with_server joins the domain). *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let q = connect socket in
      P.write_frame q gray_query;
      Unix.sleepf 0.15;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (match P.read_frame q with
      | Some r -> check_string "in-flight reply delivered" "ok" (status r)
      | None -> Alcotest.fail "in-flight request dropped by SIGTERM");
      Unix.close q)

let test_loadgen_plan_determinism () =
  let cfg =
    { (Vmbp_service.Loadgen.default_config ~socket:"/unused") with
      Vmbp_service.Loadgen.seed = 42 }
  in
  let a = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:50 in
  let b = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:50 in
  check_bool "same seed and index, same query sequence" true (a = b);
  check_int "full length" 50 (List.length a);
  let other = Vmbp_service.Loadgen.query_plan cfg ~index:1 ~count:50 in
  check_bool "clients draw distinct streams" false (a = other);
  let reseeded =
    Vmbp_service.Loadgen.query_plan
      { cfg with Vmbp_service.Loadgen.seed = 43 }
      ~index:0 ~count:50
  in
  check_bool "different seed, different sequence" false (a = reseeded);
  (* A plan is a prefix-stable schedule: asking for fewer queries gives
     the prefix, so partial runs replay the same leading requests. *)
  let short = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:10 in
  check_bool "shorter plan is a prefix" true
    (short = List.filteri (fun i _ -> i < 10) a)

let test_loadgen_reconnects_under_conn_drop () =
  (* Point the generator at a server that keeps severing connections:
     every client must reconnect, resume its plan and finish. *)
  with_server ~chaos:"conn-drop=0.5,seed=5" (fun socket ->
      (* Loadgen clients fail hard if their first connect finds no
         listener, so wait for the server to come up. *)
      Unix.close (connect socket);
      let before = counter "loadgen.status.conn-drop" in
      let ok_before = counter "loadgen.status.ok" in
      Vmbp_service.Loadgen.run
        {
          Vmbp_service.Loadgen.socket;
          clients = 2;
          requests = 40;
          seed = 3;
          zipf = 1.1;
          scale = 1;
        };
      check_bool "connections were dropped" true
        (counter "loadgen.status.conn-drop" - before > 0);
      check_bool "clients resumed and completed queries" true
        (counter "loadgen.status.ok" - ok_before > 0))

let () =
  Alcotest.run "service"
    [
      ( "service",
        [
          Alcotest.test_case "health and stats" `Quick test_health_and_stats;
          Alcotest.test_case "query miss then hit" `Quick
            test_query_miss_then_hit;
          Alcotest.test_case "duplicates coalesce" `Quick
            test_duplicate_queries_coalesce;
          Alcotest.test_case "protocol edges" `Quick test_protocol_edges;
          Alcotest.test_case "degraded store-only" `Quick
            test_degraded_store_only;
          Alcotest.test_case "admission shed" `Quick test_admission_shed;
          Alcotest.test_case "shutdown drains in-flight" `Quick
            test_shutdown_drains_inflight;
          Alcotest.test_case "SIGTERM drains like SIGINT" `Quick
            test_sigterm_drains_like_sigint;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "plan determinism" `Quick
            test_loadgen_plan_determinism;
          Alcotest.test_case "reconnects under conn-drop" `Quick
            test_loadgen_reconnects_under_conn_drop;
        ] );
    ]

(* End-to-end tests of the report service: the daemon runs in a domain
   inside the test process, clients speak the real wire protocol over a
   real Unix-domain socket.  Covered: miss-compute-then-hit, duplicate
   coalescing (one compute, N identical replies), protocol edges
   (oversized frame, truncated frame, unknown verb), degradation under a
   wedged pool, and shutdown draining in-flight requests. *)

module P = Vmbp_service.Protocol
module Service = Vmbp_service.Service
module PR = Vmbp_report.Par_runner
module Faults = Vmbp_report.Faults

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

let uniq =
  let n = ref 0 in
  fun () ->
    incr n;
    Printf.sprintf "%d-%d" (Unix.getpid ()) !n

let rm_rf dir =
  if Sys.file_exists dir then begin
    Array.iter
      (fun f -> try Sys.remove (Filename.concat dir f) with Sys_error _ -> ())
      (Sys.readdir dir);
    try Unix.rmdir dir with Unix.Unix_error _ -> ()
  end

let connect socket =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec go tries =
    match Unix.connect fd (Unix.ADDR_UNIX socket) with
    | () -> ()
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when tries > 0 ->
        Unix.sleepf 0.02;
        go (tries - 1)
  in
  go 200;
  fd

let rpc fd payload =
  P.write_frame fd payload;
  match P.read_frame fd with
  | Some reply -> reply
  | None -> Alcotest.fail "server closed the connection without a reply"

let fields_of reply =
  try Vmbp_store.Sjson.parse_line reply
  with Vmbp_store.Sjson.Bad ->
    Alcotest.failf "unparseable reply: %s" reply

let status reply =
  match Vmbp_store.Sjson.str_opt (fields_of reply) "status" with
  | Some s -> s
  | None -> Alcotest.failf "reply without status: %s" reply

let source reply = Vmbp_store.Sjson.str_opt (fields_of reply) "source"

(* Start a server in its own domain with a fresh socket and store; stop it
   (via the shutdown verb unless the test already did) and clean up. *)
let with_server ?(chaos = "") ?(admission = 64) ?(degraded_after = 2.)
    ?(request_timeout = 30.) ?flight_dir f =
  let id = uniq () in
  let socket = Filename.concat "/tmp" ("vmbp-svc-" ^ id ^ ".sock") in
  let store = Filename.concat "/tmp" ("vmbp-svc-store-" ^ id) in
  (match Faults.configure chaos with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "chaos spec: %s" msg);
  let cfg =
    {
      (Service.default_config ~socket ~store_dir:store) with
      Service.jobs = 2;
      admission;
      degraded_after;
      request_timeout;
      slow_reader_timeout = 2.;
      flight_dir = Option.value ~default:"." flight_dir;
    }
  in
  let srv = Domain.spawn (fun () -> Service.serve cfg) in
  Fun.protect
    ~finally:(fun () ->
      (* Idempotent stop: if the test already shut the server down, the
         connect fails and the domain is already finishing. *)
      (try
         let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
         (try
            Unix.connect fd (Unix.ADDR_UNIX socket);
            ignore (rpc fd (P.obj [ ("verb", P.S "shutdown") ]))
          with _ -> ());
         Unix.close fd
       with _ -> ());
      Domain.join srv;
      Faults.reset ();
      rm_rf store)
    (fun () -> f socket)

let counter name =
  match Vmbp_obs.Registry.find_counter name with
  | Some v -> Int64.to_int v
  | None -> 0

let gray_query =
  P.query_payload ~vm:"forth" ~workload:"gray" ~technique:"switch"
    ~cpu:"celeron-800" ~scale:1 ()

(* ------------------------------------------------------------------ *)

let test_health_and_stats () =
  with_server (fun socket ->
      let fd = connect socket in
      let h = rpc fd (P.obj [ ("verb", P.S "health") ]) in
      check_string "healthy" "ok" (status h);
      check_bool "serving" true
        (Vmbp_store.Sjson.str_opt (fields_of h) "state" = Some "serving");
      let s = fields_of (rpc fd (P.obj [ ("verb", P.S "stats") ])) in
      check_bool "stats has entries" true
        (Vmbp_store.Sjson.int_opt s "entries" = Some 0);
      check_bool "stats counts itself" true
        (match Vmbp_store.Sjson.int_opt s "requests" with
        | Some n -> n >= 2
        | None -> false);
      Unix.close fd)

let test_query_miss_then_hit () =
  with_server (fun socket ->
      let fd = connect socket in
      let first = rpc fd gray_query in
      check_string "computed" "ok" (status first);
      check_bool "first is a miss" true (source first = Some "computed");
      let second = rpc fd gray_query in
      check_bool "second is a hit" true (source second = Some "store");
      (* The stored reply matches the computed one field for field. *)
      List.iter
        (fun f ->
          Alcotest.(check (option string))
            (f ^ " identical")
            (Vmbp_store.Sjson.str_opt (fields_of first) f)
            (Vmbp_store.Sjson.str_opt (fields_of second) f))
        [ "output" ];
      List.iter
        (fun f ->
          Alcotest.(check (option int))
            (f ^ " identical")
            (Vmbp_store.Sjson.int_opt (fields_of first) f)
            (Vmbp_store.Sjson.int_opt (fields_of second) f))
        [ "steps"; "vm_instrs"; "dispatches"; "mispredicts"; "icache_misses" ];
      Unix.close fd)

let test_duplicate_queries_coalesce () =
  (* Wedge the compute domain briefly so all four duplicates are in the
     house before the batch runs: exactly one compute, four identical
     replies, three coalesced. *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let coalesced0 = counter "service.coalesced" in
      let fds = List.init 4 (fun _ -> connect socket) in
      List.iter (fun fd -> P.write_frame fd gray_query) fds;
      let replies =
        List.map
          (fun fd ->
            match P.read_frame fd with
            | Some r -> r
            | None -> Alcotest.fail "dropped while coalescing")
          fds
      in
      (match replies with
      | first :: rest ->
          check_string "computed once" "ok" (status first);
          List.iter
            (fun r -> check_string "identical replies" first r)
            rest
      | [] -> Alcotest.fail "no replies");
      check_int "three coalesced" 3 (counter "service.coalesced" - coalesced0);
      List.iter Unix.close fds)

let test_protocol_edges () =
  with_server (fun socket ->
      (* Unknown verb. *)
      let fd = connect socket in
      check_string "unknown verb" "bad-request"
        (status (rpc fd (P.obj [ ("verb", P.S "frobnicate") ])));
      (* Oversized frame: rejected with a reply, then the connection is
         closed (the stream past a bad header is unframeable). *)
      let big = P.encode_frame (String.make 100_000 'x') in
      (* The server rejects on the frame header and hangs up without
         reading the body, so the tail of this write can race the close
         and die with EPIPE/ECONNRESET -- that still proves the point. *)
      let sent =
        match Unix.write_substring fd big 0 (String.length big) with
        | n -> n > 0
        | exception Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET), _, _) ->
            true
      in
      check_bool "frame sent" true sent;
      (match P.read_frame fd with
      | Some r -> check_string "oversized rejected" "bad-request" (status r)
      | None -> ()
      | exception (End_of_file | Unix.Unix_error _) -> ());
      (* Closed for good: clean EOF, or RST if the kernel still held the
         unread remainder of the oversized frame. *)
      check_bool "connection closed after oversize" true
        (match P.read_frame fd with
        | None -> true
        | Some _ -> false
        | exception (End_of_file | Unix.Unix_error _) -> true);
      Unix.close fd;
      (* Truncated frame: a client dying mid-frame must not wedge the
         server. *)
      let fd2 = connect socket in
      ignore (Unix.write_substring fd2 "\x00\x00" 0 2);
      Unix.close fd2;
      let fd3 = connect socket in
      check_string "server survives a truncated frame" "ok"
        (status (rpc fd3 (P.obj [ ("verb", P.S "health") ])));
      Unix.close fd3)

let test_degraded_store_only () =
  (* Wedge the pool past [degraded_after]: a store hit still serves, a
     fresh miss is refused with [degraded], and the degradation window is
     accounted. *)
  with_server ~degraded_after:0.15 (fun socket ->
      let fd = connect socket in
      (* Warm the store with one computed cell. *)
      check_string "warmup" "ok" (status (rpc fd gray_query));
      (match Faults.configure "pool-wedge=1@0.9" with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "chaos: %s" msg);
      (* A miss that wedges the compute domain. *)
      let slow = connect socket in
      P.write_frame slow
        (P.query_payload ~vm:"forth" ~workload:"gray" ~technique:"switch"
           ~cpu:"pentium-m" ~scale:1 ());
      Unix.sleepf 0.4;
      (* Store hits keep serving while degraded. *)
      let hit = rpc fd gray_query in
      check_bool "hit served while degraded" true (source hit = Some "store");
      (* A different miss is refused. *)
      check_string "miss refused while degraded" "degraded"
        (status
           (rpc fd
              (P.query_payload ~vm:"forth" ~workload:"gray"
                 ~technique:"switch" ~cpu:"pentium4-prescott" ~scale:1 ())));
      check_bool "health reports degraded" true
        (Vmbp_store.Sjson.str_opt
           (fields_of (rpc fd (P.obj [ ("verb", P.S "health") ])))
           "state"
        = Some "degraded");
      (* The wedged request itself completes once the pool recovers. *)
      (match P.read_frame slow with
      | Some r -> check_string "wedged miss completes" "ok" (status r)
      | None -> Alcotest.fail "wedged request lost");
      let s = fields_of (rpc fd (P.obj [ ("verb", P.S "stats") ])) in
      check_bool "degraded window accounted" true
        (match Vmbp_store.Sjson.num s "degraded_seconds" with
        | v -> v > 0.
        | exception Vmbp_store.Sjson.Bad -> false);
      Unix.close slow;
      Unix.close fd)

let test_admission_shed () =
  (* admission=1 with a wedged pool: the second distinct miss sheds with
     an explicit [overloaded] reply. *)
  with_server ~admission:1 ~chaos:"pool-wedge=1@0.5" ~degraded_after:10.
    (fun socket ->
      let a = connect socket in
      P.write_frame a gray_query;
      Unix.sleepf 0.1;
      let b = connect socket in
      check_string "second miss shed" "overloaded"
        (status
           (rpc b
              (P.query_payload ~vm:"forth" ~workload:"gray"
                 ~technique:"switch" ~cpu:"pentium-m" ~scale:1 ())));
      (match P.read_frame a with
      | Some r -> check_string "admitted miss completes" "ok" (status r)
      | None -> Alcotest.fail "admitted request lost");
      Unix.close a;
      Unix.close b)

let test_shutdown_drains_inflight () =
  (* A shutdown with a compute in flight: the in-flight reply still
     arrives, new misses are refused, and the server exits cleanly
     (with_server joins the domain). *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let q = connect socket in
      P.write_frame q gray_query;
      Unix.sleepf 0.1;
      let c = connect socket in
      check_string "shutdown acknowledged" "ok"
        (status (rpc c (P.obj [ ("verb", P.S "shutdown") ])));
      (match P.read_frame q with
      | Some r -> check_string "in-flight reply delivered" "ok" (status r)
      | None -> Alcotest.fail "in-flight request dropped by shutdown");
      Unix.close q;
      Unix.close c)

let test_sigterm_drains_like_sigint () =
  (* SIGTERM while a compute is wedged in flight: drain, deliver the
     in-flight reply, exit cleanly (with_server joins the domain). *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      let q = connect socket in
      P.write_frame q gray_query;
      Unix.sleepf 0.15;
      Unix.kill (Unix.getpid ()) Sys.sigterm;
      (match P.read_frame q with
      | Some r -> check_string "in-flight reply delivered" "ok" (status r)
      | None -> Alcotest.fail "in-flight request dropped by SIGTERM");
      Unix.close q)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let test_metrics_verb () =
  with_server (fun socket ->
      let fd = connect socket in
      check_string "warm one cell" "ok" (status (rpc fd gray_query));
      (* JSON format (the default): the registry dump rides in [body]. *)
      let j = fields_of (rpc fd (P.obj [ ("verb", P.S "metrics") ])) in
      check_bool "json status ok" true
        (Vmbp_store.Sjson.str_opt j "status" = Some "ok");
      check_bool "json format" true
        (Vmbp_store.Sjson.str_opt j "format" = Some "json");
      (match Vmbp_store.Sjson.str_opt j "body" with
      | None -> Alcotest.fail "metrics reply carries no body"
      | Some body ->
          check_bool "registry schema" true (contains body "vmbp-metrics/1");
          check_bool "request counter present" true
            (contains body "service.requests"));
      (* Prometheus format: the same bytes a scraper would pull. *)
      let p =
        fields_of
          (rpc fd
             (P.obj [ ("verb", P.S "metrics"); ("format", P.S "prometheus") ]))
      in
      check_bool "prom format" true
        (Vmbp_store.Sjson.str_opt p "format" = Some "prometheus");
      (match Vmbp_store.Sjson.str_opt p "body" with
      | None -> Alcotest.fail "prometheus reply carries no body"
      | Some body ->
          check_bool "mangled counter exported" true
            (contains body "vmbp_service_requests_total");
          check_bool "typed" true (contains body "# TYPE");
          check_bool "per-verb histogram exported" true
            (contains body "vmbp_service_verb_seconds_bucket{verb=\"query\""));
      Unix.close fd)

let test_dump_verb () =
  let id = uniq () in
  let flight = Filename.concat "/tmp" ("vmbp-svc-flight-" ^ id) in
  Fun.protect
    ~finally:(fun () -> rm_rf flight)
    (fun () ->
      with_server ~flight_dir:flight (fun socket ->
          let fd = connect socket in
          check_string "traffic for the ring" "ok" (status (rpc fd gray_query));
          let d = fields_of (rpc fd (P.obj [ ("verb", P.S "dump") ])) in
          check_bool "dump acknowledged" true
            (Vmbp_store.Sjson.str_opt d "status" = Some "ok");
          (match Vmbp_store.Sjson.str_opt d "path" with
          | None -> Alcotest.fail "dump reply carries no path"
          | Some path ->
              check_bool "dump file exists" true (Sys.file_exists path);
              let ic = open_in path in
              let body =
                Fun.protect
                  ~finally:(fun () -> close_in ic)
                  (fun () -> really_input_string ic (in_channel_length ic))
              in
              check_bool "flight schema" true
                (contains body "\"schema\":\"vmbp-flight/1\"");
              check_bool "dump reason recorded" true
                (contains body "\"reason\":\"dump\"");
              check_bool "ring saw the query" true
                (contains body "\"kind\":\"batch-start\""));
          check_bool "entry count reported" true
            (match Vmbp_store.Sjson.int_opt d "entries" with
            | Some n -> n > 0
            | None -> false);
          Unix.close fd))

let test_rid_echo_passivity () =
  (* A rid must be purely additive: the reply to a rid-tagged query is
     byte-identical to the untagged reply plus the spliced echo. *)
  with_server (fun socket ->
      let fd = connect socket in
      check_string "warm" "ok" (status (rpc fd gray_query));
      let plain = rpc fd gray_query in
      check_bool "plain hit" true (source plain = Some "store");
      let rid = "passivity-1" in
      let tagged =
        rpc fd
          (P.query_payload ~vm:"forth" ~workload:"gray" ~technique:"switch"
             ~cpu:"celeron-800" ~scale:1 ~rid ())
      in
      check_bool "rid echoed" true
        (Vmbp_store.Sjson.str_opt (fields_of tagged) "rid" = Some rid);
      check_string "tagged reply = plain reply + spliced rid"
        (String.sub plain 0 (String.length plain - 1)
        ^ ",\"rid\":\"" ^ rid ^ "\"}")
        tagged;
      Unix.close fd)

let test_trace_links_coalesced_rids () =
  (* Four rid-tagged duplicates of one cell under a wedged pool: each
     rid's admit span names the in-flight key, and exactly one
     compute-batch span serves that key -- the cross-thread fan-in the
     trace view hangs the four request trees on. *)
  with_server ~chaos:"pool-wedge=1@0.4" (fun socket ->
      Vmbp_obs.Span.enable ();
      Fun.protect
        ~finally:(fun () -> Vmbp_obs.Span.disable ())
        (fun () ->
          let rids = List.init 4 (fun i -> Printf.sprintf "tc-r%d" i) in
          let fds = List.map (fun _ -> connect socket) rids in
          List.iter2
            (fun fd rid ->
              P.write_frame fd
                (P.query_payload ~vm:"forth" ~workload:"gray"
                   ~technique:"switch" ~cpu:"celeron-800" ~scale:1 ~rid ()))
            fds rids;
          List.iter2
            (fun fd rid ->
              match P.read_frame fd with
              | None -> Alcotest.fail "dropped while coalescing"
              | Some reply ->
                  check_string "coalesced reply ok" "ok" (status reply);
                  check_bool ("reply echoes " ^ rid) true
                    (Vmbp_store.Sjson.str_opt (fields_of reply) "rid"
                    = Some rid))
            fds rids;
          List.iter Unix.close fds;
          let events = Vmbp_obs.Span.events () in
          let arg (e : Vmbp_obs.Span.event) k =
            Option.value ~default:"" (List.assoc_opt k e.Vmbp_obs.Span.args)
          in
          let batches =
            List.filter
              (fun (e : Vmbp_obs.Span.event) ->
                e.Vmbp_obs.Span.name = "compute-batch")
              events
          in
          check_int "exactly one compute batch" 1 (List.length batches);
          let batch = List.hd batches in
          check_string "batch of one cell" "1" (arg batch "cells");
          (* Every rid admits onto the same key, and the batch span
             names that key: the four request trees all link to the one
             compute. *)
          let keys =
            List.map
              (fun rid ->
                match
                  List.find_opt
                    (fun (e : Vmbp_obs.Span.event) ->
                      e.Vmbp_obs.Span.name = "admit"
                      && e.Vmbp_obs.Span.trace = rid
                      && (arg e "decision" = "enqueue"
                         || arg e "decision" = "coalesce"))
                    events
                with
                | Some e -> arg e "key"
                | None -> Alcotest.failf "rid %s left no admit span" rid)
              rids
          in
          let key = List.hd keys in
          check_bool "admit key non-empty" true (key <> "");
          List.iter (check_string "all rids admit the same key" key) keys;
          check_bool "batch span serves the admitted key" true
            (contains (arg batch "keys") key);
          (* The enqueuing waiter's rid rides in the batch span itself;
             spans on the compute domain record a different thread than
             the event loop's, so the trace visibly crosses threads. *)
          check_bool "enqueuer's rid in the batch span" true
            (List.exists
               (fun rid -> contains (arg batch "rids") rid)
               rids);
          let parse_tid =
            match
              List.find_opt
                (fun (e : Vmbp_obs.Span.event) ->
                  e.Vmbp_obs.Span.name = "parse"
                  && List.mem e.Vmbp_obs.Span.trace rids)
                events
            with
            | Some e -> e.Vmbp_obs.Span.tid
            | None -> Alcotest.fail "no parse span for any rid"
          in
          check_bool "batch runs on another thread" true
            (batch.Vmbp_obs.Span.tid <> parse_tid);
          (* Every rid's reply left a flush span. *)
          List.iter
            (fun rid ->
              check_bool (rid ^ " flushed") true
                (List.exists
                   (fun (e : Vmbp_obs.Span.event) ->
                     e.Vmbp_obs.Span.name = "flush"
                     && e.Vmbp_obs.Span.trace = rid)
                   events))
            rids))

let test_loadgen_plan_determinism () =
  let cfg =
    { (Vmbp_service.Loadgen.default_config ~socket:"/unused") with
      Vmbp_service.Loadgen.seed = 42 }
  in
  let a = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:50 in
  let b = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:50 in
  check_bool "same seed and index, same query sequence" true (a = b);
  check_int "full length" 50 (List.length a);
  let other = Vmbp_service.Loadgen.query_plan cfg ~index:1 ~count:50 in
  check_bool "clients draw distinct streams" false (a = other);
  let reseeded =
    Vmbp_service.Loadgen.query_plan
      { cfg with Vmbp_service.Loadgen.seed = 43 }
      ~index:0 ~count:50
  in
  check_bool "different seed, different sequence" false (a = reseeded);
  (* A plan is a prefix-stable schedule: asking for fewer queries gives
     the prefix, so partial runs replay the same leading requests. *)
  let short = Vmbp_service.Loadgen.query_plan cfg ~index:0 ~count:10 in
  check_bool "shorter plan is a prefix" true
    (short = List.filteri (fun i _ -> i < 10) a)

let test_loadgen_reconnects_under_conn_drop () =
  (* Point the generator at a server that keeps severing connections:
     every client must reconnect, resume its plan and finish. *)
  with_server ~chaos:"conn-drop=0.5,seed=5" (fun socket ->
      (* Loadgen clients fail hard if their first connect finds no
         listener, so wait for the server to come up. *)
      Unix.close (connect socket);
      let before = counter "loadgen.status.conn-drop" in
      let ok_before = counter "loadgen.status.ok" in
      Vmbp_service.Loadgen.run
        {
          Vmbp_service.Loadgen.socket;
          clients = 2;
          requests = 40;
          seed = 3;
          zipf = 1.1;
          scale = 1;
          json_out = None;
        };
      check_bool "connections were dropped" true
        (counter "loadgen.status.conn-drop" - before > 0);
      check_bool "clients resumed and completed queries" true
        (counter "loadgen.status.ok" - ok_before > 0))

let test_loadgen_json_summary () =
  let cfg =
    {
      (Vmbp_service.Loadgen.default_config ~socket:"/unused") with
      Vmbp_service.Loadgen.requests = 40;
      clients = 2;
      seed = 3;
    }
  in
  let doc =
    Vmbp_service.Loadgen.json_summary cfg ~elapsed:2.0 ~universe_size:665
  in
  check_bool "schema" true (contains doc "\"schema\":\"vmbp-loadgen/1\"");
  check_bool "requests" true (contains doc "\"requests\":40");
  check_bool "derived rps" true (contains doc "\"rps\":20");
  check_bool "universe" true (contains doc "\"universe\":665");
  check_bool "statuses object" true (contains doc "\"statuses\":{");
  check_bool "latency families" true
    (contains doc "\"latency\":{\"all\":{" && contains doc "\"hits\":{");
  check_bool "one closed document" true
    (String.length doc > 2 && doc.[0] = '{' && doc.[String.length doc - 1] = '}')

(* ------------------------------------------------------------------ *)
(* The [top] monitor's exposition parser and renderer, on hand-written
   scrape text (pure functions, no server needed). *)

let expo =
  String.concat "\n"
    [
      "# HELP vmbp_service_requests_total requests";
      "# TYPE vmbp_service_requests_total counter";
      "vmbp_service_requests_total 120";
      "vmbp_service_store_hits_total 60";
      "vmbp_service_connections 3";
      "vmbp_service_verb_seconds_bucket{verb=\"query\",le=\"0.001\"} 50";
      "vmbp_service_verb_seconds_bucket{verb=\"query\",le=\"0.01\"} 90";
      "vmbp_service_verb_seconds_bucket{verb=\"query\",le=\"+Inf\"} 100";
      "vmbp_service_verb_seconds_sum{verb=\"query\"} 1.5";
      "vmbp_service_verb_seconds_count{verb=\"query\"} 100";
      "";
    ]

let test_top_parse () =
  let module Top = Vmbp_service.Top in
  let samples = Top.parse expo in
  check_int "comments and blanks skipped" 8 (List.length samples);
  check_bool "plain value" true
    (Top.value samples "vmbp_service_requests_total" = 120.);
  check_bool "gauge value" true
    (Top.value samples "vmbp_service_connections" = 3.);
  check_bool "absent series reads zero" true
    (Top.value samples "vmbp_service_no_such" = 0.);
  check_bool "labelled lookup" true
    (Top.value
       ~labels:[ ("verb", "query") ]
       samples "vmbp_service_verb_seconds_count"
    = 100.)

let test_top_quantiles () =
  let module Top = Vmbp_service.Top in
  let samples = Top.parse expo in
  let bs =
    Top.buckets samples "vmbp_service_verb_seconds" ~label_key:"verb"
      ~label_value:"query"
  in
  check_int "three buckets incl +Inf" 3 (List.length bs);
  check_bool "p50 in the first bucket" true
    (Top.bucket_quantile bs 0.5 = 0.001);
  (* rank 95 of 100 lands past the last finite bound: clamp, not inf. *)
  check_bool "overflow clamps to last finite bound" true
    (Top.bucket_quantile bs 0.95 = 0.01);
  check_bool "empty buckets give nan" true
    (Float.is_nan (Top.bucket_quantile [] 0.5))

let test_top_render () =
  let module Top = Vmbp_service.Top in
  let samples = Top.parse expo in
  let out = Top.render ~dt:0. samples in
  check_bool "header row" true (contains out "p99");
  check_bool "request counter shown" true (contains out "requests 120");
  check_bool "hit rate computed" true (contains out "50.0%");
  check_bool "verb row present" true (contains out "query");
  (* A second identical snapshot: zero traffic in the window, so the
     quantiles fall back to the all-time distribution (no dashes). *)
  let again = Top.render ~prev:samples ~dt:2. samples in
  check_bool "idle window falls back to all-time" false (contains again "-\n")

let () =
  Alcotest.run "service"
    [
      ( "service",
        [
          Alcotest.test_case "health and stats" `Quick test_health_and_stats;
          Alcotest.test_case "query miss then hit" `Quick
            test_query_miss_then_hit;
          Alcotest.test_case "duplicates coalesce" `Quick
            test_duplicate_queries_coalesce;
          Alcotest.test_case "protocol edges" `Quick test_protocol_edges;
          Alcotest.test_case "degraded store-only" `Quick
            test_degraded_store_only;
          Alcotest.test_case "admission shed" `Quick test_admission_shed;
          Alcotest.test_case "shutdown drains in-flight" `Quick
            test_shutdown_drains_inflight;
          Alcotest.test_case "SIGTERM drains like SIGINT" `Quick
            test_sigterm_drains_like_sigint;
        ] );
      ( "observability",
        [
          Alcotest.test_case "metrics verb" `Quick test_metrics_verb;
          Alcotest.test_case "dump verb" `Quick test_dump_verb;
          Alcotest.test_case "rid echo is passive" `Quick
            test_rid_echo_passivity;
          Alcotest.test_case "trace links coalesced rids" `Quick
            test_trace_links_coalesced_rids;
        ] );
      ( "top",
        [
          Alcotest.test_case "exposition parse" `Quick test_top_parse;
          Alcotest.test_case "bucket quantiles" `Quick test_top_quantiles;
          Alcotest.test_case "render" `Quick test_top_render;
        ] );
      ( "loadgen",
        [
          Alcotest.test_case "plan determinism" `Quick
            test_loadgen_plan_determinism;
          Alcotest.test_case "reconnects under conn-drop" `Quick
            test_loadgen_reconnects_under_conn_drop;
          Alcotest.test_case "json summary" `Quick test_loadgen_json_summary;
        ] );
    ]

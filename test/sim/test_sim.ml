(* Tests of the deterministic simulation world and the whole-system
   simulate harness: virtual time, seeded-stream determinism, the
   power-cut filesystem image, simulated sockets, one full scripted
   schedule per seed, and the mutation teeth (each re-introduced past
   bug must be caught within a bounded seed budget). *)

module Sim = Vmbp_sim.Sim_env
module Env = Vmbp_sim.Env
module Simulate = Vmbp_service.Simulate

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* Pump the world's event loop like a server would, until [steps]
   selects have run or a crash unwinds. *)
let pump ?(steps = 50) w =
  let e = Sim.env w in
  try
    for _ = 1 to steps do
      ignore (e.Env.select [] [] 0.5)
    done;
    `Drained
  with Sim.Crashed -> `Crashed

let is_prefix ~of_:whole p =
  String.length p <= String.length whole
  && String.sub whole 0 (String.length p) = p

(* ------------------------------------------------------------------ *)
(* Scheduler and virtual clock *)

let test_virtual_time_jumps () =
  let w = Sim.create ~seed:1 () in
  let e = Sim.env w in
  let fired = ref [] in
  Sim.at w 5.0 (fun () -> fired := "c" :: !fired);
  Sim.at w 2.0 (fun () -> fired := "a" :: !fired);
  Sim.at w 3.5 (fun () -> fired := "b" :: !fired);
  (* Nothing ready: one idle select must jump straight to the next
     event, not crawl there in wall-clock-sized steps. *)
  ignore (e.Env.select [] [] 10.0);
  check_bool "jumped to first event" true (Sim.now w >= 2.0 && Sim.now w < 3.5);
  ignore (e.Env.select [] [] 10.0);
  ignore (e.Env.select [] [] 10.0);
  check_string "events fire in time order" "a,b,c"
    (String.concat "," (List.rev !fired));
  (* An idle select with no events pending burns exactly the timeout. *)
  let t0 = Sim.now w in
  ignore (e.Env.select [] [] 0.25);
  check_bool "idle select = timeout" true (abs_float (Sim.now w -. t0 -. 0.25) < 1e-9)

let test_seeded_stream_determinism () =
  let draws w = List.init 32 (fun _ -> Sim.rand_float w) in
  let a = draws (Sim.create ~seed:77 ()) in
  let b = draws (Sim.create ~seed:77 ()) in
  let c = draws (Sim.create ~seed:78 ()) in
  check_bool "same seed, same stream" true (a = b);
  check_bool "different seed, different stream" false (a = c)

let test_select_cap_is_liveness () =
  let w = Sim.create ~select_cap:100 ~seed:1 () in
  let e = Sim.env w in
  check_bool "spinning loop hits Stalled" true
    (try
       for _ = 1 to 200 do
         ignore (e.Env.select [] [] 0.01)
       done;
       false
     with Sim.Stalled -> true)

(* ------------------------------------------------------------------ *)
(* Power-cut filesystem image *)

let test_power_cut_keeps_synced_prefix () =
  let w = Sim.create ~seed:5 () in
  let e = Sim.env w in
  Sim.set_short_write_p w 0.;
  Env.mkdir_p e "/d";
  let fd = e.Env.openfile "/d/f" [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  assert (e.Env.write fd "hello " 0 6 = 6);
  e.Env.fsync fd;
  e.Env.fsync_dir "/d";
  assert (e.Env.write fd "world" 0 5 = 5);
  Sim.crash_at w (Sim.now w +. 0.1);
  check_bool "crash unwinds select" true (pump w = `Crashed);
  Sim.restart w;
  match e.Env.read_file "/d/f" with
  | None -> Alcotest.fail "fsynced file vanished"
  | Some c ->
      check_bool "synced prefix survives" true (is_prefix ~of_:c "hello ");
      check_bool "tail is a prefix of the unsynced write" true
        (is_prefix ~of_:"hello world" c)

let test_power_cut_rolls_back_unsynced_create () =
  let w = Sim.create ~seed:6 () in
  let e = Sim.env w in
  Env.mkdir_p e "/d";
  e.Env.fsync_dir "/d";
  (* Created and even fsynced -- but the directory entry never was:
     exactly the compaction-without-dir-fsync bug's window. *)
  let fd = e.Env.openfile "/d/late" [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  ignore (e.Env.write fd "data" 0 4);
  e.Env.fsync fd;
  Sim.crash_at w (Sim.now w +. 0.1);
  check_bool "crash unwinds select" true (pump w = `Crashed);
  Sim.restart w;
  check_bool "unsynced create rolled back" true (e.Env.read_file "/d/late" = None)

let test_op_crash_tears_a_write () =
  let w = Sim.create ~seed:7 () in
  let e = Sim.env w in
  Env.mkdir_p e "/d";
  e.Env.fsync_dir "/d";
  let fd = e.Env.openfile "/d/f" [ Unix.O_WRONLY; Unix.O_CREAT ] 0o644 in
  assert (e.Env.write fd "base," 0 5 = 5);
  e.Env.fsync fd;
  e.Env.fsync_dir "/d";
  let payload = String.make 256 'x' in
  Sim.crash_after_writes w 1;
  ignore (e.Env.write fd payload 0 (String.length payload));
  check_bool "op-crash pending" true (pump w = `Crashed);
  Sim.restart w;
  match e.Env.read_file "/d/f" with
  | None -> Alcotest.fail "file vanished"
  | Some c ->
      check_bool "synced bytes intact" true (is_prefix ~of_:c "base,");
      check_bool "torn tail is a prefix" true
        (is_prefix ~of_:("base," ^ payload) c);
      check_bool "the write really tore" true
        (String.length c < 5 + String.length payload)

(* ------------------------------------------------------------------ *)
(* Simulated sockets *)

let test_socket_roundtrip_and_crash_eof () =
  let w = Sim.create ~seed:9 () in
  let e = Sim.env w in
  check_bool "connect to nothing refused" true
    (match Sim.client_connect w "/nowhere" with
    | Error Unix.ECONNREFUSED -> true
    | _ -> false);
  let lfd = e.Env.listen "/sock" ~backlog:4 in
  let conn =
    match Sim.client_connect w "/sock" with
    | Ok c -> c
    | Error _ -> Alcotest.fail "connect refused with a listener bound"
  in
  let got = Buffer.create 16 in
  let eofs = ref 0 in
  Sim.on_conn_event w conn (function
    | Some bytes -> Buffer.add_string got bytes
    | None -> incr eofs);
  Sim.client_send w conn "ping";
  ignore (pump ~steps:20 w);
  let sfd =
    match e.Env.accept lfd with
    | Some fd -> fd
    | None -> Alcotest.fail "no accepted connection"
  in
  let buf = Bytes.create 64 in
  let n =
    let rec read_some tries =
      if tries = 0 then 0
      else
        match e.Env.read sfd buf 0 64 with
        | n -> n
        | exception Unix.Unix_error (Unix.EAGAIN, _, _) ->
            ignore (pump ~steps:5 w);
            read_some (tries - 1)
    in
    read_some 20
  in
  check_string "server read the request" "ping" (Bytes.sub_string buf 0 n);
  ignore (e.Env.write sfd "pong" 0 4);
  ignore (pump ~steps:20 w);
  check_string "client got the reply" "pong" (Buffer.contents got);
  (* A power cut EOFs the surviving client exactly once. *)
  Sim.crash_at w (Sim.now w +. 0.05);
  check_bool "crash unwinds select" true (pump w = `Crashed);
  Sim.restart w;
  ignore (pump ~steps:20 w);
  check_int "EOF delivered once" 1 !eofs

(* ------------------------------------------------------------------ *)
(* Whole-system schedules *)

let test_schedule_passes_and_replays () =
  let a = Simulate.run_seed ~check_memo:false 3 in
  Alcotest.(check (list string)) "no invariant failed" [] a.Simulate.o_failures;
  check_bool "acks checked" true (a.Simulate.o_acks > 0);
  check_int "grid schedule compared a grid" 1 a.Simulate.o_grids;
  (* Replaying the seed reproduces the schedule bit for bit. *)
  let b = Simulate.run_seed ~check_memo:false 3 in
  check_string "trace replays identically" a.Simulate.o_trace
    b.Simulate.o_trace;
  check_int "same acks" a.Simulate.o_acks b.Simulate.o_acks;
  check_int "same crashes" a.Simulate.o_crashes b.Simulate.o_crashes;
  (* The span trace is a pure function of the seed: virtual clock plus
     per-seed span-id reset make the whole Chrome JSON byte-stable. *)
  check_bool "span trace non-trivial" true
    (String.length a.Simulate.o_spans > 2);
  check_string "span trace replays byte-identically" a.Simulate.o_spans
    b.Simulate.o_spans

let test_crashing_schedule_holds_invariants () =
  (* Walk seeds until one injects a crash, then demand a clean bill. *)
  let rec hunt seed =
    if seed > 30 then Alcotest.fail "no seed crashed within budget"
    else
      let o = Simulate.run_seed ~check_memo:false seed in
      Alcotest.(check (list string))
        (Printf.sprintf "seed %d holds every invariant" seed)
        [] o.Simulate.o_failures;
      if o.Simulate.o_crashes > 0 then o else hunt (seed + 1)
  in
  let o = hunt 1 in
  check_bool "store survived a power cut mid-schedule" true
    (o.Simulate.o_crashes > 0 && o.Simulate.o_acks > 0)

(* Mutation teeth: each re-introduced bug must be caught within a
   bounded seed budget, and the catching seed must replay. *)
let catch_within mutation ~check_memo budget =
  let rec hunt seed =
    if seed > budget then
      Alcotest.failf "mutation %s not caught within %d seeds"
        (Simulate.mutation_name mutation)
        budget
    else
      let o = Simulate.run_seed ~mutation ~check_memo seed in
      if o.Simulate.o_failures <> [] then seed else hunt (seed + 1)
  in
  let seed = hunt 1 in
  let again = Simulate.run_seed ~mutation ~check_memo seed in
  check_bool "catching seed replays the catch" true
    (again.Simulate.o_failures <> [])

let test_teeth_ack_before_fsync () =
  catch_within Simulate.Ack_before_fsync ~check_memo:false 80

let test_teeth_no_dir_fsync () =
  catch_within Simulate.No_dir_fsync ~check_memo:false 150

let test_teeth_memo_race () = catch_within Simulate.Memo_race ~check_memo:true 5

let () =
  Alcotest.run "sim"
    [
      ( "world",
        [
          Alcotest.test_case "virtual time jumps" `Quick test_virtual_time_jumps;
          Alcotest.test_case "seeded stream determinism" `Quick
            test_seeded_stream_determinism;
          Alcotest.test_case "select cap is liveness" `Quick
            test_select_cap_is_liveness;
        ] );
      ( "power-cut fs",
        [
          Alcotest.test_case "synced prefix survives" `Quick
            test_power_cut_keeps_synced_prefix;
          Alcotest.test_case "unsynced create rolled back" `Quick
            test_power_cut_rolls_back_unsynced_create;
          Alcotest.test_case "op-crash tears a write" `Quick
            test_op_crash_tears_a_write;
        ] );
      ( "sockets",
        [
          Alcotest.test_case "round-trip and crash EOF" `Quick
            test_socket_roundtrip_and_crash_eof;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "passes and replays" `Slow
            test_schedule_passes_and_replays;
          Alcotest.test_case "crashes hold invariants" `Slow
            test_crashing_schedule_holds_invariants;
        ] );
      ( "mutation teeth",
        [
          Alcotest.test_case "ack-before-fsync caught" `Slow
            test_teeth_ack_before_fsync;
          Alcotest.test_case "no-dir-fsync caught" `Slow
            test_teeth_no_dir_fsync;
          Alcotest.test_case "memo race caught" `Slow test_teeth_memo_race;
        ] );
    ]

(* Tests for the observability library: the metrics registry (bucket
   boundary semantics, int64 counter accumulation, cross-domain updates),
   the span recorder (nesting, ordering, exception safety, the Chrome
   trace-event rendering) and the attribution tables. *)

open Vmbp_obs

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  nl = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Registry: counters *)

let test_counter_basics () =
  Registry.reset ();
  let c = Registry.counter "t.basic" in
  Registry.add c 3;
  Registry.add c 4;
  Alcotest.(check int64) "sum" 7L (Registry.counter_value c);
  (* Re-fetching by name returns the same instrument. *)
  let c' = Registry.counter "t.basic" in
  Registry.add c' 1;
  Alcotest.(check int64) "shared" 8L (Registry.counter_value c);
  Alcotest.(check (option int64)) "find" (Some 8L)
    (Registry.find_counter "t.basic");
  Alcotest.(check (option int64)) "find missing" None
    (Registry.find_counter "t.absent")

let test_counter_overflow () =
  Registry.reset ();
  let c = Registry.counter "t.overflow" in
  (* Two native max_int increments exceed any int but must accumulate
     exactly in the int64 domain: 2 * (2^62 - 1). *)
  Registry.add c max_int;
  Registry.add c max_int;
  let expected = Int64.mul 2L (Int64.of_int max_int) in
  Alcotest.(check int64) "no wrap" expected (Registry.counter_value c);
  Registry.add_int64 c 5L;
  Alcotest.(check int64) "int64 add" (Int64.add expected 5L)
    (Registry.counter_value c)

let test_counter_concurrent () =
  Registry.reset ();
  let c = Registry.counter "t.concurrent" in
  let per_domain = 10_000 and domains = 4 in
  let worker () =
    for _ = 1 to per_domain do
      Registry.add c 1
    done
  in
  let ds = Array.init domains (fun _ -> Domain.spawn worker) in
  Array.iter Domain.join ds;
  (* The mutex must make every increment land: a lost update shows up as
     an exact-count failure here. *)
  Alcotest.(check int64) "no lost increments"
    (Int64.of_int (domains * per_domain))
    (Registry.counter_value c)

let test_kind_clash () =
  Registry.reset ();
  let (_ : Registry.counter) = Registry.counter "t.clash" in
  match Registry.gauge "t.clash" with
  | _ -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument _ -> ()

(* ------------------------------------------------------------------ *)
(* Registry: gauges and histograms *)

let test_gauge () =
  Registry.reset ();
  let g = Registry.gauge "t.gauge" in
  Registry.gauge_add g 2.;
  Registry.gauge_add g 3.;
  Registry.gauge_add g (-4.);
  Alcotest.(check (float 0.)) "value" 1. (Registry.gauge_value g);
  Alcotest.(check (float 0.)) "high-water" 5. (Registry.gauge_max g);
  Registry.gauge_set g 10.;
  Alcotest.(check (float 0.)) "set" 10. (Registry.gauge_value g);
  Alcotest.(check (float 0.)) "max follows set" 10. (Registry.gauge_max g)

let test_histogram_boundaries () =
  Registry.reset ();
  let h = Registry.histogram ~bounds:[| 1.; 2.; 4. |] "t.hist" in
  (* le-bucket semantics: v lands in the first bucket with v <= bound. *)
  Registry.observe h 0.5;
  (* exactly on a bound stays in that bound's bucket *)
  Registry.observe h 1.0;
  (* just past a bound falls through to the next *)
  Registry.observe h 1.0000001;
  Registry.observe h 4.0;
  (* past the last bound lands in the overflow bucket *)
  Registry.observe h 5.0;
  let bounds, counts, sum, count = Registry.histogram_snapshot h in
  Alcotest.(check (array (float 0.))) "bounds" [| 1.; 2.; 4. |] bounds;
  Alcotest.(check (array int)) "counts" [| 2; 1; 1; 1 |] counts;
  Alcotest.(check int) "count" 5 count;
  Alcotest.(check (float 1e-6)) "sum" 11.5000001 sum

let test_histogram_rejects_bad_bounds () =
  Registry.reset ();
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Registry.histogram: bounds must be strictly increasing")
    (fun () ->
      ignore (Registry.histogram ~bounds:[| 1.; 1. |] "t.hist-bad"));
  Alcotest.check_raises "empty"
    (Invalid_argument "Registry.histogram: bounds must be non-empty")
    (fun () -> ignore (Registry.histogram ~bounds:[||] "t.hist-empty"))

let test_reset_keeps_handles () =
  Registry.reset ();
  let c = Registry.counter "t.reset" in
  let h = Registry.histogram ~bounds:[| 1. |] "t.reset-hist" in
  Registry.add c 7;
  Registry.observe h 0.5;
  Registry.reset ();
  Alcotest.(check int64) "counter zeroed" 0L (Registry.counter_value c);
  let _, counts, _, count = Registry.histogram_snapshot h in
  Alcotest.(check int) "histogram zeroed" 0 count;
  Alcotest.(check (array int)) "buckets zeroed" [| 0; 0 |] counts;
  (* The old handle still works after the reset. *)
  Registry.add c 1;
  Alcotest.(check int64) "handle alive" 1L (Registry.counter_value c)

let test_histogram_quantile () =
  Registry.reset ();
  let h = Registry.histogram ~bounds:[| 1.; 2.; 4. |] "t.quant" in
  (* No samples: nan, not an arbitrary bound. *)
  Alcotest.(check bool) "empty is nan" true
    (Float.is_nan (Registry.histogram_quantile h 0.5));
  Registry.observe h 0.5;
  Registry.observe h 1.5;
  Registry.observe h 3.;
  Registry.observe h 3.5;
  (* Quantiles interpolate linearly within the target's bucket. *)
  Alcotest.(check (float 1e-9)) "p25" 1. (Registry.histogram_quantile h 0.25);
  Alcotest.(check (float 1e-9)) "p50" 2. (Registry.histogram_quantile h 0.5);
  Alcotest.(check (float 1e-9)) "p99" 3.96
    (Registry.histogram_quantile h 0.99);
  (* Overflow samples clamp to the last finite bound rather than inventing
     an infinite latency. *)
  Registry.observe h 100.;
  Registry.observe h 200.;
  Registry.observe h 300.;
  Alcotest.(check (float 0.)) "overflow clamps" 4.
    (Registry.histogram_quantile h 0.99)

let test_prometheus_exposition () =
  Registry.reset ();
  let c = Registry.counter "t.prom.count" in
  Registry.add c 7;
  let g = Registry.gauge "t.prom.gauge" in
  Registry.gauge_set g 3.5;
  Registry.gauge_set g 2.0;
  let h =
    Registry.histogram ~bounds:[| 1.; 10. |] "t.prom.lat{verb=query}"
  in
  Registry.observe h 0.5;
  Registry.observe h 20.;
  let p = Registry.to_prometheus () in
  (* Names mangle to the vmbp_ namespace; counters gain _total. *)
  Alcotest.(check bool) "counter" true
    (contains p "vmbp_t_prom_count_total 7");
  Alcotest.(check bool) "counter TYPE" true
    (contains p "# TYPE vmbp_t_prom_count_total counter");
  Alcotest.(check bool) "gauge value" true (contains p "vmbp_t_prom_gauge 2");
  Alcotest.(check bool) "gauge high-water" true
    (contains p "vmbp_t_prom_gauge_max 3.5");
  (* The {k=v} suffix of the instrument name splits into real labels. *)
  Alcotest.(check bool) "labelled bucket" true
    (contains p "vmbp_t_prom_lat_bucket{verb=\"query\",le=\"1\"} 1");
  Alcotest.(check bool) "+Inf bucket" true
    (contains p "vmbp_t_prom_lat_bucket{verb=\"query\",le=\"+Inf\"} 2");
  Alcotest.(check bool) "hist count" true
    (contains p "vmbp_t_prom_lat_count{verb=\"query\"} 2");
  (* Equal states expose byte-identically. *)
  Alcotest.(check string) "deterministic" p (Registry.to_prometheus ())

let test_registry_json () =
  Registry.reset ();
  let c = Registry.counter "t.json-counter" in
  Registry.add c 42;
  let g = Registry.gauge "t.json-gauge" in
  Registry.gauge_set g 2.5;
  let h = Registry.histogram ~bounds:[| 1.; 10. |] "t.json-hist" in
  Registry.observe h 3.;
  let j = Registry.to_json () in
  Alcotest.(check bool) "schema" true (contains j "\"schema\":\"vmbp-metrics/1\"");
  Alcotest.(check bool) "counter" true (contains j "\"t.json-counter\":42");
  Alcotest.(check bool) "gauge" true (contains j "\"t.json-gauge\":{\"value\":2.5");
  Alcotest.(check bool) "hist counts" true (contains j "\"counts\":[0,1,0]");
  (* Equal states render byte-identically (sorted names, no timestamps). *)
  Alcotest.(check string) "deterministic" j (Registry.to_json ())

(* ------------------------------------------------------------------ *)
(* Spans *)

let test_span_disabled_is_passthrough () =
  Span.disable ();
  let r = Span.with_ ~name:"ignored" (fun () -> 41 + 1) in
  Alcotest.(check int) "result" 42 r;
  Alcotest.(check int) "nothing recorded" 0 (Span.count ())

let test_span_nesting_and_order () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  let r =
    Span.with_ ~name:"outer" ~args:[ ("k", "v") ] (fun () ->
        let a = Span.with_ ~name:"inner-a" (fun () -> 1) in
        let b = Span.with_ ~name:"inner-b" (fun () -> 2) in
        a + b)
  in
  Alcotest.(check int) "result" 3 r;
  let ev = Span.events () in
  Alcotest.(check (list string)) "completion order"
    [ "inner-a"; "inner-b"; "outer" ]
    (List.map (fun e -> e.Span.name) ev);
  let outer = List.nth ev 2 and ia = List.nth ev 0 and ib = List.nth ev 1 in
  (* Time containment is what Perfetto uses to infer nesting. *)
  Alcotest.(check bool) "a starts inside outer" true (ia.Span.ts >= outer.Span.ts);
  Alcotest.(check bool) "a ends inside outer" true
    (ia.Span.ts +. ia.Span.dur <= outer.Span.ts +. outer.Span.dur +. 1e-9);
  Alcotest.(check bool) "b after a" true (ib.Span.ts >= ia.Span.ts +. ia.Span.dur -. 1e-9);
  Alcotest.(check (list (pair string string))) "args" [ ("k", "v") ] outer.Span.args

let test_span_exception_safety () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  (match Span.with_ ~name:"failing" (fun () -> failwith "boom") with
  | _ -> Alcotest.fail "expected Failure"
  | exception Failure m -> Alcotest.(check string) "reraised" "boom" m);
  Alcotest.(check int) "span recorded anyway" 1 (Span.count ())

let test_span_json () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  ignore (Span.with_ ~name:"phase" ~args:[ ("cell", "w/x\"y") ] (fun () -> ()));
  let j = Span.to_json () in
  Alcotest.(check bool) "traceEvents" true (contains j "\"traceEvents\":[");
  Alcotest.(check bool) "complete event" true (contains j "\"ph\":\"X\"");
  Alcotest.(check bool) "name" true (contains j "\"name\":\"phase\"");
  Alcotest.(check bool) "args escaped" true (contains j "\"cell\":\"w/x\\\"y\"");
  Alcotest.(check bool) "pid" true (contains j "\"pid\":1")

let test_span_enable_clears () =
  Span.enable ();
  ignore (Span.with_ ~name:"old" (fun () -> ()));
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  Alcotest.(check int) "cleared" 0 (Span.count ())

let test_span_linkage () =
  Span.enable ();
  Fun.protect ~finally:Span.disable @@ fun () ->
  Span.with_ ~name:"outer" ~trace:"r1" (fun () ->
      Span.with_ ~name:"inner" (fun () -> ()));
  Span.interval ~name:"flush" ~trace:"r1" 0.1 0.2;
  let ev = Span.events () in
  let find n = List.find (fun e -> e.Span.name = n) ev in
  let outer = find "outer" and inner = find "inner" and fl = find "flush" in
  (* Ids are allocated at span start from a counter reset by enable, so a
     deterministic schedule yields deterministic ids: outer opens first. *)
  Alcotest.(check int) "outer id" 0 outer.Span.id;
  Alcotest.(check int) "inner id" 1 inner.Span.id;
  Alcotest.(check int) "outer is a root" (-1) outer.Span.parent;
  Alcotest.(check int) "inner's parent is outer" outer.Span.id
    inner.Span.parent;
  Alcotest.(check string) "trace threads" "r1" outer.Span.trace;
  Alcotest.(check string) "inner unlinked" "" inner.Span.trace;
  (* interval outside any with_ scope is a root too. *)
  Alcotest.(check int) "interval parent" (-1) fl.Span.parent;
  Alcotest.(check bool) "interval duration" true
    (Float.abs (fl.Span.dur -. 0.1) < 1e-9);
  (* The linkage renders as string-valued args (trace.schema.json keeps
     args values strings for stock viewers). *)
  let j = Span.to_json () in
  Alcotest.(check bool) "span arg" true (contains j "\"span\":\"0\"");
  Alcotest.(check bool) "parent arg" true (contains j "\"parent\":\"0\"");
  Alcotest.(check bool) "trace arg" true (contains j "\"trace\":\"r1\"")

let test_span_clock () =
  Span.set_clock (fun () -> 42.0);
  Span.enable ();
  Fun.protect
    ~finally:(fun () ->
      Span.disable ();
      Span.set_clock Unix.gettimeofday)
  @@ fun () ->
  Alcotest.(check (float 0.)) "now reads the clock" 42.0 (Span.now ());
  Span.with_ ~name:"tick" (fun () -> ());
  let e = List.hd (Span.events ()) in
  (* ts is relative to the enable-time origin, both on the same clock. *)
  Alcotest.(check (float 0.)) "origin anchored" 0.0 e.Span.ts;
  Alcotest.(check (float 0.)) "zero duration" 0.0 e.Span.dur

(* ------------------------------------------------------------------ *)
(* Flight recorder *)

let test_flight_ring () =
  Flight.reset ();
  Alcotest.(check int) "empty" 0 (Flight.recorded ());
  Flight.note ~kind:"accept" "conn=1";
  Flight.note ~kind:"enqueue" "rid=r1";
  Alcotest.(check int) "recorded" 2 (Flight.recorded ());
  (match Flight.entries () with
  | [ a; b ] ->
      Alcotest.(check int) "seq 0" 0 a.Flight.seq;
      Alcotest.(check int) "seq 1" 1 b.Flight.seq;
      Alcotest.(check string) "kind" "accept" a.Flight.kind;
      Alcotest.(check string) "detail" "rid=r1" b.Flight.detail
  | l -> Alcotest.failf "unexpected entry count %d" (List.length l));
  let j = Flight.to_json ~reason:"degraded" () in
  Alcotest.(check bool) "schema" true (contains j "\"schema\":\"vmbp-flight/1\"");
  Alcotest.(check bool) "reason" true (contains j "\"reason\":\"degraded\"");
  Alcotest.(check bool) "dropped" true (contains j "\"dropped\":0");
  Flight.reset ();
  Alcotest.(check int) "reset clears" 0 (Flight.recorded ())

let test_flight_wraparound () =
  Flight.reset ();
  let extra = 100 in
  for i = 0 to Flight.capacity + extra - 1 do
    Flight.note ~kind:"tick" (string_of_int i)
  done;
  Alcotest.(check int) "total recorded"
    (Flight.capacity + extra)
    (Flight.recorded ());
  let es = Flight.entries () in
  Alcotest.(check int) "ring is full" Flight.capacity (List.length es);
  (* The oldest entries were overwritten: what survives is exactly the
     most recent [capacity] notes, in sequence order. *)
  let first = List.hd es and last = List.nth es (List.length es - 1) in
  Alcotest.(check int) "oldest surviving seq" extra first.Flight.seq;
  Alcotest.(check int) "newest seq"
    (Flight.capacity + extra - 1)
    last.Flight.seq;
  Alcotest.(check bool) "dropped counted" true
    (contains (Flight.to_json ()) (Printf.sprintf "\"dropped\":%d" extra));
  Flight.reset ()

let test_flight_concurrent () =
  Flight.reset ();
  let per = 1000 and domains = 4 in
  let ds =
    Array.init domains (fun d ->
        Domain.spawn (fun () ->
            for i = 1 to per do
              Flight.note ~kind:"race" (Printf.sprintf "%d-%d" d i)
            done))
  in
  Array.iter Domain.join ds;
  Alcotest.(check int) "no lost notes" (per * domains) (Flight.recorded ());
  (* Sequence numbers of the survivors are unique and ordered. *)
  let seqs = List.map (fun e -> e.Flight.seq) (Flight.entries ()) in
  Alcotest.(check (list int)) "unique ordered" (List.sort_uniq compare seqs)
    seqs;
  Flight.reset ()

(* ------------------------------------------------------------------ *)
(* Attribution *)

let test_attribution_buckets () =
  let t = Attribution.create () in
  Attribution.note t ~opcode:3 ~branch:100 ~set:0 Attribution.Cold;
  Attribution.note t ~opcode:3 ~branch:100 ~set:0 Attribution.Wrong_target;
  Attribution.note t ~opcode:3 ~branch:100 ~set:0 Attribution.Wrong_target;
  Attribution.note t ~opcode:5 ~branch:200 ~set:1 (Attribution.Conflict 3);
  Alcotest.(check int) "total" 4 (Attribution.total t);
  (match Attribution.by_opcode t with
  | [ (3, b3); (5, b5) ] ->
      Alcotest.(check int) "op3 cold" 1 b3.Attribution.cold;
      Alcotest.(check int) "op3 wrong" 2 b3.Attribution.wrong;
      Alcotest.(check int) "op3 total" 3 (Attribution.bucket_total b3);
      Alcotest.(check int) "op5 conflict" 1 b5.Attribution.conflict
  | l -> Alcotest.failf "unexpected by_opcode shape (%d rows)" (List.length l));
  Alcotest.(check (list (pair (triple int int int) int)))
    "conflict pairs"
    [ ((5, 3, 1), 1) ]
    (Attribution.conflicts t)

let test_attribution_sets () =
  let t = Attribution.create () in
  Attribution.note t ~opcode:1 ~branch:10 ~set:0 Attribution.Cold;
  Attribution.note t ~opcode:1 ~branch:10 ~set:0 Attribution.Wrong_target;
  Attribution.note t ~opcode:2 ~branch:20 ~set:2 Attribution.Cold;
  (* set = -1 (no set structure) counts toward the total but not the maps *)
  Attribution.note t ~opcode:9 ~branch:30 ~set:(-1) Attribution.Cold;
  Alcotest.(check int) "total includes setless" 4 (Attribution.total t);
  Alcotest.(check (array int)) "events per set" [| 2; 0; 1 |]
    (Attribution.set_counts t ~nsets:3);
  (* branch 10 hit set 0 twice but is one distinct address *)
  Alcotest.(check (array int)) "occupancy" [| 1; 0; 1 |]
    (Attribution.set_occupancy t ~nsets:3)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "obs"
    [
      ( "registry",
        [
          Alcotest.test_case "counter basics" `Quick test_counter_basics;
          Alcotest.test_case "counter int64 accumulation" `Quick
            test_counter_overflow;
          Alcotest.test_case "concurrent domain updates" `Quick
            test_counter_concurrent;
          Alcotest.test_case "instrument kind clash" `Quick test_kind_clash;
          Alcotest.test_case "gauge value and high-water" `Quick test_gauge;
          Alcotest.test_case "histogram bucket boundaries" `Quick
            test_histogram_boundaries;
          Alcotest.test_case "histogram rejects bad bounds" `Quick
            test_histogram_rejects_bad_bounds;
          Alcotest.test_case "reset keeps handles" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "quantiles: empty, interpolation, overflow"
            `Quick test_histogram_quantile;
          Alcotest.test_case "Prometheus exposition" `Quick
            test_prometheus_exposition;
          Alcotest.test_case "JSON rendering" `Quick test_registry_json;
        ] );
      ( "span",
        [
          Alcotest.test_case "disabled is pass-through" `Quick
            test_span_disabled_is_passthrough;
          Alcotest.test_case "nesting and ordering" `Quick
            test_span_nesting_and_order;
          Alcotest.test_case "records on exception" `Quick
            test_span_exception_safety;
          Alcotest.test_case "Chrome trace JSON" `Quick test_span_json;
          Alcotest.test_case "enable clears" `Quick test_span_enable_clears;
          Alcotest.test_case "ids, parents and trace linkage" `Quick
            test_span_linkage;
          Alcotest.test_case "substitutable clock" `Quick test_span_clock;
        ] );
      ( "flight",
        [
          Alcotest.test_case "ring bookkeeping and JSON" `Quick
            test_flight_ring;
          Alcotest.test_case "wraparound keeps the newest" `Quick
            test_flight_wraparound;
          Alcotest.test_case "concurrent notes" `Quick test_flight_concurrent;
        ] );
      ( "attribution",
        [
          Alcotest.test_case "bucket bookkeeping" `Quick
            test_attribution_buckets;
          Alcotest.test_case "set maps" `Quick test_attribution_sets;
        ] );
    ]

(* Unit and property tests for the simulated hardware substrate. *)

open Vmbp_machine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* -------------------------------------------------------------------- *)
(* BTB *)

let test_btb_ideal_last_target () =
  let btb = Btb.create Btb.ideal in
  (* First access: compulsory miss. *)
  check_bool "cold miss" false (Btb.access btb ~branch:100 ~target:1);
  check_bool "repeat hit" true (Btb.access btb ~branch:100 ~target:1);
  (* Target change: miss, then the new target is predicted. *)
  check_bool "changed target" false (Btb.access btb ~branch:100 ~target:2);
  check_bool "new target hit" true (Btb.access btb ~branch:100 ~target:2)

let test_btb_alternating_always_misses () =
  let btb = Btb.create Btb.ideal in
  ignore (Btb.access btb ~branch:7 ~target:1);
  let misses = ref 0 in
  for i = 1 to 100 do
    let target = if i mod 2 = 0 then 1 else 2 in
    if not (Btb.access btb ~branch:7 ~target) then incr misses
  done;
  check_int "alternating targets never predict" 100 !misses

let test_btb_two_bit_counters_tolerate_glitch () =
  (* With two-bit counters, a single diverging execution must not evict a
     well-established target. *)
  let btb = Btb.create (Btb.with_counters ~entries:64 ~associativity:4) in
  for _ = 1 to 4 do
    ignore (Btb.access btb ~branch:8 ~target:1)
  done;
  check_bool "glitch mispredicts" false (Btb.access btb ~branch:8 ~target:2);
  (* The stored target must still be 1. *)
  check_bool "target survives glitch" true (Btb.access btb ~branch:8 ~target:1)

let test_btb_classic_replaces_immediately () =
  let btb = Btb.create (Btb.classic ~entries:64 ~associativity:4) in
  for _ = 1 to 4 do
    ignore (Btb.access btb ~branch:8 ~target:1)
  done;
  ignore (Btb.access btb ~branch:8 ~target:2);
  check_bool "classic BTB follows the glitch" true
    (Btb.access btb ~branch:8 ~target:2)

let test_btb_capacity_conflicts () =
  (* A direct-mapped 4-entry BTB thrashes when 8 branches alias. *)
  let btb = Btb.create (Btb.classic ~entries:4 ~associativity:1) in
  let all_hit = ref true in
  for round = 1 to 3 do
    for b = 0 to 7 do
      let branch = b * 64 in
      let hit = Btb.access btb ~branch ~target:(b + 1) in
      if round > 1 && not hit then all_hit := false
    done
  done;
  check_bool "conflicts cause misses" false !all_hit;
  (* An unbounded BTB on the same stream predicts perfectly after warmup. *)
  let ideal = Btb.create Btb.ideal in
  let ok = ref true in
  for round = 1 to 3 do
    for b = 0 to 7 do
      let hit = Btb.access ideal ~branch:(b * 64) ~target:(b + 1) in
      if round > 1 && not hit then ok := false
    done
  done;
  check_bool "unbounded BTB predicts all" true !ok

let test_btb_rejects_bad_config () =
  let rejects name cfg =
    match Btb.create cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": Btb.create must reject this config")
  in
  rejects "negative entries"
    { Btb.entries = -1; associativity = 1; two_bit_counters = false };
  rejects "zero associativity"
    { Btb.entries = 64; associativity = 0; two_bit_counters = false };
  rejects "negative associativity"
    { Btb.entries = 64; associativity = -4; two_bit_counters = true };
  (* entries = 0 stays the unbounded (idealised) sentinel, whatever the
     associativity field says. *)
  ignore (Btb.create Btb.ideal);
  ignore
    (Btb.create { Btb.entries = 0; associativity = 0; two_bit_counters = false })

let test_btb_predict_readonly () =
  let btb = Btb.create Btb.ideal in
  Alcotest.(check (option int)) "empty" None (Btb.predict btb ~branch:5);
  ignore (Btb.access btb ~branch:5 ~target:42);
  Alcotest.(check (option int)) "stored" (Some 42) (Btb.predict btb ~branch:5);
  Alcotest.(check (option int))
    "predict does not update" (Some 42)
    (Btb.predict btb ~branch:5)

let test_btb_reset () =
  let btb = Btb.create (Btb.classic ~entries:16 ~associativity:2) in
  ignore (Btb.access btb ~branch:4 ~target:9);
  Btb.reset btb;
  check_bool "reset forgets" false (Btb.access btb ~branch:4 ~target:9)

let prop_btb_repeating_stream_predicts =
  QCheck.Test.make ~name:"btb: any repeated (branch,target) stream is predicted"
    ~count:50
    QCheck.(list_of_size Gen.(1 -- 20) (pair (int_bound 1000) (int_bound 1000)))
    (fun pairs ->
      QCheck.assume (pairs <> []);
      (* Deduplicate branches: one fixed target per branch. *)
      let tbl = Hashtbl.create 16 in
      List.iter
        (fun (b, t) -> if not (Hashtbl.mem tbl b) then Hashtbl.add tbl b t)
        pairs;
      let stream = Hashtbl.fold (fun b t acc -> (b, t) :: acc) tbl [] in
      let btb = Btb.create Btb.ideal in
      (* Warm up. *)
      List.iter (fun (b, t) -> ignore (Btb.access btb ~branch:b ~target:t)) stream;
      (* Every subsequent access must predict correctly. *)
      List.for_all (fun (b, t) -> Btb.access btb ~branch:b ~target:t) stream)

(* -------------------------------------------------------------------- *)
(* Two-level predictor and case block table *)

let test_two_level_pattern () =
  (* The sequence of targets 1,2,1,2,... at one branch is history-
     predictable for a two-level predictor but not for a BTB. *)
  let p = Two_level.create Two_level.default in
  let misses = ref 0 in
  for i = 1 to 400 do
    let target = if i mod 2 = 0 then 0x100 else 0x200 in
    if not (Two_level.access p ~branch:7 ~target) then incr misses
  done;
  (* Allow warmup; steady state must be nearly perfect. *)
  check_bool
    (Printf.sprintf "two-level learns alternation (%d misses)" !misses)
    true (!misses < 40)

let test_case_block_table () =
  let t = Case_block_table.create ~entries:64 in
  (* Opcode identifies the target exactly: a switch interpreter pattern. *)
  ignore (Case_block_table.access t ~opcode:3 ~target:0x30);
  ignore (Case_block_table.access t ~opcode:4 ~target:0x40);
  check_bool "opcode 3" true (Case_block_table.access t ~opcode:3 ~target:0x30);
  check_bool "opcode 4" true (Case_block_table.access t ~opcode:4 ~target:0x40)

let test_predictor_bounds () =
  let perfect = Predictor.create Predictor.Perfect in
  let never = Predictor.create Predictor.Never in
  check_bool "perfect" true
    (Predictor.access perfect ~branch:1 ~target:2 ~opcode:0);
  check_bool "never" false (Predictor.access never ~branch:1 ~target:2 ~opcode:0)

(* -------------------------------------------------------------------- *)
(* I-cache *)

let fetch_counts icache ~addr ~bytes =
  let hits = ref 0 and misses = ref 0 in
  Icache.fetch icache ~addr ~bytes ~hits ~misses;
  (!hits, !misses)

let test_icache_basic () =
  let c =
    Icache.create
      (Icache.make_config ~size_bytes:1024 ~line_bytes:32 ~associativity:2)
  in
  let _, m1 = fetch_counts c ~addr:0 ~bytes:32 in
  check_int "cold miss" 1 m1;
  let h2, m2 = fetch_counts c ~addr:0 ~bytes:32 in
  check_int "warm hit" 1 h2;
  check_int "no miss" 0 m2

let test_icache_straddles_lines () =
  let c =
    Icache.create
      (Icache.make_config ~size_bytes:1024 ~line_bytes:32 ~associativity:2)
  in
  let _, m = fetch_counts c ~addr:30 ~bytes:8 in
  check_int "fetch across a boundary touches two lines" 2 m

let test_icache_thrash () =
  (* Working set larger than the cache: repeated sweeps keep missing. *)
  let c =
    Icache.create
      (Icache.make_config ~size_bytes:256 ~line_bytes:32 ~associativity:1)
  in
  let misses = ref 0 and hits = ref 0 in
  for _ = 1 to 4 do
    (* Sweep a 1KB working set through a 256B cache: every set sees four
       competing lines, so a direct-mapped cache misses on every access. *)
    let addr = ref 0 in
    while !addr < 1024 do
      Icache.fetch c ~addr:!addr ~bytes:32 ~hits ~misses;
      addr := !addr + 32
    done
  done;
  check_bool "sweeping working set misses" true (!misses > !hits)

let test_icache_infinite_never_misses () =
  let c = Icache.create Icache.infinite in
  let misses = ref 0 and hits = ref 0 in
  for i = 0 to 999 do
    Icache.fetch c ~addr:(i * 4096) ~bytes:64 ~hits ~misses
  done;
  check_int "infinite cache" 0 !misses

(* Memo-free reference model of the same set-associative LRU cache, for the
   fetch-memo regression test below: per-line touches with a global clock
   and per-way stamps, no last-line shortcut. *)
module Ref_icache = struct
  type t = {
    line_bytes : int;
    assoc : int;
    nsets : int;
    tags : int array;
    stamps : int array;
    mutable tick : int;
  }

  let create (cfg : Icache.config) =
    let nsets = cfg.Icache.size_bytes / cfg.Icache.line_bytes
                / cfg.Icache.associativity in
    {
      line_bytes = cfg.Icache.line_bytes;
      assoc = cfg.Icache.associativity;
      nsets;
      tags = Array.make (nsets * cfg.Icache.associativity) (-1);
      stamps = Array.make (nsets * cfg.Icache.associativity) 0;
      tick = 0;
    }

  let touch t line =
    let base = line mod t.nsets * t.assoc in
    t.tick <- t.tick + 1;
    let hit = ref false in
    for i = 0 to t.assoc - 1 do
      if t.tags.(base + i) = line then begin
        t.stamps.(base + i) <- t.tick;
        hit := true
      end
    done;
    if not !hit then begin
      let victim = ref 0 in
      for i = 1 to t.assoc - 1 do
        if t.stamps.(base + i) < t.stamps.(base + !victim) then victim := i
      done;
      t.tags.(base + !victim) <- line;
      t.stamps.(base + !victim) <- t.tick
    end;
    !hit

  let fetch t ~addr ~bytes ~hits ~misses =
    let first = addr / t.line_bytes in
    let last = (addr + max 1 bytes - 1) / t.line_bytes in
    for line = first to last do
      if touch t line then incr hits else incr misses
    done
end

(* Regression test for the fetch-memo LRU staleness: a memo hit must advance
   the LRU clock and refresh the hot line's stamp exactly like the full-scan
   path, so the memoized cache stays in lock-step with a memo-free model
   through eviction decisions.  The clock assertion fails on the stale-memo
   code (memo hits used to leave the tick behind by one per hit). *)
let test_icache_memo_lru_refresh () =
  (* 2-way, 4 sets: lines 0, 4, 8, ... all compete for set 0. *)
  let cfg = Icache.make_config ~size_bytes:256 ~line_bytes:32 ~associativity:2 in
  let c = Icache.create cfg in
  let r = Ref_icache.create cfg in
  let hits = ref 0 and misses = ref 0 in
  let rhits = ref 0 and rmisses = ref 0 in
  let fetch ~addr ~bytes =
    Icache.fetch c ~addr ~bytes ~hits ~misses;
    Ref_icache.fetch r ~addr ~bytes ~hits:rhits ~misses:rmisses;
    check_int "hits track the memo-free reference" !rhits !hits;
    check_int "misses track the memo-free reference" !rmisses !misses;
    (* every access advances the LRU clock, memo hit or not *)
    check_int "clock counts every line access" (!hits + !misses)
      (Icache.clock c)
  in
  (* Straight-line re-fetches of line 0 engage the memo... *)
  for _ = 1 to 8 do
    fetch ~addr:0 ~bytes:16
  done;
  (* ...then an eviction tournament in set 0: line 4 joins, line 8 must
     evict the least recently used of {0, 4}. *)
  fetch ~addr:128 ~bytes:16;
  (* refresh line 0 via the memo path only *)
  fetch ~addr:8 ~bytes:8;
  fetch ~addr:8 ~bytes:8;
  fetch ~addr:256 ~bytes:16;
  (* line 0 must still be resident: line 8 had to evict line 4 *)
  check_bool "memo-refreshed line survives eviction" true
    (Icache.resident c ~line:0);
  check_bool "stale line was the victim" false (Icache.resident c ~line:4);
  (* and a randomized soak across sets, straddling fetches included *)
  let rng = Random.State.make [| 0x1CACE |] in
  for _ = 1 to 2000 do
    let addr = Random.State.int rng 2048 in
    let bytes = 1 + Random.State.int rng 64 in
    fetch ~addr ~bytes
  done

let test_btb_set_index_distribution () =
  (* Dispatch sites are byte addresses a few words apart; dropping the low
     address bits must spread neighbouring branches over many sets instead
     of piling them into a few. *)
  let btb = Btb.create (Btb.classic ~entries:512 ~associativity:4) in
  let distinct stride n =
    let seen = Hashtbl.create 64 in
    for k = 0 to n - 1 do
      Hashtbl.replace seen (Btb.set_index btb (0x4000 + (k * stride))) ()
    done;
    Hashtbl.length seen
  in
  (* 128 sets: 64 sites 16 bytes apart cover 32 sets, 4-byte spacing is
     conflict-free up to the set count. *)
  check_int "16-byte stride spreads" 32 (distinct 16 64);
  check_int "word stride is conflict-free" 64 (distinct 4 64);
  check_int "full coverage at set count" 128 (distinct 4 128);
  (* indices stay in range *)
  for k = 0 to 511 do
    let s = Btb.set_index btb (k * 12) in
    check_bool "index in range" true (s >= 0 && s < 128)
  done

(* -------------------------------------------------------------------- *)
(* Cost model and allocator *)

let test_cycles_model () =
  let m = Metrics.create () in
  m.Metrics.native_instrs <- 1000;
  m.Metrics.mispredicts <- 10;
  m.Metrics.icache_misses <- 5;
  let cpu = Cpu_model.pentium4_northwood in
  let expected =
    (1000. /. cpu.Cpu_model.ipc)
    +. float_of_int (10 * cpu.Cpu_model.mispredict_penalty)
    +. float_of_int (5 * cpu.Cpu_model.icache_miss_penalty)
  in
  Alcotest.(check (float 1e-9)) "cycles" expected (Cpu_model.cycles cpu m)

let test_cpu_lookup () =
  check_bool "find celeron" true (Cpu_model.find "celeron-800" <> None);
  check_bool "unknown" true (Cpu_model.find "cray-1" = None)

let test_memory_layout () =
  let a = Memory_layout.create ~base:0x1000 ~align:16 () in
  let b1 = Memory_layout.alloc a ~bytes:10 in
  let b2 = Memory_layout.alloc a ~bytes:20 in
  check_int "first at base" 0x1000 b1;
  check_int "aligned" 0 (b2 mod 16);
  check_bool "disjoint" true (b2 >= b1 + 10);
  check_bool "used covers both" true (Memory_layout.used_bytes a >= 30)

let test_metrics_arith () =
  let a = Metrics.create () and b = Metrics.create () in
  a.Metrics.dispatches <- 5;
  b.Metrics.dispatches <- 7;
  b.Metrics.mispredicts <- 2;
  Metrics.add a b;
  check_int "add dispatches" 12 a.Metrics.dispatches;
  check_int "add mispredicts" 2 a.Metrics.mispredicts;
  let c = Metrics.copy a in
  Metrics.reset a;
  check_int "reset" 0 a.Metrics.dispatches;
  check_int "copy unaffected" 12 c.Metrics.dispatches

let test_misprediction_rate () =
  let m = Metrics.create () in
  Alcotest.(check (float 0.)) "0/0" 0. (Metrics.misprediction_rate m);
  m.Metrics.indirect_branches <- 10;
  m.Metrics.mispredicts <- 4;
  Alcotest.(check (float 1e-9)) "4/10" 0.4 (Metrics.misprediction_rate m)

(* -------------------------------------------------------------------- *)
(* Geometry validation (satellite: Icache/Two_level reject malformed
   configurations with Invalid_argument, like Btb.create) *)

let test_icache_rejects_bad_config () =
  let rejects name cfg =
    match Icache.create cfg with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (name ^ ": Icache.create must reject this config")
  in
  rejects "negative size"
    { Icache.size_bytes = -64; line_bytes = 16; associativity = 1 };
  rejects "non-power-of-two line"
    { Icache.size_bytes = 256; line_bytes = 24; associativity = 1 };
  rejects "zero line" { Icache.size_bytes = 256; line_bytes = 0; associativity = 1 };
  rejects "zero associativity"
    { Icache.size_bytes = 256; line_bytes = 16; associativity = 0 };
  rejects "size not a multiple of line"
    { Icache.size_bytes = 100; line_bytes = 16; associativity = 1 };
  rejects "lines not divisible by ways"
    { Icache.size_bytes = 256; line_bytes = 16; associativity = 5 };
  (* The infinite cache and a sound finite geometry still construct. *)
  ignore (Icache.create Icache.infinite);
  ignore
    (Icache.create { Icache.size_bytes = 256; line_bytes = 16; associativity = 2 })

let test_two_level_rejects_bad_config () =
  let rejects name cfg =
    match Two_level.create cfg with
    | exception Invalid_argument _ -> ()
    | _ ->
        Alcotest.fail (name ^ ": Two_level.create must reject this config")
  in
  rejects "zero history" { Two_level.entries = 64; history = 0 };
  rejects "history too deep" { Two_level.entries = 64; history = 16 };
  rejects "non-power-of-two entries" { Two_level.entries = 48; history = 4 };
  rejects "zero entries" { Two_level.entries = 0; history = 4 };
  ignore (Two_level.create Two_level.default)

(* -------------------------------------------------------------------- *)
(* Reference-model equivalence: the naive oracles must agree with the
   fast simulators on arbitrary event streams, since the whole value of
   the self-check harness rests on the oracle being independent *and*
   semantically identical. *)

let predictor_kinds =
  [
    ("btb-ideal", Predictor.Btb Btb.ideal);
    ("btb-classic-16x4", Predictor.Btb (Btb.classic ~entries:16 ~associativity:4));
    ( "btb-counters-16x4",
      Predictor.Btb (Btb.with_counters ~entries:16 ~associativity:4) );
    ( "btb-counters-8x2",
      Predictor.Btb (Btb.with_counters ~entries:8 ~associativity:2) );
    ("btb-direct-4x1", Predictor.Btb (Btb.classic ~entries:4 ~associativity:1));
    ("two-level-64x3", Predictor.Two_level { Two_level.entries = 64; history = 3 });
    ("case-block-32", Predictor.Case_block 32);
    ("perfect", Predictor.Perfect);
    ("never", Predictor.Never);
  ]

(* Branch addresses collide across a handful of sets, targets flip among
   a few values: the regime where victim selection and counter hysteresis
   actually matter. *)
let dispatch_stream_gen =
  QCheck.Gen.(
    list_size (int_range 1 400)
      (triple (map (fun n -> n * 4) (int_bound 63)) (int_bound 7) (int_bound 63)))

let prop_predictor_matches_reference (name, kind) =
  QCheck.Test.make ~count:150
    ~name:(Printf.sprintf "%s agrees with reference" name)
    (QCheck.make ~print:QCheck.Print.(list (triple int int int)) dispatch_stream_gen)
    (fun events ->
      let fast = Predictor.create kind in
      let oracle = Reference.create_predictor kind in
      List.for_all
        (fun (branch, target, opcode) ->
          Predictor.access fast ~branch ~target ~opcode
          = Reference.access oracle ~branch ~target ~opcode)
        events)

let fetch_stream_gen =
  QCheck.Gen.(
    list_size (int_range 1 400) (pair (int_bound 1023) (int_range 1 48)))

let prop_icache_matches_reference (name, cfg) =
  QCheck.Test.make ~count:150
    ~name:(Printf.sprintf "icache %s agrees with reference" name)
    (QCheck.make ~print:QCheck.Print.(list (pair int int)) fetch_stream_gen)
    (fun fetches ->
      let fast = Icache.create cfg in
      let oracle = Reference.create_icache cfg in
      List.for_all
        (fun (addr, bytes) ->
          let fh = ref 0 and fm = ref 0 and rh = ref 0 and rm = ref 0 in
          Icache.fetch fast ~addr ~bytes ~hits:fh ~misses:fm;
          Reference.fetch oracle ~addr ~bytes ~hits:rh ~misses:rm;
          !fh = !rh && !fm = !rm)
        fetches)

let icache_geometries =
  [
    ("256B/16B/2way", { Icache.size_bytes = 256; line_bytes = 16; associativity = 2 });
    ("128B/16B/1way", { Icache.size_bytes = 128; line_bytes = 16; associativity = 1 });
    ("512B/32B/4way", { Icache.size_bytes = 512; line_bytes = 32; associativity = 4 });
    ("infinite", Icache.infinite);
  ]

(* -------------------------------------------------------------------- *)
(* Observer hooks (the attribution substrate of the explain tooling) *)

let test_btb_observer_eviction_chain () =
  (* Direct-mapped 2-entry BTB: branches 0 and 8 alias to the same set and
     evict each other, and the observer must report exactly who displaced
     whom. *)
  let btb = Btb.create (Btb.classic ~entries:2 ~associativity:1) in
  let log = ref [] in
  Btb.set_observer btb
    (Some (fun ~branch ~set outcome -> log := (branch, set, outcome) :: !log));
  ignore (Btb.access btb ~branch:0 ~target:1);
  ignore (Btb.access btb ~branch:8 ~target:1);
  ignore (Btb.access btb ~branch:0 ~target:1);
  match List.rev !log with
  | [ (0, s0, Btb.Miss { evicted = e0 }); (8, s1, Btb.Miss { evicted = e1 });
      (0, s2, Btb.Miss { evicted = e2 }) ] ->
      check_int "same set" s0 s1;
      check_int "same set again" s0 s2;
      check_int "cold slot" (-1) e0;
      check_int "8 evicts 0" 0 e1;
      check_int "0 evicts 8" 8 e2
  | l -> Alcotest.failf "unexpected observer log (%d events)" (List.length l)

let test_btb_observer_outcomes () =
  let btb = Btb.create (Btb.classic ~entries:64 ~associativity:4) in
  let log = ref [] in
  Btb.set_observer btb
    (Some (fun ~branch:_ ~set:_ outcome -> log := outcome :: !log));
  ignore (Btb.access btb ~branch:8 ~target:1);
  ignore (Btb.access btb ~branch:8 ~target:1);
  ignore (Btb.access btb ~branch:8 ~target:2);
  (match List.rev !log with
  | [ Btb.Miss { evicted = -1 }; Btb.Hit; Btb.Wrong_target ] -> ()
  | _ -> Alcotest.fail "expected cold miss, hit, wrong-target");
  (* The unbounded table has no set structure: set must be -1. *)
  let ideal = Btb.create Btb.ideal in
  let sets = ref [] in
  Btb.set_observer ideal
    (Some (fun ~branch:_ ~set outcome -> sets := (set, outcome) :: !sets));
  ignore (Btb.access ideal ~branch:3 ~target:1);
  ignore (Btb.access ideal ~branch:3 ~target:1);
  match List.rev !sets with
  | [ (-1, Btb.Miss { evicted = -1 }); (-1, Btb.Hit) ] -> ()
  | _ -> Alcotest.fail "unbounded BTB must report set = -1"

let test_btb_observer_is_passive () =
  (* Same access stream, observed and unobserved: identical outcomes. *)
  let stream =
    List.init 300 (fun i -> ((i * 7) mod 16 * 64, (i * 13) mod 5))
  in
  let run observed =
    let btb = Btb.create (Btb.classic ~entries:8 ~associativity:2) in
    if observed then
      Btb.set_observer btb (Some (fun ~branch:_ ~set:_ _ -> ()));
    List.map (fun (branch, target) -> Btb.access btb ~branch ~target) stream
  in
  Alcotest.(check (list bool)) "observer never changes decisions"
    (run false) (run true)

let test_two_level_observer () =
  let p = Two_level.create { Two_level.entries = 64; history = 2 } in
  let log = ref [] in
  Two_level.set_observer p
    (Some
       (fun ~branch ~index ~empty ~correct ->
         log := (branch, index, empty, correct) :: !log));
  ignore (Two_level.access p ~branch:5 ~target:100);
  (* Same branch, same (empty) history: same slot, now full and trained. *)
  ignore (Two_level.access p ~branch:5 ~target:100);
  match List.rev !log with
  | [ (5, i0, true, false); (5, _, _, second_correct) ] ->
      Alcotest.(check bool) "index in range" true (i0 >= 0 && i0 < 64);
      (* The history register changed after the first access, so the slot
         may differ, but a repeat of the same target from slot i0's state
         must eventually predict; here we only pin the reported outcome to
         the function's return value. *)
      ignore second_correct
  | l -> Alcotest.failf "unexpected two-level log (%d events)" (List.length l)

let test_two_level_observer_matches_result () =
  let p = Two_level.create Two_level.default in
  let reported = ref [] in
  Two_level.set_observer p
    (Some
       (fun ~branch:_ ~index:_ ~empty:_ ~correct ->
         reported := correct :: !reported));
  let returned =
    List.init 200 (fun i ->
        Two_level.access p ~branch:(i mod 3 * 32) ~target:(i mod 4))
  in
  Alcotest.(check (list bool)) "observer reports the access result"
    returned (List.rev !reported)

let test_icache_observer () =
  (* 128B/16B direct-mapped: 8 sets; lines 0 and 8 alias to set 0. *)
  let c =
    Icache.create { Icache.size_bytes = 128; line_bytes = 16; associativity = 1 }
  in
  let log = ref [] in
  Icache.set_observer c
    (Some (fun ~line ~set ~evicted -> log := (line, set, evicted) :: !log));
  let h = ref 0 and m = ref 0 in
  Icache.fetch c ~addr:0 ~bytes:16 ~hits:h ~misses:m;
  Icache.fetch c ~addr:(8 * 16) ~bytes:16 ~hits:h ~misses:m;
  Icache.fetch c ~addr:0 ~bytes:16 ~hits:h ~misses:m;
  (match List.rev !log with
  | [ (0, 0, -1); (8, 0, 0); (0, 0, 8) ] -> ()
  | l -> Alcotest.failf "unexpected icache log (%d events)" (List.length l));
  check_int "observer saw every miss" !m (List.length !log);
  (* A hit fires nothing. *)
  let before = List.length !log in
  Icache.fetch c ~addr:0 ~bytes:16 ~hits:h ~misses:m;
  check_int "hit is silent" before (List.length !log);
  (* The infinite cache never misses, so the observer never fires. *)
  let inf = Icache.create Icache.infinite in
  let fired = ref 0 in
  Icache.set_observer inf (Some (fun ~line:_ ~set:_ ~evicted:_ -> incr fired));
  Icache.fetch inf ~addr:4096 ~bytes:64 ~hits:h ~misses:m;
  check_int "infinite cache is silent" 0 !fired

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "machine"
    [
      ( "btb",
        [
          Alcotest.test_case "last-target prediction" `Quick
            test_btb_ideal_last_target;
          Alcotest.test_case "alternating targets" `Quick
            test_btb_alternating_always_misses;
          Alcotest.test_case "2-bit counters" `Quick
            test_btb_two_bit_counters_tolerate_glitch;
          Alcotest.test_case "classic replaces immediately" `Quick
            test_btb_classic_replaces_immediately;
          Alcotest.test_case "capacity and conflict misses" `Quick
            test_btb_capacity_conflicts;
          Alcotest.test_case "rejects bad config" `Quick
            test_btb_rejects_bad_config;
          Alcotest.test_case "predict is read-only" `Quick
            test_btb_predict_readonly;
          Alcotest.test_case "reset" `Quick test_btb_reset;
          Alcotest.test_case "set index distribution" `Quick
            test_btb_set_index_distribution;
          qt prop_btb_repeating_stream_predicts;
        ] );
      ( "predictors",
        [
          Alcotest.test_case "two-level learns patterns" `Quick
            test_two_level_pattern;
          Alcotest.test_case "case block table" `Quick test_case_block_table;
          Alcotest.test_case "perfect/never bounds" `Quick test_predictor_bounds;
        ] );
      ( "icache",
        [
          Alcotest.test_case "hit after miss" `Quick test_icache_basic;
          Alcotest.test_case "line straddling" `Quick test_icache_straddles_lines;
          Alcotest.test_case "thrashing" `Quick test_icache_thrash;
          Alcotest.test_case "infinite cache" `Quick
            test_icache_infinite_never_misses;
          Alcotest.test_case "fetch memo keeps LRU fresh" `Quick
            test_icache_memo_lru_refresh;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "icache rejects bad config" `Quick
            test_icache_rejects_bad_config;
          Alcotest.test_case "two-level rejects bad config" `Quick
            test_two_level_rejects_bad_config;
        ] );
      ( "observers",
        [
          Alcotest.test_case "btb eviction chain" `Quick
            test_btb_observer_eviction_chain;
          Alcotest.test_case "btb outcome taxonomy" `Quick
            test_btb_observer_outcomes;
          Alcotest.test_case "btb observer is passive" `Quick
            test_btb_observer_is_passive;
          Alcotest.test_case "two-level slot reporting" `Quick
            test_two_level_observer;
          Alcotest.test_case "two-level reports access result" `Quick
            test_two_level_observer_matches_result;
          Alcotest.test_case "icache eviction reporting" `Quick
            test_icache_observer;
        ] );
      ( "reference-equivalence",
        List.map qt
          (List.map prop_predictor_matches_reference predictor_kinds
          @ List.map prop_icache_matches_reference icache_geometries) );
      ( "cost-model",
        [
          Alcotest.test_case "cycle formula" `Quick test_cycles_model;
          Alcotest.test_case "profile lookup" `Quick test_cpu_lookup;
          Alcotest.test_case "allocator" `Quick test_memory_layout;
          Alcotest.test_case "metrics arithmetic" `Quick test_metrics_arith;
          Alcotest.test_case "misprediction rate" `Quick test_misprediction_rate;
        ] );
    ]

(* Frontend and engine fuzzing.

   Three fuzzers, each a QCheck property over a PRNG seed (so every
   generated case is reproducible from the QCheck seed alone):

   - random toy-VM programs, run under every dynamic technique: the
     engine must never raise, metrics must satisfy their conservation
     laws, the cost model must be monotone in the stall penalties, and
     the checksum must be identical under every technique;
   - random Forth programs through the real compiler and interpreter,
     plus mutated/malformed sources, which must either compile or fail
     with [Compiler.Error] -- never any other exception;
   - mutated binary JVM images through [Image_bytes.decode], which must
     either raise [Malformed] or produce an image that runs (and at
     worst traps cleanly) under a fuel cap.

   Counts scale with the VMBP_FUZZ_* environment variables so CI smoke
   runs stay within budget while the full 10k/1k acceptance run is one
   environment variable away. *)

open Vmbp_machine
open Vmbp_core

let env_count name default =
  match Option.bind (Sys.getenv_opt name) int_of_string_opt with
  | Some n when n > 0 -> n
  | _ -> default

let program_count = env_count "VMBP_FUZZ_PROGRAMS" 10_000
let forth_count = env_count "VMBP_FUZZ_FORTH" 400
let image_count = env_count "VMBP_FUZZ_IMAGES" 1_000

(* splitmix64: one stream per case, derived from the case's seed. *)
let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xbf58476d1ce4e5b9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94d049bb133111ebL in
  Int64.logxor z (Int64.shift_right_logical z 31)

type rng = { mutable state : int64 }

let rng_of_seed seed = { state = Int64.of_int (seed * 2 + 1) }

let next rng =
  rng.state <- Int64.add rng.state 0x9e3779b97f4a7c15L;
  Int64.to_int (Int64.logand (mix64 rng.state) 0x3fffffffffffffffL)

let rand rng bound = if bound <= 0 then 0 else next rng mod bound

let seed_arb =
  QCheck.make
    ~print:(Printf.sprintf "seed %d")
    QCheck.Gen.(int_bound 0x3FFFFFFF)

(* ------------------------------------------------------------------ *)
(* Shared invariant checks *)

let fail fmt = Printf.ksprintf (fun s -> QCheck.Test.fail_report s) fmt

let check_metric_conservation ~what (r : Engine.result) =
  let m = r.Engine.metrics in
  if m.Metrics.mispredicts > m.Metrics.indirect_branches then
    fail "%s: mispredicts %d > indirect branches %d" what
      m.Metrics.mispredicts m.Metrics.indirect_branches;
  if m.Metrics.vm_branch_mispredicts > m.Metrics.mispredicts then
    fail "%s: vm-branch mispredicts %d > mispredicts %d" what
      m.Metrics.vm_branch_mispredicts m.Metrics.mispredicts;
  if m.Metrics.dispatches > m.Metrics.indirect_branches then
    fail "%s: dispatches %d > indirect branches %d" what
      m.Metrics.dispatches m.Metrics.indirect_branches;
  if m.Metrics.icache_misses > m.Metrics.icache_fetches then
    fail "%s: icache misses %d > fetches %d" what m.Metrics.icache_misses
      m.Metrics.icache_fetches;
  List.iter
    (fun (n, v) -> if v < 0 then fail "%s: negative %s (%d)" what n v)
    [
      ("vm_instrs", m.Metrics.vm_instrs);
      ("native_instrs", m.Metrics.native_instrs);
      ("dispatches", m.Metrics.dispatches);
      ("mispredicts", m.Metrics.mispredicts);
      ("icache_fetches", m.Metrics.icache_fetches);
      ("icache_misses", m.Metrics.icache_misses);
      ("code_bytes", m.Metrics.code_bytes);
      ("quickenings", m.Metrics.quickenings);
    ];
  if not (Float.is_finite r.Engine.cycles) || r.Engine.cycles < 0. then
    fail "%s: bad cycle count %f" what r.Engine.cycles

(* The pipeline cost model must be monotone in both stall penalties. *)
let check_cycles_monotone ~what cpu (r : Engine.result) =
  let m = r.Engine.metrics in
  let base = Cpu_model.cycles cpu m in
  let bumped p =
    Cpu_model.cycles
      { cpu with Cpu_model.mispredict_penalty = cpu.Cpu_model.mispredict_penalty + p }
      m
  and bumped_icache p =
    Cpu_model.cycles
      { cpu with Cpu_model.icache_miss_penalty = cpu.Cpu_model.icache_miss_penalty + p }
      m
  in
  if bumped 10 < base then
    fail "%s: cycles not monotone in mispredict penalty" what;
  if bumped_icache 10 < base then
    fail "%s: cycles not monotone in icache penalty" what

(* ------------------------------------------------------------------ *)
(* 1. Random toy-VM programs *)

let fuzz_cpus = [| Cpu_model.celeron_800; Cpu_model.pentium4_northwood |]

let fuzz_techniques =
  [|
    Technique.switch;
    Technique.plain;
    Technique.dynamic_repl;
    Technique.dynamic_super;
    Technique.dynamic_both;
    Technique.across_bb;
    Technique.subroutine;
  |]

let run_toy ~technique ~cpu ~program =
  let state =
    Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 5) ()
  in
  let config = Config.make ~cpu technique in
  let layout = Config.build_layout config ~program in
  let r =
    Engine.run ~fuel:1_000_000 ~config ~layout
      ~exec:(Vmbp_toyvm.Toy_vm.exec state) ()
  in
  (r, Vmbp_toyvm.Toy_vm.checksum state)

let prop_toy_program seed =
  let rng = rng_of_seed seed in
  let size = 8 + rand rng 56 in
  let program = Vmbp_toyvm.Toy_vm.random_program ~seed ~size in
  let cpu = fuzz_cpus.(rand rng (Array.length fuzz_cpus)) in
  let technique = fuzz_techniques.(rand rng (Array.length fuzz_techniques)) in
  let what = Printf.sprintf "toy seed=%d size=%d" seed size in
  let r_base, chk_base = run_toy ~technique:Technique.plain ~cpu ~program in
  (match r_base.Engine.trapped with
  | Some msg -> fail "%s: generated program trapped under plain: %s" what msg
  | None -> ());
  check_metric_conservation ~what r_base;
  check_cycles_monotone ~what cpu r_base;
  let r, chk = run_toy ~technique ~cpu ~program in
  (match r.Engine.trapped with
  | Some msg ->
      fail "%s: trapped under %s: %s" what (Technique.name technique) msg
  | None -> ());
  check_metric_conservation
    ~what:(what ^ "/" ^ Technique.name technique)
    r;
  if chk <> chk_base then
    fail "%s: checksum differs under %s (%d vs %d)" what
      (Technique.name technique) chk chk_base;
  if r.Engine.steps <> r_base.Engine.steps && not (Technique.is_dynamic technique)
     && technique <> Technique.switch
  then
    fail "%s: step count differs under %s" what (Technique.name technique);
  true

(* Lockstep oracle agreement on a sample of the random programs: the
   production simulators must match the naive reference models on
   machine-shaped (finite BTB, finite I-cache) configurations. *)
let prop_toy_program_oracle seed =
  let program = Vmbp_toyvm.Toy_vm.random_program ~seed ~size:24 in
  let cpu = Cpu_model.celeron_800 in
  let config = Config.make ~cpu Technique.plain in
  let layout = Config.build_layout config ~program in
  let state =
    Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 5) ()
  in
  match
    Vmbp_report.Audit.dual_run ~fuel:1_000_000
      ~cell:(Printf.sprintf "fuzz-oracle-%d" seed)
      ~config ~layout ~exec:(Vmbp_toyvm.Toy_vm.exec state) ()
  with
  | Ok _ -> true
  | Error d -> fail "oracle divergence: %s" (Vmbp_report.Audit.describe d)

(* The decode-once translated loop against the per-step legacy loop:
   identical steps, trap, checksum, deterministic metrics and sink event
   stream on every generated program, under a technique drawn from the
   full grid (including the quickening dynamic ones, so incremental
   re-translation is fuzzed too) and a fuel budget that sometimes cuts
   the run short mid-block. *)
let prop_toy_translated_vs_legacy seed =
  let rng = rng_of_seed seed in
  let size = 8 + rand rng 56 in
  let program = Vmbp_toyvm.Toy_vm.random_program ~seed ~size in
  let technique = fuzz_techniques.(rand rng (Array.length fuzz_techniques)) in
  let fuel = if rand rng 4 = 0 then 1 + rand rng 5_000 else 1_000_000 in
  let what =
    Printf.sprintf "translated seed=%d size=%d fuel=%d %s" seed size fuel
      (Technique.name technique)
  in
  let run legacy =
    let program = Vmbp_vm.Program.copy program in
    let config = Config.make ~cpu:Cpu_model.celeron_800 technique in
    let layout = Config.build_layout config ~program in
    let state =
      Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 5) ()
    in
    let events = ref [] in
    let sink =
      {
        Engine.on_dispatch =
          (fun ~branch ~target ~opcode ~vm_transfer ->
            events := (0, branch, target, opcode, Bool.to_int vm_transfer)
                      :: !events);
        on_fetch =
          (fun ~addr ~bytes ~opcode ->
            events := (1, addr, bytes, opcode, 0) :: !events);
      }
    in
    let m = Metrics.create () in
    let steps, trapped =
      if legacy then
        Engine.run_events_legacy ~fuel ~metrics:m ~layout
          ~exec:(Vmbp_toyvm.Toy_vm.exec state) ~sink ()
      else
        Engine.run_events ~fuel ~metrics:m ~layout
          ~exec:(Vmbp_toyvm.Toy_vm.exec state) ~sink ()
    in
    (steps, trapped, Vmbp_toyvm.Toy_vm.checksum state, m, List.rev !events)
  in
  let s1, t1, k1, m1, e1 = run false and s2, t2, k2, m2, e2 = run true in
  if s1 <> s2 then fail "%s: steps %d vs %d" what s1 s2;
  if t1 <> t2 then
    fail "%s: trap %s vs %s" what
      (Option.value ~default:"-" t1)
      (Option.value ~default:"-" t2);
  if k1 <> k2 then fail "%s: checksum %d vs %d" what k1 k2;
  if m1 <> m2 then fail "%s: metrics differ" what;
  if e1 <> e2 then
    fail "%s: event streams differ (%d vs %d events)" what (List.length e1)
      (List.length e2);
  true

(* Conservation of the audit counters themselves, on the recorded event
   stream: predictions = hits + mispredicts, fetches = hits + misses. *)
let prop_audit_counter_conservation seed =
  let program = Vmbp_toyvm.Toy_vm.random_program ~seed ~size:24 in
  let config = Config.make ~cpu:Cpu_model.celeron_800 Technique.plain in
  let layout = Config.build_layout config ~program in
  let state =
    Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 5) ()
  in
  let events =
    Vmbp_report.Audit.record_events ~fuel:1_000_000 ~layout
      ~exec:(Vmbp_toyvm.Toy_vm.exec state) ()
  in
  let predictor = Config.predictor_kind config in
  let icache = Cpu_model.celeron_800.Cpu_model.icache in
  let fast = Vmbp_report.Audit.fast_sim ~predictor ~icache in
  (match
     Vmbp_report.Audit.check_events ~fast ~predictor ~icache events
   with
  | Some (i, detail, _, _) -> fail "diverged at %d: %s" i detail
  | None -> ());
  let c = fast.Vmbp_report.Audit.sim_counters () in
  let open Vmbp_report.Audit in
  if c.predictions <> c.pred_hits + c.mispredicts then
    fail "predictions %d <> hits %d + mispredicts %d" c.predictions
      c.pred_hits c.mispredicts;
  if c.icache_fetches <> c.icache_hits + c.icache_misses then
    fail "fetches %d <> hits %d + misses %d" c.icache_fetches c.icache_hits
      c.icache_misses;
  true

(* ------------------------------------------------------------------ *)
(* 2. Random Forth programs *)

(* Generate a stack-safe token sequence: the generator tracks the stack
   depth, so every emitted word is legal at its position.  [mix] folds a
   value into the prelude's checksum variable, making behaviour
   observable through [.chk]. *)
let gen_forth_tokens rng =
  let buf = Buffer.create 256 in
  let emit tok =
    Buffer.add_string buf tok;
    Buffer.add_char buf ' '
  in
  let depth = ref 0 in
  (* [floor] keeps nested regions (if-arms, loop bodies) from consuming
     values pushed outside them: at runtime only one arm executes, so
     every region must be depth-neutral relative to its own entry. *)
  let rec step ~floor budget =
    if budget <= 0 then ()
    else begin
      let avail = !depth - floor in
      (match rand rng 12 with
      | 0 | 1 | 2 ->
          emit (string_of_int (rand rng 1000));
          incr depth
      | 3 when avail >= 2 ->
          emit [| "+"; "-"; "*"; "and"; "or"; "xor" |].(rand rng 6);
          decr depth
      | 4 when avail >= 1 -> emit "dup"; incr depth
      | 5 when avail >= 2 -> emit "swap"
      | 6 when avail >= 1 -> emit "mix"; decr depth
      | 7 when avail >= 2 -> emit "over"; incr depth
      | 8 when avail >= 1 -> emit "drop"; decr depth
      | 9 when avail >= 1 ->
          (* conditional with depth-neutral arms *)
          emit "if";
          decr depth;
          let d0 = !depth in
          step ~floor:d0 (budget / 3);
          while !depth > d0 do emit "drop"; decr depth done;
          emit "else";
          step ~floor:d0 (budget / 3);
          while !depth > d0 do emit "drop"; decr depth done;
          emit "then"
      | 10 ->
          (* small counted loop with a depth-neutral body *)
          emit (string_of_int (2 + rand rng 4));
          emit "0";
          emit "do";
          let d0 = !depth in
          emit "i";
          incr depth;
          emit "mix";
          decr depth;
          step ~floor:d0 (budget / 4);
          while !depth > d0 do emit "drop"; decr depth done;
          emit "loop"
      | _ ->
          emit (string_of_int (rand rng 100));
          incr depth);
      step ~floor (budget - 1)
    end
  in
  step ~floor:0 (6 + rand rng 40);
  while !depth > 0 do
    emit "mix";
    decr depth
  done;
  emit ".chk";
  Buffer.contents buf

let forth_prelude =
  {|
variable chk
: mix ( n -- ) chk @ 31 * + 1073741823 and chk ! ;
: .chk chk @ . ;
|}

let run_forth_source ~what source =
  let program = Vmbp_forth.Compiler.compile ~name:"fuzz" source in
  let state = Vmbp_forth.State.create () in
  let config = Config.make ~cpu:Cpu_model.celeron_800 Technique.plain in
  let layout = Config.build_layout config ~program in
  let r =
    Engine.run ~fuel:2_000_000 ~config ~layout
      ~exec:(Vmbp_forth.Instruction_set.exec state) ()
  in
  (match r.Engine.trapped with
  | Some msg -> fail "%s: generated Forth program trapped: %s" what msg
  | None -> ());
  check_metric_conservation ~what r;
  Vmbp_forth.State.output state

let prop_forth_program seed =
  let rng = rng_of_seed seed in
  let source = forth_prelude ^ gen_forth_tokens rng in
  let what = Printf.sprintf "forth seed=%d" seed in
  let out1 = run_forth_source ~what source in
  let out2 = run_forth_source ~what source in
  if out1 <> out2 then fail "%s: output not deterministic" what;
  true

(* Mutated sources: the compiler must accept or reject with its own
   [Error] exception; no [Failure], no [Invalid_argument], no stack
   overflow may escape the frontend. *)
let mutate_tokens rng tokens =
  let arr = Array.of_list tokens in
  let n = Array.length arr in
  let junk =
    [| ";"; ":"; "then"; "if"; "else"; "do"; "loop"; "recurse"; "until";
       "repeat"; "while"; "begin"; "case"; "endcase"; "of"; "endof";
       "undefined-word"; "'"; "execute"; "variable"; "(" |]
  in
  match rand rng 3 with
  | 0 when n > 0 ->
      (* drop a token *)
      let i = rand rng n in
      Array.to_list (Array.append (Array.sub arr 0 i) (Array.sub arr (i + 1) (n - i - 1)))
  | 1 when n > 0 ->
      (* replace a token *)
      let i = rand rng n in
      arr.(i) <- junk.(rand rng (Array.length junk));
      Array.to_list arr
  | _ ->
      (* insert a token *)
      let i = rand rng (n + 1) in
      Array.to_list (Array.sub arr 0 i)
      @ [ junk.(rand rng (Array.length junk)) ]
      @ Array.to_list (Array.sub arr i (n - i))

let prop_forth_mutated seed =
  let rng = rng_of_seed seed in
  let tokens =
    String.split_on_char ' ' (gen_forth_tokens rng)
    |> List.filter (fun t -> t <> "")
  in
  let tokens =
    let rec go t = function 0 -> t | k -> go (mutate_tokens rng t) (k - 1) in
    go tokens (1 + rand rng 3)
  in
  let source = forth_prelude ^ String.concat " " tokens in
  match Vmbp_forth.Compiler.compile ~name:"fuzz-mutated" source with
  | _program -> true (* still compiles: also fine *)
  | exception Vmbp_forth.Compiler.Error _ -> true
  | exception exn ->
      fail "compiler raised %s on mutated source" (Printexc.to_string exn)

(* ------------------------------------------------------------------ *)
(* 3. Mutated binary JVM images *)

let base_image =
  lazy
    (match Vmbp_jvm.Jvm_workloads.find "db" with
    | Some w -> w.Vmbp_jvm.Jvm_workloads.build ~scale:1
    | None -> Alcotest.fail "jvm workload 'db' missing")

let base_bytes = lazy (Vmbp_jvm.Image_bytes.encode (Lazy.force base_image))

let test_image_roundtrip () =
  let bytes = Lazy.force base_bytes in
  let decoded = Vmbp_jvm.Image_bytes.decode bytes in
  Alcotest.(check int)
    "round-trip preserves the byte encoding"
    (String.length bytes)
    (String.length (Vmbp_jvm.Image_bytes.encode decoded));
  Alcotest.(check bool)
    "round-trip is the identity on bytes" true
    (String.equal bytes (Vmbp_jvm.Image_bytes.encode decoded))

let mutate_bytes rng s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  match rand rng 5 with
  | 0 when n > 0 ->
      (* flip one byte *)
      let i = rand rng n in
      Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 + rand rng 255)));
      Bytes.to_string b
  | 1 when n > 1 ->
      (* truncate *)
      Bytes.sub_string b 0 (rand rng n)
  | 2 when n > 0 ->
      (* zero a run *)
      let i = rand rng n in
      let len = min (1 + rand rng 16) (n - i) in
      Bytes.fill b i len '\000';
      Bytes.to_string b
  | 3 ->
      (* insert random bytes *)
      let i = rand rng (n + 1) in
      let len = 1 + rand rng 8 in
      let ins = String.init len (fun _ -> Char.chr (rand rng 256)) in
      String.concat "" [ Bytes.sub_string b 0 i; ins; Bytes.sub_string b i (n - i) ]
  | _ when n > 2 ->
      (* splice: duplicate an interior slice over another position *)
      let src = rand rng (n - 1) in
      let len = min (1 + rand rng 32) (n - src) in
      let dst = rand rng (n - len) in
      Bytes.blit b src b dst len;
      Bytes.to_string b
  | _ -> Bytes.to_string b

let prop_image_mutated seed =
  let rng = rng_of_seed seed in
  let bytes =
    let rec go s = function 0 -> s | k -> go (mutate_bytes rng s) (k - 1) in
    go (Lazy.force base_bytes) (1 + rand rng 4)
  in
  match Vmbp_jvm.Image_bytes.decode bytes with
  | exception Vmbp_jvm.Image_bytes.Malformed _ -> true
  | exception exn ->
      fail "decode raised %s (only Malformed may escape)"
        (Printexc.to_string exn)
  | image -> (
      (* The image passed structural validation; running it may trap
         (the runtime's guards are part of the safety boundary) but must
         never raise. *)
      let what = Printf.sprintf "image seed=%d" seed in
      let state = Vmbp_jvm.Runtime.create image in
      let config = Config.make ~cpu:Cpu_model.pentium4_northwood Technique.plain in
      let layout =
        Config.build_layout config ~program:image.Vmbp_jvm.Runtime.program
      in
      match
        Engine.run ~fuel:200_000 ~config ~layout
          ~exec:(Vmbp_jvm.Semantics.exec state) ()
      with
      | r ->
          check_metric_conservation ~what r;
          true
      | exception exn ->
          fail "%s: engine raised %s (must trap cleanly)" what
            (Printexc.to_string exn))

(* ------------------------------------------------------------------ *)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "fuzz"
    [
      ( "toy-vm",
        [
          qt
            (QCheck.Test.make ~count:program_count ~name:"random programs"
               seed_arb prop_toy_program);
          qt
            (QCheck.Test.make
               ~count:(max 20 (program_count / 50))
               ~name:"oracle agreement" seed_arb prop_toy_program_oracle);
          qt
            (QCheck.Test.make ~count:program_count
               ~name:"translated loop vs legacy loop" seed_arb
               prop_toy_translated_vs_legacy);
          qt
            (QCheck.Test.make
               ~count:(max 20 (program_count / 50))
               ~name:"audit counter conservation" seed_arb
               prop_audit_counter_conservation);
        ] );
      ( "forth",
        [
          qt
            (QCheck.Test.make ~count:forth_count ~name:"random programs"
               seed_arb prop_forth_program);
          qt
            (QCheck.Test.make ~count:forth_count ~name:"mutated sources"
               seed_arb prop_forth_mutated);
        ] );
      ( "jvm-image",
        [
          Alcotest.test_case "encode/decode round-trip" `Quick
            test_image_roundtrip;
          qt
            (QCheck.Test.make ~count:image_count ~name:"mutated images"
               seed_arb prop_image_mutated);
        ] );
    ]

(* Tests of the reporting layer: the experiment registry, the dispatch
   tracer, table rendering, comparator models, and the headline shape
   assertions that the reproduction must satisfy. *)

open Vmbp_core
open Vmbp_machine

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Table rendering *)

let test_table_render () =
  let s =
    Vmbp_report.Table.render ~headers:[ "name"; "value" ]
      ~rows:[ [ "alpha"; "1" ]; [ "beta-long"; "22" ] ]
  in
  let lines = String.split_on_char '\n' s in
  check_int "header, rule, 2 rows, trailing newline" 5 (List.length lines);
  (* all rows equal width *)
  (match lines with
  | header :: rule :: rest ->
      List.iter
        (fun line ->
          if line <> "" then
            check_int "aligned" (String.length header) (String.length line))
        (rule :: rest)
  | _ -> Alcotest.fail "missing lines");
  check_bool "human_int K" true (Vmbp_report.Table.human_int 12_345 = "12.3K");
  check_bool "human_int M" true (Vmbp_report.Table.human_int 12_345_678 = "12.3M");
  check_bool "human_int small" true (Vmbp_report.Table.human_int 999 = "999")

(* ------------------------------------------------------------------ *)
(* Dispatch traces (Tables I-IV as assertions, not just prose) *)

let trace technique ?profile () =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let state = Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 20) () in
  Vmbp_report.Dispatch_trace.trace ~technique ?profile ~program
    ~exec:(Vmbp_toyvm.Toy_vm.exec state) ~skip:8 ~take:8 ()

let misses rows =
  List.length
    (List.filter (fun r -> not r.Vmbp_report.Dispatch_trace.correct) rows)

let test_trace_switch_all_miss () =
  check_int "switch: 8/8 misses" 8 (misses (trace Technique.switch ()))

let test_trace_threaded_half_miss () =
  let rows = trace Technique.plain () in
  check_int "threaded: 4/8 misses" 4 (misses rows);
  (* the missing branch is always A's *)
  List.iter
    (fun r ->
      if not r.Vmbp_report.Dispatch_trace.correct then
        Alcotest.(check string)
          "only A mispredicts" "br-A" r.Vmbp_report.Dispatch_trace.btb_entry)
    rows

let test_trace_replication_no_miss () =
  let program = Vmbp_toyvm.Toy_vm.table1_loop () in
  let profile = Vmbp_vm.Profile.empty ~max_seq_len:4 in
  Vmbp_vm.Profile.add_program profile program;
  check_int "replication: 0/8 misses" 0
    (misses (trace (Technique.static_repl ~n:8 ()) ~profile ()));
  check_int "superinstruction: 0 misses" 0
    (misses (trace (Technique.static_super ~n:4 ()) ~profile ()))

(* ------------------------------------------------------------------ *)
(* Comparator models *)

let test_native_model_ordering () =
  let w = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc") in
  let plain =
    Vmbp_report.Runner.run ~cpu:Cpu_model.pentium4_northwood
      ~technique:Technique.plain w
  in
  let slots =
    Vmbp_vm.Program.length (w.Vmbp_workloads.load ~scale:1).Vmbp_workloads.program
  in
  let cycles m =
    Vmbp_report.Native_model.cycles m ~cpu:Cpu_model.pentium4_northwood
      ~costs:Costs.default ~plain:plain.Vmbp_report.Runner.result ~slots
  in
  let big = cycles Vmbp_report.Native_model.bigforth in
  let hotspot_mixed = cycles Vmbp_report.Native_model.hotspot_mixed in
  let kaffe_int = cycles Vmbp_report.Native_model.kaffe_interp in
  let hotspot_int = cycles Vmbp_report.Native_model.hotspot_interp in
  let plain_cycles = plain.Vmbp_report.Runner.result.Engine.cycles in
  check_bool "native compilers beat the interpreter" true (big < plain_cycles);
  check_bool "hotspot mixed beats plain" true (hotspot_mixed < plain_cycles);
  check_bool "kaffe interpreter is slower than plain" true
    (kaffe_int > plain_cycles);
  check_bool "hotspot interpreter is a bit faster than plain" true
    (hotspot_int < plain_cycles && hotspot_int > 0.5 *. plain_cycles)

(* ------------------------------------------------------------------ *)
(* Experiment registry *)

let test_registry_complete () =
  (* every paper table and figure has an experiment *)
  List.iter
    (fun id ->
      check_bool id true (Vmbp_report.Experiments.find id <> None))
    [
      "table1"; "table2"; "table3"; "table4"; "table5"; "table6"; "table7";
      "fig7"; "fig8"; "fig9"; "fig10"; "fig11"; "fig12"; "fig13"; "fig14";
      "fig15"; "fig16"; "table8"; "table9"; "table10";
    ];
  check_bool "unknown id" true (Vmbp_report.Experiments.find "fig99" = None)

let test_cheap_experiments_render () =
  (* The worked-example tables and inventories are cheap: run them for real
     and sanity-check the rendering. *)
  List.iter
    (fun id ->
      let e = Option.get (Vmbp_report.Experiments.find id) in
      let s = e.Vmbp_report.Experiments.run ~scale:1 in
      check_bool (id ^ " nonempty") true (String.length s > 40))
    [ "table1"; "table2"; "table3"; "table4"; "table6"; "table7" ]

(* ------------------------------------------------------------------ *)
(* Headline shapes on one benchmark per VM (kept cheap) *)

let run ~vm ~workload ~technique ~cpu =
  let w = Option.get (Vmbp_workloads.find ~vm workload) in
  Vmbp_report.Runner.run ~cpu ~technique w

let test_shape_forth_ordering () =
  let cycles t =
    (run ~vm:Vmbp_workloads.Forth ~workload:"bench-gc" ~technique:t
       ~cpu:Cpu_model.pentium4_northwood)
      .Vmbp_report.Runner.result
      .Engine.cycles
  in
  let switch = cycles Technique.switch in
  let plain = cycles Technique.plain in
  let dsuper = cycles Technique.dynamic_super in
  let across = cycles Technique.across_bb in
  let wss = cycles (Technique.with_static_super ()) in
  check_bool "plain beats switch" true (plain < switch);
  check_bool "dynamic super beats plain" true (dsuper < plain);
  check_bool "across bb beats dynamic super" true (across < dsuper);
  check_bool "with static super is best" true (wss < across);
  check_bool "speedup within sane bounds" true
    (plain /. wss > 2. && plain /. wss < 12.)

let test_shape_misprediction_rates () =
  (* Paper Section 3: switch 81-98% mispredicted, threaded 50-63%. *)
  let rate t =
    let r =
      run ~vm:Vmbp_workloads.Forth ~workload:"cross" ~technique:t
        ~cpu:Cpu_model.pentium4_northwood
    in
    100. *. Metrics.misprediction_rate r.Vmbp_report.Runner.result.Engine.metrics
  in
  let switch = rate Technique.switch in
  let plain = rate Technique.plain in
  check_bool (Printf.sprintf "switch rate %.1f in 75-100" switch) true
    (switch > 75.);
  check_bool (Printf.sprintf "threaded rate %.1f in 35-75" plain) true
    (plain > 35. && plain < 75.)

let test_shape_jvm_smaller_ratio () =
  (* Paper Section 7.2.2: indirect-branch share is much higher for Forth
     than for the JVM. *)
  let ratio ~vm ~workload =
    let r =
      run ~vm ~workload ~technique:Technique.plain
        ~cpu:Cpu_model.pentium4_northwood
    in
    let m = r.Vmbp_report.Runner.result.Engine.metrics in
    float_of_int m.Metrics.indirect_branches
    /. float_of_int m.Metrics.native_instrs
  in
  let forth = ratio ~vm:Vmbp_workloads.Forth ~workload:"cross" in
  let jvm = ratio ~vm:Vmbp_workloads.Jvm ~workload:"db" in
  check_bool "forth ratio above jvm's" true (forth > jvm +. 0.02)

let test_shape_static_mix_improves () =
  let data =
    Vmbp_report.Experiments.static_mix ~scale:1 ~vm:Vmbp_workloads.Forth
      ~workload:"bench-gc" ~cpu:Cpu_model.celeron_800 ~totals:[ 0; 400 ]
  in
  match data with
  | [ (0, base_series); (400, series) ] ->
      let base_cycles = match base_series with (_, c, _) :: _ -> c | [] -> 0. in
      List.iter
        (fun (_pct, cycles, _mp) ->
          check_bool "400 extra instructions always beat plain" true
            (cycles < base_cycles))
        series
  | _ -> Alcotest.fail "unexpected static_mix result"

let test_subroutine_threading_shape () =
  (* Dispatch indirect branches disappear; only VM transfers remain. *)
  let r =
    run ~vm:Vmbp_workloads.Forth ~workload:"bench-gc"
      ~technique:Technique.subroutine ~cpu:Cpu_model.pentium4_northwood
  in
  let plain =
    run ~vm:Vmbp_workloads.Forth ~workload:"bench-gc"
      ~technique:Technique.plain ~cpu:Cpu_model.pentium4_northwood
  in
  let m = r.Vmbp_report.Runner.result.Engine.metrics in
  let mp = plain.Vmbp_report.Runner.result.Engine.metrics in
  check_bool "far fewer indirect branches" true
    (m.Metrics.indirect_branches * 4 < mp.Metrics.indirect_branches);
  check_bool "faster than plain" true
    (r.Vmbp_report.Runner.result.Engine.cycles
    < plain.Vmbp_report.Runner.result.Engine.cycles)

(* ------------------------------------------------------------------ *)
(* Parallel runner *)

(* A synthetic workload over the toy VM: cheap enough to run a grid of them
   many times, and optionally trapping to exercise fault isolation. *)
let toy_workload ?(trap = false) name =
  {
    Vmbp_workloads.vm = Vmbp_workloads.Forth;
    name;
    description = "synthetic toy workload";
    load =
      (fun ~scale:_ ->
        let program = Vmbp_toyvm.Toy_vm.table1_loop () in
        {
          Vmbp_workloads.program;
          fresh_session =
            (fun () ->
              let state =
                Vmbp_toyvm.Toy_vm.create_state ~counters:(Array.make 16 200) ()
              in
              let exec p pc =
                if trap then Vmbp_vm.Control.Trap "boom"
                else Vmbp_toyvm.Toy_vm.exec state p pc
              in
              { Vmbp_workloads.exec; output = (fun () -> "") });
        });
  }

let toy_cells () =
  (* dynamic techniques only: no training profile needed for a toy program *)
  List.concat_map
    (fun w ->
      List.map
        (fun t ->
          Vmbp_report.Par_runner.cell ~tag:"test" ~cpu:Cpu_model.ideal
            ~technique:t w)
        [ Technique.plain; Technique.switch; Technique.dynamic_super;
          Technique.dynamic_repl ])
    [ toy_workload "toy-a"; toy_workload "toy-b"; toy_workload "toy-c" ]

let signature results =
  List.map
    (fun (t : Vmbp_report.Par_runner.timed) ->
      ( Vmbp_report.Par_runner.cell_name t.Vmbp_report.Par_runner.cell,
        match t.Vmbp_report.Par_runner.outcome with
        | Ok r ->
            Printf.sprintf "ok:%.0f:%d" r.Vmbp_report.Runner.result.Engine.cycles
              r.Vmbp_report.Runner.result.Engine.metrics.Metrics.mispredicts
        | Error msg -> "error:" ^ msg ))
    results

let test_par_runner_deterministic () =
  (* The same cell list must produce identical results, in input order, for
     every job count: the sequential path is the reference. *)
  let reference = signature (Vmbp_report.Par_runner.run_cells ~jobs:1 (toy_cells ())) in
  check_int "one result per cell" 12 (List.length reference);
  List.iter
    (fun jobs ->
      let got = signature (Vmbp_report.Par_runner.run_cells ~jobs (toy_cells ())) in
      Alcotest.(check (list (pair string string)))
        (Printf.sprintf "jobs=%d matches sequential" jobs)
        reference got)
    [ 2; 8 ];
  ignore (Vmbp_report.Par_runner.drain_log ())

let test_par_runner_fault_isolation () =
  let cells =
    List.map
      (fun (trap, name) ->
        Vmbp_report.Par_runner.cell ~tag:"test" ~cpu:Cpu_model.ideal
          ~technique:Technique.plain (toy_workload ~trap name))
      [ (false, "good-1"); (true, "bad"); (false, "good-2") ]
  in
  List.iter
    (fun jobs ->
      let results = Vmbp_report.Par_runner.run_cells ~jobs cells in
      match
        List.map (fun (t : Vmbp_report.Par_runner.timed) -> t.Vmbp_report.Par_runner.outcome) results
      with
      | [ Ok _; Error msg; Ok _ ] ->
          check_bool "trap message surfaces" true
            (String.length msg > 0
            && String.length msg >= 4
            &&
            let has_boom = ref false in
            for i = 0 to String.length msg - 4 do
              if String.sub msg i 4 = "boom" then has_boom := true
            done;
            !has_boom)
      | _ -> Alcotest.fail "trapping cell must fail alone, siblings succeed")
    [ 1; 4 ];
  ignore (Vmbp_report.Par_runner.drain_log ())

let test_par_runner_json_summary () =
  ignore (Vmbp_report.Par_runner.drain_log ());
  let cells =
    [
      Vmbp_report.Par_runner.cell ~tag:"test" ~cpu:Cpu_model.ideal
        ~technique:Technique.plain (toy_workload "toy-json");
      Vmbp_report.Par_runner.cell ~tag:"test" ~cpu:Cpu_model.ideal
        ~technique:Technique.plain (toy_workload ~trap:true "toy-trap");
    ]
  in
  ignore (Vmbp_report.Par_runner.run_cells ~jobs:1 cells);
  let logged = Vmbp_report.Par_runner.drain_log () in
  check_int "both cells logged" 2 (List.length logged);
  let json = Vmbp_report.Par_runner.json_summary ~jobs:1 logged in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let found = ref false in
    for i = 0 to hl - nl do
      if String.sub json i nl = needle then found := true
    done;
    !found
  in
  check_bool "schema marker" true (contains "\"schema\":\"vmbp-cells/7\"");
  check_bool "bank replay counter" true (contains "\"bank_replays\":");
  check_bool "banked config counter" true (contains "\"banked_configs\":");
  check_bool "translation counter" true (contains "\"translations\":");
  check_bool "plan reuse counter" true (contains "\"plan_reuses\":");
  check_bool "result cache counter" true (contains "\"result_hits\":");
  check_bool "translate wall" true (contains "\"translate_wall_seconds\":");
  check_bool "serve time per cell" true (contains "\"serve_seconds\":");
  check_bool "serve aggregate" true (contains "\"serve_wall_seconds\":");
  check_bool "ok cell serialised" true (contains "\"ok\":true");
  check_bool "failed cell serialised" true (contains "\"ok\":false");
  check_bool "wall time present" true (contains "\"wall_seconds\":");
  check_bool "attempts per cell" true (contains "\"attempts\":1");
  check_bool "from_journal per cell" true (contains "\"from_journal\":false");
  check_bool "retry counter" true (contains "\"retries\":0");
  check_bool "timeout counter" true (contains "\"timeouts\":0");
  check_bool "interrupted counter" true (contains "\"interrupted\":0");
  check_bool "injected-fault counter" true (contains "\"injected_faults\":");
  check_bool "respawn counter" true (contains "\"worker_respawns\":")

(* ------------------------------------------------------------------ *)
(* Explain: every mispredict and I-cache miss attributed, totals equal to
   the self-checked counters; and observability can never change numbers. *)

let test_explain_matches_checked_counters () =
  List.iter
    (fun (wname, cpu, technique) ->
      let w =
        Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth wname)
      in
      match Vmbp_report.Explain.run ~cpu ~technique w with
      | Error msg -> Alcotest.failf "%s: explain failed: %s" wname msg
      | Ok t ->
          let m =
            t.Vmbp_report.Explain.run.Vmbp_report.Runner.result.Engine.metrics
          in
          check_int (wname ^ ": every mispredict attributed")
            m.Metrics.mispredicts
            (Vmbp_obs.Attribution.total t.Vmbp_report.Explain.pred_att);
          check_int (wname ^ ": every icache miss attributed")
            m.Metrics.icache_misses
            (Vmbp_obs.Attribution.total t.Vmbp_report.Explain.icache_att);
          (* The independent oracle: a reference-model-checked run of the
             same cell must report exactly the attributed totals. *)
          (match Vmbp_report.Explain.verify ~cpu ~technique w t with
          | Ok () -> ()
          | Error msg -> Alcotest.failf "%s: verify failed: %s" wname msg);
          let rendered = Vmbp_report.Explain.render ~top:5 t in
          check_bool (wname ^ ": render names the technique") true
            (String.length rendered > 0))
    [
      (* finite BTB on the P4, two-level predictor on the Pentium M *)
      ("vmgen", Cpu_model.pentium4_northwood, Technique.plain);
      ("gray", Cpu_model.pentium_m, Technique.dynamic_repl);
    ]

let test_observability_invisible () =
  (* The same cell grid with span collection and metrics on must produce
     byte-identical simulated numbers: observation can never steer. *)
  let run_once () =
    Vmbp_report.Par_runner.clear_trace_cache ();
    let r =
      signature (Vmbp_report.Par_runner.run_cells ~jobs:1 (toy_cells ()))
    in
    ignore (Vmbp_report.Par_runner.drain_log ());
    r
  in
  let base = run_once () in
  Vmbp_obs.Span.enable ();
  Vmbp_obs.Registry.reset ();
  let traced = Fun.protect ~finally:Vmbp_obs.Span.disable run_once in
  Alcotest.(check (list (pair string string)))
    "numbers identical with observability on" base traced;
  check_bool "spans were actually collected" true (Vmbp_obs.Span.count () > 0);
  check_bool "metrics were actually collected" true
    (match Vmbp_obs.Registry.find_counter "trace_cache.misses" with
    | Some n -> n > 0L
    | None -> false)

(* ------------------------------------------------------------------ *)
(* Record/replay: a replayed cell must be field-for-field identical to a
   direct engine run of the same configuration. *)

let check_result_equal name (a : Engine.result) (b : Engine.result) =
  let ma = a.Engine.metrics and mb = b.Engine.metrics in
  let f field va vb = check_int (name ^ " " ^ field) va vb in
  f "vm_instrs" ma.Metrics.vm_instrs mb.Metrics.vm_instrs;
  f "native_instrs" ma.Metrics.native_instrs mb.Metrics.native_instrs;
  f "dispatches" ma.Metrics.dispatches mb.Metrics.dispatches;
  f "indirect_branches" ma.Metrics.indirect_branches
    mb.Metrics.indirect_branches;
  f "mispredicts" ma.Metrics.mispredicts mb.Metrics.mispredicts;
  f "vm_branch_mispredicts" ma.Metrics.vm_branch_mispredicts
    mb.Metrics.vm_branch_mispredicts;
  f "icache_fetches" ma.Metrics.icache_fetches mb.Metrics.icache_fetches;
  f "icache_misses" ma.Metrics.icache_misses mb.Metrics.icache_misses;
  f "code_bytes" ma.Metrics.code_bytes mb.Metrics.code_bytes;
  f "quickenings" ma.Metrics.quickenings mb.Metrics.quickenings;
  Alcotest.(check (float 0.)) (name ^ " cycles") a.Engine.cycles b.Engine.cycles;
  Alcotest.(check (float 0.)) (name ^ " seconds") a.Engine.seconds
    b.Engine.seconds;
  f "steps" a.Engine.steps b.Engine.steps;
  Alcotest.(check (option string)) (name ^ " trapped") a.Engine.trapped
    b.Engine.trapped

let test_replay_equivalence_gforth () =
  (* Every paper Gforth variant, two CPUs, plus a predictor override: one
     recording must reproduce each direct run exactly. *)
  let w = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Forth "bench-gc") in
  let cpus = [ Cpu_model.celeron_800; Cpu_model.pentium4_northwood ] in
  List.iter
    (fun technique ->
      let tname = Technique.name technique in
      match Vmbp_report.Runner.record ~technique w with
      | Error `Overflow -> Alcotest.fail (tname ^ ": record overflowed")
      | Error (`Failed msg) -> Alcotest.fail (tname ^ ": record failed: " ^ msg)
      | Ok tr ->
          List.iter
            (fun (cpu : Cpu_model.t) ->
              let direct = Vmbp_report.Runner.run ~cpu ~technique w in
              let replayed =
                Result.get_ok (Vmbp_report.Runner.replay ~cpu tr)
              in
              check_result_equal
                (tname ^ "/" ^ cpu.Cpu_model.name)
                direct.Vmbp_report.Runner.result
                replayed.Vmbp_report.Runner.result;
              Alcotest.(check string)
                (tname ^ " output")
                direct.Vmbp_report.Runner.output
                replayed.Vmbp_report.Runner.output)
            cpus;
          let cpu = Cpu_model.pentium4_northwood in
          let direct =
            Vmbp_report.Runner.run ~predictor:Predictor.Perfect ~cpu ~technique
              w
          in
          let replayed =
            Result.get_ok
              (Vmbp_report.Runner.replay ~predictor:Predictor.Perfect ~cpu tr)
          in
          check_result_equal (tname ^ "/perfect-override")
            direct.Vmbp_report.Runner.result
            replayed.Vmbp_report.Runner.result)
    Technique.paper_gforth_variants

let test_replay_equivalence_jvm_quickening () =
  (* A JVM workload mutates its own program (quickening): the trace must
     still replay exactly, on more than one CPU. *)
  let w = Option.get (Vmbp_workloads.find ~vm:Vmbp_workloads.Jvm "db") in
  let technique = Technique.plain in
  let tr = Result.get_ok (Vmbp_report.Runner.record ~technique w) in
  List.iter
    (fun (cpu : Cpu_model.t) ->
      let direct = Vmbp_report.Runner.run ~cpu ~technique w in
      check_bool "workload actually quickens" true
        (direct.Vmbp_report.Runner.result.Engine.metrics.Metrics.quickenings
        > 0);
      let replayed = Result.get_ok (Vmbp_report.Runner.replay ~cpu tr) in
      check_result_equal ("jvm/" ^ cpu.Cpu_model.name)
        direct.Vmbp_report.Runner.result replayed.Vmbp_report.Runner.result)
    [ Cpu_model.celeron_800; Cpu_model.pentium_m ]

let test_replay_trap_and_fuel () =
  (* A trapping run records fine and replays to the same Error a direct
     run_result produces. *)
  let w = toy_workload ~trap:true "trace-trap" in
  let cpu = Cpu_model.pentium4_northwood in
  let direct =
    Vmbp_report.Runner.run_result ~cpu ~technique:Technique.plain w
  in
  let tr =
    Result.get_ok (Vmbp_report.Runner.record ~technique:Technique.plain w)
  in
  let replayed = Vmbp_report.Runner.replay ~cpu tr in
  (match (direct, replayed) with
  | Error a, Error b -> Alcotest.(check string) "trap message" a b
  | _ -> Alcotest.fail "both trap paths must fail");
  (* Fuel exhaustion mid-run: partial metrics replay exactly. *)
  let w = toy_workload "trace-fuel" in
  let loaded = w.Vmbp_workloads.load ~scale:1 in
  let config = Config.make ~cpu Technique.plain in
  let layout =
    Config.build_layout config ~program:loaded.Vmbp_workloads.program
  in
  let s1 = loaded.Vmbp_workloads.fresh_session () in
  let direct =
    Engine.run ~fuel:50 ~config ~layout ~exec:s1.Vmbp_workloads.exec ()
  in
  let s2 = loaded.Vmbp_workloads.fresh_session () in
  let tr =
    Option.get
      (Vmbp_report.Trace.record ~fuel:50 ~layout
         ~exec:s2.Vmbp_workloads.exec ~output:s2.Vmbp_workloads.output ())
  in
  let replayed =
    Vmbp_report.Trace.replay tr ~cpu
      ~predictor:(Config.predictor_kind config)
  in
  check_bool "fuel run trapped" true (direct.Engine.trapped <> None);
  check_result_equal "fuel-exhausted" direct replayed

let test_record_overflow_and_fallback () =
  (* An impossible budget must refuse to record... *)
  let w = toy_workload "trace-cap" in
  (match
     Vmbp_report.Runner.record ~cap_bytes:1000 ~technique:Technique.plain w
   with
  | Error `Overflow -> ()
  | Ok _ -> Alcotest.fail "1000-word cap cannot hold any trace"
  | Error (`Failed msg) -> Alcotest.fail ("unexpected failure: " ^ msg));
  (* ...and the planner must fall back to direct cells yet still agree with
     the traced run. *)
  Vmbp_report.Par_runner.clear_trace_cache ();
  let cells () =
    let w = toy_workload "trace-fallback" in
    List.map
      (fun cpu ->
        Vmbp_report.Par_runner.cell ~tag:"test" ~cpu
          ~technique:Technique.plain w)
      [ Cpu_model.ideal; Cpu_model.pentium4_northwood ]
  in
  let saved = !Vmbp_report.Par_runner.trace_cap_mb in
  Vmbp_report.Par_runner.trace_cap_mb := 0;
  let direct = Vmbp_report.Par_runner.run_cells ~jobs:1 (cells ()) in
  Vmbp_report.Par_runner.trace_cap_mb := saved;
  let traced = Vmbp_report.Par_runner.run_cells ~jobs:1 (cells ()) in
  List.iter
    (fun (t : Vmbp_report.Par_runner.timed) ->
      check_bool "cap 0 forces direct" true
        (t.Vmbp_report.Par_runner.mode = Vmbp_report.Par_runner.Direct))
    direct;
  Alcotest.(check (list string))
    "one record then replays"
    [ "record"; "replay" ]
    (List.map
       (fun (t : Vmbp_report.Par_runner.timed) ->
         Vmbp_report.Par_runner.mode_name t.Vmbp_report.Par_runner.mode)
       traced);
  Alcotest.(check (list (pair string string)))
    "direct and traced agree" (signature direct) (signature traced);
  check_bool "trace retained for later experiments" true
    (Vmbp_report.Par_runner.trace_cache_bytes () > 0);
  Vmbp_report.Par_runner.clear_trace_cache ();
  check_int "cache cleared" 0 (Vmbp_report.Par_runner.trace_cache_bytes ());
  ignore (Vmbp_report.Par_runner.drain_log ())

let test_memo_survives_release () =
  (* A released trace keeps answering configurations it already served:
     the planner's eviction relies on this to turn evicted cache entries
     into memo-only summaries. *)
  let w = toy_workload "trace-memo" in
  let tr =
    match Vmbp_report.Runner.record ~technique:Technique.plain w with
    | Ok tr -> tr
    | Error _ -> Alcotest.fail "toy workload must record"
  in
  let cpu = Cpu_model.ideal in
  let served =
    match Vmbp_report.Runner.replay ~cpu tr with
    | Ok r -> r
    | Error msg -> Alcotest.fail msg
  in
  (match Vmbp_report.Runner.replay_memo ~cpu:Cpu_model.pentium4_northwood tr with
  | None -> ()
  | Some _ -> Alcotest.fail "unseen configuration must miss the memo");
  Vmbp_report.Runner.release_trace tr;
  (match Vmbp_report.Runner.replay_memo ~cpu tr with
  | Some (Ok r) ->
      check_result_equal "memo after release"
        served.Vmbp_report.Runner.result r.Vmbp_report.Runner.result;
      Alcotest.(check string)
        "output after release" served.Vmbp_report.Runner.output
        r.Vmbp_report.Runner.output
  | Some (Error msg) -> Alcotest.fail msg
  | None -> Alcotest.fail "served configuration must hit the memo");
  match Vmbp_report.Runner.replay_memo ~cpu:Cpu_model.pentium4_northwood tr with
  | None -> ()
  | Some _ -> Alcotest.fail "released trace cannot serve new configurations"

(* Tentpole: one banked traversal must reproduce every per-cell replay
   field for field across the full CPU grid and predictor overrides,
   including trapping runs; and because the bank lands in the trace's memo
   tables, the LRU demotion path (release + replay_memo) serves every
   banked configuration too. *)
let test_banked_replay_matches_per_cell () =
  let overrides =
    [
      None;
      Some Predictor.Perfect;
      Some Predictor.Never;
      Some (Predictor.Btb Btb.ideal);
      Some (Predictor.Btb (Btb.classic ~entries:512 ~associativity:4));
      Some (Predictor.Btb (Btb.with_counters ~entries:256 ~associativity:2));
      Some (Predictor.Two_level Two_level.default);
      Some (Predictor.Case_block 256);
    ]
  in
  let grid =
    List.concat_map
      (fun cpu -> List.map (fun p -> (cpu, p)) overrides)
      Cpu_model.all
  in
  List.iter
    (fun (name, trap) ->
      let w = toy_workload ~trap name in
      let technique = Technique.plain in
      let banked = Result.get_ok (Vmbp_report.Runner.record ~technique w) in
      let control = Result.get_ok (Vmbp_report.Runner.record ~technique w) in
      let fresh = Vmbp_report.Runner.replay_bank ~configs:grid banked in
      check_bool (name ^ ": bank simulated fresh configs") true (fresh > 0);
      check_int
        (name ^ ": re-banking the same grid simulates nothing")
        0
        (Vmbp_report.Runner.replay_bank ~configs:grid banked);
      let compare_served tag =
        List.iter
          (fun ((cpu : Cpu_model.t), predictor) ->
            let label =
              Printf.sprintf "%s/%s/%s/%s" name tag cpu.Cpu_model.name
                (match predictor with
                | Some p -> Predictor.kind_name p
                | None -> "cpu")
            in
            let served =
              Vmbp_report.Runner.replay_memo ?predictor ~cpu banked
            in
            let reference =
              Vmbp_report.Runner.replay ?predictor ~cpu control
            in
            match (served, reference) with
            | Some (Ok a), Ok b ->
                check_result_equal label a.Vmbp_report.Runner.result
                  b.Vmbp_report.Runner.result;
                Alcotest.(check string)
                  (label ^ " output") b.Vmbp_report.Runner.output
                  a.Vmbp_report.Runner.output
            | Some (Error a), Error b ->
                Alcotest.(check string) (label ^ " error") b a
            | None, _ -> Alcotest.fail (label ^ ": bank must have memoized")
            | _ -> Alcotest.fail (label ^ ": served and direct disagree"))
          grid
      in
      compare_served "banked";
      Vmbp_report.Runner.release_trace banked;
      compare_served "released";
      Vmbp_report.Runner.release_trace control)
    [ ("bank-grid", false); ("bank-trap", true) ];
  (* Fuel exhaustion mid-run: the banked counters replay the partial
     metrics exactly. *)
  let w = toy_workload "bank-fuel" in
  let loaded = w.Vmbp_workloads.load ~scale:1 in
  let cpu = Cpu_model.pentium4_northwood in
  let config = Config.make ~cpu Technique.plain in
  let layout =
    Config.build_layout config ~program:loaded.Vmbp_workloads.program
  in
  let record () =
    let s = loaded.Vmbp_workloads.fresh_session () in
    Option.get
      (Vmbp_report.Trace.record ~fuel:50 ~layout ~exec:s.Vmbp_workloads.exec
         ~output:s.Vmbp_workloads.output ())
  in
  let banked = record () and control = record () in
  let kind = Config.predictor_kind config in
  check_int "bank-fuel: two fresh configs" 2
    (Vmbp_report.Trace.replay_bank banked ~predictors:[ kind ]
       ~icaches:[ cpu.Cpu_model.icache ]);
  check_result_equal "bank-fuel"
    (Vmbp_report.Trace.replay control ~cpu ~predictor:kind)
    (Vmbp_report.Trace.replay banked ~cpu ~predictor:kind)

(* Satellite: the memo tables stay duplicate-free when several domains
   replay the same configurations concurrently -- the old assoc-list memo
   had a check-then-insert race where two domains could both miss the
   lookup and both prepend a binding. *)
let test_memo_insert_race_free () =
  let w = toy_workload "bank-race" in
  let loaded = w.Vmbp_workloads.load ~scale:1 in
  let config = Config.make Technique.plain in
  let layout =
    Config.build_layout config ~program:loaded.Vmbp_workloads.program
  in
  let s = loaded.Vmbp_workloads.fresh_session () in
  let tr =
    Option.get
      (Vmbp_report.Trace.record ~layout ~exec:s.Vmbp_workloads.exec
         ~output:s.Vmbp_workloads.output ())
  in
  let kinds =
    [
      Predictor.Perfect;
      Predictor.Never;
      Predictor.Btb Btb.ideal;
      Predictor.Btb (Btb.classic ~entries:512 ~associativity:4);
      Predictor.Two_level Two_level.default;
      Predictor.Case_block 256;
    ]
  in
  let cpus = Cpu_model.all in
  let started = Atomic.make 0 in
  let worker () =
    (* Line every domain up on the first, raciest round. *)
    Atomic.incr started;
    while Atomic.get started < 4 do
      Domain.cpu_relax ()
    done;
    for _ = 1 to 5 do
      List.iter
        (fun (cpu : Cpu_model.t) ->
          List.iter
            (fun predictor ->
              ignore
                (Vmbp_report.Trace.replay tr ~cpu ~predictor
                  : Engine.result))
            kinds)
        cpus
    done
  in
  let domains = Array.init 3 (fun _ -> Domain.spawn worker) in
  worker ();
  Array.iter Domain.join domains;
  let distinct descriptors =
    List.length (List.sort_uniq compare descriptors)
  in
  let preds, icaches = Vmbp_report.Trace.memo_sizes tr in
  check_int "predictor memo duplicate-free"
    (distinct (List.map Predictor.descriptor kinds))
    preds;
  check_int "icache memo duplicate-free"
    (distinct
       (List.map
          (fun (c : Cpu_model.t) -> Icache.descriptor c.Cpu_model.icache)
          cpus))
    icaches;
  Vmbp_report.Trace.release tr

(* Satellite: a fully memo-served replay still polls, so a long run of
   memo-served groups cannot blind-spot the --cell-timeout watchdog. *)
let test_memoized_replay_still_polls () =
  let w = toy_workload "bank-poll" in
  let cpu = Cpu_model.ideal in
  let tr =
    Result.get_ok (Vmbp_report.Runner.record ~technique:Technique.plain w)
  in
  ignore (Vmbp_report.Runner.replay_bank ~configs:[ (cpu, None) ] tr : int);
  let polls = ref 0 in
  let poll () = incr polls in
  (match Vmbp_report.Runner.replay ~poll ~cpu tr with
  | Ok _ -> ()
  | Error msg -> Alcotest.fail msg);
  check_bool "memo-served replay polls at least once" true (!polls >= 1);
  polls := 0;
  check_int "fully memoized bank simulates nothing" 0
    (Vmbp_report.Runner.replay_bank ~poll ~configs:[ (cpu, None) ] tr);
  check_bool "memo-served bank polls at least once" true (!polls >= 1);
  Vmbp_report.Runner.release_trace tr

(* Satellite: the canonical descriptors that key the banked memo tables
   must never collide across distinct configurations -- checked over a
   dense grid of every predictor family and I-cache geometry. *)
let test_bank_descriptor_injective () =
  let btbs =
    List.concat_map
      (fun entries ->
        List.concat_map
          (fun associativity ->
            List.map
              (fun two_bit_counters ->
                Predictor.Btb { Btb.entries; associativity; two_bit_counters })
              [ false; true ])
          [ 1; 2; 4; 8 ])
      [ 0; 64; 128; 256; 512; 1024 ]
  in
  let two_levels =
    List.concat_map
      (fun entries ->
        List.map
          (fun history -> Predictor.Two_level { Two_level.entries; history })
          [ 1; 2; 4; 8 ])
      [ 64; 256; 1024 ]
  in
  let case_blocks =
    List.map (fun n -> Predictor.Case_block n) [ 16; 64; 256; 1024 ]
  in
  let kinds =
    (Predictor.Perfect :: Predictor.Never :: btbs) @ two_levels @ case_blocks
  in
  let distinct l = List.length (List.sort_uniq compare l) in
  check_int "predictor descriptors pairwise distinct" (List.length kinds)
    (distinct (List.map Predictor.descriptor kinds));
  let icaches =
    Icache.infinite
    :: List.concat_map
         (fun size_bytes ->
           List.concat_map
             (fun line_bytes ->
               List.map
                 (fun associativity ->
                   Icache.make_config ~size_bytes ~line_bytes ~associativity)
                 [ 1; 2; 4 ])
             [ 16; 32; 64 ])
         [ 4096; 8192; 16384; 32768 ]
  in
  check_int "icache descriptors pairwise distinct" (List.length icaches)
    (distinct (List.map Icache.descriptor icaches));
  (* The bank constructors dedup on exactly these keys: feeding the grid
     twice must build each simulator once, in first-occurrence order. *)
  check_int "predictor bank dedups on the descriptor" (List.length kinds)
    (List.length (Predictor.create_bank (kinds @ kinds)));
  check_int "icache bank dedups on the descriptor" (List.length icaches)
    (List.length (Icache.create_bank (icaches @ icaches)));
  (* Invalid geometry: dropped by the bank, still raises for the per-cell
     path that actually uses it. *)
  let bad =
    Predictor.Btb { Btb.entries = 64; associativity = 0; two_bit_counters = false }
  in
  check_int "invalid config dropped from the bank" 1
    (List.length (Predictor.create_bank [ bad; Predictor.Perfect ]))

(* ------------------------------------------------------------------ *)
(* Supervision: chaos injection, watchdog/retry, journal and resume.

   Every [Faults] injection point is exercised here: cell-raise (retry and
   exhaustion), record-fail (group degrades to direct), slow-cell (the
   watchdog timeout), journal-io (append degrades, run continues) and
   worker-death (sequential kill-and-resume, pool respawn). *)

module PR = Vmbp_report.Par_runner
module Faults = Vmbp_report.Faults
module Journal = Vmbp_report.Journal

let reset_supervision () =
  Faults.reset ();
  PR.reset_shutdown ();
  PR.clear_journal ();
  PR.cell_timeout := 0.;
  PR.cell_retries := 1;
  PR.retry_backoff_s := 0.001;
  PR.clear_trace_cache ();
  PR.clear_result_cache ();
  ignore (PR.drain_log ())

(* Chaos state is process-global; leave none of it behind for later tests. *)
let supervised f () =
  reset_supervision ();
  Fun.protect f
    ~finally:(fun () ->
      reset_supervision ();
      PR.retry_backoff_s := 0.02)

let configure_chaos spec =
  match Faults.configure spec with
  | Ok () -> ()
  | Error msg -> Alcotest.fail (Printf.sprintf "chaos spec %S: %s" spec msg)

let test_chaos_spec_parsing () =
  let bad s =
    match Faults.configure s with
    | Error _ -> ()
    | Ok () -> Alcotest.fail (Printf.sprintf "spec %S must be rejected" s)
  in
  configure_chaos "cell-raise=2";
  configure_chaos "worker-death=2+1,seed=42";
  configure_chaos "journal-io=0.25,seed=7";
  configure_chaos "slow-cell=1@0.2";
  check_bool "armed after configure" true (Faults.armed ());
  bad "bogus-point=1";
  bad "cell-raise";
  bad "cell-raise=0";
  bad "cell-raise=1.5";
  bad "worker-death=-1+2";
  bad "slow-cell=1@nope";
  bad "seed=abc";
  check_bool "a bad spec disarms everything" false (Faults.armed ());
  configure_chaos "";
  check_bool "empty spec is a no-op" false (Faults.armed ())

let one_cell ?predictor ?(cpu = Cpu_model.ideal) name =
  PR.cell ~tag:"test" ?predictor ~cpu ~technique:Technique.plain
    (toy_workload name)

let test_cell_raise_retry () =
  (* One injected transient failure: the retry makes the cell succeed on
     attempt 2, and the outcome matches an injection-free run. *)
  configure_chaos "cell-raise=1";
  (match PR.run_cells ~jobs:1 [ one_cell "chaos-retry" ] with
  | [ t ] ->
      check_bool "retried cell succeeds" true (Result.is_ok t.PR.outcome);
      check_int "two attempts" 2 t.PR.attempts;
      check_bool "not a timeout" false t.PR.timed_out
  | _ -> Alcotest.fail "one cell in, one result out");
  check_int "cell-raise fired once" 1 (Faults.fired Faults.Cell_raise);
  (* More injected failures than retries: the cell fails with the injected
     error after exhausting its attempts, and siblings are untouched. *)
  Faults.reset ();
  PR.clear_trace_cache ();
  configure_chaos "cell-raise=5";
  PR.cell_retries := 2;
  match
    PR.run_cells ~jobs:1 [ one_cell "chaos-exhaust"; one_cell "chaos-ok" ]
  with
  | [ t1; t2 ] ->
      (match t1.PR.outcome with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "5 injected failures must exhaust 2 retries");
      check_int "attempts = 1 + retries" 3 t1.PR.attempts;
      check_bool "sibling cell unharmed" true (Result.is_ok t2.PR.outcome)
  | _ -> Alcotest.fail "two cells in, two results out"

let test_record_fail_degrades () =
  (* A failure in the group-level record path must degrade the group to
     per-cell direct runs with identical numbers -- never abort the pool. *)
  let cells () =
    let w = toy_workload "chaos-record" in
    List.map
      (fun cpu -> PR.cell ~tag:"test" ~cpu ~technique:Technique.plain w)
      [ Cpu_model.ideal; Cpu_model.pentium4_northwood ]
  in
  let reference = signature (PR.run_cells ~jobs:1 (cells ())) in
  PR.clear_trace_cache ();
  configure_chaos "record-fail=1";
  let chaos = PR.run_cells ~jobs:1 (cells ()) in
  check_int "record-fail fired" 1 (Faults.fired Faults.Record_fail);
  List.iter
    (fun (t : PR.timed) ->
      check_bool "degraded cells run direct" true (t.PR.mode = PR.Direct))
    chaos;
  Alcotest.(check (list (pair string string)))
    "degraded group agrees with the traced run" reference (signature chaos)

let test_slow_cell_timeout () =
  (* The slow-cell stall trips the cooperative deadline on both the direct
     path and the replay path; the sibling cell is unaffected. *)
  let saved = !PR.trace_cap_mb in
  Fun.protect
    ~finally:(fun () -> PR.trace_cap_mb := saved)
    (fun () ->
      PR.cell_timeout := 0.05;
      List.iter
        (fun (cap, path) ->
          PR.trace_cap_mb := cap;
          PR.clear_trace_cache ();
          Faults.reset ();
          configure_chaos "slow-cell=1@0.3";
          match
            PR.run_cells ~jobs:1
              [
                one_cell ("chaos-slow-" ^ path);
                one_cell ("chaos-fast-" ^ path);
              ]
          with
          | [ slow; fast ] ->
              (match slow.PR.outcome with
              | Error msg ->
                  check_bool (path ^ ": timeout message") true
                    (String.length msg > 0)
              | Ok _ -> Alcotest.fail (path ^ ": stalled cell must time out"));
              check_bool (path ^ ": timed_out flag") true slow.PR.timed_out;
              check_int (path ^ ": timeouts are not retried") 1
                slow.PR.attempts;
              check_bool (path ^ ": sibling finishes") true
                (Result.is_ok fast.PR.outcome)
          | _ -> Alcotest.fail "two cells in, two results out")
        [ (0, "direct"); (saved, "replay") ])

let test_bad_predictor_is_failed_cell () =
  (* An invalid BTB override surfaces as that cell's [Error], not a pool
     abort; valid siblings still complete. *)
  PR.cell_retries := 0;
  let bad =
    Predictor.Btb
      { Btb.entries = 64; associativity = 0; two_bit_counters = false }
  in
  match
    PR.run_cells ~jobs:1
      [
        one_cell "pred-good-a";
        one_cell ~predictor:bad "pred-bad";
        one_cell ~predictor:Predictor.Perfect "pred-good-b";
      ]
  with
  | [ a; b; c ] ->
      check_bool "plain sibling ok" true (Result.is_ok a.PR.outcome);
      (match b.PR.outcome with
      | Error msg ->
          check_bool "error mentions the config" true
            (String.length msg > 0)
      | Ok _ -> Alcotest.fail "zero associativity must fail the cell");
      check_bool "override sibling ok" true (Result.is_ok c.PR.outcome)
  | _ -> Alcotest.fail "three cells in, three results out"

let with_temp_journal f =
  let file = Filename.temp_file "vmbp-journal" ".jsonl" in
  Fun.protect
    ~finally:(fun () ->
      PR.clear_journal ();
      try Sys.remove file with Sys_error _ -> ())
    (fun () -> f file)

let test_journal_roundtrip_resume () =
  with_temp_journal (fun file ->
      PR.set_journal ~file ~resume:false;
      let first = PR.run_cells ~jobs:1 (toy_cells ()) in
      let appended =
        match PR.journal_stats () with
        | Some s -> s.Journal.appended
        | None -> Alcotest.fail "journal must be installed"
      in
      check_int "every completed cell journaled" 12 appended;
      (* Reopen with resume: every cell is served from the file, nothing is
         simulated, and the numbers are identical. *)
      PR.clear_journal ();
      PR.clear_trace_cache ();
      PR.set_journal ~file ~resume:true;
      let resumed = PR.run_cells ~jobs:1 (toy_cells ()) in
      List.iter
        (fun (t : PR.timed) ->
          check_bool "served from journal" true t.PR.from_journal)
        resumed;
      Alcotest.(check (list (pair string string)))
        "resumed run is identical" (signature first) (signature resumed);
      (* Full-fidelity check on one cell, not just the signature. *)
      (match (first, resumed) with
      | a :: _, b :: _ ->
          (match (a.PR.outcome, b.PR.outcome) with
          | Ok ra, Ok rb ->
              check_result_equal "journal round-trip"
                ra.Vmbp_report.Runner.result rb.Vmbp_report.Runner.result;
              Alcotest.(check string)
                "output round-trip" ra.Vmbp_report.Runner.output
                rb.Vmbp_report.Runner.output
          | _ -> Alcotest.fail "toy cells must succeed")
      | _ -> Alcotest.fail "no results");
      match PR.journal_stats () with
      | Some s ->
          check_int "all 12 loaded" 12 s.Journal.loaded;
          check_int "all 12 served" 12 s.Journal.served;
          check_int "nothing re-appended" 0 s.Journal.appended;
          check_int "no truncation" 0 s.Journal.truncated
      | None -> Alcotest.fail "journal must be installed")

let test_journal_truncated_line () =
  (* A crash can cut the final journal line short; resume must skip it,
     count it, and recompute just that cell. *)
  with_temp_journal (fun file ->
      PR.set_journal ~file ~resume:false;
      let first = PR.run_cells ~jobs:1 (toy_cells ()) in
      PR.clear_journal ();
      let oc = open_out_gen [ Open_append ] 0o644 file in
      output_string oc "{\"key\":\"half-writ";
      close_out oc;
      PR.clear_trace_cache ();
      PR.set_journal ~file ~resume:true;
      let resumed = PR.run_cells ~jobs:1 (toy_cells ()) in
      Alcotest.(check (list (pair string string)))
        "resume tolerates the torn line" (signature first) (signature resumed);
      match PR.journal_stats () with
      | Some s ->
          check_int "torn line counted" 1 s.Journal.truncated;
          check_int "intact lines all load" 12 s.Journal.loaded
      | None -> Alcotest.fail "journal must be installed")

let test_journal_io_fault () =
  (* An injected append failure degrades journaling for that cell; the run
     itself completes and the loss is visible in the stats. *)
  with_temp_journal (fun file ->
      configure_chaos "journal-io=1";
      PR.set_journal ~file ~resume:false;
      let results = PR.run_cells ~jobs:1 (toy_cells ()) in
      List.iter
        (fun (t : PR.timed) ->
          check_bool "cells unaffected by journal loss" true
            (Result.is_ok t.PR.outcome))
        results;
      check_int "journal-io fired" 1 (Faults.fired Faults.Journal_io);
      match PR.journal_stats () with
      | Some s ->
          check_int "one append lost" 1 s.Journal.write_errors;
          check_int "the rest landed" 11 s.Journal.appended
      | None -> Alcotest.fail "journal must be installed")

let test_journal_corrupt_scan_fuzz () =
  (* Satellite of the store PR: flip random bytes anywhere in a journal --
     not just the torn tail -- and resume.  Load must never raise, every
     damaged record must be skipped and counted, and no served cell may
     differ from the reference run (a corrupted record is recomputed, not
     trusted). *)
  let reference = signature (PR.run_cells ~jobs:1 (toy_cells ())) in
  let rng = Random.State.make [| 0xBADF00D |] in
  for _round = 1 to 6 do
    reset_supervision ();
    with_temp_journal (fun file ->
        PR.set_journal ~file ~resume:false;
        ignore (PR.run_cells ~jobs:1 (toy_cells ()));
        PR.clear_journal ();
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        close_in ic;
        for _ = 1 to 1 + Random.State.int rng 6 do
          let i = Random.State.int rng len in
          (* Never forge a newline: that would *split* a record, which is
             fine too, but keeping line structure makes the accounting
             below exact. *)
          let c = Random.State.int rng 255 in
          if Char.chr c <> '\n' && Bytes.get b i <> '\n' then
            Bytes.set b i (Char.chr c)
        done;
        let oc = open_out_bin file in
        output_bytes oc b;
        close_out oc;
        PR.clear_trace_cache ();
        PR.set_journal ~file ~resume:true;
        let resumed = PR.run_cells ~jobs:1 (toy_cells ()) in
        Alcotest.(check (list (pair string string)))
          "corrupted journal never changes a number" reference
          (signature resumed);
        match PR.journal_stats () with
        | Some s ->
            check_int "damaged + healthy = all lines" 12
              (s.Journal.loaded + s.Journal.truncated);
            check_int "every healthy record serves" s.Journal.loaded
              s.Journal.served
        | None -> Alcotest.fail "journal must be installed")
  done

let with_temp_store f =
  let dir =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "vmbp-store-%d-%d" (Unix.getpid ()) (Random.bits ()))
  in
  Fun.protect
    ~finally:(fun () ->
      PR.clear_store ();
      if Sys.file_exists dir then begin
        Array.iter
          (fun f -> try Sys.remove (Filename.concat dir f) with _ -> ())
          (Sys.readdir dir);
        try Unix.rmdir dir with Unix.Unix_error _ -> ()
      end)
    (fun () -> f dir)

let test_store_roundtrip_serve () =
  (* The content-addressed store as a resume layer: a second run over the
     same cells is served entirely from the store, byte-identically, and
     unlike the journal it also serves cells appended by the same
     process. *)
  with_temp_store (fun dir ->
      PR.set_store ~shards:4 dir;
      let first = PR.run_cells ~jobs:1 (toy_cells ()) in
      (match PR.store_stats () with
      | Some s ->
          check_int "every success stored" 12 s.Vmbp_store.Store.appended
      | None -> Alcotest.fail "store must be installed");
      (* Same process, same store: the live table serves instantly. *)
      PR.clear_trace_cache ();
      PR.clear_result_cache ();
      let second = PR.run_cells ~jobs:1 (toy_cells ()) in
      List.iter
        (fun (t : PR.timed) ->
          check_bool "served from store" true t.PR.from_journal)
        second;
      Alcotest.(check (list (pair string string)))
        "store round-trip is identical" (signature first) (signature second);
      (* Fresh process simulation: close and reopen the same directory. *)
      PR.clear_store ();
      PR.set_store ~shards:4 dir;
      PR.clear_trace_cache ();
      PR.clear_result_cache ();
      let third = PR.run_cells ~jobs:1 (toy_cells ()) in
      Alcotest.(check (list (pair string string)))
        "reloaded store is identical" (signature first) (signature third);
      (match PR.store_stats () with
      | Some s ->
          check_int "all 12 reloaded" 12 s.Vmbp_store.Store.loaded;
          check_int "nothing recomputed" 0 s.Vmbp_store.Store.appended
      | None -> Alcotest.fail "store must be installed");
      (* The vmbp-cells/7 summary surfaces the store counters. *)
      ignore (PR.drain_log ());
      let json = PR.json_summary ~jobs:1 third in
      let contains needle =
        let nl = String.length needle and hl = String.length json in
        let found = ref false in
        for i = 0 to hl - nl do
          if String.sub json i nl = needle then found := true
        done;
        !found
      in
      check_bool "summary has store_hits" true (contains "\"store_hits\":");
      check_bool "summary has store_misses" true
        (contains "\"store_misses\":");
      check_bool "summary has coalesced" true (contains "\"coalesced\":");
      check_bool "summary has shed" true (contains "\"shed\":");
      check_bool "summary has degraded_seconds" true
        (contains "\"degraded_seconds\":");
      check_bool "summary has store stats block" true
        (contains "\"store\":{"))

let test_store_io_fault_degrades () =
  (* store-io chaos: the append is dropped and counted; the run itself is
     unaffected and the cell recomputes on the next cold open. *)
  with_temp_store (fun dir ->
      PR.set_store ~shards:2 dir;
      configure_chaos "store-io=1";
      let results = PR.run_cells ~jobs:1 (toy_cells ()) in
      List.iter
        (fun (t : PR.timed) ->
          check_bool "cells unaffected by store loss" true
            (Result.is_ok t.PR.outcome))
        results;
      check_int "store-io fired" 1 (Faults.fired Faults.Store_io);
      match PR.store_stats () with
      | Some s ->
          check_int "one append dropped" 1 s.Vmbp_store.Store.write_errors;
          check_int "the rest landed" 11 s.Vmbp_store.Store.appended
      | None -> Alcotest.fail "store must be installed")

let test_sequential_kill_and_resume () =
  (* The headline crash-safety property: kill the (sequential) run after two
     groups via the worker-death point -- the stand-in for a killed process
     -- then resume from the journal and get a byte-identical report. *)
  with_temp_journal (fun file ->
      let reference = signature (PR.run_cells ~jobs:1 (toy_cells ())) in
      PR.clear_trace_cache ();
      configure_chaos "worker-death=2+1";
      PR.set_journal ~file ~resume:false;
      (match PR.run_cells ~jobs:1 (toy_cells ()) with
      | exception Faults.Worker_killed -> ()
      | _ -> Alcotest.fail "sequential worker death must escape run_cells");
      Faults.reset ();
      PR.clear_journal ();
      PR.clear_trace_cache ();
      PR.set_journal ~file ~resume:true;
      let resumed = PR.run_cells ~jobs:1 (toy_cells ()) in
      Alcotest.(check (list (pair string string)))
        "resumed report is byte-identical" reference (signature resumed);
      let from_journal =
        List.length (List.filter (fun t -> t.PR.from_journal) resumed)
      in
      check_int "exactly the pre-kill cells come from the journal" 2
        from_journal;
      (* The JSON summary separates journal-served cells from live work. *)
      ignore (PR.drain_log ());
      let json = PR.json_summary ~jobs:1 resumed in
      let contains needle =
        let nl = String.length needle and hl = String.length json in
        let found = ref false in
        for i = 0 to hl - nl do
          if String.sub json i nl = needle then found := true
        done;
        !found
      in
      check_bool "summary counts journal-served cells" true
        (contains "\"from_journal\":2"))

let test_pool_respawn () =
  (* In a pool, a worker death is contained: the group is re-queued, fresh
     workers are spawned, and every cell still completes. *)
  let before = PR.worker_respawns () in
  configure_chaos "worker-death=2";
  let results = PR.run_cells ~jobs:2 (toy_cells ()) in
  check_int "all cells complete despite two dead workers" 12
    (List.length results);
  List.iter
    (fun (t : PR.timed) ->
      check_bool "cell completed" true (Result.is_ok t.PR.outcome);
      check_bool "no shutdown holes" true (t.PR.attempts > 0))
    results;
  check_int "both deaths fired" 2 (Faults.fired Faults.Worker_death);
  check_bool "respawns recorded" true (PR.worker_respawns () > before)

let test_shutdown_skips_pending () =
  (* A shutdown requested before the run starts (the degenerate first-Ctrl-C
     case) reports every cell as interrupted, with nothing journaled. *)
  PR.request_shutdown ();
  let results = PR.run_cells ~jobs:1 (toy_cells ()) in
  List.iter
    (fun (t : PR.timed) ->
      (match t.PR.outcome with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail "no cell may run after shutdown");
      check_int "nothing was attempted" 0 t.PR.attempts)
    results;
  PR.reset_shutdown ();
  ignore (PR.drain_log ());
  let json = PR.json_summary ~jobs:1 results in
  let contains needle =
    let nl = String.length needle and hl = String.length json in
    let found = ref false in
    for i = 0 to hl - nl do
      if String.sub json i nl = needle then found := true
    done;
    !found
  in
  check_bool "summary counts interrupted cells" true
    (contains "\"interrupted\":12")

(* ------------------------------------------------------------------ *)
(* Differential self-check: lockstep oracle runs, mutation testing,
   sampled audits, and the key/fingerprint identities the resume journal
   and the audit sampler rely on. *)

module Audit = Vmbp_report.Audit

let audited_test f () =
  reset_supervision ();
  Audit.reset_stats ();
  let saved_dir = !Audit.repro_dir in
  Audit.repro_dir := Filename.get_temp_dir_name ();
  Fun.protect f
    ~finally:(fun () ->
      reset_supervision ();
      PR.retry_backoff_s := 0.02;
      PR.self_check := false;
      PR.audit_sample := 0.02;
      List.iter
        (fun (d : Audit.divergence) ->
          match d.Audit.d_artifact with
          | Some path -> ( try Sys.remove path with Sys_error _ -> ())
          | None -> ())
        (Audit.divergences ());
      Audit.reset_stats ();
      Audit.repro_dir := saved_dir)

let test_self_check_grid () =
  (* Every toy cell runs in lockstep with the reference models: zero
     divergences, every cell audited, and the numbers identical to an
     unchecked run. *)
  let plain = signature (PR.run_cells ~jobs:1 (toy_cells ())) in
  PR.self_check := true;
  let results = PR.run_cells ~jobs:1 (toy_cells ()) in
  Alcotest.(check (list (pair string string)))
    "self-check preserves every number" plain (signature results);
  List.iter
    (fun (t : PR.timed) -> check_bool "cell audited" true t.PR.audited)
    results;
  check_int "no divergences" 0 (Audit.divergence_count ());
  check_int "all cells audited" 12 (Audit.audited_count ());
  ignore (PR.drain_log ())

(* A deliberately broken fast simulator: every 100th prediction is
   flipped.  Fresh instances restart the fault counter, so the bug is
   deterministic under re-recording and shrinking. *)
let buggy_maker ~predictor ~icache () =
  let s = Audit.fast_sim ~predictor ~icache in
  let n = ref 0 in
  {
    s with
    Audit.sim_predict =
      (fun ~branch ~target ~opcode ->
        incr n;
        let p = s.Audit.sim_predict ~branch ~target ~opcode in
        if !n mod 100 = 0 then not p else p);
  }

let test_self_check_catches_mutation () =
  let cpu = Cpu_model.pentium4_northwood in
  let technique = Technique.plain in
  let w = toy_workload "mutation" in
  let config = Vmbp_core.Config.make ~cpu technique in
  let predictor = Vmbp_core.Config.predictor_kind config in
  let icache = cpu.Cpu_model.icache in
  let fast_maker () = buggy_maker ~predictor ~icache () in
  (match
     Vmbp_report.Runner.run_checked ~fast_maker ~cell:"mutation-test" ~cpu
       ~technique w
   with
  | Ok _ -> Alcotest.fail "the seeded simulator bug must be caught"
  | Error msg ->
      let prefix = "self-check divergence" in
      check_bool "error names the divergence" true
        (String.length msg >= String.length prefix
        && String.sub msg 0 (String.length prefix) = prefix));
  match Audit.divergences () with
  | [ d ] -> (
      check_bool "divergent event captured" true (d.Audit.d_event <> None);
      match d.Audit.d_artifact with
      | None -> Alcotest.fail "a repro artifact must be written"
      | Some path -> (
          match Audit.load_repro path with
          | Error msg -> Alcotest.fail ("artifact must load back: " ^ msg)
          | Ok r -> (
              check_int "artifact is the minimal prefix" (r.Audit.r_index + 1)
                (Array.length r.Audit.r_events);
              (* Replaying against the broken sim reproduces the recorded
                 divergence at the same event... *)
              (match
                 Audit.replay_repro ~fast:(fast_maker ()) r
               with
              | Some (idx, _, _, _) ->
                  check_int "same divergent event on replay" r.Audit.r_index idx
              | None -> Alcotest.fail "buggy sim must still diverge on replay");
              (* ...and the stock simulators agree on the same stream (the
                 bug lives in the mutant, not in the production code). *)
              match Audit.replay_repro r with
              | None -> ()
              | Some (idx, detail, _, _) ->
                  Alcotest.fail
                    (Printf.sprintf
                       "stock simulators diverged at %d (%s) on a \
                        mutant-only repro"
                       idx detail))))
  | ds -> check_int "exactly one divergence recorded" 1 (List.length ds)

let test_audit_sample_crosschecks_replays () =
  (* Two CPUs per (workload, technique) group: one Record cell, one
     Replay cell.  With --audit-sample 1.0 every replayed cell is
     re-simulated directly and compared. *)
  PR.audit_sample := 1.0;
  let cells =
    List.concat_map
      (fun w ->
        List.map
          (fun cpu ->
            PR.cell ~tag:"audit" ~cpu ~technique:Technique.plain w)
          [ Cpu_model.ideal; Cpu_model.pentium4_northwood ])
      [ toy_workload "audit-a"; toy_workload "audit-b" ]
  in
  let results = PR.run_cells ~jobs:1 cells in
  let replayed =
    List.filter (fun (t : PR.timed) -> t.PR.mode = PR.Replay) results
  in
  check_bool "grid produced replay cells" true (List.length replayed > 0);
  List.iter
    (fun (t : PR.timed) ->
      check_bool "replayed cell survives its audit" true
        (Result.is_ok t.PR.outcome);
      check_bool "replayed cell audited" true t.PR.audited)
    replayed;
  check_int "no divergences" 0 (Audit.divergence_count ());
  check_int "every replay audited" (List.length replayed)
    (Audit.audited_count ());
  (* Rate 0 audits nothing. *)
  Audit.reset_stats ();
  PR.clear_trace_cache ();
  PR.audit_sample := 0.0;
  let results = PR.run_cells ~jobs:1 cells in
  List.iter
    (fun (t : PR.timed) -> check_bool "not audited" false t.PR.audited)
    results;
  check_int "nothing audited at rate 0" 0 (Audit.audited_count ());
  ignore (PR.drain_log ())

let test_sampling_deterministic () =
  let keys = List.init 1000 (Printf.sprintf "cell-%d") in
  let decide rate = List.map (fun key -> Audit.sampled ~key ~rate) keys in
  Alcotest.(check (list bool))
    "same keys, same decisions" (decide 0.3) (decide 0.3);
  check_bool "rate 0 selects nothing" true
    (List.for_all not (decide 0.));
  check_bool "rate 1 selects everything" true (List.for_all Fun.id (decide 1.));
  let hits = List.length (List.filter Fun.id (decide 0.3)) in
  check_bool
    (Printf.sprintf "rate 0.3 selects a plausible fraction (%d/1000)" hits)
    true
    (hits > 200 && hits < 400)

(* Satellite: distinct technique parameters must never collide on the
   (descriptor, fingerprint) pair the journal uses for identity. *)
let test_descriptor_fingerprint_injective () =
  let techniques =
    Technique.
      [
        switch;
        plain;
        static_repl ~n:100 ();
        static_repl ~n:200 ();
        static_super ~n:100 ();
        static_super ~n:200 ();
        static_both ~supers:10 ~replicas:20 ();
        static_both ~supers:20 ~replicas:10 ();
        Static (static_params ~replicas:100 ~parse:Optimal ());
        Static (static_params ~replicas:100 ~strategy:(Random 7) ());
        Static (static_params ~replicas:100 ~strategy:(Random 8) ());
        Static (static_params ~replicas:100 ~prefer_short:true ());
        dynamic_repl;
        dynamic_super;
        dynamic_both;
        across_bb;
        with_static_super ~n:100 ();
        with_static_super ~n:200 ();
        with_static_across_bb ~n:100 ();
        subroutine;
      ]
  in
  let descriptors = List.map Technique.descriptor techniques in
  let sorted = List.sort_uniq compare descriptors in
  check_int "descriptors pairwise distinct" (List.length techniques)
    (List.length sorted);
  (* The full journal identity -- key plus fingerprint -- must separate
     every cell of a parameter sweep. *)
  let w = toy_workload "ident" in
  let idents =
    List.concat_map
      (fun technique ->
        List.concat_map
          (fun cpu ->
            List.concat_map
              (fun scale ->
                List.map
                  (fun predictor ->
                    let c = PR.cell ~tag:"ident" ~scale ?predictor ~cpu ~technique w in
                    (PR.cell_key c, PR.config_fingerprint c))
                  [ None; Some Predictor.Perfect ])
              [ 1; 2 ])
          [ Cpu_model.ideal; Cpu_model.pentium4_northwood ])
      techniques
  in
  check_int "cell identities pairwise distinct" (List.length idents)
    (List.length (List.sort_uniq compare idents))

(* Satellite: a journal entry whose fingerprint matches but whose key
   (descriptor) differs must not be served on resume. *)
let test_journal_refuses_descriptor_mismatch () =
  let w = toy_workload "journal-ident" in
  let mk technique = PR.cell ~tag:"ident" ~cpu:Cpu_model.ideal ~technique w in
  let c1 = mk (Technique.static_repl ~n:100 ()) in
  let c2 = mk (Technique.static_repl ~n:200 ()) in
  check_bool "different technique params, different keys" true
    (PR.cell_key c1 <> PR.cell_key c2);
  (* Defense in depth: the fingerprint re-encodes the technique, so even
     the fingerprints of a parameter sweep never collide. *)
  check_bool "different technique params, different fingerprints" true
    (PR.config_fingerprint c1 <> PR.config_fingerprint c2);
  (* A (possibly tampered) journal entry sharing c2's fingerprint but
     recorded under c1's key must not be served for c2, and vice versa:
     lookup demands that both halves of the identity match. *)
  let shared_fp = PR.config_fingerprint c2 in
  let file = Filename.temp_file "vmbp-journal-ident" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove file with Sys_error _ -> ())
    (fun () ->
      let j = Journal.open_ file in
      Journal.append j
        {
          Journal.key = PR.cell_key c1;
          fingerprint = shared_fp;
          outcome = Error "seeded entry";
          attempts = 1;
          timed_out = false;
        };
      Journal.close j;
      let j = Journal.open_ ~resume:true file in
      Fun.protect
        ~finally:(fun () -> Journal.close j)
        (fun () ->
          check_bool "own key and fingerprint served" true
            (Journal.lookup j ~key:(PR.cell_key c1) ~fingerprint:shared_fp
            <> None);
          check_bool "matching fingerprint, different descriptor refused"
            true
            (Journal.lookup j ~key:(PR.cell_key c2) ~fingerprint:shared_fp
            = None);
          check_bool "matching key, different fingerprint refused" true
            (Journal.lookup j ~key:(PR.cell_key c1)
               ~fingerprint:(PR.config_fingerprint c1)
            = None)))

let () =
  Alcotest.run "report"
    [
      ( "rendering",
        [ Alcotest.test_case "table layout" `Quick test_table_render ] );
      ( "traces",
        [
          Alcotest.test_case "switch all-miss" `Quick test_trace_switch_all_miss;
          Alcotest.test_case "threaded half-miss" `Quick
            test_trace_threaded_half_miss;
          Alcotest.test_case "replication no-miss" `Quick
            test_trace_replication_no_miss;
        ] );
      ( "models",
        [
          Alcotest.test_case "comparator ordering" `Slow
            test_native_model_ordering;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all paper items present" `Quick
            test_registry_complete;
          Alcotest.test_case "cheap experiments render" `Quick
            test_cheap_experiments_render;
        ] );
      ( "shapes",
        [
          Alcotest.test_case "forth technique ordering" `Slow
            test_shape_forth_ordering;
          Alcotest.test_case "misprediction rates" `Slow
            test_shape_misprediction_rates;
          Alcotest.test_case "jvm dispatch ratio lower" `Slow
            test_shape_jvm_smaller_ratio;
          Alcotest.test_case "static mix improves" `Slow
            test_shape_static_mix_improves;
          Alcotest.test_case "subroutine threading" `Slow
            test_subroutine_threading_shape;
        ] );
      ( "par-runner",
        [
          Alcotest.test_case "deterministic across job counts" `Quick
            test_par_runner_deterministic;
          Alcotest.test_case "trapping cell fails alone" `Quick
            test_par_runner_fault_isolation;
          Alcotest.test_case "json summary" `Quick test_par_runner_json_summary;
        ] );
      ( "explain",
        [
          Alcotest.test_case "attribution equals checked counters" `Quick
            test_explain_matches_checked_counters;
          Alcotest.test_case "observability never changes numbers" `Quick
            test_observability_invisible;
        ] );
      ( "record-replay",
        [
          Alcotest.test_case "gforth variants x cpus x predictor" `Slow
            test_replay_equivalence_gforth;
          Alcotest.test_case "jvm quickening" `Slow
            test_replay_equivalence_jvm_quickening;
          Alcotest.test_case "trap and fuel exhaustion" `Quick
            test_replay_trap_and_fuel;
          Alcotest.test_case "overflow and fallback" `Quick
            test_record_overflow_and_fallback;
          Alcotest.test_case "memo survives release" `Quick
            test_memo_survives_release;
          Alcotest.test_case "banked replay equals per-cell replay" `Quick
            test_banked_replay_matches_per_cell;
          Alcotest.test_case "memo inserts race-free under 4 domains" `Quick
            test_memo_insert_race_free;
          Alcotest.test_case "memo-served replay still polls" `Quick
            test_memoized_replay_still_polls;
          Alcotest.test_case "bank descriptors injective" `Quick
            test_bank_descriptor_injective;
        ] );
      ( "supervision",
        [
          Alcotest.test_case "chaos spec parsing" `Quick
            (supervised test_chaos_spec_parsing);
          Alcotest.test_case "cell-raise retries then exhausts" `Quick
            (supervised test_cell_raise_retry);
          Alcotest.test_case "record failure degrades to direct" `Quick
            (supervised test_record_fail_degrades);
          Alcotest.test_case "slow cell hits the watchdog" `Quick
            (supervised test_slow_cell_timeout);
          Alcotest.test_case "bad predictor fails one cell" `Quick
            (supervised test_bad_predictor_is_failed_cell);
          Alcotest.test_case "journal round-trip and resume" `Quick
            (supervised test_journal_roundtrip_resume);
          Alcotest.test_case "torn final journal line" `Quick
            (supervised test_journal_truncated_line);
          Alcotest.test_case "journal corrupt-scan fuzz" `Quick
            (supervised test_journal_corrupt_scan_fuzz);
          Alcotest.test_case "store round-trip serves" `Quick
            (supervised test_store_roundtrip_serve);
          Alcotest.test_case "store write fault degrades" `Quick
            (supervised test_store_io_fault_degrades);
          Alcotest.test_case "journal write fault degrades" `Quick
            (supervised test_journal_io_fault);
          Alcotest.test_case "kill mid-run, resume byte-identical" `Quick
            (supervised test_sequential_kill_and_resume);
          Alcotest.test_case "pool respawns dead workers" `Quick
            (supervised test_pool_respawn);
          Alcotest.test_case "shutdown skips pending cells" `Quick
            (supervised test_shutdown_skips_pending);
        ] );
      ( "self-check",
        [
          Alcotest.test_case "toy grid clean under lockstep oracle" `Quick
            (audited_test test_self_check_grid);
          Alcotest.test_case "seeded simulator bug caught + repro" `Quick
            (audited_test test_self_check_catches_mutation);
          Alcotest.test_case "audit-sample cross-checks replays" `Quick
            (audited_test test_audit_sample_crosschecks_replays);
          Alcotest.test_case "sampling deterministic" `Quick
            test_sampling_deterministic;
          Alcotest.test_case "descriptor+fingerprint injective" `Quick
            test_descriptor_fingerprint_injective;
          Alcotest.test_case "journal refuses descriptor mismatch" `Quick
            (supervised test_journal_refuses_descriptor_mismatch);
        ] );
    ]

(* Engine and optimizer tests built on the toy VM: the paper's worked
   examples (Tables I-IV), semantic preservation across all techniques, and
   the structural invariants of Section 7.3. *)

open Vmbp_machine
open Vmbp_core
module Program = Vmbp_vm.Program
module Profile = Vmbp_vm.Profile
module T = Vmbp_toyvm.Toy_vm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Run [program] under [technique] with an unbounded BTB and no icache
   penalty, isolating pure prediction behaviour as in Tables I-IV. *)
let run_ideal ?profile ~technique ~iterations program =
  let config = Config.make ~cpu:Cpu_model.ideal technique in
  let layout = Config.build_layout ?profile config ~program in
  let state = T.create_state ~counters:(Array.make 16 iterations) () in
  let result =
    Engine.run ~config ~layout ~exec:(T.exec state) ~fuel:50_000_000 ()
  in
  (result, T.checksum state)

let profile_of program =
  let p = Profile.empty ~max_seq_len:4 in
  Profile.add_program p program;
  p

(* Reference behaviour: run without any simulation. *)
let reference_checksum ~iterations program =
  let program = Program.copy program in
  let state = T.create_state ~counters:(Array.make 16 iterations) () in
  let _steps, trap =
    Engine.run_functional ~program ~exec:(T.exec state) ~fuel:50_000_000 ()
  in
  Alcotest.(check (option string)) "reference run traps" None trap;
  T.checksum state

(* ---------------------------------------------------------------------- *)
(* Tables I-IV *)

let iterations = 1000

let test_table1_threaded () =
  (* Threaded code on [A B A loop]: A's dispatch branch alternates between
     B and the loop and always mispredicts; B's and the loop's branches are
     monomorphic.  2 mispredictions per iteration (Table I). *)
  let result, _ =
    run_ideal ~technique:Technique.plain ~iterations (T.table1_loop ())
  in
  let m = result.Engine.metrics in
  let per_iter =
    float_of_int m.Metrics.mispredicts /. float_of_int iterations
  in
  check_bool
    (Printf.sprintf "threaded: ~2 mispredicts/iteration (got %.3f)" per_iter)
    true
    (per_iter > 1.9 && per_iter < 2.1)

let test_table1_switch () =
  (* Switch dispatch shares one branch: it always predicts that the current
     instruction repeats, which is never true in this loop: 4
     mispredictions per iteration (Table I). *)
  let result, _ =
    run_ideal ~technique:Technique.switch ~iterations (T.table1_loop ())
  in
  let m = result.Engine.metrics in
  let per_iter =
    float_of_int m.Metrics.mispredicts /. float_of_int iterations
  in
  check_bool
    (Printf.sprintf "switch: ~4 mispredicts/iteration (got %.3f)" per_iter)
    true
    (per_iter > 3.9 && per_iter < 4.1)

let test_table2_replication () =
  (* With at least two round-robin replicas of A, each replica has a single
     successor and prediction becomes perfect (Table II). *)
  let program = T.table1_loop () in
  let profile = profile_of program in
  let result, _ =
    run_ideal ~profile
      ~technique:(Technique.static_repl ~n:8 ())
      ~iterations program
  in
  let m = result.Engine.metrics in
  check_bool
    (Printf.sprintf "replication removes steady-state mispredicts (got %d)"
       m.Metrics.mispredicts)
    true
    (m.Metrics.mispredicts < 10)

let test_table4_superinstruction () =
  (* A superinstruction covering part of the loop body leaves every
     remaining dispatch monomorphic (Table IV). *)
  let program = T.table1_loop () in
  let profile = profile_of program in
  let result, _ =
    run_ideal ~profile
      ~technique:(Technique.static_super ~n:4 ())
      ~iterations program
  in
  let m = result.Engine.metrics in
  check_bool
    (Printf.sprintf "superinstructions remove mispredicts (got %d)"
       m.Metrics.mispredicts)
    true
    (m.Metrics.mispredicts < 10)

let test_table3_shape () =
  (* The [A B A B A loop] body: threaded code mispredicts on two of the
     three As (the middle A is followed by B both times it matters --
     B's two instances share one branch, so B alternates too).  The paper's
     point is that the original code has strictly fewer mispredictions than
     a pathologically replicated version; here we check the baseline is
     imperfect but below the switch bound. *)
  let program = T.table3_loop () in
  let plain, _ = run_ideal ~technique:Technique.plain ~iterations program in
  let switch, _ = run_ideal ~technique:Technique.switch ~iterations program in
  check_bool "plain beats switch" true
    (plain.Engine.metrics.Metrics.mispredicts
    < switch.Engine.metrics.Metrics.mispredicts);
  check_bool "plain still mispredicts" true
    (plain.Engine.metrics.Metrics.mispredicts > iterations)

let test_dynamic_replication_perfect () =
  (* Dynamic replication: every instance has its own branch; only the loop
     exit mispredicts. *)
  let program = T.table1_loop () in
  let result, _ =
    run_ideal ~technique:Technique.dynamic_repl ~iterations program
  in
  check_bool
    (Printf.sprintf "dynamic repl (got %d)"
       result.Engine.metrics.Metrics.mispredicts)
    true
    (result.Engine.metrics.Metrics.mispredicts < 10)

let test_across_bb_fewest_dispatches () =
  let program = T.table1_loop () in
  let r_plain, _ = run_ideal ~technique:Technique.plain ~iterations program in
  let r_super, _ =
    run_ideal ~technique:Technique.dynamic_super ~iterations program
  in
  let r_across, _ =
    run_ideal ~technique:Technique.across_bb ~iterations program
  in
  let d r = r.Engine.metrics.Metrics.dispatches in
  check_bool "super < plain" true (d r_super < d r_plain);
  check_bool "across <= super" true (d r_across <= d r_super);
  (* In this loop the only dispatch left by across-bb is the taken loop
     branch: one per iteration. *)
  check_bool
    (Printf.sprintf "across-bb leaves ~1 dispatch/iteration (got %.2f)"
       (float_of_int (d r_across) /. float_of_int iterations))
    true
    (abs (d r_across - iterations) < 20)

(* ---------------------------------------------------------------------- *)
(* Semantic preservation and structural invariants *)

let all_techniques profile_needed =
  ignore profile_needed;
  [
    Technique.switch;
    Technique.plain;
    Technique.static_repl ~n:50 ();
    Technique.static_super ~n:50 ();
    Technique.static_both ~supers:10 ~replicas:40 ();
    Technique.Static
      (Technique.static_params ~superinstrs:20 ~parse:Technique.Optimal ());
    Technique.Static
      (Technique.static_params ~replicas:30
         ~strategy:(Technique.Random 42) ());
    Technique.dynamic_repl;
    Technique.dynamic_super;
    Technique.dynamic_both;
    Technique.across_bb;
    Technique.with_static_super ~n:20 ();
    Technique.with_static_across_bb ~n:20 ();
  ]

let test_semantic_preservation_all_techniques () =
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:40 in
      let expected = reference_checksum ~iterations:50 program in
      let profile = profile_of program in
      List.iter
        (fun technique ->
          let result, checksum =
            run_ideal ~profile ~technique ~iterations:50 program
          in
          Alcotest.(check (option string))
            (Technique.name technique ^ " trap")
            None result.Engine.trapped;
          check_int
            (Printf.sprintf "checksum under %s (seed %d)"
               (Technique.name technique) seed)
            expected checksum)
        (all_techniques true))
    [ 1; 2; 3; 4; 5 ]

let test_invariant_same_instructions () =
  (* plain, static repl and dynamic repl execute exactly the same native
     instructions and indirect branches (Section 7.3). *)
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:30 in
      let profile = profile_of program in
      let r_plain, _ =
        run_ideal ~profile ~technique:Technique.plain ~iterations:20 program
      in
      let r_srepl, _ =
        run_ideal ~profile
          ~technique:(Technique.static_repl ~n:64 ())
          ~iterations:20 program
      in
      let r_drepl, _ =
        run_ideal ~profile ~technique:Technique.dynamic_repl ~iterations:20
          program
      in
      let instrs r = r.Engine.metrics.Metrics.native_instrs in
      let branches r = r.Engine.metrics.Metrics.indirect_branches in
      check_int "static repl instrs = plain" (instrs r_plain) (instrs r_srepl);
      check_int "dynamic repl instrs = plain" (instrs r_plain) (instrs r_drepl);
      check_int "static repl branches = plain" (branches r_plain)
        (branches r_srepl);
      check_int "dynamic repl branches = plain" (branches r_plain)
        (branches r_drepl))
    [ 11; 12; 13 ]

let test_invariant_super_vs_both () =
  (* dynamic super and dynamic both only differ in code sharing, not in the
     executed instruction stream. *)
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:30 in
      let r_super, _ =
        run_ideal ~technique:Technique.dynamic_super ~iterations:20 program
      in
      let r_both, _ =
        run_ideal ~technique:Technique.dynamic_both ~iterations:20 program
      in
      let instrs r = r.Engine.metrics.Metrics.native_instrs in
      let dispatches r = r.Engine.metrics.Metrics.dispatches in
      check_int "instrs equal" (instrs r_super) (instrs r_both);
      check_int "dispatches equal" (dispatches r_super) (dispatches r_both))
    [ 21; 22; 23 ]

let test_invariant_dispatch_ordering () =
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:30 in
      let d technique =
        let r, _ = run_ideal ~technique ~iterations:20 program in
        r.Engine.metrics.Metrics.dispatches
      in
      let plain = d Technique.plain in
      let repl = d Technique.dynamic_repl in
      let super = d Technique.dynamic_super in
      let across = d Technique.across_bb in
      check_int "dynamic repl keeps all dispatches" plain repl;
      check_bool "super <= repl" true (super <= repl);
      check_bool "across <= super" true (across <= super))
    [ 31; 32; 33 ]

let test_code_growth_ordering () =
  (* Dynamic replication generates the most code; dynamic super the least
     of the copying techniques (Section 7.4). *)
  let program = T.random_program ~seed:7 ~size:60 in
  let bytes technique =
    let config = Config.make ~cpu:Cpu_model.ideal technique in
    let layout = Config.build_layout config ~program in
    layout.Code_layout.runtime_code_bytes
  in
  let static_bytes =
    let config = Config.make ~cpu:Cpu_model.ideal Technique.plain in
    let layout = Config.build_layout config ~program in
    layout.Code_layout.runtime_code_bytes
  in
  check_int "static techniques generate no code at run time" 0 static_bytes;
  check_bool "super <= both" true
    (bytes Technique.dynamic_super <= bytes Technique.dynamic_both);
  check_bool "both <= repl + slack" true
    (bytes Technique.dynamic_both
    <= bytes Technique.dynamic_repl + (bytes Technique.dynamic_repl / 2));
  check_bool "all dynamic variants generate code" true
    (bytes Technique.dynamic_super > 0)

let test_quickening_happens_once_per_site () =
  let program = T.random_program ~seed:5 ~size:40 in
  (* Count quickable slots that are actually executed. *)
  let config = Config.make ~cpu:Cpu_model.ideal Technique.dynamic_super in
  let layout = Config.build_layout config ~program in
  let state = T.create_state ~counters:(Array.make 16 30) () in
  let result = Engine.run ~config ~layout ~exec:(T.exec state) ~fuel:10_000_000 () in
  let m = result.Engine.metrics in
  (* Every executed quickable site quickens exactly once; re-running the
     same layout must quicken zero times. *)
  let state2 = T.create_state ~counters:(Array.make 16 30) () in
  let result2 =
    Engine.run ~config ~layout ~exec:(T.exec state2) ~fuel:10_000_000 ()
  in
  check_bool "first run quickens" true (m.Metrics.quickenings > 0);
  check_int "second run quickens nothing" 0
    result2.Engine.metrics.Metrics.quickenings;
  check_int "same checksum" (T.checksum state) (T.checksum state2)

(* ---------------------------------------------------------------------- *)
(* Parsers and selection *)

let test_greedy_vs_optimal () =
  (* Classic greedy pessimisation: with supers {AB, BCD} on ABCD, greedy
     takes AB + C + D (3 groups), optimal takes A + BCD (2 groups). *)
  let set = Super_set.of_list [ [| 0; 1 |]; [| 1; 2; 3 |] ] in
  let opcodes = [| 0; 1; 2; 3 |] in
  let eligible _ = true in
  let greedy =
    Block_parse.greedy set ~opcodes:(fun i -> opcodes.(i)) ~eligible ~start:0
      ~stop:3
  in
  let optimal =
    Block_parse.optimal set ~opcodes:(fun i -> opcodes.(i)) ~eligible ~start:0
      ~stop:3
  in
  check_int "greedy groups" 3 (Block_parse.group_count greedy);
  check_int "optimal groups" 2 (Block_parse.group_count optimal)

let prop_optimal_never_worse =
  QCheck.Test.make ~name:"optimal parse never uses more groups than greedy"
    ~count:200
    QCheck.(
      pair (list_of_size Gen.(2 -- 12) (int_bound 4))
        (list_of_size Gen.(0 -- 6) (list_of_size Gen.(2 -- 3) (int_bound 4))))
    (fun (block, seqs) ->
      QCheck.assume (block <> []);
      let set = Super_set.of_list (List.map Array.of_list seqs) in
      let opcodes = Array.of_list block in
      let get i = opcodes.(i) in
      let eligible _ = true in
      let stop = Array.length opcodes - 1 in
      let g = Block_parse.greedy set ~opcodes:get ~eligible ~start:0 ~stop in
      let o = Block_parse.optimal set ~opcodes:get ~eligible ~start:0 ~stop in
      let covers groups =
        List.fold_left (fun acc { Block_parse.len; _ } -> acc + len) 0 groups
        = Array.length opcodes
      in
      covers g && covers o
      && Block_parse.group_count o <= Block_parse.group_count g)

let prop_parse_partitions =
  QCheck.Test.make ~name:"parses form a contiguous partition" ~count:200
    QCheck.(
      pair (list_of_size Gen.(1 -- 15) (int_bound 5))
        (list_of_size Gen.(0 -- 8) (list_of_size Gen.(2 -- 4) (int_bound 5))))
    (fun (block, seqs) ->
      let set = Super_set.of_list (List.map Array.of_list seqs) in
      let opcodes = Array.of_list block in
      let get i = opcodes.(i) in
      let eligible i = i mod 3 <> 2 (* some ineligible slots *) in
      let stop = Array.length opcodes - 1 in
      List.for_all
        (fun parse ->
          let groups = parse set ~opcodes:get ~eligible ~start:0 ~stop in
          let rec contiguous pos = function
            | [] -> pos = Array.length opcodes
            | { Block_parse.start; len } :: rest ->
                start = pos && len >= 1 && contiguous (pos + len) rest
          in
          contiguous 0 groups)
        [ Block_parse.greedy; Block_parse.optimal ])

let test_round_robin_chooser () =
  let chooser = Replica_select.make_chooser Technique.Round_robin in
  let picks = List.init 6 (fun _ -> Replica_select.choose chooser ~item:1 ~copies:3) in
  Alcotest.(check (list int)) "cycles through copies" [ 0; 1; 2; 0; 1; 2 ] picks;
  (* Independent items do not interfere. *)
  check_int "other item starts at 0" 0
    (Replica_select.choose chooser ~item:2 ~copies:3)

let test_apportion () =
  let allocation =
    Replica_select.apportion ~weights:[ ("a", 100); ("b", 50); ("c", 0) ]
      ~budget:3
  in
  let copies name = List.assoc name allocation in
  check_int "total extra copies" 6
    (List.fold_left (fun acc (_, c) -> acc + c) 0 allocation);
  check_bool "a gets most" true (copies "a" >= copies "b");
  check_int "zero-weight item keeps one copy" 1 (copies "c")

let test_profile_sequences () =
  let program = T.table1_loop () in
  let p = profile_of program in
  let a = T.ops.T.op_a and b = T.ops.T.op_b in
  check_int "A counted twice" 2 (Profile.opcode_count p a);
  check_int "A-B occurs once" 1 (Profile.sequence_count p [| a; b |]);
  check_int "B-A occurs once" 1 (Profile.sequence_count p [| b; a |]);
  check_int "A-B-A occurs once" 1 (Profile.sequence_count p [| a; b; a |]);
  (* The loop instruction is not straight-line, so no sequence reaches it. *)
  check_int "no sequence with the branch" 0
    (Profile.sequence_count p [| a; T.ops.T.op_loop |])

let test_technique_names_roundtrip () =
  List.iter
    (fun t ->
      match Technique.of_name (Technique.name t) with
      | Some t' ->
          Alcotest.(check string)
            "roundtrip" (Technique.name t) (Technique.name t')
      | None -> Alcotest.failf "no parse for %s" (Technique.name t))
    (Technique.paper_gforth_variants @ [ Technique.switch ])

(* ---------------------------------------------------------------------- *)
(* Layout structural invariants, checked over random toy programs. *)

let layouts_for program profile =
  List.map
    (fun technique ->
      let config = Config.make ~cpu:Cpu_model.ideal technique in
      (technique, Config.build_layout ~profile config ~program))
    [
      Technique.switch;
      Technique.plain;
      Technique.static_repl ~n:30 ();
      Technique.static_super ~n:30 ();
      Technique.dynamic_repl;
      Technique.dynamic_super;
      Technique.dynamic_both;
      Technique.across_bb;
      Technique.with_static_super ~n:10 ();
      Technique.with_static_across_bb ~n:10 ();
      Technique.subroutine;
    ]

let prop_layout_invariants =
  QCheck.Test.make ~name:"layouts satisfy structural invariants" ~count:40
    QCheck.(int_bound 10_000)
    (fun seed ->
      let program = T.random_program ~seed ~size:30 in
      let profile = profile_of program in
      List.for_all
        (fun (technique, (layout : Code_layout.t)) ->
          let p = layout.Code_layout.program in
          let ok = ref true in
          Array.iteri
            (fun i site ->
              let instr = Vmbp_vm.Program.instr_at p i in
              (* every site has positive fetch size and sane work *)
              if site.Code_layout.fetch_bytes <= 0 then ok := false;
              if site.Code_layout.work_instrs < 0 then ok := false;
              (* block-ending instructions must be able to dispatch on the
                 taken path (the engine asserts this dynamically too) *)
              (match instr.Vmbp_vm.Instr.branch with
              | Vmbp_vm.Instr.Straight | Vmbp_vm.Instr.Stop -> ()
              | _ ->
                  if site.Code_layout.post_taken = None then ok := false);
              (* dispatch branch addresses are positive addresses *)
              (match site.Code_layout.post_fall with
              | Some d -> if d.Code_layout.branch_addr <= 0 then ok := false
              | None -> ()))
            layout.Code_layout.sites;
          if not !ok then
            QCheck.Test.fail_reportf "invariant broken under %s (seed %d)"
              (Technique.name technique) seed;
          true)
        (layouts_for program profile))

let prop_runtime_code_only_for_dynamic =
  QCheck.Test.make ~name:"only dynamic techniques generate run-time code"
    ~count:30
    QCheck.(int_bound 10_000)
    (fun seed ->
      let program = T.random_program ~seed ~size:25 in
      let profile = profile_of program in
      List.for_all
        (fun (technique, (layout : Code_layout.t)) ->
          let has_code = layout.Code_layout.runtime_code_bytes > 0 in
          if Technique.is_dynamic technique then has_code else not has_code)
        (layouts_for program profile))

let test_shadow_sites_for_cross_bb_supers () =
  (* A program whose branch targets the middle of a static-super run: the
     With_static_across_bb layout must register a shadow range there. *)
  let any_shadow = ref false in
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:60 in
      let profile = profile_of program in
      let config =
        Config.make ~cpu:Cpu_model.ideal
          (Technique.with_static_across_bb ~n:30 ())
      in
      let layout = Config.build_layout ~profile config ~program in
      Array.iteri
        (fun i until ->
          if until >= 0 then begin
            any_shadow := true;
            check_bool "shadow range is forward" true (until >= i);
            (* entering the shadow must execute distinct fallback sites *)
            check_bool "shadow site distinct" true
              (layout.Code_layout.shadow.(i) != layout.Code_layout.sites.(i))
          end)
        layout.Code_layout.shadow_until)
    [ 3; 7; 21; 33; 40; 55; 60; 71; 88; 99 ];
  check_bool "at least one side entry exercised across seeds" true !any_shadow

let test_engine_fuel () =
  let program = T.table1_loop () in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.plain in
  let layout = Config.build_layout config ~program in
  let state = T.create_state ~counters:(Array.make 16 1_000_000) () in
  let result = Engine.run ~fuel:1000 ~config ~layout ~exec:(T.exec state) () in
  Alcotest.(check (option string))
    "trapped out of fuel" (Some Engine.out_of_fuel) result.Engine.trapped;
  (* exactly [fuel] instructions executed, with their metrics retained *)
  check_int "steps equals fuel" 1000 result.Engine.steps;
  check_int "partial metrics retained" 1000
    result.Engine.metrics.Metrics.vm_instrs;
  check_bool "cycles accumulated" true (result.Engine.cycles > 0.)

let test_subroutine_preserves_semantics () =
  List.iter
    (fun seed ->
      let program = T.random_program ~seed ~size:40 in
      let expected = reference_checksum ~iterations:30 program in
      let result, checksum =
        run_ideal ~technique:Technique.subroutine ~iterations:30 program
      in
      Alcotest.(check (option string)) "no trap" None result.Engine.trapped;
      check_int "checksum" expected checksum;
      (* no dispatch indirect branches except taken VM transfers *)
      check_bool "fewer indirect branches than VM instructions" true
        (result.Engine.metrics.Metrics.indirect_branches
        < result.Engine.metrics.Metrics.vm_instrs))
    [ 41; 42; 43 ]


(* ---------------------------------------------------------------------- *)
(* Exact accounting: hand-computed expectations on a three-instruction
   straight-line program. *)

let test_exact_accounting_plain () =
  (* program: a; b; halt -- work 3+4+1, dispatch 3 instrs after a and b *)
  let program =
    Vmbp_vm.Program.make ~name:"tiny" ~iset:T.iset
      ~code:
        [|
          { Program.opcode = T.ops.T.op_a; operands = [||] };
          { Program.opcode = T.ops.T.op_b; operands = [||] };
          { Program.opcode = T.ops.T.op_halt; operands = [||] };
        |]
      ~entry:0 ()
  in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.plain in
  let layout = Config.build_layout config ~program in
  let state = T.create_state () in
  let result = Engine.run ~config ~layout ~exec:(T.exec state) () in
  let m = result.Engine.metrics in
  check_int "vm instrs" 3 m.Metrics.vm_instrs;
  check_int "dispatches" 2 m.Metrics.dispatches;
  (* work: a=3, b=4, halt=1; dispatch: 2 * 3 *)
  check_int "native instrs" (3 + 4 + 1 + 6) m.Metrics.native_instrs;
  (* both dispatches are cold BTB misses *)
  check_int "cold mispredicts" 2 m.Metrics.mispredicts;
  check_int "no runtime code" 0 m.Metrics.code_bytes

let test_exact_accounting_switch () =
  let program =
    Vmbp_vm.Program.make ~name:"tiny" ~iset:T.iset
      ~code:
        [|
          { Program.opcode = T.ops.T.op_a; operands = [||] };
          { Program.opcode = T.ops.T.op_b; operands = [||] };
          { Program.opcode = T.ops.T.op_halt; operands = [||] };
        |]
      ~entry:0 ()
  in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.switch in
  let layout = Config.build_layout config ~program in
  let state = T.create_state () in
  let result = Engine.run ~config ~layout ~exec:(T.exec state) () in
  let m = result.Engine.metrics in
  (* switch dispatch costs 9 instructions instead of 3 *)
  check_int "native instrs" (3 + 4 + 1 + 18) m.Metrics.native_instrs;
  check_int "dispatches" 2 m.Metrics.dispatches

let test_static_reparse_after_quickening () =
  (* A loop over [quickme; a; b]: once quickme resolves, re-parsing lets the
     quick version join a superinstruction with the following [a], removing
     one dispatch per iteration. *)
  let program =
    Vmbp_vm.Program.make ~name:"requick" ~iset:T.iset
      ~code:
        [|
          { Program.opcode = T.ops.T.op_quickme; operands = [| 4 |] };
          { Program.opcode = T.ops.T.op_a; operands = [||] };
          { Program.opcode = T.ops.T.op_b; operands = [||] };
          { Program.opcode = T.ops.T.op_loop; operands = [| 0; 0 |] };
          { Program.opcode = T.ops.T.op_halt; operands = [||] };
        |]
      ~entry:0 ()
  in
  (* Superinstruction set built from the quickened form of the block. *)
  let quick_seq = [| T.ops.T.op_quick_even; T.ops.T.op_a; T.ops.T.op_b |] in
  let profile = Profile.empty ~max_seq_len:4 in
  (* Quicken a copy to profile the steady-state opcodes. *)
  let pre = Program.copy program in
  let st0 = T.create_state ~counters:(Array.make 16 2) () in
  let _ = Engine.run_functional ~program:pre ~exec:(T.exec st0) () in
  Profile.add_program profile pre;
  Alcotest.(check int) "quick sequence profiled" 1
    (Profile.sequence_count profile quick_seq);
  let config =
    Config.make ~cpu:Cpu_model.ideal (Technique.static_super ~n:8 ())
  in
  let layout = Config.build_layout ~profile config ~program in
  let iterations = 100 in
  let state = T.create_state ~counters:(Array.make 16 iterations) () in
  let result = Engine.run ~config ~layout ~exec:(T.exec state) () in
  let m = result.Engine.metrics in
  (* Steady state after re-parse: the block runs as [super][loop]: two
     dispatches per iteration instead of four. *)
  check_bool
    (Printf.sprintf "re-parse merged the quickened block (%d dispatches)"
       m.Metrics.dispatches)
    true
    (m.Metrics.dispatches < (2 * iterations) + 20);
  check_int "quickened exactly once" 1 m.Metrics.quickenings

let test_pre_quicken_gap_dispatch () =
  (* Inside a dynamic superinstruction, an unquickened instruction costs two
     extra dispatches (gap -> original, original -> continuation); after
     quickening they disappear. *)
  let program =
    Vmbp_vm.Program.make ~name:"gap" ~iset:T.iset
      ~code:
        [|
          { Program.opcode = T.ops.T.op_a; operands = [||] };
          { Program.opcode = T.ops.T.op_quickme; operands = [| 3 |] };
          { Program.opcode = T.ops.T.op_b; operands = [||] };
          { Program.opcode = T.ops.T.op_loop; operands = [| 0; 0 |] };
          { Program.opcode = T.ops.T.op_halt; operands = [||] };
        |]
      ~entry:0 ()
  in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.across_bb in
  let layout = Config.build_layout config ~program in
  let run_once iterations =
    let state = T.create_state ~counters:(Array.make 16 iterations) () in
    Engine.run ~config ~layout ~exec:(T.exec state) ()
  in
  (* First execution quickens; afterwards the loop body is dispatch-free
     except the taken loop branch. *)
  let r = run_once 100 in
  let d1 = r.Engine.metrics.Metrics.dispatches in
  let r2 = run_once 100 in
  let d2 = r2.Engine.metrics.Metrics.dispatches in
  check_bool "first run pays the gap dispatches" true (d1 > d2);
  check_bool
    (Printf.sprintf "steady state ~1 dispatch/iteration (got %d)" d2)
    true
    (d2 <= 102)

let test_residual_mispredicts_are_vm_transfers () =
  (* Under dynamic replication with an unbounded BTB, steady-state
     mispredictions happen only at slots with several dynamic successors:
     VM control transfers (and shared routines of non-relocatable or
     quickable instructions, which this program avoids). *)
  let s op operands = { Program.opcode = op; operands } in
  let program =
    (* sub: c d exit;  main: a call-sub b call-sub loop halt *)
    Vmbp_vm.Program.make ~name:"resid" ~iset:T.iset
      ~code:
        [|
          s T.ops.T.op_c [||]; s T.ops.T.op_d [||]; s T.ops.T.op_ret [||];
          s T.ops.T.op_a [||]; s T.ops.T.op_call [| 0 |];
          s T.ops.T.op_b [||]; s T.ops.T.op_call [| 0 |];
          s T.ops.T.op_loop [| 0; 3 |]; s T.ops.T.op_halt [||];
        |]
      ~entry:3 ~entries:[ 0 ] ()
  in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.dynamic_repl in
  let layout = Config.build_layout config ~program in
  let state = T.create_state ~counters:(Array.make 16 500) () in
  let r = Engine.run ~config ~layout ~exec:(T.exec state) ~fuel:1_000_000 () in
  let m = r.Engine.metrics in
  (* The sub's exit alternates between two return sites: it mispredicts
     every call in steady state, and nothing else does. *)
  check_bool
    (Printf.sprintf "VM transfers account for all but cold misses (%d of %d)"
       m.Metrics.vm_branch_mispredicts m.Metrics.mispredicts)
    true
    (m.Metrics.mispredicts - m.Metrics.vm_branch_mispredicts < 12
    && m.Metrics.vm_branch_mispredicts > 900)

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "core"
    [
      ( "paper-tables",
        [
          Alcotest.test_case "Table I: threaded" `Quick test_table1_threaded;
          Alcotest.test_case "Table I: switch" `Quick test_table1_switch;
          Alcotest.test_case "Table II: replication" `Quick
            test_table2_replication;
          Alcotest.test_case "Table III: baseline shape" `Quick
            test_table3_shape;
          Alcotest.test_case "Table IV: superinstruction" `Quick
            test_table4_superinstruction;
          Alcotest.test_case "dynamic replication" `Quick
            test_dynamic_replication_perfect;
          Alcotest.test_case "across-bb dispatch elision" `Quick
            test_across_bb_fewest_dispatches;
        ] );
      ( "preservation",
        [
          Alcotest.test_case "all techniques preserve semantics" `Slow
            test_semantic_preservation_all_techniques;
          Alcotest.test_case "repl executes same instructions" `Quick
            test_invariant_same_instructions;
          Alcotest.test_case "super vs both instruction equality" `Quick
            test_invariant_super_vs_both;
          Alcotest.test_case "dispatch count ordering" `Quick
            test_invariant_dispatch_ordering;
          Alcotest.test_case "code growth ordering" `Quick
            test_code_growth_ordering;
          Alcotest.test_case "quickening once per site" `Quick
            test_quickening_happens_once_per_site;
        ] );
      ( "parsing",
        [
          Alcotest.test_case "greedy vs optimal example" `Quick
            test_greedy_vs_optimal;
          qt prop_optimal_never_worse;
          qt prop_parse_partitions;
          Alcotest.test_case "round-robin chooser" `Quick
            test_round_robin_chooser;
          Alcotest.test_case "apportionment" `Quick test_apportion;
          Alcotest.test_case "profile sequences" `Quick test_profile_sequences;
          Alcotest.test_case "technique names" `Quick
            test_technique_names_roundtrip;
        ] );
      ( "layout-invariants",
        [
          qt prop_layout_invariants;
          qt prop_runtime_code_only_for_dynamic;
          Alcotest.test_case "shadow sites for cross-bb supers" `Quick
            test_shadow_sites_for_cross_bb_supers;
          Alcotest.test_case "engine fuel" `Quick test_engine_fuel;
          Alcotest.test_case "subroutine threading semantics" `Quick
            test_subroutine_preserves_semantics;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "plain exact counts" `Quick
            test_exact_accounting_plain;
          Alcotest.test_case "switch exact counts" `Quick
            test_exact_accounting_switch;
          Alcotest.test_case "static re-parse after quickening" `Quick
            test_static_reparse_after_quickening;
          Alcotest.test_case "pre-quicken gap dispatches" `Quick
            test_pre_quicken_gap_dispatch;
          Alcotest.test_case "residual mispredicts at VM transfers" `Quick
            test_residual_mispredicts_are_vm_transfers;
        ] );
    ]




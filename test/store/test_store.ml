(* Tests of the content-addressed result store and its codecs: CRC-32
   against the reference vector, frame classification, cell-record
   round-trips, crash/corruption survival (byte-flip fuzzing, torn
   tails, stale compaction temps) and compaction repair. *)

open Vmbp_store

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_string = Alcotest.(check string)

(* ------------------------------------------------------------------ *)
(* CRC-32 *)

let test_crc32_vector () =
  (* The IEEE 802.3 check value: crc32("123456789"). *)
  check_int "check vector" 0xCBF43926 (Crc32.digest "123456789");
  check_int "sub = whole" (Crc32.digest "456")
    (Crc32.digest_sub "123456789" ~pos:3 ~len:3);
  check_bool "order matters" false (Crc32.digest "ab" = Crc32.digest "ba")

(* ------------------------------------------------------------------ *)
(* Framing *)

let test_frame_roundtrip () =
  List.iter
    (fun payload ->
      let line = Frame.encode payload in
      check_bool "newline-terminated" true
        (String.length line > 0 && line.[String.length line - 1] = '\n');
      match Frame.decode (String.sub line 0 (String.length line - 1)) with
      | Frame.Framed p -> check_string "round-trip" payload p
      | _ -> Alcotest.fail "expected Framed")
    [ ""; "x"; "{\"key\":\"a|b|c\"}"; String.make 4096 'z' ]

let test_frame_corruption () =
  let payload = "{\"key\":\"forth/gray|switch\",\"ok\":true}" in
  let line = Frame.encode payload in
  let body = String.sub line 0 (String.length line - 1) in
  (* Flip every byte position in turn: decode must classify each damaged
     line as Corrupt or Legacy (header damage can de-frame the line), and
     never return a Framed payload different from the original. *)
  for i = 0 to String.length body - 1 do
    let b = Bytes.of_string body in
    Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x20));
    match Frame.decode (Bytes.unsafe_to_string b) with
    | Frame.Framed p ->
        if p <> payload then
          Alcotest.failf "flip at %d served damaged payload" i
    | Frame.Legacy _ | Frame.Corrupt -> ()
  done;
  (* Truncations anywhere are never Framed. *)
  for n = 0 to String.length body - 1 do
    match Frame.decode (String.sub body 0 n) with
    | Frame.Framed _ -> Alcotest.failf "truncation to %d framed" n
    | _ -> ()
  done

let test_frame_legacy () =
  match Frame.decode "{\"key\":\"old journal line\"}" with
  | Frame.Legacy l -> check_string "legacy" "{\"key\":\"old journal line\"}" l
  | _ -> Alcotest.fail "expected Legacy"

(* ------------------------------------------------------------------ *)
(* Cell records *)

let sample_success key =
  let m = Vmbp_machine.Metrics.create () in
  m.Vmbp_machine.Metrics.vm_instrs <- 1234;
  m.Vmbp_machine.Metrics.native_instrs <- 9876;
  m.Vmbp_machine.Metrics.dispatches <- 1233;
  m.Vmbp_machine.Metrics.indirect_branches <- 1300;
  m.Vmbp_machine.Metrics.mispredicts <- 777;
  m.Vmbp_machine.Metrics.vm_branch_mispredicts <- 55;
  m.Vmbp_machine.Metrics.icache_fetches <- 4000;
  m.Vmbp_machine.Metrics.icache_misses <- 41;
  m.Vmbp_machine.Metrics.code_bytes <- 512;
  m.Vmbp_machine.Metrics.quickenings <- 7;
  {
    Cellrec.key;
    fingerprint = "fp-1";
    outcome = Ok { Cellrec.metrics = m; steps = 1234; output = "42 \n|x" };
    attempts = 2;
    timed_out = false;
  }

let entry_equal (a : Cellrec.entry) (b : Cellrec.entry) =
  a.Cellrec.key = b.Cellrec.key
  && a.Cellrec.fingerprint = b.Cellrec.fingerprint
  && a.Cellrec.attempts = b.Cellrec.attempts
  && a.Cellrec.timed_out = b.Cellrec.timed_out
  &&
  match (a.Cellrec.outcome, b.Cellrec.outcome) with
  | Ok x, Ok y ->
      x.Cellrec.steps = y.Cellrec.steps
      && x.Cellrec.output = y.Cellrec.output
      && x.Cellrec.metrics = y.Cellrec.metrics
  | Error x, Error y -> x = y
  | _ -> false

let test_cellrec_roundtrip () =
  let e = sample_success "forth/gray|switch|p4|1|default" in
  (match Cellrec.of_line (Cellrec.to_line e) with
  | Some e' -> check_bool "success round-trips" true (entry_equal e e')
  | None -> Alcotest.fail "success line did not parse");
  let err =
    {
      Cellrec.key = "k";
      fingerprint = "fp";
      outcome = Error "trap: div0 \"quoted\"";
      attempts = 3;
      timed_out = true;
    }
  in
  (match Cellrec.of_line (Cellrec.to_line err) with
  | Some e' -> check_bool "error round-trips" true (entry_equal err e')
  | None -> Alcotest.fail "error line did not parse");
  check_bool "garbage rejected" true (Cellrec.of_line "{\"oops\":1}" = None);
  check_bool "non-json rejected" true (Cellrec.of_line "not json" = None)

(* ------------------------------------------------------------------ *)
(* Store *)

let fresh_dir =
  let n = ref 0 in
  fun () ->
    incr n;
    let dir =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "vmbp-store-test-%d-%d" (Unix.getpid ()) !n)
    in
    let rec rm path =
      if Sys.file_exists path then
        if Sys.is_directory path then begin
          Array.iter (fun f -> rm (Filename.concat path f)) (Sys.readdir path);
          Unix.rmdir path
        end
        else Sys.remove path
    in
    rm dir;
    dir

let test_store_basic () =
  let dir = fresh_dir () in
  let t = Store.open_ ~shards:4 dir in
  check_bool "empty miss" true (Store.lookup t ~key:"a" ~fingerprint:"f" = None);
  let e = sample_success "a" in
  Store.append t { e with Cellrec.fingerprint = "f" };
  check_bool "live table" true
    (Store.lookup t ~key:"a" ~fingerprint:"f" <> None);
  check_bool "fingerprint must match" true
    (Store.lookup t ~key:"a" ~fingerprint:"other" = None);
  check_bool "mem without hit accounting" true
    (Store.mem t ~key:"a" ~fingerprint:"f");
  let s = Store.stats t in
  check_int "one entry" 1 s.Store.entries;
  check_int "one append" 1 s.Store.appended;
  check_int "hits counted" 1 s.Store.served;
  Store.close t;
  (* Reopen under a different shard request: still readable. *)
  let t2 = Store.open_ ~shards:2 dir in
  check_int "reloaded" 1 (Store.stats t2).Store.loaded;
  (match Store.lookup t2 ~key:"a" ~fingerprint:"f" with
  | Some e' ->
      check_bool "round-trips through disk" true
        (entry_equal { e with Cellrec.fingerprint = "f" } e')
  | None -> Alcotest.fail "entry lost across reopen");
  Store.close t2

let test_store_last_write_wins () =
  let dir = fresh_dir () in
  let t = Store.open_ dir in
  let e = sample_success "k" in
  Store.append t { e with Cellrec.attempts = 1 };
  Store.append t { e with Cellrec.attempts = 9 };
  Store.close t;
  let t2 = Store.open_ dir in
  (match Store.lookup t2 ~key:"k" ~fingerprint:"fp-1" with
  | Some e' -> check_int "last write wins" 9 e'.Cellrec.attempts
  | None -> Alcotest.fail "entry missing");
  check_int "one distinct entry" 1 (Store.stats t2).Store.entries;
  Store.close t2

let populate dir n =
  let t = Store.open_ ~shards:4 dir in
  for i = 0 to n - 1 do
    Store.append t (sample_success (Printf.sprintf "cell-%03d" i))
  done;
  Store.close t

let shard_files dir =
  Sys.readdir dir |> Array.to_list
  |> List.filter (fun f -> Filename.check_suffix f ".vcas")
  |> List.map (Filename.concat dir)
  |> List.sort compare

(* Satellite: corruption fuzz.  Flip bytes all over the shards; reopening
   must never raise, must count the damage, and must never serve a
   record that differs from what was written. *)
let test_store_corruption_fuzz () =
  let rng = Random.State.make [| 0xC0FFEE |] in
  for _round = 1 to 8 do
    let dir = fresh_dir () in
    let n = 40 in
    populate dir n;
    List.iter
      (fun file ->
        let ic = open_in_bin file in
        let len = in_channel_length ic in
        let b = Bytes.create len in
        really_input ic b 0 len;
        close_in ic;
        if len > 0 then
          for _ = 1 to 1 + Random.State.int rng 8 do
            let i = Random.State.int rng len in
            Bytes.set b i (Char.chr (Random.State.int rng 256))
          done;
        let oc = open_out_bin file in
        output_bytes oc b;
        close_out oc)
      (shard_files dir);
    let t = Store.open_ ~shards:4 dir in
    let s = Store.stats t in
    check_bool "nothing invented" true (s.Store.loaded <= n);
    let survivors = ref 0 in
    for i = 0 to n - 1 do
      let key = Printf.sprintf "cell-%03d" i in
      match Store.lookup t ~key ~fingerprint:"fp-1" with
      | Some e' ->
          incr survivors;
          check_bool "served record is intact" true
            (entry_equal (sample_success key) e')
      | None -> ()
    done;
    check_int "loaded = served survivors" s.Store.loaded !survivors;
    (* Compaction repairs: after a rewrite and reload, no corruption
       remains and every survivor is still intact. *)
    Store.compact t;
    Store.close t;
    let t2 = Store.open_ ~shards:4 dir in
    let s2 = Store.stats t2 in
    check_int "compaction scrubbed the damage" 0 s2.Store.corrupt;
    check_int "no survivor lost" !survivors s2.Store.loaded;
    Store.close t2
  done

let test_store_torn_tail () =
  let dir = fresh_dir () in
  populate dir 20;
  (* Tear the tail of every shard mid-record, as kill -9 would. *)
  List.iter
    (fun file ->
      let len = (Unix.stat file).Unix.st_size in
      if len > 10 then
        let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
        Unix.ftruncate fd (len - 7);
        Unix.close fd)
    (shard_files dir);
  let t = Store.open_ ~shards:4 dir in
  let s = Store.stats t in
  check_bool "torn tails detected" true (s.Store.corrupt > 0);
  check_bool "healthy prefix kept" true (s.Store.loaded > 0);
  Store.close t

let test_store_stale_tmp_removed () =
  let dir = fresh_dir () in
  populate dir 3;
  let tmp = Filename.concat dir "shard-00.vcas.tmp" in
  let oc = open_out tmp in
  output_string oc "half-written compaction";
  close_out oc;
  let t = Store.open_ ~shards:4 dir in
  check_bool "stale temp removed" false (Sys.file_exists tmp);
  check_int "store unaffected" 3 (Store.stats t).Store.loaded;
  Store.close t

let test_store_io_fault () =
  let dir = fresh_dir () in
  let t = Store.open_ dir in
  let fire = ref true in
  Store.io_fault_hook := (fun () -> !fire);
  Store.append t (sample_success "dropped");
  Store.io_fault_hook := (fun () -> false);
  fire := false;
  let s = Store.stats t in
  check_int "write error counted" 1 s.Store.write_errors;
  check_bool "still serves from memory" true
    (Store.lookup t ~key:"dropped" ~fingerprint:"fp-1" <> None);
  Store.close t;
  let t2 = Store.open_ dir in
  check_bool "dropped append not on disk" true
    (Store.lookup t2 ~key:"dropped" ~fingerprint:"fp-1" = None);
  Store.close t2

(* Satellite: offline scrub over a deliberately corrupted store.  The
   per-shard reports must count exactly the damage we inflicted, and
   compaction must repair everything scrub counts. *)
let test_store_scrub () =
  let dir = fresh_dir () in
  let t = Store.open_ ~shards:4 dir in
  for i = 0 to 11 do
    Store.append t (sample_success (Printf.sprintf "cell-%03d" i))
  done;
  (* A stale record: same key re-appended under a new fingerprint. *)
  Store.append t { (sample_success "cell-000") with Cellrec.fingerprint = "fp-2" };
  Store.close t;
  let clean = Store.scrub dir in
  check_int "four shards scanned" 4 (List.length clean);
  let total f reports = List.fold_left (fun a r -> a + f r) 0 reports in
  check_int "13 records" 13 (total (fun r -> r.Store.sr_records) clean);
  check_int "no corruption yet" 0 (total (fun r -> r.Store.sr_corrupt) clean);
  check_int "one stale fingerprint" 1 (total (fun r -> r.Store.sr_stale) clean);
  (* Smash one byte in the middle of the first shard. *)
  (match shard_files dir with
  | file :: _ ->
      let fd = Unix.openfile file [ Unix.O_WRONLY ] 0o644 in
      let mid = (Unix.stat file).Unix.st_size / 2 in
      ignore (Unix.lseek fd mid Unix.SEEK_SET);
      ignore (Unix.write_substring fd "\xff" 0 1);
      Unix.close fd
  | [] -> Alcotest.fail "no shard files");
  let dirty = Store.scrub dir in
  check_bool "corruption counted" true
    (total (fun r -> r.Store.sr_corrupt) dirty > 0);
  check_bool "damage stays in its shard" true
    (List.length (List.filter (fun r -> r.Store.sr_corrupt > 0) dirty) = 1);
  (* Repair in place, as [store scrub --compact] does. *)
  let t = Store.open_ ~shards:4 dir in
  Store.compact t;
  Store.close t;
  let repaired = Store.scrub dir in
  check_int "compaction scrubbed corruption" 0
    (total (fun r -> r.Store.sr_corrupt) repaired);
  check_int "compaction dropped stale records" 0
    (total (fun r -> r.Store.sr_stale) repaired);
  check_bool "survivors intact" true
    (total (fun r -> r.Store.sr_records) repaired >= 11)

let () =
  Alcotest.run "store"
    [
      ( "codec",
        [
          Alcotest.test_case "crc32 vector" `Quick test_crc32_vector;
          Alcotest.test_case "frame round-trip" `Quick test_frame_roundtrip;
          Alcotest.test_case "frame corruption" `Quick test_frame_corruption;
          Alcotest.test_case "frame legacy" `Quick test_frame_legacy;
          Alcotest.test_case "cellrec round-trip" `Quick
            test_cellrec_roundtrip;
        ] );
      ( "store",
        [
          Alcotest.test_case "basic" `Quick test_store_basic;
          Alcotest.test_case "last write wins" `Quick
            test_store_last_write_wins;
          Alcotest.test_case "corruption fuzz" `Quick
            test_store_corruption_fuzz;
          Alcotest.test_case "torn tail" `Quick test_store_torn_tail;
          Alcotest.test_case "stale tmp removed" `Quick
            test_store_stale_tmp_removed;
          Alcotest.test_case "io fault" `Quick test_store_io_fault;
          Alcotest.test_case "offline scrub" `Quick test_store_scrub;
        ] );
    ]

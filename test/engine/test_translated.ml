(* Differential tests for the decode-once translated interpreter loop.

   [Engine.run_events] (block-entry guards over a pre-translated stream)
   must be observably identical to [Engine.run_events_legacy] (the
   per-step reference loop): same event stream into the sink, same
   deterministic metrics, same steps/trap reporting -- across every
   technique of the paper grid, across trap paths (fuel exhaustion,
   pc escape, semantic traps), and across real-VM workloads.  A second
   group checks the translation machinery itself: plan instantiation
   reproduces a fresh decode, and quickening's incremental re-translation
   leaves the translation equal to a from-scratch decode of the mutated
   layout. *)

open Vmbp_machine
open Vmbp_core
module Program = Vmbp_vm.Program
module Profile = Vmbp_vm.Profile
module Control = Vmbp_vm.Control
module T = Vmbp_toyvm.Toy_vm

let check_bool = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Event capture *)

type event =
  | Dispatch of { branch : int; target : int; opcode : int; vm_transfer : bool }
  | Fetch of { addr : int; bytes : int; opcode : int }

let capture () =
  let events = ref [] in
  let sink =
    {
      Engine.on_dispatch =
        (fun ~branch ~target ~opcode ~vm_transfer ->
          events := Dispatch { branch; target; opcode; vm_transfer } :: !events);
      on_fetch =
        (fun ~addr ~bytes ~opcode ->
          events := Fetch { addr; bytes; opcode } :: !events);
    }
  in
  (sink, fun () -> List.rev !events)

type stream = {
  steps : int;
  trapped : string option;
  checksum : int;
  metrics : Metrics.t;
  events : event list;
}

(* One full run of [program] under [technique] through either loop, on a
   private program copy (quickening mutates it), layout and state. *)
let stream ~legacy ?profile ?fuel ?(counters = 5) ~technique program =
  let program = Program.copy program in
  let config = Config.make ~cpu:Cpu_model.ideal technique in
  let profile =
    match profile with
    | Some _ as p -> p
    | None ->
        if Technique.uses_static_selection technique then begin
          let p = Profile.empty ~max_seq_len:4 in
          Profile.add_program p program;
          Some p
        end
        else None
  in
  let layout = Config.build_layout ?profile config ~program in
  let m = Metrics.create () in
  let state = T.create_state ~counters:(Array.make 16 counters) () in
  let sink, events = capture () in
  let steps, trapped =
    if legacy then
      Engine.run_events_legacy ?fuel ~metrics:m ~layout ~exec:(T.exec state)
        ~sink ()
    else
      Engine.run_events ?fuel ~metrics:m ~layout ~exec:(T.exec state) ~sink ()
  in
  {
    steps;
    trapped;
    checksum = T.checksum state;
    metrics = m;
    events = events ();
  }

let check_streams_equal ~what a b =
  check_int (what ^ ": steps") a.steps b.steps;
  Alcotest.(check (option string)) (what ^ ": trap") a.trapped b.trapped;
  check_int (what ^ ": checksum") a.checksum b.checksum;
  check_int (what ^ ": vm_instrs") a.metrics.Metrics.vm_instrs
    b.metrics.Metrics.vm_instrs;
  check_int (what ^ ": native_instrs") a.metrics.Metrics.native_instrs
    b.metrics.Metrics.native_instrs;
  check_int (what ^ ": dispatches") a.metrics.Metrics.dispatches
    b.metrics.Metrics.dispatches;
  check_int (what ^ ": indirect_branches")
    a.metrics.Metrics.indirect_branches b.metrics.Metrics.indirect_branches;
  check_int (what ^ ": quickenings") a.metrics.Metrics.quickenings
    b.metrics.Metrics.quickenings;
  check_int (what ^ ": events") (List.length a.events) (List.length b.events);
  check_bool (what ^ ": event streams identical") true (a.events = b.events)

let agree ?profile ?fuel ?counters ~what ~technique program =
  let t = stream ~legacy:false ?profile ?fuel ?counters ~technique program in
  let l = stream ~legacy:true ?profile ?fuel ?counters ~technique program in
  check_streams_equal ~what t l;
  t

(* Static selection needs a profile; give it one of the program itself. *)
let profile_for technique program =
  if Technique.uses_static_selection technique then begin
    let p = Profile.empty ~max_seq_len:4 in
    Profile.add_program p program;
    Some p
  end
  else None

(* The paper grid: every dispatch technique the report compares. *)
let grid_techniques () =
  [
    Technique.switch;
    Technique.plain;
    Technique.static_repl ();
    Technique.static_super ();
    Technique.static_both ();
    Technique.dynamic_repl;
    Technique.dynamic_super;
    Technique.dynamic_both;
    Technique.across_bb;
    Technique.subroutine;
  ]

(* ------------------------------------------------------------------ *)
(* 1. Translated vs legacy over the paper grid *)

let test_grid_toy_programs () =
  let programs =
    (("table1", T.table1_loop ()) :: ("table3", T.table3_loop ())
    :: List.map
         (fun seed ->
           ( Printf.sprintf "random-%d" seed,
             T.random_program ~seed ~size:40 ))
         [ 1; 2; 3; 4; 5; 6; 7; 8 ])
  in
  List.iter
    (fun (pname, program) ->
      List.iter
        (fun technique ->
          let what =
            Printf.sprintf "%s/%s" pname (Technique.descriptor technique)
          in
          let s = agree ~what ~technique program in
          check_bool (what ^ ": ran") true (s.steps > 0))
        (grid_techniques ()))
    programs

(* ------------------------------------------------------------------ *)
(* 2. Trap paths *)

(* A semantic trap from the workload: return with an empty call stack. *)
let test_trap_return_underflow () =
  let code =
    [|
      { Program.opcode = T.ops.T.op_a; operands = [||] };
      { Program.opcode = T.ops.T.op_ret; operands = [||] };
      { Program.opcode = T.ops.T.op_halt; operands = [||] };
    |]
  in
  let program = Program.make ~name:"underflow" ~iset:T.iset ~code ~entry:0 () in
  List.iter
    (fun technique ->
      let what = "underflow/" ^ Technique.descriptor technique in
      let s = agree ~what ~technique program in
      Alcotest.(check (option string))
        (what ^ ": trap message") (Some "return underflow") s.trapped)
    (grid_techniques ())

(* Hostile code: a goto rewritten out of range after the layout was
   built must surface as the engine's pc-bounds trap in both loops. *)
let test_trap_pc_escape () =
  let fresh_code () =
    [|
      { Program.opcode = T.ops.T.op_a; operands = [||] };
      { Program.opcode = T.ops.T.op_goto; operands = [| 0 |] };
      { Program.opcode = T.ops.T.op_halt; operands = [||] };
    |]
  in
  let run_escaped ~legacy ~technique target =
    let program =
      Program.make ~name:"pc-escape" ~iset:T.iset ~code:(fresh_code ())
        ~entry:0 ()
    in
    let config = Config.make ~cpu:Cpu_model.ideal technique in
    let layout =
      Config.build_layout ?profile:(profile_for technique program) config
        ~program
    in
    (* Rewrite the target after the layout was built and validated: the
       engine, not the loader, must catch the escape.  [build_layout]
       copies the program, so mutate the copy the engine will run. *)
    layout.Code_layout.program.Program.code.(1).Program.operands.(0) <-
      target;
    let m = Metrics.create () in
    let state = T.create_state ~counters:(Array.make 16 5) () in
    let sink, events = capture () in
    let steps, trapped =
      if legacy then
        Engine.run_events_legacy ~fuel:1_000 ~metrics:m ~layout
          ~exec:(T.exec state) ~sink ()
      else
        Engine.run_events ~fuel:1_000 ~metrics:m ~layout ~exec:(T.exec state)
          ~sink ()
    in
    {
      steps;
      trapped;
      checksum = T.checksum state;
      metrics = m;
      events = events ();
    }
  in
  List.iter
    (fun target ->
      List.iter
        (fun technique ->
          let what =
            Printf.sprintf "pc-escape(%d)/%s" target
              (Technique.descriptor technique)
          in
          let t = run_escaped ~legacy:false ~technique target in
          let l = run_escaped ~legacy:true ~technique target in
          check_streams_equal ~what t l;
          check_bool (what ^ ": trapped") true (t.trapped <> None))
        (grid_techniques ()))
    [ -1; 3; 9999 ]

(* Fuel exhaustion at every small budget: the translated loop's
   block-sized fuel credits must stop on exactly the same step as the
   per-step loop, including budgets that end mid-block. *)
let test_trap_fuel () =
  let program = T.table1_loop () in
  List.iter
    (fun fuel ->
      List.iter
        (fun technique ->
          let what =
            Printf.sprintf "fuel=%d/%s" fuel (Technique.descriptor technique)
          in
          let s = agree ~what ~technique ~fuel ~counters:1_000_000 program in
          Alcotest.(check (option string))
            (what ^ ": out of fuel") (Some Engine.out_of_fuel) s.trapped;
          check_int (what ^ ": stopped at the budget") fuel s.steps)
        [ Technique.plain; Technique.dynamic_both; Technique.subroutine ])
    [ 1; 2; 3; 5; 7; 11; 64; 1000 ]

(* ------------------------------------------------------------------ *)
(* 3. Full-run field equality across cpu x predictor *)

let run_full ~legacy ~cpu ~predictor ~technique program =
  let program = Program.copy program in
  let config =
    Config.make ~cpu:(Cpu_model.with_predictor cpu predictor) technique
  in
  let layout =
    Config.build_layout ?profile:(profile_for technique program) config
      ~program
  in
  let state = T.create_state ~counters:(Array.make 16 5) () in
  if legacy then begin
    (* [Engine.run] drives the translated loop; reproduce its simulator
       wiring around the legacy loop to compare complete results. *)
    let m = Metrics.create () in
    let predictor = Predictor.create (Config.predictor_kind config) in
    let icache = Icache.create cpu.Cpu_model.icache in
    let hits = ref 0 and misses = ref 0 in
    let sink =
      {
        Engine.on_dispatch =
          (fun ~branch ~target ~opcode ~vm_transfer ->
            if not (Predictor.access predictor ~branch ~target ~opcode)
            then begin
              m.Metrics.mispredicts <- m.Metrics.mispredicts + 1;
              if vm_transfer then
                m.Metrics.vm_branch_mispredicts <-
                  m.Metrics.vm_branch_mispredicts + 1
            end);
        on_fetch =
          (fun ~addr ~bytes ~opcode:_ ->
            Icache.fetch icache ~addr ~bytes ~hits ~misses);
      }
    in
    let steps, trapped =
      Engine.run_events_legacy ~fuel:1_000_000 ~metrics:m ~layout
        ~exec:(T.exec state) ~sink ()
    in
    m.Metrics.icache_fetches <- !hits + !misses;
    m.Metrics.icache_misses <- !misses;
    m.Metrics.code_bytes <- layout.Code_layout.runtime_code_bytes;
    (steps, trapped, m, Cpu_model.cycles cpu m, T.checksum state)
  end
  else begin
    let r =
      Engine.run ~fuel:1_000_000 ~config ~layout ~exec:(T.exec state) ()
    in
    ( r.Engine.steps,
      r.Engine.trapped,
      r.Engine.metrics,
      r.Engine.cycles,
      T.checksum state )
  end

let test_cpu_predictor_matrix () =
  let program = T.random_program ~seed:11 ~size:40 in
  let predictors =
    [
      Predictor.Btb (Btb.classic ~entries:256 ~associativity:1);
      Predictor.Btb (Btb.with_counters ~entries:128 ~associativity:2);
      Predictor.Btb Btb.ideal;
      Predictor.Perfect;
      Predictor.Never;
    ]
  in
  List.iter
    (fun cpu ->
      List.iter
        (fun predictor ->
          List.iter
            (fun technique ->
              let what =
                Printf.sprintf "%s/%s/%s" cpu.Cpu_model.name
                  (Predictor.kind_name predictor)
                  (Technique.descriptor technique)
              in
              let s1, t1, m1, c1, k1 =
                run_full ~legacy:false ~cpu ~predictor ~technique program
              and s2, t2, m2, c2, k2 =
                run_full ~legacy:true ~cpu ~predictor ~technique program
              in
              check_int (what ^ ": steps") s1 s2;
              Alcotest.(check (option string)) (what ^ ": trap") t1 t2;
              check_int (what ^ ": checksum") k1 k2;
              check_bool (what ^ ": metrics equal") true (m1 = m2);
              check_bool (what ^ ": cycles equal") true (c1 = c2))
            [ Technique.plain; Technique.static_both (); Technique.dynamic_both ])
        predictors)
    [ Cpu_model.celeron_800; Cpu_model.pentium4_northwood ]

(* ------------------------------------------------------------------ *)
(* 4. Real-VM workloads through both loops *)

let test_real_vm_workloads () =
  let pick vm name =
    match Vmbp_workloads.find ~vm name with
    | Some w -> w
    | None -> Alcotest.failf "workload %s not found" name
  in
  let workloads =
    [ pick Vmbp_workloads.Forth "gray"; pick Vmbp_workloads.Jvm "db" ]
  in
  List.iter
    (fun (w : Vmbp_workloads.t) ->
      List.iter
        (fun technique ->
          let what =
            Printf.sprintf "%s/%s/%s"
              (Vmbp_workloads.vm_name w.Vmbp_workloads.vm)
              w.Vmbp_workloads.name
              (Technique.descriptor technique)
          in
          let run legacy =
            let loaded = w.Vmbp_workloads.load ~scale:1 in
            let session = loaded.Vmbp_workloads.fresh_session () in
            let exec = session.Vmbp_workloads.exec in
            let config = Config.make ~cpu:Cpu_model.ideal technique in
            let layout =
              Config.build_layout
                ?profile:
                  (profile_for technique loaded.Vmbp_workloads.program)
                config ~program:loaded.Vmbp_workloads.program
            in
            let m = Metrics.create () in
            let sink, events = capture () in
            let steps, trapped =
              if legacy then
                Engine.run_events_legacy ~fuel:5_000_000 ~metrics:m ~layout
                  ~exec ~sink ()
              else
                Engine.run_events ~fuel:5_000_000 ~metrics:m ~layout ~exec
                  ~sink ()
            in
            (steps, trapped, m, events ())
          in
          let s1, t1, m1, e1 = run false and s2, t2, m2, e2 = run true in
          check_int (what ^ ": steps") s1 s2;
          Alcotest.(check (option string)) (what ^ ": trap") t1 t2;
          check_bool (what ^ ": metrics equal") true (m1 = m2);
          check_int (what ^ ": events") (List.length e1) (List.length e2);
          check_bool (what ^ ": event streams identical") true (e1 = e2))
        [ Technique.plain; Technique.static_both (); Technique.dynamic_both ])
    workloads

(* ------------------------------------------------------------------ *)
(* 5. Translation machinery: plans and quickening invalidation *)

let test_plan_instantiation () =
  List.iter
    (fun technique ->
      let what = "plan/" ^ Technique.descriptor technique in
      let program = T.random_program ~seed:21 ~size:30 in
      let config = Config.make ~cpu:Cpu_model.ideal technique in
      let layout =
        Config.build_layout ?profile:(profile_for technique program) config
          ~program
      in
      let plan = Engine.plan layout in
      check_int (what ^ ": plan_slots")
        (Program.length layout.Code_layout.program)
        (Engine.plan_slots plan);
      check_bool (what ^ ": instantiated = fresh") true
        (Engine.translation_equal
           (Engine.translation ~plan layout)
           (Engine.translate layout)))
    (grid_techniques ())

let test_plan_mismatch_rejected () =
  let program = T.random_program ~seed:22 ~size:30 in
  let config = Config.make ~cpu:Cpu_model.ideal Technique.plain in
  let layout = Config.build_layout config ~program in
  let plan = Engine.plan layout in
  let other =
    Config.build_layout
      (Config.make ~cpu:Cpu_model.ideal Technique.dynamic_both)
      ~program:(Program.copy program)
  in
  check_bool "technique mismatch raises" true
    (match Engine.translation ~plan other with
    | _ -> false
    | exception Invalid_argument _ -> true)

(* After a run that quickened, the incrementally re-translated stream
   must equal a from-scratch decode of the mutated layout. *)
let test_quicken_retranslation () =
  List.iter
    (fun technique ->
      let what = "quicken/" ^ Technique.descriptor technique in
      let program = T.random_program ~seed:23 ~size:50 in
      let config = Config.make ~cpu:Cpu_model.ideal technique in
      let layout = Config.build_layout config ~program in
      let translation = Engine.translate layout in
      let m = Metrics.create () in
      let state = T.create_state ~counters:(Array.make 16 5) () in
      let sink, _ = capture () in
      let _steps, trapped =
        Engine.run_events ~fuel:1_000_000 ~translation ~metrics:m ~layout
          ~exec:(T.exec state) ~sink ()
      in
      Alcotest.(check (option string)) (what ^ ": no trap") None trapped;
      check_bool (what ^ ": program quickened") true
        (m.Metrics.quickenings > 0);
      check_bool (what ^ ": re-translation = fresh decode") true
        (Engine.translation_equal translation (Engine.translate layout)))
    [
      Technique.plain;
      Technique.dynamic_repl;
      Technique.dynamic_super;
      Technique.dynamic_both;
      Technique.across_bb;
    ]

let () =
  Alcotest.run "translated engine"
    [
      ( "grid",
        [
          Alcotest.test_case "toy programs x paper grid" `Quick
            test_grid_toy_programs;
        ] );
      ( "traps",
        [
          Alcotest.test_case "return underflow" `Quick
            test_trap_return_underflow;
          Alcotest.test_case "pc escape" `Quick test_trap_pc_escape;
          Alcotest.test_case "fuel exhaustion" `Quick test_trap_fuel;
        ] );
      ( "full-run",
        [
          Alcotest.test_case "cpu x predictor matrix" `Quick
            test_cpu_predictor_matrix;
          Alcotest.test_case "real-VM workloads" `Quick
            test_real_vm_workloads;
        ] );
      ( "translation",
        [
          Alcotest.test_case "plan instantiation" `Quick
            test_plan_instantiation;
          Alcotest.test_case "plan mismatch rejected" `Quick
            test_plan_mismatch_rejected;
          Alcotest.test_case "quickening re-translation" `Quick
            test_quicken_retranslation;
        ] );
    ]

(* Engine hot-loop microbenchmark: steps/sec of each interpreter layer.

   Layers, innermost out:
     functional        VM semantics alone (no layout, no events)
     legacy            pre-translation per-step loop, no-op sink
     translated        decode-once translated loop, no-op sink
     record            translated loop driving the trace-recording sink

   Each layer runs the same workloads/techniques on pre-built layouts, so
   the numbers isolate interpreter overhead from load/profile/build cost.
   CI runs this as a perf smoke: the translated loop must not be slower
   than the legacy loop it replaced (--check, with slack for noise). *)

let workload_name = ref "brainless"
let scale = ref 2
let check = ref false

let () =
  let rec parse = function
    | [] -> ()
    | "--workload" :: w :: rest ->
        workload_name := w;
        parse rest
    | "--scale" :: s :: rest ->
        scale := int_of_string s;
        parse rest
    | "--check" :: rest ->
        check := true;
        parse rest
    | arg :: _ ->
        Printf.eprintf
          "engine_bench: unknown argument %s\n\
           usage: engine_bench [--workload NAME] [--scale N] [--check]\n"
          arg;
        exit 2
  in
  parse (List.tl (Array.to_list Sys.argv))

let workload =
  match Vmbp_workloads.find ~vm:Vmbp_workloads.Forth !workload_name with
  | Some w -> w
  | None ->
      Printf.eprintf "engine_bench: no Forth workload named %s\n"
        !workload_name;
      exit 2

let techniques = Vmbp_core.Technique.paper_gforth_variants
let fuel = Vmbp_report.Runner.engine_fuel

let null_sink =
  {
    Vmbp_core.Engine.on_dispatch =
      (fun ~branch:_ ~target:_ ~opcode:_ ~vm_transfer:_ -> ());
    on_fetch = (fun ~addr:_ ~bytes:_ ~opcode:_ -> ());
  }

(* All load/profile/layout-build work happens here, outside the timed
   region; each layer run gets a fresh session and (for the event layers) a
   freshly built layout, so quickening state never leaks between layers. *)
let prepared =
  List.map
    (fun technique ->
      let loaded = workload.Vmbp_workloads.load ~scale:!scale in
      let profile =
        Vmbp_report.Runner.effective_profile ~scale:!scale ~technique workload
      in
      (technique, loaded, profile))
    techniques

let build_layout (technique, loaded, profile) =
  let config = Vmbp_core.Config.make technique in
  Vmbp_core.Config.build_layout ?profile config
    ~program:loaded.Vmbp_workloads.program

let time_layer f =
  let runs =
    List.map (fun p -> (p, build_layout p)) prepared
  in
  let steps = ref 0 in
  let t0 = Unix.gettimeofday () in
  List.iter (fun (p, layout) -> steps := !steps + f p layout) runs;
  let dt = Unix.gettimeofday () -. t0 in
  (!steps, dt)

let functional (_, loaded, _) _layout =
  let session = loaded.Vmbp_workloads.fresh_session () in
  let steps, trapped =
    Vmbp_core.Engine.run_functional ~fuel
      ~program:(Vmbp_vm.Program.copy loaded.Vmbp_workloads.program)
      ~exec:session.Vmbp_workloads.exec ()
  in
  assert (trapped = None);
  steps

let legacy (_, loaded, _) layout =
  let session = loaded.Vmbp_workloads.fresh_session () in
  let m = Vmbp_machine.Metrics.create () in
  let steps, trapped =
    Vmbp_core.Engine.run_events_legacy ~fuel ~metrics:m ~layout
      ~exec:session.Vmbp_workloads.exec ~sink:null_sink ()
  in
  assert (trapped = None);
  steps

let translated (_, loaded, _) layout =
  let session = loaded.Vmbp_workloads.fresh_session () in
  let m = Vmbp_machine.Metrics.create () in
  let steps, trapped =
    Vmbp_core.Engine.run_events ~fuel ~metrics:m ~layout
      ~exec:session.Vmbp_workloads.exec ~sink:null_sink ()
  in
  assert (trapped = None);
  steps

let record (_, loaded, _) layout =
  let session = loaded.Vmbp_workloads.fresh_session () in
  match
    Vmbp_report.Trace.record ~fuel ~layout ~exec:session.Vmbp_workloads.exec
      ~output:session.Vmbp_workloads.output ()
  with
  | None ->
      prerr_endline "engine_bench: recording overflowed";
      exit 1
  | Some tr ->
      let steps = Vmbp_report.Trace.steps tr in
      Vmbp_report.Trace.release tr;
      steps

let () =
  let layers =
    [
      ("functional", functional);
      ("legacy", legacy);
      ("translated", translated);
      ("record", record);
    ]
  in
  Printf.printf "engine_bench: %s scale %d, %d techniques, fuel %d\n%!"
    workload.Vmbp_workloads.name !scale (List.length techniques) fuel;
  let rates =
    List.map
      (fun (name, f) ->
        let steps, dt = time_layer f in
        let rate = float_of_int steps /. dt in
        Printf.printf "  %-12s %9.2fs  %12d steps  %8.1f Msteps/s\n%!" name dt
          steps (rate /. 1e6);
        (name, rate))
      layers
  in
  let rate name = List.assoc name rates in
  let ratio = rate "translated" /. rate "legacy" in
  Printf.printf "  translated/legacy: %.2fx\n%!" ratio;
  if !check && ratio < 0.95 then begin
    Printf.eprintf
      "engine_bench: translated loop slower than legacy (%.2fx < 0.95x)\n"
      ratio;
    exit 1
  end

lib/jvm/wl_jess.ml: Codegen Minijava Workload_lib

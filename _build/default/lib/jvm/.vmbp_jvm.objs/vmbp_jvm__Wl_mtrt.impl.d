lib/jvm/wl_mtrt.ml: Codegen Minijava Workload_lib

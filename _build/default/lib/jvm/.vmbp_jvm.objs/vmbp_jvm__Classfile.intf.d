lib/jvm/classfile.mli: Format

lib/jvm/codegen.mli: Minijava Runtime

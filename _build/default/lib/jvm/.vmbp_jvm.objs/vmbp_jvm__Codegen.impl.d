lib/jvm/codegen.ml: Array Classfile Hashtbl List Minijava Opcode Printf Program Runtime Vmbp_vm

lib/jvm/jvm_workloads.ml: List Runtime Wl_compress Wl_db Wl_jack Wl_javac Wl_jess Wl_mpeg Wl_mtrt

lib/jvm/workload_lib.ml: Minijava

lib/jvm/opcode.mli: Vmbp_vm

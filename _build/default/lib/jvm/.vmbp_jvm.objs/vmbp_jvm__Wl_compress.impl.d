lib/jvm/wl_compress.ml: Codegen Minijava Workload_lib

lib/jvm/semantics.mli: Runtime Vmbp_core

lib/jvm/wl_javac.ml: Codegen Minijava Workload_lib

lib/jvm/wl_jack.ml: Codegen Minijava Workload_lib

lib/jvm/runtime.mli: Classfile Hashtbl Vmbp_vm

lib/jvm/wl_mpeg.ml: Codegen List Minijava Printf Workload_lib

lib/jvm/wl_db.ml: Codegen Minijava Workload_lib

lib/jvm/minijava.mli:

lib/jvm/classfile.ml: Array Format

lib/jvm/opcode.ml: Instr Instr_set Option Vmbp_vm

lib/jvm/semantics.ml: Array Classfile Control Hashtbl Instr_set Opcode Printf Program Runtime Vmbp_core Vmbp_vm

lib/jvm/runtime.ml: Array Buffer Classfile Hashtbl List Opcode Program Vmbp_vm

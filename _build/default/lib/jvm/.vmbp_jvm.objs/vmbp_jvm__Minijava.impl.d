lib/jvm/minijava.ml:

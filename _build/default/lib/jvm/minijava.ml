type binop =
  | Add | Sub | Mul | Div | Rem
  | Shl | Shr | And | Or | Xor
  | Eq | Ne | Lt | Le | Gt | Ge

type expr =
  | Int of int
  | Big of int
  | Local of string
  | StaticVar of string
  | Field of expr * string * string
  | Bin of binop * expr * expr
  | Neg of expr
  | CallS of string * expr list
  | CallV of expr * string * expr list
  | New of string
  | NewArray of expr
  | Index of expr * expr
  | Length of expr

type stmt =
  | Decl of string * expr
  | Assign of string * expr
  | SetStatic of string * expr
  | SetField of expr * string * string * expr
  | SetIndex of expr * expr * expr
  | If of expr * stmt list * stmt list
  | While of expr * stmt list
  | Switch of expr * (int * stmt list) list * stmt list
  | Return of expr
  | Expr of expr
  | Print of expr

type mthd = {
  mname : string;
  params : string list;
  body : stmt list;
}

type cls = {
  cname : string;
  super : string option;
  fields : string list;
  cmethods : mthd list;
}

type prog = { classes : cls list; funcs : mthd list }

let ( +: ) a b = Bin (Add, a, b)
let ( -: ) a b = Bin (Sub, a, b)
let ( *: ) a b = Bin (Mul, a, b)
let ( /: ) a b = Bin (Div, a, b)
let ( %: ) a b = Bin (Rem, a, b)
let ( <: ) a b = Bin (Lt, a, b)
let ( >: ) a b = Bin (Gt, a, b)
let ( <=: ) a b = Bin (Le, a, b)
let ( >=: ) a b = Bin (Ge, a, b)
let ( =: ) a b = Bin (Eq, a, b)
let ( <>: ) a b = Bin (Ne, a, b)
let i n = Int n
let l name = Local name

(* jack: parser-generator workload (SPECjvm98 _228_jack substitute).

   Lexes a synthetic source text with a character-class state machine,
   then checks the token stream with a recursive-descent expression parser
   (balanced parentheses, alternating operands/operators).  Scanner loops
   plus a recursive parser -- the instruction mix of lexical analysis. *)

open Minijava

let name = "jack"
let description = "lexer and recursive-descent checker over synthetic source text"

(* Character classes: 0 space, 1 letter, 2 digit, 3 open paren, 4 close
   paren, 5 operator. *)
let gen_text_func =
  {
    mname = "genText";
    params = [ "text" ];
    body =
      [
        (* Generate plausible token soup with nesting kept balanced. *)
        Decl ("k", i 0);
        Decl ("depth", i 0);
        While
          ( l "k" <: Length (l "text") -: i 1,
            [
              Decl ("c", CallS ("rnd", [ i 10 ]));
              Decl ("cls", i 0);
              (* character-class selection is a textbook tableswitch *)
              Switch
                ( l "c",
                  [
                    (0, [ Assign ("cls", i 0) ]);
                    (1, [ Assign ("cls", i 1) ]);
                    (2, [ Assign ("cls", i 1) ]);
                    (3, [ Assign ("cls", i 1) ]);
                    (4, [ Assign ("cls", i 2) ]);
                    (5, [ Assign ("cls", i 2) ]);
                    (6,
                     [ Assign ("cls", i 3); Assign ("depth", l "depth" +: i 1) ]);
                    (7,
                     [
                       If
                         ( l "depth" >: i 0,
                           [
                             Assign ("cls", i 4);
                             Assign ("depth", l "depth" -: i 1);
                           ],
                           [ Assign ("cls", i 0) ] );
                     ]);
                  ],
                  [ Assign ("cls", i 5) ] );
              SetIndex (l "text", l "k", l "cls");
              Assign ("k", l "k" +: i 1);
            ] );
        (* close any remaining nesting *)
        SetIndex (l "text", Length (l "text") -: i 1, i 0);
        Return (l "depth");
      ];
  }

(* Tokenise: runs of letters are identifiers, runs of digits numbers;
   stores token codes into [toks], returns the count. *)
let lex_func =
  {
    mname = "lex";
    params = [ "text"; "toks" ];
    body =
      [
        Decl ("n", i 0);
        Decl ("k", i 0);
        While
          ( l "k" <: Length (l "text"),
            [
              Decl ("cls", Index (l "text", l "k"));
              If
                ( l "cls" =: i 0,
                  [ Assign ("k", l "k" +: i 1) ],
                  [
                    If
                      ( Bin (Or, l "cls" =: i 1, l "cls" =: i 2),
                        [
                          (* absorb the run *)
                          Decl ("start", l "k");
                          While
                            ( Bin
                                ( And,
                                  l "k" <: Length (l "text"),
                                  Index (l "text", l "k") =: l "cls" ),
                              [ Assign ("k", l "k" +: i 1) ] );
                          SetIndex (l "toks", l "n", l "cls");
                          Assign ("n", l "n" +: i 1);
                          Expr (CallS ("mix", [ l "k" -: l "start" ]));
                        ],
                        [
                          SetIndex (l "toks", l "n", l "cls");
                          Assign ("n", l "n" +: i 1);
                          Assign ("k", l "k" +: i 1);
                        ] );
                  ] );
            ] );
        Return (l "n");
      ];
  }

(* Recursive-descent well-formedness check over the token stream.
   Grammar: expr := atom (op atom)* ; atom := ident | number | '(' expr ')'.
   Position is threaded through the static "pos"; returns 1 on success. *)
let parse_atom_func =
  {
    mname = "parseAtom";
    params = [ "toks"; "n" ];
    body =
      [
        If (StaticVar "pos" >=: l "n", [ Return (i 0) ], []);
        Decl ("t", Index (l "toks", StaticVar "pos"));
        If
          ( Bin (Or, l "t" =: i 1, l "t" =: i 2),
            [ SetStatic ("pos", StaticVar "pos" +: i 1); Return (i 1) ],
            [] );
        If
          ( l "t" =: i 3,
            [
              SetStatic ("pos", StaticVar "pos" +: i 1);
              If (CallS ("parseExpr", [ l "toks"; l "n" ]) =: i 0, [ Return (i 0) ], []);
              If
                ( Bin
                    ( And,
                      StaticVar "pos" <: l "n",
                      Index (l "toks", StaticVar "pos") =: i 4 ),
                  [ SetStatic ("pos", StaticVar "pos" +: i 1); Return (i 1) ],
                  [ Return (i 0) ] );
            ],
            [] );
        Return (i 0);
      ];
  }

let parse_expr_func =
  {
    mname = "parseExpr";
    params = [ "toks"; "n" ];
    body =
      [
        If (CallS ("parseAtom", [ l "toks"; l "n" ]) =: i 0, [ Return (i 0) ], []);
        While
          ( Bin
              ( And,
                StaticVar "pos" <: l "n",
                Index (l "toks", StaticVar "pos") =: i 5 ),
            [
              SetStatic ("pos", StaticVar "pos" +: i 1);
              If
                ( CallS ("parseAtom", [ l "toks"; l "n" ]) =: i 0,
                  [ Return (i 0) ],
                  [] );
            ] );
        Return (i 1);
      ];
  }

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("text", NewArray (i 800));
        Decl ("toks", NewArray (i 800));
        Expr (CallS ("mix", [ CallS ("genText", [ l "text" ]) ]));
        Decl ("n", CallS ("lex", [ l "text"; l "toks" ]));
        Expr (CallS ("mix", [ l "n" ]));
        (* Parse as many expressions as the stream yields. *)
        SetStatic ("pos", i 0);
        Decl ("good", i 0);
        Decl ("bad", i 0);
        While
          ( StaticVar "pos" <: l "n",
            [
              Decl ("before", StaticVar "pos");
              If
                ( CallS ("parseExpr", [ l "toks"; l "n" ]) =: i 1,
                  [ Assign ("good", l "good" +: i 1) ],
                  [ Assign ("bad", l "bad" +: i 1) ] );
              (* always make progress *)
              If
                ( StaticVar "pos" =: l "before",
                  [ SetStatic ("pos", StaticVar "pos" +: i 1) ],
                  [] );
            ] );
        Expr (CallS ("mix", [ l "good" ]));
        Expr (CallS ("mix", [ l "bad" ]));
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program
       ~funcs:[ gen_text_func; lex_func; parse_atom_func; parse_expr_func;
                round_func ]
       ~rounds:(8 * scale) ~round_name:"round" ())

(* mpeg: audio-decoder workload (SPECjvm98 _222_mpegaudio substitute).

   Fixed-point subband synthesis: windowed dot products over a PCM buffer,
   butterfly passes, and quantisation.  Long, regular basic blocks of
   integer arithmetic -- the opposite instruction mix to the pointer-chasing
   workloads, matching mpegaudio's role in the paper's figures. *)

open Minijava

let name = "mpeg"
let description = "fixed-point subband filter: dot products, butterflies, quantisation"

let fill_window_func =
  {
    mname = "fillWindow";
    params = [ "w" ];
    body =
      [
        Decl ("k", i 0);
        While
          ( l "k" <: Length (l "w"),
            [
              (* a deterministic pseudo-window, roughly a raised cosine *)
              SetIndex
                ( l "w",
                  l "k",
                  i 512
                  -: ((l "k" -: i 16) *: (l "k" -: i 16)) );
              Assign ("k", l "k" +: i 1);
            ] );
        Return (i 0);
      ];
  }

let fill_pcm_func =
  {
    mname = "fillPcm";
    params = [ "pcm" ];
    body =
      [
        Decl ("k", i 0);
        Decl ("acc", i 0);
        While
          ( l "k" <: Length (l "pcm"),
            [
              (* smoothed noise: previous sample plus a random step *)
              Assign ("acc", l "acc" +: (CallS ("rnd", [ i 65 ]) -: i 32));
              SetIndex (l "pcm", l "k", l "acc");
              Assign ("k", l "k" +: i 1);
            ] );
        Return (i 0);
      ];
  }

(* One subband sample: windowed dot product of 32 samples. *)
let subband_func =
  {
    mname = "subband";
    params = [ "pcm"; "w"; "base" ];
    body =
      [
        Decl ("acc", i 0);
        Decl ("k", i 0);
        While
          ( l "k" <: i 32,
            [
              Assign
                ( "acc",
                  l "acc"
                  +: (Index (l "pcm", l "base" +: l "k") *: Index (l "w", l "k"))
                );
              Assign ("k", l "k" +: i 1);
            ] );
        Return (Bin (Shr, l "acc", i 8));
      ];
  }

(* In-place butterfly passes over a 32-entry band array. *)
let butterfly_func =
  {
    mname = "butterfly";
    params = [ "band" ];
    body =
      [
        Decl ("span", i 16);
        While
          ( l "span" >: i 0,
            [
              Decl ("j", i 0);
              While
                ( l "j" <: i 32,
                  [
                    Decl ("t", l "j" %: (l "span" *: i 2));
                    If
                      ( l "t" <: l "span",
                        [
                          Decl ("a", Index (l "band", l "j"));
                          Decl ("b", Index (l "band", l "j" +: l "span"));
                          SetIndex (l "band", l "j", l "a" +: l "b");
                          SetIndex
                            ( l "band",
                              l "j" +: l "span",
                              Bin (Shr, l "a" -: l "b", i 1) );
                        ],
                        [] );
                    Assign ("j", l "j" +: i 1);
                  ] );
              Assign ("span", l "span" /: i 2);
            ] );
        Return (i 0);
      ];
  }

let quantise_func =
  {
    mname = "quantise";
    params = [ "band" ];
    body =
      [
        Decl ("acc", i 0);
        Decl ("k", i 0);
        While
          ( l "k" <: i 32,
            [
              Decl ("q", Index (l "band", l "k") /: (i 1 +: l "k"));
              Assign ("acc", Bin (And, l "acc" +: (l "q" *: l "q"), Big 1073741823));
              Assign ("k", l "k" +: i 1);
            ] );
        Return (l "acc");
      ];
  }

(* Hand-specialised filters for the lowest eight subbands, as a tuned
   decoder would have: fully unrolled windowed dot products, with the
   unrolling idiom varying from band to band. *)
let specialised_subband band =
  let rec unrolled k =
    if k >= 32 then []
    else
      match (band + k) mod 2 with
      | 0 ->
          Assign
            ( "acc",
              l "acc"
              +: (Index (l "pcm", l "base" +: i k) *: Index (l "w", i k)) )
          :: unrolled (k + 1)
      | _ ->
          Decl (Printf.sprintf "t%d" (k mod 4),
                Index (l "pcm", l "base" +: i k) *: Index (l "w", i k))
          :: Assign ("acc", l "acc" +: l (Printf.sprintf "t%d" (k mod 4)))
          :: unrolled (k + 1)
  in
  {
    mname = Printf.sprintf "subband%d" band;
    params = [ "pcm"; "w"; "base" ];
    body = (Decl ("acc", i 0) :: unrolled 0) @ [ Return (Bin (Shr, l "acc", i 8)) ];
  }

let specialised = List.init 8 specialised_subband

let round_func =
  {
    mname = "round";
    params = [ "k" ];
    body =
      [
        Workload_lib.reseed (l "k");
        Decl ("pcm", NewArray (i 1024));
        Decl ("w", NewArray (i 32));
        Decl ("band", NewArray (i 32));
        Expr (CallS ("fillWindow", [ l "w" ]));
        Expr (CallS ("fillPcm", [ l "pcm" ]));
        Decl ("frame", i 0);
        While
          ( l "frame" <: i 30,
            [
              (* the eight specialised low bands, then the generic loop *)
              Decl ("base", l "frame" *: i 32);
              SetIndex (l "band", i 0, CallS ("subband0", [ l "pcm"; l "w"; l "base" ]));
              SetIndex (l "band", i 1, CallS ("subband1", [ l "pcm"; l "w"; l "base" +: i 1 ]));
              SetIndex (l "band", i 2, CallS ("subband2", [ l "pcm"; l "w"; l "base" +: i 2 ]));
              SetIndex (l "band", i 3, CallS ("subband3", [ l "pcm"; l "w"; l "base" +: i 3 ]));
              SetIndex (l "band", i 4, CallS ("subband4", [ l "pcm"; l "w"; l "base" +: i 4 ]));
              SetIndex (l "band", i 5, CallS ("subband5", [ l "pcm"; l "w"; l "base" +: i 5 ]));
              SetIndex (l "band", i 6, CallS ("subband6", [ l "pcm"; l "w"; l "base" +: i 6 ]));
              SetIndex (l "band", i 7, CallS ("subband7", [ l "pcm"; l "w"; l "base" +: i 7 ]));
              Decl ("b", i 8);
              While
                ( l "b" <: i 32,
                  [
                    SetIndex
                      ( l "band",
                        l "b",
                        CallS
                          ("subband", [ l "pcm"; l "w"; l "base" +: l "b" ])
                      );
                    Assign ("b", l "b" +: i 1);
                  ] );
              Expr (CallS ("butterfly", [ l "band" ]));
              Expr (CallS ("mix", [ CallS ("quantise", [ l "band" ]) ]));
              Assign ("frame", l "frame" +: i 1);
            ] );
        Return (i 0);
      ];
  }

let build ~scale =
  Codegen.compile ~name
    (Workload_lib.program
       ~funcs:
         ([ fill_window_func; fill_pcm_func; subband_func; butterfly_func;
            quantise_func; round_func ]
         @ specialised)
       ~rounds:(2 * scale) ~round_name:"round" ())
